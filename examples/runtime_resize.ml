(* Runtime way-placement area resizing — the OS knob of Section 4.1:
   "the operating system [can] choose the best sized way-placement
   area either on a static or per-program basis, even adjusting it
   during program execution."

   The OS here starts a program with a generous 16KB area, decides
   midway that the I-TLB way-placement bits should cover fewer pages,
   and shrinks the area to 2KB — paying one cache flush for the switch.
   One compiled layout serves both sizes; no recompilation happens.

   Run with:  dune exec examples/runtime_resize.exe [-- benchmark]     *)

module Config = Wayplace.Sim.Config
module Stats = Wayplace.Sim.Stats
module Simulator = Wayplace.Sim.Simulator

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "susan_c" in
  let spec =
    try Wayplace.Workloads.Mibench.find name
    with Not_found ->
      Format.eprintf "unknown benchmark %s@." name;
      exit 1
  in
  let program = Wayplace.Workloads.Codegen.generate spec in
  let profile =
    Wayplace.Workloads.Tracer.profile program Wayplace.Workloads.Tracer.Small
  in
  let compiled = Wayplace.compile program.Wayplace.Workloads.Codegen.graph profile in
  let trace = Wayplace.Workloads.Tracer.trace program Wayplace.Workloads.Tracer.Large in
  let layout = compiled.Wayplace.layout in
  let config area = Wayplace.paper_machine (Config.Way_placement { area_bytes = area * 1024 }) in

  let static area =
    Simulator.run ~config:(config area) ~program ~layout ~trace
  in
  let half = Array.length trace.Wayplace.Workloads.Tracer.blocks / 2 in
  let resized =
    Simulator.run_with_resizes
      ~schedule:[ (half, 2 * 1024) ]
      ~config:(config 16) ~program ~layout ~trace
  in
  let report label stats =
    Format.printf "%-22s %a@." label Stats.pp_brief stats
  in
  report "static 16KB area:" (static 16);
  report "static 2KB area:" (static 2);
  report "16KB -> 2KB midway:" resized;
  Format.printf
    "@.The resized run lands between the two static points: the second half@.\
     runs with 2KB worth of way-placed pages, after a one-off flush whose@.\
     refills are visible in the miss rate.@.";

  (* The same resized run, observed: a sampler on the probe bus windows
     the event stream, and the resize/flush markers land in the window
     where the OS acted.  (The CLI equivalent:
       wayplace_cli timeline -b susan_c -s wayplace \
         --resize <half>:2 --window 50000 --chrome resize.trace.json
     — the Chrome file opens in chrome://tracing or Perfetto.) *)
  let module S = Wayplace.Obs.Sampler in
  let sampler = S.create ~window_cycles:50_000 () in
  let (_ : Stats.t) =
    Simulator.run_probed ~probe:(S.probe sampler)
      ~schedule:[ (half, 2 * 1024) ]
      ~config:(config 16) ~program ~layout ~trace
  in
  let windows = S.finish sampler in
  Format.printf "@.timeline (50k-cycle windows):@.";
  List.iter
    (fun (w : S.window) ->
      let markers =
        match w.S.markers with
        | [] -> ""
        | ms ->
            "  <- "
            ^ String.concat ", "
                (List.map
                   (function
                     | S.Resize { area_bytes; _ } ->
                         Printf.sprintf "resize to %dKB" (area_bytes / 1024)
                     | S.Flush _ -> "flush"
                     | S.Switch { next; _ } ->
                         Printf.sprintf "switch to p%d" next)
                   ms)
      in
      Format.printf "  window %2d  ipc %5.3f  i-misses %4d%s@." w.S.index
        (S.ipc w)
        (S.get w S.Counter.Icache_misses)
        markers)
    windows
