type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }
let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

(* [int] and [float] run once per simulated data access, so the step +
   mix is open-coded in each: within one function the compiler keeps
   every Int64 intermediate unboxed, where the [next_int64]/[mix64]
   call chain would box one at each function boundary.  Same
   operations, same sequences. *)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let s = Int64.add t.state golden_gamma in
  t.state <- s;
  let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  (* Keep 62 random bits: [Int64.to_int] truncates to the native 63-bit
     int, so a 63-bit value could come out negative. *)
  let r = Int64.to_int (Int64.shift_right_logical z 2) in
  (* [r >= 0], so masking equals [mod] for power-of-two bounds — and
     dodges the hardware divide on the data-stream path, where the
     bound is variable but almost always a window size. *)
  if bound land (bound - 1) = 0 then r land (bound - 1) else r mod bound

let int_in t ~min ~max =
  if max < min then invalid_arg "Rng.int_in: max < min";
  min + int t (max - min + 1)

let float t =
  let s = Int64.add t.state golden_gamma in
  t.state <- s;
  let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  let bits53 = Int64.to_int (Int64.shift_right_logical z 11) in
  float_of_int bits53 *. (1.0 /. 9007199254740992.0)

let bool t ~p =
  let s = Int64.add t.state golden_gamma in
  t.state <- s;
  let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  let bits53 = Int64.to_int (Int64.shift_right_logical z 11) in
  float_of_int bits53 *. (1.0 /. 9007199254740992.0) < p

(* One [bool] draw at probability [p] picks between [if_true] and
   [if_false]; one [int] draw in the chosen bound follows.  Exactly the
   sequence (and values) of [bool t ~p] then [int t bound], fused into
   one function so both mixes' Int64 intermediates stay unboxed — this
   runs once per random-locality data access. *)
let bool_then_int t ~p ~if_true ~if_false =
  if if_true <= 0 || if_false <= 0 then
    invalid_arg "Rng.bool_then_int: bounds must be positive";
  let s = Int64.add t.state golden_gamma in
  let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  let bits53 = Int64.to_int (Int64.shift_right_logical z 11) in
  let bound =
    if float_of_int bits53 *. (1.0 /. 9007199254740992.0) < p then if_true
    else if_false
  in
  let s = Int64.add s golden_gamma in
  t.state <- s;
  let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  let r = Int64.to_int (Int64.shift_right_logical z 2) in
  if bound land (bound - 1) = 0 then r land (bound - 1) else r mod bound

let split t = { state = mix64 (next_int64 t) }

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let fingerprint t ~add =
  add (Int64.to_int (Int64.shift_right_logical t.state 32));
  add (Int64.to_int (Int64.logand t.state 0xFFFF_FFFFL))
