(** SplitMix64: a small, fast, deterministic PRNG.

    Every stochastic choice in the workload generator and trace walker
    flows through an explicit [Rng.t], so a benchmark is a pure
    function of its specification — two runs with the same seed are
    bit-identical, which the tests rely on. *)

type t

val create : int -> t
(** Seed with any integer. *)

val copy : t -> t
val next_int64 : t -> int64
val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> min:int -> max:int -> int
(** Uniform in [\[min, max\]] inclusive. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> p:float -> bool
(** True with probability [p]. *)

val bool_then_int : t -> p:float -> if_true:int -> if_false:int -> int
(** [bool_then_int t ~p ~if_true ~if_false] draws a {!bool} at
    probability [p] to choose a bound, then an {!int} in that bound —
    exactly equivalent to the two calls in sequence, fused so the hot
    data-stream path pays one call and no boxed intermediates.
    @raise Invalid_argument if either bound is [<= 0]. *)

val split : t -> t
(** Derive an independent stream (for per-function sub-generators). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates. *)

val fingerprint : t -> add:(int -> unit) -> unit
(** Emit the generator state (as two ints) — used by the steady-state
    fast-forward detector, where a state mismatch must veto skipping.
    The splitmix64 state strictly advances per draw, so a stream that
    keeps drawing never fingerprints equal — exactly the conservative
    behaviour wanted. *)
