(* Field order: see Spec.t.  The [make] helper centralises defaults so
   each benchmark states only what distinguishes it. *)
let make ~name ~seed ~funcs ~blocks:(bmin, bmax) ?(instrs = (3, 9))
    ?(loop_depth = 2) ?(trips = 12) ?(hot_frac = 0.25) ?(hot_bias = 0.85)
    ?(taken = 0.45) ?(mem = 0.25) ?(mac = 0.05) ?(ws = 64 * 1024)
    ?(large = 120_000) () =
  let imin, imax = instrs in
  {
    Spec.name;
    seed;
    num_funcs = funcs;
    blocks_per_func_min = bmin;
    blocks_per_func_max = bmax;
    instrs_per_block_min = imin;
    instrs_per_block_max = imax;
    max_loop_depth = loop_depth;
    avg_loop_trips = trips;
    hot_func_fraction = hot_frac;
    hot_call_bias = hot_bias;
    if_taken_bias = taken;
    mem_ratio = mem;
    mac_ratio = mac;
    data_working_set_bytes = ws;
    trace_blocks_large = large;
    trace_blocks_small = large;
  }

(* Automotive / telecom kernels: tiny hot loops, high trip counts. *)
let bitcount =
  make ~name:"bitcount" ~seed:101 ~funcs:14 ~blocks:(3, 8) ~instrs:(3, 7)
    ~loop_depth:1 ~trips:40 ~hot_frac:0.5 ~mem:0.10 ~mac:0.0 ~ws:(4 * 1024) ()

let susan name seed mac =
  (* Image kernels: nested pixel loops over a medium code base. *)
  make ~name ~seed ~funcs:56 ~blocks:(8, 20) ~loop_depth:3 ~trips:18
    ~hot_frac:0.35 ~mem:0.30 ~mac ~ws:(128 * 1024) ()

let susan_c = susan "susan_c" 102 0.08
let susan_e = susan "susan_e" 103 0.10
let susan_s = susan "susan_s" 104 0.12

let jpeg name seed =
  (* DCT codecs: larger code, moderate loops, MAC heavy. *)
  make ~name ~seed ~funcs:170 ~blocks:(6, 16) ~loop_depth:2 ~trips:10
    ~hot_frac:0.35 ~hot_bias:0.82 ~mem:0.28 ~mac:0.12 ~ws:(256 * 1024) ()

let cjpeg = jpeg "cjpeg" 105
let djpeg = jpeg "djpeg" 106

let tiff name seed =
  (* libtiff tools: big library code, shallow loops, cold error paths. *)
  make ~name ~seed ~funcs:240 ~blocks:(6, 14) ~loop_depth:2 ~trips:8
    ~hot_frac:0.42 ~hot_bias:0.80 ~mem:0.30 ~ws:(512 * 1024) ()

let tiff2bw = tiff "tiff2bw" 107
let tiff2rgba = tiff "tiff2rgba" 108
let tiffdither = tiff "tiffdither" 109
let tiffmedian = tiff "tiffmedian" 110

let patricia =
  (* Trie lookups: pointer chasing, branchy, poor data locality. *)
  make ~name:"patricia" ~seed:111 ~funcs:40 ~blocks:(5, 12) ~instrs:(3, 7)
    ~loop_depth:2 ~trips:6 ~hot_frac:0.40 ~taken:0.5 ~mem:0.38 ~mac:0.0
    ~ws:(1024 * 1024) ()

let ispell =
  (* Large code footprint, the I-cache stressor of the suite. *)
  make ~name:"ispell" ~seed:112 ~funcs:320 ~blocks:(8, 18) ~loop_depth:2
    ~trips:7 ~hot_frac:0.62 ~hot_bias:0.75 ~taken:0.5 ~mem:0.30
    ~ws:(768 * 1024) ~large:150_000 ()

let rsynth =
  make ~name:"rsynth" ~seed:113 ~funcs:260 ~blocks:(8, 18) ~loop_depth:2
    ~trips:9 ~hot_frac:0.55 ~hot_bias:0.78 ~mem:0.26 ~mac:0.15
    ~ws:(384 * 1024) ~large:150_000 ()

let blowfish name seed =
  (* Feistel rounds: one dominant unrolled loop. *)
  make ~name ~seed ~funcs:22 ~blocks:(6, 12) ~instrs:(5, 11) ~loop_depth:1
    ~trips:30 ~hot_frac:0.35 ~mem:0.22 ~mac:0.0 ~ws:(8 * 1024) ()

let blowfish_d = blowfish "blowfish_d" 114
let blowfish_e = blowfish "blowfish_e" 115

let rijndael name seed =
  (* AES with unrolled rounds: big straight-line blocks. *)
  make ~name ~seed ~funcs:28 ~blocks:(8, 16) ~instrs:(6, 14) ~loop_depth:1
    ~trips:24 ~hot_frac:0.3 ~mem:0.26 ~mac:0.0 ~ws:(16 * 1024) ()

let rijndael_d = rijndael "rijndael_d" 116
let rijndael_e = rijndael "rijndael_e" 117

let sha =
  make ~name:"sha" ~seed:118 ~funcs:15 ~blocks:(6, 12) ~instrs:(5, 10)
    ~loop_depth:1 ~trips:35 ~hot_frac:0.4 ~mem:0.18 ~mac:0.0 ~ws:(8 * 1024) ()

let adpcm name seed =
  (* ADPCM codec: a single tiny decode/encode loop. *)
  make ~name ~seed ~funcs:8 ~blocks:(4, 8) ~instrs:(3, 8) ~loop_depth:1
    ~trips:60 ~hot_frac:0.5 ~mem:0.20 ~mac:0.05 ~ws:(4 * 1024) ()

let rawcaudio = adpcm "rawcaudio" 119
let rawdaudio = adpcm "rawdaudio" 120

let crc =
  make ~name:"crc" ~seed:121 ~funcs:6 ~blocks:(3, 6) ~instrs:(3, 6)
    ~loop_depth:1 ~trips:80 ~hot_frac:0.5 ~mem:0.15 ~mac:0.0 ~ws:(2 * 1024) ()

let fft name seed =
  (* Butterfly loops: MAC dominated, medium code. *)
  make ~name ~seed ~funcs:36 ~blocks:(6, 14) ~loop_depth:3 ~trips:14
    ~hot_frac:0.40 ~mem:0.24 ~mac:0.20 ~ws:(64 * 1024) ()

let fft_fwd = fft "fft" 122
let fft_inv = fft "fft_i" 123

let all =
  [
    bitcount;
    susan_c;
    susan_e;
    susan_s;
    cjpeg;
    djpeg;
    tiff2bw;
    tiff2rgba;
    tiffdither;
    tiffmedian;
    patricia;
    ispell;
    rsynth;
    blowfish_d;
    blowfish_e;
    rijndael_d;
    rijndael_e;
    sha;
    rawcaudio;
    rawdaudio;
    crc;
    fft_fwd;
    fft_inv;
  ]

(* Loop-dominated long-trip-count variants: the steady-state
   fast-forward showcase.  Pure-compute kernels (mem_ratio 0) with
   chunky straight-line bodies inside a single tight loop level — the
   trace is long periodic regions whose iterations touch no data
   stream, so the fast-forward engine converges after a couple of
   recorded iterations and skips the rest.  [mem:0.0] matters: any
   data access moves the stream cursors (or draws from the RNG) every
   iteration and vetoes fast-forward; these variants model
   table-free, register-resident inner loops. *)
let loop_variant ~name ~seed ~funcs ~blocks ~instrs ~taken =
  make ~name ~seed ~funcs ~blocks ~instrs ~loop_depth:1 ~trips:60
    ~hot_frac:0.5 ~taken ~mem:0.0 ~mac:0.0 ~ws:64 ~large:600_000 ()

(* In-body if-diamonds draw a fresh side every visit, so a diamond in
   a hot loop makes almost no two consecutive iterations trace
   identically, defeating period detection.  [crc_loop] keeps a
   budget big enough for occasional diamonds (a mixed shape);
   [adpcm_loop] and [sha_loop] use a 3-4 block budget, below the
   5-block minimum the generator needs to emit an if, modelling the
   branch-free unrolled/predicated kernels where steady-state
   fast-forward shines. *)
let crc_loop =
  loop_variant ~name:"crc_loop" ~seed:221 ~funcs:6 ~blocks:(3, 6)
    ~instrs:(20, 32) ~taken:0.5

let adpcm_loop =
  loop_variant ~name:"adpcm_loop" ~seed:222 ~funcs:6 ~blocks:(3, 4)
    ~instrs:(16, 28) ~taken:0.1

let sha_loop =
  loop_variant ~name:"sha_loop" ~seed:223 ~funcs:6 ~blocks:(3, 4)
    ~instrs:(48, 72) ~taken:0.9

let loops = [ crc_loop; adpcm_loop; sha_loop ]
let loop_names = List.map (fun s -> s.Spec.name) loops
let names = List.map (fun s -> s.Spec.name) all

let find name = List.find (fun s -> s.Spec.name = name) (all @ loops)

let tiny =
  make ~name:"tiny" ~seed:7 ~funcs:5 ~blocks:(3, 6) ~instrs:(3, 6)
    ~loop_depth:1 ~trips:5 ~hot_frac:0.5 ~large:2_000 ()
