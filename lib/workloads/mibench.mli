(** The 23 MiBench benchmarks of the paper's evaluation (Section 5).

    Each specification mirrors the corresponding MiBench program's
    observable fetch behaviour: static code size, loop structure, hot
    working-set size, call-graph shape and memory intensity.  The
    excluded programs (lame, mad, typeset, ghostscript, gsm — rejected
    by the authors' gcc; basicmath, qsort, dijkstra, stringsearch —
    inconsistent train/test programs) are likewise omitted here. *)

val all : Spec.t list
(** In the order of the paper's Figure 4 x-axis. *)

val names : string list

val loops : Spec.t list
(** Loop-dominated long-trip-count variants ([crc_loop], [adpcm_loop],
    [sha_loop]): pure-compute kernels (no data accesses) with chunky
    bodies in tight single-level loops — long periodic trace regions
    the steady-state fast-forward engine can skip.  Not part of {!all}
    (they are perf/fast-forward fixtures, not paper benchmarks). *)

val loop_names : string list

val find : string -> Spec.t
(** Looks up {!all} and {!loops} by name.
    @raise Not_found for an unknown name. *)

val tiny : Spec.t
(** A miniature benchmark for unit tests and the quickstart example:
    runs in milliseconds. *)
