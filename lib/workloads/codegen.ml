open Wp_isa
open Wp_cfg

type t = {
  spec : Spec.t;
  graph : Icfg.t;
  taken_prob : float array;
  hot_funcs : bool array;
}

(* Per-function intermediate form.  Blocks are described first (so
   forward control transfers can be patched), then emitted to the
   builder in description order, which preserves every fall-through
   adjacency in the original binary layout. *)
type term =
  | T_fallthrough of int ref  (** local index of the next block *)
  | T_branch of { taken : int ref; ft : int ref; prob : float }
  | T_jump of int ref
  | T_call of { callee : Func.id; cont : int ref }
  | T_return

type blk = { body : Instr.t array; term : term }

(* A hole is a forward reference waiting for the next emitted block. *)
type hole = int ref

let unpatched = -1

let sample_plain_instr spec rng =
  let r = Rng.float rng in
  if r < spec.Spec.mem_ratio then begin
    let locality =
      let l = Rng.float rng in
      if l < 0.5 then Instr.Sequential
      else if l < 0.75 then Instr.Strided ((1 + Rng.int rng 16) * 4)
      else Instr.Random_within spec.Spec.data_working_set_bytes
    in
    if Rng.bool rng ~p:0.6 then Instr.load locality else Instr.store locality
  end
  else if r < spec.Spec.mem_ratio +. spec.Spec.mac_ratio then Instr.mac
  else begin
    match Rng.int rng 5 with
    | 0 -> Instr.alu Opcode.Add
    | 1 -> Instr.alu Opcode.Sub
    | 2 -> Instr.alu Opcode.Logic
    | 3 -> Instr.alu Opcode.Move
    | _ -> Instr.alu Opcode.Compare
  end

(* [n] instructions, the last being [last]. *)
let instrs spec rng ~n ~last =
  Array.init n (fun i ->
      if i = n - 1 then last else sample_plain_instr spec rng)

let plain_body spec rng ~n =
  Array.init n (fun _ -> sample_plain_instr spec rng)

(* The call graph is layered like a real application: [main] calls a
   set of phase functions, phases call mid-level helpers, helpers call
   leaves.  Leaves contain no calls, and only leaves may be called from
   inside loops; both rules bound the dynamic size of one program run
   (no multiplicative call-in-loop blow-up through the call DAG) while
   the layering makes a run sweep a wide slice of the static code. *)
type zones = { phase_end : int; leaf_start : int }

let zones_of ~num_funcs =
  let phase_end = min num_funcs (2 + (num_funcs / 10)) in
  let leaf_start = max phase_end (num_funcs - max 1 (num_funcs * 2 / 5)) in
  { phase_end; leaf_start }

type fn_state = {
  spec : Spec.t;
  rng : Rng.t;
  mutable blks : blk list;  (** reversed *)
  mutable nblks : int;
  mutable probs : float list;  (** reversed, aligned with blks *)
  func_id : Func.id;
  num_funcs : int;
  hot : bool array;
  zones : zones;
  mutable depth0_calls : int;
}

let fresh st ~body ~term ~prob =
  if Array.length body = 0 then
    invalid_arg "Codegen.fresh: empty block body";
  let idx = st.nblks in
  st.blks <- { body; term } :: st.blks;
  st.probs <- prob :: st.probs;
  st.nblks <- idx + 1;
  idx

let patch holes idx = List.iter (fun r -> r := idx) holes

let block_len st =
  Rng.int_in st.rng ~min:st.spec.Spec.instrs_per_block_min
    ~max:st.spec.Spec.instrs_per_block_max

let clamp lo hi x = if x < lo then lo else if x > hi then hi else x

let branch_prob st =
  clamp 0.05 0.95 (st.spec.Spec.if_taken_bias +. (Rng.float st.rng -. 0.5) *. 0.4)

(* Latch continue-probability for [trips] expected iterations. *)
let latch_prob trips = float_of_int trips /. float_of_int (trips + 1)

(* Call targets descend one layer: main -> phases -> mids -> leaves.
   In-loop calls ([leaf_only]) always pick from the leaf zone. *)
let callee_range st ~leaf_only =
  let n = st.num_funcs in
  let { phase_end; leaf_start } = st.zones in
  let lo, hi =
    if leaf_only then (leaf_start, n - 1)
    else if st.func_id = 0 then (1, phase_end - 1)
    else if st.func_id < phase_end then (phase_end, leaf_start - 1)
    else (leaf_start, n - 1)
  in
  (* Degenerate zones (tiny programs): fall back to any later id. *)
  let lo = max lo (st.func_id + 1) in
  if lo > hi then (st.func_id + 1, n - 1) else (lo, hi)

let choose_callee st ~leaf_only =
  let lo, hi = callee_range st ~leaf_only in
  if lo > hi then None
  else begin
    (* Leaf targets are drawn uniformly: each helper binds its own
       leaves, so a phase's working set spans distinct code instead of
       every helper sharing one hot leaf.  Hotness of leaves emerges
       from the loops around their call sites. *)
    let prefer_hot =
      (not leaf_only) && Rng.bool st.rng ~p:st.spec.Spec.hot_call_bias
    in
    let hot_candidates =
      let rec collect i acc =
        if i > hi then acc else collect (i + 1) (if st.hot.(i) then i :: acc else acc)
      in
      collect lo []
    in
    match (prefer_hot, hot_candidates) with
    | true, _ :: _ ->
        let arr = Array.of_list hot_candidates in
        Some arr.(Rng.int st.rng (Array.length arr))
    | true, [] | false, _ -> Some (Rng.int_in st.rng ~min:lo ~max:hi)
  end

let is_leaf st = st.func_id >= st.zones.leaf_start

(* Emit one straight block; possibly a call site.  Inside loops only
   leaf callees are allowed (see [fn_state.leaf_start]); leaf
   functions never call. *)
let emit_straight st ~depth : int * hole list =
  let n = block_len st in
  let is_phase = st.func_id > 0 && st.func_id < st.zones.phase_end in
  let depth0_call_p =
    if st.func_id = 0 then 0.75 else if is_phase then 0.50 else 0.30
  in
  let callee =
    if is_leaf st then None
    else if depth = 0 then
      if Rng.bool st.rng ~p:depth0_call_p then choose_callee st ~leaf_only:false
      else None
    else if depth = 1 then
      (* Phase loops cycle over mid-level helpers (whose own loops call
         leaves), so one phase's instantaneous working set spans many
         functions; mid loops call leaves only, bounding the blow-up. *)
      if is_phase && Rng.bool st.rng ~p:0.30 then
        choose_callee st ~leaf_only:false
      else if Rng.bool st.rng ~p:0.28 then choose_callee st ~leaf_only:true
      else None
    else None
  in
  match callee with
  | Some callee ->
      if depth = 0 then st.depth0_calls <- st.depth0_calls + 1;
      let cont = ref unpatched in
      let idx =
        fresh st
          ~body:(instrs st.spec st.rng ~n ~last:Instr.call)
          ~term:(T_call { callee; cont }) ~prob:0.0
      in
      (idx, [ cont ])
  | None ->
      let hole = ref unpatched in
      let idx =
        fresh st ~body:(plain_body st.spec st.rng ~n)
          ~term:(T_fallthrough hole) ~prob:0.0
      in
      (idx, [ hole ])

(* Budgeted recursive generation of a region sequence.  Returns the
   first emitted block's index and the trailing holes to patch to
   whatever follows the sequence.  [budget] counts blocks,
   approximately. *)
let rec emit_seq st ~budget ~depth ~entry_holes : hole list =
  if budget <= 0 then entry_holes
  else begin
    let remaining, holes =
      if depth < st.spec.Spec.max_loop_depth && budget >= 4 && Rng.bool st.rng ~p:0.30
      then emit_loop st ~budget ~depth ~entry_holes
      else if budget >= 5 && Rng.bool st.rng ~p:0.35 then
        emit_if st ~budget ~depth ~entry_holes
      else begin
        let idx, holes = emit_straight st ~depth in
        patch entry_holes idx;
        (budget - 1, holes)
      end
    in
    emit_seq st ~budget:remaining ~depth ~entry_holes:holes
  end

and emit_loop st ~budget ~depth ~entry_holes : int * hole list =
  (* body_first ... body blocks ... latch(Branch taken->body_first). *)
  let body_budget = 1 + Rng.int st.rng (min (budget - 2) 6) in
  let first_idx = st.nblks in
  let body_holes =
    emit_seq st ~budget:body_budget ~depth:(depth + 1) ~entry_holes
  in
  (* The sequence emitted at least one block (budget >= 1), so
     [first_idx] is the loop header. *)
  let trips =
    (* Leaves are the ultra-hot kernels: their loops iterate hard
       (hot leaves doubly so).  Non-leaf loops iterate lightly, so the
       multi-function working set of a phase is cycled rather than
       parked in one helper.  Inner levels of a nest also iterate less
       so a deep nest cannot swallow a whole run's block budget. *)
    let base = st.spec.Spec.avg_loop_trips in
    let scaled =
      if is_leaf st then
        (* A few leaves are the super-hot kernels that dominate the
           dynamic profile; hot leaves iterate 4x, cold ones 1x. *)
        if st.hot.(st.func_id) then base * 4 else base
      else max 2 (base / 3)
    in
    let tapered = max 2 (scaled / (depth + 1)) in
    max 1 (int_of_float (float_of_int tapered *. (0.5 +. Rng.float st.rng)))
  in
  let exit_hole = ref unpatched in
  let taken = ref first_idx in
  let latch =
    fresh st
      ~body:(instrs st.spec st.rng ~n:(max 2 (block_len st / 2)) ~last:Instr.branch)
      ~term:(T_branch { taken; ft = exit_hole; prob = latch_prob trips })
      ~prob:(latch_prob trips)
  in
  patch body_holes latch;
  (budget - body_budget - 1, [ exit_hole ])

and emit_if st ~budget ~depth ~entry_holes : int * hole list =
  let prob = branch_prob st in
  let taken = ref unpatched and ft = ref unpatched in
  let cond =
    fresh st
      ~body:(instrs st.spec st.rng ~n:(block_len st) ~last:Instr.branch)
      ~term:(T_branch { taken; ft; prob })
      ~prob
  in
  patch entry_holes cond;
  let arm_budget b = 1 + Rng.int st.rng (max 1 (min b 4)) in
  (* Then-arm: falls in from the cond block, ends with a jump over the
     else-arm. *)
  let then_budget = arm_budget ((budget - 2) / 2) in
  let then_first = st.nblks in
  let then_holes =
    emit_seq st ~budget:then_budget ~depth ~entry_holes:[]
  in
  ft := then_first;
  let join_hole = ref unpatched in
  let jump_idx =
    fresh st
      ~body:(instrs st.spec st.rng ~n:1 ~last:Instr.jump)
      ~term:(T_jump join_hole) ~prob:0.0
  in
  patch then_holes jump_idx;
  (* Else-arm: entered by the taken edge, falls through to the join. *)
  let else_budget = arm_budget ((budget - 2) / 2) in
  let else_first = st.nblks in
  let else_holes =
    emit_seq st ~budget:else_budget ~depth ~entry_holes:[]
  in
  taken := else_first;
  (budget - then_budget - else_budget - 2, join_hole :: else_holes)

let emit_function ~spec ~rng ~func_id ~num_funcs ~hot ~zones =
  let st =
    {
      spec;
      rng;
      blks = [];
      nblks = 0;
      probs = [];
      func_id;
      num_funcs;
      hot;
      zones;
      depth0_calls = 0;
    }
  in
  let budget =
    if func_id = 0 then
      (* main is a small driver: a prologue plus the phase loop below.
         Random loops in main would starve the phase sweep. *)
      2
    else
      Rng.int_in rng ~min:spec.Spec.blocks_per_func_min
        ~max:spec.Spec.blocks_per_func_max
  in
  (* The entry must exist even with a tiny budget: emit the body, then
     the return block that all trailing holes reach. *)
  let trailing =
    if func_id = 0 then begin
      let hole = ref unpatched in
      let idx =
        fresh st
          ~body:(plain_body st.spec st.rng ~n:(block_len st))
          ~term:(T_fallthrough hole) ~prob:0.0
      in
      ignore idx;
      [ hole ]
    end
    else emit_seq st ~budget ~depth:0 ~entry_holes:[]
  in
  ignore budget;
  (* Every non-leaf function is guaranteed some unconditional top-level
     call sites (main drives several phases); without this, an unlucky
     seed produces a main that returns immediately and the benchmark
     degenerates.  main's phase calls sit inside an outer loop - the
     program processes several work items per run - so every outer
     iteration sweeps the whole executed footprint through the
     instruction cache, which is what makes cache size matter. *)
  let append_call trailing callee =
    let cont = ref unpatched in
    let idx =
      fresh st
        ~body:(instrs st.spec st.rng ~n:(block_len st) ~last:Instr.call)
        ~term:(T_call { callee; cont })
        ~prob:0.0
    in
    patch !trailing idx;
    trailing := [ cont ];
    idx
  in
  let append_driver_loop trailing ~wanted ~trips =
    let first_call = ref (-1) in
    for _ = 1 to wanted do
      match choose_callee st ~leaf_only:false with
      | None -> ()
      | Some callee ->
          let idx = append_call trailing callee in
          if !first_call < 0 then first_call := idx
    done;
    if !first_call >= 0 && trips > 1 then begin
      let prob = latch_prob trips in
      let exit_hole = ref unpatched in
      let latch =
        fresh st
          ~body:(instrs st.spec st.rng ~n:2 ~last:Instr.branch)
          ~term:(T_branch { taken = ref !first_call; ft = exit_hole; prob })
          ~prob
      in
      patch !trailing latch;
      trailing := [ exit_hole ]
    end
  in
  let trailing = ref trailing in
  if func_id = 0 then
    (* main sweeps its phases ~3 times per run. *)
    append_driver_loop trailing
      ~wanted:(max 4 (min 14 (zones.phase_end - 1)))
      ~trips:3
  else if func_id < zones.phase_end then
    (* A phase iterates over a pipeline of mid-level helpers, so its
       loop's instruction working set spans several functions at
       once. *)
    begin
      let mids = max 1 (zones.leaf_start - zones.phase_end) in
      append_driver_loop trailing
        ~wanted:(max 3 (min 8 (mids / 4)))
        ~trips:(max 4 spec.Spec.avg_loop_trips)
    end
  else if not (is_leaf st) then begin
    let missing = max 0 (1 - st.depth0_calls) in
    for _ = 1 to missing do
      match choose_callee st ~leaf_only:false with
      | None -> ()
      | Some callee -> ignore (append_call trailing callee)
    done
  end;
  let trailing = !trailing in
  let ret_idx =
    fresh st
      ~body:(instrs spec rng ~n:(max 1 (block_len st / 2)) ~last:Instr.return)
      ~term:T_return ~prob:0.0
  in
  patch trailing ret_idx;
  (Array.of_list (List.rev st.blks), Array.of_list (List.rev st.probs))

let generate spec =
  (match Spec.validate spec with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Codegen.generate: " ^ msg));
  let rng = Rng.create spec.Spec.seed in
  let num_funcs = spec.Spec.num_funcs in
  let hot = Array.make num_funcs false in
  hot.(0) <- true;
  for i = 1 to num_funcs - 1 do
    hot.(i) <- Rng.bool rng ~p:spec.Spec.hot_func_fraction
  done;
  (* Phase 1: describe every function. *)
  let zones = zones_of ~num_funcs in
  let descriptions =
    Array.init num_funcs (fun func_id ->
        emit_function ~spec ~rng:(Rng.split rng) ~func_id ~num_funcs ~hot
          ~zones)
  in
  (* Phase 2: emit to the builder; record the global id of each local
     block and each function entry. *)
  let builder = Icfg.Builder.create () in
  let global_base = Array.make num_funcs 0 in
  Array.iteri
    (fun func_id (blks, _) ->
      let fid = Icfg.Builder.add_func builder ~name:(Printf.sprintf "f%d" func_id) in
      if fid <> func_id then
        invalid_arg
          (Printf.sprintf
             "Codegen.generate: builder assigned function id %d, expected %d"
             fid func_id);
      Array.iteri
        (fun local (b : blk) ->
          let gid = Icfg.Builder.add_block builder ~func:func_id b.body in
          if local = 0 then global_base.(func_id) <- gid)
        blks)
    descriptions;
  (* Phase 3: edges, now that every id (including callee entries) is
     known.  Local index i of function f has global id base(f) + i
     because blocks were added contiguously. *)
  let nblocks = ref 0 in
  Array.iter (fun (blks, _) -> nblocks := !nblocks + Array.length blks) descriptions;
  let taken_prob = Array.make !nblocks 0.0 in
  Array.iteri
    (fun func_id (blks, probs) ->
      let base = global_base.(func_id) in
      Array.iteri
        (fun local (b : blk) ->
          let src = base + local in
          taken_prob.(src) <- probs.(local);
          match b.term with
          | T_fallthrough nxt ->
              Icfg.Builder.add_edge builder ~src ~dst:(base + !nxt) Edge.Fallthrough
          | T_branch { taken; ft; prob = _ } ->
              Icfg.Builder.add_edge builder ~src ~dst:(base + !taken) Edge.Taken;
              Icfg.Builder.add_edge builder ~src ~dst:(base + !ft) Edge.Fallthrough
          | T_jump nxt ->
              Icfg.Builder.add_edge builder ~src ~dst:(base + !nxt) Edge.Taken
          | T_call { callee; cont } ->
              Icfg.Builder.add_edge builder ~src ~dst:global_base.(callee)
                Edge.Call_to;
              Icfg.Builder.add_edge builder ~src ~dst:(base + !cont)
                Edge.Fallthrough
          | T_return -> ())
        blks)
    descriptions;
  Icfg.Builder.set_entry builder global_base.(0);
  let graph = Icfg.Builder.finish builder in
  { spec; graph; taken_prob; hot_funcs = hot }

let hot_block t id = t.hot_funcs.((Icfg.block t.graph id).Basic_block.func)
