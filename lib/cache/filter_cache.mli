(** A filter cache (Kin et al., MICRO'97) — the "extra buffer between
    the CPU and the instruction cache" family of related work the
    paper contrasts with (Sections 1 and 7).

    A tiny direct-mapped L0 sits in front of the main I-cache.  L0
    hits are very cheap; L0 misses pay an extra cycle {e and} a full
    L1 access, then refill the L0 line — the fetch-latency cost the
    paper calls out.  This module pairs the L0 with any L1 access
    performed by the caller, so the fetch engine charges L1 energy
    through the ordinary path. *)

type t

type result = {
  l0_hit : bool;
  l0_tag_comparisons : int;  (** 1 per access (direct-mapped) *)
  penalty_cycles : int;  (** 1 on an L0 miss *)
}

val create : ?probe:Wp_obs.Probe.t -> l0:Geometry.t -> unit -> t
(** [probe] observes the L0's searches/fills plus one [L0_access]
    event per access; pure observation.
    @raise Invalid_argument unless the L0 is direct-mapped. *)

val l0_geometry : t -> Geometry.t

val access : t -> Wp_isa.Addr.t -> result
(** Probe the L0; on a miss the line is refilled into the L0 (the
    caller performs and charges the L1 access). *)

val flush : t -> unit

val fingerprint : t -> add:(int -> unit) -> unit
(** Canonical state fingerprint of the L0 contents for the
    steady-state fast-forward detector (the backing L1 is owned and
    fingerprinted by the fetch engine). *)
