(** The CAM-tag set-associative cache (XScale organisation).

    Each set is a fully-associative CAM sub-bank: a lookup precharges
    the match lines of the searched ways, broadcasts the tag, and on a
    match reads the corresponding data word.  The model tracks exactly
    the events the energy model charges for: tag comparisons performed,
    match lines precharged, data reads and line fills.

    The cache never fills implicitly — a lookup reports a miss and the
    caller decides how (and into which way) to fill.  This is what lets
    the fetch engine implement baseline, way-placement and
    way-memoization behaviour on one substrate. *)

type t

type outcome = {
  hit : bool;
  way : int;  (** way that hit, or [-1] on a miss *)
  tag_comparisons : int;  (** CAM compares performed *)
  ways_precharged : int;  (** match lines precharged *)
}

type fill_policy =
  | Victim_by_policy  (** round-robin or LRU chooses the way *)
  | Forced_way of int  (** way-placement pins the way *)

type eviction = { set : int; way : int; tag : int }
(** A valid line that was overwritten by a fill. *)

val create : ?probe:Wp_obs.Probe.t -> Geometry.t -> replacement:Replacement.t -> t
(** [probe] observes every CAM search ([Tag_search], with the number of
    ways precharged) and line fill ([Line_fill]); pure observation,
    never affects behaviour. *)

val geometry : t -> Geometry.t

val lookup_full : t -> Wp_isa.Addr.t -> outcome
(** Normal access: search every way of the address's set
    ([assoc] comparisons, [assoc] precharges). *)

val lookup_full_way : t -> Wp_isa.Addr.t -> int
(** Allocation-free twin of {!lookup_full} for the per-fetch simulator
    paths: identical cache-state and probe effects, but returns just
    the hit way ([-1] on a miss).  [tag_comparisons] and
    [ways_precharged] are implied (both [assoc]). *)

val lookup_line_run : t -> Wp_isa.Addr.t -> n:int -> outcome
(** [n] back-to-back {!lookup_full} accesses to one {e already
    resident} line, charged in a single call: the outcome aggregates
    the run ([tag_comparisons] and [ways_precharged] are [n * assoc]),
    [n] [Tag_search] probe events are emitted, and the replacement
    state is left exactly as [n] successive [lookup_full] calls would
    leave it.  The batched fetch path uses this for same-line streaks
    when tag elision is disabled.
    @raise Invalid_argument if [n <= 0] or the line is not resident. *)

val lookup_line_run_way : t -> Wp_isa.Addr.t -> n:int -> int
(** Allocation-free twin of {!lookup_line_run}: identical cache-state
    and probe effects, returns just the resident way
    ([tag_comparisons] and [ways_precharged] are implied, [n * assoc]
    each).
    @raise Invalid_argument if [n <= 0] or the line is not resident. *)

val lookup_way : t -> Wp_isa.Addr.t -> way:int -> outcome
(** Way-placement access: probe a single way (1 comparison,
    1 precharge).  A line resident in a {e different} way is
    deliberately not found — mirroring the hardware. *)

val lookup_way_hit : t -> Wp_isa.Addr.t -> way:int -> bool
(** Allocation-free twin of {!lookup_way}: identical cache-state and
    probe effects, returns just the hit bit (1 comparison and
    1 precharge are implied).
    @raise Invalid_argument if [way] is out of range. *)

val fill : t -> Wp_isa.Addr.t -> fill_policy -> int * eviction option
(** Install the line for [addr]; returns the way used and the evicted
    valid line, if any.  If the line is already resident this is a
    no-op returning its way (no eviction).
    @raise Invalid_argument if a forced way is out of range. *)

val fill_absent : t -> Wp_isa.Addr.t -> fill_policy -> int * eviction option
(** {!fill} for a line the caller has just observed to miss: skips the
    redundant residence scan.  Behaviour is identical to [fill] {e only
    when the line is absent} — the miss-path callers invoke it directly
    after a failed lookup, with no intervening cache operation. *)

val probe : t -> Wp_isa.Addr.t -> int option
(** Side-effect-free residence check (for tests and assertions). *)

val resident_way : t -> Wp_isa.Addr.t -> int
(** {!probe} without the option: the resident way, or [-1].  For
    assertions on per-fetch paths where the option would allocate. *)

val invalidate : t -> set:int -> way:int -> unit
val flush : t -> unit
val valid_lines : t -> int
val resident_tags : t -> set:int -> (int * int) list
(** [(way, tag)] pairs of valid lines in a set, ascending way order. *)

val fingerprint : t -> add:(int -> unit) -> unit
(** Emit a canonical fingerprint of the cache state: tags ([-1] for
    invalid slots), per-set MRU and round-robin cursors, and — under
    LRU — each way's age {e rank} within its set rather than its raw
    timestamp (only the ordering is observable, via victim choice).
    Equal fingerprints imply bisimilar caches: every subsequent lookup,
    fill and victim choice behaves identically.  Used by the
    steady-state fast-forward detector. *)

val pp : Format.formatter -> t -> unit
