type t = {
  size_bytes : int;
  assoc : int;
  line_bytes : int;
  (* Derived address-split constants, cached by [make]: the per-access
     helpers below run on every simulated fetch and data reference, so
     they must be shift/mask on precomputed fields, not log2/division
     recomputed per call. *)
  cached_sets : int;
  cached_offset_bits : int;
  cached_set_bits : int;
  cached_set_mask : int;  (** [cached_sets - 1] *)
  cached_tag_shift : int;  (** [offset_bits + set_bits] *)
  cached_line_mask : int;  (** [lnot (line_bytes - 1)] *)
  cached_instr_shift : int;  (** [log2 Instr.size_bytes] *)
}

let address_bits = 32

let make ~size_bytes ~assoc ~line_bytes =
  let pot = Wp_isa.Addr.is_power_of_two in
  if not (pot size_bytes && pot assoc && pot line_bytes) then
    invalid_arg "Geometry.make: size, assoc and line must be powers of two";
  if line_bytes < Wp_isa.Instr.size_bytes then
    invalid_arg "Geometry.make: line smaller than one instruction";
  if size_bytes < assoc * line_bytes then
    invalid_arg "Geometry.make: fewer lines than ways";
  let cached_sets = size_bytes / (assoc * line_bytes) in
  let cached_offset_bits = Wp_isa.Addr.log2 line_bytes in
  let cached_set_bits = Wp_isa.Addr.log2 cached_sets in
  {
    size_bytes;
    assoc;
    line_bytes;
    cached_sets;
    cached_offset_bits;
    cached_set_bits;
    cached_set_mask = cached_sets - 1;
    cached_tag_shift = cached_offset_bits + cached_set_bits;
    cached_line_mask = lnot (line_bytes - 1);
    cached_instr_shift = Wp_isa.Addr.log2 Wp_isa.Instr.size_bytes;
  }

let sets t = t.cached_sets
let lines t = t.size_bytes / t.line_bytes
let offset_bits t = t.cached_offset_bits
let set_bits t = t.cached_set_bits
let tag_bits t = address_bits - offset_bits t - set_bits t
let way_bits t = Wp_isa.Addr.log2 t.assoc
let set_index t addr = (addr lsr t.cached_offset_bits) land t.cached_set_mask
let tag_of t addr = addr lsr t.cached_tag_shift
let line_base t addr = addr land t.cached_line_mask
let same_line t a b = a land t.cached_line_mask = b land t.cached_line_mask
let way_select t ~tag = tag land (t.assoc - 1)
let way_of_addr t addr = way_select t ~tag:(tag_of t addr)
let instr_slot t addr = (addr land (t.line_bytes - 1)) lsr t.cached_instr_shift
let slots_per_line t = t.line_bytes / Wp_isa.Instr.size_bytes
let way_span_bytes t = sets t * t.line_bytes

let to_string t =
  let size =
    if t.size_bytes >= 1024 then Printf.sprintf "%dKB" (t.size_bytes / 1024)
    else Printf.sprintf "%dB" t.size_bytes
  in
  Printf.sprintf "%s/%dway/%dB" size t.assoc t.line_bytes

let pp ppf t = Format.pp_print_string ppf (to_string t)
