type t = {
  geometry : Geometry.t;
  window : int;
  last_access : int array;  (** -1 = never accessed (always drowsy) *)
  mutable accounted_awake : float;
      (** awake line-ticks accumulated for completed inter-access gaps *)
  probe : Wp_obs.Probe.t option;
}

let create ?probe geometry ~window =
  if window <= 0 then invalid_arg "Drowsy.create: window must be positive";
  {
    geometry;
    window;
    last_access = Array.make (Geometry.lines geometry) (-1);
    accounted_awake = 0.0;
    probe;
  }

let window t = t.window
let index t ~set ~way = (set * t.geometry.Geometry.assoc) + way

let note_access t ~now ~set ~way =
  let i = index t ~set ~way in
  let last = t.last_access.(i) in
  t.last_access.(i) <- now;
  let wake =
    if last < 0 then true (* first touch: the line was asleep *)
    else begin
      let gap = now - last in
      (* The line stayed awake for min(gap, window) of the gap — int
         comparison, not Stdlib.min (polymorphic compare) on this
         per-access path. *)
      let awake = if gap < t.window then gap else t.window in
      t.accounted_awake <- t.accounted_awake +. float_of_int awake;
      gap > t.window
    end
  in
  (match t.probe with
  | None -> ()
  | Some p -> if wake then p Wp_obs.Probe.Drowsy_wake);
  wake

let awake_line_ticks t ~now =
  (* Completed gaps plus the open tail of every touched line. *)
  let tail = ref 0.0 in
  Array.iter
    (fun last ->
      if last >= 0 then begin
        let gap = now - last in
        tail := !tail +. float_of_int (if gap < t.window then gap else t.window)
      end)
    t.last_access;
  t.accounted_awake +. !tail

let total_line_ticks t ~now =
  float_of_int (Geometry.lines t.geometry) *. float_of_int now

let reset t =
  Array.fill t.last_access 0 (Array.length t.last_access) (-1);
  t.accounted_awake <- 0.0
