type t = {
  geometry : Geometry.t;
  window : int;
  last_access : int array;  (** -1 = never accessed (always drowsy) *)
  mutable accounted_awake : float;
      (** awake line-ticks accumulated for completed inter-access gaps *)
  mutable recorder : (int -> unit) option;
      (** observes every awake increment (the integer tick count whose
          [float_of_int] is added to [accounted_awake]), in order — the
          fast-forward engine records one iteration's increments and
          replays them with {!replay_awake} *)
  probe : Wp_obs.Probe.t option;
}

let create ?probe geometry ~window =
  if window <= 0 then invalid_arg "Drowsy.create: window must be positive";
  {
    geometry;
    window;
    last_access = Array.make (Geometry.lines geometry) (-1);
    accounted_awake = 0.0;
    recorder = None;
    probe;
  }

let window t = t.window
let set_recorder t r = t.recorder <- r
let index t ~set ~way = (set * t.geometry.Geometry.assoc) + way

let note_access t ~now ~set ~way =
  let i = index t ~set ~way in
  let last = t.last_access.(i) in
  t.last_access.(i) <- now;
  let wake =
    if last < 0 then true (* first touch: the line was asleep *)
    else begin
      let gap = now - last in
      (* The line stayed awake for min(gap, window) of the gap — int
         comparison, not Stdlib.min (polymorphic compare) on this
         per-access path. *)
      let awake = if gap < t.window then gap else t.window in
      t.accounted_awake <- t.accounted_awake +. float_of_int awake;
      (match t.recorder with None -> () | Some r -> r awake);
      gap > t.window
    end
  in
  (match t.probe with
  | None -> ()
  | Some p -> if wake then p Wp_obs.Probe.Drowsy_wake);
  wake

let awake_line_ticks t ~now =
  (* Completed gaps plus the open tail of every touched line. *)
  let tail = ref 0.0 in
  Array.iter
    (fun last ->
      if last >= 0 then begin
        let gap = now - last in
        tail := !tail +. float_of_int (if gap < t.window then gap else t.window)
      end)
    t.last_access;
  t.accounted_awake +. !tail

let total_line_ticks t ~now =
  float_of_int (Geometry.lines t.geometry) *. float_of_int now

(* Canonical fingerprint of the wake state at tick [now]: each line's
   inter-access gap, capped at [window + 1].  Gaps at most [window]
   behave distinctly (they determine the next awake increment), while
   every gap beyond the window is behaviourally identical — the line is
   asleep, the next touch wakes it and credits exactly [window] awake
   ticks — so all of them canonicalise to the same value.  [-1] marks a
   never-touched line.  [accounted_awake] is a write-only accumulator
   (read only at finalisation) and is deliberately excluded. *)
let fingerprint t ~now ~add =
  let cap = t.window + 1 in
  Array.iter
    (fun last ->
      if last < 0 then add (-1)
      else begin
        let gap = now - last in
        add (if gap < cap then gap else cap)
      end)
    t.last_access

(* After fast-forwarding, shift the raw timestamp of every line touched
   since tick [since] forward by [delta]: those lines would have been
   re-touched at the same relative position in the last skipped
   iteration, so this makes the raw state exactly equal to a full
   replay's.  Untouched lines keep their timestamps (a replay would not
   have touched them either). *)
let advance_touched t ~since ~delta =
  let a = t.last_access in
  for i = 0 to Array.length a - 1 do
    if a.(i) >= since then a.(i) <- a.(i) + delta
  done

(* Replay [iters] repetitions of a recorded iteration's awake
   increments, in recorded order — bit-identical to the float additions
   [note_access] would have performed. *)
let replay_awake t a ~len ~iters =
  if len > 0 then begin
    let acc = ref t.accounted_awake in
    for _ = 1 to iters do
      for j = 0 to len - 1 do
        acc := !acc +. float_of_int (Array.unsafe_get a j)
      done
    done;
    t.accounted_awake <- !acc
  end

(* Re-express every touched line's timestamp on a new clock so that its
   inter-access gap — the only behaviourally relevant quantity — is
   preserved across the handover.  Gaps are first canonicalised to
   [window + 1] (every larger gap is behaviourally identical: asleep,
   next touch wakes and credits [window] ticks).  A gap that reaches
   past the new clock's origin cannot be represented as a non-negative
   timestamp; the line's completed awake portion is accounted
   immediately and the line reverts to never-touched, which a
   subsequent access treats exactly like any other sleeping line. *)
let rebase t ~old_now ~new_now =
  let cap = t.window + 1 in
  let a = t.last_access in
  for i = 0 to Array.length a - 1 do
    let last = a.(i) in
    if last >= 0 then begin
      let gap = old_now - last in
      let gap = if gap < cap then gap else cap in
      let last' = new_now - gap in
      if last' >= 0 then a.(i) <- last'
      else begin
        let awake = if gap < t.window then gap else t.window in
        t.accounted_awake <- t.accounted_awake +. float_of_int awake;
        (match t.recorder with None -> () | Some r -> r awake);
        a.(i) <- -1
      end
    end
  done

(* Put every line to sleep at tick [now]: close each touched line's
   open awake tail into the accumulator and mark the line
   never-touched.  Models a policy that drops all lines drowsy at a
   context switch. *)
let sleep_all t ~now =
  let a = t.last_access in
  for i = 0 to Array.length a - 1 do
    let last = a.(i) in
    if last >= 0 then begin
      let gap = now - last in
      let awake = if gap < t.window then gap else t.window in
      t.accounted_awake <- t.accounted_awake +. float_of_int awake;
      (match t.recorder with None -> () | Some r -> r awake);
      a.(i) <- -1
    end
  done

let reset t =
  Array.fill t.last_access 0 (Array.length t.last_access) (-1);
  t.accounted_awake <- 0.0
