(** Way prediction (Inoue et al., ISLPED'99) — the second hardware
    alternative the paper discusses (Sections 1 and 7).

    Each set remembers its most-recently-used way.  An access first
    probes only that way (one tag comparison, one data read); on a
    correct prediction that is the whole access.  On a misprediction
    the remaining ways are searched in a second cycle — extra energy
    {e and} a one-cycle performance penalty, the recovery cost the
    paper contrasts with way-placement's certainty. *)

type t

type result = {
  hit : bool;  (** line resident (after the second probe if needed) *)
  predicted_correctly : bool;
      (** first-probe success; false also covers misses *)
  filled : bool;
  tag_comparisons : int;
  first_probe_ways : int;  (** 1 when a prediction existed, else 0 *)
  second_probe_ways : int;  (** remaining ways searched on mispredict *)
  penalty_cycles : int;  (** 1 on mispredict or cold set *)
}

val create : ?probe:Wp_obs.Probe.t -> Geometry.t -> replacement:Replacement.t -> t
(** [probe] observes the inner CAM plus one [Way_prediction] event per
    access; pure observation. *)

val geometry : t -> Geometry.t

val access : t -> Wp_isa.Addr.t -> result
(** Perform one access (fills on miss via the replacement policy). *)

val flush : t -> unit
val mru_way : t -> set:int -> int option
(** Current prediction for a set (for tests). *)

val fingerprint : t -> add:(int -> unit) -> unit
(** Canonical state fingerprint (inner CAM + prediction table) for the
    steady-state fast-forward detector. *)
