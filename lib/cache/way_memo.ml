type invalidation = Flash_clear | Precise

type t = {
  cache : Cam_cache.t;
  invalidation : invalidation;
  nslots : int;  (** links per line = instruction slots + 1 *)
  link_valid : bool array;  (** [(set*assoc+way)*nslots + slot] *)
  link_way : int array;
  link_target : int array;  (** target line base address (model-only) *)
  backrefs : int list ref array;  (** per line: link indices pointing at it *)
  mutable last_addr : Wp_isa.Addr.t;  (** -1 when no stream context *)
  mutable last_set : int;
  mutable last_way : int;
  probe : Wp_obs.Probe.t option;
}

type result = {
  hit : bool;
  filled : bool;
  tag_comparisons : int;
  ways_precharged : int;
  link_followed : bool;
  link_written : bool;
  links_invalidated : int;
}

let links_per_line g = Geometry.slots_per_line g + 1
let link_bits g = Geometry.way_bits g + 1

let data_overhead_fraction g =
  float_of_int (links_per_line g * link_bits g)
  /. float_of_int (g.Geometry.line_bytes * 8)

let create ?(invalidation = Flash_clear) ?probe geometry ~replacement =
  let nlines = Geometry.lines geometry in
  let nslots = links_per_line geometry in
  {
    cache = Cam_cache.create ?probe geometry ~replacement;
    invalidation;
    nslots;
    link_valid = Array.make (nlines * nslots) false;
    link_way = Array.make (nlines * nslots) 0;
    link_target = Array.make (nlines * nslots) 0;
    backrefs = Array.init nlines (fun _ -> ref []);
    last_addr = -1;
    last_set = -1;
    last_way = -1;
    probe;
  }

let geometry t = Cam_cache.geometry t.cache
let line_index t ~set ~way = (set * (geometry t).Geometry.assoc) + way
let link_index t ~set ~way ~slot = (line_index t ~set ~way * t.nslots) + slot

let clear_links_of_line t ~set ~way =
  let base = line_index t ~set ~way * t.nslots in
  let cleared = ref 0 in
  for slot = 0 to t.nslots - 1 do
    if t.link_valid.(base + slot) then begin
      t.link_valid.(base + slot) <- false;
      incr cleared
    end
  done;
  !cleared

let clear_all_links t =
  let cleared = ref 0 in
  for i = 0 to Array.length t.link_valid - 1 do
    if t.link_valid.(i) then begin
      t.link_valid.(i) <- false;
      incr cleared
    end
  done;
  Array.iter (fun r -> r := []) t.backrefs;
  !cleared

(* Invalidate every link that points at the (now evicted) line.  The
   backref list may contain stale entries for links that were since
   redirected; only links still pointing here are counted. *)
let invalidate_links_to t ~set ~way =
  let here = line_index t ~set ~way in
  let refs = t.backrefs.(here) in
  let invalidated = ref 0 in
  List.iter
    (fun li ->
      if t.link_valid.(li) then begin
        let target_set = Geometry.set_index (geometry t) t.link_target.(li) in
        if target_set = set && t.link_way.(li) = way then begin
          t.link_valid.(li) <- false;
          incr invalidated
        end
      end)
    !refs;
  refs := [];
  !invalidated

let write_link t ~src_set ~src_way ~slot ~target_line ~target_way =
  let li = link_index t ~set:src_set ~way:src_way ~slot in
  t.link_valid.(li) <- true;
  t.link_way.(li) <- target_way;
  t.link_target.(li) <- target_line;
  let tgt = line_index t ~set:(Geometry.set_index (geometry t) target_line) ~way:target_way in
  let refs = t.backrefs.(tgt) in
  refs := li :: !refs;
  match t.probe with None -> () | Some p -> p Wp_obs.Probe.Link_write

(* The link slot a fetch consults: the next-line link for sequential
   crossings, the previous instruction's slot for taken transfers.
   [-1] when there is no stream context (int-encoded: this runs per
   fetch, where an option would allocate). *)
let source_slot t addr =
  if t.last_addr < 0 then -1
  else if addr = t.last_addr + Wp_isa.Instr.size_bytes then t.nslots - 1
  else Geometry.instr_slot (geometry t) t.last_addr

let full_path t addr ~slot =
  let g = geometry t in
  let set = Geometry.set_index g addr in
  let hit_way = Cam_cache.lookup_full_way t.cache addr in
  let hit = hit_way >= 0 in
  let way, filled, links_invalidated =
    if hit then (hit_way, false, 0)
    else begin
      let way, evicted =
        Cam_cache.fill_absent t.cache addr Cam_cache.Victim_by_policy
      in
      let inv =
        match (t.invalidation, evicted) with
        | _, None -> 0
        | Flash_clear, Some _ -> clear_all_links t
        | Precise, Some (e : Cam_cache.eviction) ->
            let own = clear_links_of_line t ~set:e.set ~way:e.way in
            let pointing = invalidate_links_to t ~set:e.set ~way:e.way in
            own + pointing
      in
      (match t.probe with
      | None -> ()
      | Some p -> if inv > 0 then p (Wp_obs.Probe.Links_invalidated inv));
      (way, true, inv)
    end
  in
  let link_written =
    if slot >= 0 && t.last_set >= 0 then begin
      write_link t ~src_set:t.last_set ~src_way:t.last_way ~slot
        ~target_line:(Geometry.line_base g addr) ~target_way:way;
      true
    end
    else false
  in
  t.last_addr <- addr;
  t.last_set <- set;
  t.last_way <- way;
  let assoc = g.Geometry.assoc in
  {
    hit;
    filled;
    tag_comparisons = assoc;
    ways_precharged = assoc;
    link_followed = false;
    link_written;
    links_invalidated;
  }

let fetch t addr =
  let g = geometry t in
  let slot = source_slot t addr in
  if slot < 0 then full_path t addr ~slot
  else begin
    let li = link_index t ~set:t.last_set ~way:t.last_way ~slot in
    let target_line = Geometry.line_base g addr in
    if t.link_valid.(li) && t.link_target.(li) = target_line then begin
      (* Blind link follow: zero tag comparisons, zero precharges.
         Link invalidation on eviction guarantees residence. *)
      let way = t.link_way.(li) in
      let set = Geometry.set_index g addr in
      (* Link invalidation on eviction is what makes the blind
         follow sound; check it without allocating a comparison
         witness, and fail loudly enough to debug if it ever
         breaks. *)
      let resident = Cam_cache.resident_way t.cache addr in
      if resident <> way then
        invalid_arg
          (Printf.sprintf
             "Way_memo.fetch: link (set %d, way %d, slot %d) names way %d \
              for address 0x%x, but the line is %s — residence invariant \
              broken"
             t.last_set t.last_way slot way addr
             (if resident < 0 then "not resident"
              else Printf.sprintf "resident in way %d" resident));
      t.last_addr <- addr;
      t.last_set <- set;
      t.last_way <- way;
      {
        hit = true;
        filled = false;
        tag_comparisons = 0;
        ways_precharged = 0;
        link_followed = true;
        link_written = false;
        links_invalidated = 0;
      }
    end
    else full_path t addr ~slot
  end

let note_same_line t addr =
  if t.last_addr < 0 || not (Geometry.same_line (geometry t) addr t.last_addr)
  then invalid_arg "Way_memo.note_same_line: address not in previous line";
  t.last_addr <- addr

let reset_stream t =
  t.last_addr <- -1;
  t.last_set <- -1;
  t.last_way <- -1

let flush t =
  Cam_cache.flush t.cache;
  Array.fill t.link_valid 0 (Array.length t.link_valid) false;
  Array.iter (fun r -> r := []) t.backrefs;
  reset_stream t

(* Canonical fingerprint: inner CAM state, the link table (one packed
   int per link: [way lsl 32 lor target] when valid — injective, both
   fields are small non-negatives — and -1 otherwise) and the
   previous-fetch context.  The link table dominates snapshot size, so
   it is packed to halve fast-forward fingerprint cost.  Backrefs are
   deliberately excluded: every valid link pointing at a line is in
   that line's backref list (writes append, and clears invalidate
   first), and stale extra entries — links since redirected — are
   filtered on use, so backref differences beyond the valid link set
   are behaviourally unobservable. *)
let fingerprint t ~add =
  Cam_cache.fingerprint t.cache ~add;
  for li = 0 to Array.length t.link_valid - 1 do
    if t.link_valid.(li) then
      add ((t.link_way.(li) lsl 32) lor t.link_target.(li))
    else add (-1)
  done;
  add t.last_addr;
  add t.last_set;
  add t.last_way

let valid_links t =
  Array.fold_left (fun acc v -> if v then acc + 1 else acc) 0 t.link_valid
