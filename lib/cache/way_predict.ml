type t = {
  cache : Cam_cache.t;
  mru : int array;  (** predicted way per set; -1 = no prediction yet *)
  probe : Wp_obs.Probe.t option;
}

type result = {
  hit : bool;
  predicted_correctly : bool;
  filled : bool;
  tag_comparisons : int;
  first_probe_ways : int;
  second_probe_ways : int;
  penalty_cycles : int;
}

let create ?probe geometry ~replacement =
  {
    cache = Cam_cache.create ?probe geometry ~replacement;
    mru = Array.make (Geometry.sets geometry) (-1);
    probe;
  }

let geometry t = Cam_cache.geometry t.cache
let mru_way t ~set = if t.mru.(set) < 0 then None else Some t.mru.(set)

let access t addr =
  let g = geometry t in
  let set = Geometry.set_index g addr in
  let assoc = g.Geometry.assoc in
  let predicted = t.mru.(set) in
  let finish ~hit ~predicted_correctly ~filled ~tag_comparisons
      ~first_probe_ways ~second_probe_ways ~penalty_cycles ~way =
    if way >= 0 then t.mru.(set) <- way;
    (match t.probe with
    | None -> ()
    | Some p ->
        p (Wp_obs.Probe.Way_prediction { correct = predicted_correctly }));
    {
      hit;
      predicted_correctly;
      filled;
      tag_comparisons;
      first_probe_ways;
      second_probe_ways;
      penalty_cycles;
    }
  in
  if predicted >= 0 then begin
    let first = Cam_cache.lookup_way t.cache addr ~way:predicted in
    if first.Cam_cache.hit then
      finish ~hit:true ~predicted_correctly:true ~filled:false
        ~tag_comparisons:1 ~first_probe_ways:1 ~second_probe_ways:0
        ~penalty_cycles:0 ~way:predicted
    else begin
      (* Second cycle: search the remaining ways. *)
      let second = Cam_cache.lookup_full t.cache addr in
      let remaining = assoc - 1 in
      if second.Cam_cache.hit then
        finish ~hit:true ~predicted_correctly:false ~filled:false
          ~tag_comparisons:(1 + remaining) ~first_probe_ways:1
          ~second_probe_ways:remaining ~penalty_cycles:1
          ~way:second.Cam_cache.way
      else begin
        let way, _evicted =
          Cam_cache.fill_absent t.cache addr Cam_cache.Victim_by_policy
        in
        finish ~hit:false ~predicted_correctly:false ~filled:true
          ~tag_comparisons:(1 + remaining) ~first_probe_ways:1
          ~second_probe_ways:remaining ~penalty_cycles:1 ~way
      end
    end
  end
  else begin
    (* Cold set: no prediction, full search directly (still a
       mispredict cycle in Inoue's scheme since the predicted probe
       could not be issued). *)
    let outcome = Cam_cache.lookup_full t.cache addr in
    if outcome.Cam_cache.hit then
      finish ~hit:true ~predicted_correctly:false ~filled:false
        ~tag_comparisons:assoc ~first_probe_ways:0 ~second_probe_ways:assoc
        ~penalty_cycles:1 ~way:outcome.Cam_cache.way
    else begin
      let way, _evicted =
        Cam_cache.fill_absent t.cache addr Cam_cache.Victim_by_policy
      in
      finish ~hit:false ~predicted_correctly:false ~filled:true
        ~tag_comparisons:assoc ~first_probe_ways:0 ~second_probe_ways:assoc
        ~penalty_cycles:1 ~way
    end
  end

(* Canonical fingerprint: inner CAM plus the per-set predictions.  The
   prediction table holds small way indices, so raw values are already
   canonical. *)
let fingerprint t ~add =
  Cam_cache.fingerprint t.cache ~add;
  Array.iter add t.mru

let flush t =
  Cam_cache.flush t.cache;
  Array.fill t.mru 0 (Array.length t.mru) (-1)
