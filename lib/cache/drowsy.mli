(** Drowsy lines (Flautner et al., ISCA'02 / Kaxiras et al., ISCA'01),
    the leakage-saving family the paper calls orthogonal to
    way-placement (Section 7: "these approaches ... can therefore be
    used together for additional energy savings").

    A line that has not been accessed for [window] ticks drops into a
    state-preserving low-leakage (drowsy) mode; touching a drowsy line
    costs a wake-up (one cycle plus a small energy).  The module
    tracks, per cache line, how long it spent awake, so the leakage
    accountant can split line-ticks into awake and drowsy at the end
    of a run.  Ticks are fetch counts (the fetch engine's natural
    clock); the accountant rescales them to cycles. *)

type t

val create : ?probe:Wp_obs.Probe.t -> Geometry.t -> window:int -> t
(** [probe] observes one [Drowsy_wake] event per woken access; pure
    observation.
    @raise Invalid_argument unless [window > 0]. *)

val window : t -> int

val note_access : t -> now:int -> set:int -> way:int -> bool
(** Record an access to a line at tick [now]; returns [true] when the
    line was drowsy and had to be woken (charge the wake penalty). *)

val awake_line_ticks : t -> now:int -> float
(** Total line-ticks spent awake up to [now]: every access keeps its
    line awake for at most [window] further ticks. *)

val total_line_ticks : t -> now:int -> float
(** [lines x now]. *)

val reset : t -> unit
