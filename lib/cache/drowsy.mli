(** Drowsy lines (Flautner et al., ISCA'02 / Kaxiras et al., ISCA'01),
    the leakage-saving family the paper calls orthogonal to
    way-placement (Section 7: "these approaches ... can therefore be
    used together for additional energy savings").

    A line that has not been accessed for [window] ticks drops into a
    state-preserving low-leakage (drowsy) mode; touching a drowsy line
    costs a wake-up (one cycle plus a small energy).  The module
    tracks, per cache line, how long it spent awake, so the leakage
    accountant can split line-ticks into awake and drowsy at the end
    of a run.  Ticks are fetch counts (the fetch engine's natural
    clock); the accountant rescales them to cycles. *)

type t

val create : ?probe:Wp_obs.Probe.t -> Geometry.t -> window:int -> t
(** [probe] observes one [Drowsy_wake] event per woken access; pure
    observation.
    @raise Invalid_argument unless [window > 0]. *)

val window : t -> int

val note_access : t -> now:int -> set:int -> way:int -> bool
(** Record an access to a line at tick [now]; returns [true] when the
    line was drowsy and had to be woken (charge the wake penalty). *)

val awake_line_ticks : t -> now:int -> float
(** Total line-ticks spent awake up to [now]: every access keeps its
    line awake for at most [window] further ticks. *)

val total_line_ticks : t -> now:int -> float
(** [lines x now]. *)

val set_recorder : t -> (int -> unit) option -> unit
(** Install (or clear) an observer of every awake increment: the
    integer tick count whose [float_of_int] each access adds to the
    awake accumulator, delivered in accumulation order.  The
    fast-forward engine records one loop iteration's increments and
    replays them with {!replay_awake}. *)

val fingerprint : t -> now:int -> add:(int -> unit) -> unit
(** Emit a canonical fingerprint of the wake state at tick [now]: each
    line's inter-access gap capped at [window + 1] ([-1] for a
    never-touched line).  All gaps beyond the window are behaviourally
    identical (asleep; next touch wakes and credits [window] ticks), so
    they share one canonical value.  Equal fingerprints imply identical
    future wake decisions and awake increments. *)

val advance_touched : t -> since:int -> delta:int -> unit
(** Shift the timestamp of every line touched at or after tick [since]
    forward by [delta] ticks — the fast-forward materialisation step
    that makes the raw state equal to a full replay's. *)

val replay_awake : t -> int array -> len:int -> iters:int -> unit
(** [replay_awake t a ~len ~iters] adds [iters] repetitions of the
    recorded awake increments [a.(0 .. len-1)] to the awake
    accumulator, in order — bit-identical to the additions the
    equivalent {!note_access} calls would have performed. *)

val rebase : t -> old_now:int -> new_now:int -> unit
(** Re-express every touched line's timestamp on a new clock, preserving
    each line's (canonicalised) inter-access gap: a line last touched
    [g] ticks before [old_now] behaves, after the call, exactly like a
    line last touched [g] ticks before [new_now].  Lines whose gap
    reaches past the new clock's origin have their completed awake
    portion accounted immediately and revert to never-touched.  The
    multiprogramming layer calls this when the fetch clock (the charging
    process's fetch counter) changes at a context switch; a no-op-
    equivalent when [old_now = new_now]. *)

val sleep_all : t -> now:int -> unit
(** Close every touched line's open awake tail into the accumulator and
    drop the whole cache drowsy — the flush-on-switch drowsy policy. *)

val reset : t -> unit
