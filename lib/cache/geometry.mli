(** Cache geometry: size / associativity / line size and the derived
    address-bit split.

    The XScale-style CAM organisation groups all the ways of one set
    into a fully-associative sub-bank (paper Section 2, Figure 1), so
    "set" here names one CAM sub-bank.  Way-placement selects the way
    inside the sub-bank with the least-significant bits of the tag
    (paper Section 4.2). *)

type t = private {
  size_bytes : int;
  assoc : int;
  line_bytes : int;
  cached_sets : int;  (** internal: derived constants cached by {!make} *)
  cached_offset_bits : int;  (** internal *)
  cached_set_bits : int;  (** internal *)
  cached_set_mask : int;  (** internal *)
  cached_tag_shift : int;  (** internal *)
  cached_line_mask : int;  (** internal *)
  cached_instr_shift : int;  (** internal *)
}

val make : size_bytes:int -> assoc:int -> line_bytes:int -> t
(** @raise Invalid_argument unless all three are powers of two, the
    cache holds at least [assoc] lines, and a line holds at least one
    instruction. *)

val address_bits : int
(** Simulated physical address width (32). *)

val sets : t -> int
val lines : t -> int
val offset_bits : t -> int
val set_bits : t -> int
val tag_bits : t -> int
val way_bits : t -> int
(** [log2 assoc] — how many low tag bits select the way on a
    way-placement access. *)

val set_index : t -> Wp_isa.Addr.t -> int
val tag_of : t -> Wp_isa.Addr.t -> int
val line_base : t -> Wp_isa.Addr.t -> Wp_isa.Addr.t
val same_line : t -> Wp_isa.Addr.t -> Wp_isa.Addr.t -> bool

val way_select : t -> tag:int -> int
(** The way designated for a tag on a way-placement access: the low
    {!way_bits} bits of the tag. *)

val way_of_addr : t -> Wp_isa.Addr.t -> int
(** [way_select] composed with [tag_of]. *)

val instr_slot : t -> Wp_isa.Addr.t -> int
(** Index of the instruction inside its line (0-based). *)

val slots_per_line : t -> int
(** Instructions per line. *)

val way_span_bytes : t -> int
(** Bytes of address space that map to a single way before the way
    index wraps: [sets * line_bytes].  Consecutive chunks of this size
    at the start of the binary land in consecutive ways. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
(** e.g. ["32KB/32way/32B"]. *)
