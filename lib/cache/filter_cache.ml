type t = { l0 : Cam_cache.t; probe : Wp_obs.Probe.t option }

type result = {
  l0_hit : bool;
  l0_tag_comparisons : int;
  penalty_cycles : int;
}

let create ?probe ~l0 () =
  if l0.Geometry.assoc <> 1 then
    invalid_arg "Filter_cache.create: the L0 must be direct-mapped";
  { l0 = Cam_cache.create ?probe l0 ~replacement:Replacement.Round_robin; probe }

let l0_geometry t = Cam_cache.geometry t.l0

let access t addr =
  let outcome = Cam_cache.lookup_full t.l0 addr in
  (match t.probe with
  | None -> ()
  | Some p -> p (Wp_obs.Probe.L0_access { hit = outcome.Cam_cache.hit }));
  if outcome.Cam_cache.hit then
    { l0_hit = true; l0_tag_comparisons = 1; penalty_cycles = 0 }
  else begin
    ignore (Cam_cache.fill_absent t.l0 addr Cam_cache.Victim_by_policy);
    { l0_hit = false; l0_tag_comparisons = 1; penalty_cycles = 1 }
  end

(* Canonical fingerprint: the L0 contents (the backing L1 is owned and
   fingerprinted by the fetch engine). *)
let fingerprint t ~add = Cam_cache.fingerprint t.l0 ~add

let flush t = Cam_cache.flush t.l0
