(** Way-memoization (Ma et al. [12]), the hardware comparator scheme.

    Every cache line carries one link per instruction slot plus one
    next-line link (for a 32 B line on a 32-way cache: 9 links of
    6 bits — a 21% overhead on the data side, paper Section 5).  A link
    records the way that the {e next} fetch after this slot hit, so a
    later fetch along the same path can read the target way directly
    with {e zero} tag comparisons.  Links are invalidated whenever the
    line they point to is evicted, which keeps blind link-following
    correct.

    Indirect transfers (returns) change target from execution to
    execution; the model follows a link only when its recorded target
    line matches the requested address, otherwise it falls back to a
    full search and rewrites the link — matching the original scheme,
    which cannot memoize varying targets.

    Same-line fetches are elided by the fetch engine before this module
    is consulted, exactly as for way-placement (paper Section 4.2,
    last paragraph). *)

type t

type invalidation =
  | Flash_clear
      (** every refill clears {e all} links — the hardware-feasible
          conservative policy (tracking which links point at a victim
          line would need reverse pointers per line); default *)
  | Precise
      (** only links pointing at the victim are cleared — an idealised
          upper bound on link effectiveness, used by the ablation
          benches *)

type result = {
  hit : bool;  (** line resident before any fill *)
  filled : bool;
  tag_comparisons : int;
  ways_precharged : int;
  link_followed : bool;  (** fetch served through a valid link *)
  link_written : bool;
  links_invalidated : int;  (** links cleared by this access's eviction *)
}

val create :
  ?invalidation:invalidation ->
  ?probe:Wp_obs.Probe.t ->
  Geometry.t ->
  replacement:Replacement.t ->
  t
(** [invalidation] defaults to {!Flash_clear}.  [probe] observes the
    inner CAM's searches and fills plus [Link_write] /
    [Links_invalidated] events; pure observation. *)

val geometry : t -> Geometry.t

val fetch : t -> Wp_isa.Addr.t -> result
(** Fetch the line-crossing instruction at the address.  The module
    tracks the previous fetch internally: a fetch at [prev + 4] uses
    the previous line's next-line link, any other fetch uses the
    per-slot link of the previous instruction. *)

val note_same_line : t -> Wp_isa.Addr.t -> unit
(** Inform the module of a fetch the engine elided with the same-line
    rule, so the previous-fetch context stays accurate and the next
    line crossing is classified (sequential vs transfer) correctly.
    @raise Invalid_argument if the address is not in the previous
    fetch's line. *)

val reset_stream : t -> unit
(** Forget the previous-fetch context (cache contents and links are
    kept); the next fetch will do a full search. *)

val flush : t -> unit
val links_per_line : Geometry.t -> int
(** Instruction slots + 1. *)

val link_bits : Geometry.t -> int
(** Bits per link: way bits + valid bit. *)

val data_overhead_fraction : Geometry.t -> float
(** Extra data-array storage relative to the line payload, e.g. 0.21
    for a 32 B line on a 32-way cache. *)

val valid_links : t -> int
(** Number of currently valid links (for tests). *)

val fingerprint : t -> add:(int -> unit) -> unit
(** Canonical state fingerprint (inner CAM, link table, previous-fetch
    context) for the steady-state fast-forward detector; equal
    fingerprints imply identical future behaviour. *)
