type t = {
  geometry : Geometry.t;
  replacement : Replacement.t;
  tags : int array;  (** [set * assoc + way] -> tag *)
  valid : bool array;
  rr_next : int array;  (** round-robin cursor per set *)
  last_use : int array;  (** LRU timestamps, [set * assoc + way] *)
  mutable clock : int;
  probe : Wp_obs.Probe.t option;
}

type outcome = {
  hit : bool;
  way : int;
  tag_comparisons : int;
  ways_precharged : int;
}

type fill_policy = Victim_by_policy | Forced_way of int
type eviction = { set : int; way : int; tag : int }

let create ?probe geometry ~replacement =
  let n = Geometry.sets geometry * geometry.Geometry.assoc in
  {
    geometry;
    replacement;
    tags = Array.make n 0;
    valid = Array.make n false;
    rr_next = Array.make (Geometry.sets geometry) 0;
    last_use = Array.make n 0;
    clock = 0;
    probe;
  }

let geometry t = t.geometry
let index t ~set ~way = (set * t.geometry.Geometry.assoc) + way

let touch t ~set ~way =
  t.clock <- t.clock + 1;
  t.last_use.(index t ~set ~way) <- t.clock

let find t ~set ~tag =
  let assoc = t.geometry.Geometry.assoc in
  let rec go way =
    if way >= assoc then None
    else begin
      let i = index t ~set ~way in
      if t.valid.(i) && t.tags.(i) = tag then Some way else go (way + 1)
    end
  in
  go 0

let lookup_full t addr =
  let set = Geometry.set_index t.geometry addr in
  let tag = Geometry.tag_of t.geometry addr in
  let assoc = t.geometry.Geometry.assoc in
  (match t.probe with
  | None -> ()
  | Some p -> p (Wp_obs.Probe.Tag_search { ways = assoc }));
  match find t ~set ~tag with
  | Some way ->
      touch t ~set ~way;
      { hit = true; way; tag_comparisons = assoc; ways_precharged = assoc }
  | None -> { hit = false; way = -1; tag_comparisons = assoc; ways_precharged = assoc }

let lookup_way t addr ~way =
  let assoc = t.geometry.Geometry.assoc in
  if way < 0 || way >= assoc then
    invalid_arg (Printf.sprintf "Cam_cache.lookup_way: way %d of %d" way assoc);
  let set = Geometry.set_index t.geometry addr in
  let tag = Geometry.tag_of t.geometry addr in
  (match t.probe with
  | None -> ()
  | Some p -> p (Wp_obs.Probe.Tag_search { ways = 1 }));
  let i = index t ~set ~way in
  if t.valid.(i) && t.tags.(i) = tag then begin
    touch t ~set ~way;
    { hit = true; way; tag_comparisons = 1; ways_precharged = 1 }
  end
  else { hit = false; way = -1; tag_comparisons = 1; ways_precharged = 1 }

let choose_victim t ~set =
  let assoc = t.geometry.Geometry.assoc in
  (* Prefer an invalid way before evicting. *)
  let rec invalid_way way =
    if way >= assoc then None
    else if not t.valid.(index t ~set ~way) then Some way
    else invalid_way (way + 1)
  in
  match invalid_way 0 with
  | Some way -> way
  | None -> begin
      match t.replacement with
      | Replacement.Round_robin ->
          let way = t.rr_next.(set) in
          t.rr_next.(set) <- (way + 1) mod assoc;
          way
      | Replacement.Lru ->
          let best = ref 0 in
          for way = 1 to assoc - 1 do
            if t.last_use.(index t ~set ~way) < t.last_use.(index t ~set ~way:!best)
            then best := way
          done;
          !best
    end

let fill t addr policy =
  let set = Geometry.set_index t.geometry addr in
  let tag = Geometry.tag_of t.geometry addr in
  match find t ~set ~tag with
  | Some way ->
      touch t ~set ~way;
      (way, None)
  | None ->
      let way =
        match policy with
        | Victim_by_policy -> choose_victim t ~set
        | Forced_way way ->
            if way < 0 || way >= t.geometry.Geometry.assoc then
              invalid_arg
                (Printf.sprintf "Cam_cache.fill: forced way %d out of range" way);
            way
      in
      let i = index t ~set ~way in
      let evicted =
        if t.valid.(i) then Some { set; way; tag = t.tags.(i) } else None
      in
      t.tags.(i) <- tag;
      t.valid.(i) <- true;
      touch t ~set ~way;
      (match t.probe with
      | None -> ()
      | Some p ->
          p (Wp_obs.Probe.Line_fill { evicted = Option.is_some evicted }));
      (way, evicted)

let probe t addr =
  let set = Geometry.set_index t.geometry addr in
  let tag = Geometry.tag_of t.geometry addr in
  find t ~set ~tag

let invalidate t ~set ~way = t.valid.(index t ~set ~way) <- false

let flush t =
  Array.fill t.valid 0 (Array.length t.valid) false;
  Array.fill t.rr_next 0 (Array.length t.rr_next) 0;
  Array.fill t.last_use 0 (Array.length t.last_use) 0;
  t.clock <- 0

let valid_lines t =
  Array.fold_left (fun acc v -> if v then acc + 1 else acc) 0 t.valid

let resident_tags t ~set =
  let assoc = t.geometry.Geometry.assoc in
  let rec go way acc =
    if way < 0 then acc
    else begin
      let i = index t ~set ~way in
      if t.valid.(i) then go (way - 1) ((way, t.tags.(i)) :: acc)
      else go (way - 1) acc
    end
  in
  go (assoc - 1) []

let pp ppf t =
  Format.fprintf ppf "cam-cache %a (%s), %d/%d lines valid" Geometry.pp
    t.geometry
    (Replacement.to_string t.replacement)
    (valid_lines t) (Geometry.lines t.geometry)
