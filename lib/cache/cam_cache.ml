type t = {
  geometry : Geometry.t;
  replacement : Replacement.t;
  tags : int array;
      (** [set * assoc + way] -> tag; [-1] when the line is invalid, so
          the residence scan compares this one array (real tags are
          non-negative, so an invalid slot can never match). *)
  valid : bool array;
  rr_next : int array;  (** round-robin cursor per set *)
  last_use : int array;  (** LRU timestamps, [set * assoc + way] *)
  mru : int array;
      (** per-set way of the most recent hit/fill, [-1] when unknown — a
          pure [find] accelerator.  Tags are unique within a set (fills
          only install absent lines), so checking the MRU way first can
          never return a different way than the scan. *)
  nvalid : int array;
      (** valid lines per set — lets a fill skip the invalid-way scan
          once the set is full (the steady state). *)
  mutable clock : int;
  probe : Wp_obs.Probe.t option;
}

type outcome = {
  hit : bool;
  way : int;
  tag_comparisons : int;
  ways_precharged : int;
}

type fill_policy = Victim_by_policy | Forced_way of int
type eviction = { set : int; way : int; tag : int }

let create ?probe geometry ~replacement =
  let n = Geometry.sets geometry * geometry.Geometry.assoc in
  {
    geometry;
    replacement;
    tags = Array.make n (-1);
    valid = Array.make n false;
    rr_next = Array.make (Geometry.sets geometry) 0;
    last_use = Array.make n 0;
    mru = Array.make (Geometry.sets geometry) (-1);
    nvalid = Array.make (Geometry.sets geometry) 0;
    clock = 0;
    probe;
  }

let geometry t = t.geometry
let index t ~set ~way = (set * t.geometry.Geometry.assoc) + way

let touch t ~set ~way =
  t.clock <- t.clock + 1;
  t.last_use.(index t ~set ~way) <- t.clock

(* Allocation-free core of [find]: the resident way, or -1.  The hot
   lookup paths call this directly; [find] wraps it in an option for
   the probing/diagnostic callers. *)
let find_way t ~set ~tag =
  let assoc = t.geometry.Geometry.assoc in
  let base = set * assoc in
  let m = t.mru.(set) in
  if m >= 0 && t.tags.(base + m) = tag then m
  else begin
    (* Invalid slots hold tag -1 and can never match, so the scan is a
       single compare per way over one array. *)
    let rec go way =
      if way >= assoc then -1
      else if t.tags.(base + way) = tag then way
      else go (way + 1)
    in
    go 0
  end

let find t ~set ~tag =
  match find_way t ~set ~tag with -1 -> None | way -> Some way

let lookup_full t addr =
  let set = Geometry.set_index t.geometry addr in
  let tag = Geometry.tag_of t.geometry addr in
  let assoc = t.geometry.Geometry.assoc in
  (match t.probe with
  | None -> ()
  | Some p -> p (Wp_obs.Probe.Tag_search { ways = assoc }));
  match find_way t ~set ~tag with
  | -1 -> { hit = false; way = -1; tag_comparisons = assoc; ways_precharged = assoc }
  | way ->
      t.mru.(set) <- way;
      touch t ~set ~way;
      { hit = true; way; tag_comparisons = assoc; ways_precharged = assoc }

(* Twin of [lookup_full] that returns just the way (-1 on miss): the
   per-fetch simulator paths know [tag_comparisons] and
   [ways_precharged] are both [assoc] here, so the outcome record would
   be allocation for nothing. *)
let lookup_full_way t addr =
  let set = Geometry.set_index t.geometry addr in
  let tag = Geometry.tag_of t.geometry addr in
  (match t.probe with
  | None -> ()
  | Some p -> p (Wp_obs.Probe.Tag_search { ways = t.geometry.Geometry.assoc }));
  match find_way t ~set ~tag with
  | -1 -> -1
  | way ->
      t.mru.(set) <- way;
      touch t ~set ~way;
      way

let lookup_way t addr ~way =
  let assoc = t.geometry.Geometry.assoc in
  if way < 0 || way >= assoc then
    invalid_arg (Printf.sprintf "Cam_cache.lookup_way: way %d of %d" way assoc);
  let set = Geometry.set_index t.geometry addr in
  let tag = Geometry.tag_of t.geometry addr in
  (match t.probe with
  | None -> ()
  | Some p -> p (Wp_obs.Probe.Tag_search { ways = 1 }));
  let i = index t ~set ~way in
  if t.tags.(i) = tag then begin
    t.mru.(set) <- way;
    touch t ~set ~way;
    { hit = true; way; tag_comparisons = 1; ways_precharged = 1 }
  end
  else { hit = false; way = -1; tag_comparisons = 1; ways_precharged = 1 }

(* Twin of [lookup_way] returning just the hit bit (1 comparison, 1 way
   precharged are implied). *)
let lookup_way_hit t addr ~way =
  let assoc = t.geometry.Geometry.assoc in
  if way < 0 || way >= assoc then
    invalid_arg (Printf.sprintf "Cam_cache.lookup_way_hit: way %d of %d" way assoc);
  let set = Geometry.set_index t.geometry addr in
  let tag = Geometry.tag_of t.geometry addr in
  (match t.probe with
  | None -> ()
  | Some p -> p (Wp_obs.Probe.Tag_search { ways = 1 }));
  let i = index t ~set ~way in
  if t.tags.(i) = tag then begin
    t.mru.(set) <- way;
    touch t ~set ~way;
    true
  end
  else false

let choose_victim t ~set =
  let assoc = t.geometry.Geometry.assoc in
  (* Prefer an invalid way before evicting; skip the scan entirely when
     the set is known full. *)
  let rec invalid_way way =
    if way >= assoc then None
    else if not t.valid.(index t ~set ~way) then Some way
    else invalid_way (way + 1)
  in
  match (if t.nvalid.(set) = assoc then None else invalid_way 0) with
  | Some way -> way
  | None -> begin
      match t.replacement with
      | Replacement.Round_robin ->
          let way = t.rr_next.(set) in
          t.rr_next.(set) <- (if way + 1 = assoc then 0 else way + 1);
          way
      | Replacement.Lru ->
          let best = ref 0 in
          for way = 1 to assoc - 1 do
            if t.last_use.(index t ~set ~way) < t.last_use.(index t ~set ~way:!best)
            then best := way
          done;
          !best
    end

(* Install an absent line: the shared tail of [fill] (which first checks
   residence) and [fill_absent] (whose caller just proved a miss). *)
let install t ~set ~tag policy =
  let way =
    match policy with
    | Victim_by_policy -> choose_victim t ~set
    | Forced_way way ->
        if way < 0 || way >= t.geometry.Geometry.assoc then
          invalid_arg
            (Printf.sprintf "Cam_cache.fill: forced way %d out of range" way);
        way
  in
  let i = index t ~set ~way in
  let evicted =
    if t.valid.(i) then Some { set; way; tag = t.tags.(i) } else None
  in
  if not t.valid.(i) then t.nvalid.(set) <- t.nvalid.(set) + 1;
  t.tags.(i) <- tag;
  t.valid.(i) <- true;
  t.mru.(set) <- way;
  touch t ~set ~way;
  (match t.probe with
  | None -> ()
  | Some p -> p (Wp_obs.Probe.Line_fill { evicted = Option.is_some evicted }));
  (way, evicted)

let fill t addr policy =
  let set = Geometry.set_index t.geometry addr in
  let tag = Geometry.tag_of t.geometry addr in
  match find_way t ~set ~tag with
  | (-1) -> install t ~set ~tag policy
  | way ->
      touch t ~set ~way;
      (way, None)

let fill_absent t addr policy =
  let set = Geometry.set_index t.geometry addr in
  let tag = Geometry.tag_of t.geometry addr in
  install t ~set ~tag policy

let probe t addr =
  let set = Geometry.set_index t.geometry addr in
  let tag = Geometry.tag_of t.geometry addr in
  find t ~set ~tag

let resident_way t addr =
  let set = Geometry.set_index t.geometry addr in
  let tag = Geometry.tag_of t.geometry addr in
  find_way t ~set ~tag

(* [n] back-to-back full lookups of one already-resident line, in one
   call: the CAM still precharges and compares every way each time (the
   energy/probe story is unchanged), but the [n] LRU touches collapse to
   a single clock advance — the final [clock]/[last_use] state is
   exactly what [n] successive [lookup_full] calls would leave, since no
   other line is touched in between. *)
let lookup_line_run_way t addr ~n =
  if n <= 0 then invalid_arg "Cam_cache.lookup_line_run: n must be positive";
  let set = Geometry.set_index t.geometry addr in
  let tag = Geometry.tag_of t.geometry addr in
  let assoc = t.geometry.Geometry.assoc in
  (match t.probe with
  | None -> ()
  | Some p ->
      for _ = 1 to n do
        p (Wp_obs.Probe.Tag_search { ways = assoc })
      done);
  match find_way t ~set ~tag with
  | -1 -> invalid_arg "Cam_cache.lookup_line_run: line not resident"
  | way ->
      t.mru.(set) <- way;
      t.clock <- t.clock + n;
      t.last_use.(index t ~set ~way) <- t.clock;
      way

let lookup_line_run t addr ~n =
  let assoc = t.geometry.Geometry.assoc in
  let way = lookup_line_run_way t addr ~n in
  { hit = true; way; tag_comparisons = n * assoc; ways_precharged = n * assoc }

let invalidate t ~set ~way =
  let i = index t ~set ~way in
  if t.valid.(i) then t.nvalid.(set) <- t.nvalid.(set) - 1;
  t.valid.(i) <- false;
  t.tags.(i) <- -1

let flush t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.valid 0 (Array.length t.valid) false;
  Array.fill t.rr_next 0 (Array.length t.rr_next) 0;
  Array.fill t.last_use 0 (Array.length t.last_use) 0;
  Array.fill t.mru 0 (Array.length t.mru) (-1);
  Array.fill t.nvalid 0 (Array.length t.nvalid) 0;
  t.clock <- 0

(* Canonical state fingerprint for the steady-state fast-forward
   detector.  Everything future behaviour can observe is emitted: tags
   (with -1 for invalid slots), the per-set MRU accelerator and the
   round-robin cursor.  The raw [clock]/[last_use] values are not —
   only their per-set ordering is observable (LRU victim choice
   compares timestamps), so replacement age is canonicalised to each
   way's rank within its set.  Two caches with equal fingerprints are
   bisimilar: every lookup, fill and victim choice behaves identically
   on both. *)
let fingerprint t ~add =
  let assoc = t.geometry.Geometry.assoc in
  let sets = Geometry.sets t.geometry in
  Array.iter add t.tags;
  for set = 0 to sets - 1 do
    add t.mru.(set);
    add t.rr_next.(set)
  done;
  match t.replacement with
  | Replacement.Round_robin -> ()
  | Replacement.Lru ->
      for set = 0 to sets - 1 do
        let base = set * assoc in
        for way = 0 to assoc - 1 do
          let lw = t.last_use.(base + way) in
          let rank = ref 0 in
          for v = 0 to assoc - 1 do
            let lv = t.last_use.(base + v) in
            if lv < lw || (lv = lw && v < way) then incr rank
          done;
          add !rank
        done
      done

let valid_lines t =
  Array.fold_left (fun acc v -> if v then acc + 1 else acc) 0 t.valid

let resident_tags t ~set =
  let assoc = t.geometry.Geometry.assoc in
  let rec go way acc =
    if way < 0 then acc
    else begin
      let i = index t ~set ~way in
      if t.valid.(i) then go (way - 1) ((way, t.tags.(i)) :: acc)
      else go (way - 1) acc
    end
  in
  go (assoc - 1) []

let pp ppf t =
  Format.fprintf ppf "cam-cache %a (%s), %d/%d lines valid" Geometry.pp
    t.geometry
    (Replacement.to_string t.replacement)
    (valid_lines t) (Geometry.lines t.geometry)
