(** A naive reference model of the CAM-tag cache.

    Same surface as {!Wp_cache.Cam_cache}, radically different
    implementation: one flat association list of resident lines, every
    operation a whole-list scan, replacement state recomputed from
    first principles on each decision.  Deliberately slow and obviously
    correct — the differential tests replay the same access stream
    through this model and through the real simulator and demand
    identical architectural outcomes (hits, misses, victims).

    Semantics mirrored exactly:
    - a lookup never fills; the caller decides how;
    - hits touch the LRU clock, misses do not;
    - fills prefer the lowest-numbered invalid way, then round-robin
      cursor or least-recently-used (lowest way breaks LRU ties);
    - a forced-way fill of a resident line is a no-op returning its
      current way. *)

type t

type outcome = {
  hit : bool;
  way : int;  (** way that hit, or [-1] on a miss *)
  tag_comparisons : int;
  ways_precharged : int;
}

type fill_policy = Victim_by_policy | Forced_way of int
type eviction = { set : int; way : int; tag : int }

val create : Wp_cache.Geometry.t -> replacement:Wp_cache.Replacement.t -> t
val geometry : t -> Wp_cache.Geometry.t
val lookup_full : t -> Wp_isa.Addr.t -> outcome
val lookup_way : t -> Wp_isa.Addr.t -> way:int -> outcome

val fill : t -> Wp_isa.Addr.t -> fill_policy -> int * eviction option
(** @raise Invalid_argument if a forced way is out of range. *)

val probe : t -> Wp_isa.Addr.t -> int option
val invalidate : t -> set:int -> way:int -> unit
val flush : t -> unit
val valid_lines : t -> int

val resident_tags : t -> set:int -> (int * int) list
(** [(way, tag)] pairs of valid lines in a set, ascending way order. *)

val pp : Format.formatter -> t -> unit
