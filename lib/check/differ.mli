(** Differential execution of generated programs: the real simulator
    against a naive oracle, and every energy scheme against each other.

    Every energy-saving scheme in the paper (and this repo) rests on
    one architectural invariant: it may change {e where} a line lives
    and {e how much} an access costs, but never {e which} instructions
    execute or (for the non-filter schemes) which accesses hit.  This
    module makes that executable.  For one generated program it runs
    the whole scheme x geometry grid through {!Wp_sim.Runner} and
    checks:

    - {b oracle equality} — every baseline run's fetch stream is
      replayed through {!Oracle_cache}; fetches, same-line elisions,
      hits, misses and tag comparisons must match exactly (both
      replacement policies, elision on and off);
    - {b conservation laws} — fetches partition into same-line +
      way-placed + full + link-follows; hits + misses equal the tag
      checks; per-scheme counters partition their access modes; the
      baseline's energy buckets are recomputed from its counters and
      must agree with the simulator's account;
    - {b metamorphic equalities} — retired instructions, fetches and
      the whole data side are identical across {e all} schemes and
      layouts (way-placement changes placement, never execution);
      way-memoization (under round-robin — blind link follows skip LRU
      touches by design) and way-prediction (any policy) must not
      change a single hit/miss decision relative to the baseline;
    - {b probe invariance} — rerunning a cell with a
      {!Wp_obs.Sampler} attached leaves the statistics bit-identical
      ({!Wp_sim.Stats.equal}), and the sampler's window sums reproduce
      them: every mirrored counter exactly, retired instructions and
      final cycle count exactly, cumulative per-bucket energy
      bit-for-bit;
    - {b multiprogramming laws} — an infinite-quantum, kernel-free
      single-process {!Wp_mp.Machine} run is [Stats.equal] to the
      cell's own [Simulator.run] (the mp identity oracle, every cell of
      the first geometry); under real time-slicing against a fixed
      cache-polluting partner, the mp fast path, the mp reference loop
      and a probed replay agree bit-for-bit per process and in
      aggregate, per-process counters sum to the aggregate exactly, and
      the sampler's switch markers recount the machine's switches.

    A failing seed is reproducible from its number alone and is
    shrunk with {!Progen.minimize} before reporting. *)

type violation = string

type report = {
  seed : int;
  spec : Wp_workloads.Spec.t;
  violations : violation list;  (** on the generated program *)
  shrunk : Wp_workloads.Spec.t;  (** minimised still-failing spec *)
  shrunk_violations : violation list;  (** on the minimised program *)
}

val default_geometries : Wp_cache.Geometry.t list
(** Small grid (tiny caches so misses, evictions and way conflicts are
    actually exercised); the first geometry also runs the replacement /
    elision / invalidation ablations. *)

val check_spec :
  ?geometries:Wp_cache.Geometry.t list -> Wp_workloads.Spec.t -> violation list
(** All violations found for one program; [[]] means every invariant
    held.  Deterministic. *)

val check_seed : ?geometries:Wp_cache.Geometry.t list -> int -> violation list
(** {!check_spec} of {!Progen.spec_of_seed}. *)

val run_seed :
  ?check:(Wp_workloads.Spec.t -> violation list) -> int -> report option
(** One fuzz case: [None] when clean; otherwise the report, with the
    spec already shrunk to a locally minimal still-failing program.
    [check] defaults to {!check_spec} (tests inject artificial
    invariants to exercise the shrink pipeline). *)

val fuzz :
  ?workers:int ->
  ?progress:int Wp_sim.Sweep.Pool.progress ->
  seed:int ->
  count:int ->
  unit ->
  report list
(** Run seeds [seed .. seed + count - 1], fanned out over the sweep
    engine's domain pool ([workers] defaults to
    {!Wp_sim.Sweep.default_workers}); the result list is in seed order
    and independent of [workers].  Returns the failing reports
    (hopefully none). *)

val pp_report : Format.formatter -> report -> unit
(** Seed, violations, and the shrunk repro — everything needed to
    reproduce the failure from a terminal. *)
