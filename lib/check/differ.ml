module Config = Wp_sim.Config
module Stats = Wp_sim.Stats
module Runner = Wp_sim.Runner
module Sweep = Wp_sim.Sweep
module Spec = Wp_workloads.Spec
module Tracer = Wp_workloads.Tracer
module Geometry = Wp_cache.Geometry
module Replacement = Wp_cache.Replacement

type violation = string

type report = {
  seed : int;
  spec : Spec.t;
  violations : violation list;
  shrunk : Spec.t;
  shrunk_violations : violation list;
}

let default_geometries =
  [
    Geometry.make ~size_bytes:512 ~assoc:4 ~line_bytes:16;
    Geometry.make ~size_bytes:1024 ~assoc:8 ~line_bytes:32;
  ]

(* One run of the grid: a labelled configuration.  The first geometry
   also carries the ablations (LRU, elision off, precise invalidation);
   the rest run the five plain schemes. *)
let configs_for ~ablations geometry =
  let line = geometry.Geometry.line_bytes in
  let l0_bytes = min (4 * line) (geometry.Geometry.size_bytes / 2) in
  let base scheme = Config.with_icache (Config.xscale scheme) geometry in
  let plain =
    [
      ("baseline", base Config.Baseline);
      ("wayplace", base (Config.Way_placement { area_bytes = 2048 }));
      ("waymemo", base Config.Way_memoization);
      ("waypred", base Config.Way_prediction);
      ("filter", base (Config.Filter_cache { l0_bytes }));
    ]
  in
  if not ablations then plain
  else
    plain
    @ [
        ( "baseline-lru",
          Config.with_replacement (base Config.Baseline) Replacement.Lru );
        ( "waypred-lru",
          Config.with_replacement (base Config.Way_prediction) Replacement.Lru );
        ( "baseline-noelide",
          Config.with_same_line_elision (base Config.Baseline) false );
        ( "waymemo-precise",
          Config.with_memo_invalidation (base Config.Way_memoization)
            Wp_cache.Way_memo.Precise );
      ]

(* ------------------------------------------------------------------ *)
(* The oracle replay: the baseline fetch path re-executed from first
   principles — walk the trace, resolve each pc from the layout, elide
   sequential same-line fetches, send everything else to the naive
   cache model. *)

type oracle_counts = {
  o_fetches : int;
  o_same_line : int;
  o_hits : int;
  o_misses : int;
  o_tag_comparisons : int;
}

let replay_baseline_oracle ~geometry ~replacement ~elision ~graph ~layout
    ~(trace : Tracer.trace) =
  let cache = Oracle_cache.create geometry ~replacement in
  let fetches = ref 0 and same_line = ref 0 in
  let hits = ref 0 and misses = ref 0 and tag_comparisons = ref 0 in
  let prev = ref (-1) in
  Array.iter
    (fun id ->
      let start = Wp_layout.Binary_layout.block_start layout id in
      let n = Wp_cfg.Basic_block.size_instrs (Wp_cfg.Icfg.block graph id) in
      for i = 0 to n - 1 do
        let pc = start + (i * Wp_isa.Instr.size_bytes) in
        incr fetches;
        if elision && !prev >= 0 && Geometry.same_line geometry pc !prev then
          incr same_line
        else begin
          let o = Oracle_cache.lookup_full cache pc in
          tag_comparisons := !tag_comparisons + o.Oracle_cache.tag_comparisons;
          if o.Oracle_cache.hit then incr hits
          else begin
            incr misses;
            ignore (Oracle_cache.fill cache pc Oracle_cache.Victim_by_policy)
          end
        end;
        prev := pc
      done)
    trace.Tracer.blocks;
  {
    o_fetches = !fetches;
    o_same_line = !same_line;
    o_hits = !hits;
    o_misses = !misses;
    o_tag_comparisons = !tag_comparisons;
  }

(* ------------------------------------------------------------------ *)
(* Invariant checks.  Each returns violations as strings; [where]
   prefixes them with the run's label and geometry. *)

let rel_close a b = Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let check_counters ~where (config : Config.t) (s : Stats.t)
    (trace : Tracer.trace) =
  let v = ref [] in
  let fail fmt = Printf.ksprintf (fun msg -> v := (where ^ ": " ^ msg) :: !v) fmt in
  let expect name actual expected =
    if actual <> expected then fail "%s = %d, expected %d" name actual expected
  in
  expect "retired_instrs" s.Stats.retired_instrs trace.Tracer.dynamic_instrs;
  expect "fetches" s.Stats.fetches trace.Tracer.dynamic_instrs;
  let non_elided = s.Stats.fetches - s.Stats.same_line_fetches in
  expect "same_line + wp + full + link_follows"
    (s.Stats.same_line_fetches + s.Stats.wp_fetches + s.Stats.full_fetches
   + s.Stats.link_follows)
    s.Stats.fetches;
  expect "icache_hits + icache_misses"
    (s.Stats.icache_hits + s.Stats.icache_misses)
    non_elided;
  if not config.Config.same_line_elision then
    expect "same_line_fetches (elision off)" s.Stats.same_line_fetches 0;
  if s.Stats.cycles < s.Stats.retired_instrs then
    fail "cycles %d < retired %d" s.Stats.cycles s.Stats.retired_instrs;
  (match config.Config.scheme with
  | Config.Baseline ->
      expect "wp_fetches (baseline)" s.Stats.wp_fetches 0;
      expect "link_follows (baseline)" s.Stats.link_follows 0;
      expect "full_fetches (baseline)" s.Stats.full_fetches non_elided;
      expect "l0 accesses (baseline)" (s.Stats.l0_hits + s.Stats.l0_misses) 0;
      expect "waypred counters (baseline)"
        (s.Stats.waypred_correct + s.Stats.waypred_wrong)
        0
  | Config.Way_placement _ ->
      expect "wp_fetches = hint_correct_wp" s.Stats.wp_fetches
        s.Stats.hint_correct_wp;
      expect "full = other hint outcomes" s.Stats.full_fetches
        (s.Stats.hint_correct_normal + s.Stats.hint_missed_saving
       + s.Stats.hint_reaccess);
      expect "hint outcomes partition non-elided"
        (s.Stats.hint_correct_wp + s.Stats.hint_correct_normal
       + s.Stats.hint_missed_saving + s.Stats.hint_reaccess)
        non_elided
  | Config.Way_memoization ->
      expect "wp_fetches (waymemo)" s.Stats.wp_fetches 0;
      expect "link_follows + full (waymemo)"
        (s.Stats.link_follows + s.Stats.full_fetches)
        non_elided
  | Config.Way_prediction ->
      expect "waypred outcomes partition non-elided"
        (s.Stats.waypred_correct + s.Stats.waypred_wrong)
        non_elided
  | Config.Filter_cache _ ->
      expect "l0 outcomes partition non-elided"
        (s.Stats.l0_hits + s.Stats.l0_misses)
        non_elided);
  !v

(* Recompute every energy bucket of a baseline run from its counters
   alone and compare with the simulator's account: the accounting can
   then never drift from the events it claims to charge for (PR 1's
   filter-cache bug, caught structurally). *)
let check_baseline_energy ~where (config : Config.t) (s : Stats.t) =
  match config.Config.scheme with
  | Config.Way_placement _ | Config.Way_memoization | Config.Way_prediction
  | Config.Filter_cache _ ->
      []
  | Config.Baseline ->
      let v = ref [] in
      let expect name actual expected =
        if not (rel_close actual expected) then
          v :=
            Printf.sprintf "%s: %s = %.6g pJ, recomputed %.6g pJ" where name
              actual expected
            :: !v
      in
      let p = config.Config.energy in
      let ie = Wp_energy.Cam_energy.of_geometry p config.Config.icache in
      let de = Wp_energy.Cam_energy.of_geometry p config.Config.dcache in
      let assoc = config.Config.icache.Geometry.assoc in
      let f = float_of_int in
      let non_elided = s.Stats.fetches - s.Stats.same_line_fetches in
      let acct = s.Stats.account in
      expect "icache"
        (Wp_energy.Account.icache_pj acct)
        (f non_elided
         *. (Wp_energy.Cam_energy.tag_search ie ~ways:assoc
            +. ie.Wp_energy.Cam_energy.data_word_pj)
        +. (f s.Stats.same_line_fetches *. ie.Wp_energy.Cam_energy.data_word_pj)
        +. (f s.Stats.icache_misses *. ie.Wp_energy.Cam_energy.line_fill_pj));
      expect "itlb"
        (Wp_energy.Account.itlb_pj acct)
        (f non_elided
        *. Wp_energy.Cam_energy.tlb_lookup_pj p
             ~entries:config.Config.itlb_entries
             ~page_bytes:config.Config.page_bytes);
      expect "memory"
        (Wp_energy.Account.memory_pj acct)
        (f
           (s.Stats.itlb_misses + s.Stats.dtlb_misses + s.Stats.icache_misses
          + s.Stats.dcache_misses)
        *. p.Wp_energy.Params.memory_access_pj);
      expect "dcache"
        (Wp_energy.Account.dcache_pj acct)
        (f s.Stats.dcache_accesses
         *. (Wp_energy.Cam_energy.tlb_lookup_pj p
               ~entries:config.Config.dtlb_entries
               ~page_bytes:config.Config.page_bytes
            +. Wp_energy.Cam_energy.tag_search de
                 ~ways:config.Config.dcache.Geometry.assoc
            +. de.Wp_energy.Cam_energy.data_word_pj)
        +. (f s.Stats.dcache_misses *. de.Wp_energy.Cam_energy.line_fill_pj));
      expect "core"
        (Wp_energy.Account.core_pj acct)
        (f s.Stats.cycles *. p.Wp_energy.Params.core_rest_pj_per_cycle);
      !v

let check_oracle ~where (config : Config.t) (s : Stats.t) ~graph ~layout ~trace =
  match config.Config.scheme with
  | Config.Way_placement _ | Config.Way_memoization | Config.Way_prediction
  | Config.Filter_cache _ ->
      []
  | Config.Baseline ->
      let o =
        replay_baseline_oracle ~geometry:config.Config.icache
          ~replacement:config.Config.replacement
          ~elision:config.Config.same_line_elision ~graph ~layout ~trace
      in
      let v = ref [] in
      let expect name actual expected =
        if actual <> expected then
          v :=
            Printf.sprintf "%s: %s = %d, oracle says %d" where name actual
              expected
            :: !v
      in
      expect "fetches" s.Stats.fetches o.o_fetches;
      expect "same_line_fetches" s.Stats.same_line_fetches o.o_same_line;
      expect "icache_hits" s.Stats.icache_hits o.o_hits;
      expect "icache_misses" s.Stats.icache_misses o.o_misses;
      expect "tag_comparisons" s.Stats.tag_comparisons o.o_tag_comparisons;
      !v

(* Equalities between two runs of the same program. *)
let expect_same ~where results pairs fields =
  List.concat_map
    (fun (la, lb) ->
      match (List.assoc_opt la results, List.assoc_opt lb results) with
      | Some (a : Stats.t), Some (b : Stats.t) ->
          List.filter_map
            (fun (name, (get : Stats.t -> int)) ->
              if get a = get b then None
              else
                Some
                  (Printf.sprintf "%s: %s vs %s: %s %d <> %d" where la lb name
                     (get a) (get b)))
            fields
      | _, _ -> [])
    pairs

let execution_fields =
  [
    ("retired_instrs", fun (s : Stats.t) -> s.Stats.retired_instrs);
    ("fetches", fun s -> s.Stats.fetches);
    ("dcache_accesses", fun s -> s.Stats.dcache_accesses);
    ("dcache_misses", fun s -> s.Stats.dcache_misses);
    ("dtlb_misses", fun s -> s.Stats.dtlb_misses);
  ]

let hit_miss_fields =
  [
    ("same_line_fetches", fun (s : Stats.t) -> s.Stats.same_line_fetches);
    ("icache_hits", fun s -> s.Stats.icache_hits);
    ("icache_misses", fun s -> s.Stats.icache_misses);
  ]

let check_cross ~where results =
  let labels = List.map fst results in
  let vs_baseline = List.map (fun l -> ("baseline", l)) labels in
  (* Execution is layout- and scheme-independent: way-placement (which
     runs the reordered binary) must agree too. *)
  expect_same ~where results vs_baseline execution_fields
  (* The pure energy schemes may not change one hit/miss decision.
     Way-memoization qualifies only under round-robin: blind link
     follows skip LRU touches, so its recency state diverges by
     design.  Way-prediction preserves even LRU state (same touches,
     same order).  The filter cache is architecturally different (its
     L1 sees only L0 misses) and is excluded. *)
  @ expect_same ~where results
      [
        ("baseline", "waymemo");
        ("baseline", "waymemo-precise");
        ("baseline", "waypred");
        ("baseline-lru", "waypred-lru");
      ]
      hit_miss_fields

(* ------------------------------------------------------------------ *)
(* Probe invariance: observability must be read-only.  Rerunning a grid
   cell with a sampler attached has to leave the statistics
   bit-identical, and the sampler's own aggregates have to reproduce
   them — counter sums exactly, retired/cycles exactly, and cumulative
   per-bucket energy bit-for-bit (the sampler mirrors the account's
   additions in order). *)

module Sampler = Wp_obs.Sampler

(* The Stats.t field each sampler counter mirrors; [None] for counters
   with no stats counterpart (line fills and evictions are cache
   internals the stats never count). *)
let counter_stat (s : Stats.t) = function
  | Sampler.Counter.Same_line_fetches -> Some s.Stats.same_line_fetches
  | Sampler.Counter.Wp_fetches -> Some s.Stats.wp_fetches
  | Sampler.Counter.Full_fetches -> Some s.Stats.full_fetches
  | Sampler.Counter.Link_follows -> Some s.Stats.link_follows
  | Sampler.Counter.Icache_hits -> Some s.Stats.icache_hits
  | Sampler.Counter.Icache_misses -> Some s.Stats.icache_misses
  | Sampler.Counter.L0_hits -> Some s.Stats.l0_hits
  | Sampler.Counter.L0_misses -> Some s.Stats.l0_misses
  | Sampler.Counter.Tag_comparisons -> Some s.Stats.tag_comparisons
  | Sampler.Counter.Hint_correct_wp -> Some s.Stats.hint_correct_wp
  | Sampler.Counter.Hint_correct_normal -> Some s.Stats.hint_correct_normal
  | Sampler.Counter.Hint_missed_saving -> Some s.Stats.hint_missed_saving
  | Sampler.Counter.Hint_reaccess -> Some s.Stats.hint_reaccess
  | Sampler.Counter.Waypred_correct -> Some s.Stats.waypred_correct
  | Sampler.Counter.Waypred_wrong -> Some s.Stats.waypred_wrong
  | Sampler.Counter.Drowsy_wakes -> Some s.Stats.drowsy_wakes
  | Sampler.Counter.Link_writes -> Some s.Stats.link_writes
  | Sampler.Counter.Links_invalidated -> Some s.Stats.links_invalidated
  | Sampler.Counter.Itlb_misses -> Some s.Stats.itlb_misses
  | Sampler.Counter.Dtlb_misses -> Some s.Stats.dtlb_misses
  | Sampler.Counter.Dcache_accesses -> Some s.Stats.dcache_accesses
  | Sampler.Counter.Dcache_misses -> Some s.Stats.dcache_misses
  | Sampler.Counter.Line_fills | Sampler.Counter.Evictions -> None

let bucket_total acct = function
  | Wp_obs.Probe.Icache -> Wp_energy.Account.icache_pj acct
  | Wp_obs.Probe.Itlb -> Wp_energy.Account.itlb_pj acct
  | Wp_obs.Probe.Dcache -> Wp_energy.Account.dcache_pj acct
  | Wp_obs.Probe.Memory -> Wp_energy.Account.memory_pj acct
  | Wp_obs.Probe.Core -> Wp_energy.Account.core_pj acct

let check_probe ~where prepared (config : Config.t) (s : Stats.t) =
  (* A short window so generated programs still produce several
     windows and boundary handling gets exercised. *)
  let sampler = Sampler.create ~window_cycles:1024 () in
  match Runner.run_scheme ~probe:(Sampler.probe sampler) prepared config with
  | exception exn ->
      [
        Printf.sprintf "%s: probed run raised: %s" where
          (Printexc.to_string exn);
      ]
  | probed ->
      let windows = Sampler.finish sampler in
      let v = ref [] in
      let fail fmt =
        Printf.ksprintf (fun msg -> v := (where ^ ": " ^ msg) :: !v) fmt
      in
      if not (Stats.equal s probed) then
        fail "probe changed the stats: %s"
          (Format.asprintf "%a" Stats.pp_diff (s, probed));
      let sums = Sampler.sum_counters windows in
      List.iter
        (fun c ->
          match counter_stat probed c with
          | None -> ()
          | Some expected ->
              let actual = sums.(Sampler.Counter.index c) in
              if actual <> expected then
                fail "window sum %s = %d, stats say %d"
                  (Sampler.Counter.name c) actual expected)
        Sampler.Counter.all;
      let retired =
        List.fold_left
          (fun acc (w : Sampler.window) -> acc + w.Sampler.retired)
          0 windows
      in
      if retired <> probed.Stats.retired_instrs then
        fail "window retired sum = %d, stats say %d" retired
          probed.Stats.retired_instrs;
      (match List.rev windows with
      | [] -> fail "sampler produced no windows"
      | (last : Sampler.window) :: _ ->
          if last.Sampler.end_cycle <> probed.Stats.cycles then
            fail "last window ends at cycle %d, stats say %d"
              last.Sampler.end_cycle probed.Stats.cycles);
      let cum = Sampler.final_cum_energy windows in
      List.iter
        (fun b ->
          let actual = cum.(Wp_obs.Probe.bucket_index b) in
          let expected = bucket_total probed.Stats.account b in
          if not (Float.equal actual expected) then
            fail "cumulative %s = %.9g pJ, account says %.9g pJ"
              (Wp_obs.Probe.bucket_name b) actual expected)
        Wp_obs.Probe.buckets;
      !v

(* The tentpole invariant of the block-batched fast path: for every
   cell of the grid, the replays must produce exactly equal
   statistics — every counter and every energy bucket bit-for-bit
   ([Stats.equal]).  [fast] is the cell's own run (fast path with
   steady-state fast-forward at its default, normally on); it is
   checked against a fast-forward run with the shared snapshot cache
   attached, against a fast-path run with fast-forward forced off, and
   against the per-instruction reference loop, so a fuzz failure
   distinguishes a cache-reuse bug from a fast-forward bug from a
   fast-path bug. *)

(* One cache across the whole fuzz corpus: later seeds run against
   entries published by earlier ones, which is exactly the cross-run
   reuse the serve daemon and sweep engine perform.  Scoped keys make
   cross-world hits impossible — that, too, is under test here. *)
let fastpath_cache = lazy (Wp_sim.Snapshot_cache.create ())

let check_fastpath ~where prepared (config : Config.t) (fast : Stats.t) =
  let trace = prepared.Runner.trace_large in
  let compiled = Runner.compiled_for prepared config in
  let cached_ff =
    match
      Wp_sim.Simulator.run_compiled ~fastforward:true
        ~snapshot_cache:(Lazy.force fastpath_cache) ~config ~trace compiled
    with
    | exception exn ->
        [
          Printf.sprintf "%s: fast-forward run with snapshot cache raised: %s"
            where (Printexc.to_string exn);
        ]
    | cached ->
        if Stats.equal fast cached then []
        else
          [
            Printf.sprintf
              "%s: snapshot-cache reuse diverges from plain fast-forward: %s"
              where
              (Format.asprintf "%a" Stats.pp_diff (fast, cached));
          ]
  in
  let no_ff =
    match
      Wp_sim.Simulator.run_compiled ~fastforward:false ~config ~trace compiled
    with
    | exception exn ->
        [
          Printf.sprintf "%s: fast run (no fast-forward) raised: %s" where
            (Printexc.to_string exn);
        ]
    | plain ->
        if Stats.equal fast plain then []
        else
          [
            Printf.sprintf
              "%s: fast-forward diverges from plain fast path: %s" where
              (Format.asprintf "%a" Stats.pp_diff (fast, plain));
          ]
  in
  let vs_reference =
    match
      Wp_sim.Simulator.run_compiled ~reference_only:true ~config ~trace
        compiled
    with
    | exception exn ->
        [
          Printf.sprintf "%s: reference run raised: %s" where
            (Printexc.to_string exn);
        ]
    | reference ->
        if Stats.equal fast reference then []
        else
          [
            Printf.sprintf "%s: fast path diverges from reference: %s" where
              (Format.asprintf "%a" Stats.pp_diff (fast, reference));
          ]
  in
  cached_ff @ no_ff @ vs_reference

(* ------------------------------------------------------------------ *)
(* Multiprogramming checks (PR 8).  Two laws tie the mp machine to the
   single-process simulator and to itself:

   - identity: a single-process mix under an infinite quantum with no
     kernel IS the single-process simulator — the aggregate must be
     [Stats.equal] to the grid cell's own run, bit for bit;
   - under real time-slicing (finite quantum, kernel, a second
     process polluting the shared cache), the block-batched mp fast
     path, the per-instruction mp reference loop and a probed replay
     all agree exactly, per process and in aggregate, and per-process
     integer counters sum to the aggregate counter by counter. *)

module Mp = Wp_mp.Machine
module Mix = Wp_mp.Mix

(* The fixed cache-polluting partner for contention checks: small and
   loopy, so it revisits its own lines and evicts the fuzz program's. *)
let mp_partner_spec =
  {
    Spec.name = "mp-partner";
    seed = 0xBEEF;
    num_funcs = 3;
    blocks_per_func_min = 2;
    blocks_per_func_max = 4;
    instrs_per_block_min = 2;
    instrs_per_block_max = 5;
    max_loop_depth = 1;
    avg_loop_trips = 3;
    hot_func_fraction = 0.5;
    hot_call_bias = 0.5;
    if_taken_bias = 0.5;
    mem_ratio = 0.2;
    mac_ratio = 0.1;
    data_working_set_bytes = 512;
    trace_blocks_large = 120;
    trace_blocks_small = 60;
  }

let check_mp_identity ~where spec (config : Config.t) (cell : Stats.t) =
  match Mp.run ~config ~options:Mp.oracle_options (Mix.of_specs [ spec ]) with
  | exception exn ->
      [
        Printf.sprintf "%s: mp identity run raised: %s" where
          (Printexc.to_string exn);
      ]
  | r ->
      if Stats.equal r.Mp.aggregate cell then []
      else
        [
          Printf.sprintf
            "%s: mp infinite-quantum single-process run diverges from \
             Simulator.run: %s"
            where
            (Format.asprintf "%a" Stats.pp_diff (r.Mp.aggregate, cell));
        ]

let mp_int_conservation ~where (r : Mp.result) =
  let sum = Array.map (fun _ -> 0) (Stats.snapshot_ints r.Mp.aggregate) in
  let add s = Array.iteri (fun i v -> sum.(i) <- sum.(i) + v) (Stats.snapshot_ints s) in
  List.iter (fun (p : Mp.process_result) -> add p.Mp.pr_stats) r.Mp.processes;
  add r.Mp.system;
  if sum = Stats.snapshot_ints r.Mp.aggregate then []
  else
    [
      Printf.sprintf
        "%s: per-process + system counters do not sum to the mp aggregate"
        where;
    ]

let check_mp_mix ~where spec (config : Config.t) =
  let mix = Mix.of_specs ~coverage:Mix.Half_placed [ spec; mp_partner_spec ] in
  let options = { Mp.default_options with Mp.quantum_cycles = 4_000 } in
  match Mp.run ~config ~options mix with
  | exception exn ->
      [
        Printf.sprintf "%s: mp fast run raised: %s" where
          (Printexc.to_string exn);
      ]
  | fast -> (
      match Mp.run ~reference_only:true ~config ~options mix with
      | exception exn ->
          [
            Printf.sprintf "%s: mp reference run raised: %s" where
              (Printexc.to_string exn);
          ]
      | refr ->
          let v = ref [] in
          let fail fmt =
            Printf.ksprintf (fun msg -> v := (where ^ ": " ^ msg) :: !v) fmt
          in
          if not (Stats.equal fast.Mp.aggregate refr.Mp.aggregate) then
            fail "mp fast path diverges from mp reference: %s"
              (Format.asprintf "%a" Stats.pp_diff
                 (fast.Mp.aggregate, refr.Mp.aggregate));
          List.iteri
            (fun i (pf : Mp.process_result) ->
              let pr = List.nth refr.Mp.processes i in
              if not (Stats.equal pf.Mp.pr_stats pr.Mp.pr_stats) then
                fail "mp fast path diverges from reference on process %d (%s)"
                  i pf.Mp.pr_name)
            fast.Mp.processes;
          if fast.Mp.switches <> refr.Mp.switches then
            fail "mp fast path saw %d switches, reference %d" fast.Mp.switches
              refr.Mp.switches;
          (* cache invariance: re-running with the corpus-wide snapshot
             cache attached (quantum-capped skips, cross-quantum
             re-convergence) must not move a bit, per process or in
             aggregate, and must take every switch at the same point. *)
          (match
             Mp.run
               ~snapshot_cache:(Lazy.force fastpath_cache)
               ~config ~options mix
           with
          | exception exn ->
              fail "mp snapshot-cache run raised: %s" (Printexc.to_string exn)
          | cached ->
              if not (Stats.equal cached.Mp.aggregate fast.Mp.aggregate) then
                fail "snapshot cache changed the mp aggregate: %s"
                  (Format.asprintf "%a" Stats.pp_diff
                     (cached.Mp.aggregate, fast.Mp.aggregate));
              List.iteri
                (fun i (pc : Mp.process_result) ->
                  let pf = List.nth fast.Mp.processes i in
                  if not (Stats.equal pc.Mp.pr_stats pf.Mp.pr_stats) then
                    fail
                      "snapshot cache changed mp process %d (%s)" i
                      pc.Mp.pr_name)
                cached.Mp.processes;
              if cached.Mp.switches <> fast.Mp.switches then
                fail "mp snapshot-cache run saw %d switches, plain saw %d"
                  cached.Mp.switches fast.Mp.switches);
          (* probe invariance: a probed replay (which also forces the
             reference loop) must not move a single bit, and its switch
             markers must recount the machine's switches. *)
          let sampler = Sampler.create ~window_cycles:1024 () in
          (match Mp.run ~probe:(Sampler.probe sampler) ~config ~options mix with
          | exception exn -> fail "probed mp run raised: %s" (Printexc.to_string exn)
          | probed ->
              let windows = Sampler.finish sampler in
              if not (Stats.equal probed.Mp.aggregate fast.Mp.aggregate) then
                fail "probe changed the mp aggregate: %s"
                  (Format.asprintf "%a" Stats.pp_diff
                     (probed.Mp.aggregate, fast.Mp.aggregate));
              let marker_switches =
                List.fold_left
                  (fun acc (w : Sampler.window) ->
                    acc
                    + List.length
                        (List.filter
                           (function Sampler.Switch _ -> true | _ -> false)
                           w.Sampler.markers))
                  0 windows
              in
              if marker_switches <> probed.Mp.switches then
                fail "sampler saw %d switch markers, machine reports %d"
                  marker_switches probed.Mp.switches;
              let retired =
                List.fold_left
                  (fun acc (w : Sampler.window) -> acc + w.Sampler.retired)
                  0 windows
              in
              if retired <> probed.Mp.aggregate.Stats.retired_instrs then
                fail "mp window retired sum = %d, aggregate says %d" retired
                  probed.Mp.aggregate.Stats.retired_instrs);
          !v @ mp_int_conservation ~where fast)

(* ------------------------------------------------------------------ *)
(* Static-analysis cross-checks (PR 4): a generator that emits an
   ill-formed binary is itself a bug, and the abstract must/may
   classification must agree with the simulated probe stream on every
   program the fuzzer produces. *)

let check_lint ~where graph layout =
  match Wp_lint.Wf_lint.check graph layout with
  | exception exn ->
      [ Printf.sprintf "%s: lint raised: %s" where (Printexc.to_string exn) ]
  | findings ->
      List.map
        (fun f -> Printf.sprintf "%s: %s" where (Format.asprintf "%a" Wp_lint.Finding.pp f))
        (Wp_lint.Finding.errors findings)

let check_contract ~where graph layout params =
  match Wp_lint.Contract.check graph layout params with
  | exception exn ->
      [ Printf.sprintf "%s: contract check raised: %s" where (Printexc.to_string exn) ]
  | findings ->
      List.map
        (fun f -> Printf.sprintf "%s: %s" where (Format.asprintf "%a" Wp_lint.Finding.pp f))
        (Wp_lint.Finding.errors findings)

let check_soundness ~where ~geometry ~program ~layout ~trace =
  match Wp_lint.Soundness.check ~geometry ~program ~layout ~trace () with
  | exception exn ->
      [
        Printf.sprintf "%s: soundness check raised: %s" where
          (Printexc.to_string exn);
      ]
  | r -> List.map (fun v -> where ^ ": " ^ v) r.Wp_lint.Soundness.violations

(* The PR 8 kernel is one fixed image; its reserved-area contract and
   the user layout's disjointness from it are checked once per process
   and reused across seeds. *)
let kernel_lazy = lazy (Wp_mp.Kernel.prepare ~page_bytes:1024)

let check_reserved ~where graph user_layout =
  match Lazy.force kernel_lazy with
  | exception exn ->
      [
        Printf.sprintf "%s: kernel prepare raised: %s" where
          (Printexc.to_string exn);
      ]
  | kernel ->
      let findings =
        Wp_lint.Contract.check_reserved kernel.Wp_mp.Kernel.program.Wp_workloads.Codegen.graph
          kernel.Wp_mp.Kernel.layout ~kernel_base:Wp_mp.Kernel.base
          ~kernel_area_bytes:kernel.Wp_mp.Kernel.area_bytes ~role:`Kernel
        @ Wp_lint.Contract.check_reserved graph user_layout
            ~kernel_base:Wp_mp.Kernel.base
            ~kernel_area_bytes:kernel.Wp_mp.Kernel.area_bytes ~role:`User
      in
      List.map
        (fun f ->
          Printf.sprintf "%s: %s" where
            (Format.asprintf "%a" Wp_lint.Finding.pp f))
        findings

(* The static placement advisor's laws (region bounds, PL001
   reproduction, schedule inside the energy envelope) on the placed
   layout.  Failure strings name the offending region so shrunk differ
   reports stay actionable. *)
let check_advise ~where ~geometry ~page_bytes ~area_bytes prepared =
  Wp_advise.Laws.check ~where ~geometry ~page_bytes ~area_bytes
    ~program:prepared.Runner.program ~profile:prepared.Runner.profile_small
    ~trace:prepared.Runner.trace_large ~layout:prepared.Runner.placed_layout
    ()

(* ------------------------------------------------------------------ *)

let check_spec ?(geometries = default_geometries) spec =
  match Runner.prepare spec with
  | exception exn ->
      [ Printf.sprintf "prepare raised: %s" (Printexc.to_string exn) ]
  | prepared ->
      let graph = prepared.Runner.program.Wp_workloads.Codegen.graph in
      let trace = prepared.Runner.trace_large in
      check_lint ~where:"lint original" graph prepared.Runner.original_layout
      @ check_lint ~where:"lint placed" graph prepared.Runner.placed_layout
      @ List.concat
        (List.mapi
           (fun i geometry ->
             let gname = Geometry.to_string geometry in
             let runs = configs_for ~ablations:(i = 0) geometry in
             let results =
               List.filter_map
                 (fun (label, config) ->
                   match Runner.run_scheme prepared config with
                   | stats -> Some (label, Ok (config, stats))
                   | exception exn -> Some (label, Error exn))
                 runs
             in
             let raised =
               List.filter_map
                 (fun (label, r) ->
                   match r with
                   | Error exn ->
                       Some
                         (Printf.sprintf "%s @ %s: simulator raised: %s" label
                            gname (Printexc.to_string exn))
                   | Ok _ -> None)
                 results
             in
             let ok =
               List.filter_map
                 (fun (label, r) ->
                   match r with
                   | Ok (config, stats) -> Some (label, (config, stats))
                   | Error _ -> None)
                 results
             in
             let stats_only = List.map (fun (l, (_, s)) -> (l, s)) ok in
             raised
             @ List.concat_map
                 (fun (label, (config, stats)) ->
                   let where = Printf.sprintf "%s @ %s" label gname in
                   let layout =
                     match config.Config.scheme with
                     | Config.Way_placement _ -> prepared.Runner.placed_layout
                     | _ -> prepared.Runner.original_layout
                   in
                   check_counters ~where config stats trace
                   @ check_fastpath ~where prepared config stats
                   @ check_baseline_energy ~where config stats
                   @ check_oracle ~where config stats ~graph ~layout ~trace
                   (* probed rerun doubles the cell's cost: first
                      geometry only *)
                   @ (if i = 0 then check_probe ~where prepared config stats
                      else [])
                   (* the mp identity oracle holds for every cell; the
                      full time-sliced agreement (fast = reference =
                      probed, conservation) costs three extra mp runs,
                      so first geometry, baseline + wayplace only *)
                   @ (if i = 0 then
                        check_mp_identity ~where:(where ^ " mp") spec config
                          stats
                        @ (if label = "baseline" || label = "wayplace" then
                             check_mp_mix ~where:(where ^ " mp-mix") spec
                               config
                           else [])
                      else []))
                 ok
             @ check_cross ~where:gname stats_only
             (* static-vs-dynamic: the must/may classification against
                the probe stream, on the original layout each geometry
                and additionally on the placed layout (plus the
                placement contract) for the first one *)
             @ check_soundness
                 ~where:(Printf.sprintf "soundness @ %s" gname)
                 ~geometry ~program:prepared.Runner.program
                 ~layout:prepared.Runner.original_layout ~trace
             @ (if i = 0 then
                  check_soundness
                    ~where:(Printf.sprintf "soundness placed @ %s" gname)
                    ~geometry ~program:prepared.Runner.program
                    ~layout:prepared.Runner.placed_layout ~trace
                  @ check_contract
                      ~where:(Printf.sprintf "contract placed @ %s" gname)
                      graph prepared.Runner.placed_layout
                      {
                        Wp_lint.Contract.geometry;
                        page_bytes = 1024;
                        area_bytes = 2048;
                        code_base = Wp_sim.Simulator.code_base;
                      }
                  @ check_reserved
                      ~where:(Printf.sprintf "reserved placed @ %s" gname)
                      graph prepared.Runner.placed_layout
                  @ check_advise
                      ~where:(Printf.sprintf "advise placed @ %s" gname)
                      ~geometry ~page_bytes:1024 ~area_bytes:2048 prepared
                else []))
           geometries)

let check_seed ?geometries seed = check_spec ?geometries (Progen.spec_of_seed seed)

let run_seed ?(check = fun spec -> check_spec spec) seed =
  let spec = Progen.spec_of_seed seed in
  match check spec with
  | [] -> None
  | violations ->
      let failing s = check s <> [] in
      let shrunk = Progen.minimize ~failing spec in
      Some { seed; spec; violations; shrunk; shrunk_violations = check shrunk }

let fuzz ?workers ?progress ~seed ~count () =
  let workers =
    match workers with Some w -> w | None -> Sweep.default_workers ()
  in
  let seeds = List.init count (fun i -> seed + i) in
  List.filter_map Fun.id (Sweep.Pool.map ~workers ?progress run_seed seeds)

let pp_list ppf = function
  | [] -> Format.fprintf ppf "  (none)@,"
  | vs ->
      List.iter (fun v -> Format.fprintf ppf "  - %s@," v) vs

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>fuzz failure at seed %d (reproduce: wayplace_cli fuzz --seed %d \
     --count 1)@,original program: %a@,violations (%d):@,%a\
     shrunk program: %a@,violations on shrunk program (%d):@,%a@]"
    r.seed r.seed Spec.pp r.spec
    (List.length r.violations)
    pp_list r.violations Spec.pp r.shrunk
    (List.length r.shrunk_violations)
    pp_list r.shrunk_violations
