open Wp_cache

(* One resident line.  The whole cache is a flat list of these; every
   operation scans it.  No arrays, no per-set indexing — nothing shared
   with the production implementation beyond the published semantics. *)
type line = { set : int; way : int; tag : int; mutable last_use : int }

type t = {
  geometry : Geometry.t;
  replacement : Replacement.t;
  mutable lines : line list;
  mutable cursors : (int * int) list;  (** set -> next round-robin way *)
  mutable clock : int;
}

type outcome = {
  hit : bool;
  way : int;
  tag_comparisons : int;
  ways_precharged : int;
}

type fill_policy = Victim_by_policy | Forced_way of int
type eviction = { set : int; way : int; tag : int }

let create geometry ~replacement =
  { geometry; replacement; lines = []; cursors = []; clock = 0 }

let geometry t = t.geometry

let touch t line =
  t.clock <- t.clock + 1;
  line.last_use <- t.clock

let lines_of_set t set = List.filter (fun (l : line) -> l.set = set) t.lines

(* Lowest-numbered way holding the tag, like the production cache's
   ascending way scan. *)
let find t ~set ~tag =
  List.fold_left
    (fun (best : line option) (l : line) ->
      if l.set = set && l.tag = tag then
        match best with
        | Some b when b.way <= l.way -> best
        | Some _ | None -> Some l
      else best)
    None t.lines

let lookup_full t addr =
  let set = Geometry.set_index t.geometry addr in
  let tag = Geometry.tag_of t.geometry addr in
  let assoc = t.geometry.Geometry.assoc in
  match find t ~set ~tag with
  | Some line ->
      touch t line;
      { hit = true; way = line.way; tag_comparisons = assoc; ways_precharged = assoc }
  | None ->
      { hit = false; way = -1; tag_comparisons = assoc; ways_precharged = assoc }

let lookup_way t addr ~way =
  let assoc = t.geometry.Geometry.assoc in
  if way < 0 || way >= assoc then
    invalid_arg (Printf.sprintf "Oracle_cache.lookup_way: way %d of %d" way assoc);
  let set = Geometry.set_index t.geometry addr in
  let tag = Geometry.tag_of t.geometry addr in
  match List.find_opt (fun (l : line) -> l.set = set && l.way = way) t.lines with
  | Some line when line.tag = tag ->
      touch t line;
      { hit = true; way; tag_comparisons = 1; ways_precharged = 1 }
  | Some _ | None -> { hit = false; way = -1; tag_comparisons = 1; ways_precharged = 1 }

let choose_victim t ~set =
  let assoc = t.geometry.Geometry.assoc in
  let resident = lines_of_set t set in
  let occupied way = List.exists (fun (l : line) -> l.way = way) resident in
  (* Prefer the lowest-numbered invalid way before evicting. *)
  let rec first_invalid way =
    if way >= assoc then None
    else if not (occupied way) then Some way
    else first_invalid (way + 1)
  in
  match first_invalid 0 with
  | Some way -> way
  | None -> begin
      match t.replacement with
      | Replacement.Round_robin ->
          let way =
            match List.assoc_opt set t.cursors with Some w -> w | None -> 0
          in
          t.cursors <-
            (set, (way + 1) mod assoc) :: List.remove_assoc set t.cursors;
          way
      | Replacement.Lru ->
          (* Least recently used; the lowest way wins a timestamp tie,
             matching the production cache's ascending strict-min scan. *)
          let best =
            List.fold_left
              (fun best l ->
                match best with
                | None -> Some l
                | Some b ->
                    if
                      l.last_use < b.last_use
                      || (l.last_use = b.last_use && l.way < b.way)
                    then Some l
                    else best)
              None resident
          in
          (match best with
          | Some l -> l.way
          | None ->
              invalid_arg
                "Oracle_cache.victim: LRU scan over an empty resident list")
    end

let fill t addr policy =
  let set = Geometry.set_index t.geometry addr in
  let tag = Geometry.tag_of t.geometry addr in
  match find t ~set ~tag with
  | Some line ->
      touch t line;
      (line.way, None)
  | None ->
      let way =
        match policy with
        | Victim_by_policy -> choose_victim t ~set
        | Forced_way way ->
            if way < 0 || way >= t.geometry.Geometry.assoc then
              invalid_arg
                (Printf.sprintf "Oracle_cache.fill: forced way %d out of range"
                   way);
            way
      in
      let evicted =
        List.find_opt (fun (l : line) -> l.set = set && l.way = way) t.lines
        |> Option.map (fun (l : line) -> { set = l.set; way = l.way; tag = l.tag })
      in
      t.lines <-
        List.filter (fun (l : line) -> not (l.set = set && l.way = way)) t.lines;
      let line = { set; way; tag; last_use = 0 } in
      t.lines <- line :: t.lines;
      touch t line;
      (way, evicted)

let probe t addr =
  let set = Geometry.set_index t.geometry addr in
  let tag = Geometry.tag_of t.geometry addr in
  Option.map (fun (l : line) -> l.way) (find t ~set ~tag)

let invalidate t ~set ~way =
  t.lines <- List.filter (fun (l : line) -> not (l.set = set && l.way = way)) t.lines

let flush t =
  t.lines <- [];
  t.cursors <- [];
  t.clock <- 0

let valid_lines t = List.length t.lines

let resident_tags t ~set =
  lines_of_set t set
  |> List.map (fun (l : line) -> (l.way, l.tag))
  |> List.sort compare

let pp ppf t =
  Format.fprintf ppf "oracle-cache %a (%s), %d/%d lines valid" Geometry.pp
    t.geometry
    (Replacement.to_string t.replacement)
    (valid_lines t)
    (Geometry.lines t.geometry)
