(** Randomized well-formed XR32 program generation for the
    differential fuzzer.

    A fuzz case is just a {!Wp_workloads.Spec.t}: {!Wp_workloads.Codegen}
    is deterministic in the spec, so generating a random {e spec} is
    generating a random closed ICFG — loops, calls, returns and all —
    and a failing case is reproducible (and shrinkable) from its seed
    alone. *)

val spec_of_seed : int -> Wp_workloads.Spec.t
(** The fuzz program for a seed: a pure function, always valid under
    {!Wp_workloads.Spec.validate}.  Shapes span one-function straight-line
    code up to ~15 functions with nested loops and layered calls; trace
    budgets stay small enough that one case simulates in milliseconds. *)

val generate : Wp_workloads.Rng.t -> name:string -> Wp_workloads.Spec.t
(** The generator underneath {!spec_of_seed}, on a caller-owned
    stream. *)

val size : Wp_workloads.Spec.t -> int
(** Shrink metric: static-code estimate plus dynamic budgets.  Every
    {!shrink_candidates} result is strictly smaller, so shrinking
    terminates. *)

val shrink_candidates : Wp_workloads.Spec.t -> Wp_workloads.Spec.t list
(** Valid specs strictly smaller than the input (halved trace budgets,
    fewer functions, fewer/shorter blocks, shallower loops, ...), most
    aggressive first.  Empty once the spec is minimal. *)

val minimize :
  failing:(Wp_workloads.Spec.t -> bool) -> Wp_workloads.Spec.t -> Wp_workloads.Spec.t
(** Greedy shrink: repeatedly replace the spec with the first candidate
    that still satisfies [failing], until none does.  Deterministic; the
    result still fails (assuming the input did) and is locally minimal:
    every candidate of the result passes. *)

(** {2 Process mixes}

    The multiprogramming analogue: a random {!Wp_mp.Mix.t} is 2-4
    random specs with trimmed trace budgets plus per-process placement
    flags and priorities, a pure function of its seed.  Shrinking works
    at the spec level — drop a whole process, or shrink one member with
    {!shrink_candidates} — so a failing mp fuzz case minimises the same
    way a single-program case does. *)

val mix_of_seed : int -> Wp_mp.Mix.t
(** The fuzz mix for a seed; always valid under {!Wp_mp.Mix.validate}. *)

val generate_mix : Wp_workloads.Rng.t -> name:string -> Wp_mp.Mix.t
(** The generator underneath {!mix_of_seed}, on a caller-owned
    stream. *)

val mix_size : Wp_mp.Mix.t -> int
(** Shrink metric: member {!size}s plus one per process, so dropping a
    process strictly decreases it.  Every {!mix_shrink_candidates}
    result is strictly smaller. *)

val mix_shrink_candidates : Wp_mp.Mix.t -> Wp_mp.Mix.t list
(** Mixes strictly smaller than the input: each one-process drop (when
    more than one remains), then each member replaced by each of its
    {!shrink_candidates}. *)

val minimize_mix : failing:(Wp_mp.Mix.t -> bool) -> Wp_mp.Mix.t -> Wp_mp.Mix.t
(** Greedy shrink over {!mix_shrink_candidates}; same contract as
    {!minimize}. *)
