(** Randomized well-formed XR32 program generation for the
    differential fuzzer.

    A fuzz case is just a {!Wp_workloads.Spec.t}: {!Wp_workloads.Codegen}
    is deterministic in the spec, so generating a random {e spec} is
    generating a random closed ICFG — loops, calls, returns and all —
    and a failing case is reproducible (and shrinkable) from its seed
    alone. *)

val spec_of_seed : int -> Wp_workloads.Spec.t
(** The fuzz program for a seed: a pure function, always valid under
    {!Wp_workloads.Spec.validate}.  Shapes span one-function straight-line
    code up to ~15 functions with nested loops and layered calls; trace
    budgets stay small enough that one case simulates in milliseconds. *)

val generate : Wp_workloads.Rng.t -> name:string -> Wp_workloads.Spec.t
(** The generator underneath {!spec_of_seed}, on a caller-owned
    stream. *)

val size : Wp_workloads.Spec.t -> int
(** Shrink metric: static-code estimate plus dynamic budgets.  Every
    {!shrink_candidates} result is strictly smaller, so shrinking
    terminates. *)

val shrink_candidates : Wp_workloads.Spec.t -> Wp_workloads.Spec.t list
(** Valid specs strictly smaller than the input (halved trace budgets,
    fewer functions, fewer/shorter blocks, shallower loops, ...), most
    aggressive first.  Empty once the spec is minimal. *)

val minimize :
  failing:(Wp_workloads.Spec.t -> bool) -> Wp_workloads.Spec.t -> Wp_workloads.Spec.t
(** Greedy shrink: repeatedly replace the spec with the first candidate
    that still satisfies [failing], until none does.  Deterministic; the
    result still fails (assuming the input did) and is locally minimal:
    every candidate of the result passes. *)
