open Wp_workloads

let generate rng ~name =
  let num_funcs = Rng.int_in rng ~min:1 ~max:15 in
  let blocks_per_func_min = Rng.int_in rng ~min:1 ~max:3 in
  let blocks_per_func_max =
    blocks_per_func_min + Rng.int_in rng ~min:0 ~max:8
  in
  let instrs_per_block_min = Rng.int_in rng ~min:1 ~max:4 in
  let instrs_per_block_max =
    instrs_per_block_min + Rng.int_in rng ~min:0 ~max:8
  in
  let mem_ratio = Rng.float rng *. 0.5 in
  let mac_ratio = Rng.float rng *. (1.0 -. mem_ratio) *. 0.5 in
  {
    Spec.name;
    seed = Rng.int rng 1_000_000;
    num_funcs;
    blocks_per_func_min;
    blocks_per_func_max;
    instrs_per_block_min;
    instrs_per_block_max;
    max_loop_depth = Rng.int_in rng ~min:0 ~max:3;
    avg_loop_trips = Rng.int_in rng ~min:1 ~max:8;
    hot_func_fraction = Rng.float rng;
    hot_call_bias = Rng.float rng;
    if_taken_bias = Rng.float rng;
    mem_ratio;
    mac_ratio;
    data_working_set_bytes = 64 lsl Rng.int_in rng ~min:0 ~max:8;
    trace_blocks_large = Rng.int_in rng ~min:80 ~max:1200;
    trace_blocks_small = Rng.int_in rng ~min:40 ~max:400;
  }

let spec_of_seed seed =
  let spec = generate (Rng.create seed) ~name:(Printf.sprintf "fuzz%d" seed) in
  (match Spec.validate spec with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Progen.spec_of_seed: generated invalid spec: " ^ msg));
  spec

let size (s : Spec.t) =
  Spec.static_code_estimate_bytes s
  + s.Spec.trace_blocks_large + s.Spec.trace_blocks_small
  + s.Spec.avg_loop_trips + s.Spec.max_loop_depth
  + (s.Spec.data_working_set_bytes / 64)

let shrink_candidates (s : Spec.t) =
  let half x = x / 2 in
  let candidates =
    [
      { s with Spec.trace_blocks_large = max 1 (half s.Spec.trace_blocks_large) };
      { s with Spec.num_funcs = max 1 (half s.Spec.num_funcs) };
      { s with Spec.num_funcs = s.Spec.num_funcs - 1 };
      {
        s with
        Spec.blocks_per_func_max =
          max s.Spec.blocks_per_func_min (half s.Spec.blocks_per_func_max);
      };
      { s with Spec.blocks_per_func_min = 1; blocks_per_func_max = 1 };
      {
        s with
        Spec.instrs_per_block_max =
          max s.Spec.instrs_per_block_min (half s.Spec.instrs_per_block_max);
      };
      { s with Spec.instrs_per_block_min = 1; instrs_per_block_max = 1 };
      { s with Spec.max_loop_depth = s.Spec.max_loop_depth - 1 };
      { s with Spec.avg_loop_trips = max 1 (half s.Spec.avg_loop_trips) };
      { s with Spec.trace_blocks_small = max 1 (half s.Spec.trace_blocks_small) };
      {
        s with
        Spec.data_working_set_bytes = max 64 (half s.Spec.data_working_set_bytes);
      };
    ]
  in
  List.filter
    (fun c -> size c < size s && Result.is_ok (Spec.validate c))
    candidates

let rec minimize ~failing spec =
  match List.find_opt failing (shrink_candidates spec) with
  | Some smaller -> minimize ~failing smaller
  | None -> spec
