open Wp_workloads

let generate rng ~name =
  let num_funcs = Rng.int_in rng ~min:1 ~max:15 in
  let blocks_per_func_min = Rng.int_in rng ~min:1 ~max:3 in
  let blocks_per_func_max =
    blocks_per_func_min + Rng.int_in rng ~min:0 ~max:8
  in
  let instrs_per_block_min = Rng.int_in rng ~min:1 ~max:4 in
  let instrs_per_block_max =
    instrs_per_block_min + Rng.int_in rng ~min:0 ~max:8
  in
  let mem_ratio = Rng.float rng *. 0.5 in
  let mac_ratio = Rng.float rng *. (1.0 -. mem_ratio) *. 0.5 in
  {
    Spec.name;
    seed = Rng.int rng 1_000_000;
    num_funcs;
    blocks_per_func_min;
    blocks_per_func_max;
    instrs_per_block_min;
    instrs_per_block_max;
    max_loop_depth = Rng.int_in rng ~min:0 ~max:3;
    avg_loop_trips = Rng.int_in rng ~min:1 ~max:8;
    hot_func_fraction = Rng.float rng;
    hot_call_bias = Rng.float rng;
    if_taken_bias = Rng.float rng;
    mem_ratio;
    mac_ratio;
    data_working_set_bytes = 64 lsl Rng.int_in rng ~min:0 ~max:8;
    trace_blocks_large = Rng.int_in rng ~min:80 ~max:1200;
    trace_blocks_small = Rng.int_in rng ~min:40 ~max:400;
  }

let spec_of_seed seed =
  let spec = generate (Rng.create seed) ~name:(Printf.sprintf "fuzz%d" seed) in
  (match Spec.validate spec with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Progen.spec_of_seed: generated invalid spec: " ^ msg));
  spec

let size (s : Spec.t) =
  Spec.static_code_estimate_bytes s
  + s.Spec.trace_blocks_large + s.Spec.trace_blocks_small
  + s.Spec.avg_loop_trips + s.Spec.max_loop_depth
  + (s.Spec.data_working_set_bytes / 64)

let shrink_candidates (s : Spec.t) =
  let half x = x / 2 in
  let candidates =
    [
      { s with Spec.trace_blocks_large = max 1 (half s.Spec.trace_blocks_large) };
      { s with Spec.num_funcs = max 1 (half s.Spec.num_funcs) };
      { s with Spec.num_funcs = s.Spec.num_funcs - 1 };
      {
        s with
        Spec.blocks_per_func_max =
          max s.Spec.blocks_per_func_min (half s.Spec.blocks_per_func_max);
      };
      { s with Spec.blocks_per_func_min = 1; blocks_per_func_max = 1 };
      {
        s with
        Spec.instrs_per_block_max =
          max s.Spec.instrs_per_block_min (half s.Spec.instrs_per_block_max);
      };
      { s with Spec.instrs_per_block_min = 1; instrs_per_block_max = 1 };
      { s with Spec.max_loop_depth = s.Spec.max_loop_depth - 1 };
      { s with Spec.avg_loop_trips = max 1 (half s.Spec.avg_loop_trips) };
      { s with Spec.trace_blocks_small = max 1 (half s.Spec.trace_blocks_small) };
      {
        s with
        Spec.data_working_set_bytes = max 64 (half s.Spec.data_working_set_bytes);
      };
    ]
  in
  List.filter
    (fun c -> size c < size s && Result.is_ok (Spec.validate c))
    candidates

let rec minimize ~failing spec =
  match List.find_opt failing (shrink_candidates spec) with
  | Some smaller -> minimize ~failing smaller
  | None -> spec

(* ------------------------------------------------------------------ *)
(* Process mixes for the multiprogramming layer: a random mix is 2-4
   random specs (with trimmed trace budgets, so a whole mp case still
   simulates quickly) plus per-process placement flags and priorities.
   Like specs, a mix is a pure function of its seed, and shrinking
   works at the spec level: drop a process, or shrink one member. *)

let generate_mix rng ~name =
  let n = Rng.int_in rng ~min:2 ~max:4 in
  List.init n (fun i ->
      let spec = generate rng ~name:(Printf.sprintf "%s.p%d" name i) in
      let spec =
        {
          spec with
          Spec.trace_blocks_large = max 40 (spec.Spec.trace_blocks_large / 3);
          trace_blocks_small = max 20 (spec.Spec.trace_blocks_small / 3);
        }
      in
      let placed = Rng.int rng 4 > 0 (* 3 in 4 way-placed *) in
      let priority = Rng.int_in rng ~min:0 ~max:2 in
      { Wp_mp.Mix.pname = spec.Spec.name; spec; placed; priority })

let mix_of_seed seed =
  let mix =
    generate_mix (Rng.create seed) ~name:(Printf.sprintf "mix%d" seed)
  in
  (match Wp_mp.Mix.validate mix with
  | Ok () -> ()
  | Error msg ->
      invalid_arg ("Progen.mix_of_seed: generated invalid mix: " ^ msg));
  mix

let mix_size mix =
  List.fold_left
    (fun acc (p : Wp_mp.Mix.proc) -> acc + 1 + size p.Wp_mp.Mix.spec)
    0 mix

let mix_shrink_candidates mix =
  let drops =
    if List.length mix <= 1 then []
    else List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) mix) mix
  in
  let member_shrinks =
    List.concat (List.mapi
      (fun i (p : Wp_mp.Mix.proc) ->
        List.map
          (fun spec' ->
            List.mapi
              (fun j q -> if j = i then { p with Wp_mp.Mix.spec = spec' } else q)
              mix)
          (shrink_candidates p.Wp_mp.Mix.spec))
      mix)
  in
  drops @ member_shrinks

let rec minimize_mix ~failing mix =
  match List.find_opt failing (mix_shrink_candidates mix) with
  | Some smaller -> minimize_mix ~failing smaller
  | None -> mix
