type t = {
  mutable icache : float;
  mutable itlb : float;
  mutable dcache : float;
  mutable memory : float;
  mutable core : float;
  mutable probe : Wp_obs.Probe.t option;
}

let create () =
  {
    icache = 0.;
    itlb = 0.;
    dcache = 0.;
    memory = 0.;
    core = 0.;
    probe = None;
  }

let set_probe t probe = t.probe <- probe

let add_icache t e =
  t.icache <- t.icache +. e;
  match t.probe with
  | None -> ()
  | Some p -> p (Wp_obs.Probe.Energy { bucket = Icache; pj = e })

let add_itlb t e =
  t.itlb <- t.itlb +. e;
  match t.probe with
  | None -> ()
  | Some p -> p (Wp_obs.Probe.Energy { bucket = Itlb; pj = e })

let add_dcache t e =
  t.dcache <- t.dcache +. e;
  match t.probe with
  | None -> ()
  | Some p -> p (Wp_obs.Probe.Energy { bucket = Dcache; pj = e })

let add_memory t e =
  t.memory <- t.memory +. e;
  match t.probe with
  | None -> ()
  | Some p -> p (Wp_obs.Probe.Energy { bucket = Memory; pj = e })

let add_core t e =
  t.core <- t.core +. e;
  match t.probe with
  | None -> ()
  | Some p -> p (Wp_obs.Probe.Energy { bucket = Core; pj = e })

let icache_pj t = t.icache
let itlb_pj t = t.itlb
let dcache_pj t = t.dcache
let memory_pj t = t.memory
let core_pj t = t.core
let total_pj t = t.icache +. t.itlb +. t.dcache +. t.memory +. t.core

let icache_share t =
  let total = total_pj t in
  if total <= 0.0 then 0.0 else t.icache /. total

let pp ppf t =
  Format.fprintf ppf
    "E[pJ]: icache=%.0f itlb=%.0f dcache=%.0f mem=%.0f core=%.0f (icache %.1f%%)"
    t.icache t.itlb t.dcache t.memory t.core
    (100.0 *. icache_share t)
