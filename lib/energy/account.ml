(* Buckets live in a flat float array so the hot [add_*] calls mutate an
   unboxed cell: a [mutable float] field in this (mixed) record would
   box a fresh float on every addition — measurable on the simulator's
   per-fetch charge path.  Indices follow the bucket order of
   [Wp_obs.Probe]. *)
type t = {
  buckets : float array;  (** icache, itlb, dcache, memory, core *)
  mutable probe : Wp_obs.Probe.t option;
}

let icache_i = 0
let itlb_i = 1
let dcache_i = 2
let memory_i = 3
let core_i = 4

let create () = { buckets = Array.make 5 0.; probe = None }
let set_probe t probe = t.probe <- probe

let add_icache t e =
  t.buckets.(icache_i) <- t.buckets.(icache_i) +. e;
  match t.probe with
  | None -> ()
  | Some p -> p (Wp_obs.Probe.Energy { bucket = Icache; pj = e })

let add_icache_run t e ~n =
  (* Repeated adds of the same constant, in order: bit-identical to
     calling [add_icache] [n] times, with the probe match hoisted. *)
  match t.probe with
  | None ->
      for _ = 1 to n do
        t.buckets.(icache_i) <- t.buckets.(icache_i) +. e
      done
  | Some p ->
      for _ = 1 to n do
        t.buckets.(icache_i) <- t.buckets.(icache_i) +. e;
        p (Wp_obs.Probe.Energy { bucket = Icache; pj = e })
      done

let add_itlb t e =
  t.buckets.(itlb_i) <- t.buckets.(itlb_i) +. e;
  match t.probe with
  | None -> ()
  | Some p -> p (Wp_obs.Probe.Energy { bucket = Itlb; pj = e })

let add_dcache t e =
  t.buckets.(dcache_i) <- t.buckets.(dcache_i) +. e;
  match t.probe with
  | None -> ()
  | Some p -> p (Wp_obs.Probe.Energy { bucket = Dcache; pj = e })

let add_memory t e =
  t.buckets.(memory_i) <- t.buckets.(memory_i) +. e;
  match t.probe with
  | None -> ()
  | Some p -> p (Wp_obs.Probe.Energy { bucket = Memory; pj = e })

let add_core t e =
  t.buckets.(core_i) <- t.buckets.(core_i) +. e;
  match t.probe with
  | None -> ()
  | Some p -> p (Wp_obs.Probe.Energy { bucket = Core; pj = e })

let replay t ~charges ~lens ~iters =
  if Array.length charges <> 5 || Array.length lens <> 5 then
    invalid_arg "Account.replay: five buckets expected";
  if t.probe <> None then invalid_arg "Account.replay: probe attached";
  (* [iters] repetitions of each bucket's recorded charge sequence, in
     recorded order.  Buckets are independent accumulators, so per-bucket
     order is enough for bit-identity with re-running the [add_*] calls;
     the local accumulator performs the same float additions in the same
     order as the per-call bucket updates would. *)
  for b = 0 to 4 do
    let seq = charges.(b) in
    let len = lens.(b) in
    if len > 0 then begin
      if len > Array.length seq then invalid_arg "Account.replay: bad length";
      let acc = ref t.buckets.(b) in
      for _ = 1 to iters do
        for j = 0 to len - 1 do
          acc := !acc +. Array.unsafe_get seq j
        done
      done;
      t.buckets.(b) <- !acc
    end
  done

let icache_pj t = t.buckets.(icache_i)
let itlb_pj t = t.buckets.(itlb_i)
let dcache_pj t = t.buckets.(dcache_i)
let memory_pj t = t.buckets.(memory_i)
let core_pj t = t.buckets.(core_i)

let total_pj t =
  t.buckets.(icache_i) +. t.buckets.(itlb_i) +. t.buckets.(dcache_i)
  +. t.buckets.(memory_i) +. t.buckets.(core_i)

let icache_share t =
  let total = total_pj t in
  if total <= 0.0 then 0.0 else t.buckets.(icache_i) /. total

let pp ppf t =
  Format.fprintf ppf
    "E[pJ]: icache=%.0f itlb=%.0f dcache=%.0f mem=%.0f core=%.0f (icache %.1f%%)"
    (icache_pj t) (itlb_pj t) (dcache_pj t) (memory_pj t) (core_pj t)
    (100.0 *. icache_share t)
