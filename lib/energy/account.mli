(** Energy bookkeeping for one simulation run.

    Buckets follow the paper's reporting: "instruction cache energy"
    (Figures 4a, 5a, 6a) is the [icache] bucket alone; the ED product
    (Figures 4b, 5b, 6b) uses the total over all buckets times the
    cycle count. *)

type t

val create : unit -> t

val set_probe : t -> Wp_obs.Probe.t option -> unit
(** Attach (or with [None], detach) an observer: every subsequent
    [add_*] call emits a matching [Probe.Energy] event, in addition
    order, so an attached sampler's cumulative per-bucket totals stay
    bit-identical to this account.  Never affects the totals. *)

val add_icache : t -> float -> unit

val add_icache_run : t -> float -> n:int -> unit
(** [add_icache_run t e ~n] is bit-identical to calling
    [add_icache t e] [n] times (same accumulation order, same probe
    events) with the per-call dispatch hoisted out of the loop — the
    batched fetch path's bulk charge. *)

val add_itlb : t -> float -> unit
val add_dcache : t -> float -> unit
val add_memory : t -> float -> unit
val add_core : t -> float -> unit

val replay : t -> charges:float array array -> lens:int array -> iters:int -> unit
(** [replay t ~charges ~lens ~iters] adds [iters] repetitions of a
    recorded charge sequence to each bucket: [charges.(b).(0 ..
    lens.(b)-1)] in recorded order, with buckets in the order of
    {!Wp_obs.Probe.buckets}.  Buckets are independent accumulators, so
    this is bit-identical to re-running the [add_*] calls that produced
    the recording.  The fast-forward engine records one loop iteration
    through a probe and replays the skipped iterations here.
    @raise Invalid_argument if a probe is attached (events would be
    lost) or the arrays are malformed. *)

val icache_pj : t -> float
val itlb_pj : t -> float
val dcache_pj : t -> float
val memory_pj : t -> float
val core_pj : t -> float
val total_pj : t -> float

val icache_share : t -> float
(** I-cache fraction of the total — the motivating statistic
    (27% on the StrongARM, paper Section 1). *)

val pp : Format.formatter -> t -> unit
