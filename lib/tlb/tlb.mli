(** The instruction TLB, extended with the way-placement bit
    (paper Section 4.1).

    A fully-associative TLB (32 entries on the XScale) holds one entry
    per page; each entry carries a single extra bit — the
    way-placement bit — set by the operating system when it writes the
    entry, indicating that the page lies inside the way-placement
    area.  The TLB is read in parallel with the instruction cache, so
    the bit is only known {e after} the access; the {!Way_hint} bit
    predicts it beforehand. *)

type t

type lookup = {
  hit : bool;  (** false means a hardware page walk was needed *)
  way_placed : bool;  (** the entry's way-placement bit *)
}

val create : entries:int -> page_bytes:int -> t
(** @raise Invalid_argument unless [entries > 0] and [page_bytes] is a
    power of two. *)

val entries : t -> int
val page_bytes : t -> int

val lookup : t -> Wp_isa.Addr.t -> wp_bit_of_page:(Wp_isa.Addr.t -> bool) -> lookup
(** Translate the address's page.  On a miss the entry is filled
    (round-robin victim) and the OS-provided [wp_bit_of_page] is
    evaluated on the page base address to set the way-placement bit —
    this is the "stored with existing page permission bits and set by
    the operating system" behaviour of Section 4.1. *)

val lookup_bits :
  t -> Wp_isa.Addr.t -> wp_bit_of_page:(Wp_isa.Addr.t -> bool) -> int
(** Allocation-free twin of {!lookup} for the per-fetch simulator path:
    identical TLB-state effects, result encoded as an int — bit 0 is
    [hit], bit 1 is [way_placed]. *)

val page_base : t -> Wp_isa.Addr.t -> Wp_isa.Addr.t
val flush : t -> unit
(** Required when the OS resizes the way-placement area, so stale
    way-placement bits cannot linger. *)

val valid_entries : t -> int
val pp : Format.formatter -> t -> unit

val fingerprint : t -> add:(int -> unit) -> unit
(** Canonical state fingerprint (valid entries' pages and
    way-placement bits, round-robin cursor, lookup memo) for the
    steady-state fast-forward detector. *)
