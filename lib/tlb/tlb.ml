type t = {
  entries : int;
  page_bytes : int;
  page_mask : int;  (** [lnot (page_bytes - 1)]: page base by one mask *)
  pages : int array;
      (** page base address per entry; [-1] when invalid, so the scan
          compares this one array (real page bases are non-negative) *)
  valid : bool array;
  wp_bits : bool array;
  mutable rr_next : int;
  mutable last_hit : int;
      (** entry index of the most recent hit/fill, [-1] when unknown — a
          pure lookup accelerator (fetch streams hit the same page for
          long stretches); never changes any lookup result. *)
}

type lookup = { hit : bool; way_placed : bool }

let create ~entries ~page_bytes =
  if entries <= 0 then invalid_arg "Tlb.create: entries must be positive";
  if not (Wp_isa.Addr.is_power_of_two page_bytes) then
    invalid_arg "Tlb.create: page size must be a power of two";
  {
    entries;
    page_bytes;
    page_mask = lnot (page_bytes - 1);
    pages = Array.make entries (-1);
    valid = Array.make entries false;
    wp_bits = Array.make entries false;
    rr_next = 0;
    last_hit = -1;
  }

let entries t = t.entries
let page_bytes t = t.page_bytes
let page_base t addr = addr land t.page_mask

let find t page =
  (* Entries are unique per page (only misses fill), so answering from
     the memo is the same answer the scan would give.  Returns the
     entry index or -1 (allocation-free for the per-fetch path). *)
  let m = t.last_hit in
  if m >= 0 && t.pages.(m) = page then m
  else begin
    let rec go i =
      if i >= t.entries then -1
      else if t.pages.(i) = page then i
      else go (i + 1)
    in
    go 0
  end

(* Int-encoded translate — bit 0 = hit, bit 1 = way-placement bit —
   so the simulator's per-fetch path allocates nothing. *)
let lookup_bits t addr ~wp_bit_of_page =
  let page = page_base t addr in
  match find t page with
  | -1 ->
      let victim =
        let rec invalid i =
          if i >= t.entries then -1
          else if not t.valid.(i) then i
          else invalid (i + 1)
        in
        match invalid 0 with
        | -1 ->
            let i = t.rr_next in
            t.rr_next <- (if i + 1 = t.entries then 0 else i + 1);
            i
        | i -> i
      in
      let wp = wp_bit_of_page page in
      t.pages.(victim) <- page;
      t.valid.(victim) <- true;
      t.wp_bits.(victim) <- wp;
      t.last_hit <- victim;
      if wp then 2 else 0
  | i ->
      t.last_hit <- i;
      if t.wp_bits.(i) then 3 else 1

let lookup t addr ~wp_bit_of_page =
  let bits = lookup_bits t addr ~wp_bit_of_page in
  { hit = bits land 1 = 1; way_placed = bits land 2 = 2 }

let flush t =
  Array.fill t.pages 0 t.entries (-1);
  Array.fill t.valid 0 t.entries false;
  t.rr_next <- 0;
  t.last_hit <- -1

(* Canonical fingerprint for the steady-state fast-forward detector:
   page and way-placement bit per valid entry (-1/-1 when invalid —
   stale [wp_bits] of invalidated entries are unreachable, since the
   scan matches on [pages] alone), plus the round-robin cursor and the
   lookup memo. *)
let fingerprint t ~add =
  for i = 0 to t.entries - 1 do
    if t.valid.(i) then begin
      add t.pages.(i);
      add (if t.wp_bits.(i) then 1 else 0)
    end
    else begin
      add (-1);
      add (-1)
    end
  done;
  add t.rr_next;
  add t.last_hit

let valid_entries t =
  Array.fold_left (fun acc v -> if v then acc + 1 else acc) 0 t.valid

let pp ppf t =
  Format.fprintf ppf "i-tlb: %d entries, %d B pages, %d valid" t.entries
    t.page_bytes (valid_entries t)
