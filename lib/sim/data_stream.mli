(** Synthetic data-address generation for loads and stores.

    Each memory instruction carries a locality class
    ({!Wp_isa.Instr.data_locality}); this module turns the class into a
    concrete address deterministically.  The stream depends only on the
    executed instruction sequence and the seed, so every scheme sees an
    identical data-side workload — D-cache behaviour can never
    contaminate the I-cache comparison. *)

type t

val create : seed:int -> t
val base_address : Wp_isa.Addr.t
(** Start of the simulated data segment (0x4000_0000), far from code. *)

val next : t -> Wp_isa.Instr.data_locality -> Wp_isa.Addr.t
(** @raise Invalid_argument on [No_data]. *)

val fingerprint : t -> add:(int -> unit) -> unit
(** Canonical stream-state fingerprint (cursors + RNG state) for the
    steady-state fast-forward detector.  The RNG state strictly
    advances per draw, so loops with random-locality accesses never
    fingerprint equal — the conservative veto the detector needs. *)

val advance_invariant : seq_bytes:int -> stride_bytes:int -> n_random:int -> bool
(** Whether a loop iteration with the given per-iteration access totals
    returns both cursors to their entry values (and draws no random
    numbers).  A cheap pre-filter for the detector; convergence is
    always established by fingerprint equality, never assumed from
    this. *)
