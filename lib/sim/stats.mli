(** Counters and energy accounting for one simulation run. *)

type t = {
  (* instruction fetch *)
  mutable fetches : int;
  mutable same_line_fetches : int;  (** served with the tag side off *)
  mutable wp_fetches : int;  (** single-way (way-placed) accesses *)
  mutable full_fetches : int;  (** all-way searches *)
  mutable icache_hits : int;
  mutable icache_misses : int;
  mutable tag_comparisons : int;
  (* way-hint bit (paper Section 4.1) *)
  mutable hint_correct_wp : int;
  mutable hint_correct_normal : int;
  mutable hint_missed_saving : int;
  mutable hint_reaccess : int;  (** wrong "way-placed" hints: +1 cycle each *)
  (* way prediction (Inoue et al.) *)
  mutable waypred_correct : int;
  mutable waypred_wrong : int;  (** +1 cycle each *)
  (* filter cache (Kin et al.) *)
  mutable l0_hits : int;
  mutable l0_misses : int;  (** +1 cycle each *)
  (* drowsy lines (Flautner et al.) *)
  mutable drowsy_wakes : int;  (** +1 cycle each *)
  (* way-memoization *)
  mutable link_follows : int;
  mutable link_writes : int;
  mutable links_invalidated : int;
  (* translation *)
  mutable itlb_misses : int;
  mutable dtlb_misses : int;
  (* data side *)
  mutable dcache_accesses : int;
  mutable dcache_misses : int;
  (* outcome *)
  mutable cycles : int;
  mutable retired_instrs : int;
  account : Wp_energy.Account.t;
}

val create : unit -> t
val icache_energy_pj : t -> float
val total_energy_pj : t -> float
val icache_miss_rate : t -> float
val same_line_rate : t -> float
val hint_accuracy : t -> float
(** Correct hints over all non-same-line fetches (1.0 when the hint was
    never consulted). *)

val snapshot_ints : t -> int array
(** All integer counters, in a fixed order understood by
    {!add_scaled_delta}.  The fast-forward engine snapshots the
    counters around one recorded loop iteration and scales the delta by
    the number of skipped iterations. *)

val add_scaled_delta : t -> before:int array -> after:int array -> times:int -> unit
(** [add_scaled_delta t ~before ~after ~times] adds
    [times * (after - before)] to every integer counter, where the two
    snapshots come from {!snapshot_ints}.  Counters are pure sums, so
    this is exactly what [times] repetitions of the recorded iteration
    would have accumulated.
    @raise Invalid_argument on snapshots of the wrong length. *)

val equal : t -> t -> bool
(** Field-by-field equality over every counter and every energy bucket.
    Floats are compared exactly ([Float.equal], no tolerance): two runs
    are equal only when they are bit-identical, which is what the
    sweep-engine and differential tests assert. *)

val pp_diff : Format.formatter -> t * t -> unit
(** Print only the fields on which the two runs disagree, one
    ["name: left <> right"] line each (["(no differing fields)"] when
    {!equal}).  The companion to {!equal} for test failure output. *)

val pp : Format.formatter -> t -> unit
val pp_brief : Format.formatter -> t -> unit
