(** Experiment orchestration: the paper's methodology in one place.

    For each benchmark: generate the program, profile it on the
    {e small} input, build the way-placement layout from that profile,
    then evaluate every scheme on the {e large} input (Section 5).
    The baseline and way-memoization run the original binary layout;
    way-placement runs the reordered one. *)

type prepared = {
  program : Wp_workloads.Codegen.t;
  profile_small : Wp_cfg.Profile.t;
  trace_large : Wp_workloads.Tracer.trace;
  original_layout : Wp_layout.Binary_layout.t;
  placed_layout : Wp_layout.Binary_layout.t;
  compiled_original : Compiled_trace.t;
      (** precompiled replay tables for [original_layout] *)
  compiled_placed : Compiled_trace.t;
      (** precompiled replay tables for [placed_layout] *)
}

val prepare : Wp_workloads.Spec.t -> prepared
(** Everything scheme-independent, computed once per benchmark —
    including the compiled traces, so repeated runs across schemes and
    geometries (the sweep engine memoises [prepared]) stop rebuilding
    the per-block tables. *)

val layout_for : prepared -> Config.t -> Wp_layout.Binary_layout.t
(** The layout a configuration runs: the reordered (placed) binary for
    way-placement, the original one for every other scheme. *)

val compiled_for : prepared -> Config.t -> Compiled_trace.t
(** The compiled trace matching {!layout_for}. *)

val run_scheme :
  ?probe:Wp_obs.Probe.t ->
  ?fastforward:bool ->
  ?ff_report:Steady_state.report ->
  ?snapshot_cache:Snapshot_cache.t ->
  prepared ->
  Config.t ->
  Stats.t
(** Evaluate one configuration on the prepared benchmark (picks the
    layout that matches the scheme).  [probe] observes the run's event
    stream; results are bit-identical with or without it.
    [fastforward] / [ff_report] / [snapshot_cache] forward to
    {!Simulator.run_compiled} — results are bit-identical with
    fast-forward on or off, cache attached or not. *)

val run_timeline :
  ?schedule:(int * int) list ->
  ?window_cycles:int ->
  prepared ->
  Config.t ->
  Stats.t * Wp_obs.Sampler.window list
(** Like {!run_scheme} with an attached {!Wp_obs.Sampler}: returns the
    final statistics plus the windowed timeline.  [schedule] is passed
    to {!Simulator.run_with_resizes} (default empty).  The window sums
    reproduce the final statistics exactly — see {!Wp_obs.Sampler}. *)

type comparison = {
  baseline : Stats.t;
  scheme : Stats.t;
  norm_icache_energy : float;  (** Figures 4a / 5a / 6a *)
  norm_ed : float;  (** Figures 4b / 5b / 6b *)
  norm_cycles : float;
}

val compare_to_baseline : prepared -> Config.t -> comparison
(** Run the scheme config and an otherwise-identical baseline. *)

val geometric_mean : float list -> float
val arithmetic_mean : float list -> float
