(** Steady-state loop fast-forward for the block-batched fast path.

    Hot loops reach cache steady state within a few iterations (the
    dominant-block observation).  During replay the engine detects
    periodic trace regions, records one full iteration's effects once
    the canonical machine-state fingerprint is equal at two consecutive
    iteration boundaries, and then multiplies those effects by the
    remaining repetition count instead of replaying them — arithmetic
    instead of simulation, while staying bit-identical to the reference
    loop (integer counters scale as sums; order-sensitive float
    accumulators replay their recorded charge sequences in order).

    Bail-out conditions: the engine exists only on the probe-less,
    schedule-less fast path (probes and resize schedules force the
    reference loop upstream); within it, a region is simply replayed
    normally when fingerprints never match (e.g. RNG-drawing data
    accesses or drowsy timers that break iteration symmetry), when the
    candidate pattern is stream-variant, or when the attempt/snapshot
    budgets run out. *)

type policy = {
  max_period_blocks : int;  (** longest loop body considered, in trace blocks *)
  min_skip_instrs : int;
      (** minimum instructions a region could skip to be worth an attempt *)
  max_attempts : int;  (** recorded iterations per region before giving up *)
  snapshot_budget : int;
      (** fingerprint snapshots per run before detection shuts off —
          bounds detector overhead on pathological traces *)
}

val default_policy : policy

type report = {
  mutable regions : int;  (** periodic regions attempted *)
  mutable recorded_iterations : int;  (** iterations executed under recording *)
  mutable converged : int;  (** regions that reached a converged iteration *)
  mutable skipped_iterations : int;
  mutable skipped_instrs : int;  (** dynamic instructions fast-forwarded *)
}

val create_report : unit -> report

type ctx = {
  policy : policy;
  report : report;
  stats : Stats.t;
  blocks : int array;  (** the block trace being replayed *)
  n_ids : int;  (** number of distinct block ids (array bound) *)
  n_instrs_of : int -> int;  (** instructions in a block, by id *)
  stream_invariant : start:int -> period:int -> bool;
      (** cheap pre-filter: whether one iteration of the candidate
          pattern leaves the data stream where it started (see
          {!Data_stream.advance_invariant}); convergence is still only
          ever established by fingerprint equality *)
  fingerprint : start:int -> period:int -> add:(int -> unit) -> unit;
      (** canonical fingerprint, at the current point, of the machine
          state one iteration of the pattern at [blocks.(start ..
          start+period)] can observe or modify — state provably
          untouched by the pattern (e.g. the whole data-memory side of
          a pure-compute loop) may be excluded.  [start] is always the
          region's first boundary, so the scanned window is identical
          across a region's snapshots *)
  exec : int -> unit;  (** execute the block at a trace position *)
  set_awake_recorder : (int -> unit) option -> unit;
      (** drowsy awake-increment recorder hook (no-op if not drowsy) *)
  drowsy_advance : since:int -> delta:int -> unit;
  drowsy_replay : int array -> len:int -> iters:int -> unit;
  cycles : int ref;  (** the replay loop's cycle accumulator *)
  instrs : int ref;  (** the replay loop's retired-instruction counter *)
}

val run : ctx -> unit
(** Drive the whole trace through [ctx.exec], fast-forwarding converged
    periodic regions.  On return every trace position has been either
    executed or skipped-with-exact-effects; [ctx.report] describes
    which. *)
