(** Steady-state loop fast-forward for the block-batched fast path.

    Hot loops reach cache steady state within a few iterations (the
    dominant-block observation).  During replay the engine detects
    periodic trace regions, records one full iteration's effects once
    the canonical machine-state fingerprint is equal at two consecutive
    iteration boundaries, and then multiplies those effects by the
    remaining repetition count instead of replaying them — arithmetic
    instead of simulation, while staying bit-identical to the reference
    loop (integer counters scale as sums; order-sensitive float
    accumulators replay their recorded charge sequences in order).

    {b Detection is a memoised static pre-scan}: which trace stretches
    are periodic is a pure function of the block array, so the
    delta-gated detector — a rolling anchor-delta over each block's
    recurrence distance, escalating to exact O(period) segment
    verification only when the distance holds steady — runs once over
    the trace, off the replay path, and its region list is memoised
    per (trace, policy).  Every scheme, repeat sample and sweep cell
    replaying the same trace shares one scan; a patternless trace
    yields an empty list and {!engaged} lets the caller bypass the
    driver entirely, so detection costs such a run nothing per block.
    The scan is a pure filter: convergence is still established
    exclusively by fingerprint equality at run time, so a scan miss
    costs speed, never correctness.

    {b Converged iterations are reusable}: with a {!Snapshot_cache}
    attached, every boundary snapshot is also a cache lookup, and a
    converged region publishes its (fingerprint, pattern, effects)
    triple.  Re-entering the same pattern in the same observable state
    — a later region of this run, the same hot loop after an
    [Mp.Machine] context switch, another sweep cell replaying the same
    compiled trace under the same configuration — skips from its first
    boundary without re-recording.

    Bail-out conditions: the engine exists only on the probe-less,
    schedule-less fast path (probes and resize schedules force the
    reference loop upstream); within it, a region is simply replayed
    normally when fingerprints never match (e.g. RNG-drawing data
    accesses or drowsy timers that break iteration symmetry), when the
    candidate pattern is stream-variant, or when the attempt/snapshot
    budgets run out.  {!report} counts each reason. *)

type policy = {
  max_period_blocks : int;  (** longest loop body considered, in trace blocks *)
  min_skip_instrs : int;
      (** minimum instructions a region could skip to be worth an attempt *)
  max_attempts : int;  (** recorded iterations per region before giving up *)
  snapshot_budget : int;
      (** fingerprint snapshots per run before detection shuts off —
          bounds detector overhead on pathological traces *)
}

val default_policy : policy

type report = {
  mutable regions : int;  (** periodic regions attempted *)
  mutable recorded_iterations : int;  (** iterations executed under recording *)
  mutable converged : int;  (** regions that reached a converged iteration *)
  mutable skipped_iterations : int;
  mutable skipped_instrs : int;  (** dynamic instructions fast-forwarded *)
  mutable gate_rejected : int;
      (** scan-time gate escalations whose exact segment verification
          failed — a stable recurrence distance that was not actually
          periodic *)
  mutable vetoed : int;  (** verified patterns vetoed as stream-variant *)
  mutable cost_gated : int;
      (** verified regions skipped as too small to repay their own
          fingerprint (and attempts abandoned on the same grounds) *)
  mutable budget_exhausted : int;
      (** attempts abandoned on the attempt/snapshot budgets or
          because the region ran out before convergence *)
  mutable cache_hits : int;  (** regions served from the snapshot cache *)
  mutable cache_inserts : int;  (** converged iterations published to it *)
}

val create_report : unit -> report

type ctx = {
  policy : policy;
  report : report;
  stats : Stats.t;
  blocks : int array;  (** the block trace being replayed *)
  n_ids : int;  (** number of distinct block ids (array bound) *)
  n_instrs_of : int -> int;  (** instructions in a block, by id *)
  stream_invariant : start:int -> period:int -> bool;
      (** cheap pre-filter: whether one iteration of the candidate
          pattern leaves the data stream where it started (see
          {!Data_stream.advance_invariant}); convergence is still only
          ever established by fingerprint equality *)
  fingerprint : start:int -> period:int -> add:(int -> unit) -> unit;
      (** canonical fingerprint, at the current point, of the machine
          state one iteration of the pattern at [blocks.(start ..
          start+period)] can observe or modify — state provably
          untouched by the pattern (e.g. the whole data-memory side of
          a pure-compute loop) may be excluded.  [start] is always the
          region's first boundary, so the scanned window is identical
          across a region's snapshots *)
  exec : int -> unit;  (** execute the block at a trace position *)
  set_awake_recorder : (int -> unit) option -> unit;
      (** drowsy awake-increment recorder hook (no-op if not drowsy) *)
  drowsy_advance : since:int -> delta:int -> unit;
  drowsy_replay : int array -> len:int -> iters:int -> unit;
  cycles : int ref;  (** the replay loop's cycle accumulator *)
  instrs : int ref;  (** the replay loop's retired-instruction counter *)
  cache : Snapshot_cache.t option;
      (** shared converged-iteration cache; [None] runs detection
          standalone, bit-identical either way *)
  cache_scope : string;
      (** cache key component identifying the replayed world: the
          compiled trace's token plus the full configuration digest.
          Ignored when [cache] is [None] *)
  cycle_headroom : (unit -> int) option;
      (** when present, a skip may add at most this many cycles to
          [cycles] — the multiprogramming scheduler's quantum bound,
          so fast-forward never overruns a time slice and context
          switches land on exactly the reference loop's block
          boundaries.  [None] = unbounded (single-run replay) *)
}

val run : ctx -> unit
(** Drive the whole trace through [ctx.exec], fast-forwarding converged
    periodic regions.  On return every trace position has been either
    executed or skipped-with-exact-effects; [ctx.report] describes
    which. *)

(** {1 Resumable driver}

    The multiprogramming machine executes a trace in quantum-bounded
    slices with context switches in between.  A {!driver} holds the
    replay position and the precomputed region plan across those
    slices, so fast-forward — and snapshot-cache reuse — survives
    preemption. *)

type driver

val make : ctx -> driver
(** Builds (or fetches the memoised) region plan for [ctx.blocks] and
    folds its scan-side counts ([gate_rejected], [vetoed],
    [cost_gated]) into [ctx.report]. *)

val engaged : driver -> bool
(** Whether the plan found any fast-forwardable region.  When [false]
    the driver degenerates to a plain replay loop; single-run callers
    can skip it and run their own loop at zero overhead. *)

val drive : driver -> unit
(** Run the driver to the end of the trace ([run ctx] is
    [drive (make ctx)]). *)

val pos : driver -> int
(** The next trace position to execute (= [Array.length ctx.blocks]
    when the trace is finished). *)

val advance : driver -> until:(unit -> bool) -> unit
(** Execute (or fast-forward) trace positions until the trace ends or
    [until ()] holds; [until] is re-checked after every executed block
    and after every applied skip, so a caller metering cycles stops on
    exactly the block boundary the plain loop would have stopped on.
    An attempt interrupted mid-recording is abandoned (recording is
    observational, so abandonment costs speed only). *)

val reawaken : driver -> unit
(** Re-enable detection from the current position.  A region cut short
    by [until] (or by the cycle-headroom cap) is marked settled so the
    remainder of the current slice doesn't re-fingerprint every block;
    the scheduler calls this when the process is dispatched again, so
    the hot loop's next boundary can hit the snapshot cache. *)
