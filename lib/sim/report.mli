(** Result emission for the sweep harness: RFC-4180 CSV and JSON.

    The CLI's [sweep --csv] used to interpolate fields with [%s],
    silently producing an unparseable file the day a field grows a
    comma; this module owns the quoting rules and the file I/O so the
    behaviour is testable without running the binary.  The JSON side
    serves [sweep --json] and the Chrome-trace exporter
    ({!Timeline}). *)

val csv_field : string -> string
(** Quote a field if (and only if) it contains a comma, a double
    quote, or a line break; embedded double quotes are doubled
    (RFC 4180). *)

val csv_line : string list -> string
(** Escape each field, join with commas, terminate with ["\n"]. *)

val write_csv :
  path:string ->
  header:string list ->
  rows:string list list ->
  (unit, string) result
(** Write a header plus rows to [path].  An unwritable path (missing
    directory, permission, ...) is reported as [Error message] — never
    an exception — so callers exit cleanly with a diagnostic. *)

type json =
  | Jnull
  | Jbool of bool
  | Jint of int
  | Jfloat of float
  | Jstring of string
  | Jlist of json list
  | Jobj of (string * json) list

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal: quotes,
    backslashes, and control characters (RFC 8259). *)

val json_to_string : json -> string
(** Compact (single-line) rendering.  Floats print as [%.12g] with a
    trailing [.0] for integral values; non-finite floats render as
    [null] (they have no JSON encoding). *)

val write_json : path:string -> json -> (unit, string) result
(** Write the rendered value plus a trailing newline to [path]; errors
    are reported like {!write_csv}. *)

val parse_perf_rows :
  string -> (((string * string * string) * float) list * int, string) result
(** Read a [BENCH_sim.json] perf file (the line-oriented format the
    bench harness writes: one result object per line) and return its
    [((benchmark, scheme, path), instrs_per_sec)] rows in file order,
    plus the number of malformed result lines that were skipped
    (truncated mid-object, missing fields, unparseable or non-finite
    numbers).  Tolerant by design — a stale or corrupt perf artifact
    must degrade to a warning, not fail CI: only an unreadable file is
    an [Error]; a file with no recognisable rows is [Ok ([], n)] and
    the caller decides how loudly to complain. *)
