(** Result emission for the sweep harness: RFC-4180 CSV.

    The CLI's [sweep --csv] used to interpolate fields with [%s],
    silently producing an unparseable file the day a field grows a
    comma; this module owns the quoting rules and the file I/O so the
    behaviour is testable without running the binary. *)

val csv_field : string -> string
(** Quote a field if (and only if) it contains a comma, a double
    quote, or a line break; embedded double quotes are doubled
    (RFC 4180). *)

val csv_line : string list -> string
(** Escape each field, join with commas, terminate with ["\n"]. *)

val write_csv :
  path:string ->
  header:string list ->
  rows:string list list ->
  (unit, string) result
(** Write a header plus rows to [path].  An unwritable path (missing
    directory, permission, ...) is reported as [Error message] — never
    an exception — so callers exit cleanly with a diagnostic. *)
