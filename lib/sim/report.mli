(** Result emission for the sweep harness: RFC-4180 CSV and JSON.

    The CLI's [sweep --csv] used to interpolate fields with [%s],
    silently producing an unparseable file the day a field grows a
    comma; this module owns the quoting rules and the file I/O so the
    behaviour is testable without running the binary.  The JSON side
    serves [sweep --json] and the Chrome-trace exporter
    ({!Timeline}). *)

val csv_field : string -> string
(** Quote a field if (and only if) it contains a comma, a double
    quote, or a line break; embedded double quotes are doubled
    (RFC 4180). *)

val csv_line : string list -> string
(** Escape each field, join with commas, terminate with ["\n"]. *)

val write_csv :
  path:string ->
  header:string list ->
  rows:string list list ->
  (unit, string) result
(** Write a header plus rows to [path].  An unwritable path (missing
    directory, permission, ...) is reported as [Error message] — never
    an exception — so callers exit cleanly with a diagnostic. *)

type json =
  | Jnull
  | Jbool of bool
  | Jint of int
  | Jfloat of float
  | Jstring of string
  | Jlist of json list
  | Jobj of (string * json) list

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal: quotes,
    backslashes, and control characters (RFC 8259). *)

val json_to_string : json -> string
(** Compact (single-line) rendering.  Floats print with the fewest
    digits of [%.12g] / [%.15g] / [%.16g] / [%.17g] that parse back to
    the same double (integral values keep a trailing [.0]), so
    [parse (json_to_string j) = Ok j] for every value free of
    non-finite floats; NaN/infinity render as [null] (they have no
    JSON encoding). *)

val write_json : path:string -> json -> (unit, string) result
(** Write the rendered value plus a trailing newline to [path]; errors
    are reported like {!write_csv}. *)

val parse : string -> (json, string) result
(** Strict recursive-descent parser for the grammar {!json_to_string}
    emits (RFC 8259): the serve protocol's receiving half.  Accepts a
    single JSON value with surrounding whitespace; strings decode every
    escape including [\uXXXX] surrogate pairs (to UTF-8); integer
    literals that fit the native [int] parse as {!Jint}, fractional /
    exponent / oversized ones as {!Jfloat}.  Every malformed input —
    truncated text, duplicate object keys, lone surrogates, unescaped
    control characters, trailing garbage, nesting beyond 512 levels —
    returns [Error "JSON parse error at offset N: ..."], never raises:
    the daemon feeds it whatever bytes a client chooses to send. *)

val member : string -> json -> json option
(** Field of a {!Jobj} ([None] for absent keys or non-objects). *)

val to_int : json -> int option
val to_float : json -> float option
(** {!Jfloat} or (widened) {!Jint}. *)

val to_string : json -> string option
val to_bool : json -> bool option
val to_list : json -> json list option

val parse_perf_rows :
  string -> (((string * string * string) * float) list * int, string) result
(** Read a [BENCH_sim.json] perf file (the line-oriented format the
    bench harness writes: one result object per line) and return its
    [((benchmark, scheme, path), instrs_per_sec)] rows in file order,
    plus the number of malformed result lines that were skipped
    (truncated mid-object, missing fields, unparseable or non-finite
    numbers).  Tolerant by design — a stale or corrupt perf artifact
    must degrade to a warning, not fail CI: only an unreadable file is
    an [Error]; a file with no recognisable rows is [Ok ([], n)] and
    the caller decides how loudly to complain. *)
