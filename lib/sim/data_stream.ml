type t = {
  rng : Wp_workloads.Rng.t;
  mutable seq_cursor : int;
  mutable stride_cursor : int;
}

let base_address = 0x4000_0000

(* Windows sized for realistic D-cache hit rates: streams reuse a
   cacheable region, and "random" accesses have the strong temporal
   locality real pointer-chasing exhibits (90% in a hot subset). *)
let seq_window = 8 * 1024
let stride_window = 8 * 1024
let hot_random_window = 4 * 1024
let cold_random_window = 64 * 1024

let create ~seed =
  { rng = Wp_workloads.Rng.create seed; seq_cursor = 0; stride_cursor = 0 }

let next t locality =
  match locality with
  | Wp_isa.Instr.No_data -> invalid_arg "Data_stream.next: No_data"
  | Wp_isa.Instr.Sequential ->
      let a = base_address + t.seq_cursor in
      t.seq_cursor <- (t.seq_cursor + 4) mod seq_window;
      a
  | Wp_isa.Instr.Strided stride ->
      let a = base_address + seq_window + t.stride_cursor in
      t.stride_cursor <- (t.stride_cursor + stride) mod stride_window;
      a
  | Wp_isa.Instr.Random_within ws ->
      (* One fused draw: the bool picks the hot or cold window, the int
         indexes it — same RNG sequence and addresses as the two-call
         form, without its per-access call and boxing costs.  The
         min/max are spelled out as int comparisons: Stdlib.min is a
         polymorphic-compare call here, several times the price of the
         draw itself. *)
      let hot_w = if ws < hot_random_window then ws else hot_random_window in
      let cold_w = if ws < cold_random_window then ws else cold_random_window in
      let hot_words = if hot_w >= 4 then hot_w / 4 else 1 in
      let cold_words = if cold_w >= 4 then cold_w / 4 else 1 in
      base_address + seq_window + stride_window
      + (Wp_workloads.Rng.bool_then_int t.rng ~p:0.95 ~if_true:hot_words
           ~if_false:cold_words
        * 4)

(* Canonical stream-state fingerprint for the steady-state detector:
   both cursors and the RNG state.  The RNG state strictly advances per
   draw, so any loop containing a random-locality access never
   fingerprints equal — the conservative veto the detector relies on. *)
let fingerprint t ~add =
  add t.seq_cursor;
  add t.stride_cursor;
  Wp_workloads.Rng.fingerprint t.rng ~add

(* Whether one loop iteration's accesses leave the cursors exactly where
   they started: the sequential cursor advances 4 bytes per access
   modulo its window, the strided cursor by each access's stride modulo
   its window, so per-iteration totals that are multiples of the window
   return both cursors to their entry values.  Random accesses advance
   the RNG and can never be invariant.  This is only a cheap pre-filter
   for the detector — actual convergence is always established by
   fingerprint equality, never assumed from this. *)
let advance_invariant ~seq_bytes ~stride_bytes ~n_random =
  n_random = 0 && seq_bytes mod seq_window = 0
  && stride_bytes mod stride_window = 0
