open Wp_cache
open Wp_energy

type backend =
  | B_baseline of Cam_cache.t
  | B_way_placement of {
      cache : Cam_cache.t;
      hint : Wp_tlb.Way_hint.t;
      mutable area_bytes : int;
    }
  | B_way_memo of Way_memo.t
  | B_way_predict of Way_predict.t
  | B_filter of { filter : Filter_cache.t; l1 : Cam_cache.t; l0_energies : Cam_energy.t }

(* The way-placed virtual window: [warea] bytes starting at [wbase].
   Under single-process runs this is pinned to [code_base] and the
   configured area; the multiprogramming layer retargets it per process
   at context switches (the OS rewrites which pages carry the
   way-placement TLB bit), with [warea = 0] for a process whose code is
   not way-placed. *)
type window = { mutable wbase : Wp_isa.Addr.t; mutable warea : int }

type t = {
  backend : backend;
  window : window;
  tlb : Wp_tlb.Tlb.t;
  geometry : Geometry.t;
  energies : Cam_energy.t;
  tlb_lookup_pj : float;
  memory_latency : int;
  tlb_walk_latency : int;
  memory_access_pj : float;
  same_line_elision : bool;
  code_base : Wp_isa.Addr.t;
  drowsy : Drowsy.t option;
  leakage_enabled : bool;
  energy_params : Params.t;
  probe : Wp_obs.Probe.t option;
  (* Hot per-fetch constants, precomputed at creation.  [Cam_energy.t]
     is an all-float record, so reading a field from it (or calling
     [tag_search]) boxes a fresh float on every fetch; this record is
     mixed, so its float fields stay boxed once and reads are free.
     Values are computed with the exact expressions the per-call code
     used, so every charge stays bit-identical. *)
  tag_full_pj : float;  (** [tag_search ~ways:assoc] *)
  tag_one_pj : float;  (** [tag_search ~ways:1] *)
  dw_pj : float;  (** data word *)
  memo_dw_pj : float;  (** data word scaled by the memo overhead *)
  memo_fill_pj : float;  (** line fill scaled by the memo overhead *)
  fill_pj : float;
  link_write_pj : float;
  l0_tag_one_pj : float;  (** filter L0 [tag_search ~ways:1]; 0 otherwise *)
  l0_dw_pj : float;  (** filter L0 data word; 0 otherwise *)
  drowsy_wake_pj : float;
  wp_bit_of_page : Wp_isa.Addr.t -> bool;
      (** hoisted so [translate] doesn't allocate a closure per call *)
  mutable prev_addr : Wp_isa.Addr.t;  (** -1 = no context *)
  mutable prev_set : int;
  mutable prev_way : int;
}

let create ?probe (config : Config.t) ~code_base =
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Fetch_engine.create: " ^ msg));
  let backend =
    match config.scheme with
    | Config.Baseline ->
        B_baseline
          (Cam_cache.create ?probe config.icache ~replacement:config.replacement)
    | Config.Way_placement { area_bytes } ->
        B_way_placement
          {
            cache =
              Cam_cache.create ?probe config.icache
                ~replacement:config.replacement;
            hint = Wp_tlb.Way_hint.create ();
            area_bytes;
          }
    | Config.Way_memoization ->
        B_way_memo
          (Way_memo.create ~invalidation:config.memo_invalidation ?probe
             config.icache ~replacement:config.replacement)
    | Config.Way_prediction ->
        B_way_predict
          (Way_predict.create ?probe config.icache
             ~replacement:config.replacement)
    | Config.Filter_cache { l0_bytes } ->
        let l0 =
          Geometry.make ~size_bytes:l0_bytes ~assoc:1
            ~line_bytes:config.icache.Geometry.line_bytes
        in
        B_filter
          {
            filter = Filter_cache.create ?probe ~l0 ();
            l1 =
              Cam_cache.create ?probe config.icache
                ~replacement:config.replacement;
            l0_energies = Cam_energy.of_geometry config.energy l0;
          }
  in
  let window =
    {
      wbase = code_base;
      warea =
        (match config.scheme with
        | Config.Way_placement { area_bytes } -> area_bytes
        | Config.Baseline | Config.Way_memoization | Config.Way_prediction
        | Config.Filter_cache _ ->
            0);
    }
  in
  let energies = Cam_energy.of_geometry config.energy config.icache in
  let l0_energies =
    match backend with
    | B_filter { l0_energies; _ } -> Some l0_energies
    | B_baseline _ | B_way_placement _ | B_way_memo _ | B_way_predict _ -> None
  in
  {
    backend;
    window;
    tlb =
      Wp_tlb.Tlb.create ~entries:config.itlb_entries
        ~page_bytes:config.page_bytes;
    geometry = config.icache;
    energies;
    tlb_lookup_pj =
      Cam_energy.tlb_lookup_pj config.energy ~entries:config.itlb_entries
        ~page_bytes:config.page_bytes;
    memory_latency = config.memory_latency;
    tlb_walk_latency = config.tlb_walk_latency;
    memory_access_pj = config.energy.Params.memory_access_pj;
    same_line_elision = config.same_line_elision;
    code_base;
    drowsy =
      Option.map
        (fun window -> Drowsy.create ?probe config.icache ~window)
        config.drowsy_window_fetches;
    leakage_enabled = config.leakage_enabled;
    energy_params = config.energy;
    probe;
    tag_full_pj =
      Cam_energy.tag_search energies ~ways:config.icache.Geometry.assoc;
    tag_one_pj = Cam_energy.tag_search energies ~ways:1;
    dw_pj = energies.Cam_energy.data_word_pj;
    memo_dw_pj =
      energies.Cam_energy.data_word_pj *. energies.Cam_energy.memo_data_factor;
    memo_fill_pj =
      energies.Cam_energy.line_fill_pj *. energies.Cam_energy.memo_data_factor;
    fill_pj = energies.Cam_energy.line_fill_pj;
    link_write_pj = energies.Cam_energy.link_write_pj;
    l0_tag_one_pj =
      (match l0_energies with
      | Some e -> Cam_energy.tag_search e ~ways:1
      | None -> 0.0);
    l0_dw_pj =
      (match l0_energies with
      | Some e -> e.Cam_energy.data_word_pj
      | None -> 0.0);
    drowsy_wake_pj = config.energy.Params.drowsy_wake_pj;
    wp_bit_of_page =
      (match backend with
      | B_way_placement _ ->
          fun page -> page >= window.wbase && page - window.wbase < window.warea
      | B_baseline _ | B_way_memo _ | B_way_predict _ | B_filter _ ->
          fun _ -> false);
    prev_addr = -1;
    prev_set = -1;
    prev_way = -1;
  }

let way_placed_addr t addr =
  match t.backend with
  | B_way_placement _ ->
      addr >= t.window.wbase && addr - t.window.wbase < t.window.warea
  | B_baseline _ | B_way_memo _ | B_way_predict _ | B_filter _ -> false

(* Retarget the way-placed window without flushing anything: the OS
   simply maps the incoming process's placement pages with the TLB bit
   set.  [area_bytes = 0] marks a process with no placed code.  Callers
   that change address spaces must flush the I-TLB themselves
   ({!flush_tlb}) — stale entries would otherwise keep the old
   window's bits. *)
let set_window t ~base ~area_bytes =
  if area_bytes < 0 then
    invalid_arg "Fetch_engine.set_window: negative area";
  match t.backend with
  | B_way_placement _ ->
      t.window.wbase <- base;
      t.window.warea <- area_bytes
  | B_baseline _ | B_way_memo _ | B_way_predict _ | B_filter _ -> ()

(* Context-switch TLB shootdown: the modelled core has no ASIDs, so a
   process change invalidates every virtual mapping.  Cache contents
   are physical and deliberately survive — processes pollute each
   other's ways.  The previous-fetch stream context is stale across an
   address-space change and is dropped with it. *)
let flush_tlb t =
  Wp_tlb.Tlb.flush t.tlb;
  t.prev_addr <- -1;
  t.prev_set <- -1;
  t.prev_way <- -1

let charge_icache stats pj = Account.add_icache stats.Stats.account pj

(* Tag-search energy for a variable way count, answered from the
   precomputed (already-boxed) constants when possible.  The fallback
   is the same [tag_search] product, so the value is identical either
   way. *)
let tag_pj t ~ways =
  if ways = 1 then t.tag_one_pj
  else if ways = t.geometry.Geometry.assoc then t.tag_full_pj
  else Cam_energy.tag_search t.energies ~ways

(* Drowsy bookkeeping: touching a line keeps it awake; touching a
   sleeping line costs a wake-up (energy + one cycle).  Returns the
   extra stall. *)
let note_line t (stats : Stats.t) ~set ~way =
  t.prev_set <- set;
  t.prev_way <- way;
  match t.drowsy with
  | None -> 0
  | Some d ->
      if Drowsy.note_access d ~now:stats.fetches ~set ~way then begin
        stats.drowsy_wakes <- stats.drowsy_wakes + 1;
        charge_icache stats t.drowsy_wake_pj;
        1
      end
      else 0

(* I-TLB access: every non-same-line fetch translates.  The result is
   int-encoded — bit 0 is the way-placement bit, the remaining bits the
   walk stall — so the hot path allocates neither a record nor a
   tuple. *)
let translate t (stats : Stats.t) addr =
  Account.add_itlb stats.account t.tlb_lookup_pj;
  let bits =
    Wp_tlb.Tlb.lookup_bits t.tlb addr ~wp_bit_of_page:t.wp_bit_of_page
  in
  let wp = (bits lsr 1) land 1 in
  if bits land 1 = 1 then wp
  else begin
    stats.itlb_misses <- stats.itlb_misses + 1;
    (match t.probe with None -> () | Some p -> p Wp_obs.Probe.Itlb_miss);
    Account.add_memory stats.account t.memory_access_pj;
    (t.tlb_walk_latency lsl 1) lor wp
  end

(* A full-width access on the plain CAM cache, shared by the baseline
   and the way-placement scheme's wide paths.  [fill_policy] differs:
   way-placement-area lines always land in their designated way. *)
let full_access t (stats : Stats.t) cache addr ~fill_policy =
  stats.full_fetches <- stats.full_fetches + 1;
  (* [lookup_full] performs [assoc] comparisons over [assoc] precharged
     ways whether it hits or not, so the outcome record carries nothing
     the constants below don't — the way-returning twin avoids the
     allocation. *)
  let hit_way = Cam_cache.lookup_full_way cache addr in
  let assoc = t.geometry.Geometry.assoc in
  stats.tag_comparisons <- stats.tag_comparisons + assoc;
  (match t.probe with
  | None -> ()
  | Some p ->
      p (Wp_obs.Probe.Fetch Full);
      p (Wp_obs.Probe.Tag_comparisons assoc);
      p (Wp_obs.Probe.Icache_access { hit = hit_way >= 0 }));
  charge_icache stats t.tag_full_pj;
  charge_icache stats t.dw_pj;
  let set = Geometry.set_index t.geometry addr in
  if hit_way >= 0 then begin
    stats.icache_hits <- stats.icache_hits + 1;
    note_line t stats ~set ~way:hit_way
  end
  else begin
    stats.icache_misses <- stats.icache_misses + 1;
    let way, _evicted = Cam_cache.fill_absent cache addr fill_policy in
    charge_icache stats t.fill_pj;
    Account.add_memory stats.account t.memory_access_pj;
    t.memory_latency + note_line t stats ~set ~way
  end

(* Single-way (way-placed) access: 1 comparison; misses refill the
   designated way. *)
let way_placed_access t (stats : Stats.t) cache addr =
  stats.wp_fetches <- stats.wp_fetches + 1;
  let way = Geometry.way_of_addr t.geometry addr in
  let hit = Cam_cache.lookup_way_hit cache addr ~way in
  stats.tag_comparisons <- stats.tag_comparisons + 1;
  (match t.probe with
  | None -> ()
  | Some p ->
      p (Wp_obs.Probe.Fetch Way_placed);
      p (Wp_obs.Probe.Tag_comparisons 1);
      p (Wp_obs.Probe.Icache_access { hit }));
  charge_icache stats t.tag_one_pj;
  charge_icache stats t.dw_pj;
  let set = Geometry.set_index t.geometry addr in
  if hit then begin
    stats.icache_hits <- stats.icache_hits + 1;
    note_line t stats ~set ~way
  end
  else begin
    stats.icache_misses <- stats.icache_misses + 1;
    let _way, _evicted = Cam_cache.fill cache addr (Cam_cache.Forced_way way) in
    charge_icache stats t.fill_pj;
    Account.add_memory stats.account t.memory_access_pj;
    t.memory_latency + note_line t stats ~set ~way
  end

let memo_access t (stats : Stats.t) memo addr =
  let r = Way_memo.fetch memo addr in
  stats.tag_comparisons <- stats.tag_comparisons + r.Way_memo.tag_comparisons;
  if r.Way_memo.link_followed then
    stats.link_follows <- stats.link_follows + 1
  else stats.full_fetches <- stats.full_fetches + 1;
  (match t.probe with
  | None -> ()
  | Some p ->
      p
        (Wp_obs.Probe.Fetch
           (if r.Way_memo.link_followed then Link_follow else Full));
      p (Wp_obs.Probe.Tag_comparisons r.Way_memo.tag_comparisons);
      p (Wp_obs.Probe.Icache_access { hit = r.Way_memo.hit }));
  if r.Way_memo.link_written then stats.link_writes <- stats.link_writes + 1;
  stats.links_invalidated <-
    stats.links_invalidated + r.Way_memo.links_invalidated;
  charge_icache stats (tag_pj t ~ways:r.Way_memo.ways_precharged);
  charge_icache stats t.memo_dw_pj;
  if r.Way_memo.link_written then charge_icache stats t.link_write_pj;
  if r.Way_memo.hit then begin
    stats.icache_hits <- stats.icache_hits + 1;
    0
  end
  else begin
    stats.icache_misses <- stats.icache_misses + 1;
    charge_icache stats t.memo_fill_pj;
    Account.add_memory stats.account t.memory_access_pj;
    t.memory_latency
  end

(* Way prediction: probe the MRU way first; a mispredict searches the
   rest in a second cycle (Inoue et al.). *)
let waypred_access t (stats : Stats.t) predictor addr =
  stats.full_fetches <- stats.full_fetches + 1;
  let r = Way_predict.access predictor addr in
  stats.tag_comparisons <- stats.tag_comparisons + r.Way_predict.tag_comparisons;
  (match t.probe with
  | None -> ()
  | Some p ->
      p (Wp_obs.Probe.Fetch Full);
      p (Wp_obs.Probe.Tag_comparisons r.Way_predict.tag_comparisons);
      p (Wp_obs.Probe.Icache_access { hit = r.Way_predict.hit }));
  if r.Way_predict.predicted_correctly then
    stats.waypred_correct <- stats.waypred_correct + 1
  else stats.waypred_wrong <- stats.waypred_wrong + 1;
  charge_icache stats
    (tag_pj t
       ~ways:(r.Way_predict.first_probe_ways + r.Way_predict.second_probe_ways));
  (* The predicted way's data is read speculatively; a mispredict reads
     the correct way again. *)
  let data_reads =
    let n =
      r.Way_predict.first_probe_ways
      + if r.Way_predict.predicted_correctly then 0 else 1
    in
    if n < 1 then 1 else n
  in
  charge_icache stats
    (if data_reads = 1 then t.dw_pj
     else t.dw_pj *. float_of_int data_reads);
  if r.Way_predict.hit then begin
    stats.icache_hits <- stats.icache_hits + 1;
    r.Way_predict.penalty_cycles
  end
  else begin
    stats.icache_misses <- stats.icache_misses + 1;
    charge_icache stats t.fill_pj;
    Account.add_memory stats.account t.memory_access_pj;
    r.Way_predict.penalty_cycles + t.memory_latency
  end

(* Filter cache: the tiny L0 catches most fetches; L0 misses pay a
   cycle and a full L1 access (Kin et al.). *)
let filter_access t (stats : Stats.t) filter l1 l0_energies addr =
  let r = Filter_cache.access filter addr in
  charge_icache stats
    (if r.Filter_cache.l0_tag_comparisons = 1 then t.l0_tag_one_pj
     else Cam_energy.tag_search l0_energies ~ways:r.Filter_cache.l0_tag_comparisons);
  charge_icache stats t.l0_dw_pj;
  stats.tag_comparisons <- stats.tag_comparisons + r.Filter_cache.l0_tag_comparisons;
  (match t.probe with
  | None -> ()
  | Some p ->
      p (Wp_obs.Probe.Tag_comparisons r.Filter_cache.l0_tag_comparisons));
  if r.Filter_cache.l0_hit then begin
    stats.l0_hits <- stats.l0_hits + 1;
    stats.full_fetches <- stats.full_fetches + 1;
    stats.icache_hits <- stats.icache_hits + 1;
    (match t.probe with
    | None -> ()
    | Some p ->
        p (Wp_obs.Probe.Fetch Full);
        p (Wp_obs.Probe.Icache_access { hit = true }));
    0
  end
  else begin
    stats.l0_misses <- stats.l0_misses + 1;
    r.Filter_cache.penalty_cycles
    + full_access t stats l1 addr ~fill_policy:Cam_cache.Victim_by_policy
  end

let fetch t (stats : Stats.t) addr =
  stats.fetches <- stats.fetches + 1;
  let same_line =
    t.prev_addr >= 0 && Geometry.same_line t.geometry addr t.prev_addr
  in
  (* Sequential same-line fetches skip the tag side on every scheme:
     the XScale's sequential-access optimisation is a property of the
     machine, not of the energy-saving scheme (cf. paper Section 4.2
     and [12]).  The config flag disables it for the ablation bench. *)
  let elide = same_line && t.same_line_elision in
  let stall =
    if elide then begin
      stats.same_line_fetches <- stats.same_line_fetches + 1;
      (match t.probe with
      | None -> ()
      | Some p -> p (Wp_obs.Probe.Fetch Same_line));
      (match t.backend with
      | B_way_memo memo ->
          Way_memo.note_same_line memo addr;
          charge_icache stats t.memo_dw_pj
      | B_filter _ ->
          (* The previous fetch left this line resident in the L0
             (either it hit there or the miss refilled it), so the
             sequential word streams from the L0 array — charging the
             L1's much larger data read would overbill the scheme. *)
          charge_icache stats t.l0_dw_pj
      | B_way_placement _ | B_baseline _ | B_way_predict _ ->
          charge_icache stats t.dw_pj);
      if t.prev_set >= 0 then
        ignore (note_line t stats ~set:t.prev_set ~way:t.prev_way);
      0
    end
    else begin
      let tr = translate t stats addr in
      let tlb_stall = tr lsr 1 in
      let way_placed = tr land 1 = 1 in
      let access_stall =
        match t.backend with
        | B_baseline cache ->
            full_access t stats cache addr
              ~fill_policy:Cam_cache.Victim_by_policy
        | B_way_memo memo -> memo_access t stats memo addr
        | B_way_predict predictor -> waypred_access t stats predictor addr
        | B_filter { filter; l1; l0_energies } ->
            filter_access t stats filter l1 l0_energies addr
        | B_way_placement { cache; hint; area_bytes = _ } -> begin
            match Wp_tlb.Way_hint.resolve hint ~actual:way_placed with
            | Wp_tlb.Way_hint.Correct_way_placed ->
                stats.hint_correct_wp <- stats.hint_correct_wp + 1;
                (match t.probe with
                | None -> ()
                | Some p -> p (Wp_obs.Probe.Hint Correct_wp));
                way_placed_access t stats cache addr
            | Wp_tlb.Way_hint.Correct_normal ->
                stats.hint_correct_normal <- stats.hint_correct_normal + 1;
                (match t.probe with
                | None -> ()
                | Some p -> p (Wp_obs.Probe.Hint Correct_normal));
                full_access t stats cache addr
                  ~fill_policy:Cam_cache.Victim_by_policy
            | Wp_tlb.Way_hint.Missed_saving ->
                (* Way-placed page accessed with the wide path; the
                   fill must still respect the designated way. *)
                stats.hint_missed_saving <- stats.hint_missed_saving + 1;
                (match t.probe with
                | None -> ()
                | Some p -> p (Wp_obs.Probe.Hint Missed_saving));
                full_access t stats cache addr
                  ~fill_policy:
                    (Cam_cache.Forced_way (Geometry.way_of_addr t.geometry addr))
            | Wp_tlb.Way_hint.Needs_reaccess ->
                (* Wasted single-way probe, then the real access: one
                   penalty cycle plus the probe energy (Section 4.1). *)
                stats.hint_reaccess <- stats.hint_reaccess + 1;
                stats.tag_comparisons <- stats.tag_comparisons + 1;
                (match t.probe with
                | None -> ()
                | Some p ->
                    p (Wp_obs.Probe.Hint Reaccess);
                    p (Wp_obs.Probe.Tag_comparisons 1));
                charge_icache stats (Cam_energy.tag_search t.energies ~ways:1);
                1
                + full_access t stats cache addr
                    ~fill_policy:Cam_cache.Victim_by_policy
          end
      in
      tlb_stall + access_stall
    end
  in
  t.prev_addr <- addr;
  stall

(* Batched fetch of one same-line run.

   The head instruction goes through the generic [fetch] (it may cross
   a line, miss, walk the TLB, resolve a hint...).  After it, the
   remaining [n - 1] fetches of the run are by construction same-line
   with their predecessor, so their effects are replicated wholesale:

   - elision on: each tail fetch charges one data word (scheme-scaled)
     and pokes the drowsy/memo stream state — constants and counter
     bumps, batched below in the reference accumulation order;
   - elision off (baseline): each tail fetch is a full TLB hit plus a
     full CAM hit on the line the head just made resident —
     [Cam_cache.lookup_line_run] collapses the replacement touches and
     the per-fetch energy is replayed add-for-add;
   - every other elision-off backend (and any probed engine) falls back
     to [n - 1] generic [fetch] calls, which are the definition.

   The result is bit-identical [Stats.t] to [n] successive [fetch]
   calls — the fast-vs-reference invariant the differ enforces. *)
let fetch_run t (stats : Stats.t) addr ~n =
  if n <= 0 then invalid_arg "Fetch_engine.fetch_run: n must be positive";
  let generic_tail m =
    let s = ref 0 in
    for j = 1 to m do
      s := !s + fetch t stats (addr + (j * Wp_isa.Instr.size_bytes))
    done;
    !s
  in
  match t.probe with
  | Some _ -> fetch t stats addr + generic_tail (n - 1)
  | None ->
      let head_stall = fetch t stats addr in
      let m = n - 1 in
      if m = 0 then head_stall
      else if t.same_line_elision then begin
        let last = addr + (m * Wp_isa.Instr.size_bytes) in
        stats.fetches <- stats.fetches + m;
        stats.same_line_fetches <- stats.same_line_fetches + m;
        let elided_pj =
          match t.backend with
          | B_way_memo _ -> t.memo_dw_pj
          | B_filter _ -> t.l0_dw_pj
          | B_baseline _ | B_way_placement _ | B_way_predict _ -> t.dw_pj
        in
        let stall_extra =
          match t.drowsy with
          | Some d when t.prev_set >= 0 ->
              (* Interleave data-word and (possible) wake charges
                 per fetch so the icache-bucket add order matches the
                 reference exactly.  With back-to-back accesses the gap
                 is 1 <= window, so wakes cannot actually fire here —
                 the branch mirrors [note_line] for fidelity. *)
              let base = stats.fetches - m in
              let extra = ref 0 in
              for j = 1 to m do
                charge_icache stats elided_pj;
                if
                  Drowsy.note_access d ~now:(base + j) ~set:t.prev_set
                    ~way:t.prev_way
                then begin
                  stats.drowsy_wakes <- stats.drowsy_wakes + 1;
                  charge_icache stats t.drowsy_wake_pj;
                  incr extra
                end
              done;
              !extra
          | Some _ | None ->
              Account.add_icache_run stats.Stats.account elided_pj ~n:m;
              0
        in
        (* The memo stream advances to the run's last address — the same
           state [m] successive [note_same_line] calls leave. *)
        (match t.backend with
        | B_way_memo memo -> Way_memo.note_same_line memo last
        | B_baseline _ | B_way_placement _ | B_way_predict _ | B_filter _ -> ());
        t.prev_addr <- last;
        head_stall + stall_extra
      end
      else begin
        match t.backend with
        | B_baseline cache ->
            let last = addr + (m * Wp_isa.Instr.size_bytes) in
            stats.fetches <- stats.fetches + m;
            stats.full_fetches <- stats.full_fetches + m;
            stats.icache_hits <- stats.icache_hits + m;
            let way = Cam_cache.lookup_line_run_way cache last ~n:m in
            stats.tag_comparisons <-
              stats.tag_comparisons + (m * t.geometry.Geometry.assoc);
            for _ = 1 to m do
              Account.add_itlb stats.account t.tlb_lookup_pj
            done;
            let tag_one = t.tag_full_pj in
            let dw = t.dw_pj in
            let set = Geometry.set_index t.geometry last in
            let stall_extra =
              match t.drowsy with
              | Some d ->
                  let base = stats.fetches - m in
                  let extra = ref 0 in
                  for j = 1 to m do
                    charge_icache stats tag_one;
                    charge_icache stats dw;
                    if Drowsy.note_access d ~now:(base + j) ~set ~way then begin
                      stats.drowsy_wakes <- stats.drowsy_wakes + 1;
                      charge_icache stats t.drowsy_wake_pj;
                      incr extra
                    end
                  done;
                  !extra
              | None ->
                  for _ = 1 to m do
                    charge_icache stats tag_one;
                    charge_icache stats dw
                  done;
                  0
            in
            t.prev_set <- set;
            t.prev_way <- way;
            t.prev_addr <- last;
            head_stall + stall_extra
        | B_way_placement _ | B_way_memo _ | B_way_predict _ | B_filter _ ->
            head_stall + generic_tail m
      end

let reset_stream t =
  t.prev_addr <- -1;
  t.prev_set <- -1;
  t.prev_way <- -1;
  match t.backend with
  | B_way_memo memo -> Way_memo.reset_stream memo
  | B_way_placement { hint; _ } -> Wp_tlb.Way_hint.reset hint
  | B_baseline _ | B_way_predict _ | B_filter _ -> ()

let flush t =
  (match t.probe with None -> () | Some p -> p Wp_obs.Probe.Flush);
  Wp_tlb.Tlb.flush t.tlb;
  (match t.backend with
  | B_baseline cache -> Cam_cache.flush cache
  | B_way_placement { cache; hint; _ } ->
      Cam_cache.flush cache;
      Wp_tlb.Way_hint.reset hint
  | B_way_memo memo -> Way_memo.flush memo
  | B_way_predict predictor -> Way_predict.flush predictor
  | B_filter { filter; l1; _ } ->
      Filter_cache.flush filter;
      Cam_cache.flush l1);
  Option.iter Drowsy.reset t.drowsy;
  t.prev_addr <- -1;
  t.prev_set <- -1;
  t.prev_way <- -1

(* The OS resizes the way-placement area at run time (paper Section
   4.1): way-placement bits in the I-TLB and line placements in the
   cache are stale for the new area, so both are flushed. *)
let resize_area t ~area_bytes =
  match t.backend with
  | B_way_placement wp ->
      if area_bytes <= 0 then
        invalid_arg "Fetch_engine.resize_area: area must be positive";
      (match t.probe with
      | None -> ()
      | Some p ->
          p (Wp_obs.Probe.Resize { area_bytes });
          p Wp_obs.Probe.Flush);
      wp.area_bytes <- area_bytes;
      t.window.warea <- area_bytes;
      Wp_tlb.Tlb.flush t.tlb;
      Cam_cache.flush wp.cache;
      Wp_tlb.Way_hint.reset wp.hint;
      t.prev_addr <- -1;
      t.prev_set <- -1;
      t.prev_way <- -1
  | B_baseline _ | B_way_memo _ | B_way_predict _ | B_filter _ ->
      invalid_arg "Fetch_engine.resize_area: not a way-placement config"

(* Canonical machine-state fingerprint for the steady-state
   fast-forward detector: a backend discriminant, the scheme-specific
   cache state, the way-placement area and hint, the I-TLB, the drowsy
   wake state (relative to [now], the current fetch count) and the
   previous-fetch stream context.  Equal fingerprints at two trace
   positions with identical upcoming block patterns imply identical
   future behaviour — counters, stalls and every energy charge. *)
let fingerprint t ~now ~add =
  (match t.backend with
  | B_baseline cache ->
      add 0;
      Cam_cache.fingerprint cache ~add
  | B_way_placement { cache; hint; area_bytes } ->
      add 1;
      add area_bytes;
      add (if Wp_tlb.Way_hint.predict hint then 1 else 0);
      Cam_cache.fingerprint cache ~add
  | B_way_memo memo ->
      add 2;
      Way_memo.fingerprint memo ~add
  | B_way_predict predictor ->
      add 3;
      Way_predict.fingerprint predictor ~add
  | B_filter { filter; l1; l0_energies = _ } ->
      add 4;
      Filter_cache.fingerprint filter ~add;
      Cam_cache.fingerprint l1 ~add);
  add t.window.wbase;
  add t.window.warea;
  Wp_tlb.Tlb.fingerprint t.tlb ~add;
  (match t.drowsy with None -> () | Some d -> Drowsy.fingerprint d ~now ~add);
  add t.prev_addr;
  add t.prev_set;
  add t.prev_way

(* Drowsy passthroughs for the fast-forward engine; no-ops without a
   drowsy policy. *)
let set_drowsy_recorder t r =
  match t.drowsy with None -> () | Some d -> Drowsy.set_recorder d r

let drowsy_advance_touched t ~since ~delta =
  match t.drowsy with
  | None -> ()
  | Some d -> Drowsy.advance_touched d ~since ~delta

let drowsy_replay_awake t a ~len ~iters =
  match t.drowsy with
  | None -> ()
  | Some d -> Drowsy.replay_awake d a ~len ~iters

(* Multiprogramming passthroughs: the drowsy clock is the charging
   process's fetch counter, so the scheduler re-expresses timestamps
   ({!Drowsy.rebase}) or drops everything drowsy ({!Drowsy.sleep_all})
   whenever the charging [Stats.t] changes. *)
let drowsy_rebase t ~old_now ~new_now =
  match t.drowsy with
  | None -> ()
  | Some d -> Drowsy.rebase d ~old_now ~new_now

let drowsy_sleep_all t ~now =
  match t.drowsy with None -> () | Some d -> Drowsy.sleep_all d ~now

(* End-of-run leakage: line-ticks are counted in fetches and rescaled
   to cycles; without a drowsy policy every line leaks at the awake
   rate for the whole run.  [now_fetches] overrides the drowsy clock
   reading for callers that charge leakage into a [Stats.t] other than
   the one that counted the fetches (the multiprogramming layer's
   system account). *)
let finalize ?now_fetches t (stats : Stats.t) ~cycles =
  if t.leakage_enabled then begin
    let lines = float_of_int (Geometry.lines t.geometry) in
    let awake_fraction =
      match t.drowsy with
      | None -> 1.0
      | Some d ->
          let now =
            match now_fetches with Some n -> n | None -> stats.fetches
          in
          if now = 0 then 1.0
          else Drowsy.awake_line_ticks d ~now /. Drowsy.total_line_ticks d ~now
    in
    let p = t.energy_params in
    let rate =
      p.Params.leak_awake_pj_per_line_cycle
      *. (awake_fraction +. ((1.0 -. awake_fraction) *. p.Params.leak_drowsy_factor))
    in
    charge_icache stats (lines *. float_of_int cycles *. rate)
  end
