(* ------------------------------------------------------------------ *)
(* The generic worker pool.  One call = one pool: a cursor over the
   item array doles out work; completions flow back through a
   Mutex/Condition queue so the submitting domain can emit progress in
   completion order while workers keep running.  [Sweep.run_batch] and
   the differential fuzzer ([Wp_check.Differ]) both fan out here. *)

module Pool = struct
  type 'a progress = 'a -> seconds:float -> completed:int -> total:int -> unit

  type ('a, 'b) batch = {
    items : 'a array;
    results : 'b option array;
    queue_lock : Mutex.t;
    completion : Condition.t;  (** signalled on completion and worker exit *)
    mutable next : int;  (** cursor: next item index to hand out *)
    mutable finished : ('a * float) list;  (** completion events, newest first *)
    mutable failure : exn option;  (** first failure; stops the cursor *)
    mutable exited : int;  (** workers that have left their loop *)
  }

  let take batch =
    Mutex.lock batch.queue_lock;
    let item =
      if batch.failure <> None || batch.next >= Array.length batch.items then
        None
      else begin
        let i = batch.next in
        batch.next <- i + 1;
        Some i
      end
    in
    Mutex.unlock batch.queue_lock;
    item

  let run_one f batch i =
    let item = batch.items.(i) in
    match
      let t0 = Unix.gettimeofday () in
      let v = f item in
      (v, Unix.gettimeofday () -. t0)
    with
    | v, seconds ->
        Mutex.lock batch.queue_lock;
        batch.results.(i) <- Some v;
        batch.finished <- (item, seconds) :: batch.finished;
        Condition.signal batch.completion;
        Mutex.unlock batch.queue_lock
    | exception exn ->
        Mutex.lock batch.queue_lock;
        if batch.failure = None then batch.failure <- Some exn;
        Condition.signal batch.completion;
        Mutex.unlock batch.queue_lock

  let worker f batch () =
    let rec loop () =
      match take batch with
      | None ->
          Mutex.lock batch.queue_lock;
          batch.exited <- batch.exited + 1;
          Condition.signal batch.completion;
          Mutex.unlock batch.queue_lock
      | Some i ->
          run_one f batch i;
          loop ()
    in
    loop ()

  (* Drain completion events on the submitting domain until every
     worker has exited, emitting progress in completion order.  Events
     are collected under the lock but progress callbacks run with it
     released: a raising (or merely slow) callback must never leave
     [queue_lock] held — workers block on it in [take]/[run_one], so
     that would deadlock the whole pool.  A callback exception is
     recorded as the batch failure (stopping the cursor, like a job
     failure) and the pump keeps draining until the workers exit, so
     [map] still joins every domain before re-raising. *)
  let pump progress batch ~nworkers =
    let total = Array.length batch.items in
    let emitted = ref 0 in
    let callback_failed = ref false in
    let rec drain () =
      Mutex.lock batch.queue_lock;
      while batch.finished = [] && batch.exited < nworkers do
        Condition.wait batch.completion batch.queue_lock
      done;
      let events = List.rev batch.finished in
      batch.finished <- [];
      let all_exited = batch.exited >= nworkers in
      Mutex.unlock batch.queue_lock;
      List.iter
        (fun (item, seconds) ->
          incr emitted;
          match progress with
          | None -> ()
          | Some f ->
              if not !callback_failed then begin
                try f item ~seconds ~completed:!emitted ~total
                with exn ->
                  callback_failed := true;
                  Mutex.lock batch.queue_lock;
                  if batch.failure = None then batch.failure <- Some exn;
                  Mutex.unlock batch.queue_lock
              end)
        events;
      if not all_exited then drain ()
    in
    drain ()

  let run_sequential f progress batch =
    let total = Array.length batch.items in
    let completed = ref 0 in
    Array.iteri
      (fun i _ ->
        if batch.failure = None then begin
          run_one f batch i;
          match List.rev batch.finished with
          | [] -> ()
          | events ->
              batch.finished <- [];
              List.iter
                (fun (item, seconds) ->
                  incr completed;
                  match progress with
                  | None -> ()
                  | Some f -> f item ~seconds ~completed:!completed ~total)
                events
        end)
      batch.items

  let map ~workers ?progress f items =
    let batch =
      {
        items = Array.of_list items;
        results = Array.make (List.length items) None;
        queue_lock = Mutex.create ();
        completion = Condition.create ();
        next = 0;
        finished = [];
        failure = None;
        exited = 0;
      }
    in
    let nworkers = max 1 (min workers (Array.length batch.items)) in
    if nworkers <= 1 then run_sequential f progress batch
    else begin
      let domains =
        List.init nworkers (fun _ -> Domain.spawn (worker f batch))
      in
      pump progress batch ~nworkers;
      List.iter Domain.join domains
    end;
    (match batch.failure with Some exn -> raise exn | None -> ());
    Array.to_list
      (Array.map
         (function
           | Some v -> v
           | None ->
               invalid_arg
                 "Sweep.Pool: worker pool drained with an unfilled result slot")
         batch.results)

  (* [map]'s all-or-nothing failure contract is right for sweeps (a
     raising job means the whole grid is suspect) but wrong for a
     server: there one poisoned request must not take down the
     batch-mates it happens to share a pool with.  Isolating each
     item's exception inside the mapped function keeps the cursor
     moving and every unrelated slot filled. *)
  let map_result ~workers ?progress f items =
    map ~workers ?progress
      (fun item -> try Ok (f item) with exn -> Error exn)
      items

  (* ---------------------------------------------------------------- *)
  (* A persistent pool: the daemon-shaped sibling of the one-shot
     [map].  Domains are spawned once and consume a FIFO of thunks
     until [shutdown], which drains everything already accepted before
     joining — the serve daemon's graceful-stop guarantee rests on
     exactly that property.  A raising task is the submitter's bug;
     the worker survives it (the exception is swallowed after the
     optional [on_error] callback), so one bad request never kills the
     domain serving everyone else. *)

  module Executor = struct
    type t = {
      lock : Mutex.t;
      work_available : Condition.t;
      queue : (unit -> unit) Queue.t;
      mutable stopping : bool;
      mutable running : int;  (** tasks currently executing *)
      on_error : (exn -> unit) option;
      mutable domains : unit Domain.t list;
    }

    let worker t () =
      let rec loop () =
        Mutex.lock t.lock;
        while Queue.is_empty t.queue && not t.stopping do
          Condition.wait t.work_available t.lock
        done;
        if Queue.is_empty t.queue then begin
          (* stopping and drained *)
          Mutex.unlock t.lock;
          ()
        end
        else begin
          let task = Queue.pop t.queue in
          t.running <- t.running + 1;
          Mutex.unlock t.lock;
          (try task ()
           with exn -> (
             match t.on_error with None -> () | Some f -> (try f exn with _ -> ())));
          Mutex.lock t.lock;
          t.running <- t.running - 1;
          Mutex.unlock t.lock;
          loop ()
        end
      in
      loop ()

    let create ?(workers = Domain.recommended_domain_count ()) ?on_error () =
      let t =
        {
          lock = Mutex.create ();
          work_available = Condition.create ();
          queue = Queue.create ();
          stopping = false;
          running = 0;
          on_error;
          domains = [];
        }
      in
      let workers = max 1 workers in
      t.domains <- List.init workers (fun _ -> Domain.spawn (worker t));
      t

    let workers t = List.length t.domains

    let submit t task =
      Mutex.lock t.lock;
      let accepted = not t.stopping in
      if accepted then begin
        Queue.push task t.queue;
        Condition.signal t.work_available
      end;
      Mutex.unlock t.lock;
      accepted

    let pending t =
      Mutex.lock t.lock;
      let n = Queue.length t.queue + t.running in
      Mutex.unlock t.lock;
      n

    let shutdown t =
      Mutex.lock t.lock;
      if not t.stopping then begin
        t.stopping <- true;
        Condition.broadcast t.work_available
      end;
      Mutex.unlock t.lock;
      List.iter Domain.join t.domains
  end
end

type job = { benchmark : string; config : Config.t }

type progress = job Pool.progress

(* A per-key once-cell: the table lock is only held to find/create the
   cell, so two workers computing different keys never serialise on
   each other — only a second request for the *same* key blocks until
   the first finishes. *)
type 'a once = { cell_lock : Mutex.t; mutable value : 'a option }

let once_create () = { cell_lock = Mutex.create (); value = None }

let once_get cell compute =
  Mutex.lock cell.cell_lock;
  match cell.value with
  | Some v ->
      Mutex.unlock cell.cell_lock;
      v
  | None ->
      Fun.protect
        ~finally:(fun () -> Mutex.unlock cell.cell_lock)
        (fun () ->
          let v = compute () in
          cell.value <- Some v;
          v)

type t = {
  workers : int;
  progress : progress option;
  tables_lock : Mutex.t;  (** guards the two hashtables (not the cells) *)
  preps : (string, Runner.prepared once) Hashtbl.t;
  results : (string, Stats.t once) Hashtbl.t;
  snapshot_cache : Snapshot_cache.t;
      (** converged fast-forward iterations, shared by every job this
          engine runs (thread-safe; scoped keys keep worlds apart) *)
}

let default_workers () = Domain.recommended_domain_count ()

let create ?workers ?progress () =
  {
    workers = max 1 (Option.value workers ~default:(default_workers ()));
    progress;
    tables_lock = Mutex.create ();
    preps = Hashtbl.create 32;
    results = Hashtbl.create 512;
    snapshot_cache = Snapshot_cache.create ();
  }

let workers t = t.workers
let snapshot_cache t = t.snapshot_cache

(* The runtime representation of a Config.t is pure immutable data
   (scalars, records, variants), so marshalling is a total, stable
   encoding of the whole value: every field participates, including
   any added later. *)
let config_key (config : Config.t) =
  Digest.to_hex (Digest.string (Marshal.to_string config []))

let job_key job = job.benchmark ^ "|" ^ config_key job.config

let job_label job =
  Printf.sprintf "%s x %s @ %s" job.benchmark
    (Config.scheme_name job.config.Config.scheme)
    (Wp_cache.Geometry.to_string job.config.Config.icache)

let dedup jobs =
  let seen = Hashtbl.create (List.length jobs) in
  List.filter
    (fun job ->
      let key = job_key job in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    jobs

let with_baselines jobs =
  dedup
    (List.concat_map
       (fun job ->
         [ job; { job with config = Config.with_scheme job.config Config.Baseline } ])
       jobs)

let find_or_add_cell t table key =
  Mutex.lock t.tables_lock;
  let cell =
    match Hashtbl.find_opt table key with
    | Some cell -> cell
    | None ->
        let cell = once_create () in
        Hashtbl.add table key cell;
        cell
  in
  Mutex.unlock t.tables_lock;
  cell

let prepared t name =
  let cell = find_or_add_cell t t.preps name in
  once_get cell (fun () -> Runner.prepare (Wp_workloads.Mibench.find name))

let stats t job =
  let cell = find_or_add_cell t t.results (job_key job) in
  once_get cell (fun () ->
      Runner.run_scheme ~snapshot_cache:t.snapshot_cache
        (prepared t job.benchmark) job.config)

let completed t =
  Mutex.lock t.tables_lock;
  let n =
    Hashtbl.fold
      (fun _ cell acc -> if cell.value <> None then acc + 1 else acc)
      t.results 0
  in
  Mutex.unlock t.tables_lock;
  n

(* Only sound when no workers are mutating the tables — i.e. between
   batches, which is when run_batch consults it. *)
let already_cached t job =
  Mutex.lock t.tables_lock;
  let cell = Hashtbl.find_opt t.results (job_key job) in
  Mutex.unlock t.tables_lock;
  match cell with Some { value = Some _; _ } -> true | _ -> false

(* Timelines are not memoised: a sampler observes one specific run, so
   the job is re-simulated with a probe attached.  The prepared
   benchmark is shared with the stats cache, and the stats returned
   here are bit-identical to [stats t job] — the probe-invariance the
   differential fuzzer locks in. *)
let timeline ?schedule ?window_cycles t job =
  Runner.run_timeline ?schedule ?window_cycles (prepared t job.benchmark)
    job.config

let run_batch t jobs =
  let todo =
    List.filter (fun job -> not (already_cached t job)) (dedup jobs)
  in
  ignore
    (Pool.map ~workers:t.workers ?progress:t.progress
       (fun job -> ignore (stats t job))
       todo);
  List.map (fun job -> stats t job) jobs
