module Sampler = Wp_obs.Sampler
module Probe = Wp_obs.Probe

(* --- RFC-4180 timeline CSV ----------------------------------------- *)

let csv_header =
  [ "window"; "start_cycle"; "end_cycle"; "cycles"; "retired"; "ipc"; "fetches" ]
  @ List.map Sampler.Counter.name Sampler.Counter.all
  @ [ "ways_enabled" ]
  @ List.map (fun b -> Probe.bucket_name b ^ "_pj") Probe.buckets
  @ [ "total_pj"; "markers" ]

let ways_field (w : Sampler.window) =
  w.Sampler.ways_hist
  |> List.map (fun (ways, n) -> Printf.sprintf "%d:%d" ways n)
  |> String.concat " "

let markers_field (w : Sampler.window) =
  w.Sampler.markers
  |> List.map (function
       | Sampler.Resize { cycle; area_bytes } ->
           Printf.sprintf "resize@%d=%dB" cycle area_bytes
       | Sampler.Flush { cycle } -> Printf.sprintf "flush@%d" cycle
       | Sampler.Switch { cycle; next } ->
           Printf.sprintf "switch@%d=p%d" cycle next)
  |> String.concat " "

let csv_row (w : Sampler.window) =
  let total_pj = Array.fold_left ( +. ) 0.0 w.Sampler.energy_pj in
  [
    string_of_int w.Sampler.index;
    string_of_int w.Sampler.start_cycle;
    string_of_int w.Sampler.end_cycle;
    string_of_int (Sampler.cycles w);
    string_of_int w.Sampler.retired;
    Printf.sprintf "%.4f" (Sampler.ipc w);
    string_of_int (Sampler.fetches w);
  ]
  @ List.map
      (fun c -> string_of_int (Sampler.get w c))
      Sampler.Counter.all
  @ [ ways_field w ]
  @ List.map
      (fun b -> Printf.sprintf "%.6f" w.Sampler.energy_pj.(Probe.bucket_index b))
      Probe.buckets
  @ [ Printf.sprintf "%.6f" total_pj; markers_field w ]

let csv_rows windows = List.map csv_row windows

let write_csv ~path windows =
  Report.write_csv ~path ~header:csv_header ~rows:(csv_rows windows)

(* --- Chrome trace-event JSON (chrome://tracing, Perfetto) ---------- *)

let pid = 1
let tid = 1

let counter_event ~name ~ts value =
  Report.Jobj
    [
      ("name", Report.Jstring name);
      ("ph", Report.Jstring "C");
      ("ts", Report.Jint ts);
      ("pid", Report.Jint pid);
      ("args", Report.Jobj [ ("value", value) ]);
    ]

let instant_event ~name ~ts args =
  Report.Jobj
    [
      ("name", Report.Jstring name);
      ("ph", Report.Jstring "i");
      ("ts", Report.Jint ts);
      ("pid", Report.Jint pid);
      ("tid", Report.Jint tid);
      ("s", Report.Jstring "g");
      ("args", Report.Jobj args);
    ]

let metadata_event ~name arg =
  Report.Jobj
    [
      ("name", Report.Jstring name);
      ("ph", Report.Jstring "M");
      ("ts", Report.Jint 0);
      ("pid", Report.Jint pid);
      ("tid", Report.Jint tid);
      ("args", Report.Jobj [ ("name", Report.Jstring arg) ]);
    ]

let window_events (w : Sampler.window) =
  let ts = w.Sampler.start_cycle in
  let counters =
    List.map
      (fun b ->
        counter_event
          ~name:(Probe.bucket_name b ^ "_pj")
          ~ts
          (Report.Jfloat w.Sampler.energy_pj.(Probe.bucket_index b)))
      Probe.buckets
    @ [
        counter_event ~name:"ipc" ~ts (Report.Jfloat (Sampler.ipc w));
        counter_event ~name:"fetches" ~ts
          (Report.Jint (Sampler.fetches w));
        counter_event ~name:"icache_misses" ~ts
          (Report.Jint (Sampler.get w Sampler.Counter.Icache_misses));
      ]
  in
  (* Markers are chronological and bounded by the window's cycle span,
     so appending them keeps the whole stream's timestamps monotone. *)
  let markers =
    List.map
      (function
        | Sampler.Resize { cycle; area_bytes } ->
            instant_event ~name:"resize" ~ts:cycle
              [ ("area_bytes", Report.Jint area_bytes) ]
        | Sampler.Flush { cycle } -> instant_event ~name:"flush" ~ts:cycle []
        | Sampler.Switch { cycle; next } ->
            instant_event ~name:"context_switch" ~ts:cycle
              [ ("next", Report.Jint next) ])
      w.Sampler.markers
  in
  counters @ markers

let chrome_trace ?(process_name = "wayplace-sim") windows =
  let events =
    (metadata_event ~name:"process_name" process_name
    :: List.concat_map window_events windows)
  in
  Report.Jobj
    [
      ("traceEvents", Report.Jlist events);
      ("displayTimeUnit", Report.Jstring "ns");
    ]

let write_chrome ?process_name ~path windows =
  Report.write_json ~path (chrome_trace ?process_name windows)
