let needs_quoting s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let csv_field s =
  if not (needs_quoting s) then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let csv_line fields = String.concat "," (List.map csv_field fields) ^ "\n"

let write_csv ~path ~header ~rows =
  match open_out path with
  | exception Sys_error msg -> Error msg
  | oc ->
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc (csv_line header);
          List.iter (fun row -> output_string oc (csv_line row)) rows);
      Ok ()

(* --- JSON ---------------------------------------------------------- *)

type json =
  | Jnull
  | Jbool of bool
  | Jint of int
  | Jfloat of float
  | Jstring of string
  | Jlist of json list
  | Jobj of (string * json) list

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else if Float.is_finite f then Printf.sprintf "%.12g" f
  else "null" (* NaN/inf have no JSON encoding *)

let rec buffer_json buf = function
  | Jnull -> Buffer.add_string buf "null"
  | Jbool b -> Buffer.add_string buf (if b then "true" else "false")
  | Jint i -> Buffer.add_string buf (string_of_int i)
  | Jfloat f -> Buffer.add_string buf (json_float f)
  | Jstring s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (json_escape s);
      Buffer.add_char buf '"'
  | Jlist items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          buffer_json buf item)
        items;
      Buffer.add_char buf ']'
  | Jobj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (json_escape key);
          Buffer.add_string buf "\":";
          buffer_json buf value)
        fields;
      Buffer.add_char buf '}'

let json_to_string j =
  let buf = Buffer.create 1024 in
  buffer_json buf j;
  Buffer.contents buf

let write_json ~path j =
  match open_out path with
  | exception Sys_error msg -> Error msg
  | oc ->
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc (json_to_string j);
          output_char oc '\n');
      Ok ()
