let needs_quoting s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let csv_field s =
  if not (needs_quoting s) then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let csv_line fields = String.concat "," (List.map csv_field fields) ^ "\n"

let write_csv ~path ~header ~rows =
  match open_out path with
  | exception Sys_error msg -> Error msg
  | oc ->
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc (csv_line header);
          List.iter (fun row -> output_string oc (csv_line row)) rows);
      Ok ()

(* --- JSON ---------------------------------------------------------- *)

type json =
  | Jnull
  | Jbool of bool
  | Jint of int
  | Jfloat of float
  | Jstring of string
  | Jlist of json list
  | Jobj of (string * json) list

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Shortest rendering that parses back to the same double: most values
   keep the compact "%.12g" the emitter always used; only values that
   genuinely need more digits grow them.  Round-trip exactness is what
   lets the serve protocol ship energy totals as plain JSON numbers and
   still compare results bit-for-bit on the other side. *)
let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else if not (Float.is_finite f) then "null"
    (* NaN/inf have no JSON encoding *)
  else begin
    let exact fmt =
      let s = Printf.sprintf fmt f in
      if float_of_string s = f then Some s else None
    in
    let s =
      match exact "%.12g" with
      | Some s -> s
      | None -> (
          match exact "%.15g" with
          | Some s -> s
          | None -> (
              match exact "%.16g" with
              | Some s -> s
              | None -> Printf.sprintf "%.17g" f))
    in
    (* %g prints integral values in [1e15, 1e17) as bare digits; keep a
       float marker so the reader doesn't narrow them to an int *)
    if String.exists (function '.' | 'e' | 'E' -> true | _ -> false) s then s
    else s ^ ".0"
  end

let rec buffer_json buf = function
  | Jnull -> Buffer.add_string buf "null"
  | Jbool b -> Buffer.add_string buf (if b then "true" else "false")
  | Jint i -> Buffer.add_string buf (string_of_int i)
  | Jfloat f -> Buffer.add_string buf (json_float f)
  | Jstring s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (json_escape s);
      Buffer.add_char buf '"'
  | Jlist items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          buffer_json buf item)
        items;
      Buffer.add_char buf ']'
  | Jobj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (json_escape key);
          Buffer.add_string buf "\":";
          buffer_json buf value)
        fields;
      Buffer.add_char buf '}'

let json_to_string j =
  let buf = Buffer.create 1024 in
  buffer_json buf j;
  Buffer.contents buf

let write_json ~path j =
  match open_out path with
  | exception Sys_error msg -> Error msg
  | oc ->
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc (json_to_string j);
          output_char oc '\n');
      Ok ()

(* --- JSON parser ---------------------------------------------------- *)

(* A strict recursive-descent parser for the emitter above: the serve
   protocol's other half.  Every malformed input — truncated text,
   duplicate object keys, lone surrogates, trailing garbage, absurd
   nesting — is a clean [Error] carrying the byte offset, never an
   exception: the daemon feeds it whatever bytes a client sends. *)

exception Parse_fail of int * string

let max_nesting_depth = 512

let parse input =
  let n = String.length input in
  let fail pos msg = raise (Parse_fail (pos, msg)) in
  let pos = ref 0 in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> fail !pos (Printf.sprintf "expected %C, found %C" c d)
    | None -> fail !pos (Printf.sprintf "expected %C, found end of input" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub input !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail !pos (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail !pos "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match input.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | c -> fail !pos (Printf.sprintf "bad hex digit %C in \\u escape" c)
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail !pos "unterminated string"
      | Some '"' ->
          advance ();
          Buffer.contents buf
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail !pos "truncated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'u' ->
                  let start = !pos in
                  let cp = hex4 () in
                  if cp >= 0xd800 && cp <= 0xdbff then begin
                    (* high surrogate: a low surrogate must follow *)
                    if
                      !pos + 2 <= n
                      && input.[!pos] = '\\'
                      && input.[!pos + 1] = 'u'
                    then begin
                      pos := !pos + 2;
                      let lo = hex4 () in
                      if lo >= 0xdc00 && lo <= 0xdfff then
                        add_utf8 buf
                          (0x10000
                          + ((cp - 0xd800) lsl 10)
                          + (lo - 0xdc00))
                      else fail start "lone high surrogate"
                    end
                    else fail start "lone high surrogate"
                  end
                  else if cp >= 0xdc00 && cp <= 0xdfff then
                    fail start "lone low surrogate"
                  else add_utf8 buf cp
              | c -> fail (!pos - 1) (Printf.sprintf "bad escape \\%c" c));
              go ())
      | Some c when Char.code c < 0x20 ->
          fail !pos "unescaped control character in string"
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    (match peek () with
    | Some '0' -> advance ()
    | Some ('1' .. '9') ->
        while
          match peek () with Some ('0' .. '9') -> true | _ -> false
        do
          advance ()
        done
    | _ -> fail !pos "malformed number");
    let fractional = ref false in
    if peek () = Some '.' then begin
      fractional := true;
      advance ();
      (match peek () with
      | Some ('0' .. '9') -> ()
      | _ -> fail !pos "malformed number: digit expected after '.'");
      while match peek () with Some ('0' .. '9') -> true | _ -> false do
        advance ()
      done
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        fractional := true;
        advance ();
        (match peek () with
        | Some ('+' | '-') -> advance ()
        | _ -> ());
        (match peek () with
        | Some ('0' .. '9') -> ()
        | _ -> fail !pos "malformed number: digit expected in exponent");
        while match peek () with Some ('0' .. '9') -> true | _ -> false do
          advance ()
        done
    | _ -> ());
    let text = String.sub input start (!pos - start) in
    if !fractional then
      match float_of_string_opt text with
      | Some f -> Jfloat f
      | None -> fail start (Printf.sprintf "unparseable number %S" text)
    else
      match int_of_string_opt text with
      | Some i -> Jint i
      | None -> (
          (* an integer literal too wide for the native int: degrade to
             the nearest double rather than erroring — huge counters in
             foreign inputs stay readable *)
          match float_of_string_opt text with
          | Some f -> Jfloat f
          | None -> fail start (Printf.sprintf "unparseable number %S" text))
  in
  let rec parse_value depth =
    if depth > max_nesting_depth then fail !pos "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some '"' -> Jstring (parse_string ())
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Jlist []
        end
        else begin
          let items = ref [] in
          let rec elems () =
            items := parse_value (depth + 1) :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems ()
            | Some ']' -> advance ()
            | Some c ->
                fail !pos (Printf.sprintf "expected ',' or ']', found %C" c)
            | None -> fail !pos "unterminated array"
          in
          elems ();
          Jlist (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Jobj []
        end
        else begin
          let fields = ref [] in
          let seen = Hashtbl.create 8 in
          let rec members () =
            skip_ws ();
            let key_pos = !pos in
            let key =
              match peek () with
              | Some '"' -> parse_string ()
              | _ -> fail !pos "expected object key"
            in
            if Hashtbl.mem seen key then
              fail key_pos (Printf.sprintf "duplicate key %S" key);
            Hashtbl.add seen key ();
            skip_ws ();
            expect ':';
            fields := (key, parse_value (depth + 1)) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | Some c ->
                fail !pos (Printf.sprintf "expected ',' or '}', found %C" c)
            | None -> fail !pos "unterminated object"
          in
          members ();
          Jobj (List.rev !fields)
        end
    | Some c -> fail !pos (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos < n then
      fail !pos (Printf.sprintf "trailing garbage after value: %C" input.[!pos]);
    v
  with
  | v -> Ok v
  | exception Parse_fail (pos, msg) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" pos msg)

(* --- object accessors ------------------------------------------------ *)

let member key = function
  | Jobj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Jint i -> Some i | _ -> None

let to_float = function
  | Jfloat f -> Some f
  | Jint i -> Some (float_of_int i)
  | _ -> None

let to_string = function Jstring s -> Some s | _ -> None
let to_bool = function Jbool b -> Some b | _ -> None
let to_list = function Jlist l -> Some l | _ -> None

(* --- perf-row reader ----------------------------------------------- *)

(* A deliberately line-oriented reader for the BENCH_sim.json files the
   bench harness writes: one result object per line.  It must never
   take CI down over a stale artifact — an unreadable file is an
   [Error], and any malformed row (truncated line, missing field,
   unparseable number) is counted and dropped rather than raised on. *)

let find_sub ~pat s =
  let plen = String.length pat and slen = String.length s in
  let rec go i =
    if i + plen > slen then None
    else if String.sub s i plen = pat then Some (i + plen)
    else go (i + 1)
  in
  go 0

(* The value after ["key":], whitespace-tolerant: a quoted string
   (escapes respected) or a bare scalar ending at [,] / [}] / [\]]. *)
let json_field_of_line line key =
  match find_sub ~pat:(Printf.sprintf "\"%s\":" key) line with
  | None -> None
  | Some start ->
      let n = String.length line in
      let i = ref start in
      while !i < n && (line.[!i] = ' ' || line.[!i] = '\t') do incr i done;
      if !i >= n then None
      else if line.[!i] = '"' then begin
        let stop = ref (!i + 1) in
        while
          !stop < n && not (line.[!stop] = '"' && line.[!stop - 1] <> '\\')
        do
          incr stop
        done;
        if !stop >= n then None (* unterminated string: truncated line *)
        else Some (String.sub line (!i + 1) (!stop - !i - 1))
      end
      else begin
        let stop = ref !i in
        while
          !stop < n && not (List.mem line.[!stop] [ ','; '}'; ']'; ' ' ])
        do
          incr stop
        done;
        if !stop = !i then None else Some (String.sub line !i (!stop - !i))
      end

let parse_perf_rows path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let rows = ref [] and skipped = ref 0 in
          (try
             while true do
               let line = input_line ic in
               (* Only lines claiming to be result rows count; anything
                  else (header, host block, braces) is structure. *)
               match find_sub ~pat:"\"instrs_per_sec\"" line with
               | None -> ()
               | Some _ -> (
                   let field = json_field_of_line line in
                   match
                     ( field "benchmark",
                       field "scheme",
                       field "path",
                       Option.bind (field "instrs_per_sec")
                         float_of_string_opt )
                   with
                   | Some b, Some s, Some p, Some ips when Float.is_finite ips
                     ->
                       rows := ((b, s, p), ips) :: !rows
                   | _ -> incr skipped)
             done
           with End_of_file -> ());
          Ok (List.rev !rows, !skipped))
