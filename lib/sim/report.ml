let needs_quoting s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let csv_field s =
  if not (needs_quoting s) then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let csv_line fields = String.concat "," (List.map csv_field fields) ^ "\n"

let write_csv ~path ~header ~rows =
  match open_out path with
  | exception Sys_error msg -> Error msg
  | oc ->
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc (csv_line header);
          List.iter (fun row -> output_string oc (csv_line row)) rows);
      Ok ()

(* --- JSON ---------------------------------------------------------- *)

type json =
  | Jnull
  | Jbool of bool
  | Jint of int
  | Jfloat of float
  | Jstring of string
  | Jlist of json list
  | Jobj of (string * json) list

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else if Float.is_finite f then Printf.sprintf "%.12g" f
  else "null" (* NaN/inf have no JSON encoding *)

let rec buffer_json buf = function
  | Jnull -> Buffer.add_string buf "null"
  | Jbool b -> Buffer.add_string buf (if b then "true" else "false")
  | Jint i -> Buffer.add_string buf (string_of_int i)
  | Jfloat f -> Buffer.add_string buf (json_float f)
  | Jstring s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (json_escape s);
      Buffer.add_char buf '"'
  | Jlist items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          buffer_json buf item)
        items;
      Buffer.add_char buf ']'
  | Jobj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (json_escape key);
          Buffer.add_string buf "\":";
          buffer_json buf value)
        fields;
      Buffer.add_char buf '}'

let json_to_string j =
  let buf = Buffer.create 1024 in
  buffer_json buf j;
  Buffer.contents buf

let write_json ~path j =
  match open_out path with
  | exception Sys_error msg -> Error msg
  | oc ->
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc (json_to_string j);
          output_char oc '\n');
      Ok ()

(* --- perf-row reader ----------------------------------------------- *)

(* A deliberately line-oriented reader for the BENCH_sim.json files the
   bench harness writes: one result object per line.  It must never
   take CI down over a stale artifact — an unreadable file is an
   [Error], and any malformed row (truncated line, missing field,
   unparseable number) is counted and dropped rather than raised on. *)

let find_sub ~pat s =
  let plen = String.length pat and slen = String.length s in
  let rec go i =
    if i + plen > slen then None
    else if String.sub s i plen = pat then Some (i + plen)
    else go (i + 1)
  in
  go 0

(* The value after ["key":], whitespace-tolerant: a quoted string
   (escapes respected) or a bare scalar ending at [,] / [}] / [\]]. *)
let json_field_of_line line key =
  match find_sub ~pat:(Printf.sprintf "\"%s\":" key) line with
  | None -> None
  | Some start ->
      let n = String.length line in
      let i = ref start in
      while !i < n && (line.[!i] = ' ' || line.[!i] = '\t') do incr i done;
      if !i >= n then None
      else if line.[!i] = '"' then begin
        let stop = ref (!i + 1) in
        while
          !stop < n && not (line.[!stop] = '"' && line.[!stop - 1] <> '\\')
        do
          incr stop
        done;
        if !stop >= n then None (* unterminated string: truncated line *)
        else Some (String.sub line (!i + 1) (!stop - !i - 1))
      end
      else begin
        let stop = ref !i in
        while
          !stop < n && not (List.mem line.[!stop] [ ','; '}'; ']'; ' ' ])
        do
          incr stop
        done;
        if !stop = !i then None else Some (String.sub line !i (!stop - !i))
      end

let parse_perf_rows path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let rows = ref [] and skipped = ref 0 in
          (try
             while true do
               let line = input_line ic in
               (* Only lines claiming to be result rows count; anything
                  else (header, host block, braces) is structure. *)
               match find_sub ~pat:"\"instrs_per_sec\"" line with
               | None -> ()
               | Some _ -> (
                   let field = json_field_of_line line in
                   match
                     ( field "benchmark",
                       field "scheme",
                       field "path",
                       Option.bind (field "instrs_per_sec")
                         float_of_string_opt )
                   with
                   | Some b, Some s, Some p, Some ips when Float.is_finite ips
                     ->
                       rows := ((b, s, p), ips) :: !rows
                   | _ -> incr skipped)
             done
           with End_of_file -> ());
          Ok (List.rev !rows, !skipped))
