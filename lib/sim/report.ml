let needs_quoting s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let csv_field s =
  if not (needs_quoting s) then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let csv_line fields = String.concat "," (List.map csv_field fields) ^ "\n"

let write_csv ~path ~header ~rows =
  match open_out path with
  | exception Sys_error msg -> Error msg
  | oc ->
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc (csv_line header);
          List.iter (fun row -> output_string oc (csv_line row)) rows);
      Ok ()
