(** The data-memory side: D-cache and D-TLB.

    Kept identical across all schemes (the paper varies only the
    instruction cache); it exists so that cycle counts and total-energy
    figures (the ED product) include a realistic data side.  Stores are
    modelled write-through with no write-back accounting — a
    simplification that cancels out of every normalised metric. *)

type t

val create : ?probe:Wp_obs.Probe.t -> Config.t -> t
(** [probe] observes one [Dcache_access] event per access plus
    [Dtlb_miss] events; pure observation. *)

val access : t -> Stats.t -> Wp_isa.Addr.t -> write:bool -> int
(** Perform the access, charge D-cache/D-TLB/memory energy and update
    counters; returns the pipeline stall in cycles. *)

val flush : t -> unit

val flush_tlb : t -> unit
(** Invalidate only the D-TLB (context-switch shootdown on an
    ASID-less core); D-cache contents are physical and survive. *)

val fingerprint : t -> add:(int -> unit) -> unit
(** Canonical state fingerprint (D-cache + D-TLB) for the steady-state
    fast-forward detector. *)
