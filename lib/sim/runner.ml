type prepared = {
  program : Wp_workloads.Codegen.t;
  profile_small : Wp_cfg.Profile.t;
  trace_large : Wp_workloads.Tracer.trace;
  original_layout : Wp_layout.Binary_layout.t;
  placed_layout : Wp_layout.Binary_layout.t;
  compiled_original : Compiled_trace.t;
  compiled_placed : Compiled_trace.t;
}

let prepare spec =
  let program = Wp_workloads.Codegen.generate spec in
  let graph = program.Wp_workloads.Codegen.graph in
  let profile_small = Wp_workloads.Tracer.profile program Wp_workloads.Tracer.Small in
  let trace_large = Wp_workloads.Tracer.trace program Wp_workloads.Tracer.Large in
  let base = Simulator.code_base in
  let original_layout =
    Wp_layout.Binary_layout.of_order graph ~base (Wp_layout.Placer.original graph)
  in
  let placed_layout =
    Wp_layout.Binary_layout.of_order graph ~base
      (Wp_layout.Placer.place graph profile_small)
  in
  {
    program;
    profile_small;
    trace_large;
    original_layout;
    placed_layout;
    compiled_original = Compiled_trace.make ~program ~layout:original_layout;
    compiled_placed = Compiled_trace.make ~program ~layout:placed_layout;
  }

let layout_for prepared (config : Config.t) =
  match config.scheme with
  | Config.Way_placement _ -> prepared.placed_layout
  | Config.Baseline | Config.Way_memoization | Config.Way_prediction
  | Config.Filter_cache _ ->
      prepared.original_layout

let compiled_for prepared (config : Config.t) =
  match config.scheme with
  | Config.Way_placement _ -> prepared.compiled_placed
  | Config.Baseline | Config.Way_memoization | Config.Way_prediction
  | Config.Filter_cache _ ->
      prepared.compiled_original

let run_scheme ?probe ?fastforward ?ff_report ?snapshot_cache prepared config =
  Simulator.run_compiled ?probe ?fastforward ?ff_report ?snapshot_cache
    ~config ~trace:prepared.trace_large
    (compiled_for prepared config)

let run_timeline ?(schedule = []) ?window_cycles prepared config =
  let sampler = Wp_obs.Sampler.create ?window_cycles () in
  let stats =
    Simulator.run_compiled
      ~probe:(Wp_obs.Sampler.probe sampler)
      ~schedule ~config ~trace:prepared.trace_large
      (compiled_for prepared config)
  in
  (stats, Wp_obs.Sampler.finish sampler)

type comparison = {
  baseline : Stats.t;
  scheme : Stats.t;
  norm_icache_energy : float;
  norm_ed : float;
  norm_cycles : float;
}

let compare_to_baseline prepared config =
  let baseline_config = Config.with_scheme config Config.Baseline in
  let baseline = run_scheme prepared baseline_config in
  let scheme = run_scheme prepared config in
  {
    baseline;
    scheme;
    norm_icache_energy =
      Wp_energy.Ed.normalised
        ~scheme:(Stats.icache_energy_pj scheme)
        ~baseline:(Stats.icache_energy_pj baseline);
    norm_ed =
      Wp_energy.Ed.normalised_ed
        ~scheme_energy_pj:(Stats.total_energy_pj scheme)
        ~scheme_cycles:scheme.Stats.cycles
        ~baseline_energy_pj:(Stats.total_energy_pj baseline)
        ~baseline_cycles:baseline.Stats.cycles;
    norm_cycles =
      Wp_energy.Ed.normalised
        ~scheme:(float_of_int scheme.Stats.cycles)
        ~baseline:(float_of_int baseline.Stats.cycles);
  }

let arithmetic_mean = function
  | [] -> invalid_arg "Runner.arithmetic_mean: empty list"
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geometric_mean = function
  | [] -> invalid_arg "Runner.geometric_mean: empty list"
  | xs ->
      let log_sum =
        List.fold_left
          (fun acc x ->
            if x <= 0.0 then invalid_arg "Runner.geometric_mean: non-positive"
            else acc +. log x)
          0.0 xs
      in
      exp (log_sum /. float_of_int (List.length xs))
