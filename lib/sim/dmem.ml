type t = {
  cache : Wp_cache.Cam_cache.t;
  tlb : Wp_tlb.Tlb.t;
  energies : Wp_energy.Cam_energy.t;
  tlb_lookup_pj : float;
  memory_latency : int;
  tlb_walk_latency : int;
  memory_access_pj : float;
  probe : Wp_obs.Probe.t option;
  (* Hot per-access constants: [Cam_energy.t] is an all-float record,
     so reading its fields boxes a float per access; these fields are
     boxed once at creation (mixed record) and free to read. *)
  tag_full_pj : float;
  dw_pj : float;
  fill_pj : float;
}

let no_wp _ = false

let create ?probe (config : Config.t) =
  let energies = Wp_energy.Cam_energy.of_geometry config.energy config.dcache in
  {
    (* The D-cache's own CAM gets no probe: [Tag_search]/[Line_fill]
       events are an I-side signal (the ways-enabled distribution). *)
    cache =
      Wp_cache.Cam_cache.create config.dcache ~replacement:config.replacement;
    tlb =
      Wp_tlb.Tlb.create ~entries:config.dtlb_entries
        ~page_bytes:config.page_bytes;
    energies;
    tlb_lookup_pj =
      Wp_energy.Cam_energy.tlb_lookup_pj config.energy
        ~entries:config.dtlb_entries ~page_bytes:config.page_bytes;
    memory_latency = config.memory_latency;
    tlb_walk_latency = config.tlb_walk_latency;
    memory_access_pj = config.energy.Wp_energy.Params.memory_access_pj;
    probe;
    tag_full_pj =
      Wp_energy.Cam_energy.tag_search energies
        ~ways:config.dcache.Wp_cache.Geometry.assoc;
    dw_pj = energies.Wp_energy.Cam_energy.data_word_pj;
    fill_pj = energies.Wp_energy.Cam_energy.line_fill_pj;
  }

let access t (stats : Stats.t) addr ~write:_ =
  stats.dcache_accesses <- stats.dcache_accesses + 1;
  let account = stats.account in
  Wp_energy.Account.add_dcache account t.tlb_lookup_pj;
  let tlb_bits = Wp_tlb.Tlb.lookup_bits t.tlb addr ~wp_bit_of_page:no_wp in
  let tlb_stall =
    if tlb_bits land 1 = 1 then 0
    else begin
      stats.dtlb_misses <- stats.dtlb_misses + 1;
      (match t.probe with None -> () | Some p -> p Wp_obs.Probe.Dtlb_miss);
      Wp_energy.Account.add_memory account t.memory_access_pj;
      t.tlb_walk_latency
    end
  in
  let hit_way = Wp_cache.Cam_cache.lookup_full_way t.cache addr in
  (match t.probe with
  | None -> ()
  | Some p -> p (Wp_obs.Probe.Dcache_access { miss = hit_way < 0 }));
  Wp_energy.Account.add_dcache account t.tag_full_pj;
  Wp_energy.Account.add_dcache account t.dw_pj;
  let miss_stall =
    if hit_way >= 0 then 0
    else begin
      stats.dcache_misses <- stats.dcache_misses + 1;
      let _way, _evicted =
        Wp_cache.Cam_cache.fill_absent t.cache addr
          Wp_cache.Cam_cache.Victim_by_policy
      in
      Wp_energy.Account.add_dcache account t.fill_pj;
      Wp_energy.Account.add_memory account t.memory_access_pj;
      t.memory_latency
    end
  in
  tlb_stall + miss_stall

let flush t =
  Wp_cache.Cam_cache.flush t.cache;
  Wp_tlb.Tlb.flush t.tlb

(* Context-switch shootdown: only the D-TLB is invalidated (no ASIDs);
   D-cache contents are physical and survive across processes. *)
let flush_tlb t = Wp_tlb.Tlb.flush t.tlb

(* Canonical fingerprint of the data side (D-cache + D-TLB) for the
   steady-state fast-forward detector. *)
let fingerprint t ~add =
  Wp_cache.Cam_cache.fingerprint t.cache ~add;
  Wp_tlb.Tlb.fingerprint t.tlb ~add
