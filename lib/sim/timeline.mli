(** Timeline export: one row/track per sampler window.

    Two formats over the same {!Wp_obs.Sampler.window} list:

    - an RFC-4180 CSV (via {!Report}) with one row per window — cycle
      span, retired instructions, IPC, every counter delta, the
      ways-enabled distribution ("[ways:searches]" pairs), per-bucket
      energy and resize/flush markers;
    - a Chrome trace-event JSON file loadable in [chrome://tracing] or
      Perfetto: counter tracks ([ph = "C"]) per energy bucket plus IPC,
      fetches and misses, sampled at each window's start cycle, and
      global instant events ([ph = "i"]) for resizes and flushes.
      Timestamps are cycles (the trace's logical microsecond).

    Summing the CSV's counter or energy columns reproduces the run's
    final [Stats.t] — the sampler's conservation law. *)

val csv_header : string list

val csv_rows : Wp_obs.Sampler.window list -> string list list

val write_csv :
  path:string -> Wp_obs.Sampler.window list -> (unit, string) result

val chrome_trace :
  ?process_name:string -> Wp_obs.Sampler.window list -> Report.json
(** The trace-event object ([{"traceEvents": [...]}]).  Every event
    carries the required [ph]/[ts]/[pid] fields and timestamps are
    non-decreasing in stream order.  [process_name] defaults to
    ["wayplace-sim"]. *)

val write_chrome :
  ?process_name:string ->
  path:string ->
  Wp_obs.Sampler.window list ->
  (unit, string) result
