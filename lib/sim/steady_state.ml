(* Steady-state loop fast-forward (ROADMAP: "the next 10-100x").

   Hot loops reach cache steady state within a few iterations — the
   dominant-block observation.  Once the machine state at two
   consecutive iteration boundaries of a periodic trace region is
   equal, every remaining in-pattern iteration must reproduce the
   recorded iteration exactly: the trace is the only input, and the
   canonical fingerprint covers everything future behaviour can
   observe.  The engine therefore multiplies the recorded iteration's
   effects by the remaining repetition count instead of replaying them.

   Bit-identity is preserved by replaying each effect in its own
   domain:
   - integer counters are pure sums — snapshot deltas scaled by the
     repetition count ({!Stats.add_scaled_delta});
   - energy buckets are order-sensitive float accumulators — the
     recorded iteration's per-bucket charge sequences are re-added in
     recorded order ({!Wp_energy.Account.replay});
   - the drowsy awake accumulator likewise replays its recorded
     integer increments in order, and touched lines' raw timestamps
     are advanced to exactly where a full replay would leave them.

   Detection is a static pre-scan, not a per-block tax.  Which trace
   stretches are periodic is a pure function of the block array — it
   reads no machine state — so the delta-gated detector (a rolling
   anchor-delta over each block's last occurrence, escalating to exact
   O(period) segment verification only when the recurrence distance
   holds steady) runs {e once} over the trace, off the replay path,
   and its verdict is memoised per (trace, policy): every scheme,
   every repeated run and every sweep cell replaying the same trace
   shares one scan.  At replay time the driver walks the precomputed
   region list; a patternless trace has an empty list and the caller
   can bypass the driver entirely ({!engaged}), so the fast-forward
   machinery costs such a run {e nothing}.  Only convergence — whether
   a verified pattern's boundary fingerprints actually settle — is
   decided at run time, because only it depends on machine state.

   With a snapshot cache attached, a converged region also publishes
   its (boundary fingerprint, pattern, effects) triple, and every
   boundary snapshot doubles as a lookup: re-entering the same pattern
   in the same observable state — later in this run, after a context
   switch, or in another sweep cell replaying the same compiled trace
   under the same configuration — skips from its first boundary
   without re-recording.  The key covers the world (trace token +
   config), the pattern and every fingerprint word, and a hit
   re-verifies all of them outright, so reuse preserves the same
   bit-identity argument as local convergence.

   Bail-out is structural or checked: the engine only runs on the
   probe-less, schedule-less fast path (probes and resize schedules
   force the reference loop); drowsy timers, stream cursors and RNG
   state are part of the fingerprint, so any cross-iteration
   interaction simply never fingerprints equal and the region is
   replayed normally. *)

type policy = {
  max_period_blocks : int;
  min_skip_instrs : int;
  max_attempts : int;
  snapshot_budget : int;
}

let default_policy =
  {
    max_period_blocks = 1024;
    min_skip_instrs = 2000;
    max_attempts = 24;
    snapshot_budget = 8192;
  }

type report = {
  mutable regions : int;
  mutable recorded_iterations : int;
  mutable converged : int;
  mutable skipped_iterations : int;
  mutable skipped_instrs : int;
  mutable gate_rejected : int;
  mutable vetoed : int;
  mutable cost_gated : int;
  mutable budget_exhausted : int;
  mutable cache_hits : int;
  mutable cache_inserts : int;
}

let create_report () =
  {
    regions = 0;
    recorded_iterations = 0;
    converged = 0;
    skipped_iterations = 0;
    skipped_instrs = 0;
    gate_rejected = 0;
    vetoed = 0;
    cost_gated = 0;
    budget_exhausted = 0;
    cache_hits = 0;
    cache_inserts = 0;
  }

type ctx = {
  policy : policy;
  report : report;
  stats : Stats.t;
  blocks : int array;
  n_ids : int;
  n_instrs_of : int -> int;
  stream_invariant : start:int -> period:int -> bool;
  fingerprint : start:int -> period:int -> add:(int -> unit) -> unit;
  exec : int -> unit;
  set_awake_recorder : (int -> unit) option -> unit;
  drowsy_advance : since:int -> delta:int -> unit;
  drowsy_replay : int array -> len:int -> iters:int -> unit;
  cycles : int ref;
  instrs : int ref;
  cache : Snapshot_cache.t option;
  cache_scope : string;
  cycle_headroom : (unit -> int) option;
}

(* Growable int/float buffers; reused across attempts so steady
   operation allocates nothing per snapshot. *)
type ibuf = { mutable ia : int array; mutable ilen : int }
type fbuf = { mutable fa : float array; mutable flen : int }

let ibuf_create n = { ia = Array.make n 0; ilen = 0 }
let ibuf_clear b = b.ilen <- 0

let ibuf_push b x =
  let n = Array.length b.ia in
  if b.ilen = n then begin
    let a = Array.make (2 * n) 0 in
    Array.blit b.ia 0 a 0 n;
    b.ia <- a
  end;
  Array.unsafe_set b.ia b.ilen x;
  b.ilen <- b.ilen + 1

let ibuf_equal x y =
  x.ilen = y.ilen
  &&
  let rec go i =
    i >= x.ilen
    || (Array.unsafe_get x.ia i = Array.unsafe_get y.ia i && go (i + 1))
  in
  go 0

let fbuf_create n = { fa = Array.make n 0.0; flen = 0 }
let fbuf_clear b = b.flen <- 0

let fbuf_push b x =
  let n = Array.length b.fa in
  if b.flen = n then begin
    let a = Array.make (2 * n) 0.0 in
    Array.blit b.fa 0 a 0 n;
    b.fa <- a
  end;
  Array.unsafe_set b.fa b.flen x;
  b.flen <- b.flen + 1

(* {2 The static pre-scan} *)

(* How many consecutive stable-delta blocks the gate demands before it
   escalates to segment verification: min (period, gate_depth).  Small
   enough that a loop is caught within its second iteration, large
   enough that a patternless trace — whose recurrence distances jitter
   block to block — almost never escalates. *)
let gate_depth = 4

(* A verified periodic stretch: [blocks.(r_start + j) =
   blocks.(r_start + j - r_period)] for every [r_start <= r_start + j
   < r_end], the pattern passed the stream pre-filter, and one period
   retires [r_p_instrs] instructions.  Regions are disjoint and sorted
   by [r_start]. *)
type region = {
  r_start : int;
  r_period : int;
  r_end : int;
  r_p_instrs : int;
}

type plan = {
  p_regions : region array;
  p_gate_rejected : int;
  p_vetoed : int;
  p_cost_gated : int;
}

(* The delta-gated detector, run once over the whole trace.  [gate_d]
   is the current candidate recurrence distance; [gate_len] counts
   consecutive blocks whose distance stayed within it; [gate_below]
   counts how long since a block recurred at exactly [gate_d], so a
   stale large distance decays once a full [gate_d] window passes
   without confirmation (an inner loop following unrelated code would
   otherwise be shadowed forever).  Patterns proven stream-variant are
   remembered as the last two rejected periods per anchor id (nested
   loops make one anchor alternate between its inner and outer period,
   and a single slot thrashes). *)
let scan ~blocks ~n_ids ~(policy : policy) ~n_instrs_of ~stream_invariant =
  let nblocks = Array.length blocks in
  let max_p = policy.max_period_blocks in
  let last_pos = Array.make n_ids (-1) in
  let rejected_p1 = Array.make n_ids (-1) in
  let rejected_p2 = Array.make n_ids (-1) in
  let gate_d = ref 0 in
  let gate_len = ref 0 in
  let gate_below = ref 0 in
  let next_attempt = ref 0 in
  let regions = ref [] in
  let gate_rejected = ref 0 in
  let vetoed = ref 0 in
  let cost_gated = ref 0 in
  for kk = 0 to nblocks - 1 do
    let id = Array.unsafe_get blocks kk in
    (if kk >= !next_attempt then begin
       let prev = Array.unsafe_get last_pos id in
       if prev < 0 then begin
         gate_d := 0;
         gate_len := 0;
         gate_below := 0
       end
       else
         let p = kk - prev in
         if p > max_p then begin
           gate_d := 0;
           gate_len := 0;
           gate_below := 0
         end
         else begin
           (if !gate_d = 0 || p > !gate_d then begin
              gate_d := p;
              gate_len := 1;
              gate_below := 0
            end
            else begin
              incr gate_len;
              if p = !gate_d then gate_below := 0
              else begin
                incr gate_below;
                if !gate_below >= !gate_d then begin
                  (* a full candidate window passed without the anchor
                     distance recurring: the old distance was noise —
                     re-centre on what the trace is doing now *)
                  gate_d := p;
                  gate_len := 1;
                  gate_below := 0
                end
              end
            end);
           let fire_len = if p < gate_depth then p else gate_depth in
           if
             !gate_len >= fire_len
             && kk + p <= nblocks
             && rejected_p1.(id) <> p
             && rejected_p2.(id) <> p
           then begin
             (* Escalate: exact segment verification, then the stream
                pre-filter, then size the region. *)
             let ok = ref true in
             let j = ref 0 in
             while !ok && !j < p do
               if blocks.(kk + !j) <> blocks.(prev + !j) then ok := false
               else incr j
             done;
             if not !ok then incr gate_rejected
             else if not (stream_invariant ~start:kk ~period:p) then begin
               (* Stream-variant patterns can never converge (the RNG
                  or cursors move every iteration); cache the verdict
                  but keep scanning, so attemptable inner loops inside
                  this stretch still get their chance. *)
               incr vetoed;
               rejected_p2.(id) <- rejected_p1.(id);
               rejected_p1.(id) <- p
             end
             else begin
               let je = ref (kk + p) in
               while !je < nblocks && blocks.(!je) = blocks.(!je - p) do
                 incr je
               done;
               let je = !je in
               let p_instrs = ref 0 in
               for j2 = kk to kk + p - 1 do
                 p_instrs := !p_instrs + n_instrs_of blocks.(j2)
               done;
               let total_iters = (je - kk) / p in
               let skippable = (total_iters - 1) * !p_instrs in
               if skippable >= policy.min_skip_instrs then
                 regions :=
                   { r_start = kk; r_period = p; r_end = je;
                     r_p_instrs = !p_instrs }
                   :: !regions
               else incr cost_gated;
               next_attempt := je
             end
           end
         end
     end);
    Array.unsafe_set last_pos id kk
  done;
  {
    p_regions = Array.of_list (List.rev !regions);
    p_gate_rejected = !gate_rejected;
    p_vetoed = !vetoed;
    p_cost_gated = !cost_gated;
  }

(* Plan memo, keyed by the physical block array and the policy.  The
   instruction counts and stream composition the scan consults are
   derived from the program, so they are constants of a given trace —
   every layout/scheme compiled from it shares the plan.  Keys are
   held weakly: generated traces (the fuzz corpus) must not accumulate
   here, and a dead trace's plan goes with it. *)
let plan_slots = 64
let plan_keys : int array Weak.t = Weak.create plan_slots
let plan_vals : (policy * plan) option array = Array.make plan_slots None
let plan_clock = ref 0
let plan_lock = Mutex.create ()

let plan_find blocks policy =
  let rec go i =
    if i >= plan_slots then None
    else
      match (Weak.get plan_keys i, plan_vals.(i)) with
      | Some b, Some (pol, pl) when b == blocks && pol = policy -> Some pl
      | _ -> go (i + 1)
  in
  go 0

let plan_for ~blocks ~n_ids ~policy ~n_instrs_of ~stream_invariant =
  Mutex.lock plan_lock;
  let hit = plan_find blocks policy in
  Mutex.unlock plan_lock;
  match hit with
  | Some pl -> pl
  | None -> (
      (* Scan outside the lock — it's pure; a racing domain at worst
         duplicates the work and the first insert wins. *)
      let pl = scan ~blocks ~n_ids ~policy ~n_instrs_of ~stream_invariant in
      Mutex.lock plan_lock;
      match plan_find blocks policy with
      | Some pl' ->
          Mutex.unlock plan_lock;
          pl'
      | None ->
          let i = !plan_clock mod plan_slots in
          plan_clock := !plan_clock + 1;
          Weak.set plan_keys i (Some blocks);
          plan_vals.(i) <- Some (policy, pl);
          Mutex.unlock plan_lock;
          pl)

(* {2 The replay-time driver} *)

(* The single-run sentinel for [advance ~until]: compared physically so
   the plain replay loop pays no per-block closure call. *)
let never () = false

type driver = {
  ctx : ctx;
  nblocks : int;
  plan : plan;
  mutable ri : int;  (** index of the first plan region not yet passed *)
  mutable settled_ri : int;
      (** region index marked settled (replay its remainder plainly);
          cleared by {!reawaken} so a preempted region's next boundary
          can hit the snapshot cache on re-dispatch *)
  mutable snap_a : ibuf;
  mutable snap_b : ibuf;
  awake : ibuf;
  charges : fbuf array;
  mutable budget : int;
  (* Last observed fingerprint length: lets the driver pre-gate
     regions too small to repay even one snapshot without paying for
     that snapshot to find out (way-memoization's link table makes its
     snapshots ~10x a plain CAM's).  Starts at 0 so the first region
     always measures. *)
  mutable snap_len_hint : int;
  mutable zero_ints : int array;  (** scratch for cache-hit scaling *)
  k : int ref;
}

let make ctx =
  let plan =
    plan_for ~blocks:ctx.blocks ~n_ids:ctx.n_ids ~policy:ctx.policy
      ~n_instrs_of:ctx.n_instrs_of ~stream_invariant:ctx.stream_invariant
  in
  let rep = ctx.report in
  rep.gate_rejected <- rep.gate_rejected + plan.p_gate_rejected;
  rep.vetoed <- rep.vetoed + plan.p_vetoed;
  rep.cost_gated <- rep.cost_gated + plan.p_cost_gated;
  {
    ctx;
    nblocks = Array.length ctx.blocks;
    plan;
    ri = 0;
    settled_ri = -1;
    snap_a = ibuf_create 4096;
    snap_b = ibuf_create 4096;
    awake = ibuf_create 64;
    charges = Array.init 5 (fun _ -> fbuf_create 64);
    budget = ctx.policy.snapshot_budget;
    snap_len_hint = 0;
    zero_ints = [||];
    k = ref 0;
  }

let pos d = !(d.k)
let reawaken d = d.settled_ri <- -1
let engaged d = Array.length d.plan.p_regions > 0

let take_snapshot d buf ~start ~period =
  d.budget <- d.budget - 1;
  ibuf_clear buf;
  d.ctx.fingerprint ~start ~period ~add:(fun x -> ibuf_push buf x)

(* Largest number of iterations a skip may apply: the remaining full
   in-pattern repetitions, clamped by the caller's cycle headroom so a
   quantum-metered replay stops on exactly the block boundary the
   plain loop would have stopped on. *)
let clamp_iters d ~n_rem ~iter_cycles =
  match d.ctx.cycle_headroom with
  | None -> n_rem
  | Some headroom ->
      if iter_cycles <= 0 then n_rem
      else
        let h = headroom () in
        let fit = if h <= 0 then 0 else h / iter_cycles in
        if fit < n_rem then fit else n_rem

(* Apply [iters] repetitions of a converged iteration's effects.  The
   caller guarantees the machine currently sits at an iteration
   boundary whose observable state equals the state the effects were
   recorded from, and that the preceding [period] blocks were one full
   iteration of the pattern (the scan's segment verification provides
   this even at a region's first boundary), so the touched-line set of
   the last [fetches] fetches is exactly one iteration's. *)
let apply_effects d ~ints_delta ~charges ~lens ~awake ~awake_len ~fetches
    ~iter_cycles ~iter_instrs ~iters ~period =
  let ctx = d.ctx in
  ctx.drowsy_advance
    ~since:(ctx.stats.Stats.fetches - fetches)
    ~delta:(iters * fetches);
  ctx.drowsy_replay awake ~len:awake_len ~iters;
  Wp_energy.Account.replay ctx.stats.Stats.account ~charges ~lens ~iters;
  if Array.length d.zero_ints <> Array.length ints_delta then
    d.zero_ints <- Array.make (Array.length ints_delta) 0;
  Stats.add_scaled_delta ctx.stats ~before:d.zero_ints ~after:ints_delta
    ~times:iters;
  ctx.cycles := !(ctx.cycles) + (iters * iter_cycles);
  ctx.instrs := !(ctx.instrs) + (iters * iter_instrs);
  ctx.report.skipped_iterations <- ctx.report.skipped_iterations + iters;
  ctx.report.skipped_instrs <-
    ctx.report.skipped_instrs + (iters * iter_instrs);
  d.k := !(d.k) + (iters * period)

(* Boundary cache lookup: fingerprint the current boundary (the caller
   just stored it in [buf]), and if the cache knows a converged
   iteration for this (world, pattern, state), skip the remaining
   repetitions immediately.  [ids] is the region's canonical period
   slice — every boundary of a region shares it.  Returns the computed
   key (for a later insert) and whether a skip was applied. *)
let try_cache d ~buf ~ids ~p ~je =
  match d.ctx.cache with
  | None -> (None, false)
  | Some cache ->
      let key =
        Snapshot_cache.key ~scope:d.ctx.cache_scope ~period:p ~ids ~fp:buf.ia
          ~fp_len:buf.ilen
      in
      (match Snapshot_cache.find cache ~key ~fp:buf.ia ~fp_len:buf.ilen with
      | None -> (Some key, false)
      | Some e ->
          let n_rem = (je - 1 - !(d.k)) / p in
          let m = clamp_iters d ~n_rem ~iter_cycles:e.Snapshot_cache.e_cycles in
          if m <= 0 then (Some key, false)
          else begin
            d.ctx.report.cache_hits <- d.ctx.report.cache_hits + 1;
            apply_effects d ~ints_delta:e.Snapshot_cache.e_ints
              ~charges:e.Snapshot_cache.e_charges ~lens:e.Snapshot_cache.e_lens
              ~awake:e.Snapshot_cache.e_awake
              ~awake_len:(Array.length e.Snapshot_cache.e_awake)
              ~fetches:e.Snapshot_cache.e_fetches
              ~iter_cycles:e.Snapshot_cache.e_cycles
              ~iter_instrs:e.Snapshot_cache.e_instrs ~iters:m ~period:p;
            (Some key, true)
          end)

let publish d ~key ~ints_before ~ints_after ~fetches ~iter_cycles ~iter_instrs
    =
  match (d.ctx.cache, key) with
  | Some cache, Some key ->
      let n = Array.length ints_before in
      let ints_delta = Array.init n (fun i -> ints_after.(i) - ints_before.(i)) in
      Snapshot_cache.add cache ~key
        {
          Snapshot_cache.e_fp = Array.sub d.snap_b.ia 0 d.snap_b.ilen;
          e_ints = ints_delta;
          e_charges = Array.map (fun c -> Array.sub c.fa 0 c.flen) d.charges;
          e_lens = Array.map (fun c -> c.flen) d.charges;
          e_awake = Array.sub d.awake.ia 0 d.awake.ilen;
          e_fetches = fetches;
          e_cycles = iter_cycles;
          e_instrs = iter_instrs;
        };
      d.ctx.report.cache_inserts <- d.ctx.report.cache_inserts + 1
  | (None, _ | _, None) -> ()

(* The trace repeats with period [p] over [d.k, je).  Try the snapshot
   cache at each boundary; otherwise execute iterations, recording
   each one's effects, until two consecutive boundary fingerprints are
   equal; then skip the remaining repetitions arithmetically.
   Iterations are only recorded (and only skipped) while a {e full}
   period plus its terminator's lookahead stays inside the pattern:
   the last block of an iteration starting at [s] reads [blocks.(s +
   p)] to resolve its branch, so [s + p < je] is required — the final
   partial stretch is always executed normally.  Returns [false] when
   the region was cut short (by [until] or the headroom clamp) and
   detection should be re-enabled on the next dispatch. *)
let attempt d ~p ~je ~skippable ~until =
  let ctx = d.ctx in
  let pol = ctx.policy in
  let rep = ctx.report in
  rep.regions <- rep.regions + 1;
  (* All of a region's snapshots describe one period of the same
     pattern; scan it from the entry boundary (the pattern slice is
     the same at every boundary), not from a moving one. *)
  let start = !(d.k) in
  let ids = Array.sub ctx.blocks start p in
  take_snapshot d d.snap_a ~start ~period:p;
  d.snap_len_hint <- d.snap_a.ilen;
  let step () =
    let kk = !(d.k) in
    ctx.exec kk;
    d.k := kk + 1
  in
  match try_cache d ~buf:d.snap_a ~ids ~p ~je with
  | _, true ->
      (* served from the cache; [true] iff the whole region was
         consumed (a headroom-clamped skip leaves a tail) *)
      !(d.k) + p >= je
  | key0, false ->
      let key = ref key0 in
      let settled = ref true in
      let converged = ref false in
      (* Cost gate, now that the fingerprint's actual size is known:
         convergence takes two snapshots at minimum and each one scans
         this many words, so a region whose whole skippable stretch is
         smaller than its own fingerprint is overhead, not speedup
         (schemes differ by 10x in snapshot size — way-memoization's
         link table dwarfs a plain CAM's). *)
      let exhausted = ref (skippable < pol.min_skip_instrs + d.snap_a.ilen) in
      if !exhausted then rep.cost_gated <- rep.cost_gated + 1;
      let attempts = ref 0 in
      let live = until != never in
      let record_probe ev =
        match ev with
        | Wp_obs.Probe.Energy { bucket; pj } ->
            fbuf_push d.charges.(Wp_obs.Probe.bucket_index bucket) pj
        | _ -> ()
      in
      while (not !converged) && not !exhausted do
        if !(d.k) + p >= je || !attempts >= pol.max_attempts || d.budget <= 0
        then begin
          exhausted := true;
          rep.budget_exhausted <- rep.budget_exhausted + 1
        end
        else begin
          incr attempts;
          rep.recorded_iterations <- rep.recorded_iterations + 1;
          Array.iter fbuf_clear d.charges;
          ibuf_clear d.awake;
          let ints_before = Stats.snapshot_ints ctx.stats in
          let fetches_before = ctx.stats.Stats.fetches in
          let cyc_before = !(ctx.cycles) in
          let ins_before = !(ctx.instrs) in
          Wp_energy.Account.set_probe ctx.stats.Stats.account
            (Some record_probe);
          ctx.set_awake_recorder (Some (fun aw -> ibuf_push d.awake aw));
          let stepped = ref 0 in
          let interrupted = ref false in
          while (not !interrupted) && !stepped < p do
            step ();
            incr stepped;
            if live && until () then interrupted := true
          done;
          Wp_energy.Account.set_probe ctx.stats.Stats.account None;
          ctx.set_awake_recorder None;
          if !interrupted && !stepped < p then begin
            (* preempted mid-iteration: the recording is unusable (the
               blocks themselves executed normally and are accounted;
               only the observation stops). *)
            exhausted := true;
            settled := false
          end
          else begin
            take_snapshot d d.snap_b ~start ~period:p;
            if ibuf_equal d.snap_a d.snap_b then begin
              (* Converged locally.  The publish key is the converged
                 boundary's: [key0] when the first pair converged, the
                 last boundary's lookup key otherwise — either way it
                 was computed over exactly these fingerprint words. *)
              converged := true;
              rep.converged <- rep.converged + 1;
              let ints_after = Stats.snapshot_ints ctx.stats in
              let fetches = ctx.stats.Stats.fetches - fetches_before in
              let iter_cycles = !(ctx.cycles) - cyc_before in
              let iter_instrs = !(ctx.instrs) - ins_before in
              publish d ~key:!key ~ints_before ~ints_after ~fetches
                ~iter_cycles ~iter_instrs;
              let n_rem = (je - 1 - !(d.k)) / p in
              let m = clamp_iters d ~n_rem ~iter_cycles in
              if m < n_rem then settled := false;
              if m > 0 then begin
                let n = Array.length ints_before in
                let ints_delta =
                  Array.init n (fun i -> ints_after.(i) - ints_before.(i))
                in
                apply_effects d ~ints_delta
                  ~charges:(Array.map (fun c -> c.fa) d.charges)
                  ~lens:(Array.map (fun c -> c.flen) d.charges)
                  ~awake:d.awake.ia ~awake_len:d.awake.ilen ~fetches
                  ~iter_cycles ~iter_instrs ~iters:m ~period:p
              end
            end
            else begin
              (* Not converged yet: the cache may still know this
                 boundary's state (convergence checked first — it's a
                 word compare, the lookup builds a key). *)
              match try_cache d ~buf:d.snap_b ~ids ~p ~je with
              | _, true ->
                  converged := true;
                  settled := !(d.k) + p >= je
              | k2, false ->
                  (match k2 with Some _ -> key := k2 | None -> ());
                  (* Compare the next pair of boundaries. *)
                  let t = d.snap_a in
                  d.snap_a <- d.snap_b;
                  d.snap_b <- t;
                  if live && until () then begin
                    exhausted := true;
                    settled := false
                  end
            end
          end
        end
      done;
      !settled

let advance d ~until =
  let ctx = d.ctx in
  let exec = ctx.exec in
  let nblocks = d.nblocks in
  let regions = d.plan.p_regions in
  let nregions = Array.length regions in
  let pol = ctx.policy in
  let rep = ctx.report in
  let live = until != never in
  let k = ref !(d.k) in
  let stop = ref false in
  let exec_to limit =
    if live then
      while (not !stop) && !k < limit do
        exec !k;
        incr k;
        if until () then stop := true
      done
    else begin
      (* The plain replay loop: no per-block detection state, no
         preemption checks — the scan already said where the regions
         are. *)
      for j = !k to limit - 1 do
        exec j
      done;
      k := limit
    end
  in
  while (not !stop) && !k < nblocks do
    if d.ri >= nregions || d.budget <= 0 then exec_to nblocks
    else begin
      let r = Array.unsafe_get regions d.ri in
      if !k >= r.r_end then d.ri <- d.ri + 1
      else begin
        let p = r.r_period in
        (* The next in-pattern iteration boundary at or after [k]: a
           quantum expiry can park the driver mid-region, and every
           boundary is as good as the first (the pattern slice is
           position-independent and the preceding period is in-pattern
           or scan-verified). *)
        let b =
          if !k <= r.r_start then r.r_start
          else r.r_start + ((!k - r.r_start + p - 1) / p * p)
        in
        if d.settled_ri = d.ri || b + p >= r.r_end then
          (* settled earlier, or too little left to skip even one
             iteration: replay the remainder plainly *)
          exec_to r.r_end
        else begin
          exec_to b;
          if not !stop then begin
            d.k := b;
            let skippable = (((r.r_end - b) / p) - 1) * r.r_p_instrs in
            if skippable >= pol.min_skip_instrs + d.snap_len_hint then begin
              let settled = attempt d ~p ~je:r.r_end ~skippable ~until in
              k := !(d.k);
              if settled then d.settled_ri <- d.ri;
              if live && until () then stop := true
            end
            else begin
              rep.cost_gated <- rep.cost_gated + 1;
              d.settled_ri <- d.ri
            end
          end
        end
      end
    end
  done;
  d.k := !k

let drive d = advance d ~until:never
let run ctx = drive (make ctx)
