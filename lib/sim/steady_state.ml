(* Steady-state loop fast-forward (ROADMAP: "the next 10-100x").

   Hot loops reach cache steady state within a few iterations — the
   dominant-block observation.  Once the machine state at two
   consecutive iteration boundaries of a periodic trace region is
   equal, every remaining in-pattern iteration must reproduce the
   recorded iteration exactly: the trace is the only input, and the
   canonical fingerprint covers everything future behaviour can
   observe.  The engine therefore multiplies the recorded iteration's
   effects by the remaining repetition count instead of replaying them.

   Bit-identity is preserved by replaying each effect in its own
   domain:
   - integer counters are pure sums — snapshot deltas scaled by the
     repetition count ({!Stats.add_scaled_delta});
   - energy buckets are order-sensitive float accumulators — the
     recorded iteration's per-bucket charge sequences are re-added in
     recorded order ({!Wp_energy.Account.replay});
   - the drowsy awake accumulator likewise replays its recorded
     integer increments in order, and touched lines' raw timestamps
     are advanced to exactly where a full replay would leave them.

   Bail-out is structural or checked: the engine only runs on the
   probe-less, schedule-less fast path (probes and resize schedules
   force the reference loop); drowsy timers, stream cursors and RNG
   state are part of the fingerprint, so any cross-iteration
   interaction simply never fingerprints equal and the region is
   replayed normally. *)

type policy = {
  max_period_blocks : int;
  min_skip_instrs : int;
  max_attempts : int;
  snapshot_budget : int;
}

let default_policy =
  {
    max_period_blocks = 1024;
    min_skip_instrs = 2000;
    max_attempts = 24;
    snapshot_budget = 8192;
  }

type report = {
  mutable regions : int;
  mutable recorded_iterations : int;
  mutable converged : int;
  mutable skipped_iterations : int;
  mutable skipped_instrs : int;
}

let create_report () =
  {
    regions = 0;
    recorded_iterations = 0;
    converged = 0;
    skipped_iterations = 0;
    skipped_instrs = 0;
  }

type ctx = {
  policy : policy;
  report : report;
  stats : Stats.t;
  blocks : int array;
  n_ids : int;
  n_instrs_of : int -> int;
  stream_invariant : start:int -> period:int -> bool;
  fingerprint : start:int -> period:int -> add:(int -> unit) -> unit;
  exec : int -> unit;
  set_awake_recorder : (int -> unit) option -> unit;
  drowsy_advance : since:int -> delta:int -> unit;
  drowsy_replay : int array -> len:int -> iters:int -> unit;
  cycles : int ref;
  instrs : int ref;
}

(* Growable int/float buffers; reused across attempts so steady
   operation allocates nothing per snapshot. *)
type ibuf = { mutable ia : int array; mutable ilen : int }
type fbuf = { mutable fa : float array; mutable flen : int }

let ibuf_create n = { ia = Array.make n 0; ilen = 0 }
let ibuf_clear b = b.ilen <- 0

let ibuf_push b x =
  let n = Array.length b.ia in
  if b.ilen = n then begin
    let a = Array.make (2 * n) 0 in
    Array.blit b.ia 0 a 0 n;
    b.ia <- a
  end;
  Array.unsafe_set b.ia b.ilen x;
  b.ilen <- b.ilen + 1

let ibuf_equal x y =
  x.ilen = y.ilen
  &&
  let rec go i =
    i >= x.ilen
    || (Array.unsafe_get x.ia i = Array.unsafe_get y.ia i && go (i + 1))
  in
  go 0

let fbuf_create n = { fa = Array.make n 0.0; flen = 0 }
let fbuf_clear b = b.flen <- 0

let fbuf_push b x =
  let n = Array.length b.fa in
  if b.flen = n then begin
    let a = Array.make (2 * n) 0.0 in
    Array.blit b.fa 0 a 0 n;
    b.fa <- a
  end;
  Array.unsafe_set b.fa b.flen x;
  b.flen <- b.flen + 1

let run ctx =
  let pol = ctx.policy in
  let rep = ctx.report in
  let blocks = ctx.blocks in
  let nblocks = Array.length blocks in
  let last_pos = Array.make ctx.n_ids (-1) in
  (* Patterns proven stream-variant (their data accesses move the
     cursors or draw from the RNG, so no iteration can ever converge),
     remembered as the last rejected period per anchor block id — a
     flat array consulted {e before} the O(period) segment
     verification, so a hot mem-heavy loop pays the scan once, not
     once per iteration (that scan was a 25% tax on loop-free
     mem-heavy benchmarks, which attempt nothing yet detect
     everywhere).  An id rejected at one period and re-candidate at
     another merely re-scans; a forgotten verdict merely re-derives
     it — never a correctness question.  Two slots per id: nested
     loops make one anchor alternate between its inner and outer
     period, and a single slot thrashes. *)
  let rejected_p1 = Array.make ctx.n_ids (-1) in
  let rejected_p2 = Array.make ctx.n_ids (-1) in
  let snap_a = ref (ibuf_create 4096) in
  let snap_b = ref (ibuf_create 4096) in
  let awake = ibuf_create 64 in
  let charges = Array.init 5 (fun _ -> fbuf_create 64) in
  let budget = ref pol.snapshot_budget in
  (* Last observed fingerprint length: lets the detector pre-gate
     candidate regions too small to repay even one snapshot without
     paying for that snapshot to find out (way-memoization's link
     table makes its snapshots ~10x a plain CAM's).  Starts at 0 so
     the first region always measures. *)
  let snap_len_hint = ref 0 in
  let next_attempt = ref 0 in
  let k = ref 0 in

  let record_probe ev =
    match ev with
    | Wp_obs.Probe.Energy { bucket; pj } ->
        fbuf_push charges.(Wp_obs.Probe.bucket_index bucket) pj
    | _ -> ()
  in
  let take_snapshot buf ~start ~period =
    decr budget;
    ibuf_clear buf;
    ctx.fingerprint ~start ~period ~add:(fun x -> ibuf_push buf x)
  in
  (* Execute the block at the cursor, maintaining the last-position
     table the period detector reads. *)
  let step () =
    let kk = !k in
    last_pos.(blocks.(kk)) <- kk;
    ctx.exec kk;
    k := kk + 1
  in

  (* The trace repeats with period [p] over [kk, je).  Execute
     iterations, recording each one's effects, until two consecutive
     boundary fingerprints are equal; then skip the remaining
     repetitions arithmetically.  Iterations are only recorded (and
     only skipped) while a {e full} period plus its terminator's
     lookahead stays inside the pattern: the last block of an
     iteration starting at [s] reads [blocks.(s + p)] to resolve its
     branch, so [s + p < je] is required — the final partial stretch
     is always executed normally. *)
  let attempt ~p ~je ~skippable =
    rep.regions <- rep.regions + 1;
    (* All of a region's snapshots describe one period of the same
       pattern; scan it from the region start (always in bounds — the
       attempt threshold guarantees at least two full periods before
       [je]), not from the moving boundary. *)
    let start = !k in
    take_snapshot !snap_a ~start ~period:p;
    snap_len_hint := !snap_a.ilen;
    let converged = ref false in
    (* Cost gate, now that the fingerprint's actual size is known:
       convergence takes two snapshots at minimum and each one scans
       this many words, so a region whose whole skippable stretch is
       smaller than its own fingerprint is overhead, not speedup
       (schemes differ by 10x in snapshot size — way-memoization's
       link table dwarfs a plain CAM). *)
    let exhausted = ref (skippable < pol.min_skip_instrs + !snap_a.ilen) in
    let attempts = ref 0 in
    while (not !converged) && not !exhausted do
      if !k + p >= je || !attempts >= pol.max_attempts || !budget <= 0 then
        exhausted := true
      else begin
        incr attempts;
        rep.recorded_iterations <- rep.recorded_iterations + 1;
        Array.iter fbuf_clear charges;
        ibuf_clear awake;
        let ints_before = Stats.snapshot_ints ctx.stats in
        let fetches_before = ctx.stats.Stats.fetches in
        let cyc_before = !(ctx.cycles) in
        let ins_before = !(ctx.instrs) in
        Wp_energy.Account.set_probe ctx.stats.Stats.account (Some record_probe);
        ctx.set_awake_recorder (Some (fun aw -> ibuf_push awake aw));
        for _ = 1 to p do
          step ()
        done;
        Wp_energy.Account.set_probe ctx.stats.Stats.account None;
        ctx.set_awake_recorder None;
        take_snapshot !snap_b ~start ~period:p;
        if ibuf_equal !snap_a !snap_b then begin
          converged := true;
          rep.converged <- rep.converged + 1;
          let n_rem = (je - 1 - !k) / p in
          if n_rem > 0 then begin
            let ints_after = Stats.snapshot_ints ctx.stats in
            let fetches_after = ctx.stats.Stats.fetches in
            let cyc_after = !(ctx.cycles) in
            let ins_after = !(ctx.instrs) in
            ctx.drowsy_advance ~since:fetches_before
              ~delta:(n_rem * (fetches_after - fetches_before));
            ctx.drowsy_replay awake.ia ~len:awake.ilen ~iters:n_rem;
            Wp_energy.Account.replay ctx.stats.Stats.account
              ~charges:(Array.map (fun c -> c.fa) charges)
              ~lens:(Array.map (fun c -> c.flen) charges)
              ~iters:n_rem;
            Stats.add_scaled_delta ctx.stats ~before:ints_before
              ~after:ints_after ~times:n_rem;
            ctx.cycles := cyc_after + (n_rem * (cyc_after - cyc_before));
            ctx.instrs := ins_after + (n_rem * (ins_after - ins_before));
            rep.skipped_iterations <- rep.skipped_iterations + n_rem;
            rep.skipped_instrs <-
              rep.skipped_instrs + (n_rem * (ins_after - ins_before));
            k := !k + (n_rem * p)
          end
        end
        else begin
          (* Not converged yet: compare the next pair of boundaries. *)
          let t = !snap_a in
          snap_a := !snap_b;
          snap_b := t
        end
      end
    done
  in

  let max_p = pol.max_period_blocks in
  while !k < nblocks do
    let kk = !k in
    if !budget > 0 && kk >= !next_attempt then begin
      let id = blocks.(kk) in
      let prev = last_pos.(id) in
      if prev >= 0 then begin
        let p = kk - prev in
        if
          p <= max_p
          && kk + p <= nblocks
          && rejected_p1.(id) <> p
          && rejected_p2.(id) <> p
        then begin
          (* Candidate period from the block's previous occurrence:
             verify [kk, kk+p) repeats [kk-p, kk). *)
          let ok = ref true in
          let j = ref 0 in
          while !ok && !j < p do
            if blocks.(kk + !j) <> blocks.(prev + !j) then ok := false
            else incr j
          done;
          if !ok then begin
            if not (ctx.stream_invariant ~start:kk ~period:p) then
              (* Stream-variant patterns can never converge (the RNG
                 or cursors move every iteration); cache the verdict
                 but leave [next_attempt] alone, so attemptable inner
                 loops inside this region still get their chance. *)
            begin
              rejected_p2.(id) <- rejected_p1.(id);
              rejected_p1.(id) <- p
            end
            else begin
              let je = ref (kk + p) in
              while !je < nblocks && blocks.(!je) = blocks.(!je - p) do
                incr je
              done;
              let je = !je in
              let p_instrs = ref 0 in
              for j2 = kk to kk + p - 1 do
                p_instrs := !p_instrs + ctx.n_instrs_of blocks.(j2)
              done;
              let total_iters = (je - kk) / p in
              let skippable = (total_iters - 1) * !p_instrs in
              if skippable >= pol.min_skip_instrs + !snap_len_hint then
                attempt ~p ~je ~skippable;
              (* Attempted or too small either way: this region is
                 settled, don't re-detect inside it. *)
              next_attempt := je
            end
          end
        end
      end
    end;
    if !k = kk then step ()
  done
