(** Trace-driven whole-machine simulation.

    Replays a block trace through the fetch engine, the data-memory
    engine and the core cycle model, and returns the complete
    statistics (counters + energy account + cycles).  The same trace
    replayed under different schemes/configurations yields directly
    comparable runs — the paper's "we always compare equally
    configured machines" protocol (Section 5). *)

val code_base : Wp_isa.Addr.t
(** Where program text is laid out (0x0001_0000). *)

val run :
  config:Config.t ->
  program:Wp_workloads.Codegen.t ->
  layout:Wp_layout.Binary_layout.t ->
  trace:Wp_workloads.Tracer.trace ->
  Stats.t
(** @raise Invalid_argument if the config is invalid. *)

val run_with_resizes :
  schedule:(int * int) list ->
  config:Config.t ->
  program:Wp_workloads.Codegen.t ->
  layout:Wp_layout.Binary_layout.t ->
  trace:Wp_workloads.Tracer.trace ->
  Stats.t
(** Like {!run}, with an OS resize schedule: ascending
    [(trace_block_index, area_bytes)] pairs — when the replay reaches
    that block the way-placement area is resized (paper Section 4.1,
    "even adjusting it during program execution"; the caches are
    flushed at each resize).  Only meaningful for way-placement
    configurations.
    @raise Invalid_argument if the config is invalid, the schedule is
    not ascending, or the scheme is not way-placement. *)

val run_probed :
  probe:Wp_obs.Probe.t ->
  schedule:(int * int) list ->
  config:Config.t ->
  program:Wp_workloads.Codegen.t ->
  layout:Wp_layout.Binary_layout.t ->
  trace:Wp_workloads.Tracer.trace ->
  Stats.t
(** {!run_with_resizes} with an attached probe observing the run's
    full event stream (see {!Wp_obs.Probe}); attach a
    {!Wp_obs.Sampler} to build a timeline.  Results are bit-identical
    with or without a probe — an invariant the differential fuzzer
    checks across the scheme grid.  [schedule] may be empty. *)
