(** Trace-driven whole-machine simulation.

    Replays a block trace through the fetch engine, the data-memory
    engine and the core cycle model, and returns the complete
    statistics (counters + energy account + cycles).  The same trace
    replayed under different schemes/configurations yields directly
    comparable runs — the paper's "we always compare equally
    configured machines" protocol (Section 5).

    Two interchangeable replay loops exist.  The {e reference path}
    retires one instruction at a time and is taken whenever a probe is
    attached, a resize schedule is present, or [reference_only] is
    requested.  The {e fast path} replays precompiled same-line runs
    block-batched ({!Compiled_trace}, {!Fetch_engine.fetch_run}) and is
    taken otherwise.  Both produce exactly equal {!Stats.t}
    ({!Stats.equal}, bit-identical energy) — an invariant enforced by
    the differential fuzzer ([Check.Differ]) and [test_fastpath]. *)

val code_base : Wp_isa.Addr.t
(** Where program text is laid out (0x0001_0000). *)

val set_fastforward_default : bool -> unit
(** Whether fast-path runs engage the steady-state loop fast-forward
    ({!Steady_state}) when the caller does not pass [?fastforward].
    Defaults to [true]: fast-forward is bit-identical to full replay
    (enforced by the differential fuzzer), so there is no
    fidelity-vs-speed trade.  The CLI's [--no-fastforward] flag and the
    differential tests flip this; the setting is process-global and
    atomic. *)

val default_fastforward : unit -> bool
(** The current {!set_fastforward_default} setting — what a run with
    no explicit [fastforward] argument will do.  Other engines honour
    it too (e.g. [Mp.Machine]). *)

val run_compiled :
  ?probe:Wp_obs.Probe.t ->
  ?schedule:(int * int) list ->
  ?reference_only:bool ->
  ?fastforward:bool ->
  ?ff_policy:Steady_state.policy ->
  ?ff_report:Steady_state.report ->
  ?snapshot_cache:Snapshot_cache.t ->
  config:Config.t ->
  trace:Wp_workloads.Tracer.trace ->
  Compiled_trace.t ->
  Stats.t
(** The general entry point, replaying a precompiled trace (which
    carries its program and layout).  Defaults: no probe, empty resize
    schedule, fast path allowed.  The fast path is taken iff no probe
    is attached, the schedule is empty and [reference_only] is false.

    On the fast path, converged hot loops are additionally
    fast-forwarded ({!Steady_state}) when [fastforward] (default: the
    {!set_fastforward_default} setting) is true; the result is
    bit-identical either way.  [ff_policy] tunes the detector;
    [ff_report], if given, accumulates what the engine skipped;
    [snapshot_cache], if given, lets converged iterations be reused
    across regions, runs and sweep cells (keyed on the compiled
    trace's {!Compiled_trace.token} and the full config digest, so
    reuse never crosses worlds).  All four are ignored on the
    reference path.
    @raise Invalid_argument if the config is invalid or the schedule is
    not ascending. *)

val run :
  config:Config.t ->
  program:Wp_workloads.Codegen.t ->
  layout:Wp_layout.Binary_layout.t ->
  trace:Wp_workloads.Tracer.trace ->
  Stats.t
(** {!run_compiled} on a freshly compiled trace; takes the fast path.
    Callers with a {!Runner.prepared} in hand should pass its cached
    compiled trace to {!run_compiled} instead.
    @raise Invalid_argument if the config is invalid. *)

val run_reference :
  config:Config.t ->
  program:Wp_workloads.Codegen.t ->
  layout:Wp_layout.Binary_layout.t ->
  trace:Wp_workloads.Tracer.trace ->
  Stats.t
(** {!run} forced through the per-instruction reference loop, never the
    block-batched fast path.  The two produce exactly equal {!Stats.t}
    ({!Stats.equal}) — the invariant the differential fuzzer and
    [test_fastpath] enforce. *)

val run_with_resizes :
  schedule:(int * int) list ->
  config:Config.t ->
  program:Wp_workloads.Codegen.t ->
  layout:Wp_layout.Binary_layout.t ->
  trace:Wp_workloads.Tracer.trace ->
  Stats.t
(** Like {!run}, with an OS resize schedule: ascending
    [(trace_block_index, area_bytes)] pairs — when the replay reaches
    that block the way-placement area is resized (paper Section 4.1,
    "even adjusting it during program execution"; the caches are
    flushed at each resize).  Only meaningful for way-placement
    configurations.  A non-empty schedule runs the reference path.
    @raise Invalid_argument if the config is invalid, the schedule is
    not ascending, or the scheme is not way-placement. *)

val run_probed :
  probe:Wp_obs.Probe.t ->
  schedule:(int * int) list ->
  config:Config.t ->
  program:Wp_workloads.Codegen.t ->
  layout:Wp_layout.Binary_layout.t ->
  trace:Wp_workloads.Tracer.trace ->
  Stats.t
(** {!run_with_resizes} with an attached probe observing the run's
    full event stream (see {!Wp_obs.Probe}); attach a
    {!Wp_obs.Sampler} to build a timeline.  Probed runs always take the
    reference path; results are bit-identical with or without a probe —
    an invariant the differential fuzzer checks across the scheme grid.
    [schedule] may be empty. *)
