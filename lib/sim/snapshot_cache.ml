type entry = {
  e_fp : int array;
  e_ints : int array;
  e_charges : float array array;
  e_lens : int array;
  e_awake : int array;
  e_fetches : int;
  e_cycles : int;
  e_instrs : int;
}

(* The key is a 63-bit mix of everything that determines an
   iteration's effects, plus the unmixed components themselves: the
   hash indexes the table, and a candidate slot is only a hit after
   the scope, pattern and every fingerprint word compare equal — so a
   hash collision costs a miss (or a shadowed insert), never a wrong
   entry.  Keys are built once per region boundary on the fast path;
   a multiply-xor fold over the words is an order of magnitude cheaper
   than serialising them into a digest buffer. *)
type key = { h : int; scope : string; period : int; ids : int array }

(* An entry plus its LRU clock reading.  The table is small and bounded
   (hundreds of entries), so eviction scans for the minimum tick instead
   of maintaining an intrusive list — insertion is rare (one per newly
   converged region shape) and the scan is cheap next to the simulation
   work a single entry replaces. *)
type slot = { skey : key; entry : entry; mutable tick : int }

type t = {
  lock : Mutex.t;
  table : (int, slot) Hashtbl.t;
  cap : int;
  mutable clock : int;
  mutable lookups : int;
  mutable hits : int;
  mutable inserts : int;
  mutable evictions : int;
}

type counters = {
  lookups : int;
  hits : int;
  inserts : int;
  evictions : int;
  entries : int;
}

let create ?(capacity = 512) () =
  if capacity < 1 then invalid_arg "Snapshot_cache.create: capacity < 1";
  {
    lock = Mutex.create ();
    table = Hashtbl.create (min capacity 64);
    cap = capacity;
    clock = 0;
    lookups = 0;
    hits = 0;
    inserts = 0;
    evictions = 0;
  }

let capacity t = t.cap

let[@inline] mix h x =
  let v = (h lxor x) * 0x100000001B3 in
  v lxor (v lsr 29)

let key ~scope ~period ~ids ~fp ~fp_len =
  let h = ref 0x811C9DC5 in
  for j = 0 to String.length scope - 1 do
    h := mix !h (Char.code (String.unsafe_get scope j))
  done;
  h := mix !h period;
  for j = 0 to period - 1 do
    h := mix !h (Array.unsafe_get ids j)
  done;
  for j = 0 to fp_len - 1 do
    h := mix !h (Array.unsafe_get fp j)
  done;
  { h = !h land max_int; scope; period; ids }

let ids_equal a b =
  Array.length a = Array.length b
  &&
  let rec go j =
    j >= Array.length a
    || (Array.unsafe_get a j = Array.unsafe_get b j && go (j + 1))
  in
  go 0

let key_eq a b =
  a.period = b.period && String.equal a.scope b.scope && ids_equal a.ids b.ids

let fp_matches e ~fp ~fp_len =
  Array.length e.e_fp = fp_len
  &&
  let rec go j =
    j >= fp_len
    || (Array.unsafe_get e.e_fp j = Array.unsafe_get fp j && go (j + 1))
  in
  go 0

let find t ~key ~fp ~fp_len =
  Mutex.lock t.lock;
  t.lookups <- t.lookups + 1;
  let r =
    match Hashtbl.find_opt t.table key.h with
    | Some slot
      when key_eq slot.skey key && fp_matches slot.entry ~fp ~fp_len ->
        t.hits <- t.hits + 1;
        t.clock <- t.clock + 1;
        slot.tick <- t.clock;
        Some slot.entry
    | Some _ | None -> None
  in
  Mutex.unlock t.lock;
  r

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun k slot ->
      match !victim with
      | Some (_, best) when slot.tick >= best -> ()
      | _ -> victim := Some (k, slot.tick))
    t.table;
  match !victim with
  | Some (k, _) ->
      Hashtbl.remove t.table k;
      t.evictions <- t.evictions + 1
  | None -> ()

let add t ~key entry =
  Mutex.lock t.lock;
  (match Hashtbl.find_opt t.table key.h with
  | Some _ -> Hashtbl.remove t.table key.h
  | None -> if Hashtbl.length t.table >= t.cap then evict_lru t);
  t.clock <- t.clock + 1;
  t.inserts <- t.inserts + 1;
  Hashtbl.replace t.table key.h { skey = key; entry; tick = t.clock };
  Mutex.unlock t.lock

let counters t =
  Mutex.lock t.lock;
  let c =
    {
      lookups = t.lookups;
      hits = t.hits;
      inserts = t.inserts;
      evictions = t.evictions;
      entries = Hashtbl.length t.table;
    }
  in
  Mutex.unlock t.lock;
  c

let reset_counters t =
  Mutex.lock t.lock;
  t.lookups <- 0;
  t.hits <- 0;
  t.inserts <- 0;
  t.evictions <- 0;
  Mutex.unlock t.lock
