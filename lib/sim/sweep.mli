(** Parallel sweep engine: the evaluation harness's core workload.

    Every figure, ablation and extension of the paper's evaluation is
    a {e sweep} — a grid of [benchmark x Config.t] jobs, each an
    independent {!Runner.prepare} + {!Simulator.run}.  Jobs share
    nothing mutable (each run builds fresh caches, TLBs and stats), so
    a sweep is embarrassingly parallel; what they {e do} share is
    work: figures reuse each other's baselines and several
    configurations per benchmark reuse one prepared program.

    This module supplies both halves:

    - {b memoisation} — per-benchmark {!Runner.prepared} values and
      per-job {!Stats.t} results are computed once and cached,
      thread-safely, keyed on the {e complete} configuration (every
      [Config.t] field participates in the key, unlike an ad-hoc
      printed key that silently merges configs differing in an
      unlisted field);
    - {b a domain pool} — {!run_batch} deduplicates a job list and
      fans it out over OCaml 5 domains coordinated by a
      [Mutex]/[Condition] work queue.  Results are bit-identical to a
      sequential run and are returned in input order; progress
      callbacks fire on the submitting domain, in completion order.

    A sweep engine is cheap to create and long-lived: create one per
    process and feed it every experiment so baselines dedup across
    figures. *)

(** The generic domain pool the sweep engine runs on, exposed so other
    embarrassingly parallel harnesses (the differential fuzzer, future
    sweeps over non-MiBench inputs) fan out over the same machinery
    instead of growing their own. *)
module Pool : sig
  type 'a progress = 'a -> seconds:float -> completed:int -> total:int -> unit
  (** Called once per completed item: the item, its own wall-clock
      cost, and batch progress.  Invocations are serialised and, when
      the pool is parallel, always run on the domain that called
      {!map} — callbacks may print freely. *)

  val map : workers:int -> ?progress:'a progress -> ('a -> 'b) -> 'a list -> 'b list
  (** [map ~workers f items] computes [List.map f items] on a pool of
      [workers] domains (clamped to at least 1 and at most the item
      count; 1 runs sequentially on the calling domain).  Results are
      returned in input order; progress fires in completion order.  If
      [f] raises, no further items are started and the first exception
      is re-raised on the calling domain after the pool drains —
      all-or-nothing by design; items whose [f] completed before the
      failure are lost from the return value (though side effects,
      e.g. the sweep engine's memo tables, survive).  The pool itself
      never deadlocks on a raising job: every worker domain is joined
      before the exception propagates. *)

  val map_result :
    workers:int ->
    ?progress:'a progress ->
    ('a -> 'b) ->
    'a list ->
    ('b, exn) result list
  (** Per-item error isolation: like {!map} but a raising item becomes
      its own [Error exn] slot and {e does not} stop the cursor or
      poison unrelated items — the contract a request-serving batch
      needs, where one malformed job must not take down its
      batch-mates.  Never raises from [f]'s failures. *)

  (** A persistent domain pool for open-ended workloads: the serve
      daemon's scheduler.  Unlike {!map} (one pool per batch), an
      executor spawns its domains once and consumes submitted thunks
      until {!Executor.shutdown}, which {e drains} every accepted task
      before joining — the graceful-stop guarantee that a shutdown
      mid-burst loses no accepted request. *)
  module Executor : sig
    type t

    val create : ?workers:int -> ?on_error:(exn -> unit) -> unit -> t
    (** [workers] defaults to [Domain.recommended_domain_count ()],
        clamped to at least 1.  A raising task invokes [on_error] (on
        the worker domain) and the worker survives; without it the
        exception is swallowed — an executor task is expected to
        isolate its own failures. *)

    val workers : t -> int

    val submit : t -> (unit -> unit) -> bool
    (** Enqueue a task; [false] (task not accepted) once {!shutdown}
        has begun.  Thread- and domain-safe. *)

    val pending : t -> int
    (** Tasks queued or currently executing. *)

    val shutdown : t -> unit
    (** Stop accepting, run everything already accepted, join the
        domains.  Idempotent from the first caller's perspective;
        concurrent callers all block until the drain completes. *)
  end
end

type job = { benchmark : string; config : Config.t }
(** One simulation: a MiBench benchmark name ({!Wp_workloads.Mibench.find})
    evaluated under one machine configuration. *)

type progress = job Pool.progress
(** Per-job progress for {!run_batch} (see {!Pool.progress}). *)

type t

val create : ?workers:int -> ?progress:progress -> unit -> t
(** A fresh engine with empty caches.  [workers] defaults to
    {!default_workers}; it is clamped to at least 1, and 1 means
    {!run_batch} runs sequentially on the calling domain (no domains
    are spawned). *)

val default_workers : unit -> int
(** [Domain.recommended_domain_count ()] — the hardware's available
    parallelism. *)

val workers : t -> int

val snapshot_cache : t -> Snapshot_cache.t
(** The engine's shared converged-iteration cache: every job this
    engine runs attaches it ({!Runner.run_scheme}'s [snapshot_cache]),
    so a hot loop converged in one sweep cell fast-forwards from its
    first boundary in every later cell replaying the same compiled
    trace under the same configuration.  Scoped keys (trace token +
    config digest) make cross-world reuse impossible; results stay
    bit-identical with or without the cache. *)

val config_key : Config.t -> string
(** A stable key covering every field of the configuration (a digest
    of its runtime representation).  Two configs get the same key iff
    they are structurally equal. *)

val job_key : job -> string
(** [benchmark] + {!config_key} — the memoisation key. *)

val job_label : job -> string
(** Human-readable ["crc x way-placement(16KB) @ 32KB/32w/32B"] for
    progress lines and logs. *)

val dedup : job list -> job list
(** Distinct jobs by {!job_key}, first occurrence order preserved. *)

val with_baselines : job list -> job list
(** Each job followed by its baseline partner (same benchmark, same
    config with the scheme replaced by {!Config.Baseline}), deduped —
    the expansion every normalised figure needs. *)

val prepared : t -> string -> Runner.prepared
(** Memoised {!Runner.prepare} of a benchmark (by MiBench name).
    Thread-safe; concurrent callers of the same benchmark block until
    the first finishes, different benchmarks prepare concurrently.
    @raise Not_found for an unknown benchmark name. *)

val stats : t -> job -> Stats.t
(** Memoised result of the job.  A cache miss computes the run on the
    calling domain (sequentially); {!run_batch} is the parallel way to
    warm the cache. *)

val completed : t -> int
(** Number of distinct jobs simulated so far (cache size). *)

val timeline :
  ?schedule:(int * int) list ->
  ?window_cycles:int ->
  t ->
  job ->
  Stats.t * Wp_obs.Sampler.window list
(** {!Runner.run_timeline} on the engine's memoised prepared benchmark:
    any sweep cell can emit a windowed timeline.  The run itself is not
    cached (a sampler observes one specific run), but its stats are
    bit-identical to {!stats} of the same job. *)

val run_batch : t -> job list -> Stats.t list
(** Deduplicate [jobs], simulate every not-yet-cached one on the
    worker pool, and return the stats of [jobs] {e in input order}
    (duplicates included).  Results are bit-identical to running the
    same jobs sequentially: jobs share no mutable simulation state,
    and memoisation guarantees each distinct job is simulated exactly
    once.  If a job raises, no further jobs are started and the
    exception is re-raised on the calling domain after the pool
    drains. *)
