open Wp_cfg

type mem_op = {
  pos : int;
  write : bool;
  locality : Wp_isa.Instr.data_locality;
}

type block_info = {
  start : Wp_isa.Addr.t;
  n_instrs : int;
  term_branch : bool;
  term_pc : Wp_isa.Addr.t;
  taken_succ : int;
  mem : mem_op array;
  seq_bytes : int;
  stride_bytes : int;
  n_random : int;
}

type plan_block = { runs : int array; run_cycles : int array }
type plan = plan_block array

type t = {
  program : Wp_workloads.Codegen.t;
  layout : Wp_layout.Binary_layout.t;
  token : int;
  starts : int array;
  bodies : Wp_isa.Instr.t array array;
  taken_succs : int array;
  info : block_info array;
  plans_lock : Mutex.t;
  mutable plans : (int * plan) list;
      (** one entry per distinct [line_bytes] seen; tiny in practice *)
}

(* Process-unique identity per compiled trace: snapshot-cache scopes
   key on it, so effects recorded replaying one (program, layout) can
   only ever serve runs replaying the very same compiled trace. *)
let next_token = Atomic.make 0

let make ~(program : Wp_workloads.Codegen.t) ~layout =
  let graph = program.Wp_workloads.Codegen.graph in
  let n = Icfg.num_blocks graph in
  let starts =
    Array.init n (fun id -> Wp_layout.Binary_layout.block_start layout id)
  in
  let bodies = Array.init n (fun id -> (Icfg.block graph id).Basic_block.instrs) in
  let taken_succs =
    Array.init n (fun id ->
        match Icfg.taken_succ graph id with Some b -> b | None -> -1)
  in
  let info =
    Array.init n (fun id ->
        let body = bodies.(id) in
        let nb = Array.length body in
        let mem =
          let acc = ref [] in
          for i = nb - 1 downto 0 do
            let instr = body.(i) in
            match instr.Wp_isa.Instr.opcode with
            | Wp_isa.Opcode.Load ->
                acc :=
                  { pos = i; write = false; locality = instr.Wp_isa.Instr.locality }
                  :: !acc
            | Wp_isa.Opcode.Store ->
                acc :=
                  { pos = i; write = true; locality = instr.Wp_isa.Instr.locality }
                  :: !acc
            | Wp_isa.Opcode.Alu _ | Mac | Branch | Jump | Call | Return | Nop ->
                ()
          done;
          Array.of_list !acc
        in
        let start = starts.(id) in
        (* Per-block data-stream advance totals, for the fast-forward
           detector's loop pre-filter: sequential accesses move the
           stream cursor 4 bytes each, strided accesses by their
           stride, random accesses draw from the RNG. *)
        let seq_bytes = ref 0 and stride_bytes = ref 0 and n_random = ref 0 in
        Array.iter
          (fun m ->
            match m.locality with
            | Wp_isa.Instr.No_data -> ()
            | Wp_isa.Instr.Sequential -> seq_bytes := !seq_bytes + 4
            | Wp_isa.Instr.Strided s -> stride_bytes := !stride_bytes + s
            | Wp_isa.Instr.Random_within _ -> incr n_random)
          mem;
        {
          start;
          n_instrs = nb;
          term_branch =
            nb > 0 && body.(nb - 1).Wp_isa.Instr.opcode = Wp_isa.Opcode.Branch;
          term_pc = start + ((nb - 1) * Wp_isa.Instr.size_bytes);
          taken_succ = taken_succs.(id);
          mem;
          seq_bytes = !seq_bytes;
          stride_bytes = !stride_bytes;
          n_random = !n_random;
        })
  in
  {
    program;
    layout;
    token = Atomic.fetch_and_add next_token 1;
    starts;
    bodies;
    taken_succs;
    info;
    plans_lock = Mutex.create ();
    plans = [];
  }

let program t = t.program
let layout t = t.layout
let token t = t.token
let starts t = t.starts
let bodies t = t.bodies
let taken_succs t = t.taken_succs
let info t = t.info

let matches t ~program ~layout = t.program == program && t.layout == layout

(* Split each block into maximal same-line runs: consecutive pcs whose
   line base is unchanged.  [run_cycles] pre-sums the per-instruction
   execute latencies of the run (the core model's [1 + exec_extra]
   term), so the replay loop adds one int per run instead of one per
   instruction. *)
let compute_plan t ~line_bytes =
  let mask = lnot (line_bytes - 1) in
  Array.init (Array.length t.info) (fun id ->
      let body = t.bodies.(id) in
      let nb = Array.length body in
      if nb = 0 then { runs = [||]; run_cycles = [||] }
      else begin
        let start = t.starts.(id) in
        let runs = ref [] and cycles = ref [] in
        let line = ref (start land mask) in
        let len = ref 0 and cyc = ref 0 in
        for i = 0 to nb - 1 do
          let pc = start + (i * Wp_isa.Instr.size_bytes) in
          let l = pc land mask in
          if l <> !line then begin
            runs := !len :: !runs;
            cycles := !cyc :: !cycles;
            line := l;
            len := 0;
            cyc := 0
          end;
          incr len;
          cyc :=
            !cyc + Wp_isa.Opcode.execute_latency body.(i).Wp_isa.Instr.opcode
        done;
        runs := !len :: !runs;
        cycles := !cyc :: !cycles;
        {
          runs = Array.of_list (List.rev !runs);
          run_cycles = Array.of_list (List.rev !cycles);
        }
      end)

let plan t ~line_bytes =
  if line_bytes <= 0 || line_bytes land (line_bytes - 1) <> 0 then
    invalid_arg "Compiled_trace.plan: line_bytes must be a positive power of two";
  (* Prepared benchmarks are shared across sweep/fuzzer domains, so the
     per-line-size memo is guarded.  The lock is held only around list
     reads/writes, under [Fun.protect] so no exception can leave it
     locked, and never across [compute_plan]: the plan is a pure
     function of [(t, line_bytes)], so two domains racing the first
     call may both compute it, and the re-check under the lock dedups
     them — the first insert wins and both callers return the same
     (structurally identical, now shared) plan. *)
  let locked f =
    Mutex.lock t.plans_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.plans_lock) f
  in
  match locked (fun () -> List.assoc_opt line_bytes t.plans) with
  | Some p -> p
  | None ->
      let p = compute_plan t ~line_bytes in
      locked (fun () ->
          match List.assoc_opt line_bytes t.plans with
          | Some existing -> existing
          | None ->
              t.plans <- (line_bytes, p) :: t.plans;
              p)
