type t = {
  mutable fetches : int;
  mutable same_line_fetches : int;
  mutable wp_fetches : int;
  mutable full_fetches : int;
  mutable icache_hits : int;
  mutable icache_misses : int;
  mutable tag_comparisons : int;
  mutable hint_correct_wp : int;
  mutable hint_correct_normal : int;
  mutable hint_missed_saving : int;
  mutable hint_reaccess : int;
  mutable waypred_correct : int;
  mutable waypred_wrong : int;
  mutable l0_hits : int;
  mutable l0_misses : int;
  mutable drowsy_wakes : int;
  mutable link_follows : int;
  mutable link_writes : int;
  mutable links_invalidated : int;
  mutable itlb_misses : int;
  mutable dtlb_misses : int;
  mutable dcache_accesses : int;
  mutable dcache_misses : int;
  mutable cycles : int;
  mutable retired_instrs : int;
  account : Wp_energy.Account.t;
}

let create () =
  {
    fetches = 0;
    same_line_fetches = 0;
    wp_fetches = 0;
    full_fetches = 0;
    icache_hits = 0;
    icache_misses = 0;
    tag_comparisons = 0;
    hint_correct_wp = 0;
    hint_correct_normal = 0;
    hint_missed_saving = 0;
    hint_reaccess = 0;
    waypred_correct = 0;
    waypred_wrong = 0;
    l0_hits = 0;
    l0_misses = 0;
    drowsy_wakes = 0;
    link_follows = 0;
    link_writes = 0;
    links_invalidated = 0;
    itlb_misses = 0;
    dtlb_misses = 0;
    dcache_accesses = 0;
    dcache_misses = 0;
    cycles = 0;
    retired_instrs = 0;
    account = Wp_energy.Account.create ();
  }

(* Integer-counter snapshots for the fast-forward engine: counters are
   pure sums, so [k] skipped loop iterations contribute exactly [k]
   times the recorded iteration's delta.  The array order here and in
   [add_scaled_delta] must match; both enumerate the mutable int fields
   in declaration order. *)
let snapshot_ints t =
  [|
    t.fetches;
    t.same_line_fetches;
    t.wp_fetches;
    t.full_fetches;
    t.icache_hits;
    t.icache_misses;
    t.tag_comparisons;
    t.hint_correct_wp;
    t.hint_correct_normal;
    t.hint_missed_saving;
    t.hint_reaccess;
    t.waypred_correct;
    t.waypred_wrong;
    t.l0_hits;
    t.l0_misses;
    t.drowsy_wakes;
    t.link_follows;
    t.link_writes;
    t.links_invalidated;
    t.itlb_misses;
    t.dtlb_misses;
    t.dcache_accesses;
    t.dcache_misses;
    t.cycles;
    t.retired_instrs;
  |]

let add_scaled_delta t ~before ~after ~times =
  if Array.length before <> 25 || Array.length after <> 25 then
    invalid_arg "Stats.add_scaled_delta: snapshots must come from snapshot_ints";
  let d i = times * (after.(i) - before.(i)) in
  t.fetches <- t.fetches + d 0;
  t.same_line_fetches <- t.same_line_fetches + d 1;
  t.wp_fetches <- t.wp_fetches + d 2;
  t.full_fetches <- t.full_fetches + d 3;
  t.icache_hits <- t.icache_hits + d 4;
  t.icache_misses <- t.icache_misses + d 5;
  t.tag_comparisons <- t.tag_comparisons + d 6;
  t.hint_correct_wp <- t.hint_correct_wp + d 7;
  t.hint_correct_normal <- t.hint_correct_normal + d 8;
  t.hint_missed_saving <- t.hint_missed_saving + d 9;
  t.hint_reaccess <- t.hint_reaccess + d 10;
  t.waypred_correct <- t.waypred_correct + d 11;
  t.waypred_wrong <- t.waypred_wrong + d 12;
  t.l0_hits <- t.l0_hits + d 13;
  t.l0_misses <- t.l0_misses + d 14;
  t.drowsy_wakes <- t.drowsy_wakes + d 15;
  t.link_follows <- t.link_follows + d 16;
  t.link_writes <- t.link_writes + d 17;
  t.links_invalidated <- t.links_invalidated + d 18;
  t.itlb_misses <- t.itlb_misses + d 19;
  t.dtlb_misses <- t.dtlb_misses + d 20;
  t.dcache_accesses <- t.dcache_accesses + d 21;
  t.dcache_misses <- t.dcache_misses + d 22;
  t.cycles <- t.cycles + d 23;
  t.retired_instrs <- t.retired_instrs + d 24

let icache_energy_pj t = Wp_energy.Account.icache_pj t.account
let total_energy_pj t = Wp_energy.Account.total_pj t.account

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

let icache_miss_rate t = ratio t.icache_misses t.fetches
let same_line_rate t = ratio t.same_line_fetches t.fetches

let hint_accuracy t =
  let consulted =
    t.hint_correct_wp + t.hint_correct_normal + t.hint_missed_saving
    + t.hint_reaccess
  in
  if consulted = 0 then 1.0
  else ratio (t.hint_correct_wp + t.hint_correct_normal) consulted

(* Field tables drive [equal] and [pp_diff] so the two can never
   disagree about which fields exist; a counter added to [t] must be
   added here (the differential tests cross-check totals, so an
   omission shows up as a conservation-law failure, not silence). *)
let int_fields =
  [
    ("fetches", fun t -> t.fetches);
    ("same_line_fetches", fun t -> t.same_line_fetches);
    ("wp_fetches", fun t -> t.wp_fetches);
    ("full_fetches", fun t -> t.full_fetches);
    ("icache_hits", fun t -> t.icache_hits);
    ("icache_misses", fun t -> t.icache_misses);
    ("tag_comparisons", fun t -> t.tag_comparisons);
    ("hint_correct_wp", fun t -> t.hint_correct_wp);
    ("hint_correct_normal", fun t -> t.hint_correct_normal);
    ("hint_missed_saving", fun t -> t.hint_missed_saving);
    ("hint_reaccess", fun t -> t.hint_reaccess);
    ("waypred_correct", fun t -> t.waypred_correct);
    ("waypred_wrong", fun t -> t.waypred_wrong);
    ("l0_hits", fun t -> t.l0_hits);
    ("l0_misses", fun t -> t.l0_misses);
    ("drowsy_wakes", fun t -> t.drowsy_wakes);
    ("link_follows", fun t -> t.link_follows);
    ("link_writes", fun t -> t.link_writes);
    ("links_invalidated", fun t -> t.links_invalidated);
    ("itlb_misses", fun t -> t.itlb_misses);
    ("dtlb_misses", fun t -> t.dtlb_misses);
    ("dcache_accesses", fun t -> t.dcache_accesses);
    ("dcache_misses", fun t -> t.dcache_misses);
    ("cycles", fun t -> t.cycles);
    ("retired_instrs", fun t -> t.retired_instrs);
  ]

let energy_fields =
  [
    ("icache_pj", fun t -> Wp_energy.Account.icache_pj t.account);
    ("itlb_pj", fun t -> Wp_energy.Account.itlb_pj t.account);
    ("dcache_pj", fun t -> Wp_energy.Account.dcache_pj t.account);
    ("memory_pj", fun t -> Wp_energy.Account.memory_pj t.account);
    ("core_pj", fun t -> Wp_energy.Account.core_pj t.account);
  ]

let equal a b =
  List.for_all (fun (_, f) -> f a = f b) int_fields
  && List.for_all (fun (_, f) -> Float.equal (f a) (f b)) energy_fields

let pp_diff ppf (a, b) =
  let diffs =
    List.filter_map
      (fun (name, f) ->
        if f a = f b then None
        else Some (Printf.sprintf "%s: %d <> %d" name (f a) (f b)))
      int_fields
    @ List.filter_map
        (fun (name, f) ->
          if Float.equal (f a) (f b) then None
          else Some (Printf.sprintf "%s: %.17g <> %.17g" name (f a) (f b)))
        energy_fields
  in
  match diffs with
  | [] -> Format.fprintf ppf "(no differing fields)"
  | diffs ->
      Format.fprintf ppf "@[<v>%a@]"
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut Format.pp_print_string)
        diffs

let pp_brief ppf t =
  Format.fprintf ppf
    "fetches=%d (SL %.1f%%, miss %.3f%%) cycles=%d E(icache)=%.0fpJ"
    t.fetches
    (100.0 *. same_line_rate t)
    (100.0 *. icache_miss_rate t)
    t.cycles (icache_energy_pj t)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>fetches: %d (same-line %d, way-placed %d, full %d)@,\
     i-cache: %d hits / %d misses (%.4f%% miss), %d tag comparisons@,\
     hint: %d/%d correct wp/normal, %d missed, %d re-accesses@,\
     links: %d follows, %d writes, %d invalidated@,\
     tlb misses: i=%d d=%d; d-cache: %d accesses, %d misses@,\
     cycles: %d (IPC %.3f); %a@]"
    t.fetches t.same_line_fetches t.wp_fetches t.full_fetches t.icache_hits
    t.icache_misses
    (100.0 *. icache_miss_rate t)
    t.tag_comparisons t.hint_correct_wp t.hint_correct_normal
    t.hint_missed_saving t.hint_reaccess t.link_follows t.link_writes
    t.links_invalidated t.itlb_misses t.dtlb_misses t.dcache_accesses
    t.dcache_misses t.cycles
    (ratio t.retired_instrs t.cycles)
    Wp_energy.Account.pp t.account
