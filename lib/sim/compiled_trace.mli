(** Per-(program, layout) precompiled replay tables for the simulator.

    The reference replay loop re-derives block start addresses,
    instruction records and line splits on every visit.  A compiled
    trace computes them once: per basic block, the flat lookup tables
    shared by both simulator paths ([starts]/[bodies]/[taken_succs]),
    plus the fast path's block summary ([block_info]: terminator kind,
    memory-op positions) and, per cache-line size, the {e micro-trace
    plan} — each block folded into maximal same-line runs with
    pre-summed execute latencies, so the batched loop does no per-fetch
    div/mod and no per-instruction record chasing.

    A compiled trace is immutable after {!make} except for the
    line-size-keyed plan memo, which is mutex-guarded: prepared
    benchmarks (and their compiled traces) are shared across sweep and
    fuzzer domains. *)

type mem_op = {
  pos : int;  (** instruction index inside the block *)
  write : bool;
  locality : Wp_isa.Instr.data_locality;
}

type block_info = {
  start : Wp_isa.Addr.t;
  n_instrs : int;
  term_branch : bool;  (** terminator is a conditional branch *)
  term_pc : Wp_isa.Addr.t;  (** pc of the terminator *)
  taken_succ : int;  (** taken successor block id, [-1] if none *)
  mem : mem_op array;  (** loads/stores in program order *)
  seq_bytes : int;  (** data-stream sequential-cursor advance, bytes *)
  stride_bytes : int;  (** data-stream strided-cursor advance, bytes *)
  n_random : int;  (** random-locality accesses (RNG draws) *)
}

type plan_block = {
  runs : int array;
      (** maximal same-line run lengths, in order; sums to [n_instrs] *)
  run_cycles : int array;
      (** per run: summed execute latencies (base retire cycles) *)
}

type plan = plan_block array
(** indexed by block id, for one cache-line size *)

type t

val make :
  program:Wp_workloads.Codegen.t -> layout:Wp_layout.Binary_layout.t -> t

val matches :
  t -> program:Wp_workloads.Codegen.t -> layout:Wp_layout.Binary_layout.t -> bool
(** Physical identity with the compiled program/layout — the sanity
    check guarding a caller-supplied compiled trace. *)

val program : t -> Wp_workloads.Codegen.t
val layout : t -> Wp_layout.Binary_layout.t

val token : t -> int
(** Process-unique identity of this compiled trace, assigned at
    {!make}.  {!Snapshot_cache} scopes embed it, so converged-iteration
    effects recorded against one (program, layout) can only serve runs
    replaying the same compiled trace — sharing across sweep cells and
    serve requests happens exactly when they share the prepared
    benchmark. *)

val starts : t -> int array
(** Block start address per block id. *)

val bodies : t -> Wp_isa.Instr.t array array
(** Instruction array per block id. *)

val taken_succs : t -> int array
(** Taken successor per block id, [-1] if none. *)

val info : t -> block_info array

val plan : t -> line_bytes:int -> plan
(** The micro-trace plan for one line size, computed on first request
    and memoised (thread-safe; exception-safe — the memo lock is never
    held across the computation).  Domains racing the first request for
    one line size may each compute the plan, but the memo dedups the
    inserts: all callers get the same shared plan.
    @raise Invalid_argument unless [line_bytes] is a positive power of
    two. *)
