(** The instruction-fetch path: I-TLB + I-cache under one of the three
    schemes (paper Sections 2 and 4).

    Per fetch the engine decides the access mode:
    - {b same-line}: the address shares a line with the previous fetch
      and the scheme elides tag checks (way-placement and
      way-memoization do; the baseline never does) — the tag side stays
      off, only a data word is read;
    - {b way-placed}: the way-hint bit predicted a way-placement-area
      access and the I-TLB confirms it — a single way is searched, and
      on a miss the line is filled into the way named by the low tag
      bits;
    - {b hint re-access}: the hint predicted way-placed but the page is
      not — the single-way probe is wasted, a full access follows, and
      one penalty cycle is charged (Section 4.1, second scenario);
    - {b full}: everything else searches all ways.

    All energy flows into the run's {!Stats.t} account. *)

type t

val create : ?probe:Wp_obs.Probe.t -> Config.t -> code_base:Wp_isa.Addr.t -> t
(** [probe] observes every fetch-path event (fetch kinds, hits/misses,
    tag comparisons, CAM searches, hint outcomes, TLB misses, resizes,
    flushes) at the exact sites where the corresponding {!Stats.t}
    counters are bumped; simulation results are bit-identical with or
    without it.
    @raise Invalid_argument if the configuration fails
    {!Config.validate}. *)

val fetch : t -> Stats.t -> Wp_isa.Addr.t -> int
(** Fetch one instruction; returns the stall in cycles beyond the base
    fetch cycle (0 on an undisturbed hit). *)

val fetch_run : t -> Stats.t -> Wp_isa.Addr.t -> n:int -> int
(** Fetch [n] consecutive instructions starting at [addr], {e all
    within one cache line} (the caller — a {!Compiled_trace} plan —
    guarantees this); returns the summed stall.  Bit-identical
    {!Stats.t} effects to [n] successive {!fetch} calls: the head goes
    through the generic path, the same-line tail is batched per scheme
    (or falls back to per-fetch calls where batching has no specialised
    form).  Probed engines always take the per-fetch fallback, so the
    event stream is unchanged too.
    @raise Invalid_argument if [n <= 0]. *)

val reset_stream : t -> unit
(** Forget the previous-fetch context (used at simulation start and by
    tests); cache contents are preserved. *)

val flush : t -> unit
(** Cold caches, TLB and hint — required when the OS resizes the
    way-placement area mid-run (see {!Wayplace.Area}). *)

val flush_tlb : t -> unit
(** Context-switch TLB shootdown: invalidate every I-TLB entry (the
    modelled core has no ASIDs) and drop the previous-fetch stream
    context.  Cache contents survive — under multiprogramming,
    processes deliberately pollute each other's ways. *)

val set_window : t -> base:Wp_isa.Addr.t -> area_bytes:int -> unit
(** Retarget the way-placed window — the [area_bytes] starting at
    [base] whose pages carry the way-placement TLB bit — without
    flushing anything; the multiprogramming layer calls this per
    process at dispatch ([area_bytes = 0] for a process with no placed
    code).  A no-op on non-way-placement configurations.  Callers
    changing address spaces must also {!flush_tlb}: already-resident
    TLB entries keep the bits of the window they were filled under.
    @raise Invalid_argument if [area_bytes < 0]. *)

val resize_area : t -> area_bytes:int -> unit
(** Change the way-placement area size at run time, as the OS may
    (paper Section 4.1).  The I-cache, I-TLB and way-hint bit are
    flushed: existing placements and way-placement bits are stale for
    the new area.
    @raise Invalid_argument on non-way-placement configurations or a
    non-positive size. *)

val fingerprint : t -> now:int -> add:(int -> unit) -> unit
(** Emit a canonical fingerprint of the whole fetch path (scheme
    caches, way-placement area + hint, I-TLB, drowsy wake state at
    fetch-tick [now], previous-fetch context) for the steady-state
    fast-forward detector.  Equal fingerprints at two points with
    identical upcoming fetch sequences imply identical future counters,
    stalls and energy charges. *)

val set_drowsy_recorder : t -> (int -> unit) option -> unit
(** Install (or clear) the drowsy awake-increment recorder
    ({!Wp_cache.Drowsy.set_recorder}); a no-op without a drowsy
    policy. *)

val drowsy_advance_touched : t -> since:int -> delta:int -> unit
(** {!Wp_cache.Drowsy.advance_touched} on the drowsy state, if any —
    the fast-forward materialisation step. *)

val drowsy_replay_awake : t -> int array -> len:int -> iters:int -> unit
(** {!Wp_cache.Drowsy.replay_awake} on the drowsy state, if any. *)

val drowsy_rebase : t -> old_now:int -> new_now:int -> unit
(** {!Wp_cache.Drowsy.rebase} on the drowsy state, if any — the
    multiprogramming layer's clock handover when the charging process
    (whose fetch counter is the drowsy clock) changes at a context
    switch under the shared-drowsy policy. *)

val drowsy_sleep_all : t -> now:int -> unit
(** {!Wp_cache.Drowsy.sleep_all} on the drowsy state, if any — the
    flush-on-switch drowsy policy. *)

val finalize : ?now_fetches:int -> t -> Stats.t -> cycles:int -> unit
(** Charge end-of-run leakage energy (a no-op unless the configuration
    enabled leakage accounting).  [now_fetches] overrides the drowsy
    clock reading (defaults to [stats.fetches]) for callers charging
    into a [Stats.t] that did not count the fetches. *)

val way_placed_addr : t -> Wp_isa.Addr.t -> bool
(** Whether an address falls inside the configured way-placement area
    (false for baseline and way-memoization configs). *)
