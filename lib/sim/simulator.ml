open Wp_cfg

let code_base = 0x0001_0000

let run_impl ~probe ~schedule:resize_schedule ~(config : Config.t)
    ~(program : Wp_workloads.Codegen.t) ~layout
    ~(trace : Wp_workloads.Tracer.trace) =
  (let rec ascending = function
     | (a, _) :: ((b, _) :: _ as rest) ->
         if b <= a then
           invalid_arg "Simulator.run: resize schedule must be ascending"
         else ascending rest
     | [ _ ] | [] -> ()
   in
   ascending resize_schedule);
  let graph = program.Wp_workloads.Codegen.graph in
  let stats = Stats.create () in
  Wp_energy.Account.set_probe stats.Stats.account probe;
  let engine = Fetch_engine.create ?probe config ~code_base in
  let dmem = Dmem.create ?probe config in
  let core =
    Wp_pipeline.Core_model.create ~btb_entries:config.btb_entries
      ~mispredict_penalty:config.mispredict_penalty ?probe ()
  in
  let data =
    Data_stream.create ~seed:(program.Wp_workloads.Codegen.spec.Wp_workloads.Spec.seed lxor 0xDA7A)
  in
  (* Per-block lookup tables, indexed by block id. *)
  let n = Icfg.num_blocks graph in
  let starts = Array.init n (fun id -> Wp_layout.Binary_layout.block_start layout id) in
  let bodies = Array.init n (fun id -> (Icfg.block graph id).Basic_block.instrs) in
  let taken_succs =
    Array.init n (fun id ->
        match Icfg.taken_succ graph id with Some b -> b | None -> -1)
  in
  let blocks = trace.Wp_workloads.Tracer.blocks in
  let nblocks = Array.length blocks in
  let pending_resizes = ref resize_schedule in
  for k = 0 to nblocks - 1 do
    (match !pending_resizes with
    | (at, area_bytes) :: rest when at <= k ->
        Fetch_engine.resize_area engine ~area_bytes;
        pending_resizes := rest
    | (_, _) :: _ | [] -> ());
    let id = blocks.(k) in
    let start = starts.(id) in
    let body = bodies.(id) in
    let nb = Array.length body in
    for i = 0 to nb - 1 do
      let pc = start + (i * Wp_isa.Instr.size_bytes) in
      let fetch_stall = Fetch_engine.fetch engine stats pc in
      let instr = body.(i) in
      let opcode = instr.Wp_isa.Instr.opcode in
      let dmem_stall =
        match opcode with
        | Wp_isa.Opcode.Load ->
            Dmem.access dmem stats (Data_stream.next data instr.Wp_isa.Instr.locality)
              ~write:false
        | Wp_isa.Opcode.Store ->
            Dmem.access dmem stats (Data_stream.next data instr.Wp_isa.Instr.locality)
              ~write:true
        | Wp_isa.Opcode.Alu _ | Mac | Branch | Jump | Call | Return | Nop -> 0
      in
      let taken =
        match opcode with
        | Wp_isa.Opcode.Branch ->
            i = nb - 1 && k + 1 < nblocks && blocks.(k + 1) = taken_succs.(id)
        | Wp_isa.Opcode.Jump | Call | Return | Alu _ | Mac | Load | Store | Nop
          ->
            false
      in
      Wp_pipeline.Core_model.retire core ~pc ~opcode ~fetch_stall ~dmem_stall
        ~taken
    done
  done;
  stats.Stats.cycles <- Wp_pipeline.Core_model.cycles core;
  Fetch_engine.finalize engine stats ~cycles:stats.Stats.cycles;
  stats.Stats.retired_instrs <- Wp_pipeline.Core_model.instructions core;
  Wp_energy.Account.add_core stats.Stats.account
    (config.energy.Wp_energy.Params.core_rest_pj_per_cycle
    *. float_of_int stats.Stats.cycles);
  (* The stats outlive this run; don't let them keep emitting into a
     sampler that considers the run finished. *)
  Wp_energy.Account.set_probe stats.Stats.account None;
  stats

let run_probed ~probe ~schedule ~config ~program ~layout ~trace =
  run_impl ~probe:(Some probe) ~schedule ~config ~program ~layout ~trace

let run_with_resizes ~schedule ~config ~program ~layout ~trace =
  run_impl ~probe:None ~schedule ~config ~program ~layout ~trace

let run ~config ~program ~layout ~trace =
  run_impl ~probe:None ~schedule:[] ~config ~program ~layout ~trace
