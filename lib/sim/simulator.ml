let code_base = 0x0001_0000

(* Fast-forward is on by default: it is bit-identical to full replay
   (the differ and fuzz corpus enforce this), so there is no
   fidelity-vs-speed trade.  The CLI's [--no-fastforward] escape hatch
   and the differential tests flip this; an [Atomic.t] because prepared
   benchmarks run from many domains. *)
let fastforward_default = Atomic.make true
let set_fastforward_default b = Atomic.set fastforward_default b
let default_fastforward () = Atomic.get fastforward_default

(* The per-instruction reference loop: fetch, data access, retire — one
   instruction at a time through the core model.  This is the
   definition of the machine's behaviour; the fast path below must
   reproduce its Stats bit-for-bit. *)
let run_reference_loop ~probe ~resize_schedule ~(config : Config.t) ~compiled
    ~(trace : Wp_workloads.Tracer.trace) ~(stats : Stats.t) ~engine ~dmem ~data
    =
  let core =
    Wp_pipeline.Core_model.create ~btb_entries:config.btb_entries
      ~mispredict_penalty:config.mispredict_penalty ?probe ()
  in
  let starts = Compiled_trace.starts compiled in
  let bodies = Compiled_trace.bodies compiled in
  let taken_succs = Compiled_trace.taken_succs compiled in
  let blocks = trace.Wp_workloads.Tracer.blocks in
  let nblocks = Array.length blocks in
  let pending_resizes = ref resize_schedule in
  for k = 0 to nblocks - 1 do
    (match !pending_resizes with
    | (at, area_bytes) :: rest when at <= k ->
        Fetch_engine.resize_area engine ~area_bytes;
        pending_resizes := rest
    | (_, _) :: _ | [] -> ());
    let id = blocks.(k) in
    let start = starts.(id) in
    let body = bodies.(id) in
    let nb = Array.length body in
    for i = 0 to nb - 1 do
      let pc = start + (i * Wp_isa.Instr.size_bytes) in
      let fetch_stall = Fetch_engine.fetch engine stats pc in
      let instr = body.(i) in
      let opcode = instr.Wp_isa.Instr.opcode in
      let dmem_stall =
        match opcode with
        | Wp_isa.Opcode.Load ->
            Dmem.access dmem stats (Data_stream.next data instr.Wp_isa.Instr.locality)
              ~write:false
        | Wp_isa.Opcode.Store ->
            Dmem.access dmem stats (Data_stream.next data instr.Wp_isa.Instr.locality)
              ~write:true
        | Wp_isa.Opcode.Alu _ | Mac | Branch | Jump | Call | Return | Nop -> 0
      in
      let taken =
        match opcode with
        | Wp_isa.Opcode.Branch ->
            i = nb - 1 && k + 1 < nblocks && blocks.(k + 1) = taken_succs.(id)
        | Wp_isa.Opcode.Jump | Call | Return | Alu _ | Mac | Load | Store | Nop
          ->
            false
      in
      Wp_pipeline.Core_model.retire core ~pc ~opcode ~fetch_stall ~dmem_stall
        ~taken
    done
  done;
  stats.Stats.cycles <- Wp_pipeline.Core_model.cycles core;
  Fetch_engine.finalize engine stats ~cycles:stats.Stats.cycles;
  stats.Stats.retired_instrs <- Wp_pipeline.Core_model.instructions core

(* The block-batched fast path: same-line runs fetched in one
   [Fetch_engine.fetch_run] call each, memory ops replayed afterwards in
   program order, cycles accumulated from the plan's pre-summed execute
   latencies.  Safe reorderings only: the fetch and data engines share
   no state, and the one energy bucket both touch (memory) only ever
   receives the single constant [memory_access_pj], so moving a run's
   fetch charges ahead of its data charges leaves every bucket's
   accumulation bit-identical.  Branches exist only as block terminators
   (Basic_block validates this), so the predictor runs once per block. *)
let run_fast ~(config : Config.t) ~compiled
    ~(trace : Wp_workloads.Tracer.trace) ~(stats : Stats.t) ~engine ~dmem ~data
    ~ff =
  let info = Compiled_trace.info compiled in
  let plan =
    Compiled_trace.plan compiled ~line_bytes:config.icache.Wp_cache.Geometry.line_bytes
  in
  let btb = Wp_pipeline.Btb.create ~entries:config.btb_entries in
  let mispredict_penalty = config.mispredict_penalty in
  let blocks = trace.Wp_workloads.Tracer.blocks in
  let nblocks = Array.length blocks in
  let cycles = ref 0 in
  let instrs = ref 0 in
  (* One trace position: the unit both the plain loop and the
     fast-forward driver execute. *)
  let exec_block k =
    let id = blocks.(k) in
    let b = info.(id) in
    let pb = plan.(id) in
    let runs = pb.Compiled_trace.runs in
    let run_cycles = pb.Compiled_trace.run_cycles in
    let mem = b.Compiled_trace.mem in
    let n_mem = Array.length mem in
    let pc = ref b.Compiled_trace.start in
    let off = ref 0 in
    let mi = ref 0 in
    for r = 0 to Array.length runs - 1 do
      let len = runs.(r) in
      let fetch_stall = Fetch_engine.fetch_run engine stats !pc ~n:len in
      cycles := !cycles + run_cycles.(r) + fetch_stall;
      let run_end = !off + len in
      while !mi < n_mem && mem.(!mi).Compiled_trace.pos < run_end do
        let m = mem.(!mi) in
        cycles :=
          !cycles
          + Dmem.access dmem stats
              (Data_stream.next data m.Compiled_trace.locality)
              ~write:m.Compiled_trace.write;
        incr mi
      done;
      off := run_end;
      pc := !pc + (len * Wp_isa.Instr.size_bytes)
    done;
    instrs := !instrs + b.Compiled_trace.n_instrs;
    if b.Compiled_trace.term_branch then begin
      let taken =
        k + 1 < nblocks && blocks.(k + 1) = b.Compiled_trace.taken_succ
      in
      let predicted =
        Wp_pipeline.Btb.predict_taken btb b.Compiled_trace.term_pc
      in
      Wp_pipeline.Btb.update btb b.Compiled_trace.term_pc ~taken;
      if predicted <> taken then cycles := !cycles + mispredict_penalty
    end
  in
  (match ff with
  | None ->
      for k = 0 to nblocks - 1 do
        exec_block k
      done
  | Some (policy, report, cache) ->
      (* The cache scope pins the world an entry was recorded in: the
         compiled trace's identity and the whole configuration (energy
         parameters and latencies are deliberately not fingerprinted —
         they are constants of a run, so they must be constants of the
         key).  Computed only when a cache is actually attached. *)
      let cache_scope =
        match cache with
        | None -> ""
        | Some _ ->
            Printf.sprintf "%d/%s" (Compiled_trace.token compiled)
              (Digest.string (Marshal.to_string config []))
      in
      let ctx =
        {
          Steady_state.policy;
          report;
          stats;
          blocks;
          n_ids = Array.length info;
          n_instrs_of = (fun id -> info.(id).Compiled_trace.n_instrs);
          stream_invariant =
            (fun ~start ~period ->
              let seq = ref 0 and stride = ref 0 and rand = ref 0 in
              for j = start to start + period - 1 do
                let b = info.(blocks.(j)) in
                seq := !seq + b.Compiled_trace.seq_bytes;
                stride := !stride + b.Compiled_trace.stride_bytes;
                rand := !rand + b.Compiled_trace.n_random
              done;
              Data_stream.advance_invariant ~seq_bytes:!seq
                ~stride_bytes:!stride ~n_random:!rand);
          fingerprint =
            (fun ~start ~period ~add ->
              Fetch_engine.fingerprint engine ~now:stats.Stats.fetches ~add;
              (* A pattern with no memory operations at all never calls
                 into the data side: its state is neither read nor
                 written across the region, so it cannot distinguish
                 boundaries — leave it out of the snapshot (the
                 dominant cost for pure-compute loops). *)
              let period_mem = ref 0 in
              for j = start to start + period - 1 do
                period_mem :=
                  !period_mem
                  + Array.length info.(blocks.(j)).Compiled_trace.mem
              done;
              if !period_mem > 0 then begin
                Dmem.fingerprint dmem ~add;
                Data_stream.fingerprint data ~add
              end;
              Wp_pipeline.Btb.fingerprint btb ~add);
          exec = exec_block;
          set_awake_recorder = Fetch_engine.set_drowsy_recorder engine;
          drowsy_advance =
            (fun ~since ~delta ->
              Fetch_engine.drowsy_advance_touched engine ~since ~delta);
          drowsy_replay =
            (fun a ~len ~iters ->
              Fetch_engine.drowsy_replay_awake engine a ~len ~iters);
          cycles;
          instrs;
          cache;
          cache_scope;
          cycle_headroom = None;
        }
      in
      (* The pre-scan decides engagement up front: a patternless trace
         replays through the same bare loop as the no-FF path, so
         fast-forward costs it nothing. *)
      let drv = Steady_state.make ctx in
      if Steady_state.engaged drv then Steady_state.drive drv
      else
        for k = 0 to nblocks - 1 do
          exec_block k
        done);
  stats.Stats.cycles <- !cycles;
  Fetch_engine.finalize engine stats ~cycles:!cycles;
  stats.Stats.retired_instrs <- !instrs

let run_compiled ?probe ?(schedule = []) ?(reference_only = false)
    ?fastforward ?(ff_policy = Steady_state.default_policy) ?ff_report
    ?snapshot_cache ~(config : Config.t) ~(trace : Wp_workloads.Tracer.trace)
    compiled =
  let resize_schedule = schedule in
  (let rec ascending = function
     | (a, _) :: ((b, _) :: _ as rest) ->
         if b <= a then
           invalid_arg "Simulator.run: resize schedule must be ascending"
         else ascending rest
     | [ _ ] | [] -> ()
   in
   ascending resize_schedule);
  let program = Compiled_trace.program compiled in
  let stats = Stats.create () in
  Wp_energy.Account.set_probe stats.Stats.account probe;
  let engine = Fetch_engine.create ?probe config ~code_base in
  let dmem = Dmem.create ?probe config in
  let data =
    Data_stream.create ~seed:(program.Wp_workloads.Codegen.spec.Wp_workloads.Spec.seed lxor 0xDA7A)
  in
  (match (probe, resize_schedule, reference_only) with
  | None, [], false ->
      (* Fast-forward only ever engages here: probes, resize schedules
         and reference runs all take the per-instruction loop below, so
         those bail-out conditions are structural. *)
      let ff_enabled =
        match fastforward with
        | Some b -> b
        | None -> Atomic.get fastforward_default
      in
      let ff =
        if not ff_enabled then None
        else
          Some
            ( ff_policy,
              (match ff_report with
              | Some r -> r
              | None -> Steady_state.create_report ()),
              snapshot_cache )
      in
      run_fast ~config ~compiled ~trace ~stats ~engine ~dmem ~data ~ff
  | _ ->
      run_reference_loop ~probe ~resize_schedule ~config ~compiled ~trace
        ~stats ~engine ~dmem ~data);
  Wp_energy.Account.add_core stats.Stats.account
    (config.energy.Wp_energy.Params.core_rest_pj_per_cycle
    *. float_of_int stats.Stats.cycles);
  (* The stats outlive this run; don't let them keep emitting into a
     sampler that considers the run finished. *)
  Wp_energy.Account.set_probe stats.Stats.account None;
  stats

let run_probed ~probe ~schedule ~config ~program ~layout ~trace =
  run_compiled ~probe ~schedule ~config ~trace
    (Compiled_trace.make ~program ~layout)

let run_with_resizes ~schedule ~config ~program ~layout ~trace =
  run_compiled ~schedule ~config ~trace (Compiled_trace.make ~program ~layout)

let run_reference ~config ~program ~layout ~trace =
  run_compiled ~reference_only:true ~config ~trace
    (Compiled_trace.make ~program ~layout)

let run ~config ~program ~layout ~trace =
  run_compiled ~config ~trace (Compiled_trace.make ~program ~layout)
