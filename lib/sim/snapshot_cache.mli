(** Cross-region reuse of converged fast-forward iterations.

    The steady-state engine ({!Steady_state}) proves an iteration's
    effects by fingerprint convergence: once the canonical machine
    state at two consecutive iteration boundaries is equal, the
    recorded iteration is exactly what every remaining in-pattern
    iteration will do.  That proof is not single-shot.  The converged
    (boundary fingerprint, pattern, effects) triple keeps holding
    wherever the same pattern is entered in the same observable state:
    a later region of the same run, the same hot loop re-entered after
    a context switch in an [Mp.Machine] quantum, or another cell of a
    sweep grid replaying the same compiled trace under the same
    configuration.  This cache stores those triples so a re-entry
    skips straight from its first boundary instead of re-recording
    iterations until convergence.

    Soundness is by key construction, not by trust: an entry's key
    covers (a) a {e scope} — the compiled trace's identity and the
    full marshalled configuration, so effects recorded under one
    energy/latency/geometry parameterisation can never serve another,
    and way-memoization's link-table fingerprints can never alias a
    plain CAM's — (b) the period's block-id sequence, and (c) every
    word of the boundary fingerprint.  The key's hash only indexes the
    table; on a hit the stored scope, pattern and fingerprint are all
    compared outright (the fingerprint word-for-word), so even a hash
    collision cannot break bit-identity.  The three-way fast-forward check
    ([Check.Differ.check_fastpath], [--check-fastforward]) runs with
    the cache attached and still demands exact {!Stats.equal}.

    The cache is bounded (LRU eviction) and thread-safe: one instance
    is shared across the domains of a {!Sweep} engine and across the
    serve daemon's executor. *)

type t

type entry = {
  e_fp : int array;  (** converged boundary fingerprint, exact words *)
  e_ints : int array;  (** per-iteration {!Stats.snapshot_ints} delta *)
  e_charges : float array array;
      (** per-bucket energy charge sequences of one iteration, in
          recorded order ({!Wp_energy.Account.replay} consumes them) *)
  e_lens : int array;  (** live prefix length of each charge array *)
  e_awake : int array;  (** drowsy awake increments of one iteration *)
  e_fetches : int;  (** fetches per iteration *)
  e_cycles : int;  (** cycles per iteration *)
  e_instrs : int;  (** retired instructions per iteration *)
}

type counters = {
  lookups : int;
  hits : int;
  inserts : int;
  evictions : int;
  entries : int;  (** current size *)
}

val create : ?capacity:int -> unit -> t
(** [capacity] (default 512) bounds the number of entries; inserting
    into a full cache evicts the least recently used entry. *)

val capacity : t -> int

type key
(** Everything that determines an iteration's effects, pre-hashed for
    the table.  The components are retained and re-verified on lookup,
    so the hash is an index, never a proof. *)

val key : scope:string -> period:int -> ids:int array -> fp:int array -> fp_len:int -> key
(** Key over the caller's scope string (compiled-trace token + config
    digest), the pattern (period and block-id sequence, [ids] borrowed
    — callers must not mutate it afterwards) and the boundary
    fingerprint ([fp_len] live words of [fp], hashed but not
    retained). *)

val find : t -> key:key -> fp:int array -> fp_len:int -> entry option
(** Lookup; a stored entry only matches if its scope and pattern equal
    the key's and its fingerprint words equal [fp.(0 .. fp_len)]
    exactly (hash collisions cannot produce a false hit).  A hit
    refreshes the entry's LRU position. *)

val add : t -> key:key -> entry -> unit
(** Insert (or replace) the entry, evicting the LRU entry if the cache
    is full.  The entry's arrays are owned by the cache afterwards —
    callers must pass freshly copied arrays. *)

val counters : t -> counters
val reset_counters : t -> unit
