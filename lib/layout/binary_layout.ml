open Wp_cfg

type t = {
  base : Wp_isa.Addr.t;
  order : Basic_block.id array;
  starts : Wp_isa.Addr.t array;  (** indexed by block id *)
  sizes : int array;  (** bytes, indexed by block id *)
  positions : int array;  (** layout position, indexed by block id *)
  code_size : int;
  sorted_starts : (Wp_isa.Addr.t * Basic_block.id) array;  (** ascending *)
}

let of_order graph ~base order =
  (match Placer.is_admissible graph order with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Binary_layout.of_order: " ^ msg));
  let n = Icfg.num_blocks graph in
  let starts = Array.make n 0 in
  let sizes = Array.make n 0 in
  let positions = Array.make n 0 in
  let cursor = ref base in
  Array.iteri
    (fun pos id ->
      let size = Basic_block.size_bytes (Icfg.block graph id) in
      starts.(id) <- !cursor;
      sizes.(id) <- size;
      positions.(id) <- pos;
      cursor := !cursor + size)
    order;
  let sorted_starts = Array.map (fun id -> (starts.(id), id)) order in
  {
    base;
    order = Array.copy order;
    starts;
    sizes;
    positions;
    code_size = !cursor - base;
    sorted_starts;
  }

let base t = t.base
let code_size_bytes t = t.code_size

let block_start t id =
  if id < 0 || id >= Array.length t.starts then
    invalid_arg
      (Printf.sprintf "Binary_layout.block_start: unknown block B%d" id);
  t.starts.(id)

let instr_addr t id i =
  let size = t.sizes.(id) in
  let offset = i * Wp_isa.Instr.size_bytes in
  if i < 0 || offset >= size then
    invalid_arg
      (Printf.sprintf "Binary_layout.instr_addr: index %d out of B%d" i id);
  t.starts.(id) + offset

let order t = t.order

let position t id =
  if id < 0 || id >= Array.length t.positions then
    invalid_arg (Printf.sprintf "Binary_layout.position: unknown block B%d" id);
  t.positions.(id)

let block_at t addr =
  if addr < t.base || addr >= t.base + t.code_size then None
  else begin
    (* Largest start <= addr. *)
    let lo = ref 0 and hi = ref (Array.length t.sorted_starts - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      let start, _ = t.sorted_starts.(mid) in
      if start <= addr then lo := mid else hi := mid - 1
    done;
    let start, id = t.sorted_starts.(!lo) in
    if addr < start + t.sizes.(id) then Some id else None
  end

let pp ppf t =
  Format.fprintf ppf "layout: base %a, %d blocks, %d B" Wp_isa.Addr.pp t.base
    (Array.length t.order) t.code_size
