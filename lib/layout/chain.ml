open Wp_cfg

type t = { blocks : Basic_block.id list; weight : int }

let make ~blocks ~weight =
  if blocks = [] then invalid_arg "Chain.make: empty chain";
  if weight < 0 then invalid_arg "Chain.make: negative weight";
  { blocks; weight }

let singleton id ~weight = make ~blocks:[ id ] ~weight
let length t = List.length t.blocks

let first t =
  match t.blocks with
  | id :: _ -> id
  | [] -> invalid_arg "Chain.first: empty chain (excluded by make)"

let compare_by_weight a b =
  match compare b.weight a.weight with
  | 0 -> compare (first a) (first b)
  | c -> c

let pp ppf t =
  Format.fprintf ppf "@[<h>chain(w=%d): %a@]" t.weight
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " -> ")
       (fun ppf id -> Format.fprintf ppf "B%d" id))
    t.blocks
