module Counter = struct
  type t =
    | Same_line_fetches
    | Wp_fetches
    | Full_fetches
    | Link_follows
    | Icache_hits
    | Icache_misses
    | L0_hits
    | L0_misses
    | Tag_comparisons
    | Hint_correct_wp
    | Hint_correct_normal
    | Hint_missed_saving
    | Hint_reaccess
    | Waypred_correct
    | Waypred_wrong
    | Drowsy_wakes
    | Link_writes
    | Links_invalidated
    | Itlb_misses
    | Dtlb_misses
    | Dcache_accesses
    | Dcache_misses
    | Line_fills
    | Evictions

  let index = function
    | Same_line_fetches -> 0
    | Wp_fetches -> 1
    | Full_fetches -> 2
    | Link_follows -> 3
    | Icache_hits -> 4
    | Icache_misses -> 5
    | L0_hits -> 6
    | L0_misses -> 7
    | Tag_comparisons -> 8
    | Hint_correct_wp -> 9
    | Hint_correct_normal -> 10
    | Hint_missed_saving -> 11
    | Hint_reaccess -> 12
    | Waypred_correct -> 13
    | Waypred_wrong -> 14
    | Drowsy_wakes -> 15
    | Link_writes -> 16
    | Links_invalidated -> 17
    | Itlb_misses -> 18
    | Dtlb_misses -> 19
    | Dcache_accesses -> 20
    | Dcache_misses -> 21
    | Line_fills -> 22
    | Evictions -> 23

  let name = function
    | Same_line_fetches -> "same_line_fetches"
    | Wp_fetches -> "wp_fetches"
    | Full_fetches -> "full_fetches"
    | Link_follows -> "link_follows"
    | Icache_hits -> "icache_hits"
    | Icache_misses -> "icache_misses"
    | L0_hits -> "l0_hits"
    | L0_misses -> "l0_misses"
    | Tag_comparisons -> "tag_comparisons"
    | Hint_correct_wp -> "hint_correct_wp"
    | Hint_correct_normal -> "hint_correct_normal"
    | Hint_missed_saving -> "hint_missed_saving"
    | Hint_reaccess -> "hint_reaccess"
    | Waypred_correct -> "waypred_correct"
    | Waypred_wrong -> "waypred_wrong"
    | Drowsy_wakes -> "drowsy_wakes"
    | Link_writes -> "link_writes"
    | Links_invalidated -> "links_invalidated"
    | Itlb_misses -> "itlb_misses"
    | Dtlb_misses -> "dtlb_misses"
    | Dcache_accesses -> "dcache_accesses"
    | Dcache_misses -> "dcache_misses"
    | Line_fills -> "line_fills"
    | Evictions -> "evictions"

  let all =
    [
      Same_line_fetches;
      Wp_fetches;
      Full_fetches;
      Link_follows;
      Icache_hits;
      Icache_misses;
      L0_hits;
      L0_misses;
      Tag_comparisons;
      Hint_correct_wp;
      Hint_correct_normal;
      Hint_missed_saving;
      Hint_reaccess;
      Waypred_correct;
      Waypred_wrong;
      Drowsy_wakes;
      Link_writes;
      Links_invalidated;
      Itlb_misses;
      Dtlb_misses;
      Dcache_accesses;
      Dcache_misses;
      Line_fills;
      Evictions;
    ]

  let count = List.length all
end

let n_buckets = List.length Probe.buckets

type marker =
  | Resize of { cycle : int; area_bytes : int }
  | Flush of { cycle : int }
  | Switch of { cycle : int; next : int }

let marker_cycle = function
  | Resize { cycle; _ } -> cycle
  | Flush { cycle } -> cycle
  | Switch { cycle; _ } -> cycle

type window = {
  index : int;
  start_cycle : int;
  end_cycle : int;
  retired : int;
  counters : int array;
  energy_pj : float array;
  cum_energy_pj : float array;
  ways_hist : (int * int) list;
  markers : marker list;
}

let get w c = w.counters.(Counter.index c)

let fetches w =
  get w Same_line_fetches + get w Wp_fetches + get w Full_fetches
  + get w Link_follows

let cycles w = w.end_cycle - w.start_cycle

let ipc w =
  let c = cycles w in
  if c = 0 then 0.0 else float_of_int w.retired /. float_of_int c

let default_window_cycles = 10_000

type t = {
  window_cycles : int;
  mutable closed : window list; (* reversed *)
  mutable index : int;
  mutable cycles : int; (* cumulative, from the last Retire *)
  mutable instrs : int;
  mutable next_boundary : int;
  mutable start_cycle : int;
  mutable start_instrs : int;
  counters : int array;
  energy : float array;
  cum_energy : float array;
  ways : (int, int ref) Hashtbl.t;
  mutable markers : marker list; (* reversed, current window *)
  mutable finished : bool;
}

let create ?(window_cycles = default_window_cycles) () =
  if window_cycles <= 0 then
    invalid_arg "Sampler.create: window_cycles must be positive";
  {
    window_cycles;
    closed = [];
    index = 0;
    cycles = 0;
    instrs = 0;
    next_boundary = window_cycles;
    start_cycle = 0;
    start_instrs = 0;
    counters = Array.make Counter.count 0;
    energy = Array.make n_buckets 0.0;
    cum_energy = Array.make n_buckets 0.0;
    ways = Hashtbl.create 7;
    markers = [];
    finished = false;
  }

let window_is_empty t =
  t.cycles = t.start_cycle
  && t.instrs = t.start_instrs
  && t.markers = []
  && Array.for_all (fun c -> c = 0) t.counters
  && Array.for_all (fun e -> e = 0.0) t.energy

let close_window t =
  let ways_hist =
    Hashtbl.fold (fun ways n acc -> (ways, !n) :: acc) t.ways []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let w =
    {
      index = t.index;
      start_cycle = t.start_cycle;
      end_cycle = t.cycles;
      retired = t.instrs - t.start_instrs;
      counters = Array.copy t.counters;
      energy_pj = Array.copy t.energy;
      cum_energy_pj = Array.copy t.cum_energy;
      ways_hist;
      markers = List.rev t.markers;
    }
  in
  t.closed <- w :: t.closed;
  t.index <- t.index + 1;
  t.start_cycle <- t.cycles;
  t.start_instrs <- t.instrs;
  t.next_boundary <- ((t.cycles / t.window_cycles) + 1) * t.window_cycles;
  Array.fill t.counters 0 Counter.count 0;
  Array.fill t.energy 0 n_buckets 0.0;
  Hashtbl.reset t.ways;
  t.markers <- []

let bump t c = t.counters.(Counter.index c) <- t.counters.(Counter.index c) + 1

let bump_by t c n =
  t.counters.(Counter.index c) <- t.counters.(Counter.index c) + n

let handle t (ev : Probe.event) =
  if not t.finished then
    match ev with
    | Fetch Same_line -> bump t Same_line_fetches
    | Fetch Way_placed -> bump t Wp_fetches
    | Fetch Full -> bump t Full_fetches
    | Fetch Link_follow -> bump t Link_follows
    | Icache_access { hit } ->
        bump t (if hit then Icache_hits else Icache_misses)
    | L0_access { hit } -> bump t (if hit then L0_hits else L0_misses)
    | Tag_comparisons n -> bump_by t Tag_comparisons n
    | Tag_search { ways } -> (
        match Hashtbl.find_opt t.ways ways with
        | Some n -> incr n
        | None -> Hashtbl.add t.ways ways (ref 1))
    | Line_fill { evicted } ->
        bump t Line_fills;
        if evicted then bump t Evictions
    | Hint Correct_wp -> bump t Hint_correct_wp
    | Hint Correct_normal -> bump t Hint_correct_normal
    | Hint Missed_saving -> bump t Hint_missed_saving
    | Hint Reaccess -> bump t Hint_reaccess
    | Way_prediction { correct } ->
        bump t (if correct then Waypred_correct else Waypred_wrong)
    | Link_write -> bump t Link_writes
    | Links_invalidated n -> bump_by t Links_invalidated n
    | Drowsy_wake -> bump t Drowsy_wakes
    | Itlb_miss -> bump t Itlb_misses
    | Dtlb_miss -> bump t Dtlb_misses
    | Dcache_access { miss } ->
        bump t Dcache_accesses;
        if miss then bump t Dcache_misses
    | Energy { bucket; pj } ->
        let i = Probe.bucket_index bucket in
        t.energy.(i) <- t.energy.(i) +. pj;
        (* Mirror the Account's own additions in the same order so the
           final cumulative figure is bit-identical to [Stats.t]. *)
        t.cum_energy.(i) <- t.cum_energy.(i) +. pj
    | Retire { cycles; instrs } ->
        t.cycles <- cycles;
        t.instrs <- instrs;
        if cycles >= t.next_boundary then close_window t
    | Resize { area_bytes } ->
        t.markers <- Resize { cycle = t.cycles; area_bytes } :: t.markers
    | Flush -> t.markers <- Flush { cycle = t.cycles } :: t.markers
    | Context_switch { next } ->
        t.markers <- Switch { cycle = t.cycles; next } :: t.markers

let probe t : Probe.t = handle t

let finish t =
  if not t.finished then begin
    (* Trailing events after the last boundary (end-of-run leakage,
       core-rest energy) live in one final, possibly short window. *)
    if (not (window_is_empty t)) || t.closed = [] then close_window t;
    t.finished <- true
  end;
  List.rev t.closed

let sum_counters (windows : window list) =
  let acc = Array.make Counter.count 0 in
  List.iter
    (fun (w : window) ->
      Array.iteri (fun i v -> acc.(i) <- acc.(i) + v) w.counters)
    windows;
  acc

let sum_energy (windows : window list) =
  let acc = Array.make n_buckets 0.0 in
  List.iter
    (fun (w : window) ->
      Array.iteri (fun i v -> acc.(i) <- acc.(i) +. v) w.energy_pj)
    windows;
  acc

let final_cum_energy windows =
  match List.rev windows with
  | [] -> Array.make n_buckets 0.0
  | last :: _ -> Array.copy last.cum_energy_pj
