(** Probe bus: the event vocabulary the simulator can emit.

    A probe is just a sink function; instrumented modules hold a
    [Probe.t option] and emission sites pattern-match on it so that the
    event value is only ever allocated inside the [Some] branch.  With
    the probe absent every site costs one comparison and a branch —
    simulation results ([Stats.t]) are bit-identical either way, which
    [Check.Differ] enforces across the scheme grid.

    Counter-like events mirror the increments of [Sim.Stats] one for
    one, at the exact sites where the simulator bumps the corresponding
    field.  That makes window aggregation conservative by construction:
    summing any partition of the event stream reproduces the final
    statistics (see {!Sampler}). *)

type fetch_kind =
  | Same_line  (** sequential fetch within the last line, tag check elided *)
  | Way_placed  (** way-placement hit path: one comparator *)
  | Full  (** full CAM search over all ways *)
  | Link_follow  (** way-memoization link followed, no tag check *)

type hint_outcome = Correct_wp | Correct_normal | Missed_saving | Reaccess

type bucket = Icache | Itlb | Dcache | Memory | Core

type event =
  | Fetch of fetch_kind
  | Icache_access of { hit : bool }
  | L0_access of { hit : bool }  (** filter-cache L0 probe *)
  | Tag_comparisons of int
  | Tag_search of { ways : int }
      (** one CAM search precharging [ways] comparators; the per-window
          histogram of these is the ways-enabled distribution *)
  | Line_fill of { evicted : bool }
  | Hint of hint_outcome
  | Way_prediction of { correct : bool }
  | Link_write
  | Links_invalidated of int
  | Drowsy_wake
  | Itlb_miss
  | Dtlb_miss
  | Dcache_access of { miss : bool }
  | Energy of { bucket : bucket; pj : float }
      (** mirrors every [Energy.Account] addition, in order *)
  | Retire of { cycles : int; instrs : int }
      (** cumulative totals after retiring one instruction — the
          sampler's clock *)
  | Resize of { area_bytes : int }  (** way-placement area resized *)
  | Flush
  | Context_switch of { next : int }
      (** the multiprogramming scheduler dispatched process [next]
          (its index in the mix) after a context switch *)

type t = event -> unit
(** An event sink.  Must not raise. *)

val null : t
(** Discards every event. *)

val buckets : bucket list
(** All energy buckets, in {!bucket_index} order. *)

val bucket_index : bucket -> int
(** Dense index 0..4, for array-indexed accumulation. *)

val bucket_name : bucket -> string

val fetch_kind_name : fetch_kind -> string

val pp_event : Format.formatter -> event -> unit
