type fetch_kind = Same_line | Way_placed | Full | Link_follow

type hint_outcome = Correct_wp | Correct_normal | Missed_saving | Reaccess

type bucket = Icache | Itlb | Dcache | Memory | Core

type event =
  | Fetch of fetch_kind
  | Icache_access of { hit : bool }
  | L0_access of { hit : bool }
  | Tag_comparisons of int
  | Tag_search of { ways : int }
  | Line_fill of { evicted : bool }
  | Hint of hint_outcome
  | Way_prediction of { correct : bool }
  | Link_write
  | Links_invalidated of int
  | Drowsy_wake
  | Itlb_miss
  | Dtlb_miss
  | Dcache_access of { miss : bool }
  | Energy of { bucket : bucket; pj : float }
  | Retire of { cycles : int; instrs : int }
  | Resize of { area_bytes : int }
  | Flush
  | Context_switch of { next : int }

type t = event -> unit

let ignore_event (_ : event) = ()
let null : t = ignore_event

let bucket_name = function
  | Icache -> "icache"
  | Itlb -> "itlb"
  | Dcache -> "dcache"
  | Memory -> "memory"
  | Core -> "core"

let buckets = [ Icache; Itlb; Dcache; Memory; Core ]

let bucket_index = function
  | Icache -> 0
  | Itlb -> 1
  | Dcache -> 2
  | Memory -> 3
  | Core -> 4

let fetch_kind_name = function
  | Same_line -> "same_line"
  | Way_placed -> "way_placed"
  | Full -> "full"
  | Link_follow -> "link_follow"

let pp_event ppf = function
  | Fetch k -> Format.fprintf ppf "Fetch %s" (fetch_kind_name k)
  | Icache_access { hit } -> Format.fprintf ppf "Icache_access hit=%b" hit
  | L0_access { hit } -> Format.fprintf ppf "L0_access hit=%b" hit
  | Tag_comparisons n -> Format.fprintf ppf "Tag_comparisons %d" n
  | Tag_search { ways } -> Format.fprintf ppf "Tag_search ways=%d" ways
  | Line_fill { evicted } -> Format.fprintf ppf "Line_fill evicted=%b" evicted
  | Hint Correct_wp -> Format.pp_print_string ppf "Hint correct_wp"
  | Hint Correct_normal -> Format.pp_print_string ppf "Hint correct_normal"
  | Hint Missed_saving -> Format.pp_print_string ppf "Hint missed_saving"
  | Hint Reaccess -> Format.pp_print_string ppf "Hint reaccess"
  | Way_prediction { correct } ->
      Format.fprintf ppf "Way_prediction correct=%b" correct
  | Link_write -> Format.pp_print_string ppf "Link_write"
  | Links_invalidated n -> Format.fprintf ppf "Links_invalidated %d" n
  | Drowsy_wake -> Format.pp_print_string ppf "Drowsy_wake"
  | Itlb_miss -> Format.pp_print_string ppf "Itlb_miss"
  | Dtlb_miss -> Format.pp_print_string ppf "Dtlb_miss"
  | Dcache_access { miss } -> Format.fprintf ppf "Dcache_access miss=%b" miss
  | Energy { bucket; pj } ->
      Format.fprintf ppf "Energy %s %.3fpJ" (bucket_name bucket) pj
  | Retire { cycles; instrs } ->
      Format.fprintf ppf "Retire cycles=%d instrs=%d" cycles instrs
  | Resize { area_bytes } -> Format.fprintf ppf "Resize %dB" area_bytes
  | Flush -> Format.pp_print_string ppf "Flush"
  | Context_switch { next } -> Format.fprintf ppf "Context_switch next=%d" next
