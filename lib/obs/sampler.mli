(** Windowed timeline sampler.

    Consumes the {!Probe} event stream of one simulation run and
    aggregates it into fixed-cycle windows (default
    {!default_window_cycles}).  The sampler's clock is the cumulative
    [Retire] event; a window closes on the first retire at or past the
    next nominal boundary, so windows are contiguous ([end_cycle] of
    one is [start_cycle] of the next) and their cycle spans telescope
    to the run's total cycle count.

    Conservation law: every counter event mirrors a [Sim.Stats]
    increment at the site where the simulator performs it, so summing a
    column over all windows reproduces the final statistics exactly;
    per-bucket cumulative energy mirrors the [Energy.Account] additions
    in order, making the last window's [cum_energy_pj] bit-identical to
    the account.  [Check.Differ] fuzzes this invariant; the unit tests
    pin it for baseline, way-placement and drowsy runs. *)

module Counter : sig
  type t =
    | Same_line_fetches
    | Wp_fetches
    | Full_fetches
    | Link_follows
    | Icache_hits
    | Icache_misses
    | L0_hits
    | L0_misses
    | Tag_comparisons
    | Hint_correct_wp
    | Hint_correct_normal
    | Hint_missed_saving
    | Hint_reaccess
    | Waypred_correct
    | Waypred_wrong
    | Drowsy_wakes
    | Link_writes
    | Links_invalidated
    | Itlb_misses
    | Dtlb_misses
    | Dcache_accesses
    | Dcache_misses
    | Line_fills
    | Evictions

  val index : t -> int
  (** Dense index into [window.counters]. *)

  val name : t -> string
  val all : t list
  val count : int
end

type marker =
  | Resize of { cycle : int; area_bytes : int }
  | Flush of { cycle : int }
  | Switch of { cycle : int; next : int }
      (** context switch: process [next] dispatched at [cycle] *)

val marker_cycle : marker -> int

type window = {
  index : int;
  start_cycle : int;  (** cumulative cycles when the window opened *)
  end_cycle : int;  (** cumulative cycles when it closed *)
  retired : int;  (** instructions retired within the window *)
  counters : int array;  (** window-local deltas, [Counter.index]ed *)
  energy_pj : float array;  (** window-local, [Probe.bucket_index]ed *)
  cum_energy_pj : float array;  (** cumulative through window end *)
  ways_hist : (int * int) list;
      (** CAM searches by ways precharged, ascending *)
  markers : marker list;  (** resizes and flushes, chronological *)
}

val get : window -> Counter.t -> int
val fetches : window -> int
val cycles : window -> int
val ipc : window -> float

val default_window_cycles : int
(** 10_000. *)

type t

val create : ?window_cycles:int -> unit -> t
(** Raises [Invalid_argument] if [window_cycles <= 0]. *)

val probe : t -> Probe.t
(** The sink to attach to a simulation run.  Events arriving after
    {!finish} are discarded. *)

val finish : t -> window list
(** Close the current window and return all windows in order.
    Idempotent. *)

val sum_counters : window list -> int array
val sum_energy : window list -> float array

val final_cum_energy : window list -> float array
(** The last window's cumulative per-bucket energy (zeros if empty). *)
