module Isa = Wp_isa
module Cfg = Wp_cfg
module Layout = Wp_layout
module Cache = Wp_cache
module Tlb = Wp_tlb
module Energy = Wp_energy
module Pipeline = Wp_pipeline
module Workloads = Wp_workloads
module Sim = Wp_sim
module Obs = Wp_obs
module Mp = Wp_mp
module Check = Wp_check
module Lint = Wp_lint
module Advise = Wp_advise
module Serve = Wp_serve
module Area = Area
module Serial = Serial

type compiled = {
  layout : Wp_layout.Binary_layout.t;
  chains : Wp_layout.Chain.t list;
}

let compile ?(base = Wp_sim.Simulator.code_base) graph profile =
  let chains = Wp_layout.Chain_builder.build graph profile in
  let order = Wp_layout.Placer.place graph profile in
  let layout = Wp_layout.Binary_layout.of_order graph ~base order in
  { layout; chains }

let original_layout ?(base = Wp_sim.Simulator.code_base) graph =
  Wp_layout.Binary_layout.of_order graph ~base (Wp_layout.Placer.original graph)

let evaluate ~config ~program ~compiled =
  let trace = Wp_workloads.Tracer.trace program Wp_workloads.Tracer.Large in
  Wp_sim.Simulator.run ~config ~program ~layout:compiled.layout ~trace

let paper_machine = Wp_sim.Config.xscale
let version = "1.0.0"
