(** Way-placement: compiler-controlled instruction-cache energy saving.

    This is the library's front door.  It re-exports every substrate
    under a stable name and offers the one-call workflow of the paper:

    {[
      let program = Wayplace.Workloads.Codegen.generate spec in
      let profile =
        Wayplace.Workloads.Tracer.profile program
          Wayplace.Workloads.Tracer.Small
      in
      let compiled = Wayplace.compile program.graph profile in
      let config =
        Wayplace.Sim.Config.xscale
          (Wayplace.Sim.Config.Way_placement { area_bytes = 16 * 1024 })
      in
      let stats = Wayplace.evaluate ~config ~program ~compiled in
      Format.printf "%a@." Wayplace.Sim.Stats.pp stats
    ]}

    See the paper: Jones, Bartolini, De Bus, Cavazos, O'Boyle,
    "Instruction Cache Energy Saving Through Compiler Way-Placement",
    DATE 2008. *)

module Isa = Wp_isa
module Cfg = Wp_cfg
module Layout = Wp_layout
module Cache = Wp_cache
module Tlb = Wp_tlb
module Energy = Wp_energy
module Pipeline = Wp_pipeline
module Workloads = Wp_workloads
module Sim = Wp_sim
module Obs = Wp_obs
module Mp = Wp_mp
module Check = Wp_check
module Lint = Wp_lint
module Advise = Wp_advise
module Serve = Wp_serve
module Area = Area
module Serial = Serial

type compiled = {
  layout : Wp_layout.Binary_layout.t;
      (** weight-ordered, fall-through-preserving layout *)
  chains : Wp_layout.Chain.t list;  (** the chains the placer ordered *)
}

val compile :
  ?base:Wp_isa.Addr.t -> Wp_cfg.Icfg.t -> Wp_cfg.Profile.t -> compiled
(** The paper's link-time pass (Section 3): build chains from
    fall-through and call/return-pair constraints, weight them with the
    profile, order heaviest-first, assign addresses.  [base] defaults
    to {!Wp_sim.Simulator.code_base}. *)

val original_layout : ?base:Wp_isa.Addr.t -> Wp_cfg.Icfg.t -> Wp_layout.Binary_layout.t
(** The unmodified compiler ordering (what the baseline runs). *)

val evaluate :
  config:Wp_sim.Config.t ->
  program:Wp_workloads.Codegen.t ->
  compiled:compiled ->
  Wp_sim.Stats.t
(** Simulate the program's large-input trace on the machine, using the
    compiled layout for the way-placement scheme. *)

val paper_machine : Wp_sim.Config.scheme -> Wp_sim.Config.t
(** Alias of {!Wp_sim.Config.xscale} (paper Table 1). *)

val version : string
