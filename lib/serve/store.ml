module Stats = Wp_sim.Stats

let magic = "wpstore1\n"

type t = {
  dir : string option;
  lock : Mutex.t;  (** guards [table] *)
  table : (string, Stats.t) Hashtbl.t;
  evictions : int Atomic.t;
  write_failures : int Atomic.t;
  tmp_counter : int Atomic.t;
}

let create ?dir () =
  let ready =
    match dir with
    | None -> Ok ()
    | Some d -> (
        let make () =
          if not (Sys.file_exists d) then Unix.mkdir d 0o755;
          if not (Sys.is_directory d) then
            Error (Printf.sprintf "store path %S is not a directory" d)
          else begin
            (* probe writability up front so the daemon fails at startup,
               not on its first computed result *)
            let probe = Filename.concat d ".wp-probe" in
            let oc = open_out probe in
            close_out oc;
            Sys.remove probe;
            Ok ()
          end
        in
        match make () with
        | r -> r
        | exception Unix.Unix_error (e, _, _) ->
            Error (Printf.sprintf "store directory %S: %s" d (Unix.error_message e))
        | exception Sys_error msg -> Error msg)
  in
  match ready with
  | Error _ as e -> e
  | Ok () ->
      Ok
        {
          dir;
          lock = Mutex.create ();
          table = Hashtbl.create 256;
          evictions = Atomic.make 0;
          write_failures = Atomic.make 0;
          tmp_counter = Atomic.make 0;
        }

let dir t = t.dir

let key ~program ~order ~config =
  Digest.to_hex (Digest.string (Marshal.to_string (program, order, config) []))

let stats_digest stats = Digest.to_hex (Digest.string (Marshal.to_string stats []))

(* Only content-address hex digests are ever used as keys, so the key
   doubles as a safe file name; reject anything else defensively
   rather than let a crafted key escape the store directory. *)
let valid_key k =
  String.length k = 32
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
       k

let entry_path dir k = Filename.concat dir k

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          match really_input_string ic (in_channel_length ic) with
          | s -> Some s
          | exception End_of_file -> None)

(* Decode one disk entry; any defect — wrong magic, short header,
   digest mismatch, unmarshalable payload — is [None]. *)
let decode_entry contents =
  let mlen = String.length magic in
  let dlen = 16 in
  if String.length contents < mlen + dlen then None
  else if String.sub contents 0 mlen <> magic then None
  else begin
    let digest = String.sub contents mlen dlen in
    let payload = String.sub contents (mlen + dlen) (String.length contents - mlen - dlen) in
    if Digest.string payload <> digest then None
    else
      match (Marshal.from_string payload 0 : Stats.t) with
      | stats -> Some stats
      | exception _ -> None
  end

let load_disk t k =
  match t.dir with
  | None -> None
  | Some d when valid_key k -> (
      let path = entry_path d k in
      if not (Sys.file_exists path) then None
      else
        match Option.bind (read_file path) decode_entry with
        | Some stats -> Some stats
        | None ->
            (* corrupt, truncated or empty: evict and recompute *)
            (try Sys.remove path with Sys_error _ -> ());
            Atomic.incr t.evictions;
            None)
  | Some _ -> None

let store_disk t k stats =
  match t.dir with
  | None -> ()
  | Some d when valid_key k -> (
      let path = entry_path d k in
      if not (Sys.file_exists path) then begin
        let payload = Marshal.to_string stats [] in
        let tmp =
          Filename.concat d
            (Printf.sprintf ".tmp-%d-%d-%s"
               (Unix.getpid ())
               (Atomic.fetch_and_add t.tmp_counter 1)
               k)
        in
        match open_out_bin tmp with
        | exception Sys_error _ -> Atomic.incr t.write_failures
        | oc -> (
            let written =
              match
                Fun.protect
                  ~finally:(fun () -> close_out_noerr oc)
                  (fun () ->
                    output_string oc magic;
                    output_string oc (Digest.string payload);
                    output_string oc payload)
              with
              | () -> true
              | exception Sys_error _ -> false
            in
            if not written then begin
              (try Sys.remove tmp with Sys_error _ -> ());
              Atomic.incr t.write_failures
            end
            else
              (* atomic publish: concurrent writers of the same key race
                 benignly — both renames install identical content *)
              match Sys.rename tmp path with
              | () -> ()
              | exception Sys_error _ ->
                  (try Sys.remove tmp with Sys_error _ -> ());
                  Atomic.incr t.write_failures)
      end)
  | Some _ -> Atomic.incr t.write_failures

let find t k =
  Mutex.lock t.lock;
  let hot = Hashtbl.find_opt t.table k in
  Mutex.unlock t.lock;
  match hot with
  | Some stats -> Some (stats, `Memory)
  | None -> (
      match load_disk t k with
      | None -> None
      | Some stats ->
          Mutex.lock t.lock;
          (* another thread may have promoted it meanwhile; keep the
             first so every memory hit returns one shared value *)
          let stats =
            match Hashtbl.find_opt t.table k with
            | Some existing -> existing
            | None ->
                Hashtbl.replace t.table k stats;
                stats
          in
          Mutex.unlock t.lock;
          Some (stats, `Disk))

let put t k stats =
  Mutex.lock t.lock;
  if not (Hashtbl.mem t.table k) then Hashtbl.replace t.table k stats;
  Mutex.unlock t.lock;
  store_disk t k stats

let memory_entries t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.lock;
  n

let disk_entries t =
  match t.dir with
  | None -> 0
  | Some d -> (
      match Sys.readdir d with
      | entries ->
          Array.fold_left
            (fun acc e -> if valid_key e then acc + 1 else acc)
            0 entries
      | exception Sys_error _ -> 0)

let evictions t = Atomic.get t.evictions
let write_failures t = Atomic.get t.write_failures
