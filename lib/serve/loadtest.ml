module P = Protocol

type spec = {
  endpoint : P.endpoint;
  connections : int;
  depth : int;
  total : int;
  mix : P.payload array;
}

type result = {
  sent : int;
  ok : int;
  errored : int;
  elapsed_s : float;
  throughput_rps : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
  concurrency : int;
  computed : int;
  hits_memory : int;
  hits_disk : int;
  coalesced : int;
  hit_ratio : float;
}

type worker_tally = {
  mutable w_sent : int;
  mutable w_ok : int;
  mutable w_errored : int;
  mutable w_computed : int;
  mutable w_memory : int;
  mutable w_disk : int;
  mutable w_coalesced : int;
  mutable latencies_ms : float list;
}

let fresh_tally () =
  {
    w_sent = 0;
    w_ok = 0;
    w_errored = 0;
    w_computed = 0;
    w_memory = 0;
    w_disk = 0;
    w_coalesced = 0;
    latencies_ms = [];
  }

(* One driver: keep up to [depth] requests in flight, matching
   responses (possibly out of order) by id. *)
let drive spec next_index tally client =
  let inflight : (int, float) Hashtbl.t = Hashtbl.create 16 in
  let mix_len = Array.length spec.mix in
  let record resp =
    (* a grid cell is an intermediate reply: the request slot stays in
       flight (and its latency clock running) until the terminal
       [Grid_done] — every other reply kind settles its request *)
    let terminal =
      match resp.P.reply with P.Grid_cell_reply _ -> false | _ -> true
    in
    if terminal then begin
      let sent_at =
        match Hashtbl.find_opt inflight resp.P.id with
        | Some at ->
            Hashtbl.remove inflight resp.P.id;
            Some at
        | None -> None
      in
      match sent_at with
      | Some at ->
          tally.latencies_ms <-
            ((Unix.gettimeofday () -. at) *. 1000.) :: tally.latencies_ms
      | None -> ()
    end;
    let count_source = function
      | P.Computed -> tally.w_computed <- tally.w_computed + 1
      | P.Memory -> tally.w_memory <- tally.w_memory + 1
      | P.Disk -> tally.w_disk <- tally.w_disk + 1
      | P.Coalesced -> tally.w_coalesced <- tally.w_coalesced + 1
    in
    match resp.P.reply with
    | P.Sim_reply r ->
        tally.w_ok <- tally.w_ok + 1;
        count_source r.P.source
    | P.Mp_reply r ->
        tally.w_ok <- tally.w_ok + 1;
        count_source r.P.mpr_source
    | P.Advise_reply r ->
        tally.w_ok <- tally.w_ok + 1;
        count_source r.P.adr_source
    | P.Grid_cell_reply c -> (
        (* cells are the unit of work a grid ships: each successful
           one counts as an ok response with its own source, so the
           hit ratio measures per-cell reuse *)
        match c.P.gc_outcome with
        | Ok r ->
            tally.w_ok <- tally.w_ok + 1;
            count_source r.P.source
        | Error _ -> tally.w_errored <- tally.w_errored + 1)
    | P.Grid_done _ -> ()
    | P.Error_reply _ -> tally.w_errored <- tally.w_errored + 1
    | P.Pong | P.Stats_reply _ | P.Shutting_down -> tally.w_ok <- tally.w_ok + 1
  in
  (* claim the next global request slot; None when the budget is spent *)
  let claim () =
    let i = Atomic.fetch_and_add next_index 1 in
    if i < spec.total then Some spec.mix.(i mod mix_len) else None
  in
  let send_one payload =
    match Client.send client payload with
    | id ->
        Hashtbl.replace inflight id (Unix.gettimeofday ());
        tally.w_sent <- tally.w_sent + 1;
        true
    | exception Sys_error _ -> false
  in
  let rec fill budget_left =
    if budget_left && Hashtbl.length inflight < spec.depth then
      match claim () with
      | Some sr -> fill (send_one sr)
      | None -> false
    else budget_left
  in
  let rec loop budget_left =
    if Hashtbl.length inflight > 0 then
      match Client.recv client with
      | Ok resp ->
          record resp;
          loop (fill budget_left)
      | Error _ ->
          (* connection lost: everything still in flight is an error *)
          tally.w_errored <- tally.w_errored + Hashtbl.length inflight;
          Hashtbl.clear inflight
    else if budget_left then loop (fill budget_left)
  in
  loop (fill true);
  Client.close client

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))

let run spec =
  if Array.length spec.mix = 0 then Error "empty request mix"
  else if spec.connections < 1 then Error "need at least one connection"
  else begin
    let clients =
      List.init spec.connections (fun _ -> Client.connect spec.endpoint)
    in
    let ok_clients =
      List.filter_map (function Ok c -> Some c | Error _ -> None) clients
    in
    match (ok_clients, clients) with
    | [], Error msg :: _ -> Error msg
    | [], [] -> Error "need at least one connection"
    | clients, _ ->
        let next_index = Atomic.make 0 in
        let started = Unix.gettimeofday () in
        let workers =
          List.map
            (fun client ->
              let tally = fresh_tally () in
              (Thread.create (fun () -> drive spec next_index tally client) (), tally))
            clients
        in
        List.iter (fun (thr, _) -> Thread.join thr) workers;
        let elapsed_s = Unix.gettimeofday () -. started in
        let tallies = List.map snd workers in
        let sum f = List.fold_left (fun acc t -> acc + f t) 0 tallies in
        let sent = sum (fun t -> t.w_sent) in
        let ok = sum (fun t -> t.w_ok) in
        let errored = sum (fun t -> t.w_errored) in
        let computed = sum (fun t -> t.w_computed) in
        let hits_memory = sum (fun t -> t.w_memory) in
        let hits_disk = sum (fun t -> t.w_disk) in
        let coalesced = sum (fun t -> t.w_coalesced) in
        let latencies =
          Array.of_list (List.concat_map (fun t -> t.latencies_ms) tallies)
        in
        Array.sort compare latencies;
        Ok
          {
            sent;
            ok;
            errored;
            elapsed_s;
            throughput_rps =
              (if elapsed_s > 0. then float_of_int ok /. elapsed_s else 0.);
            p50_ms = percentile latencies 50.;
            p90_ms = percentile latencies 90.;
            p99_ms = percentile latencies 99.;
            max_ms = percentile latencies 100.;
            concurrency = spec.connections * spec.depth;
            computed;
            hits_memory;
            hits_disk;
            coalesced;
            hit_ratio =
              (if ok > 0 then float_of_int (hits_memory + hits_disk) /. float_of_int ok
               else 0.);
          }
  end

let pp ppf r =
  Format.fprintf ppf
    "@[<v>requests   %d sent, %d ok, %d errored@,\
     elapsed    %.2f s (%.0f req/s, concurrency %d)@,\
     latency ms p50 %.2f  p90 %.2f  p99 %.2f  max %.2f@,\
     sources    %d computed, %d memory, %d disk, %d coalesced@,\
     hit ratio  %.3f@]"
    r.sent r.ok r.errored r.elapsed_s r.throughput_rps r.concurrency r.p50_ms
    r.p90_ms r.p99_ms r.max_ms r.computed r.hits_memory r.hits_disk r.coalesced
    r.hit_ratio

let to_json r =
  let open Wp_sim.Report in
  Jobj
    [
      ("sent", Jint r.sent);
      ("ok", Jint r.ok);
      ("errored", Jint r.errored);
      ("elapsed_s", Jfloat r.elapsed_s);
      ("throughput_rps", Jfloat r.throughput_rps);
      ("p50_ms", Jfloat r.p50_ms);
      ("p90_ms", Jfloat r.p90_ms);
      ("p99_ms", Jfloat r.p99_ms);
      ("max_ms", Jfloat r.max_ms);
      ("concurrency", Jint r.concurrency);
      ("computed", Jint r.computed);
      ("hits_memory", Jint r.hits_memory);
      ("hits_disk", Jint r.hits_disk);
      ("coalesced", Jint r.coalesced);
      ("hit_ratio", Jfloat r.hit_ratio);
    ]
