(** Blocking client for the placement service.

    One value per connection.  Writes are thread-safe (ids are
    allocated and lines sent under a lock), reads are not — have a
    single reader thread per client, or use the synchronous {!rpc}
    helpers from one thread only.  {!send}/{!recv} expose the
    pipelined layer the load tester drives: many requests in flight,
    responses correlated by id. *)

type t

val connect :
  ?attempts:int -> ?retry_delay_s:float -> Protocol.endpoint -> (t, string) result
(** Connect, retrying a refused / not-yet-bound endpoint [attempts]
    times (default 40) every [retry_delay_s] (default 0.05 s) — the
    daemon may still be binding when a test or CI client starts. *)

val close : t -> unit
(** Idempotent. *)

val send : t -> Protocol.payload -> int
(** Enqueue one request; returns its id.  Raises [Sys_error] if the
    connection is gone. *)

val recv : t -> (Protocol.response, string) result
(** Block for the next response line.  [Error] on a closed connection
    or an undecodable line. *)

val rpc : t -> Protocol.payload -> (Protocol.reply, string) result
(** [send] then read until the matching id comes back (single-threaded
    convenience; interleaved responses for other ids are discarded). *)

(** {1 Typed conveniences} *)

val ping : t -> (unit, string) result
val server_stats : t -> (Protocol.server_stats, string) result

val shutdown : t -> (unit, string) result
(** Ask the daemon for a graceful stop; returns once acknowledged. *)

val sim : t -> Protocol.sim_request -> (Protocol.sim_result, string) result
(** One simulation, synchronously; a server-side [Error_reply] is
    returned as [Error]. *)

val mp : t -> Protocol.mp_request -> (Protocol.mp_result, string) result
(** One multiprogrammed run, synchronously. *)

val advise :
  t -> Protocol.advise_request -> (Protocol.advise_result, string) result
(** One static-advisor run, synchronously. *)

val grid :
  ?on_cell:(Protocol.grid_cell -> unit) ->
  t ->
  Protocol.grid_request ->
  (Protocol.grid_cell list * Protocol.grid_summary, string) result
(** One batched sweep, synchronously: send the grid, collect the
    streamed cells ([on_cell] observes each as it lands, in completion
    order) until the terminal summary, and return the cells re-sorted
    into {!Protocol.grid_cells} index order.  A server-side
    [Error_reply] for the whole grid (e.g. an empty cross product) is
    [Error]; per-cell failures live in each cell's
    [gc_outcome]. *)
