module Pool = Wp_sim.Sweep.Pool
module Runner = Wp_sim.Runner
module Simulator = Wp_sim.Simulator
module Stats = Wp_sim.Stats
module Mp = Wp_mp.Machine
module Mix = Wp_mp.Mix
module P = Protocol

(* A write-once cell with both blocking and callback consumption.
   Completions arrive on executor domains; connection writers learn of
   them through [on_ready] callbacks that enqueue the response — no
   thread parks per pending request. *)
module Future = struct
  type 'a t = {
    lock : Mutex.t;
    cond : Condition.t;
    mutable value : 'a option;
    mutable waiters : ('a -> unit) list;
  }

  let create () =
    {
      lock = Mutex.create ();
      cond = Condition.create ();
      value = None;
      waiters = [];
    }

  let fulfill t v =
    Mutex.lock t.lock;
    let waiters =
      match t.value with
      | Some _ ->
          Mutex.unlock t.lock;
          invalid_arg "Daemon.Future: fulfilled twice"
      | None ->
          t.value <- Some v;
          let ws = t.waiters in
          t.waiters <- [];
          Condition.broadcast t.cond;
          Mutex.unlock t.lock;
          ws
    in
    (* callbacks run outside the lock; one raising waiter must not
       starve the others *)
    List.iter (fun k -> try k v with _ -> ()) (List.rev waiters)

  let on_ready t k =
    Mutex.lock t.lock;
    match t.value with
    | Some v ->
        Mutex.unlock t.lock;
        k v
    | None ->
        t.waiters <- k :: t.waiters;
        Mutex.unlock t.lock
end

type outcome = (Stats.t, string) result

type conn = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  out_lock : Mutex.t;
  out_cond : Condition.t;
  outbox : string Queue.t;
  mutable outstanding : int;  (** dispatched, response not yet enqueued *)
  mutable reader_done : bool;
  mutable dead : bool;  (** a write failed; discard further output *)
}

type t = {
  listen_fd : Unix.file_descr;
  actual_endpoint : P.endpoint;
  unix_path : string option;  (** to unlink after the run *)
  exec : Pool.Executor.t;
  store : Store.t;
  engine : Wp_sim.Sweep.t;  (** memoised [Runner.prepare] only *)
  inflight_lock : Mutex.t;
  inflight : (string, outcome Future.t) Hashtbl.t;
  mp_meta_lock : Mutex.t;
  mp_meta : (string, int * int) Hashtbl.t;
      (** key -> (switches, kernel_runs): machine-level facts the store
          does not persist.  In-memory only — a disk hit after a
          restart reports them as [-1]. *)
  advise_lock : Mutex.t;
  advise_cache : (string, P.advise_result) Hashtbl.t;
      (** advisor summaries are not [Stats.t], so they bypass the store
          and live in this in-memory cache; one lock covers both the
          cache and the advise in-flight table *)
  advise_inflight : (string, (P.advise_result, string) result Future.t) Hashtbl.t;
  stop_pipe_r : Unix.file_descr;
  stop_pipe_w : Unix.file_descr;
  state_lock : Mutex.t;
  mutable stopping : bool;
  mutable conns : (Thread.t * Thread.t) list;
  started : float;
  requests : int Atomic.t;
  sim_requests : int Atomic.t;
  computations : int Atomic.t;
  hits_memory : int Atomic.t;
  hits_disk : int Atomic.t;
  coalesced_count : int Atomic.t;
  errors : int Atomic.t;
}

let computations t = Atomic.get t.computations
let store t = t.store
let endpoint t = t.actual_endpoint

let create ?workers ?store_dir ~endpoint () =
  let ( let* ) = Result.bind in
  let* addr = P.sockaddr_of_endpoint endpoint in
  let* store = Store.create ?dir:store_dir () in
  let domain =
    match addr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | Unix.ADDR_INET _ -> Unix.PF_INET
  in
  let unix_path =
    match endpoint with P.Unix_socket p -> Some p | P.Tcp _ -> None
  in
  (* a stale socket file from a previous daemon would make bind fail *)
  (match unix_path with
  | Some p when Sys.file_exists p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | _ -> ());
  match
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    (match addr with
    | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
    | Unix.ADDR_UNIX _ -> ());
    (try
       Unix.bind fd addr;
       Unix.listen fd 128
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    let actual_endpoint =
      match (endpoint, Unix.getsockname fd) with
      | P.Tcp (host, _), Unix.ADDR_INET (_, port) -> P.Tcp (host, port)
      | ep, _ -> ep
    in
    (fd, actual_endpoint)
  with
  | exception Unix.Unix_error (e, fn, arg) ->
      Error
        (Printf.sprintf "cannot listen on %s: %s(%s): %s"
           (P.endpoint_to_string endpoint)
           fn arg (Unix.error_message e))
  | listen_fd, actual_endpoint ->
      let stop_pipe_r, stop_pipe_w = Unix.pipe () in
      Ok
        {
          listen_fd;
          actual_endpoint;
          unix_path;
          exec = Pool.Executor.create ?workers ();
          store;
          engine = Wp_sim.Sweep.create ~workers:1 ();
          inflight_lock = Mutex.create ();
          inflight = Hashtbl.create 64;
          mp_meta_lock = Mutex.create ();
          mp_meta = Hashtbl.create 16;
          advise_lock = Mutex.create ();
          advise_cache = Hashtbl.create 16;
          advise_inflight = Hashtbl.create 16;
          stop_pipe_r;
          stop_pipe_w;
          state_lock = Mutex.create ();
          stopping = false;
          conns = [];
          started = Unix.gettimeofday ();
          requests = Atomic.make 0;
          sim_requests = Atomic.make 0;
          computations = Atomic.make 0;
          hits_memory = Atomic.make 0;
          hits_disk = Atomic.make 0;
          coalesced_count = Atomic.make 0;
          errors = Atomic.make 0;
        }

let stop t =
  Mutex.lock t.state_lock;
  let first = not t.stopping in
  t.stopping <- true;
  Mutex.unlock t.state_lock;
  if first then
    (* wake the accept loop's select *)
    try ignore (Unix.write t.stop_pipe_w (Bytes.of_string "x") 0 1)
    with Unix.Unix_error _ -> ()

let inflight_count t =
  Mutex.lock t.inflight_lock;
  let n = Hashtbl.length t.inflight in
  Mutex.unlock t.inflight_lock;
  Mutex.lock t.advise_lock;
  let n = n + Hashtbl.length t.advise_inflight in
  Mutex.unlock t.advise_lock;
  n

let server_stats t =
  {
    P.requests = Atomic.get t.requests;
    sim_requests = Atomic.get t.sim_requests;
    computations = Atomic.get t.computations;
    hits_memory = Atomic.get t.hits_memory;
    hits_disk = Atomic.get t.hits_disk;
    coalesced = Atomic.get t.coalesced_count;
    errors = Atomic.get t.errors;
    store_entries = Store.memory_entries t.store;
    inflight = inflight_count t;
    workers = Pool.Executor.workers t.exec;
    uptime_s = Unix.gettimeofday () -. t.started;
  }

(* --- per-connection output ------------------------------------------ *)

let enqueue_locked conn resp =
  Queue.push (P.response_to_line resp) conn.outbox;
  Condition.signal conn.out_cond

(* Immediate (synchronous) reply to a request handled inline. *)
let reply conn resp =
  Mutex.lock conn.out_lock;
  enqueue_locked conn resp;
  Mutex.unlock conn.out_lock

(* Completion of a previously dispatched request. *)
let complete conn resp =
  Mutex.lock conn.out_lock;
  conn.outstanding <- conn.outstanding - 1;
  enqueue_locked conn resp;
  Mutex.unlock conn.out_lock

let dispatch conn =
  Mutex.lock conn.out_lock;
  conn.outstanding <- conn.outstanding + 1;
  Mutex.unlock conn.out_lock

let reply_error t conn id msg =
  Atomic.incr t.errors;
  reply conn { P.id; reply = P.Error_reply msg }

let complete_error t conn id msg =
  Atomic.incr t.errors;
  complete conn { P.id; reply = P.Error_reply msg }

(* --- request handling ----------------------------------------------- *)

let verify_against_reference prep config stats =
  let reference =
    Simulator.run_compiled ~reference_only:true ~config
      ~trace:prep.Runner.trace_large
      (Runner.compiled_for prep config)
  in
  if Stats.equal stats reference then Ok ()
  else
    Error
      (Format.asprintf
         "verification failed: served result diverges from the reference \
          loop:@ %a"
         Stats.pp_diff (stats, reference))

(* Run one computation (on an executor domain, or inline when the
   executor is already draining), publish to the store, resolve the
   future.  [registered] tells us to drop the in-flight entry; the
   store [put] happens strictly before that removal, so a request that
   misses the in-flight table afterwards is guaranteed to hit the
   store — the computation counter can never exceed the number of
   distinct keys (plus deliberate [no_cache] runs). *)
let run_computation t ~prep ~config ~key ~verify ~registered fut =
  let outcome =
    (* every computation shares the sweep engine's snapshot cache:
       converged loop iterations recorded for one request fast-forward
       every later request whose fingerprints coincide — most visibly
       the cells of a grid, which differ only in configuration.  The
       result is bit-identical either way (the cache key pins the
       compiled trace and the full config; the differ enforces the
       equality). *)
    match
      Runner.run_scheme
        ~snapshot_cache:(Wp_sim.Sweep.snapshot_cache t.engine)
        prep config
    with
    | stats -> (
        Atomic.incr t.computations;
        match if verify then verify_against_reference prep config stats else Ok () with
        | Ok () ->
            Store.put t.store key stats;
            Ok stats
        | Error msg -> Error msg)
    | exception exn ->
        Error (Printf.sprintf "computation failed: %s" (Printexc.to_string exn))
  in
  if registered then begin
    Mutex.lock t.inflight_lock;
    Hashtbl.remove t.inflight key;
    Mutex.unlock t.inflight_lock
  end;
  Future.fulfill fut outcome

let complete_sim t conn id ~key ~source outcome =
  match outcome with
  | Ok stats ->
      complete conn
        { P.id; reply = P.Sim_reply (P.sim_result_of_stats ~key ~source stats) }
  | Error msg -> complete_error t conn id msg

(* Submit a computation; if the executor is draining (shutdown has
   begun) the request was still accepted, so run it inline on the
   reader thread rather than lose it. *)
let submit_computation t ~prep ~config ~key ~verify ~registered fut =
  let task () = run_computation t ~prep ~config ~key ~verify ~registered fut in
  if not (Pool.Executor.submit t.exec task) then task ()

(* Resolve one (prepared, config) cell through the full memoisation
   stack — store, in-flight coalescing, executor — calling [k] exactly
   once with the source and outcome: synchronously on a store hit,
   from an executor domain otherwise.  Shared by [Sim] requests and
   the cells of a [Grid]. *)
let resolve_sim t ~prep ~config ~key ~no_cache ~verify k =
  if no_cache then begin
    (* deliberate fresh run: no store read, no coalescing *)
    let fut = Future.create () in
    Future.on_ready fut (fun o -> k P.Computed o);
    submit_computation t ~prep ~config ~key ~verify ~registered:false fut
  end
  else
    let hit stats source counter =
      Atomic.incr counter;
      k source (Ok stats)
    in
    match Store.find t.store key with
    | Some (stats, `Memory) -> hit stats P.Memory t.hits_memory
    | Some (stats, `Disk) -> hit stats P.Disk t.hits_disk
    | None -> (
        Mutex.lock t.inflight_lock;
        match Hashtbl.find_opt t.inflight key with
        | Some fut ->
            Mutex.unlock t.inflight_lock;
            Atomic.incr t.coalesced_count;
            Future.on_ready fut (fun o -> k P.Coalesced o)
        | None -> (
            (* recheck under the in-flight lock: a computation that
               just completed publishes to the store before
               deregistering, so this order can't miss both tables and
               recompute *)
            match Store.find t.store key with
            | Some (stats, `Memory) ->
                Mutex.unlock t.inflight_lock;
                hit stats P.Memory t.hits_memory
            | Some (stats, `Disk) ->
                Mutex.unlock t.inflight_lock;
                hit stats P.Disk t.hits_disk
            | None ->
                let fut = Future.create () in
                Hashtbl.replace t.inflight key fut;
                Mutex.unlock t.inflight_lock;
                Future.on_ready fut (fun o -> k P.Computed o);
                submit_computation t ~prep ~config ~key ~verify
                  ~registered:true fut))

let handle_sim t conn id (sr : P.sim_request) =
  Atomic.incr t.sim_requests;
  match P.config_of_sim sr with
  | Error msg -> reply_error t conn id msg
  | Ok config -> (
      match Wp_sim.Sweep.prepared t.engine sr.P.benchmark with
      | exception Not_found ->
          reply_error t conn id
            (Printf.sprintf "unknown benchmark %S" sr.P.benchmark)
      | exception exn ->
          reply_error t conn id
            (Printf.sprintf "prepare failed: %s" (Printexc.to_string exn))
      | prep ->
          let layout = Runner.layout_for prep config in
          let key =
            Store.key ~program:prep.Runner.program
              ~order:(Wp_layout.Binary_layout.order layout)
              ~config
          in
          dispatch conn;
          resolve_sim t ~prep ~config ~key ~no_cache:sr.P.no_cache
            ~verify:sr.P.verify (fun source outcome ->
              complete_sim t conn id ~key ~source outcome))

(* --- grid requests ---------------------------------------------------- *)

(* One grid = one dispatched slot: cells stream through [reply] as
   their computations (or store hits) land, in completion order; the
   terminal [Grid_done] goes through [complete] and is guaranteed to
   be enqueued after every cell (each cell's enqueue happens before
   its countdown decrement, which happens before the final decrement).
   Cell failures are per-cell — the rest of the grid still runs. *)
let handle_grid t conn id (gr : P.grid_request) =
  Atomic.incr t.sim_requests;
  match P.grid_cells gr with
  | [] -> reply_error t conn id "empty grid"
  | cells ->
      dispatch conn;
      let n = List.length cells in
      let remaining = Atomic.make n in
      let computed = Atomic.make 0 in
      let g_memory = Atomic.make 0 in
      let g_disk = Atomic.make 0 in
      let g_coalesced = Atomic.make 0 in
      let g_errors = Atomic.make 0 in
      let finish_cell () =
        if Atomic.fetch_and_add remaining (-1) = 1 then
          complete conn
            {
              P.id;
              reply =
                P.Grid_done
                  {
                    P.gs_cells = n;
                    gs_computed = Atomic.get computed;
                    gs_hits_memory = Atomic.get g_memory;
                    gs_hits_disk = Atomic.get g_disk;
                    gs_coalesced = Atomic.get g_coalesced;
                    gs_errors = Atomic.get g_errors;
                  };
            }
      in
      let emit idx bench scheme size_kb ways outcome =
        reply conn
          {
            P.id;
            reply =
              P.Grid_cell_reply
                {
                  P.gc_index = idx;
                  gc_benchmark = bench;
                  gc_scheme = scheme;
                  gc_size_kb = size_kb;
                  gc_ways = ways;
                  gc_outcome = outcome;
                };
          };
        finish_cell ()
      in
      let cell_error idx bench scheme size_kb ways msg =
        Atomic.incr g_errors;
        Atomic.incr t.errors;
        emit idx bench scheme size_kb ways (Error msg)
      in
      List.iteri
        (fun idx (bench, scheme, size_kb, ways) ->
          match
            P.config_of_geometry ~scheme ~size_kb ~ways
              ~line_bytes:gr.P.g_line_bytes
          with
          | Error msg -> cell_error idx bench scheme size_kb ways msg
          | Ok config -> (
              match Wp_sim.Sweep.prepared t.engine bench with
              | exception Not_found ->
                  cell_error idx bench scheme size_kb ways
                    (Printf.sprintf "unknown benchmark %S" bench)
              | exception exn ->
                  cell_error idx bench scheme size_kb ways
                    (Printf.sprintf "prepare failed: %s"
                       (Printexc.to_string exn))
              | prep ->
                  let layout = Runner.layout_for prep config in
                  let key =
                    Store.key ~program:prep.Runner.program
                      ~order:(Wp_layout.Binary_layout.order layout)
                      ~config
                  in
                  resolve_sim t ~prep ~config ~key ~no_cache:gr.P.g_no_cache
                    ~verify:false (fun source outcome ->
                      match outcome with
                      | Ok stats ->
                          (match source with
                          | P.Computed -> Atomic.incr computed
                          | P.Memory -> Atomic.incr g_memory
                          | P.Disk -> Atomic.incr g_disk
                          | P.Coalesced -> Atomic.incr g_coalesced);
                          emit idx bench scheme size_kb ways
                            (Ok (P.sim_result_of_stats ~key ~source stats))
                      | Error msg ->
                          cell_error idx bench scheme size_kb ways msg)))
        cells

(* --- multiprogrammed requests ---------------------------------------- *)

(* The wire mix string, resolved to a concrete process list: MiBench
   names, or "random:SEED" through the fuzzer's deterministic mix
   generator.  Resolution is cheap (spec lookup / generation only);
   program generation and tracing happen inside [Mp.run] on an
   executor domain. *)
let resolve_mix (mr : P.mp_request) =
  let with_coverage mix =
    match mr.P.mp_coverage with
    | "mix" -> Ok mix
    | other -> (
        match Mix.coverage_of_string other with
        | Ok c -> Ok (Mix.apply_coverage c mix)
        | Error _ as e -> e)
  in
  let prefix = "random:" in
  let plen = String.length prefix in
  if
    String.length mr.P.mp_mix > plen
    && String.sub mr.P.mp_mix 0 plen = prefix
  then
    match
      int_of_string_opt
        (String.sub mr.P.mp_mix plen (String.length mr.P.mp_mix - plen))
    with
    | Some seed -> with_coverage (Wp_check.Progen.mix_of_seed seed)
    | None ->
        Error
          (Printf.sprintf "bad mix %S: random: needs an integer seed"
             mr.P.mp_mix)
  else
    match
      Mix.of_names
        (String.split_on_char ',' mr.P.mp_mix
        |> List.map String.trim
        |> List.filter (fun s -> s <> ""))
    with
    | Ok mix -> with_coverage mix
    | Error _ as e -> e

let options_of_mp (mr : P.mp_request) =
  {
    Mp.quantum_cycles = mr.P.mp_quantum;
    kernel = mr.P.mp_kernel;
    btb_policy = (if mr.P.mp_btb_flush then Mp.Btb_flush else Mp.Btb_shared);
    drowsy_policy =
      (if mr.P.mp_drowsy_flush then Mp.Drowsy_flush else Mp.Drowsy_shared);
    sched = (if mr.P.mp_priority then Mp.Priority else Mp.Round_robin);
  }

(* Content address of a multiprogrammed run: the fully resolved mix
   (specs, placement flags, priorities), the machine configuration and
   the scheduler options are all the run depends on.  The "mp-" prefix
   keeps the namespace disjoint from single-process [Store.key]s, so
   both share the store and the in-flight table. *)
let mp_key ~mix ~(config : Wp_sim.Config.t) ~(options : Mp.options) =
  "mp-"
  ^ Digest.to_hex (Digest.string (Marshal.to_string (mix, config, options) []))

let mp_meta_for t key =
  Mutex.lock t.mp_meta_lock;
  let m = Hashtbl.find_opt t.mp_meta key in
  Mutex.unlock t.mp_meta_lock;
  match m with Some (s, k) -> (s, k) | None -> (-1, -1)

let run_mp_computation t ~mix ~config ~options ~key ~verify ~registered fut =
  let outcome =
    match Mp.run ~config ~options mix with
    | r -> (
        Atomic.incr t.computations;
        let verified =
          if not verify then Ok ()
          else
            match Mp.run ~reference_only:true ~config ~options mix with
            | refr ->
                if Stats.equal r.Mp.aggregate refr.Mp.aggregate then Ok ()
                else
                  Error
                    (Format.asprintf
                       "verification failed: mp fast path diverges from the \
                        reference loop:@ %a"
                       Stats.pp_diff
                       (r.Mp.aggregate, refr.Mp.aggregate))
            | exception exn ->
                Error
                  (Printf.sprintf "verification failed: reference run raised: %s"
                     (Printexc.to_string exn))
        in
        match verified with
        | Ok () ->
            Mutex.lock t.mp_meta_lock;
            Hashtbl.replace t.mp_meta key (r.Mp.switches, r.Mp.kernel_runs);
            Mutex.unlock t.mp_meta_lock;
            Store.put t.store key r.Mp.aggregate;
            Ok r.Mp.aggregate
        | Error msg -> Error msg)
    | exception exn ->
        Error (Printf.sprintf "computation failed: %s" (Printexc.to_string exn))
  in
  if registered then begin
    Mutex.lock t.inflight_lock;
    Hashtbl.remove t.inflight key;
    Mutex.unlock t.inflight_lock
  end;
  Future.fulfill fut outcome

let submit_mp t ~mix ~config ~options ~key ~verify ~registered fut =
  let task () =
    run_mp_computation t ~mix ~config ~options ~key ~verify ~registered fut
  in
  if not (Pool.Executor.submit t.exec task) then task ()

let complete_mp t conn id ~key ~source ~processes outcome =
  match outcome with
  | Ok stats ->
      let switches, kernel_runs = mp_meta_for t key in
      complete conn
        {
          P.id;
          reply =
            P.Mp_reply
              (P.mp_result_of_stats ~key ~source ~processes ~switches
                 ~kernel_runs stats);
        }
  | Error msg -> complete_error t conn id msg

let handle_mp t conn id (mr : P.mp_request) =
  Atomic.incr t.sim_requests;
  match P.config_of_mp mr with
  | Error msg -> reply_error t conn id msg
  | Ok config -> (
      match resolve_mix mr with
      | Error msg -> reply_error t conn id msg
      | exception exn ->
          reply_error t conn id
            (Printf.sprintf "mix resolution failed: %s" (Printexc.to_string exn))
      | Ok mix -> (
          let options = options_of_mp mr in
          let key = mp_key ~mix ~config ~options in
          let processes = List.length mix in
          let respond_hit stats source counter =
            Atomic.incr counter;
            let switches, kernel_runs = mp_meta_for t key in
            reply conn
              {
                P.id;
                reply =
                  P.Mp_reply
                    (P.mp_result_of_stats ~key ~source ~processes ~switches
                       ~kernel_runs stats);
              }
          in
          if mr.P.mp_no_cache then begin
            let fut = Future.create () in
            dispatch conn;
            Future.on_ready fut
              (complete_mp t conn id ~key ~source:P.Computed ~processes);
            submit_mp t ~mix ~config ~options ~key ~verify:mr.P.mp_verify
              ~registered:false fut
          end
          else
            match Store.find t.store key with
            | Some (stats, `Memory) -> respond_hit stats P.Memory t.hits_memory
            | Some (stats, `Disk) -> respond_hit stats P.Disk t.hits_disk
            | None -> (
                Mutex.lock t.inflight_lock;
                match Hashtbl.find_opt t.inflight key with
                | Some fut ->
                    Mutex.unlock t.inflight_lock;
                    Atomic.incr t.coalesced_count;
                    dispatch conn;
                    Future.on_ready fut
                      (complete_mp t conn id ~key ~source:P.Coalesced ~processes)
                | None -> (
                    match Store.find t.store key with
                    | Some (stats, `Memory) ->
                        Mutex.unlock t.inflight_lock;
                        respond_hit stats P.Memory t.hits_memory
                    | Some (stats, `Disk) ->
                        Mutex.unlock t.inflight_lock;
                        respond_hit stats P.Disk t.hits_disk
                    | None ->
                        let fut = Future.create () in
                        Hashtbl.replace t.inflight key fut;
                        Mutex.unlock t.inflight_lock;
                        dispatch conn;
                        Future.on_ready fut
                          (complete_mp t conn id ~key ~source:P.Computed
                             ~processes);
                        submit_mp t ~mix ~config ~options ~key
                          ~verify:mr.P.mp_verify ~registered:true fut))))

(* --- advisor requests ------------------------------------------------ *)

(* Content address of an advisor run: benchmark and the full geometry /
   area / page tuple the analysis depends on.  "advise-" keeps the
   namespace disjoint from sim and mp keys; the summary cache and
   in-flight table are advise-private (the store persists only
   [Stats.t]). *)
let advise_key (ar : P.advise_request) =
  "advise-"
  ^ Digest.to_hex
      (Digest.string
         (Marshal.to_string
            ( ar.P.ad_benchmark,
              ar.P.ad_size_kb,
              ar.P.ad_ways,
              ar.P.ad_line_bytes,
              ar.P.ad_area_kb,
              ar.P.ad_page_bytes )
            []))

let run_advise_computation t ~prep ~(ar : P.advise_request) ~geometry ~key
    ~registered fut =
  let outcome =
    match
      Wp_advise.Advisor.analyze ~benchmark:ar.P.ad_benchmark
        ~graph:prep.Runner.program.Wp_workloads.Codegen.graph
        ~profile:prep.Runner.profile_small ~trace:prep.Runner.trace_large
        ~layout:prep.Runner.placed_layout ~geometry
        ~page_bytes:ar.P.ad_page_bytes
        ~area_bytes:(ar.P.ad_area_kb * 1024)
        ~energy:
          (Wp_sim.Config.xscale Wp_sim.Config.Baseline).Wp_sim.Config.energy
        ()
    with
    | report ->
        Atomic.incr t.computations;
        let result = P.advise_result_of_report ~key ~source:P.Computed report in
        (* publish before deregistering (same invariant as the store):
           a request missing the in-flight table afterwards must hit
           the cache *)
        Mutex.lock t.advise_lock;
        Hashtbl.replace t.advise_cache key result;
        if registered then Hashtbl.remove t.advise_inflight key;
        Mutex.unlock t.advise_lock;
        Ok result
    | exception exn ->
        if registered then begin
          Mutex.lock t.advise_lock;
          Hashtbl.remove t.advise_inflight key;
          Mutex.unlock t.advise_lock
        end;
        Error (Printf.sprintf "computation failed: %s" (Printexc.to_string exn))
  in
  Future.fulfill fut outcome

let submit_advise t ~prep ~ar ~geometry ~key ~registered fut =
  let task () =
    run_advise_computation t ~prep ~ar ~geometry ~key ~registered fut
  in
  if not (Pool.Executor.submit t.exec task) then task ()

let complete_advise t conn id ~source outcome =
  match outcome with
  | Ok r ->
      complete conn
        { P.id; reply = P.Advise_reply { r with P.adr_source = source } }
  | Error msg -> complete_error t conn id msg

let handle_advise t conn id (ar : P.advise_request) =
  Atomic.incr t.sim_requests;
  match
    Wp_cache.Geometry.make
      ~size_bytes:(ar.P.ad_size_kb * 1024)
      ~assoc:ar.P.ad_ways ~line_bytes:ar.P.ad_line_bytes
  with
  | exception Invalid_argument msg -> reply_error t conn id msg
  | geometry -> (
      match Wp_sim.Sweep.prepared t.engine ar.P.ad_benchmark with
      | exception Not_found ->
          reply_error t conn id
            (Printf.sprintf "unknown benchmark %S" ar.P.ad_benchmark)
      | exception exn ->
          reply_error t conn id
            (Printf.sprintf "prepare failed: %s" (Printexc.to_string exn))
      | prep ->
          let key = advise_key ar in
          if ar.P.ad_no_cache then begin
            let fut = Future.create () in
            dispatch conn;
            Future.on_ready fut (complete_advise t conn id ~source:P.Computed);
            submit_advise t ~prep ~ar ~geometry ~key ~registered:false fut
          end
          else begin
            Mutex.lock t.advise_lock;
            match Hashtbl.find_opt t.advise_cache key with
            | Some r ->
                Mutex.unlock t.advise_lock;
                Atomic.incr t.hits_memory;
                reply conn
                  {
                    P.id;
                    reply = P.Advise_reply { r with P.adr_source = P.Memory };
                  }
            | None -> (
                match Hashtbl.find_opt t.advise_inflight key with
                | Some fut ->
                    Mutex.unlock t.advise_lock;
                    Atomic.incr t.coalesced_count;
                    dispatch conn;
                    Future.on_ready fut
                      (complete_advise t conn id ~source:P.Coalesced)
                | None ->
                    let fut = Future.create () in
                    Hashtbl.replace t.advise_inflight key fut;
                    Mutex.unlock t.advise_lock;
                    dispatch conn;
                    Future.on_ready fut
                      (complete_advise t conn id ~source:P.Computed);
                    submit_advise t ~prep ~ar ~geometry ~key ~registered:true
                      fut)
          end)

let handle_line t conn line =
  Atomic.incr t.requests;
  match P.request_of_line line with
  | Error msg -> reply_error t conn (P.id_of_line line) msg
  | Ok { P.id; payload } -> (
      match payload with
      | P.Ping -> reply conn { P.id; reply = P.Pong }
      | P.Server_stats ->
          reply conn { P.id; reply = P.Stats_reply (server_stats t) }
      | P.Shutdown ->
          reply conn { P.id; reply = P.Shutting_down };
          stop t
      | P.Sim sr -> handle_sim t conn id sr
      | P.Mp mr -> handle_mp t conn id mr
      | P.Advise ar -> handle_advise t conn id ar
      | P.Grid gr -> handle_grid t conn id gr)

(* --- connection threads --------------------------------------------- *)

let reader_loop t conn () =
  let rec loop () =
    match input_line conn.ic with
    | line ->
        (* isolate the handler: a crashing request must answer that
           request, not end the connection *)
        (try handle_line t conn line
         with exn ->
           reply_error t conn 0
             (Printf.sprintf "internal error: %s" (Printexc.to_string exn)));
        loop ()
    | exception End_of_file -> ()
    | exception Sys_error _ -> ()
  in
  loop ();
  Mutex.lock conn.out_lock;
  conn.reader_done <- true;
  Condition.broadcast conn.out_cond;
  Mutex.unlock conn.out_lock

let writer_loop conn () =
  let rec loop () =
    Mutex.lock conn.out_lock;
    while
      Queue.is_empty conn.outbox
      && not (conn.reader_done && conn.outstanding = 0)
    do
      Condition.wait conn.out_cond conn.out_lock
    done;
    if Queue.is_empty conn.outbox then begin
      (* reader finished and every dispatched request answered *)
      Mutex.unlock conn.out_lock;
      ()
    end
    else begin
      let line = Queue.pop conn.outbox in
      Mutex.unlock conn.out_lock;
      (if not conn.dead then
         try
           output_string conn.oc line;
           flush conn.oc
         with Sys_error _ | Unix.Unix_error _ -> conn.dead <- true);
      loop ()
    end
  in
  loop ();
  (try flush conn.oc with Sys_error _ | Unix.Unix_error _ -> ());
  (* both channels share the fd; close it exactly once (the reader has
     already returned — it set [reader_done] before the writer exits) *)
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

let spawn_conn t fd =
  let conn =
    {
      fd;
      ic = Unix.in_channel_of_descr fd;
      oc = Unix.out_channel_of_descr fd;
      out_lock = Mutex.create ();
      out_cond = Condition.create ();
      outbox = Queue.create ();
      outstanding = 0;
      reader_done = false;
      dead = false;
    }
  in
  let reader = Thread.create (reader_loop t conn) () in
  let writer = Thread.create (writer_loop conn) () in
  Mutex.lock t.state_lock;
  t.conns <- (reader, writer) :: t.conns;
  Mutex.unlock t.state_lock

let run t =
  (* a client vanishing mid-write must be an EPIPE error, not a fatal
     signal *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let rec accept_loop () =
    match Unix.select [ t.listen_fd; t.stop_pipe_r ] [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
    | readable, _, _ ->
        if List.mem t.stop_pipe_r readable then begin
          (* the kernel completes connections into the listen backlog
             before we accept them — a client may already have
             connected and sent requests.  Those are accepted work:
             drain the backlog before closing the listener, or the
             close would RST them mid-burst. *)
          Unix.set_nonblock t.listen_fd;
          let rec drain_backlog () =
            match Unix.accept t.listen_fd with
            | fd, _ ->
                Unix.clear_nonblock fd;
                spawn_conn t fd;
                drain_backlog ()
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
              ->
                ()
            | exception Unix.Unix_error _ -> ()
          in
          drain_backlog ()
        end
        else (
          match Unix.accept t.listen_fd with
          | fd, _ ->
              spawn_conn t fd;
              accept_loop ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
          | exception Unix.Unix_error _ ->
              (* listener closed under us, or a transient accept
                 failure during shutdown *)
              Mutex.lock t.state_lock;
              let stopping = t.stopping in
              Mutex.unlock t.state_lock;
              if not stopping then accept_loop ())
  in
  accept_loop ();
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.unix_path with
  | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | None -> ());
  (* serve connected clients until they disconnect *)
  let rec join_all () =
    Mutex.lock t.state_lock;
    let conns = t.conns in
    t.conns <- [];
    Mutex.unlock t.state_lock;
    match conns with
    | [] -> ()
    | _ ->
        List.iter
          (fun (reader, writer) ->
            Thread.join reader;
            Thread.join writer)
          conns;
        join_all ()
  in
  join_all ();
  (* drain every accepted computation, then release the domains *)
  Pool.Executor.shutdown t.exec;
  try ignore (Unix.close t.stop_pipe_r); Unix.close t.stop_pipe_w
  with Unix.Unix_error _ -> ()

let start t = Thread.create run t
