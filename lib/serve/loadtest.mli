(** Load-test client: many connections, pipelined requests, latency
    percentiles.

    Each connection gets one driver thread that keeps up to [depth]
    requests in flight (send-ahead, then match responses by id), so
    [connections * depth] requests are concurrently outstanding
    against the daemon — thousands of in-flight requests from a
    handful of threads.  Requests are drawn round-robin from [mix];
    per-response latency is measured send-to-receive and aggregated
    into percentiles across all connections. *)

type spec = {
  endpoint : Protocol.endpoint;
  connections : int;
  depth : int;  (** max in-flight requests per connection *)
  total : int;  (** total requests across all connections *)
  mix : Protocol.payload array;
      (** drawn round-robin; non-empty.  Typically [Sim] and [Mp]
          requests — a multiprogrammed run is just another (heavier)
          request class to the daemon.  A [Grid] request occupies one
          in-flight slot until its terminal [Grid_done], but each
          streamed cell is tallied as its own ok/errored response with
          its own source — the hit ratio measures per-cell reuse. *)
}

type result = {
  sent : int;
  ok : int;
  errored : int;  (** [Error_reply] responses and transport errors *)
  elapsed_s : float;
  throughput_rps : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
  concurrency : int;  (** connections * depth *)
  computed : int;
  hits_memory : int;
  hits_disk : int;
  coalesced : int;
  hit_ratio : float;
      (** (memory + disk hits) / successful sim responses; coalesced
          responses are not hits — they waited for a computation *)
}

val run : spec -> (result, string) Stdlib.result
(** [Error] only if no connection could be established or [mix] is
    empty; per-request failures are counted in [errored]. *)

val pp : Format.formatter -> result -> unit
val to_json : result -> Wp_sim.Report.json
