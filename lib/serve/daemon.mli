(** The placement service: a long-running daemon answering simulation
    requests over a Unix or TCP socket.

    Layering:

    - connections are handled by lightweight threads (a reader and a
      writer each), so thousands of concurrent requests cost two
      threads per {e connection}, not per request;
    - simulations are scheduled on a persistent
      {!Wp_sim.Sweep.Pool.Executor} domain pool;
    - results come from a content-addressed {!Store} (hot memory +
      optional disk persistence), and {e in-flight} identical requests
      coalesce onto one computation through a table of futures — the
      sweep engine's shared-baseline dedup generalised to live
      traffic;
    - per-request error isolation: a malformed line, unknown
      benchmark, invalid configuration or crashing computation answers
      that request with {!Protocol.Error_reply} and nothing else —
      the connection stays up, the daemon stays up.

    Graceful shutdown (a [shutdown] request, or {!stop}): the listener
    closes immediately, connected clients keep being served until they
    disconnect, and the executor drains every accepted computation
    before {!run} returns — a shutdown mid-burst loses no accepted
    request. *)

type t

val create :
  ?workers:int ->
  ?store_dir:string ->
  endpoint:Protocol.endpoint ->
  unit ->
  (t, string) result
(** Bind and listen (but do not accept yet).  [workers] sizes the
    executor domain pool (default
    [Domain.recommended_domain_count ()]); [store_dir] enables disk
    persistence.  A Unix-socket path is unlinked first if a stale one
    exists; [Tcp (host, 0)] binds a kernel-chosen port, readable back
    via {!endpoint}. *)

val endpoint : t -> Protocol.endpoint
(** The actual listening endpoint (TCP port resolved). *)

val run : t -> unit
(** Serve until a graceful stop completes: accept loop, then drain.
    Blocks the calling thread; returns only when the listener is
    closed, every connection has ended and the executor has drained. *)

val start : t -> Thread.t
(** [Thread.create run t] — the in-process way to host a daemon
    (tests, the loadtest self-spawn). *)

val stop : t -> unit
(** Initiate a graceful stop from any thread; idempotent.  {!run}
    still waits for connected clients to disconnect. *)

val computations : t -> int
(** Simulator runs so far — the counter the O(1)-warm-repeat
    acceptance test reads. *)

val server_stats : t -> Protocol.server_stats
val store : t -> Store.t
