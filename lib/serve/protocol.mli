(** The placement service's wire vocabulary.

    One request or response per line, each a single JSON object built
    on {!Wp_sim.Report}'s hand-rolled emitter and parsed back with
    {!Wp_sim.Report.parse} — the service-level counterpart of the
    sweep CLI's [--json] output.  Requests name a benchmark and a
    machine configuration; responses carry a compact result summary
    plus the MD5 of the marshalled {!Wp_sim.Stats.t}, so a client can
    assert bit-identity against a locally computed oracle without
    shipping every counter as text.

    Every decoder returns a clean [Error] on malformed input —
    truncated JSON, wrong field types, unknown discriminators — and
    never raises: the daemon feeds it raw client bytes. *)

(** Where the daemon listens / the client connects. *)
type endpoint =
  | Unix_socket of string  (** filesystem path *)
  | Tcp of string * int  (** host, port (0 = kernel-chosen) *)

val endpoint_to_string : endpoint -> string
val sockaddr_of_endpoint : endpoint -> (Unix.sockaddr, string) result

(** {1 Requests} *)

type sim_request = {
  benchmark : string;  (** MiBench name, {!Wp_workloads.Mibench.find} *)
  scheme : Wp_sim.Config.scheme;
  size_kb : int;  (** I-cache size *)
  ways : int;  (** I-cache associativity *)
  line_bytes : int;
  no_cache : bool;
      (** bypass the result store and in-flight coalescing: always run
          the simulator (the result is still stored) *)
  verify : bool;
      (** after computing, replay through the per-instruction
          reference loop and fail the request unless bit-identical —
          the differ's fast-path check as a service option.  Only
          computations triggered by this request are verified; a
          store hit or coalesced result is returned as-is. *)
}

val sim_request :
  ?size_kb:int ->
  ?ways:int ->
  ?line_bytes:int ->
  ?no_cache:bool ->
  ?verify:bool ->
  benchmark:string ->
  scheme:Wp_sim.Config.scheme ->
  unit ->
  sim_request
(** Defaults: the paper's 32 KB / 32-way / 32 B geometry, caching on,
    verification off. *)

type mp_request = {
  mp_mix : string;
      (** comma-separated MiBench names, or ["random:SEED"] for a
          {!Wp_check.Progen.mix_of_seed} mix — the daemon resolves it
          and content-addresses the result on the fully resolved
          (mix, config, options) triple *)
  mp_coverage : string;
      (** ["all"], ["half"], ["none"], or ["mix"] (keep the mix's own
          placement flags) *)
  mp_quantum : int;  (** time slice in cycles; [<= 0] = infinite *)
  mp_kernel : bool;  (** run the interrupt kernel at switches *)
  mp_btb_flush : bool;
  mp_drowsy_flush : bool;
  mp_priority : bool;  (** priority scheduler instead of round-robin *)
  mp_scheme : Wp_sim.Config.scheme;
  mp_size_kb : int;
  mp_ways : int;
  mp_line_bytes : int;
  mp_no_cache : bool;
  mp_verify : bool;
      (** after computing, replay through the mp reference loop and
          fail unless bit-identical *)
}

val mp_request :
  ?coverage:string ->
  ?quantum:int ->
  ?kernel:bool ->
  ?btb_flush:bool ->
  ?drowsy_flush:bool ->
  ?priority:bool ->
  ?size_kb:int ->
  ?ways:int ->
  ?line_bytes:int ->
  ?no_cache:bool ->
  ?verify:bool ->
  mix:string ->
  scheme:Wp_sim.Config.scheme ->
  unit ->
  mp_request
(** Defaults: the mix's own coverage, 50k-cycle quantum, kernel on,
    shared BTB and drowsy state, round-robin, the paper geometry. *)

type advise_request = {
  ad_benchmark : string;  (** MiBench name, {!Wp_workloads.Mibench.find} *)
  ad_size_kb : int;
  ad_ways : int;
  ad_line_bytes : int;
  ad_area_kb : int;  (** way-placement area the advisor verifies *)
  ad_page_bytes : int;
  ad_no_cache : bool;
      (** bypass the in-memory result cache and coalescing: always
          re-run the analysis (the result still replaces the cached
          one) *)
}

val advise_request :
  ?size_kb:int ->
  ?ways:int ->
  ?line_bytes:int ->
  ?area_kb:int ->
  ?page_bytes:int ->
  ?no_cache:bool ->
  benchmark:string ->
  unit ->
  advise_request
(** Defaults: the paper geometry, a 16 KB area, 1 KB pages, caching
    on. *)

type grid_request = {
  g_benchmarks : string list;  (** MiBench names *)
  g_schemes : Wp_sim.Config.scheme list;
  g_sizes_kb : int list;
  g_ways : int list;
  g_line_bytes : int;  (** shared by every cell *)
  g_no_cache : bool;  (** bypass the store for every cell *)
}
(** A whole sweep grid in one request: the cross product
    [benchmarks x schemes x sizes_kb x ways], executed server-side on
    the sweep machinery — shared prepared benchmarks (one compile and
    trace per benchmark) and the daemon-wide snapshot cache
    ({!Wp_sim.Snapshot_cache}), so converged loop iterations recorded
    for one cell fast-forward every other cell whose fingerprints
    coincide.  Each cell is content-addressed in the store exactly
    like a standalone [Sim] request — a repeated grid is all store
    hits.  Cells stream back as they complete (many replies share the
    request id), terminated by a {!grid_summary}. *)

val grid_request :
  ?sizes_kb:int list ->
  ?ways:int list ->
  ?line_bytes:int ->
  ?no_cache:bool ->
  benchmarks:string list ->
  schemes:Wp_sim.Config.scheme list ->
  unit ->
  grid_request
(** Defaults: the paper's 32 KB / 32-way / 32 B geometry as a
    one-point size/ways grid, caching on. *)

val grid_cells :
  grid_request -> (string * Wp_sim.Config.scheme * int * int) list
(** The grid's cells [(benchmark, scheme, size_kb, ways)] in canonical
    order — benchmark-major, then scheme, size, ways.  A cell's
    position in this list is its {!grid_cell.gc_index}. *)

type payload =
  | Ping
  | Server_stats  (** counters since startup *)
  | Shutdown  (** begin a graceful stop: drain, then exit *)
  | Sim of sim_request
  | Mp of mp_request
  | Advise of advise_request
      (** run the static placement advisor
          ({!Wp_advise.Advisor.analyze}) — pure analysis, no
          simulation *)
  | Grid of grid_request
      (** a batched sweep: one request, one streamed reply per cell
          plus a terminal summary *)

type request = { id : int; payload : payload }
(** [id] is echoed verbatim in the response — requests may be
    pipelined and answered out of order. *)

val config_of_sim : sim_request -> (Wp_sim.Config.t, string) result
(** The {!Wp_sim.Config.t} the request describes (geometry errors and
    {!Wp_sim.Config.validate} failures reported as [Error]). *)

val config_of_mp : mp_request -> (Wp_sim.Config.t, string) result
(** Same, for the machine an mp request describes. *)

val config_of_geometry :
  scheme:Wp_sim.Config.scheme ->
  size_kb:int ->
  ways:int ->
  line_bytes:int ->
  (Wp_sim.Config.t, string) result
(** The building block under both: one grid cell's configuration. *)

val scheme_to_string : Wp_sim.Config.scheme -> string
(** The wire name: baseline, wayplace, waymemo, waypred or filter. *)

(** {1 Responses} *)

(** How a result was obtained. *)
type source =
  | Computed  (** this request ran the simulator *)
  | Memory  (** hot in-memory store hit *)
  | Disk  (** persisted store hit (now promoted to memory) *)
  | Coalesced  (** deduplicated onto another request's computation *)

val source_name : source -> string

type sim_result = {
  key : string;  (** content address of the (program, layout, config) *)
  source : source;
  digest : string;  (** MD5 hex of the marshalled {!Wp_sim.Stats.t} *)
  cycles : int;
  retired : int;
  fetches : int;
  icache_hits : int;
  icache_misses : int;
  icache_energy_pj : float;
  total_energy_pj : float;
}

val sim_result_of_stats :
  key:string -> source:source -> Wp_sim.Stats.t -> sim_result

type mp_result = {
  mpr_key : string;  (** content address of (mix, config, options) *)
  mpr_source : source;
  mpr_digest : string;  (** MD5 hex of the marshalled aggregate stats *)
  mpr_cycles : int;
  mpr_retired : int;
  mpr_processes : int;
  mpr_switches : int;
      (** machine-level fact the store does not persist: a disk hit
          served by a daemon that never ran the mix reports [-1] *)
  mpr_kernel_runs : int;  (** [-1] under the same condition *)
  mpr_icache_energy_pj : float;
  mpr_total_energy_pj : float;
}

val mp_result_of_stats :
  key:string ->
  source:source ->
  processes:int ->
  switches:int ->
  kernel_runs:int ->
  Wp_sim.Stats.t ->
  mp_result

type advise_result = {
  adr_key : string;
      (** content address of the (benchmark, geometry, area, page)
          inputs, ["advise-"]-prefixed *)
  adr_source : source;
  adr_digest : string;
      (** MD5 hex of the full marshalled {!Wp_advise.Advisor.t}, so a
          client can assert bit-identity against a locally computed
          report *)
  adr_static_min_ways : int;
  adr_min_area_bytes : int;
      (** {!Wp_advise.Oracle.area_for} the static bound *)
  adr_regions : int;
  adr_findings : int;
  adr_errors : int;
  adr_warnings : int;
  adr_schedule_points : int;
  adr_conflict_misses : int;  (** witnessed by the designated-way replay *)
  adr_env_lo_pj : float;
  adr_env_hi_pj : float;
  adr_predicted_delta_pj : float;
      (** [0.0] when the greedy search found no better order *)
}

val advise_result_of_report :
  key:string -> source:source -> Wp_advise.Advisor.t -> advise_result

type grid_cell = {
  gc_index : int;  (** position in {!grid_cells} order *)
  gc_benchmark : string;
  gc_scheme : Wp_sim.Config.scheme;
  gc_size_kb : int;
  gc_ways : int;
  gc_outcome : (sim_result, string) result;
      (** per-cell: one bad geometry or crashed computation fails that
          cell, not the grid *)
}
(** One streamed cell of a {!grid_request}.  Cells arrive in
    completion order, not index order — the echoed coordinates say
    what arrived. *)

type grid_summary = {
  gs_cells : int;
  gs_computed : int;
  gs_hits_memory : int;
  gs_hits_disk : int;
  gs_coalesced : int;
  gs_errors : int;
}
(** The terminal reply of a grid: how many cells there were and how
    each was sourced.  [gs_computed + gs_hits_memory + gs_hits_disk +
    gs_coalesced + gs_errors = gs_cells]. *)

type server_stats = {
  requests : int;  (** lines accepted (including malformed ones) *)
  sim_requests : int;
  computations : int;  (** simulator runs — the memoisation counter *)
  hits_memory : int;
  hits_disk : int;
  coalesced : int;
  errors : int;  (** requests answered with an error reply *)
  store_entries : int;  (** hot in-memory entries *)
  inflight : int;  (** keys currently being computed *)
  workers : int;  (** executor domains *)
  uptime_s : float;
}

type reply =
  | Pong
  | Stats_reply of server_stats
  | Shutting_down
  | Sim_reply of sim_result
  | Mp_reply of mp_result
  | Advise_reply of advise_result
  | Grid_cell_reply of grid_cell
      (** one cell of a [Grid] request, streamed on completion; the
          terminal {!grid_summary} always follows the last cell *)
  | Grid_done of grid_summary
  | Error_reply of string
      (** per-request failure: malformed request, unknown benchmark,
          invalid configuration, or a crashed computation — the
          connection and the daemon keep going *)

type response = { id : int; reply : reply }

(** {1 Wire encoding} *)

val request_to_json : request -> Wp_sim.Report.json
val request_of_json : Wp_sim.Report.json -> (request, string) result
val response_to_json : response -> Wp_sim.Report.json
val response_of_json : Wp_sim.Report.json -> (response, string) result

val request_to_line : request -> string
(** Compact JSON plus the terminating newline. *)

val response_to_line : response -> string

val request_of_line : string -> (request, string) result
(** Parse then decode; both failure modes are the same clean
    [Error]. *)

val response_of_line : string -> (response, string) result

val id_of_line : string -> int
(** Best-effort extraction of the [id] of a line that failed to
    decode, so error replies can still be correlated; [0] when even
    that is unrecoverable. *)
