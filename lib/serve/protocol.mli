(** The placement service's wire vocabulary.

    One request or response per line, each a single JSON object built
    on {!Wp_sim.Report}'s hand-rolled emitter and parsed back with
    {!Wp_sim.Report.parse} — the service-level counterpart of the
    sweep CLI's [--json] output.  Requests name a benchmark and a
    machine configuration; responses carry a compact result summary
    plus the MD5 of the marshalled {!Wp_sim.Stats.t}, so a client can
    assert bit-identity against a locally computed oracle without
    shipping every counter as text.

    Every decoder returns a clean [Error] on malformed input —
    truncated JSON, wrong field types, unknown discriminators — and
    never raises: the daemon feeds it raw client bytes. *)

(** Where the daemon listens / the client connects. *)
type endpoint =
  | Unix_socket of string  (** filesystem path *)
  | Tcp of string * int  (** host, port (0 = kernel-chosen) *)

val endpoint_to_string : endpoint -> string
val sockaddr_of_endpoint : endpoint -> (Unix.sockaddr, string) result

(** {1 Requests} *)

type sim_request = {
  benchmark : string;  (** MiBench name, {!Wp_workloads.Mibench.find} *)
  scheme : Wp_sim.Config.scheme;
  size_kb : int;  (** I-cache size *)
  ways : int;  (** I-cache associativity *)
  line_bytes : int;
  no_cache : bool;
      (** bypass the result store and in-flight coalescing: always run
          the simulator (the result is still stored) *)
  verify : bool;
      (** after computing, replay through the per-instruction
          reference loop and fail the request unless bit-identical —
          the differ's fast-path check as a service option.  Only
          computations triggered by this request are verified; a
          store hit or coalesced result is returned as-is. *)
}

val sim_request :
  ?size_kb:int ->
  ?ways:int ->
  ?line_bytes:int ->
  ?no_cache:bool ->
  ?verify:bool ->
  benchmark:string ->
  scheme:Wp_sim.Config.scheme ->
  unit ->
  sim_request
(** Defaults: the paper's 32 KB / 32-way / 32 B geometry, caching on,
    verification off. *)

type payload =
  | Ping
  | Server_stats  (** counters since startup *)
  | Shutdown  (** begin a graceful stop: drain, then exit *)
  | Sim of sim_request

type request = { id : int; payload : payload }
(** [id] is echoed verbatim in the response — requests may be
    pipelined and answered out of order. *)

val config_of_sim : sim_request -> (Wp_sim.Config.t, string) result
(** The {!Wp_sim.Config.t} the request describes (geometry errors and
    {!Wp_sim.Config.validate} failures reported as [Error]). *)

val scheme_to_string : Wp_sim.Config.scheme -> string
(** The wire name: baseline, wayplace, waymemo, waypred or filter. *)

(** {1 Responses} *)

(** How a result was obtained. *)
type source =
  | Computed  (** this request ran the simulator *)
  | Memory  (** hot in-memory store hit *)
  | Disk  (** persisted store hit (now promoted to memory) *)
  | Coalesced  (** deduplicated onto another request's computation *)

val source_name : source -> string

type sim_result = {
  key : string;  (** content address of the (program, layout, config) *)
  source : source;
  digest : string;  (** MD5 hex of the marshalled {!Wp_sim.Stats.t} *)
  cycles : int;
  retired : int;
  fetches : int;
  icache_hits : int;
  icache_misses : int;
  icache_energy_pj : float;
  total_energy_pj : float;
}

val sim_result_of_stats :
  key:string -> source:source -> Wp_sim.Stats.t -> sim_result

type server_stats = {
  requests : int;  (** lines accepted (including malformed ones) *)
  sim_requests : int;
  computations : int;  (** simulator runs — the memoisation counter *)
  hits_memory : int;
  hits_disk : int;
  coalesced : int;
  errors : int;  (** requests answered with an error reply *)
  store_entries : int;  (** hot in-memory entries *)
  inflight : int;  (** keys currently being computed *)
  workers : int;  (** executor domains *)
  uptime_s : float;
}

type reply =
  | Pong
  | Stats_reply of server_stats
  | Shutting_down
  | Sim_reply of sim_result
  | Error_reply of string
      (** per-request failure: malformed request, unknown benchmark,
          invalid configuration, or a crashed computation — the
          connection and the daemon keep going *)

type response = { id : int; reply : reply }

(** {1 Wire encoding} *)

val request_to_json : request -> Wp_sim.Report.json
val request_of_json : Wp_sim.Report.json -> (request, string) result
val response_to_json : response -> Wp_sim.Report.json
val response_of_json : Wp_sim.Report.json -> (response, string) result

val request_to_line : request -> string
(** Compact JSON plus the terminating newline. *)

val response_to_line : response -> string

val request_of_line : string -> (request, string) result
(** Parse then decode; both failure modes are the same clean
    [Error]. *)

val response_of_line : string -> (response, string) result

val id_of_line : string -> int
(** Best-effort extraction of the [id] of a line that failed to
    decode, so error replies can still be correlated; [0] when even
    that is unrecoverable. *)
