module P = Protocol

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  send_lock : Mutex.t;
  mutable next_id : int;
  mutable closed : bool;
}

let connect ?(attempts = 40) ?(retry_delay_s = 0.05) endpoint =
  match P.sockaddr_of_endpoint endpoint with
  | Error _ as e -> e
  | Ok addr ->
      let domain =
        match addr with
        | Unix.ADDR_UNIX _ -> Unix.PF_UNIX
        | Unix.ADDR_INET _ -> Unix.PF_INET
      in
      let rec attempt n =
        let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
        match Unix.connect fd addr with
        | () ->
            Ok
              {
                fd;
                ic = Unix.in_channel_of_descr fd;
                oc = Unix.out_channel_of_descr fd;
                send_lock = Mutex.create ();
                next_id = 1;
                closed = false;
              }
        | exception Unix.Unix_error (e, _, _) ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            let retryable =
              match e with
              | Unix.ECONNREFUSED | Unix.ENOENT | Unix.EAGAIN
              | Unix.ECONNRESET ->
                  true
              | _ -> false
            in
            if retryable && n > 1 then begin
              Thread.delay retry_delay_s;
              attempt (n - 1)
            end
            else
              Error
                (Printf.sprintf "cannot connect to %s: %s"
                   (P.endpoint_to_string endpoint)
                   (Unix.error_message e))
      in
      attempt (max 1 attempts)

let close t =
  Mutex.lock t.send_lock;
  let was_closed = t.closed in
  t.closed <- true;
  Mutex.unlock t.send_lock;
  if not was_closed then begin
    (try flush t.oc with Sys_error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let send t payload =
  Mutex.lock t.send_lock;
  match
    if t.closed then raise (Sys_error "client closed");
    let id = t.next_id in
    t.next_id <- id + 1;
    output_string t.oc (P.request_to_line { P.id; payload });
    flush t.oc;
    id
  with
  | id ->
      Mutex.unlock t.send_lock;
      id
  | exception e ->
      Mutex.unlock t.send_lock;
      raise e

let recv t =
  match input_line t.ic with
  | line -> P.response_of_line line
  | exception End_of_file -> Error "connection closed by server"
  | exception Sys_error msg -> Error (Printf.sprintf "connection lost: %s" msg)

let rpc t payload =
  match send t payload with
  | exception Sys_error msg -> Error msg
  | id ->
      let rec await () =
        match recv t with
        | Error _ as e -> e
        | Ok resp -> if resp.P.id = id then Ok resp.P.reply else await ()
      in
      await ()

let ping t =
  match rpc t P.Ping with
  | Ok P.Pong -> Ok ()
  | Ok (P.Error_reply msg) -> Error msg
  | Ok _ -> Error "unexpected reply to ping"
  | Error _ as e -> e

let server_stats t =
  match rpc t P.Server_stats with
  | Ok (P.Stats_reply s) -> Ok s
  | Ok (P.Error_reply msg) -> Error msg
  | Ok _ -> Error "unexpected reply to stats"
  | Error _ as e -> e

let shutdown t =
  match rpc t P.Shutdown with
  | Ok P.Shutting_down -> Ok ()
  | Ok (P.Error_reply msg) -> Error msg
  | Ok _ -> Error "unexpected reply to shutdown"
  | Error _ as e -> e

let sim t sr =
  match rpc t (P.Sim sr) with
  | Ok (P.Sim_reply r) -> Ok r
  | Ok (P.Error_reply msg) -> Error msg
  | Ok _ -> Error "unexpected reply to sim"
  | Error _ as e -> e

let mp t mr =
  match rpc t (P.Mp mr) with
  | Ok (P.Mp_reply r) -> Ok r
  | Ok (P.Error_reply msg) -> Error msg
  | Ok _ -> Error "unexpected reply to mp"
  | Error _ as e -> e

let advise t ar =
  match rpc t (P.Advise ar) with
  | Ok (P.Advise_reply r) -> Ok r
  | Ok (P.Error_reply msg) -> Error msg
  | Ok _ -> Error "unexpected reply to advise"
  | Error _ as e -> e

(* A grid is one request with many replies: collect streamed cells
   (invoking [on_cell] as each lands) until the terminal summary, then
   hand back the cells re-sorted into canonical index order. *)
let grid ?on_cell t gr =
  match send t (P.Grid gr) with
  | exception Sys_error msg -> Error msg
  | id ->
      let rec await cells =
        match recv t with
        | Error _ as e -> e
        | Ok resp ->
            if resp.P.id <> id then await cells
            else (
              match resp.P.reply with
              | P.Grid_cell_reply c ->
                  (match on_cell with Some f -> f c | None -> ());
                  await (c :: cells)
              | P.Grid_done s ->
                  Ok
                    ( List.sort
                        (fun a b -> compare a.P.gc_index b.P.gc_index)
                        cells,
                      s )
              | P.Error_reply msg -> Error msg
              | _ -> Error "unexpected reply to grid")
      in
      await []
