module Report = Wp_sim.Report
module Config = Wp_sim.Config
module Stats = Wp_sim.Stats

type endpoint = Unix_socket of string | Tcp of string * int

let endpoint_to_string = function
  | Unix_socket path -> Printf.sprintf "unix:%s" path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let sockaddr_of_endpoint = function
  | Unix_socket path ->
      if String.length path = 0 then Error "empty unix socket path"
      else if String.length path > 100 then
        Error (Printf.sprintf "unix socket path too long (%d bytes)" (String.length path))
      else Ok (Unix.ADDR_UNIX path)
  | Tcp (host, port) -> (
      if port < 0 || port > 0xffff then
        Error (Printf.sprintf "bad TCP port %d" port)
      else
        match Unix.inet_addr_of_string host with
        | addr -> Ok (Unix.ADDR_INET (addr, port))
        | exception Failure _ -> (
            match Unix.gethostbyname host with
            | { Unix.h_addr_list = [||]; _ } ->
                Error (Printf.sprintf "host %S has no address" host)
            | { Unix.h_addr_list; _ } -> Ok (Unix.ADDR_INET (h_addr_list.(0), port))
            | exception Not_found -> Error (Printf.sprintf "unknown host %S" host)))

(* --- requests ------------------------------------------------------- *)

type sim_request = {
  benchmark : string;
  scheme : Config.scheme;
  size_kb : int;
  ways : int;
  line_bytes : int;
  no_cache : bool;
  verify : bool;
}

let sim_request ?(size_kb = 32) ?(ways = 32) ?(line_bytes = 32)
    ?(no_cache = false) ?(verify = false) ~benchmark ~scheme () =
  { benchmark; scheme; size_kb; ways; line_bytes; no_cache; verify }

(* A multiprogrammed run: the mix is wire-encoded as the same compact
   string the CLI accepts — comma-separated MiBench names, or
   "random:SEED" for a Progen mix — so the request stays one JSON
   line; the daemon resolves it and content-addresses the result on
   the fully resolved (mix, machine config, scheduler options)
   triple. *)
type mp_request = {
  mp_mix : string;
  mp_coverage : string;  (** all | half | none | mix *)
  mp_quantum : int;  (** cycles; [<= 0] = infinite *)
  mp_kernel : bool;
  mp_btb_flush : bool;
  mp_drowsy_flush : bool;
  mp_priority : bool;
  mp_scheme : Config.scheme;
  mp_size_kb : int;
  mp_ways : int;
  mp_line_bytes : int;
  mp_no_cache : bool;
  mp_verify : bool;
}

let mp_request ?(coverage = "mix") ?(quantum = 50_000) ?(kernel = true)
    ?(btb_flush = false) ?(drowsy_flush = false) ?(priority = false)
    ?(size_kb = 32) ?(ways = 32) ?(line_bytes = 32) ?(no_cache = false)
    ?(verify = false) ~mix ~scheme () =
  {
    mp_mix = mix;
    mp_coverage = coverage;
    mp_quantum = quantum;
    mp_kernel = kernel;
    mp_btb_flush = btb_flush;
    mp_drowsy_flush = drowsy_flush;
    mp_priority = priority;
    mp_scheme = scheme;
    mp_size_kb = size_kb;
    mp_ways = ways;
    mp_line_bytes = line_bytes;
    mp_no_cache = no_cache;
    mp_verify = verify;
  }

(* A static-advisor run: pure analysis (no simulation), so the result
   is a compact summary the daemon memoises in memory, keyed like [mp]
   on the fully resolved inputs. *)
type advise_request = {
  ad_benchmark : string;
  ad_size_kb : int;
  ad_ways : int;
  ad_line_bytes : int;
  ad_area_kb : int;
  ad_page_bytes : int;
  ad_no_cache : bool;
}

let advise_request ?(size_kb = 32) ?(ways = 32) ?(line_bytes = 32)
    ?(area_kb = 16) ?(page_bytes = 1024) ?(no_cache = false) ~benchmark () =
  {
    ad_benchmark = benchmark;
    ad_size_kb = size_kb;
    ad_ways = ways;
    ad_line_bytes = line_bytes;
    ad_area_kb = area_kb;
    ad_page_bytes = page_bytes;
    ad_no_cache = no_cache;
  }

(* A whole sweep grid in one request: the cross product of benchmarks,
   schemes and geometries, executed server-side on the sweep machinery
   — shared prepared benchmarks (compiled traces) and the daemon-wide
   snapshot cache — with each cell content-addressed in the store
   exactly like a standalone [Sim] request.  Cells stream back as they
   complete, many replies sharing the request id, terminated by a
   [Grid_done] summary. *)
type grid_request = {
  g_benchmarks : string list;
  g_schemes : Config.scheme list;
  g_sizes_kb : int list;
  g_ways : int list;
  g_line_bytes : int;
  g_no_cache : bool;
}

let grid_request ?(sizes_kb = [ 32 ]) ?(ways = [ 32 ]) ?(line_bytes = 32)
    ?(no_cache = false) ~benchmarks ~schemes () =
  {
    g_benchmarks = benchmarks;
    g_schemes = schemes;
    g_sizes_kb = sizes_kb;
    g_ways = ways;
    g_line_bytes = line_bytes;
    g_no_cache = no_cache;
  }

(* The canonical cell order — benchmark-major, then scheme, size,
   ways — shared by the daemon (which numbers the streamed cells) and
   any client reassembling the grid. *)
let grid_cells gr =
  List.concat_map
    (fun b ->
      List.concat_map
        (fun s ->
          List.concat_map
            (fun kb -> List.map (fun w -> (b, s, kb, w)) gr.g_ways)
            gr.g_sizes_kb)
        gr.g_schemes)
    gr.g_benchmarks

type payload =
  | Ping
  | Server_stats
  | Shutdown
  | Sim of sim_request
  | Mp of mp_request
  | Advise of advise_request
  | Grid of grid_request

type request = { id : int; payload : payload }

let config_of_geometry ~scheme ~size_kb ~ways ~line_bytes =
  match
    Wp_cache.Geometry.make ~size_bytes:(size_kb * 1024) ~assoc:ways ~line_bytes
  with
  | exception Invalid_argument msg -> Error msg
  | geometry -> (
      let config = Config.with_icache (Config.xscale scheme) geometry in
      match Config.validate config with
      | Ok () -> Ok config
      | Error msg -> Error msg)

let config_of_sim sr =
  config_of_geometry ~scheme:sr.scheme ~size_kb:sr.size_kb ~ways:sr.ways
    ~line_bytes:sr.line_bytes

let config_of_mp mr =
  config_of_geometry ~scheme:mr.mp_scheme ~size_kb:mr.mp_size_kb
    ~ways:mr.mp_ways ~line_bytes:mr.mp_line_bytes

let scheme_to_string = function
  | Config.Baseline -> "baseline"
  | Config.Way_placement _ -> "wayplace"
  | Config.Way_memoization -> "waymemo"
  | Config.Way_prediction -> "waypred"
  | Config.Filter_cache _ -> "filter"

(* A scheme as a standalone object — the element encoding grid scheme
   lists use; [scheme_of_json] reads it back (it looks the "scheme"
   discriminator and the optional parameter fields up by name). *)
let scheme_to_json s =
  let fields =
    match s with
    | Config.Way_placement { area_bytes } ->
        [ ("area_bytes", Report.Jint area_bytes) ]
    | Config.Filter_cache { l0_bytes } -> [ ("l0_bytes", Report.Jint l0_bytes) ]
    | Config.Baseline | Config.Way_memoization | Config.Way_prediction -> []
  in
  Report.Jobj (("scheme", Report.Jstring (scheme_to_string s)) :: fields)

(* --- responses ------------------------------------------------------ *)

type source = Computed | Memory | Disk | Coalesced

let source_name = function
  | Computed -> "computed"
  | Memory -> "memory"
  | Disk -> "disk"
  | Coalesced -> "coalesced"

let source_of_name = function
  | "computed" -> Some Computed
  | "memory" -> Some Memory
  | "disk" -> Some Disk
  | "coalesced" -> Some Coalesced
  | _ -> None

type sim_result = {
  key : string;
  source : source;
  digest : string;
  cycles : int;
  retired : int;
  fetches : int;
  icache_hits : int;
  icache_misses : int;
  icache_energy_pj : float;
  total_energy_pj : float;
}

let sim_result_of_stats ~key ~source (stats : Stats.t) =
  {
    key;
    source;
    digest = Digest.to_hex (Digest.string (Marshal.to_string stats []));
    cycles = stats.Stats.cycles;
    retired = stats.Stats.retired_instrs;
    fetches = stats.Stats.fetches;
    icache_hits = stats.Stats.icache_hits;
    icache_misses = stats.Stats.icache_misses;
    icache_energy_pj = Stats.icache_energy_pj stats;
    total_energy_pj = Stats.total_energy_pj stats;
  }

(* The multiprogrammed counterpart of [sim_result].  [mp_switches] and
   [mp_kernel_runs] are machine-level facts the store does not persist
   (it stores only the aggregate [Stats.t]); a disk hit served by a
   daemon that never ran the mix reports them as [-1]. *)
type mp_result = {
  mpr_key : string;
  mpr_source : source;
  mpr_digest : string;
  mpr_cycles : int;
  mpr_retired : int;
  mpr_processes : int;
  mpr_switches : int;
  mpr_kernel_runs : int;
  mpr_icache_energy_pj : float;
  mpr_total_energy_pj : float;
}

let mp_result_of_stats ~key ~source ~processes ~switches ~kernel_runs
    (stats : Stats.t) =
  {
    mpr_key = key;
    mpr_source = source;
    mpr_digest = Digest.to_hex (Digest.string (Marshal.to_string stats []));
    mpr_cycles = stats.Stats.cycles;
    mpr_retired = stats.Stats.retired_instrs;
    mpr_processes = processes;
    mpr_switches = switches;
    mpr_kernel_runs = kernel_runs;
    mpr_icache_energy_pj = Stats.icache_energy_pj stats;
    mpr_total_energy_pj = Stats.total_energy_pj stats;
  }

(* The advisor report boiled down to the numbers a remote caller keys
   decisions on; the digest is the MD5 of the full marshalled report,
   so a client can assert the daemon's analysis is bit-identical to a
   locally computed one. *)
type advise_result = {
  adr_key : string;
  adr_source : source;
  adr_digest : string;
  adr_static_min_ways : int;
  adr_min_area_bytes : int;
  adr_regions : int;
  adr_findings : int;
  adr_errors : int;
  adr_warnings : int;
  adr_schedule_points : int;
  adr_conflict_misses : int;
  adr_env_lo_pj : float;
  adr_env_hi_pj : float;
  adr_predicted_delta_pj : float;
}

let advise_result_of_report ~key ~source (r : Wp_advise.Advisor.t) =
  {
    adr_key = key;
    adr_source = source;
    adr_digest = Digest.to_hex (Digest.string (Marshal.to_string r []));
    adr_static_min_ways = r.Wp_advise.Advisor.static_min_ways;
    adr_min_area_bytes =
      Wp_advise.Oracle.area_for ~geometry:r.Wp_advise.Advisor.geometry
        ~page_bytes:r.Wp_advise.Advisor.page_bytes
        ~ways:r.Wp_advise.Advisor.static_min_ways;
    adr_regions = List.length r.Wp_advise.Advisor.regions;
    adr_findings = List.length r.Wp_advise.Advisor.findings;
    adr_errors =
      List.length (Wp_lint.Finding.errors r.Wp_advise.Advisor.findings);
    adr_warnings =
      List.length (Wp_lint.Finding.warnings r.Wp_advise.Advisor.findings);
    adr_schedule_points = List.length r.Wp_advise.Advisor.schedule;
    adr_conflict_misses =
      r.Wp_advise.Advisor.replay.Wp_advise.Oracle.area_misses
      - r.Wp_advise.Advisor.replay.Wp_advise.Oracle.area_distinct_lines;
    adr_env_lo_pj =
      r.Wp_advise.Advisor.envelope.Wp_advise.Oracle.env_lo_pj;
    adr_env_hi_pj =
      r.Wp_advise.Advisor.envelope.Wp_advise.Oracle.env_hi_pj;
    adr_predicted_delta_pj =
      (match r.Wp_advise.Advisor.improvement with
      | None -> 0.0
      | Some i -> i.Wp_advise.Advisor.predicted_delta_pj);
  }

(* One streamed grid cell.  The coordinates are echoed so a client
   need not recompute [grid_cells] to know what arrived; the outcome
   is per-cell — one bad geometry or a crashed computation fails that
   cell, not the grid. *)
type grid_cell = {
  gc_index : int;
  gc_benchmark : string;
  gc_scheme : Config.scheme;
  gc_size_kb : int;
  gc_ways : int;
  gc_outcome : (sim_result, string) result;
}

type grid_summary = {
  gs_cells : int;
  gs_computed : int;
  gs_hits_memory : int;
  gs_hits_disk : int;
  gs_coalesced : int;
  gs_errors : int;
}

type server_stats = {
  requests : int;
  sim_requests : int;
  computations : int;
  hits_memory : int;
  hits_disk : int;
  coalesced : int;
  errors : int;
  store_entries : int;
  inflight : int;
  workers : int;
  uptime_s : float;
}

type reply =
  | Pong
  | Stats_reply of server_stats
  | Shutting_down
  | Sim_reply of sim_result
  | Mp_reply of mp_result
  | Advise_reply of advise_result
  | Grid_cell_reply of grid_cell
  | Grid_done of grid_summary
  | Error_reply of string

type response = { id : int; reply : reply }

(* --- decoding helpers ----------------------------------------------- *)

let ( let* ) = Result.bind

(* A required typed field: absence and a type mismatch are distinct,
   deliberate error messages — the test battery asserts both. *)
let field name conv j =
  match Report.member name j with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S has the wrong type" name))

let field_default name conv ~default j =
  match Report.member name j with
  | None -> Ok default
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S has the wrong type" name))

(* A required, non-empty JSON array whose elements decode with [conv]
   (itself result-valued, so scheme objects thread their own
   errors). *)
let field_list name conv j =
  match Report.member name j with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> (
      match Report.to_list v with
      | None -> Error (Printf.sprintf "field %S has the wrong type" name)
      | Some [] -> Error (Printf.sprintf "field %S is empty" name)
      | Some items ->
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | x :: rest -> (
                match conv x with
                | Ok y -> go (y :: acc) rest
                | Error _ as e -> e)
          in
          go [] items)

let elem name conv x =
  match conv x with
  | Some v -> Ok v
  | None ->
      Error (Printf.sprintf "field %S has an element of the wrong type" name)

(* --- request encoding ----------------------------------------------- *)

let request_to_json { id; payload } =
  let base = [ ("id", Report.Jint id) ] in
  match payload with
  | Ping -> Report.Jobj (base @ [ ("op", Report.Jstring "ping") ])
  | Server_stats -> Report.Jobj (base @ [ ("op", Report.Jstring "stats") ])
  | Shutdown -> Report.Jobj (base @ [ ("op", Report.Jstring "shutdown") ])
  | Sim sr ->
      let scheme_fields =
        match sr.scheme with
        | Config.Way_placement { area_bytes } ->
            [ ("area_bytes", Report.Jint area_bytes) ]
        | Config.Filter_cache { l0_bytes } ->
            [ ("l0_bytes", Report.Jint l0_bytes) ]
        | Config.Baseline | Config.Way_memoization | Config.Way_prediction ->
            []
      in
      Report.Jobj
        (base
        @ [
            ("op", Report.Jstring "sim");
            ("benchmark", Report.Jstring sr.benchmark);
            ("scheme", Report.Jstring (scheme_to_string sr.scheme));
          ]
        @ scheme_fields
        @ [
            ("size_kb", Report.Jint sr.size_kb);
            ("ways", Report.Jint sr.ways);
            ("line_bytes", Report.Jint sr.line_bytes);
            ("no_cache", Report.Jbool sr.no_cache);
            ("verify", Report.Jbool sr.verify);
          ])
  | Mp mr ->
      let scheme_fields =
        match mr.mp_scheme with
        | Config.Way_placement { area_bytes } ->
            [ ("area_bytes", Report.Jint area_bytes) ]
        | Config.Filter_cache { l0_bytes } ->
            [ ("l0_bytes", Report.Jint l0_bytes) ]
        | Config.Baseline | Config.Way_memoization | Config.Way_prediction ->
            []
      in
      Report.Jobj
        (base
        @ [
            ("op", Report.Jstring "mp");
            ("mix", Report.Jstring mr.mp_mix);
            ("coverage", Report.Jstring mr.mp_coverage);
            ("quantum", Report.Jint mr.mp_quantum);
            ("kernel", Report.Jbool mr.mp_kernel);
            ("btb_flush", Report.Jbool mr.mp_btb_flush);
            ("drowsy_flush", Report.Jbool mr.mp_drowsy_flush);
            ("priority", Report.Jbool mr.mp_priority);
            ("scheme", Report.Jstring (scheme_to_string mr.mp_scheme));
          ]
        @ scheme_fields
        @ [
            ("size_kb", Report.Jint mr.mp_size_kb);
            ("ways", Report.Jint mr.mp_ways);
            ("line_bytes", Report.Jint mr.mp_line_bytes);
            ("no_cache", Report.Jbool mr.mp_no_cache);
            ("verify", Report.Jbool mr.mp_verify);
          ])
  | Grid gr ->
      Report.Jobj
        (base
        @ [
            ("op", Report.Jstring "grid");
            ( "benchmarks",
              Report.Jlist
                (List.map (fun b -> Report.Jstring b) gr.g_benchmarks) );
            ("schemes", Report.Jlist (List.map scheme_to_json gr.g_schemes));
            ( "sizes_kb",
              Report.Jlist (List.map (fun n -> Report.Jint n) gr.g_sizes_kb) );
            ("ways", Report.Jlist (List.map (fun n -> Report.Jint n) gr.g_ways));
            ("line_bytes", Report.Jint gr.g_line_bytes);
            ("no_cache", Report.Jbool gr.g_no_cache);
          ])
  | Advise ar ->
      Report.Jobj
        (base
        @ [
            ("op", Report.Jstring "advise");
            ("benchmark", Report.Jstring ar.ad_benchmark);
            ("size_kb", Report.Jint ar.ad_size_kb);
            ("ways", Report.Jint ar.ad_ways);
            ("line_bytes", Report.Jint ar.ad_line_bytes);
            ("area_kb", Report.Jint ar.ad_area_kb);
            ("page_bytes", Report.Jint ar.ad_page_bytes);
            ("no_cache", Report.Jbool ar.ad_no_cache);
          ])

let scheme_of_json j =
  let* scheme_name = field "scheme" Report.to_string j in
  match scheme_name with
  | "baseline" -> Ok Config.Baseline
  | "wayplace" ->
      let* area_bytes =
        field_default "area_bytes" Report.to_int ~default:(16 * 1024) j
      in
      Ok (Config.Way_placement { area_bytes })
  | "waymemo" -> Ok Config.Way_memoization
  | "waypred" -> Ok Config.Way_prediction
  | "filter" ->
      let* l0_bytes = field_default "l0_bytes" Report.to_int ~default:512 j in
      Ok (Config.Filter_cache { l0_bytes })
  | other -> Error (Printf.sprintf "unknown scheme %S" other)

let sim_of_json j =
  let* benchmark = field "benchmark" Report.to_string j in
  let* scheme = scheme_of_json j in
  let* size_kb = field_default "size_kb" Report.to_int ~default:32 j in
  let* ways = field_default "ways" Report.to_int ~default:32 j in
  let* line_bytes = field_default "line_bytes" Report.to_int ~default:32 j in
  let* no_cache = field_default "no_cache" Report.to_bool ~default:false j in
  let* verify = field_default "verify" Report.to_bool ~default:false j in
  Ok { benchmark; scheme; size_kb; ways; line_bytes; no_cache; verify }

let mp_of_json j =
  let* mp_mix = field "mix" Report.to_string j in
  let* mp_coverage = field_default "coverage" Report.to_string ~default:"mix" j in
  let* mp_quantum = field_default "quantum" Report.to_int ~default:50_000 j in
  let* mp_kernel = field_default "kernel" Report.to_bool ~default:true j in
  let* mp_btb_flush = field_default "btb_flush" Report.to_bool ~default:false j in
  let* mp_drowsy_flush =
    field_default "drowsy_flush" Report.to_bool ~default:false j
  in
  let* mp_priority = field_default "priority" Report.to_bool ~default:false j in
  let* mp_scheme = scheme_of_json j in
  let* mp_size_kb = field_default "size_kb" Report.to_int ~default:32 j in
  let* mp_ways = field_default "ways" Report.to_int ~default:32 j in
  let* mp_line_bytes = field_default "line_bytes" Report.to_int ~default:32 j in
  let* mp_no_cache = field_default "no_cache" Report.to_bool ~default:false j in
  let* mp_verify = field_default "verify" Report.to_bool ~default:false j in
  Ok
    {
      mp_mix;
      mp_coverage;
      mp_quantum;
      mp_kernel;
      mp_btb_flush;
      mp_drowsy_flush;
      mp_priority;
      mp_scheme;
      mp_size_kb;
      mp_ways;
      mp_line_bytes;
      mp_no_cache;
      mp_verify;
    }

let advise_of_json j =
  let* ad_benchmark = field "benchmark" Report.to_string j in
  let* ad_size_kb = field_default "size_kb" Report.to_int ~default:32 j in
  let* ad_ways = field_default "ways" Report.to_int ~default:32 j in
  let* ad_line_bytes = field_default "line_bytes" Report.to_int ~default:32 j in
  let* ad_area_kb = field_default "area_kb" Report.to_int ~default:16 j in
  let* ad_page_bytes =
    field_default "page_bytes" Report.to_int ~default:1024 j
  in
  let* ad_no_cache = field_default "no_cache" Report.to_bool ~default:false j in
  Ok
    {
      ad_benchmark;
      ad_size_kb;
      ad_ways;
      ad_line_bytes;
      ad_area_kb;
      ad_page_bytes;
      ad_no_cache;
    }

let grid_of_json j =
  let* g_benchmarks =
    field_list "benchmarks" (elem "benchmarks" Report.to_string) j
  in
  let* g_schemes = field_list "schemes" scheme_of_json j in
  let* g_sizes_kb = field_list "sizes_kb" (elem "sizes_kb" Report.to_int) j in
  let* g_ways = field_list "ways" (elem "ways" Report.to_int) j in
  let* g_line_bytes = field_default "line_bytes" Report.to_int ~default:32 j in
  let* g_no_cache = field_default "no_cache" Report.to_bool ~default:false j in
  Ok { g_benchmarks; g_schemes; g_sizes_kb; g_ways; g_line_bytes; g_no_cache }

let request_of_json j =
  match j with
  | Report.Jobj _ ->
      let* id = field_default "id" Report.to_int ~default:0 j in
      let* op = field "op" Report.to_string j in
      let* payload =
        match op with
        | "ping" -> Ok Ping
        | "stats" -> Ok Server_stats
        | "shutdown" -> Ok Shutdown
        | "sim" ->
            let* sr = sim_of_json j in
            Ok (Sim sr)
        | "mp" ->
            let* mr = mp_of_json j in
            Ok (Mp mr)
        | "advise" ->
            let* ar = advise_of_json j in
            Ok (Advise ar)
        | "grid" ->
            let* gr = grid_of_json j in
            Ok (Grid gr)
        | other -> Error (Printf.sprintf "unknown op %S" other)
      in
      Ok { id; payload }
  | _ -> Error "request is not a JSON object"

(* --- response encoding ---------------------------------------------- *)

let server_stats_to_json s =
  Report.Jobj
    [
      ("requests", Report.Jint s.requests);
      ("sim_requests", Report.Jint s.sim_requests);
      ("computations", Report.Jint s.computations);
      ("hits_memory", Report.Jint s.hits_memory);
      ("hits_disk", Report.Jint s.hits_disk);
      ("coalesced", Report.Jint s.coalesced);
      ("errors", Report.Jint s.errors);
      ("store_entries", Report.Jint s.store_entries);
      ("inflight", Report.Jint s.inflight);
      ("workers", Report.Jint s.workers);
      ("uptime_s", Report.Jfloat s.uptime_s);
    ]

let server_stats_of_json j =
  let* requests = field "requests" Report.to_int j in
  let* sim_requests = field "sim_requests" Report.to_int j in
  let* computations = field "computations" Report.to_int j in
  let* hits_memory = field "hits_memory" Report.to_int j in
  let* hits_disk = field "hits_disk" Report.to_int j in
  let* coalesced = field "coalesced" Report.to_int j in
  let* errors = field "errors" Report.to_int j in
  let* store_entries = field "store_entries" Report.to_int j in
  let* inflight = field "inflight" Report.to_int j in
  let* workers = field "workers" Report.to_int j in
  let* uptime_s = field "uptime_s" Report.to_float j in
  Ok
    {
      requests;
      sim_requests;
      computations;
      hits_memory;
      hits_disk;
      coalesced;
      errors;
      store_entries;
      inflight;
      workers;
      uptime_s;
    }

let sim_result_to_json r =
  Report.Jobj
    [
      ("key", Report.Jstring r.key);
      ("source", Report.Jstring (source_name r.source));
      ("digest", Report.Jstring r.digest);
      ("cycles", Report.Jint r.cycles);
      ("retired", Report.Jint r.retired);
      ("fetches", Report.Jint r.fetches);
      ("icache_hits", Report.Jint r.icache_hits);
      ("icache_misses", Report.Jint r.icache_misses);
      ("icache_energy_pj", Report.Jfloat r.icache_energy_pj);
      ("total_energy_pj", Report.Jfloat r.total_energy_pj);
    ]

let sim_result_of_json j =
  let* key = field "key" Report.to_string j in
  let* source_s = field "source" Report.to_string j in
  let* source =
    match source_of_name source_s with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "unknown source %S" source_s)
  in
  let* digest = field "digest" Report.to_string j in
  let* cycles = field "cycles" Report.to_int j in
  let* retired = field "retired" Report.to_int j in
  let* fetches = field "fetches" Report.to_int j in
  let* icache_hits = field "icache_hits" Report.to_int j in
  let* icache_misses = field "icache_misses" Report.to_int j in
  let* icache_energy_pj = field "icache_energy_pj" Report.to_float j in
  let* total_energy_pj = field "total_energy_pj" Report.to_float j in
  Ok
    {
      key;
      source;
      digest;
      cycles;
      retired;
      fetches;
      icache_hits;
      icache_misses;
      icache_energy_pj;
      total_energy_pj;
    }

let mp_result_to_json r =
  Report.Jobj
    [
      ("key", Report.Jstring r.mpr_key);
      ("source", Report.Jstring (source_name r.mpr_source));
      ("digest", Report.Jstring r.mpr_digest);
      ("cycles", Report.Jint r.mpr_cycles);
      ("retired", Report.Jint r.mpr_retired);
      ("processes", Report.Jint r.mpr_processes);
      ("switches", Report.Jint r.mpr_switches);
      ("kernel_runs", Report.Jint r.mpr_kernel_runs);
      ("icache_energy_pj", Report.Jfloat r.mpr_icache_energy_pj);
      ("total_energy_pj", Report.Jfloat r.mpr_total_energy_pj);
    ]

let mp_result_of_json j =
  let* mpr_key = field "key" Report.to_string j in
  let* source_s = field "source" Report.to_string j in
  let* mpr_source =
    match source_of_name source_s with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "unknown source %S" source_s)
  in
  let* mpr_digest = field "digest" Report.to_string j in
  let* mpr_cycles = field "cycles" Report.to_int j in
  let* mpr_retired = field "retired" Report.to_int j in
  let* mpr_processes = field "processes" Report.to_int j in
  let* mpr_switches = field "switches" Report.to_int j in
  let* mpr_kernel_runs = field "kernel_runs" Report.to_int j in
  let* mpr_icache_energy_pj = field "icache_energy_pj" Report.to_float j in
  let* mpr_total_energy_pj = field "total_energy_pj" Report.to_float j in
  Ok
    {
      mpr_key;
      mpr_source;
      mpr_digest;
      mpr_cycles;
      mpr_retired;
      mpr_processes;
      mpr_switches;
      mpr_kernel_runs;
      mpr_icache_energy_pj;
      mpr_total_energy_pj;
    }

let advise_result_to_json r =
  Report.Jobj
    [
      ("key", Report.Jstring r.adr_key);
      ("source", Report.Jstring (source_name r.adr_source));
      ("digest", Report.Jstring r.adr_digest);
      ("static_min_ways", Report.Jint r.adr_static_min_ways);
      ("min_area_bytes", Report.Jint r.adr_min_area_bytes);
      ("regions", Report.Jint r.adr_regions);
      ("findings", Report.Jint r.adr_findings);
      ("errors", Report.Jint r.adr_errors);
      ("warnings", Report.Jint r.adr_warnings);
      ("schedule_points", Report.Jint r.adr_schedule_points);
      ("conflict_misses", Report.Jint r.adr_conflict_misses);
      ("env_lo_pj", Report.Jfloat r.adr_env_lo_pj);
      ("env_hi_pj", Report.Jfloat r.adr_env_hi_pj);
      ("predicted_delta_pj", Report.Jfloat r.adr_predicted_delta_pj);
    ]

let advise_result_of_json j =
  let* adr_key = field "key" Report.to_string j in
  let* source_s = field "source" Report.to_string j in
  let* adr_source =
    match source_of_name source_s with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "unknown source %S" source_s)
  in
  let* adr_digest = field "digest" Report.to_string j in
  let* adr_static_min_ways = field "static_min_ways" Report.to_int j in
  let* adr_min_area_bytes = field "min_area_bytes" Report.to_int j in
  let* adr_regions = field "regions" Report.to_int j in
  let* adr_findings = field "findings" Report.to_int j in
  let* adr_errors = field "errors" Report.to_int j in
  let* adr_warnings = field "warnings" Report.to_int j in
  let* adr_schedule_points = field "schedule_points" Report.to_int j in
  let* adr_conflict_misses = field "conflict_misses" Report.to_int j in
  let* adr_env_lo_pj = field "env_lo_pj" Report.to_float j in
  let* adr_env_hi_pj = field "env_hi_pj" Report.to_float j in
  let* adr_predicted_delta_pj = field "predicted_delta_pj" Report.to_float j in
  Ok
    {
      adr_key;
      adr_source;
      adr_digest;
      adr_static_min_ways;
      adr_min_area_bytes;
      adr_regions;
      adr_findings;
      adr_errors;
      adr_warnings;
      adr_schedule_points;
      adr_conflict_misses;
      adr_env_lo_pj;
      adr_env_hi_pj;
      adr_predicted_delta_pj;
    }

let grid_cell_to_json c =
  Report.Jobj
    ([
       ("index", Report.Jint c.gc_index);
       ("benchmark", Report.Jstring c.gc_benchmark);
       ("scheme", scheme_to_json c.gc_scheme);
       ("size_kb", Report.Jint c.gc_size_kb);
       ("ways", Report.Jint c.gc_ways);
     ]
    @
    match c.gc_outcome with
    | Ok r -> [ ("result", sim_result_to_json r) ]
    | Error msg -> [ ("error", Report.Jstring msg) ])

let grid_cell_of_json j =
  let* gc_index = field "index" Report.to_int j in
  let* gc_benchmark = field "benchmark" Report.to_string j in
  let* sj = field "scheme" Option.some j in
  let* gc_scheme = scheme_of_json sj in
  let* gc_size_kb = field "size_kb" Report.to_int j in
  let* gc_ways = field "ways" Report.to_int j in
  let* gc_outcome =
    match Report.member "error" j with
    | Some (Report.Jstring msg) -> Ok (Error msg)
    | Some _ -> Error "field \"error\" has the wrong type"
    | None ->
        let* r = field "result" Option.some j in
        let* r = sim_result_of_json r in
        Ok (Ok r)
  in
  Ok { gc_index; gc_benchmark; gc_scheme; gc_size_kb; gc_ways; gc_outcome }

let grid_summary_to_json s =
  Report.Jobj
    [
      ("cells", Report.Jint s.gs_cells);
      ("computed", Report.Jint s.gs_computed);
      ("hits_memory", Report.Jint s.gs_hits_memory);
      ("hits_disk", Report.Jint s.gs_hits_disk);
      ("coalesced", Report.Jint s.gs_coalesced);
      ("errors", Report.Jint s.gs_errors);
    ]

let grid_summary_of_json j =
  let* gs_cells = field "cells" Report.to_int j in
  let* gs_computed = field "computed" Report.to_int j in
  let* gs_hits_memory = field "hits_memory" Report.to_int j in
  let* gs_hits_disk = field "hits_disk" Report.to_int j in
  let* gs_coalesced = field "coalesced" Report.to_int j in
  let* gs_errors = field "errors" Report.to_int j in
  Ok
    {
      gs_cells;
      gs_computed;
      gs_hits_memory;
      gs_hits_disk;
      gs_coalesced;
      gs_errors;
    }

let response_to_json { id; reply } =
  let base = [ ("id", Report.Jint id) ] in
  match reply with
  | Pong -> Report.Jobj (base @ [ ("reply", Report.Jstring "pong") ])
  | Shutting_down ->
      Report.Jobj (base @ [ ("reply", Report.Jstring "shutting-down") ])
  | Stats_reply s ->
      Report.Jobj
        (base
        @ [
            ("reply", Report.Jstring "server-stats");
            ("stats", server_stats_to_json s);
          ])
  | Sim_reply r ->
      Report.Jobj
        (base
        @ [ ("reply", Report.Jstring "result"); ("result", sim_result_to_json r) ])
  | Mp_reply r ->
      Report.Jobj
        (base
        @ [
            ("reply", Report.Jstring "mp-result");
            ("result", mp_result_to_json r);
          ])
  | Advise_reply r ->
      Report.Jobj
        (base
        @ [
            ("reply", Report.Jstring "advise-result");
            ("result", advise_result_to_json r);
          ])
  | Grid_cell_reply c ->
      Report.Jobj
        (base
        @ [ ("reply", Report.Jstring "grid-cell"); ("cell", grid_cell_to_json c) ])
  | Grid_done s ->
      Report.Jobj
        (base
        @ [
            ("reply", Report.Jstring "grid-done");
            ("summary", grid_summary_to_json s);
          ])
  | Error_reply msg ->
      Report.Jobj
        (base @ [ ("reply", Report.Jstring "error"); ("error", Report.Jstring msg) ])

let response_of_json j =
  match j with
  | Report.Jobj _ ->
      let* id = field_default "id" Report.to_int ~default:0 j in
      let* kind = field "reply" Report.to_string j in
      let* reply =
        match kind with
        | "pong" -> Ok Pong
        | "shutting-down" -> Ok Shutting_down
        | "server-stats" ->
            let* s = field "stats" Option.some j in
            let* s = server_stats_of_json s in
            Ok (Stats_reply s)
        | "result" ->
            let* r = field "result" Option.some j in
            let* r = sim_result_of_json r in
            Ok (Sim_reply r)
        | "mp-result" ->
            let* r = field "result" Option.some j in
            let* r = mp_result_of_json r in
            Ok (Mp_reply r)
        | "advise-result" ->
            let* r = field "result" Option.some j in
            let* r = advise_result_of_json r in
            Ok (Advise_reply r)
        | "grid-cell" ->
            let* c = field "cell" Option.some j in
            let* c = grid_cell_of_json c in
            Ok (Grid_cell_reply c)
        | "grid-done" ->
            let* s = field "summary" Option.some j in
            let* s = grid_summary_of_json s in
            Ok (Grid_done s)
        | "error" ->
            let* msg = field "error" Report.to_string j in
            Ok (Error_reply msg)
        | other -> Error (Printf.sprintf "unknown reply kind %S" other)
      in
      Ok { id; reply }
  | _ -> Error "response is not a JSON object"

(* --- line level ------------------------------------------------------ *)

let request_to_line r = Report.json_to_string (request_to_json r) ^ "\n"
let response_to_line r = Report.json_to_string (response_to_json r) ^ "\n"

let request_of_line line =
  let* j = Report.parse line in
  request_of_json j

let response_of_line line =
  let* j = Report.parse line in
  response_of_json j

let id_of_line line =
  match Report.parse line with
  | Ok j -> (
      match Report.member "id" j with
      | Some (Report.Jint id) -> id
      | _ -> 0)
  | Error _ -> 0
