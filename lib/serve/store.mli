(** Content-addressed result store: the daemon's memoisation table.

    A result is keyed by the MD5 of the marshalled
    [(program, layout order, Config.t)] triple — the complete input of
    a simulation, not the benchmark's {e name} — so a regenerated
    program or a different layout can never alias a stale entry
    (generalising the sweep engine's marshalled-config keys to content
    addressing).  Values are {!Wp_sim.Stats.t}, held in a hot
    in-memory table and, when the store was created with a directory,
    persisted to disk so they survive restarts.

    The disk format is defensive: a magic header, the payload digest,
    then the marshalled stats, written to a temporary file in the same
    directory and [rename]d into place — atomic on POSIX, so two
    daemons pointed at the same directory never clobber each other
    into a torn entry.  A corrupt, truncated or zero-length entry is
    detected on load, evicted (unlinked), and reported as a miss: the
    daemon recomputes instead of serving garbage.

    All operations are thread- and domain-safe. *)

type t

val create : ?dir:string -> unit -> (t, string) result
(** Memory-only without [dir]; with it, the directory is created if
    missing (one level) and entries persist there.  [Error] if the
    directory cannot be created or is not writable. *)

val dir : t -> string option

val key :
  program:Wp_workloads.Codegen.t ->
  order:Wp_cfg.Basic_block.id array ->
  config:Wp_sim.Config.t ->
  string
(** The content address (MD5 hex of the marshalled triple). *)

val stats_digest : Wp_sim.Stats.t -> string
(** MD5 hex of the marshalled stats — the bit-identity token carried
    in protocol responses. *)

val find : t -> string -> (Wp_sim.Stats.t * [ `Memory | `Disk ]) option
(** Memory first, then disk; a disk hit is promoted into memory.
    Distinct calls that hit memory return the {e same} stats value —
    callers must not mutate it. *)

val put : t -> string -> Wp_sim.Stats.t -> unit
(** Record into memory and (if persistent) to disk.  An existing disk
    entry is left alone — the store is content-addressed, so it can
    only hold the same bytes.  Disk write failures degrade silently to
    a memory-only entry (counted in {!write_failures}): persistence is
    an optimisation, never a correctness requirement. *)

val memory_entries : t -> int
val disk_entries : t -> int
(** Entries currently persisted ([0] for a memory-only store). *)

val evictions : t -> int
(** Corrupt / truncated disk entries detected and removed so far. *)

val write_failures : t -> int
