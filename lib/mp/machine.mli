(** The multiprogrammed machine: N processes time-sliced on one
    simulated core.

    One shared fetch path ({!Wp_sim.Fetch_engine}: CAM I-cache, I-TLB,
    way hint, drowsy state), one shared data side and one shared BTB
    serve every process — cache contents are physical and deliberately
    survive context switches, so way-placed and non-way-placed
    processes pollute each other's ways.  Per process the machine keeps
    the compiled image (laid out at a private page-aligned base, so
    address windows never overlap), a data stream, and a {!Wp_sim.Stats.t}
    receiving every counter bump and energy charge the process causes.

    A context switch costs: the interrupt-handler kernel ({!Kernel},
    charged to the system account), a full I-TLB + D-TLB shootdown (no
    ASIDs), optionally a BTB reset and a drowsy full-sleep, and the
    way-placement window retarget for the incoming process.

    Scheduling runs on the block-batched fast path inside a quantum
    and bails to the per-instruction reference loop only when a probe
    is attached (or [reference_only] is set); both paths produce
    bit-identical [Stats.t] — the mp differ asserts it over the fuzz
    corpus.  With a single-process mix, an infinite quantum and no
    kernel, the aggregate is bit-identical to {!Wp_sim.Simulator.run}
    (provided the process is placed iff the scheme is way-placement) —
    the identity oracle. *)

type btb_policy =
  | Btb_shared  (** BTB survives switches (physically indexed) *)
  | Btb_flush  (** BTB reset at every address-space change *)

type drowsy_policy =
  | Drowsy_shared
      (** drowsy timestamps survive a switch, rebased onto the incoming
          process's fetch clock *)
  | Drowsy_flush  (** every line dropped drowsy at a switch *)

type sched_policy =
  | Round_robin
  | Priority  (** highest static priority; round-robin among equals *)

type options = {
  quantum_cycles : int;  (** time slice in cycles; [<= 0] = infinite *)
  kernel : bool;  (** run the interrupt kernel at switch boundaries *)
  btb_policy : btb_policy;
  drowsy_policy : drowsy_policy;
  sched : sched_policy;
}

val default_options : options
(** 50k-cycle quantum, kernel on, shared BTB and drowsy state,
    round-robin. *)

val oracle_options : options
(** Infinite quantum, no kernel — the identity-oracle configuration. *)

type process_result = {
  pr_name : string;
  pr_placed : bool;  (** effective placement (scheme-dependent) *)
  pr_base : Wp_isa.Addr.t;  (** where the image was laid out *)
  pr_stats : Wp_sim.Stats.t;
      (** everything this process caused: counters, cycles, retired
          instructions and energy *)
  pr_dispatches : int;
}

type result = {
  aggregate : Wp_sim.Stats.t;
      (** per-process + system, counter by counter and bucket by
          bucket: attribution sums to this exactly *)
  processes : process_result list;  (** in mix order *)
  system : Wp_sim.Stats.t;
      (** the OS share: kernel fetches/cycles and the machine's
          leakage charge *)
  switches : int;  (** dispatches that changed the running process *)
  kernel_runs : int;
  timer_fires : int;  (** quantum expiries *)
}

val switches_per_million : result -> float
(** Context switches per million retired instructions — the headline
    pressure metric of the quantum-sweep experiment. *)

val run :
  ?probe:Wp_obs.Probe.t ->
  ?reference_only:bool ->
  ?fastforward:bool ->
  ?ff_policy:Wp_sim.Steady_state.policy ->
  ?ff_report:Wp_sim.Steady_state.report ->
  ?snapshot_cache:Wp_sim.Snapshot_cache.t ->
  config:Wp_sim.Config.t ->
  options:options ->
  Mix.t ->
  result
(** Run the mix to completion (every process drains its trace).
    [probe] observes the machine-wide event stream — counter events
    from the shared engine, per-process and system energy, cumulative
    machine [Retire] ticks, and a [Context_switch] marker per switch —
    and forces the reference loop.

    On the fast path each user process carries a resumable
    {!Wp_sim.Steady_state} driver: hot loops fast-forward inside a
    quantum, skips are capped so they never cross a quantum boundary
    (context switches land on exactly the reference loop's block
    boundaries), and with a [snapshot_cache] a loop interrupted by a
    switch re-converges from its cached iteration instead of
    re-recording.  [fastforward] defaults to
    {!Wp_sim.Simulator.set_fastforward_default}'s setting; results are
    bit-identical with fast-forward on or off, cache or no cache — the
    mp differ asserts it over the fuzz corpus.
    @raise Invalid_argument on an invalid config or mix. *)
