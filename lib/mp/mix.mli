(** Process mixes for the multiprogramming layer.

    A mix is an ordered list of processes, each carrying its own
    workload specification, a flag saying whether its code is
    way-placed (compiled with the placement pass and mapped into a
    way-placement window), and a static priority for the optional
    priority scheduler.  The mix plus the machine {!Wp_sim.Config.t}
    and the scheduler options fully determine a multiprogrammed run —
    the serve daemon content-addresses results on exactly that
    triple. *)

type coverage = All_placed | Half_placed | None_placed

type proc = {
  pname : string;
  spec : Wp_workloads.Spec.t;
  placed : bool;
      (** way-placed: compiled with the placement pass and dispatched
          with a live way-placement window (only meaningful under a
          [Way_placement] machine scheme) *)
  priority : int;  (** higher runs first under the priority scheduler *)
}

type t = proc list

val coverage_name : coverage -> string
val coverage_of_string : string -> (coverage, string) result

val apply_coverage : coverage -> t -> t
(** Overwrite every [placed] flag: all, every second process (even
    indices), or none. *)

val of_specs : ?coverage:coverage -> Wp_workloads.Spec.t list -> t
(** All priorities 0; [coverage] defaults to [All_placed]. *)

val of_names : ?coverage:coverage -> string list -> (t, string) result
(** Look the names up in the MiBench model suite (including the loop
    variants). *)

val validate : t -> (unit, string) result
(** Non-empty and every member spec valid. *)

val pp : Format.formatter -> t -> unit
