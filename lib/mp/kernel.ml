(* The interrupt-handler kernel: a small fixed ICFG the scheduler runs
   at every switch boundary, so the switch itself costs fetch energy
   and I-TLB churn.  The kernel is mapped into every address space
   (like a real OS) below the user code window, laid out by the
   placement pass into its own reserved placement area; its fetch
   energy and cycles are charged to the machine's system account, not
   to any process. *)

let base = 0x4000

let spec =
  {
    Wp_workloads.Spec.name = "mp-kernel";
    seed = 0xC0DE;
    num_funcs = 2;
    blocks_per_func_min = 2;
    blocks_per_func_max = 4;
    instrs_per_block_min = 3;
    instrs_per_block_max = 6;
    max_loop_depth = 1;
    avg_loop_trips = 3;
    hot_func_fraction = 1.0;
    hot_call_bias = 0.5;
    if_taken_bias = 0.5;
    mem_ratio = 0.05;
    mac_ratio = 0.0;
    data_working_set_bytes = 256;
    trace_blocks_large = 24;
    trace_blocks_small = 24;
  }

type t = {
  program : Wp_workloads.Codegen.t;
  layout : Wp_layout.Binary_layout.t;
  compiled : Wp_sim.Compiled_trace.t;
  trace : Wp_workloads.Tracer.trace;
  area_bytes : int;  (** the reserved placement area, page-aligned *)
}

let align_up n ~quantum = (n + quantum - 1) / quantum * quantum

let prepare ~page_bytes =
  (match Wp_workloads.Spec.validate spec with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Kernel.prepare: invalid kernel spec: " ^ msg));
  let program = Wp_workloads.Codegen.generate spec in
  let graph = program.Wp_workloads.Codegen.graph in
  let profile =
    Wp_workloads.Tracer.profile program Wp_workloads.Tracer.Small
  in
  let layout =
    Wp_layout.Binary_layout.of_order graph ~base
      (Wp_layout.Placer.place graph profile)
  in
  let code_size = Wp_layout.Binary_layout.code_size_bytes layout in
  if base + code_size > Wp_sim.Simulator.code_base then
    invalid_arg "Kernel.prepare: kernel image overlaps user code base";
  {
    program;
    layout;
    compiled = Wp_sim.Compiled_trace.make ~program ~layout;
    trace = Wp_workloads.Tracer.trace program Wp_workloads.Tracer.Small;
    area_bytes = align_up code_size ~quantum:page_bytes;
  }
