module Config = Wp_sim.Config
module Stats = Wp_sim.Stats
module Simulator = Wp_sim.Simulator
module Steady_state = Wp_sim.Steady_state
module Snapshot_cache = Wp_sim.Snapshot_cache
module Compiled_trace = Wp_sim.Compiled_trace
module Fetch_engine = Wp_sim.Fetch_engine
module Dmem = Wp_sim.Dmem
module Data_stream = Wp_sim.Data_stream
module Account = Wp_energy.Account
module Btb = Wp_pipeline.Btb
module Tracer = Wp_workloads.Tracer
module Codegen = Wp_workloads.Codegen
module Probe = Wp_obs.Probe

type btb_policy = Btb_shared | Btb_flush
type drowsy_policy = Drowsy_shared | Drowsy_flush
type sched_policy = Round_robin | Priority

type options = {
  quantum_cycles : int;
  kernel : bool;
  btb_policy : btb_policy;
  drowsy_policy : drowsy_policy;
  sched : sched_policy;
}

let default_options =
  {
    quantum_cycles = 50_000;
    kernel = true;
    btb_policy = Btb_shared;
    drowsy_policy = Drowsy_shared;
    sched = Round_robin;
  }

let oracle_options =
  {
    quantum_cycles = 0;
    kernel = false;
    btb_policy = Btb_shared;
    drowsy_policy = Drowsy_shared;
    sched = Round_robin;
  }

type process_result = {
  pr_name : string;
  pr_placed : bool;
  pr_base : Wp_isa.Addr.t;
  pr_stats : Stats.t;
  pr_dispatches : int;
}

type result = {
  aggregate : Stats.t;
  processes : process_result list;
  system : Stats.t;
  switches : int;
  kernel_runs : int;
  timer_fires : int;
}

let switches_per_million r =
  if r.aggregate.Stats.retired_instrs = 0 then 0.0
  else
    float_of_int r.switches *. 1_000_000.0
    /. float_of_int r.aggregate.Stats.retired_instrs

(* One process's share of the machine: its compiled image at a private
   base address, its own data stream and [Stats.t], and its scheduling
   state.  The interrupt kernel reuses the same record (charging into
   the system stats) so both run through the same execution paths. *)
type proc_state = {
  pname : string;
  placed : bool;  (** effective: mix flag && way-placement scheme *)
  priority : int;
  base : Wp_isa.Addr.t;
  warea : int;  (** way-placed window bytes at [base]; 0 if unplaced *)
  token : int;  (** this process's {!Compiled_trace.token} *)
  trace_blocks : int array;
  info : Compiled_trace.block_info array;
  plan : Compiled_trace.plan;
  starts : int array;
  bodies : Wp_isa.Instr.t array array;
  taken_succs : int array;
  data : Data_stream.t;
  stats : Stats.t;
  mutable k : int;  (** next trace position *)
  mutable cycles : int;
  mutable instrs : int;
  mutable dispatches : int;
}

let align_up n ~quantum = (n + quantum - 1) / quantum * quantum

let proc_state_of_compiled (config : Config.t) ~pname ~placed ~priority ~base
    ~warea ~(trace : Tracer.trace) ~seed ~stats compiled =
  {
    pname;
    placed;
    priority;
    base;
    warea;
    token = Compiled_trace.token compiled;
    trace_blocks = trace.Tracer.blocks;
    info = Compiled_trace.info compiled;
    plan =
      Compiled_trace.plan compiled
        ~line_bytes:config.icache.Wp_cache.Geometry.line_bytes;
    starts = Compiled_trace.starts compiled;
    bodies = Compiled_trace.bodies compiled;
    taken_succs = Compiled_trace.taken_succs compiled;
    data = Data_stream.create ~seed:(seed lxor 0xDA7A);
    stats;
    k = 0;
    cycles = 0;
    instrs = 0;
    dispatches = 0;
  }

(* Lay one process out at [base]: placed processes get the placement
   pass's order and a live way-placement window of the machine's
   configured area; the rest keep the original order and no window.
   Returns the state plus the next free page-aligned base, reserving
   the larger of the code image and the placement window so process
   address windows never overlap. *)
let prepare_proc (config : Config.t) ~base (p : Mix.proc) =
  let spec = p.Mix.spec in
  let program = Codegen.generate spec in
  let graph = program.Codegen.graph in
  let placed, warea =
    match config.scheme with
    | Config.Way_placement { area_bytes } when p.Mix.placed ->
        (true, area_bytes)
    | Config.Way_placement _ | Config.Baseline | Config.Way_memoization
    | Config.Way_prediction | Config.Filter_cache _ ->
        (false, 0)
  in
  let order =
    if placed then
      Wp_layout.Placer.place graph (Tracer.profile program Tracer.Small)
    else Wp_layout.Placer.original graph
  in
  let layout = Wp_layout.Binary_layout.of_order graph ~base order in
  let compiled = Compiled_trace.make ~program ~layout in
  let trace = Tracer.trace program Tracer.Large in
  let footprint =
    let code = Wp_layout.Binary_layout.code_size_bytes layout in
    if code > warea then code else warea
  in
  let next_base = align_up (base + footprint) ~quantum:config.page_bytes in
  ( proc_state_of_compiled config ~pname:p.Mix.pname ~placed
      ~priority:p.Mix.priority ~base ~warea ~trace
      ~seed:spec.Wp_workloads.Spec.seed ~stats:(Stats.create ()) compiled,
    next_base )

(* One process's fast-forward state: the resumable detector plus the
   process-lifetime cycle/instruction accumulators its skips land in
   (reconciled into the machine counters after every quantum). *)
type ff_state = {
  drv : Steady_state.driver;
  c : int ref;  (** = [p.cycles] between quanta; runs ahead inside one *)
  ins : int ref;  (** likewise for [p.instrs] *)
  q_base : int ref;  (** [!c] at the current quantum's dispatch *)
}

let run ?probe ?(reference_only = false) ?fastforward
    ?(ff_policy = Steady_state.default_policy) ?ff_report ?snapshot_cache
    ~(config : Config.t) ~options mix =
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Machine.run: " ^ msg));
  (match Mix.validate mix with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Machine.run: " ^ msg));
  let reference = reference_only || Option.is_some probe in
  let quantum =
    if options.quantum_cycles <= 0 then max_int else options.quantum_cycles
  in
  let system = Stats.create () in
  (* Process 0 sits exactly at [Simulator.code_base] — the identity
     oracle relies on a single-process mix seeing the very addresses
     [Simulator.run] uses. *)
  let procs =
    let next = ref Simulator.code_base in
    Array.of_list
      (List.map
         (fun p ->
           let st, next' = prepare_proc config ~base:!next p in
           next := next';
           st)
         mix)
  in
  let n = Array.length procs in
  let kernel =
    if not options.kernel then None
    else begin
      let k = Kernel.prepare ~page_bytes:config.page_bytes in
      let warea =
        match config.scheme with
        | Config.Way_placement _ -> k.Kernel.area_bytes
        | Config.Baseline | Config.Way_memoization | Config.Way_prediction
        | Config.Filter_cache _ ->
            0
      in
      Some
        (proc_state_of_compiled config ~pname:"kernel" ~placed:(warea > 0)
           ~priority:0 ~base:Kernel.base ~warea ~trace:k.Kernel.trace
           ~seed:Kernel.spec.Wp_workloads.Spec.seed ~stats:system k.Kernel.compiled)
    end
  in
  (match probe with
  | None -> ()
  | Some p ->
      Array.iter
        (fun st -> Account.set_probe st.stats.Stats.account (Some p))
        procs;
      Account.set_probe system.Stats.account (Some p));
  let engine = Fetch_engine.create ?probe config ~code_base:Simulator.code_base in
  let dmem = Dmem.create ?probe config in
  let btb = Btb.create ~entries:config.btb_entries in
  let mispredict_penalty = config.mispredict_penalty in
  let m_cycles = ref 0 in
  let m_instrs = ref 0 in
  let switches = ref 0 in
  let kernel_runs = ref 0 in
  let timer_fires = ref 0 in
  (* The drowsy clock is the charging process's fetch counter; track
     whose [Stats.t] currently holds it and hand the clock over
     (gap-preserving rebase, or a full sleep under the flush policy)
     whenever the charging stats change. *)
  let clock = ref system in
  let drowsy_switch_to (st : Stats.t) =
    let from = !clock in
    if from != st then begin
      (match options.drowsy_policy with
      | Drowsy_shared ->
          Fetch_engine.drowsy_rebase engine ~old_now:from.Stats.fetches
            ~new_now:st.Stats.fetches
      | Drowsy_flush ->
          Fetch_engine.drowsy_sleep_all engine ~now:from.Stats.fetches);
      clock := st
    end
  in
  (* One trace position on the block-batched fast path — the exact
     per-block effect sequence of [Simulator]'s [run_fast], with the
     cycle delta returned so the scheduler can charge the quantum. *)
  let exec_block_fast (p : proc_state) k =
    let id = p.trace_blocks.(k) in
    let b = p.info.(id) in
    let pb = p.plan.(id) in
    let runs = pb.Compiled_trace.runs in
    let run_cycles = pb.Compiled_trace.run_cycles in
    let mem = b.Compiled_trace.mem in
    let n_mem = Array.length mem in
    let pc = ref b.Compiled_trace.start in
    let off = ref 0 in
    let mi = ref 0 in
    let delta = ref 0 in
    for r = 0 to Array.length runs - 1 do
      let len = runs.(r) in
      let fetch_stall = Fetch_engine.fetch_run engine p.stats !pc ~n:len in
      delta := !delta + run_cycles.(r) + fetch_stall;
      let run_end = !off + len in
      while !mi < n_mem && mem.(!mi).Compiled_trace.pos < run_end do
        let m = mem.(!mi) in
        delta :=
          !delta
          + Dmem.access dmem p.stats
              (Data_stream.next p.data m.Compiled_trace.locality)
              ~write:m.Compiled_trace.write;
        incr mi
      done;
      off := run_end;
      pc := !pc + (len * Wp_isa.Instr.size_bytes)
    done;
    if b.Compiled_trace.term_branch then begin
      let taken =
        k + 1 < Array.length p.trace_blocks
        && p.trace_blocks.(k + 1) = b.Compiled_trace.taken_succ
      in
      let predicted = Btb.predict_taken btb b.Compiled_trace.term_pc in
      Btb.update btb b.Compiled_trace.term_pc ~taken;
      if predicted <> taken then delta := !delta + mispredict_penalty
    end;
    m_cycles := !m_cycles + !delta;
    m_instrs := !m_instrs + b.Compiled_trace.n_instrs;
    p.instrs <- p.instrs + b.Compiled_trace.n_instrs;
    !delta
  in
  (* The per-instruction reference twin (probed runs always take it):
     the same retire-cycle formula as [Core_model.retire], against the
     machine-shared BTB, with cumulative machine-wide [Retire] events
     driving the sampler clock. *)
  let exec_block_ref (p : proc_state) k =
    let id = p.trace_blocks.(k) in
    let start = p.starts.(id) in
    let body = p.bodies.(id) in
    let nb = Array.length body in
    let nblocks = Array.length p.trace_blocks in
    let delta = ref 0 in
    for i = 0 to nb - 1 do
      let pc = start + (i * Wp_isa.Instr.size_bytes) in
      let fetch_stall = Fetch_engine.fetch engine p.stats pc in
      let instr = body.(i) in
      let opcode = instr.Wp_isa.Instr.opcode in
      let dmem_stall =
        match opcode with
        | Wp_isa.Opcode.Load ->
            Dmem.access dmem p.stats
              (Data_stream.next p.data instr.Wp_isa.Instr.locality)
              ~write:false
        | Wp_isa.Opcode.Store ->
            Dmem.access dmem p.stats
              (Data_stream.next p.data instr.Wp_isa.Instr.locality)
              ~write:true
        | Wp_isa.Opcode.Alu _ | Mac | Branch | Jump | Call | Return | Nop -> 0
      in
      let branch_penalty =
        match opcode with
        | Wp_isa.Opcode.Branch ->
            let taken =
              i = nb - 1
              && k + 1 < nblocks
              && p.trace_blocks.(k + 1) = p.taken_succs.(id)
            in
            let predicted = Btb.predict_taken btb pc in
            Btb.update btb pc ~taken;
            if predicted <> taken then mispredict_penalty else 0
        | Jump | Call | Return | Alu _ | Mac | Load | Store | Nop -> 0
      in
      let instr_cycles =
        1 + fetch_stall + dmem_stall
        + (Wp_isa.Opcode.execute_latency opcode - 1)
        + branch_penalty
      in
      delta := !delta + instr_cycles;
      m_cycles := !m_cycles + instr_cycles;
      m_instrs := !m_instrs + 1;
      (match probe with
      | None -> ()
      | Some pr ->
          pr (Probe.Retire { cycles = !m_cycles; instrs = !m_instrs }))
    done;
    p.instrs <- p.instrs + nb;
    !delta
  in
  let exec_block p k =
    let delta = if reference then exec_block_ref p k else exec_block_fast p k in
    p.cycles <- p.cycles + delta;
    delta
  in
  let finished p = p.k >= Array.length p.trace_blocks in
  (* Run [p] until its trace ends or the quantum expires (checked at
     block boundaries — the block cycle deltas are identical on both
     execution paths, so scheduling decisions are too). *)
  let run_quantum (p : proc_state) =
    p.dispatches <- p.dispatches + 1;
    let used = ref 0 in
    let continue = ref true in
    while !continue do
      used := !used + exec_block p p.k;
      p.k <- p.k + 1;
      if finished p then continue := false
      else if !used >= quantum then begin
        incr timer_fires;
        continue := false
      end
    done
  in
  (* Steady-state fast-forward on the fast path, one resumable driver
     per user process (the kernel trace is short and replays whole —
     not worth detecting).  Same bail-out structure as [Simulator]:
     probes and reference runs never engage it. *)
  let ff_enabled =
    (not reference)
    &&
    match fastforward with
    | Some b -> b
    | None -> Simulator.default_fastforward ()
  in
  let ff_report_v =
    match ff_report with Some r -> r | None -> Steady_state.create_report ()
  in
  let config_digest =
    lazy (Digest.string (Marshal.to_string config []))
  in
  let make_ff (p : proc_state) =
    let c = ref 0 and ins = ref 0 in
    let q_base = ref 0 in
    let info = p.info in
    let blocks = p.trace_blocks in
    let ctx =
      {
        Steady_state.policy = ff_policy;
        report = ff_report_v;
        stats = p.stats;
        blocks;
        n_ids = Array.length info;
        n_instrs_of = (fun id -> info.(id).Compiled_trace.n_instrs);
        stream_invariant =
          (fun ~start ~period ->
            let seq = ref 0 and stride = ref 0 and rand = ref 0 in
            for j = start to start + period - 1 do
              let b = info.(blocks.(j)) in
              seq := !seq + b.Compiled_trace.seq_bytes;
              stride := !stride + b.Compiled_trace.stride_bytes;
              rand := !rand + b.Compiled_trace.n_random
            done;
            Data_stream.advance_invariant ~seq_bytes:!seq ~stride_bytes:!stride
              ~n_random:!rand);
        fingerprint =
          (fun ~start ~period ~add ->
            (* The drowsy clock is the charging process's fetch counter
               — exactly [p.stats] for the whole quantum. *)
            Fetch_engine.fingerprint engine ~now:p.stats.Stats.fetches ~add;
            let period_mem = ref 0 in
            for j = start to start + period - 1 do
              period_mem :=
                !period_mem + Array.length info.(blocks.(j)).Compiled_trace.mem
            done;
            if !period_mem > 0 then begin
              Dmem.fingerprint dmem ~add;
              Data_stream.fingerprint p.data ~add
            end;
            Btb.fingerprint btb ~add);
        exec =
          (fun k ->
            c := !c + exec_block p k;
            ins := !ins + info.(blocks.(k)).Compiled_trace.n_instrs);
        set_awake_recorder = Fetch_engine.set_drowsy_recorder engine;
        drowsy_advance =
          (fun ~since ~delta ->
            Fetch_engine.drowsy_advance_touched engine ~since ~delta);
        drowsy_replay =
          (fun a ~len ~iters ->
            Fetch_engine.drowsy_replay_awake engine a ~len ~iters);
        cycles = c;
        instrs = ins;
        cache = snapshot_cache;
        cache_scope =
          (match snapshot_cache with
          | None -> ""
          | Some _ ->
              Printf.sprintf "%d/%s" p.token (Lazy.force config_digest));
        (* A skip may never cross the quantum boundary: the reference
           loop would have taken the timer interrupt mid-iteration, so
           cap skips at [quantum - 1 - used] cycles and let the blocks
           around the expiry execute one by one — switch points land on
           exactly the reference loop's block boundaries. *)
        cycle_headroom = Some (fun () -> quantum - 1 - (!c - !q_base));
      }
    in
    { drv = Steady_state.make ctx; c; ins; q_base }
  in
  let ff = if ff_enabled then Array.map make_ff procs else [||] in
  (* The fast-forward twin of [run_quantum]: the driver executes blocks
     through [exec_block] (so the machine counters see them normally)
     and lands skipped iterations in [c]/[ins] only — the difference
     against [p.cycles]/[p.instrs] after the slice is exactly what the
     skips added, reconciled here into the machine totals. *)
  let run_quantum_ff (p : proc_state) (f : ff_state) =
    p.dispatches <- p.dispatches + 1;
    Steady_state.reawaken f.drv;
    f.q_base := !(f.c);
    let until () = !(f.c) - !(f.q_base) >= quantum in
    Steady_state.advance f.drv ~until;
    p.k <- Steady_state.pos f.drv;
    let skipped_cycles = !(f.c) - p.cycles in
    let skipped_instrs = !(f.ins) - p.instrs in
    m_cycles := !m_cycles + skipped_cycles;
    m_instrs := !m_instrs + skipped_instrs;
    p.cycles <- !(f.c);
    p.instrs <- !(f.ins);
    if not (finished p) then incr timer_fires
  in
  let run_slice i =
    if Array.length ff = 0 then run_quantum procs.(i)
    else run_quantum_ff procs.(i) ff.(i)
  in
  (* The interrupt handler: replay the whole kernel trace into the
     system stats.  The kernel is mapped in every address space, so no
     TLB flush surrounds it — its pages evict user entries naturally
     (the I-TLB churn under measurement). *)
  let run_kernel (ks : proc_state) =
    incr kernel_runs;
    drowsy_switch_to system;
    Fetch_engine.set_window engine ~base:ks.base ~area_bytes:ks.warea;
    ks.k <- 0;
    while not (finished ks) do
      ignore (exec_block ks ks.k);
      ks.k <- ks.k + 1
    done;
    ks.dispatches <- ks.dispatches + 1;
    Fetch_engine.reset_stream engine
  in
  (* Next process to dispatch, scanning round-robin from [cur + 1] so
     the current process is preferred last among equals; [-1] when
     every trace is drained. *)
  let pick ~cur =
    match options.sched with
    | Round_robin ->
        let found = ref (-1) in
        let j = ref 1 in
        while !found < 0 && !j <= n do
          let i = (cur + !j) mod n in
          if not (finished procs.(i)) then found := i;
          incr j
        done;
        !found
    | Priority ->
        let best = ref (-1) in
        for j = 1 to n do
          let i = (cur + j) mod n in
          if
            (not (finished procs.(i)))
            && (!best < 0 || procs.(i).priority > procs.(!best).priority)
          then best := i
        done;
        !best
  in
  let dispatch i ~switched =
    if switched then begin
      incr switches;
      (* Address-space change: shoot down both TLBs (no ASIDs); caches
         are physical and deliberately survive so processes pollute
         each other's ways. *)
      Fetch_engine.flush_tlb engine;
      Dmem.flush_tlb dmem;
      (match options.btb_policy with
      | Btb_flush -> Btb.reset btb
      | Btb_shared -> ());
      match probe with
      | None -> ()
      | Some p -> p (Probe.Context_switch { next = i })
    end;
    drowsy_switch_to procs.(i).stats;
    Fetch_engine.set_window engine ~base:procs.(i).base
      ~area_bytes:procs.(i).warea
  in
  let cur = ref (pick ~cur:(n - 1)) in
  clock := procs.(!cur).stats;
  dispatch !cur ~switched:false;
  let running = ref true in
  while !running do
    run_slice !cur;
    match pick ~cur:!cur with
    | -1 -> running := false
    | next ->
        (* The switch boundary: drop the fetch-stream context, take the
           timer interrupt through the kernel, then either change
           address space or resume the same process. *)
        Fetch_engine.reset_stream engine;
        Option.iter run_kernel kernel;
        if next <> !cur then dispatch next ~switched:true
        else begin
          drowsy_switch_to procs.(next).stats;
          Fetch_engine.set_window engine ~base:procs.(next).base
            ~area_bytes:procs.(next).warea
        end;
        cur := next
  done;
  Array.iter
    (fun p ->
      p.stats.Stats.cycles <- p.cycles;
      p.stats.Stats.retired_instrs <- p.instrs)
    procs;
  (match kernel with
  | Some ks ->
      system.Stats.cycles <- ks.cycles;
      system.Stats.retired_instrs <- ks.instrs
  | None -> ());
  (* Leakage runs on the aggregate fetch clock (every fetch kept lines
     awake, whichever process issued it); align the drowsy state to it
     before finalising into the system account.  With a single process
     and no kernel the clock is already there — no rebase, and the
     charges are bit-identical to [Simulator.run]'s. *)
  let agg_fetches =
    Array.fold_left
      (fun acc p -> acc + p.stats.Stats.fetches)
      system.Stats.fetches procs
  in
  if !clock.Stats.fetches <> agg_fetches then
    Fetch_engine.drowsy_rebase engine ~old_now:!clock.Stats.fetches
      ~new_now:agg_fetches;
  Fetch_engine.finalize engine system ~cycles:!m_cycles
    ~now_fetches:agg_fetches;
  let core_rest = config.energy.Wp_energy.Params.core_rest_pj_per_cycle in
  Array.iter
    (fun p ->
      Account.add_core p.stats.Stats.account
        (core_rest *. float_of_int p.cycles))
    procs;
  Account.add_core system.Stats.account
    (core_rest *. float_of_int system.Stats.cycles);
  (* Aggregate = per-process totals + system, bucket by bucket and
     counter by counter — attribution sums to the aggregate exactly (a
     conservation law the differ asserts), and for a single process
     with no kernel the sums reduce to the process's own values plus
     the system-side leakage, bit-identical to [Simulator.run]. *)
  let aggregate = Stats.create () in
  let zero = Stats.snapshot_ints (Stats.create ()) in
  let add_into st =
    Stats.add_scaled_delta aggregate ~before:zero
      ~after:(Stats.snapshot_ints st) ~times:1;
    let a = aggregate.Stats.account and b = st.Stats.account in
    Account.add_icache a (Account.icache_pj b);
    Account.add_itlb a (Account.itlb_pj b);
    Account.add_dcache a (Account.dcache_pj b);
    Account.add_memory a (Account.memory_pj b);
    Account.add_core a (Account.core_pj b)
  in
  Array.iter (fun p -> add_into p.stats) procs;
  add_into system;
  (match probe with
  | None -> ()
  | Some _ ->
      Array.iter
        (fun st -> Account.set_probe st.stats.Stats.account None)
        procs;
      Account.set_probe system.Stats.account None);
  {
    aggregate;
    processes =
      Array.to_list
        (Array.map
           (fun p ->
             {
               pr_name = p.pname;
               pr_placed = p.placed;
               pr_base = p.base;
               pr_stats = p.stats;
               pr_dispatches = p.dispatches;
             })
           procs);
    system;
    switches = !switches;
    kernel_runs = !kernel_runs;
    timer_fires = !timer_fires;
  }
