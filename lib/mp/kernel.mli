(** The interrupt-handler kernel run at every switch boundary.

    A small fixed ICFG — deterministic, identical for every mix —
    mapped into every address space below the user code window
    ({!Wp_sim.Simulator.code_base}) and laid out by the placement pass
    into a reserved placement area of its own.  Running it at a switch
    boundary makes the switch itself cost fetch energy, and its pages
    naturally evict user entries from the shared I-TLB — the I-TLB
    churn the multiprogramming experiments measure.  Kernel fetches
    and cycles are charged to the machine's system account. *)

val base : Wp_isa.Addr.t
(** Where the kernel image lives (page-aligned, below
    {!Wp_sim.Simulator.code_base}). *)

val spec : Wp_workloads.Spec.t
(** The fixed kernel workload specification (~100 dynamic instructions
    per invocation). *)

type t = {
  program : Wp_workloads.Codegen.t;
  layout : Wp_layout.Binary_layout.t;
  compiled : Wp_sim.Compiled_trace.t;
  trace : Wp_workloads.Tracer.trace;
  area_bytes : int;  (** the reserved placement area, page-aligned *)
}

val prepare : page_bytes:int -> t
(** Deterministic: every call builds the same image.
    @raise Invalid_argument if the kernel image would overlap the user
    code window (cannot happen with the committed spec). *)
