type coverage = All_placed | Half_placed | None_placed

type proc = {
  pname : string;
  spec : Wp_workloads.Spec.t;
  placed : bool;
  priority : int;
}

type t = proc list

let coverage_name = function
  | All_placed -> "all"
  | Half_placed -> "half"
  | None_placed -> "none"

let coverage_of_string = function
  | "all" -> Ok All_placed
  | "half" -> Ok Half_placed
  | "none" -> Ok None_placed
  | s -> Error (Printf.sprintf "unknown coverage %S (all|half|none)" s)

let apply_coverage cov t =
  List.mapi
    (fun i p ->
      let placed =
        match cov with
        | All_placed -> true
        | None_placed -> false
        | Half_placed -> i mod 2 = 0
      in
      { p with placed })
    t

let of_specs ?(coverage = All_placed) specs =
  apply_coverage coverage
    (List.map
       (fun (spec : Wp_workloads.Spec.t) ->
         { pname = spec.Wp_workloads.Spec.name; spec; placed = true; priority = 0 })
       specs)

let of_names ?coverage names =
  let rec specs acc = function
    | [] -> Ok (List.rev acc)
    | name :: rest -> (
        match
          List.find_opt
            (fun (s : Wp_workloads.Spec.t) -> s.Wp_workloads.Spec.name = name)
            (Wp_workloads.Mibench.all @ Wp_workloads.Mibench.loops)
        with
        | Some spec -> specs (spec :: acc) rest
        | None ->
            Error
              (Printf.sprintf "unknown benchmark %S (known: %s)" name
                 (String.concat ", "
                    (Wp_workloads.Mibench.names
                    @ Wp_workloads.Mibench.loop_names))))
  in
  Result.map (of_specs ?coverage) (specs [] names)

let validate t =
  if t = [] then Error "empty mix"
  else
    let rec go i = function
      | [] -> Ok ()
      | p :: rest -> (
          match Wp_workloads.Spec.validate p.spec with
          | Error msg -> Error (Printf.sprintf "process %d: %s" i msg)
          | Ok () -> go (i + 1) rest)
    in
    go 0 t

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i p ->
      Format.fprintf ppf "p%d %-12s %s prio %d (%a)@," i p.pname
        (if p.placed then "placed  " else "unplaced")
        p.priority Wp_workloads.Spec.pp p.spec)
    t;
  Format.fprintf ppf "@]"
