type t = {
  btb : Btb.t;
  mispredict_penalty : int;
  mutable cycles : int;
  mutable instructions : int;
  mutable mispredicts : int;
  probe : Wp_obs.Probe.t option;
}

let create ?(btb_entries = 128) ?(mispredict_penalty = 4) ?probe () =
  {
    btb = Btb.create ~entries:btb_entries;
    mispredict_penalty;
    cycles = 0;
    instructions = 0;
    mispredicts = 0;
    probe;
  }

let retire t ~pc ~opcode ~fetch_stall ~dmem_stall ~taken =
  if fetch_stall < 0 || dmem_stall < 0 then
    invalid_arg "Core_model.retire: negative stall";
  let exec_extra = Wp_isa.Opcode.execute_latency opcode - 1 in
  let branch_penalty =
    match opcode with
    | Wp_isa.Opcode.Branch ->
        let predicted = Btb.predict_taken t.btb pc in
        Btb.update t.btb pc ~taken;
        if predicted <> taken then begin
          t.mispredicts <- t.mispredicts + 1;
          t.mispredict_penalty
        end
        else 0
    | Wp_isa.Opcode.Jump | Call | Return | Alu _ | Mac | Load | Store | Nop ->
        0
  in
  t.cycles <- t.cycles + 1 + fetch_stall + dmem_stall + exec_extra + branch_penalty;
  t.instructions <- t.instructions + 1;
  match t.probe with
  | None -> ()
  | Some p ->
      p (Wp_obs.Probe.Retire { cycles = t.cycles; instrs = t.instructions })

let cycles t = t.cycles
let instructions t = t.instructions
let mispredicts t = t.mispredicts

let ipc t =
  if t.cycles = 0 then 0.0 else float_of_int t.instructions /. float_of_int t.cycles

let reset t =
  Btb.reset t.btb;
  t.cycles <- 0;
  t.instructions <- 0;
  t.mispredicts <- 0
