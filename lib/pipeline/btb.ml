type t = {
  entries : int;
  instr_shift : int;  (** log2 of the instruction size *)
  entries_shift : int;  (** log2 of [entries] *)
  tags : int array;
  counters : int array;  (** 0..3; >=2 predicts taken *)
  valid : bool array;
}

let create ~entries =
  if not (Wp_isa.Addr.is_power_of_two entries) then
    invalid_arg "Btb.create: entries must be a positive power of two";
  {
    entries;
    (* PCs are non-negative, so the per-branch index/tag divisions are
       shifts on these precomputed counts. *)
    instr_shift = Wp_isa.Addr.log2 Wp_isa.Instr.size_bytes;
    entries_shift = Wp_isa.Addr.log2 entries;
    tags = Array.make entries 0;
    counters = Array.make entries 0;
    valid = Array.make entries false;
  }

let slot t pc = (pc lsr t.instr_shift) land (t.entries - 1)
let tag t pc = pc lsr (t.instr_shift + t.entries_shift)

let predict_taken t pc =
  let i = slot t pc in
  t.valid.(i) && t.tags.(i) = tag t pc && t.counters.(i) >= 2

let update t pc ~taken =
  let i = slot t pc in
  if t.valid.(i) && t.tags.(i) = tag t pc then begin
    (* Saturating 2-bit counter; int comparisons, since Stdlib.min/max
       are polymorphic-compare calls on this per-branch path. *)
    let c = t.counters.(i) in
    t.counters.(i) <-
      (if taken then if c >= 3 then 3 else c + 1
       else if c <= 0 then 0
       else c - 1)
  end
  else if taken then begin
    (* Allocate on taken branches only, as BTBs do. *)
    t.valid.(i) <- true;
    t.tags.(i) <- tag t pc;
    t.counters.(i) <- 2
  end

let entries t = t.entries

(* Canonical fingerprint for the steady-state fast-forward detector:
   tag and counter per valid entry, -1/-1 when invalid (stale tags and
   counters of invalidated entries are unreachable). *)
let fingerprint t ~add =
  for i = 0 to t.entries - 1 do
    if t.valid.(i) then begin
      add t.tags.(i);
      add t.counters.(i)
    end
    else begin
      add (-1);
      add (-1)
    end
  done

let reset t =
  Array.fill t.valid 0 t.entries false;
  Array.fill t.counters 0 t.entries 0
