(** Branch target buffer with 2-bit saturating counters.

    A small direct-mapped predictor in the XScale style: an untagged
    miss predicts not-taken; a hit predicts by the counter.  Only the
    direction matters to the cycle model (targets are always known to
    the trace-driven simulator). *)

type t

val create : entries:int -> t
(** @raise Invalid_argument unless [entries] is a positive power of
    two. *)

val predict_taken : t -> Wp_isa.Addr.t -> bool
val update : t -> Wp_isa.Addr.t -> taken:bool -> unit
val entries : t -> int
val reset : t -> unit

val fingerprint : t -> add:(int -> unit) -> unit
(** Canonical state fingerprint (valid entries' tags and counters) for
    the steady-state fast-forward detector. *)
