(** XTREM-lite: the cycle model of the in-order XScale-like core
    (paper Table 1: single issue, in-order, 1 ALU + 1 MAC + 1
    load/store, 7-stage pipeline).

    The simulator is trace-driven, so the model charges cycles per
    retired instruction: one base cycle, plus fetch stalls (I-cache
    misses, way-hint re-accesses), plus data-memory stalls, plus MAC
    execute occupancy, plus the branch mispredict penalty when the
    internal predictor was wrong.  This reproduces the paper's
    performance behaviour: way-placement perturbs cycles only through
    rare way-hint mispredicts and layout-induced I-cache miss
    changes. *)

type t

val create :
  ?btb_entries:int -> ?mispredict_penalty:int -> ?probe:Wp_obs.Probe.t ->
  unit -> t
(** Defaults: 128-entry BTB, 4-cycle mispredict penalty.  [probe]
    observes one cumulative [Retire] event per retired instruction —
    the sampler's clock; pure observation. *)

val retire :
  t ->
  pc:Wp_isa.Addr.t ->
  opcode:Wp_isa.Opcode.t ->
  fetch_stall:int ->
  dmem_stall:int ->
  taken:bool ->
  unit
(** Account one instruction.  [taken] matters only for conditional
    branches ([Jump]/[Call]/[Return] are unconditional and predicted
    by the BTB's target logic, modelled as always-correct). *)

val cycles : t -> int
val instructions : t -> int
val mispredicts : t -> int
val ipc : t -> float
val reset : t -> unit
