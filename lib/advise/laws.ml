module Config = Wp_sim.Config
module Stats = Wp_sim.Stats
module Simulator = Wp_sim.Simulator
module Geometry = Wp_cache.Geometry

let wp_config ~geometry ~page_bytes ~area_bytes =
  let c =
    Config.with_icache
      (Config.xscale (Config.Way_placement { area_bytes }))
      geometry
  in
  { c with Config.page_bytes }

let check ?(where = "advise") ~geometry ~page_bytes ~area_bytes ~program
    ~profile ~trace ~layout () =
  let graph = program.Wp_workloads.Codegen.graph in
  let guarded name f =
    match f () with
    | vs -> vs
    | exception exn ->
        [
          Printf.sprintf "%s: %s raised: %s" where name (Printexc.to_string exn);
        ]
  in
  let bounds =
    guarded "region bounds" (fun () ->
        let analysis = Region.analyze ~graph ~profile ~layout ~geometry () in
        List.map
          (fun v -> where ^ ": " ^ v)
          (Oracle.check_bounds ~analysis ~graph ~layout ~trace))
  in
  let reproduction =
    guarded "PL001 reproduction" (fun () ->
        let replay =
          Oracle.replay_area ~graph ~layout ~trace ~geometry ~area_bytes ()
        in
        let config = wp_config ~geometry ~page_bytes ~area_bytes in
        let stats = Simulator.run ~config ~program ~layout ~trace in
        (* the real run can only miss more: normal lines also evict
           area lines, and every distinct line misses at least once *)
        let floor =
          replay.Oracle.area_misses + replay.Oracle.non_area_distinct_lines
        in
        if stats.Stats.icache_misses < floor then
          [
            Printf.sprintf
              "%s: way-placement run misses %d times but the designated-way \
               replay already demands %d (%d area misses incl. %d conflicts \
               + %d compulsory)"
              where stats.Stats.icache_misses floor replay.Oracle.area_misses
              (replay.Oracle.area_misses - replay.Oracle.area_distinct_lines)
              replay.Oracle.non_area_distinct_lines;
          ]
        else [])
  in
  let envelope =
    guarded "schedule envelope" (fun () ->
        let energy = (Config.xscale Config.Baseline).Config.energy in
        let env =
          Oracle.envelope ~graph ~layout ~trace ~geometry ~energy ()
        in
        let analysis = Region.analyze ~graph ~profile ~layout ~geometry () in
        let schedule = Oracle.schedule ~analysis ~trace ~page_bytes () in
        let initial_area, resizes =
          match schedule with
          | (0, area) :: rest -> (area, rest)
          | entries -> (area_bytes, entries)
        in
        let inside label pj =
          if
            pj < env.Oracle.env_lo_pj -. 1e-6
            || pj > env.Oracle.env_hi_pj +. 1e-6
          then
            [
              Printf.sprintf
                "%s: %s I-cache energy %.3f pJ escapes the static envelope \
                 [%.3f, %.3f]"
                where label pj env.Oracle.env_lo_pj env.Oracle.env_hi_pj;
            ]
          else []
        in
        let plain =
          Simulator.run
            ~config:(wp_config ~geometry ~page_bytes ~area_bytes)
            ~program ~layout ~trace
        in
        let resized =
          Simulator.run_with_resizes ~schedule:resizes
            ~config:(wp_config ~geometry ~page_bytes ~area_bytes:initial_area)
            ~program ~layout ~trace
        in
        inside "plain way-placement" (Stats.icache_energy_pj plain)
        @ inside "oracle-scheduled" (Stats.icache_energy_pj resized))
  in
  bounds @ reproduction @ envelope
