module Icfg = Wp_cfg.Icfg
module Basic_block = Wp_cfg.Basic_block
module Analysis = Wp_cfg.Analysis
module Profile = Wp_cfg.Profile
module Layout = Wp_layout.Binary_layout
module Geometry = Wp_cache.Geometry

type kind = Body | Loop of int

type t = {
  id : int;
  func : int;
  header : Basic_block.id;
  kind : kind;
  blocks : Basic_block.id list;
  closure_blocks : Basic_block.id list;
  dominant : Basic_block.id;
  weight : int;
  distinct_lines : int;
  max_set_pressure : int;
  min_ways : int;
  fits : bool;
}

type analysis = {
  regions : t array;
  innermost_id : int array;  (* per block id *)
  of_block : int list array;  (* region ids whose closure contains the block *)
  geometry : Geometry.t;
}

let kind_name = function
  | Body -> "body"
  | Loop d -> Printf.sprintf "loop(depth %d)" d

(* Distinct cache lines a block occupies under the layout. *)
let block_lines geometry layout (b : Basic_block.t) =
  let start = Layout.block_start layout b.Basic_block.id in
  let last = start + Basic_block.size_bytes b - 1 in
  let line = geometry.Geometry.line_bytes in
  let first = Geometry.line_base geometry start in
  let rec collect a acc = if a > last then List.rev acc else collect (a + line) (a :: acc) in
  collect first []

(* Per-function transitive callee sets.  Calls target strictly larger
   function ids in generated code, but the closure walk handles
   arbitrary (even recursive) call graphs with a visited set. *)
let transitive_callees graph =
  let nf = Icfg.num_funcs graph in
  let direct = Array.make nf [] in
  Array.iter
    (fun (b : Basic_block.t) ->
      match Icfg.call_target graph b.Basic_block.id with
      | None -> ()
      | Some tgt ->
          let callee = (Icfg.block graph tgt).Basic_block.func in
          if not (List.mem callee direct.(b.Basic_block.func)) then
            direct.(b.Basic_block.func) <- callee :: direct.(b.Basic_block.func))
    (Icfg.blocks graph);
  let memo = Array.make nf None in
  let rec closure f =
    match memo.(f) with
    | Some s -> s
    | None ->
        (* break cycles: a recursive call contributes nothing new *)
        memo.(f) <- Some [];
        let s =
          List.fold_left
            (fun acc c ->
              List.fold_left
                (fun acc g -> if List.mem g acc then acc else g :: acc)
                (if List.mem c acc then acc else c :: acc)
                (closure c))
            [] direct.(f)
        in
        memo.(f) <- Some s;
        s
  in
  Array.init nf closure

let pressure geometry layout graph blocks =
  let sets = Geometry.sets geometry in
  let counts = Array.make sets 0 in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun id ->
      List.iter
        (fun line ->
          if not (Hashtbl.mem seen line) then begin
            Hashtbl.add seen line ();
            let s = Geometry.set_index geometry line in
            counts.(s) <- counts.(s) + 1
          end)
        (block_lines geometry layout (Icfg.block graph id)))
    blocks;
  let distinct = Hashtbl.length seen in
  let max_set = Array.fold_left max 0 counts in
  (distinct, max_set)

let analyze ~graph ~profile ~layout ~geometry () =
  if Profile.num_blocks profile <> Icfg.num_blocks graph then
    invalid_arg
      (Printf.sprintf
         "Region.analyze: profile covers %d blocks but the graph has %d"
         (Profile.num_blocks profile)
         (Icfg.num_blocks graph));
  let assoc = geometry.Geometry.assoc in
  let nb = Icfg.num_blocks graph in
  let callees = transitive_callees graph in
  let func_blocks f = (Icfg.func graph f).Wp_cfg.Func.blocks in
  let innermost_id = Array.make nb (-1) in
  let regions = ref [] in
  let next_id = ref 0 in
  let mk ~func ~header ~kind ~blocks =
    let id = !next_id in
    incr next_id;
    (* closure: own blocks plus every block of transitively called
       functions, starting from the calls made inside [blocks] *)
    let called =
      List.fold_left
        (fun acc b ->
          match Icfg.call_target graph b with
          | None -> acc
          | Some tgt ->
              let c = (Icfg.block graph tgt).Basic_block.func in
              List.fold_left
                (fun acc g -> if List.mem g acc then acc else g :: acc)
                (if List.mem c acc then acc else c :: acc)
                callees.(c))
        [] blocks
    in
    let closure_blocks =
      List.sort_uniq Int.compare
        (blocks @ List.concat_map func_blocks called)
    in
    let distinct_lines, max_set_pressure =
      pressure geometry layout graph closure_blocks
    in
    let weight =
      List.fold_left
        (fun acc b -> acc + Profile.block_dynamic_instrs profile graph b)
        0 blocks
    in
    let dominant =
      List.fold_left
        (fun best b ->
          if Profile.block_count profile b > Profile.block_count profile best
          then b
          else best)
        (List.hd blocks)
        (List.sort Int.compare blocks)
    in
    let r =
      {
        id;
        func;
        header;
        kind;
        blocks = List.sort Int.compare blocks;
        closure_blocks;
        dominant;
        weight;
        distinct_lines;
        max_set_pressure;
        min_ways = max 1 (min max_set_pressure assoc);
        fits = max_set_pressure <= assoc;
      }
    in
    regions := r :: !regions;
    r
  in
  for f = 0 to Icfg.num_funcs graph - 1 do
    let fn = Icfg.func graph f in
    let body =
      mk ~func:f ~header:fn.Wp_cfg.Func.entry ~kind:Body
        ~blocks:fn.Wp_cfg.Func.blocks
    in
    List.iter (fun b -> innermost_id.(b) <- body.id) fn.Wp_cfg.Func.blocks;
    let loops = Analysis.natural_loops graph ~entry:fn.Wp_cfg.Func.entry in
    let depth_of header =
      List.length (List.filter (fun (l : Analysis.loop) -> List.mem header l.Analysis.blocks) loops)
    in
    (* larger loops first, so smaller (inner) loops overwrite and
       [innermost_id] ends at the tightest enclosing loop *)
    let by_size_desc =
      List.sort
        (fun (a : Analysis.loop) (b : Analysis.loop) ->
          let c =
            Int.compare (List.length b.Analysis.blocks) (List.length a.Analysis.blocks)
          in
          if c <> 0 then c else Int.compare a.Analysis.header b.Analysis.header)
        loops
    in
    List.iter
      (fun (l : Analysis.loop) ->
        let r =
          mk ~func:f ~header:l.Analysis.header
            ~kind:(Loop (depth_of l.Analysis.header))
            ~blocks:l.Analysis.blocks
        in
        List.iter (fun b -> innermost_id.(b) <- r.id) l.Analysis.blocks)
      by_size_desc
  done;
  let regions = Array.of_list (List.rev !regions) in
  let of_block = Array.make nb [] in
  Array.iter
    (fun r ->
      List.iter (fun b -> of_block.(b) <- r.id :: of_block.(b)) r.closure_blocks)
    regions;
  Array.iteri (fun b rs -> of_block.(b) <- List.rev rs) of_block;
  { regions; innermost_id; of_block; geometry }

let regions a = a.regions
let geometry a = a.geometry

let innermost a b =
  if b < 0 || b >= Array.length a.innermost_id || a.innermost_id.(b) < 0 then
    invalid_arg (Printf.sprintf "Region.innermost: unknown block %d" b)
  else a.regions.(a.innermost_id.(b))

let regions_of_block a b =
  if b < 0 || b >= Array.length a.of_block then
    invalid_arg (Printf.sprintf "Region.regions_of_block: unknown block %d" b)
  else a.of_block.(b)

let static_min_ways a =
  let weighted = Array.to_list a.regions in
  let considered =
    match List.filter (fun r -> r.weight > 0) weighted with
    | [] -> weighted
    | ws -> ws
  in
  List.fold_left (fun acc r -> max acc r.min_ways) 1 considered

let pp ppf r =
  Format.fprintf ppf
    "region %d: func %d %s header %d, %d blocks (%d w/ callees), weight %d, \
     %d lines, set pressure %d, min ways %d%s"
    r.id r.func (kind_name r.kind) r.header (List.length r.blocks)
    (List.length r.closure_blocks)
    r.weight r.distinct_lines r.max_set_pressure r.min_ways
    (if r.fits then "" else " (does not fit)")
