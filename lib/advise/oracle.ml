module Icfg = Wp_cfg.Icfg
module Basic_block = Wp_cfg.Basic_block
module Layout = Wp_layout.Binary_layout
module Geometry = Wp_cache.Geometry
module Tracer = Wp_workloads.Tracer
module Cam_energy = Wp_energy.Cam_energy

let round_up n m = (n + m - 1) / m * m

let area_for ~geometry ~page_bytes ~ways =
  if page_bytes <= 0 || not (Wp_isa.Addr.is_power_of_two page_bytes) then
    invalid_arg
      (Printf.sprintf
         "Oracle.area_for: page size %d B is not a positive power of two"
         page_bytes);
  if ways <= 0 then
    invalid_arg (Printf.sprintf "Oracle.area_for: %d ways is not positive" ways);
  max page_bytes (round_up (ways * Geometry.way_span_bytes geometry) page_bytes)

let schedule ?(min_run = 32) ~analysis ~trace ~page_bytes () =
  let blocks = trace.Tracer.blocks in
  if Array.length blocks = 0 then
    invalid_arg "Oracle.schedule: empty trace";
  let geometry = Region.geometry analysis in
  let area_of_block b =
    area_for ~geometry ~page_bytes
      ~ways:(Region.innermost analysis b).Region.min_ways
  in
  (* maximal runs of equal desired area *)
  let runs = ref [] in
  let start = ref 0 in
  let cur = ref (area_of_block blocks.(0)) in
  for i = 1 to Array.length blocks - 1 do
    let a = area_of_block blocks.(i) in
    if a <> !cur then begin
      runs := (!start, i - !start, !cur) :: !runs;
      start := i;
      cur := a
    end
  done;
  runs := (!start, Array.length blocks - !start, !cur) :: !runs;
  let runs = List.rev !runs in
  (* hysteresis: a run too short to amortise its flush is absorbed,
     taking the larger (conservative) area *)
  let merged =
    List.fold_left
      (fun acc (start, len, area) ->
        match acc with
        | (pstart, plen, parea) :: rest when len < min_run ->
            (pstart, plen + len, max parea area) :: rest
        | _ when len < min_run && acc = [] -> [ (start, len, area) ]
        | _ -> (start, len, area) :: acc)
      [] runs
    |> List.rev
  in
  (* drop consecutive equal areas the merge may have produced *)
  let entries =
    List.fold_left
      (fun acc (start, _len, area) ->
        match acc with
        | (_, parea) :: _ when parea = area -> acc
        | _ -> (start, area) :: acc)
      [] merged
    |> List.rev
  in
  entries

type envelope = {
  env_fetches : int;
  env_same_line : int;
  env_lo_pj : float;
  env_hi_pj : float;
}

(* Walk every fetch of the trace with the engine's same-line elision
   rule (the previous pc carries across blocks and restarts, exactly
   like the fetch engine and the differ's baseline oracle). *)
let walk_fetches ?(elision = true) ~graph ~layout ~trace ~geometry ~access () =
  let fetches = ref 0 and same_line = ref 0 in
  let prev = ref (-1) in
  Array.iter
    (fun id ->
      let start = Layout.block_start layout id in
      let n = Basic_block.size_instrs (Icfg.block graph id) in
      for i = 0 to n - 1 do
        let pc = start + (i * Wp_isa.Instr.size_bytes) in
        incr fetches;
        if elision && !prev >= 0 && Geometry.same_line geometry pc !prev then
          incr same_line
        else access pc;
        prev := pc
      done)
    trace.Tracer.blocks;
  (!fetches, !same_line)

let envelope ?elision ~graph ~layout ~trace ~geometry ~energy () =
  let fetches, same_line =
    walk_fetches ?elision ~graph ~layout ~trace ~geometry
      ~access:(fun _ -> ())
      ()
  in
  let cam = Cam_energy.of_geometry energy geometry in
  let accesses = float_of_int (fetches - same_line) in
  let sl = float_of_int same_line in
  let dw = cam.Cam_energy.data_word_pj in
  let one = Cam_energy.tag_search cam ~ways:1 in
  let full = Cam_energy.tag_search cam ~ways:geometry.Geometry.assoc in
  {
    env_fetches = fetches;
    env_same_line = same_line;
    env_lo_pj = (accesses *. (one +. dw)) +. (sl *. dw);
    env_hi_pj =
      (accesses *. (one +. full +. dw +. cam.Cam_energy.line_fill_pj))
      +. (sl *. dw);
  }

let check_bounds ~analysis ~graph ~layout ~trace =
  let geometry = Region.geometry analysis in
  let regions = Region.regions analysis in
  let n = Array.length regions in
  let sets = Geometry.sets geometry in
  let active = Array.make n false in
  let window_lines = Array.init n (fun _ -> Hashtbl.create 16) in
  let set_counts = Array.make_matrix n sets 0 in
  let window_max = Array.make n 0 in
  let worst = Array.make n 0 in
  let active_list = ref [] in
  let in_current = Array.make n false in
  let close r =
    worst.(r) <- max worst.(r) window_max.(r);
    active.(r) <- false;
    Hashtbl.reset window_lines.(r);
    Array.fill set_counts.(r) 0 sets 0;
    window_max.(r) <- 0
  in
  let block_lines = Hashtbl.create 64 in
  let lines_of id =
    match Hashtbl.find_opt block_lines id with
    | Some ls -> ls
    | None ->
        let b = Icfg.block graph id in
        let start = Layout.block_start layout id in
        let last = start + Basic_block.size_bytes b - 1 in
        let line = geometry.Geometry.line_bytes in
        let rec collect a acc =
          if a > last then List.rev acc
          else collect (a + line) (a :: acc)
        in
        let ls = collect (Geometry.line_base geometry start) [] in
        Hashtbl.add block_lines id ls;
        ls
  in
  Array.iter
    (fun id ->
      let here = Region.regions_of_block analysis id in
      List.iter (fun r -> in_current.(r) <- true) here;
      active_list :=
        List.filter
          (fun r ->
            if in_current.(r) then true
            else begin
              close r;
              false
            end)
          !active_list;
      List.iter
        (fun r ->
          if not active.(r) then begin
            active.(r) <- true;
            active_list := r :: !active_list
          end;
          List.iter
            (fun line ->
              if not (Hashtbl.mem window_lines.(r) line) then begin
                Hashtbl.add window_lines.(r) line ();
                let s = Geometry.set_index geometry line in
                set_counts.(r).(s) <- set_counts.(r).(s) + 1;
                if set_counts.(r).(s) > window_max.(r) then
                  window_max.(r) <- set_counts.(r).(s)
              end)
            (lines_of id))
        here;
      List.iter (fun r -> in_current.(r) <- false) here)
    trace.Tracer.blocks;
  List.iter close !active_list;
  let violations = ref [] in
  Array.iteri
    (fun i demanded ->
      let r = regions.(i) in
      if demanded > r.Region.max_set_pressure then
        violations :=
          Printf.sprintf
            "region (func %d, %s, header %d): concrete windows demand %d \
             lines in one set but the static bound is %d (min ways %d)"
            r.Region.func
            (Region.kind_name r.Region.kind)
            r.Region.header demanded r.Region.max_set_pressure
            r.Region.min_ways
          :: !violations)
    worst;
  List.rev !violations

type area_conflict = {
  slot_set : int;
  slot_way : int;
  lines : Wp_isa.Addr.t list;
  evictions : int;
}

type area_replay = {
  area_accesses : int;
  area_misses : int;
  area_distinct_lines : int;
  non_area_distinct_lines : int;
  conflicts : area_conflict list;
}

let replay_area ?elision ~graph ~layout ~trace ~geometry ~area_bytes () =
  if area_bytes <= 0 then
    invalid_arg
      (Printf.sprintf "Oracle.replay_area: area of %d B is not positive"
         area_bytes);
  let base = Layout.base layout in
  let boundary = base + area_bytes in
  let resident : (int * int, Wp_isa.Addr.t) Hashtbl.t = Hashtbl.create 64 in
  let slot_lines : (int * int, (Wp_isa.Addr.t, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 64
  in
  let slot_evictions : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let area_seen = Hashtbl.create 64 in
  let other_seen = Hashtbl.create 64 in
  let accesses = ref 0 and misses = ref 0 in
  let _ =
    walk_fetches ?elision ~graph ~layout ~trace ~geometry
      ~access:(fun pc ->
        let line = Geometry.line_base geometry pc in
        if line >= base && line < boundary then begin
          incr accesses;
          let slot =
            (Geometry.set_index geometry line, Geometry.way_of_addr geometry line)
          in
          (match Hashtbl.find_opt slot_lines slot with
          | Some t -> Hashtbl.replace t line ()
          | None ->
              let t = Hashtbl.create 4 in
              Hashtbl.replace t line ();
              Hashtbl.replace slot_lines slot t);
          match Hashtbl.find_opt resident slot with
          | Some l when l = line -> ()
          | prior ->
              incr misses;
              if Hashtbl.mem area_seen line then
                (* the line was here before and got evicted: a conflict
                   miss caused by this slot's alternation *)
                Hashtbl.replace slot_evictions slot
                  (1 + Option.value ~default:0 (Hashtbl.find_opt slot_evictions slot));
              ignore prior;
              Hashtbl.replace area_seen line ();
              Hashtbl.replace resident slot line
        end
        else Hashtbl.replace other_seen line ())
      ()
  in
  let conflicts =
    Hashtbl.fold
      (fun slot ev acc ->
        if ev > 0 then
          let lines =
            Hashtbl.fold (fun l () acc -> l :: acc)
              (Hashtbl.find slot_lines slot)
              []
            |> List.sort Int.compare
          in
          { slot_set = fst slot; slot_way = snd slot; lines; evictions = ev }
          :: acc
        else acc)
      slot_evictions []
    |> List.sort (fun a b ->
           let c = Int.compare b.evictions a.evictions in
           if c <> 0 then c
           else
             let c = Int.compare a.slot_set b.slot_set in
             if c <> 0 then c else Int.compare a.slot_way b.slot_way)
  in
  {
    area_accesses = !accesses;
    area_misses = !misses;
    area_distinct_lines = Hashtbl.length area_seen;
    non_area_distinct_lines = Hashtbl.length other_seen;
    conflicts;
  }
