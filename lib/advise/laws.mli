(** The advisor's corpus-wide soundness laws, packaged for
    [Check.Differ] and the CI fuzz slice.  Three obligations per
    (program, geometry, area):

    - {e region bounds}: no concrete trace window demands more lines in
      one set than the region's static pressure ({!Oracle.check_bounds});
    - {e PL001 reproduction}: the designated-way replay's predicted
      misses are a lower bound on the real way-placement run's misses —
      every reported conflict is measurable in simulation;
    - {e schedule envelope}: the oracle schedule replayed through
      {!Wp_sim.Simulator.run_with_resizes} lands inside the static
      energy envelope, as does the plain (unresized) run. *)

val check :
  ?where:string ->
  geometry:Wp_cache.Geometry.t ->
  page_bytes:int ->
  area_bytes:int ->
  program:Wp_workloads.Codegen.t ->
  profile:Wp_cfg.Profile.t ->
  trace:Wp_workloads.Tracer.trace ->
  layout:Wp_layout.Binary_layout.t ->
  unit ->
  string list
(** Violation strings ([where]-prefixed, naming the offending region
    where one exists); empty when every law holds.  Never raises: an
    exception from a sub-check becomes a violation string. *)
