(** The offline reconfiguration oracle and its soundness checks.

    Three statically derived artefacts, all conservative against the
    concrete probe stream (a law the differential fuzzer enforces
    corpus-wide, {!check_bounds} / [Check.Differ]):

    - a {e minimal-ways schedule}: per trace position, the way
      allocation of the executing block's innermost region, lowered to
      ascending [(trace_block_index, area_bytes)] resize points that
      {!Wp_sim.Simulator.run_with_resizes} consumes — the offline
      oracle ROADMAP item 3 compares online controllers against;
    - an {e energy envelope} [\[lo, hi\]] bracketing the I-cache energy
      of {e any} way-placement run of the trace (any area, any resize
      schedule, flushes included), from the exact deterministic
      fetch/same-line-elision counts;
    - a {e designated-way area replay}: the way-placement area's
      slot-conflict behaviour re-derived from first principles, whose
      conflict misses every PL001 finding must be witnessed by. *)

val area_for :
  geometry:Wp_cache.Geometry.t -> page_bytes:int -> ways:int -> int
(** Smallest way-placement area (positive multiple of [page_bytes])
    covering [ways] consecutive designated ways.
    @raise Invalid_argument if [page_bytes] is not a positive power of
    two or [ways] is not positive. *)

val schedule :
  ?min_run:int ->
  analysis:Region.analysis ->
  trace:Wp_workloads.Tracer.trace ->
  page_bytes:int ->
  unit ->
  (int * int) list
(** The oracle resize schedule: ascending
    [(trace_block_index, area_bytes)], first entry at index 0, no two
    consecutive entries with equal areas.  Runs shorter than [min_run]
    trace blocks (default 32) are merged into their neighbour taking
    the larger area — hysteresis against flush-thrash, erring
    conservative.
    @raise Invalid_argument on an empty trace or invalid [page_bytes]. *)

type envelope = {
  env_fetches : int;
  env_same_line : int;  (** fetches elided by the same-line fast path *)
  env_lo_pj : float;
  env_hi_pj : float;
}

val envelope :
  ?elision:bool ->
  graph:Wp_cfg.Icfg.t ->
  layout:Wp_layout.Binary_layout.t ->
  trace:Wp_workloads.Tracer.trace ->
  geometry:Wp_cache.Geometry.t ->
  energy:Wp_energy.Params.t ->
  unit ->
  envelope
(** Fetch and same-line counts are exact (they depend only on trace,
    layout and elision, not on cache state); [lo] assumes every access
    is a single-way hit, [hi] a wrong-hint full re-search plus a miss
    refill on every access. *)

val check_bounds :
  analysis:Region.analysis ->
  graph:Wp_cfg.Icfg.t ->
  layout:Wp_layout.Binary_layout.t ->
  trace:Wp_workloads.Tracer.trace ->
  string list
(** The soundness law: over every maximal trace window spent inside a
    region's closure, the per-set distinct-line demand must not exceed
    the region's static [max_set_pressure] (hence the clamped demand
    never exceeds [min_ways]).  Returns one violation string per
    offending region, naming its function and header. *)

type area_conflict = {
  slot_set : int;
  slot_way : int;
  lines : Wp_isa.Addr.t list;  (** distinct area lines of the slot, ascending *)
  evictions : int;  (** conflict misses the alternation caused *)
}

type area_replay = {
  area_accesses : int;  (** non-elided accesses landing inside the area *)
  area_misses : int;
  area_distinct_lines : int;
  non_area_distinct_lines : int;
  conflicts : area_conflict list;  (** slots with [evictions > 0] *)
}

val replay_area :
  ?elision:bool ->
  graph:Wp_cfg.Icfg.t ->
  layout:Wp_layout.Binary_layout.t ->
  trace:Wp_workloads.Tracer.trace ->
  geometry:Wp_cache.Geometry.t ->
  area_bytes:int ->
  unit ->
  area_replay
(** Replay the trace against the area's designated-way slots alone
    (each area line can live only in its (set, low-tag-bits way) slot,
    exactly the way-placement fill rule), so
    [area_misses = area_distinct_lines + conflict misses].  A real
    way-placement run of the same trace can only miss {e more} (normal
    lines may also evict area lines), which is the reproduction law for
    PL001 findings.
    @raise Invalid_argument if [area_bytes] is not positive. *)
