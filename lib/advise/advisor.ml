module Icfg = Wp_cfg.Icfg
module Basic_block = Wp_cfg.Basic_block
module Profile = Wp_cfg.Profile
module Layout = Wp_layout.Binary_layout
module Chain = Wp_layout.Chain
module Chain_builder = Wp_layout.Chain_builder
module Geometry = Wp_cache.Geometry
module Finding = Wp_lint.Finding
module Report = Wp_sim.Report
module Cam_energy = Wp_energy.Cam_energy
module Addr = Wp_isa.Addr

type improvement = {
  order : Basic_block.id array;
  cost_before : int;
  cost_after : int;
  predicted_delta_pj : float;
}

type t = {
  benchmark : string;
  geometry : Geometry.t;
  page_bytes : int;
  area_bytes : int;
  static_min_ways : int;
  regions : Region.t list;
  findings : Wp_lint.Finding.t list;
  schedule : (int * int) list;
  envelope : Oracle.envelope;
  replay : Oracle.area_replay;
  improvement : improvement option;
}

(* --- findings -------------------------------------------------------- *)

let region_lines geometry layout graph (r : Region.t) =
  let seen = Hashtbl.create 32 in
  List.iter
    (fun id ->
      let b = Icfg.block graph id in
      let start = Layout.block_start layout id in
      let last = start + Basic_block.size_bytes b - 1 in
      let line = geometry.Geometry.line_bytes in
      let a = ref (Geometry.line_base geometry start) in
      while !a <= last do
        Hashtbl.replace seen !a ();
        a := !a + line
      done)
    r.Region.closure_blocks;
  seen

let pl001 ~geometry ~layout ~graph ~regions (replay : Oracle.area_replay) =
  let region_line_sets =
    List.map (fun r -> (r, region_lines geometry layout graph r)) regions
  in
  List.map
    (fun (c : Oracle.area_conflict) ->
      let witness =
        List.find_opt
          (fun ((r : Region.t), lines) ->
            r.Region.fits
            && List.length (List.filter (Hashtbl.mem lines) c.Oracle.lines) >= 2)
          region_line_sets
      in
      let where =
        match witness with
        | Some (r, _) ->
            Printf.sprintf " inside fitting region (func %d, %s, header %d)"
              r.Region.func
              (Region.kind_name r.Region.kind)
              r.Region.header
        | None -> ""
      in
      Finding.v ~code:"PL001"
        ~addr:(List.hd c.Oracle.lines)
        (Printf.sprintf
           "%d area lines alternate in slot (set %d, way %d): %d avoidable \
            conflict misses%s"
           (List.length c.Oracle.lines)
           c.Oracle.slot_set c.Oracle.slot_way c.Oracle.evictions where))
    replay.Oracle.conflicts

let pl002 ~geometry ~layout ~graph ~area_bytes ~regions =
  let base = Layout.base layout in
  let boundary = base + area_bytes in
  List.filter_map
    (fun (r : Region.t) ->
      match r.Region.kind with
      | Region.Body -> None
      | Region.Loop _ ->
          if not (r.Region.fits && r.Region.weight > 0) then None
          else
            let lines = region_lines geometry layout graph r in
            let ways = Hashtbl.create 8 in
            Hashtbl.iter
              (fun line () ->
                if line >= base && line < boundary then
                  Hashtbl.replace ways (Geometry.way_of_addr geometry line) ())
              lines;
            let used = Hashtbl.length ways in
            if used > r.Region.max_set_pressure then
              Some
                (Finding.v ~code:"PL002" ~block:r.Region.dominant
                   (Printf.sprintf
                      "hot loop (func %d, header %d) spans %d designated \
                       ways but its set pressure is only %d"
                      r.Region.func r.Region.header used
                      r.Region.max_set_pressure))
            else None)
    regions

let pl003 ~geometry ~page_bytes ~area_bytes ~static_min_ways =
  let span = Geometry.way_span_bytes geometry in
  let ways_avail =
    min geometry.Geometry.assoc ((area_bytes + span - 1) / span)
  in
  if ways_avail > static_min_ways then
    [
      Finding.v ~code:"PL003"
        (Printf.sprintf
           "area of %d B covers %d ways but the static bound needs only %d \
            (area could shrink to %d B)"
           area_bytes ways_avail static_min_ways
           (Oracle.area_for ~geometry ~page_bytes ~ways:static_min_ways));
    ]
  else []

(* --- greedy conflict-graph improvement ------------------------------- *)

(* Weighted slot-conflict cost of a chain concatenation: lay the chains
   out from the base, weight each area line with the profile counts of
   the blocks touching it, and charge every slot the weight it cannot
   keep resident ([sum - max] over its lines).  Chain-internal order is
   preserved, so any permutation of whole chains is admissible. *)
let cost_of_chain_order ~graph ~profile ~geometry ~base ~area_bytes chains =
  let boundary = base + area_bytes in
  let line_w : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let addr = ref base in
  Array.iter
    (fun (c : Chain.t) ->
      List.iter
        (fun id ->
          let b = Icfg.block graph id in
          let start = !addr in
          let size = Basic_block.size_bytes b in
          addr := !addr + size;
          let w = Profile.block_count profile id in
          if w > 0 && start < boundary then begin
            let line = geometry.Geometry.line_bytes in
            let last = min (start + size - 1) (boundary - 1) in
            let a = ref (Geometry.line_base geometry start) in
            while !a <= last do
              if !a >= base then
                Hashtbl.replace line_w !a
                  (w + Option.value ~default:0 (Hashtbl.find_opt line_w !a));
              a := !a + line
            done
          end)
        c.Chain.blocks)
    chains;
  let slots : (int * int, int * int) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun line w ->
      let key =
        (Geometry.set_index geometry line, Geometry.way_of_addr geometry line)
      in
      let sum, mx =
        Option.value ~default:(0, 0) (Hashtbl.find_opt slots key)
      in
      Hashtbl.replace slots key (sum + w, max mx w))
    line_w;
  Hashtbl.fold (fun _ (sum, mx) acc -> acc + (sum - mx)) slots 0

let improve ~graph ~profile ~geometry ~base ~area_bytes ~energy =
  let chains =
    Chain_builder.build graph profile
    |> List.sort Chain.compare_by_weight
    |> Array.of_list
  in
  let cost order =
    cost_of_chain_order ~graph ~profile ~geometry ~base ~area_bytes order
  in
  let cost_before = cost chains in
  let current = Array.copy chains in
  let best = ref cost_before in
  let budget = ref 2000 in
  let improved_in_pass = ref true in
  while !improved_in_pass && !budget > 0 do
    improved_in_pass := false;
    for i = 0 to Array.length current - 2 do
      if !budget > 0 then begin
        decr budget;
        let a = current.(i) and b = current.(i + 1) in
        current.(i) <- b;
        current.(i + 1) <- a;
        let c = cost current in
        if c < !best then begin
          best := c;
          improved_in_pass := true
        end
        else begin
          current.(i) <- a;
          current.(i + 1) <- b
        end
      end
    done
  done;
  if !best >= cost_before then None
  else
    let order =
      Array.of_list
        (List.concat_map
           (fun (c : Chain.t) -> c.Chain.blocks)
           (Array.to_list current))
    in
    let cam = Cam_energy.of_geometry energy geometry in
    Some
      {
        order;
        cost_before;
        cost_after = !best;
        predicted_delta_pj =
          float_of_int (cost_before - !best)
          *. (cam.Cam_energy.line_fill_pj
             +. energy.Wp_energy.Params.memory_access_pj);
      }

(* --- the report ------------------------------------------------------ *)

let analyze ?min_run ~benchmark ~graph ~profile ~trace ~layout ~geometry
    ~page_bytes ~area_bytes ~energy () =
  if page_bytes <= 0 || not (Addr.is_power_of_two page_bytes) then
    invalid_arg
      (Printf.sprintf
         "Advisor.analyze: page size %d B is not a positive power of two"
         page_bytes);
  if area_bytes <= 0 || area_bytes mod page_bytes <> 0 then
    invalid_arg
      (Printf.sprintf
         "Advisor.analyze: area of %d B is not a positive multiple of the %d \
          B page"
         area_bytes page_bytes);
  let analysis = Region.analyze ~graph ~profile ~layout ~geometry () in
  let regions = Array.to_list (Region.regions analysis) in
  let static_min_ways = Region.static_min_ways analysis in
  let schedule = Oracle.schedule ?min_run ~analysis ~trace ~page_bytes () in
  let envelope =
    Oracle.envelope ~graph ~layout ~trace ~geometry ~energy ()
  in
  let replay =
    Oracle.replay_area ~graph ~layout ~trace ~geometry ~area_bytes ()
  in
  let findings =
    pl001 ~geometry ~layout ~graph ~regions replay
    @ pl002 ~geometry ~layout ~graph ~area_bytes ~regions
    @ pl003 ~geometry ~page_bytes ~area_bytes ~static_min_ways
    |> List.stable_sort Finding.compare
  in
  let improvement =
    improve ~graph ~profile ~geometry ~base:(Layout.base layout) ~area_bytes
      ~energy
  in
  {
    benchmark;
    geometry;
    page_bytes;
    area_bytes;
    static_min_ways;
    regions;
    findings;
    schedule;
    envelope;
    replay;
    improvement;
  }

let exit_code ?strict t = Finding.exit_code ?strict t.findings

(* --- serialisation --------------------------------------------------- *)

let opt_int = function None -> Report.Jnull | Some i -> Report.Jint i

let finding_to_json (f : Finding.t) =
  Report.Jobj
    [
      ("code", Report.Jstring f.Finding.code);
      ("severity", Report.Jstring (Finding.severity_name f.Finding.severity));
      ("block", opt_int f.Finding.block);
      ("addr", opt_int f.Finding.addr);
      ("message", Report.Jstring f.Finding.message);
    ]

let region_to_json (r : Region.t) =
  Report.Jobj
    [
      ("func", Report.Jint r.Region.func);
      ("header", Report.Jint r.Region.header);
      ("kind", Report.Jstring (Region.kind_name r.Region.kind));
      ("blocks", Report.Jint (List.length r.Region.blocks));
      ("closure_blocks", Report.Jint (List.length r.Region.closure_blocks));
      ("dominant", Report.Jint r.Region.dominant);
      ("weight", Report.Jint r.Region.weight);
      ("distinct_lines", Report.Jint r.Region.distinct_lines);
      ("max_set_pressure", Report.Jint r.Region.max_set_pressure);
      ("min_ways", Report.Jint r.Region.min_ways);
      ("fits", Report.Jbool r.Region.fits);
    ]

let schedule_to_json entries =
  Report.Jlist
    (List.map
       (fun (idx, area) ->
         Report.Jobj
           [ ("at_block", Report.Jint idx); ("area_bytes", Report.Jint area) ])
       entries)

let schedule_of_json j =
  match Report.to_list j with
  | None -> Error "schedule: expected a JSON array"
  | Some entries ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | e :: rest -> (
            match
              ( Option.bind (Report.member "at_block" e) Report.to_int,
                Option.bind (Report.member "area_bytes" e) Report.to_int )
            with
            | Some idx, Some area -> go ((idx, area) :: acc) rest
            | _ ->
                Error "schedule: entry needs integer at_block and area_bytes")
      in
      go [] entries

let to_json t =
  Report.Jobj
    [
      ("benchmark", Report.Jstring t.benchmark);
      ("geometry", Report.Jstring (Geometry.to_string t.geometry));
      ("page_bytes", Report.Jint t.page_bytes);
      ("area_bytes", Report.Jint t.area_bytes);
      ("static_min_ways", Report.Jint t.static_min_ways);
      ("regions", Report.Jlist (List.map region_to_json t.regions));
      ("findings", Report.Jlist (List.map finding_to_json t.findings));
      ("schedule", schedule_to_json t.schedule);
      ( "envelope",
        Report.Jobj
          [
            ("fetches", Report.Jint t.envelope.Oracle.env_fetches);
            ("same_line", Report.Jint t.envelope.Oracle.env_same_line);
            ("lo_pj", Report.Jfloat t.envelope.Oracle.env_lo_pj);
            ("hi_pj", Report.Jfloat t.envelope.Oracle.env_hi_pj);
          ] );
      ( "area_replay",
        Report.Jobj
          [
            ("accesses", Report.Jint t.replay.Oracle.area_accesses);
            ("misses", Report.Jint t.replay.Oracle.area_misses);
            ("distinct_lines", Report.Jint t.replay.Oracle.area_distinct_lines);
            ( "conflict_misses",
              Report.Jint
                (t.replay.Oracle.area_misses
                - t.replay.Oracle.area_distinct_lines) );
          ] );
      ( "improvement",
        match t.improvement with
        | None -> Report.Jnull
        | Some imp ->
            Report.Jobj
              [
                ("cost_before", Report.Jint imp.cost_before);
                ("cost_after", Report.Jint imp.cost_after);
                ("predicted_delta_pj", Report.Jfloat imp.predicted_delta_pj);
                ( "order",
                  Report.Jlist
                    (Array.to_list
                       (Array.map (fun b -> Report.Jint b) imp.order)) );
              ] );
    ]

let csv_header =
  [
    "benchmark";
    "func";
    "header";
    "kind";
    "blocks";
    "closure_blocks";
    "dominant";
    "weight";
    "distinct_lines";
    "max_set_pressure";
    "min_ways";
    "fits";
  ]

let csv_rows t =
  List.map
    (fun (r : Region.t) ->
      [
        t.benchmark;
        string_of_int r.Region.func;
        string_of_int r.Region.header;
        Region.kind_name r.Region.kind;
        string_of_int (List.length r.Region.blocks);
        string_of_int (List.length r.Region.closure_blocks);
        string_of_int r.Region.dominant;
        string_of_int r.Region.weight;
        string_of_int r.Region.distinct_lines;
        string_of_int r.Region.max_set_pressure;
        string_of_int r.Region.min_ways;
        string_of_bool r.Region.fits;
      ])
    t.regions

let pp ppf t =
  Format.fprintf ppf
    "@[<v>placement advice for %s @ %s (area %d B, page %d B)@,\
     static minimal ways: %d@,\
     regions (%d):@,"
    t.benchmark (Geometry.to_string t.geometry) t.area_bytes t.page_bytes
    t.static_min_ways (List.length t.regions);
  List.iter (fun r -> Format.fprintf ppf "  %a@," Region.pp r) t.regions;
  Format.fprintf ppf "schedule (%d resize points):@," (List.length t.schedule);
  List.iter
    (fun (idx, area) ->
      Format.fprintf ppf "  at trace block %d: area %d B@," idx area)
    t.schedule;
  Format.fprintf ppf
    "energy envelope: [%.1f, %.1f] pJ over %d fetches (%d same-line)@,"
    t.envelope.Oracle.env_lo_pj t.envelope.Oracle.env_hi_pj
    t.envelope.Oracle.env_fetches t.envelope.Oracle.env_same_line;
  Format.fprintf ppf
    "area replay: %d accesses, %d misses (%d compulsory, %d conflict)@,"
    t.replay.Oracle.area_accesses t.replay.Oracle.area_misses
    t.replay.Oracle.area_distinct_lines
    (t.replay.Oracle.area_misses - t.replay.Oracle.area_distinct_lines);
  (match t.improvement with
  | None -> Format.fprintf ppf "placement: no improvement found@,"
  | Some imp ->
      Format.fprintf ppf
        "placement: conflict cost %d -> %d (predicted saving <= %.1f pJ)@,"
        imp.cost_before imp.cost_after imp.predicted_delta_pj);
  Format.fprintf ppf "findings (%d):@," (List.length t.findings);
  if t.findings = [] then Format.fprintf ppf "  (none)@,"
  else List.iter (fun f -> Format.fprintf ppf "  %a@," Finding.pp f) t.findings;
  Format.fprintf ppf "@]"
