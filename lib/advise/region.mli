(** Interprocedural loop-nest regions with static way-pressure bounds.

    The advisor decomposes the program into {e regions}: one per
    natural loop of every function plus one whole-function body region,
    so every block has an innermost region and a schedule derived from
    regions is total over any trace.  Each region carries its
    {e closure} — the blocks of every function it can transitively call
    — because a loop that calls out still holds those callee lines in
    its steady-state working set; bounding pressure over the closure is
    what makes the static bound conservative against any concrete
    execution (see {!Oracle.check_bounds}).

    Pressure is measured on a concrete layout: the distinct cache lines
    the closure occupies, bucketed by set index.  [min_ways] — the
    busiest set's line count clamped to the associativity — is the
    dominant-block-guided minimal cache allocation in the sense of
    Patel & Rajawat's optimal cache size estimation. *)

type kind =
  | Body  (** whole-function region (loop depth 0) *)
  | Loop of int  (** natural loop; payload = nesting depth, 1 = outermost *)

type t = {
  id : int;  (** dense index into {!analysis.regions} *)
  func : int;  (** owning function id *)
  header : Wp_cfg.Basic_block.id;
      (** loop header, or the function entry for a [Body] region *)
  kind : kind;
  blocks : Wp_cfg.Basic_block.id list;  (** own (intra) blocks, sorted *)
  closure_blocks : Wp_cfg.Basic_block.id list;
      (** own blocks plus every block of transitively called functions;
          sorted *)
  dominant : Wp_cfg.Basic_block.id;
      (** hottest own block by profile count (ties: lowest id) *)
  weight : int;  (** sum of [exec count * static size] over own blocks *)
  distinct_lines : int;  (** cache lines the closure occupies *)
  max_set_pressure : int;  (** closure lines in the busiest set *)
  min_ways : int;
      (** [max_set_pressure] clamped to [\[1, assoc\]]: the smallest
          way allocation under which the region's steady state cannot
          thrash *)
  fits : bool;  (** [max_set_pressure <= assoc] *)
}

type analysis

val analyze :
  graph:Wp_cfg.Icfg.t ->
  profile:Wp_cfg.Profile.t ->
  layout:Wp_layout.Binary_layout.t ->
  geometry:Wp_cache.Geometry.t ->
  unit ->
  analysis
(** @raise Invalid_argument if the profile's block count disagrees with
    the graph. *)

val regions : analysis -> t array
(** All regions, grouped by function, [Body] region first. *)

val geometry : analysis -> Wp_cache.Geometry.t

val innermost : analysis -> Wp_cfg.Basic_block.id -> t
(** The innermost region containing a block: its smallest enclosing
    natural loop, else its function's [Body] region.
    @raise Invalid_argument on an unknown block id. *)

val regions_of_block : analysis -> Wp_cfg.Basic_block.id -> int list
(** Ids of every region whose {e closure} contains the block. *)

val static_min_ways : analysis -> int
(** The global static minimal-ways bound: the maximum [min_ways] over
    all regions with nonzero profile weight (all regions when the
    profile is empty) — the smallest way-placement allocation the
    static analysis certifies for the whole run. *)

val kind_name : kind -> string
val pp : Format.formatter -> t -> unit
