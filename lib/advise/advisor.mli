(** The static placement advisor: one report tying the region/pressure
    analysis, the placement verification findings, the offline resize
    schedule and the energy envelope together — the object the CLI
    prints, the serve daemon memoises and the docs tabulate.

    Finding codes (registered in {!Wp_lint.Finding.registry}):
    - [PL001] (warning): two area lines competing for one
      (set, designated way) slot alternate inside a fitting region's
      window — an avoidable conflict the placer should have packed
      apart; every emission is witnessed by the designated-way replay
      ({!Oracle.replay_area}), so it reproduces as measurable conflict
      misses in simulation (a [Check.Differ] law).
    - [PL002] (info): a hot loop's placed lines spread over more
      designated ways than its static set pressure needs.
    - [PL003] (info): the configured area covers more ways than the
      global static minimal-ways bound — the area could shrink. *)

type improvement = {
  order : Wp_cfg.Basic_block.id array;
      (** improved whole-binary block order (chain-respecting, always
          admissible) *)
  cost_before : int;  (** weighted slot-conflict cost of the placed order *)
  cost_after : int;
  predicted_delta_pj : float;
      (** upper-bound energy the removed conflict weight could save
          (refill + memory access per avoided miss) *)
}

type t = {
  benchmark : string;
  geometry : Wp_cache.Geometry.t;
  page_bytes : int;
  area_bytes : int;
  static_min_ways : int;  (** {!Region.static_min_ways} *)
  regions : Region.t list;
  findings : Wp_lint.Finding.t list;
  schedule : (int * int) list;  (** {!Oracle.schedule} *)
  envelope : Oracle.envelope;
  replay : Oracle.area_replay;
  improvement : improvement option;
      (** [None] when the greedy conflict-graph search found nothing
          strictly better *)
}

val analyze :
  ?min_run:int ->
  benchmark:string ->
  graph:Wp_cfg.Icfg.t ->
  profile:Wp_cfg.Profile.t ->
  trace:Wp_workloads.Tracer.trace ->
  layout:Wp_layout.Binary_layout.t ->
  geometry:Wp_cache.Geometry.t ->
  page_bytes:int ->
  area_bytes:int ->
  energy:Wp_energy.Params.t ->
  unit ->
  t
(** [layout] must be the placed (way-placement) layout the advisor
    verifies.
    @raise Invalid_argument if [page_bytes] is not a positive power of
    two, [area_bytes] is not a positive multiple of it, or the profile
    does not match the graph. *)

val to_json : t -> Wp_sim.Report.json
(** Round-trips through {!Wp_sim.Report.parse} (QCheck-pinned). *)

val schedule_to_json : (int * int) list -> Wp_sim.Report.json
val schedule_of_json : Wp_sim.Report.json -> ((int * int) list, string) result

val csv_header : string list
val csv_rows : t -> string list list
(** One RFC-4180 row per region. *)

val exit_code : ?strict:bool -> t -> int
(** {!Wp_lint.Finding.exit_code} over the report's findings. *)

val pp : Format.formatter -> t -> unit
