(** Flow edges as the trace walker actually takes them.

    {!Wp_cfg.Icfg} materialises fallthrough/taken/call edges only; the
    walker in [Wp_workloads.Tracer] additionally follows {e return}
    edges (popping its call stack to the continuation of the matching
    call site) and {e restart} edges (a finished program re-enters the
    entry block with a cleared stack).  The abstract I-cache analysis
    and the reachability lint must see exactly those edges, so this
    module reconstructs them context-insensitively: a return block of
    function [f] flows to the continuation of {e every} call site
    targeting [f]. *)

type kind = Fallthrough | Taken | Call | Return | Restart

type succ = { dst : Wp_cfg.Basic_block.id; kind : kind }

type t

val compute : Wp_cfg.Icfg.t -> t

val successors : t -> Wp_cfg.Basic_block.id -> succ list
(** Every block the walker can fetch next after executing the given
    block's last instruction. *)

val predecessors : t -> Wp_cfg.Basic_block.id -> (Wp_cfg.Basic_block.id * kind) list

val reachable : t -> bool array
(** Per-block: reachable from the program entry along walker edges.
    A call continuation is only reachable if the callee can actually
    return (or the block has another incoming path). *)

val kind_to_string : kind -> string
