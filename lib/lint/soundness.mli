(** Static-vs-dynamic soundness cross-check.

    Runs the {!Abstract_icache} classification and a baseline LRU
    simulation of the same program/layout/trace side by side, and
    correlates the simulator's probe stream with the static
    classification on the fly: a statically guaranteed-hit access must
    never miss, a guaranteed-miss access must never hit, an elided or
    unreachable site must never perform a cache access, and the
    engine's same-line elision decisions must match the static
    prediction fetch for fetch.

    The simulator is pinned to [Lru] replacement — the must/may
    analysis is unsound for the XScale's default round-robin policy —
    and to the [Baseline] scheme, whose probe stream carries exactly
    one [Icache_access] per non-elided fetch. *)

type counts = {
  fetches : int;
  elided : int;  (** same-line fetches: no cache access performed *)
  accesses : int;  (** non-elided fetches = [Icache_access] events *)
  must_hit_accesses : int;
  must_miss_accesses : int;
  unknown_accesses : int;
  hits : int;
  misses : int;
}

type result = {
  violations : string list;  (** empty = sound (capped, with a tail note) *)
  counts : counts;
  analysis : Abstract_icache.t;
}

val check :
  ?geometry:Wp_cache.Geometry.t ->
  ?elision:bool ->
  program:Wp_workloads.Codegen.t ->
  layout:Wp_layout.Binary_layout.t ->
  trace:Wp_workloads.Tracer.trace ->
  unit ->
  result
(** [geometry] defaults to the XScale 32KB/32way/32B I-cache;
    [elision] (default [true]) toggles same-line elision in both the
    analysis and the simulator. *)

val coverage : counts -> float
(** Fraction of dynamic (non-elided) accesses statically classified
    (must-hit or must-miss); 0 when there are no accesses. *)
