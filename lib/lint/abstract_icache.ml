module Icfg = Wp_cfg.Icfg
module Basic_block = Wp_cfg.Basic_block
module Addr = Wp_isa.Addr
module Layout = Wp_layout.Binary_layout
module Geometry = Wp_cache.Geometry

type classification = Must_hit | Must_miss | Unknown | Elided | Unreachable

type summary = {
  blocks : int;
  reachable_blocks : int;
  sites : int;
  must_hit : int;
  must_miss : int;
  unknown : int;
}

type loop_pressure = {
  func : int;
  header : Basic_block.id;
  loop_blocks : int;
  distinct_lines : int;
  max_set_pressure : int;
  fits : bool;
}

type t = {
  geometry : Geometry.t;
  classes : classification array array;  (** per block, per instruction *)
  summary : summary;
  loops : loop_pressure list;
}

let classification_name = function
  | Must_hit -> "must-hit"
  | Must_miss -> "must-miss"
  | Unknown -> "unknown"
  | Elided -> "elided"
  | Unreachable -> "unreachable"

(* Abstract state: one byte per cache line of the text section, holding
   min(LRU age, assoc).  [must] ages are upper bounds (age < assoc =>
   guaranteed resident); [may] ages are lower bounds (age = assoc =>
   guaranteed absent).  See Ferdinand & Wilhelm, "Efficient and precise
   cache behavior prediction for real-time systems". *)

let instr_bytes = Wp_isa.Instr.size_bytes

let analyze ?(elision = true) ~graph ~layout ~geometry () =
  let assoc = geometry.Geometry.assoc in
  if assoc >= 255 then
    invalid_arg
      (Printf.sprintf "Abstract_icache.analyze: assoc %d overflows byte ages"
         assoc);
  let base = Layout.base layout in
  let code_size = Layout.code_size_bytes layout in
  let shift = Addr.log2 geometry.Geometry.line_bytes in
  let base_line = base asr shift in
  let nlines =
    if code_size = 0 then 0
    else ((base + code_size - 1) asr shift) - base_line + 1
  in
  let line_of addr = (addr asr shift) - base_line in
  let set_of_line = Array.make (max nlines 1) 0 in
  for l = 0 to nlines - 1 do
    set_of_line.(l) <- Geometry.set_index geometry ((l + base_line) lsl shift)
  done;
  let mates =
    let by_set = Hashtbl.create 64 in
    for l = nlines - 1 downto 0 do
      let s = set_of_line.(l) in
      Hashtbl.replace by_set s
        (l :: Option.value ~default:[] (Hashtbl.find_opt by_set s))
    done;
    Array.init (max nlines 1) (fun l ->
        Array.of_list
          (Option.value ~default:[] (Hashtbl.find_opt by_set set_of_line.(l))))
  in
  let cold () = Bytes.make (max nlines 1) (Char.chr (min assoc 255)) in
  let access must may l =
    let a_must = Bytes.get_uint8 must l in
    (* must: lines younger than l's old upper bound age by one *)
    Array.iter
      (fun m ->
        if m <> l then begin
          let am = Bytes.get_uint8 must m in
          if am < a_must then Bytes.set_uint8 must m (min assoc (am + 1))
        end)
      mates.(l);
    Bytes.set_uint8 must l 0;
    (* may: ages shift only on a definite miss; on a possible hit the
       lower bounds stay valid unchanged *)
    let a_may = Bytes.get_uint8 may l in
    if a_may >= assoc then
      Array.iter
        (fun m ->
          if m <> l then begin
            let am = Bytes.get_uint8 may m in
            if am < assoc then Bytes.set_uint8 may m (min assoc (am + 1))
          end)
        mates.(l);
    Bytes.set_uint8 may l 0
  in
  let join_must acc s =
    for l = 0 to Bytes.length acc - 1 do
      let a = Bytes.get_uint8 acc l and b = Bytes.get_uint8 s l in
      if b > a then Bytes.set_uint8 acc l b
    done
  in
  let join_may acc s =
    for l = 0 to Bytes.length acc - 1 do
      let a = Bytes.get_uint8 acc l and b = Bytes.get_uint8 s l in
      if b < a then Bytes.set_uint8 acc l b
    done
  in
  let n = Icfg.num_blocks graph in
  let entry = Icfg.entry graph in
  let flow = Flow.compute graph in
  (* Line-leading access sites of each block: instruction indices that
     start a new cache line (index 0 always does). *)
  let sites_of =
    Array.init n (fun id ->
        let b = Icfg.block graph id in
        let start = Layout.block_start layout id in
        let k = Basic_block.size_instrs b in
        let acc = ref [] in
        for i = k - 1 downto 0 do
          let a = start + (i * instr_bytes) in
          if i = 0 || not (Geometry.same_line geometry a (a - instr_bytes))
          then acc := (i, line_of a) :: !acc
        done;
        Array.of_list !acc)
  in
  let first_addr id = Layout.block_start layout id in
  let last_addr id =
    let b = Icfg.block graph id in
    Layout.block_start layout id
    + ((Basic_block.size_instrs b - 1) * instr_bytes)
  in
  let edge_elides p b =
    elision && Geometry.same_line geometry (last_addr p) (first_addr b)
  in
  let out_must : Bytes.t option array = Array.make n None in
  let out_may : Bytes.t option array = Array.make n None in
  (* Join of predecessor contributions with the first access already
     applied on non-eliding edges (plus the cold start for the entry);
     [None] while no predecessor has been reached. *)
  let in_after_first b =
    let acc = ref None in
    let contribute must may =
      match !acc with
      | None -> acc := Some (must, may)
      | Some (am, ay) ->
          join_must am must;
          join_may ay may
    in
    let l0 = snd sites_of.(b).(0) in
    if b = entry then begin
      let must = cold () and may = cold () in
      access must may l0;
      contribute must may
    end;
    List.iter
      (fun (p, _kind) ->
        match (out_must.(p), out_may.(p)) with
        | Some pm, Some py ->
            let must = Bytes.copy pm and may = Bytes.copy py in
            if not (edge_elides p b) then access must may l0;
            contribute must may
        | _ -> ())
      (Flow.predecessors flow b);
    !acc
  in
  let transfer_rest b must may =
    let sites = sites_of.(b) in
    for k = 1 to Array.length sites - 1 do
      access must may (snd sites.(k))
    done
  in
  if nlines > 0 then begin
    let queue = Queue.create () in
    let queued = Array.make n false in
    let push b =
      if not queued.(b) then begin
        queued.(b) <- true;
        Queue.add b queue
      end
    in
    push entry;
    while not (Queue.is_empty queue) do
      let b = Queue.pop queue in
      queued.(b) <- false;
      match in_after_first b with
      | None -> ()
      | Some (must, may) ->
          transfer_rest b must may;
          let changed =
            match (out_must.(b), out_may.(b)) with
            | Some om, Some oy ->
                not (Bytes.equal om must && Bytes.equal oy may)
            | _ -> true
          in
          if changed then begin
            out_must.(b) <- Some must;
            out_may.(b) <- Some may;
            List.iter
              (fun (s : Flow.succ) -> push s.dst)
              (Flow.successors flow b)
          end
    done
  end;
  (* Classification pass over the fixpoint. *)
  let classify_line must may l =
    if Bytes.get_uint8 must l < assoc then Must_hit
    else if Bytes.get_uint8 may l >= assoc then Must_miss
    else Unknown
  in
  let classes =
    Array.init n (fun b ->
        let k = Basic_block.size_instrs (Icfg.block graph b) in
        if out_must.(b) = None then Array.make k Unreachable
        else begin
          let cls =
            Array.make k (if elision then Elided else Must_hit)
          in
          let sites = sites_of.(b) in
          let i0, l0 = sites.(0) in
          (* Site 0 classifies over the join of pre-access states of
             the edges that actually access (non-eliding ones, plus
             the cold start for the entry). *)
          let pre = ref None in
          let contribute must may =
            match !pre with
            | None -> pre := Some (Bytes.copy must, Bytes.copy may)
            | Some (am, ay) ->
                join_must am must;
                join_may ay may
          in
          if b = entry then begin
            let c = cold () in
            contribute c c
          end;
          List.iter
            (fun (p, _) ->
              match (out_must.(p), out_may.(p)) with
              | Some pm, Some py when not (edge_elides p b) ->
                  contribute pm py
              | _ -> ())
            (Flow.predecessors flow b);
          (match !pre with
          | None -> cls.(i0) <- Elided (* every incoming edge elides *)
          | Some (must, may) -> cls.(i0) <- classify_line must may l0);
          (match in_after_first b with
          | None -> ()
          | Some (must, may) ->
              for s = 1 to Array.length sites - 1 do
                let i, l = sites.(s) in
                cls.(i) <- classify_line must may l;
                access must may l
              done);
          cls
        end)
  in
  let summary =
    let reachable_blocks =
      Array.fold_left
        (fun acc o -> if o = None then acc else acc + 1)
        0 out_must
    in
    let mh = ref 0 and mm = ref 0 and unk = ref 0 in
    Array.iter
      (Array.iter (function
        | Must_hit -> incr mh
        | Must_miss -> incr mm
        | Unknown -> incr unk
        | Elided | Unreachable -> ()))
      classes;
    {
      blocks = n;
      reachable_blocks;
      sites = !mh + !mm + !unk;
      must_hit = !mh;
      must_miss = !mm;
      unknown = !unk;
    }
  in
  let loops =
    Array.to_list (Icfg.funcs graph)
    |> List.concat_map (fun (f : Wp_cfg.Func.t) ->
           Wp_cfg.Analysis.natural_loops graph ~entry:f.entry
           |> List.map (fun (l : Wp_cfg.Analysis.loop) ->
                  let lines = Hashtbl.create 16 in
                  List.iter
                    (fun id ->
                      let start = Layout.block_start layout id in
                      let size =
                        Basic_block.size_bytes (Icfg.block graph id)
                      in
                      let a = ref (Geometry.line_base geometry start) in
                      while !a < start + size do
                        Hashtbl.replace lines (line_of !a) ();
                        a := !a + geometry.Geometry.line_bytes
                      done)
                    l.blocks;
                  let per_set = Hashtbl.create 16 in
                  Hashtbl.iter
                    (fun l () ->
                      let s = set_of_line.(l) in
                      Hashtbl.replace per_set s
                        (1
                        + Option.value ~default:0 (Hashtbl.find_opt per_set s)))
                    lines;
                  let max_set =
                    Hashtbl.fold (fun _ c acc -> max c acc) per_set 0
                  in
                  {
                    func = f.id;
                    header = l.header;
                    loop_blocks = List.length l.blocks;
                    distinct_lines = Hashtbl.length lines;
                    max_set_pressure = max_set;
                    fits = max_set <= assoc;
                  }))
  in
  { geometry; classes; summary; loops }

let classify t ~block ~instr =
  if block < 0 || block >= Array.length t.classes then
    invalid_arg (Printf.sprintf "Abstract_icache.classify: block %d" block);
  let cls = t.classes.(block) in
  if instr < 0 || instr >= Array.length cls then
    invalid_arg
      (Printf.sprintf "Abstract_icache.classify: instr %d of block %d" instr
         block);
  cls.(instr)

let summary t = t.summary
let loop_pressures t = t.loops
let geometry t = t.geometry

let pp_summary ppf t =
  let s = t.summary in
  Format.fprintf ppf
    "@[<v>geometry %s: %d/%d blocks reachable, %d access sites:@ %d must-hit \
     (%.1f%%), %d must-miss, %d unknown; %d loops (%d fit their ways)@]"
    (Geometry.to_string t.geometry)
    s.reachable_blocks s.blocks s.sites s.must_hit
    (if s.sites = 0 then 0.0
     else 100.0 *. float_of_int s.must_hit /. float_of_int s.sites)
    s.must_miss s.unknown (List.length t.loops)
    (List.length (List.filter (fun l -> l.fits) t.loops))
