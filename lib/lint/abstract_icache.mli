(** Abstract I-cache analysis: fixpoint must/may classification of
    every static line access, per cache geometry.

    Classic abstract-interpretation cache analysis in the style of
    Ferdinand & Wilhelm: the {e must} state tracks an upper bound on
    every line's LRU age (join = pointwise max), the {e may} state a
    lower bound (join = pointwise min).  An access whose must-age is
    below the associativity is a guaranteed hit on every execution; an
    access absent from the may state is a guaranteed miss.

    The analysis walks the same flow edges as the trace walker
    ({!Flow}), including synthetic return and restart edges, and
    models the fetch engine's same-line elision exactly: an elided
    fetch does not touch the cache, and whether a block's {e first}
    fetch is elided is a static property of each incoming edge (the
    predecessor's last-instruction line vs. this block's first line).
    Accesses therefore collapse to {e line-leading} instruction sites.

    Soundness requires true LRU replacement; the classification is not
    valid for the XScale default round-robin policy, so the soundness
    cross-check ({!Soundness}) pins the simulator to [Lru]. *)

type classification =
  | Must_hit  (** hits on every execution reaching it *)
  | Must_miss  (** misses on every execution reaching it *)
  | Unknown
  | Elided  (** never performs a cache access (same-line elision) *)
  | Unreachable  (** no walker path from the entry reaches the block *)

type summary = {
  blocks : int;
  reachable_blocks : int;
  sites : int;  (** classified (non-elided) static access sites *)
  must_hit : int;
  must_miss : int;
  unknown : int;
}

type loop_pressure = {
  func : int;
  header : Wp_cfg.Basic_block.id;
  loop_blocks : int;
  distinct_lines : int;  (** cache lines the loop body touches *)
  max_set_pressure : int;  (** lines mapping to the busiest set *)
  fits : bool;  (** [max_set_pressure <= assoc]: steady-state all-hit *)
}

type t

val analyze :
  ?elision:bool ->
  graph:Wp_cfg.Icfg.t ->
  layout:Wp_layout.Binary_layout.t ->
  geometry:Wp_cache.Geometry.t ->
  unit ->
  t
(** [elision] defaults to [true] (the fetch engine's default).
    @raise Invalid_argument if the geometry's associativity does not
    fit the byte-packed age representation (assoc >= 255). *)

val classify : t -> block:Wp_cfg.Basic_block.id -> instr:int -> classification
(** Classification of the fetch of instruction [instr] of [block].
    Non-line-leading instructions are [Elided] (or [Must_hit] when the
    analysis ran with [elision:false]); a line-leading site whose every
    incoming edge elides is [Elided]. *)

val summary : t -> summary

val loop_pressures : t -> loop_pressure list
(** Way-pressure of every natural loop, all functions. *)

val geometry : t -> Wp_cache.Geometry.t
val classification_name : classification -> string
val pp_summary : Format.formatter -> t -> unit
