type severity = Info | Warning | Error

type t = {
  code : string;
  severity : severity;
  block : Wp_cfg.Basic_block.id option;
  addr : Wp_isa.Addr.t option;
  message : string;
}

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2

(* Well-formedness (WF), placement-contract (CT) codes.  Codes are
   stable: tests, CI greps and README all reference them by name. *)
let registry =
  [
    ("WF001", Error, "encoded transfer target lies outside the text section");
    ("WF002", Error, "block placed at a non-4-byte-aligned address");
    ("WF003", Error, "two blocks overlap in the placed image");
    ("WF004", Error, "gap between consecutively placed blocks (unaccounted padding)");
    ("WF005", Error, "fallthrough edge inconsistent with address order");
    ("WF006", Warning, "block unreachable from the program entry");
    ("WF007", Error, "call without a continuation block or callee target");
    ("WF008", Warning, "called function has no return block");
    ("WF009", Error, "image size disagrees with the layout's code size");
    ("WF010", Error, "encoded transfer target disagrees with successor placement");
    ("WF011", Error, "instruction word does not decode");
    ("WF012", Warning, "fallthrough/taken edge crosses a function boundary");
    ("WF013", Error, "decoded instruction disagrees with the CFG instruction");
    ("CT001", Error, "way-placement area is not a positive multiple of the page size");
    ("CT002", Error, "cache line spans the area boundary: per-page WP TLB bit inconsistent");
    ("CT003", Warning, "block straddles the way-placement area boundary");
    ("CT004", Info, "block inside the area spans more than one designated way");
    ("CT005", Warning, "two area lines compete for the same (set, designated way) slot");
    ("CT006", Error, "layout base disagrees with the machine's code base");
    ("CT007", Error, "page size/base invalid: per-page WP TLB bit ill-defined");
    ("CT008", Error, "user block placed inside the reserved kernel area");
    ("CT009", Error, "kernel block placed outside the reserved kernel area");
    ("PL001", Warning, "avoidable slot conflict witnessed in a fitting region");
    ("PL002", Info, "placed way span exceeds a hot region's static pressure");
    ("PL003", Info, "placement area exceeds the static minimal-ways bound");
  ]

let describe code =
  List.find_map
    (fun (c, _, d) -> if String.equal c code then Some d else None)
    registry

let severity_of_code code =
  match
    List.find_map
      (fun (c, s, _) -> if String.equal c code then Some s else None)
      registry
  with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Finding.v: unregistered code %S" code)

let v ~code ?block ?addr message =
  { code; severity = severity_of_code code; block; addr; message }

let compare a b =
  let c = Int.compare (severity_rank b.severity) (severity_rank a.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.code b.code in
    if c <> 0 then c
    else
      let c = Option.compare Int.compare a.block b.block in
      if c <> 0 then c else Option.compare Int.compare a.addr b.addr

let errors fs = List.filter (fun f -> f.severity = Error) fs
let warnings fs = List.filter (fun f -> f.severity = Warning) fs

let max_severity = function
  | [] -> None
  | fs ->
      Some
        (List.fold_left
           (fun acc f ->
             if severity_rank f.severity > severity_rank acc then f.severity
             else acc)
           Info fs)

let exit_code ?(strict = false) fs =
  match max_severity fs with
  | Some Error -> 3
  | Some Warning when strict -> 2
  | _ -> 0

(* A failed report write must not mask a worse severity code: exit 3
   beats exit 1 even when the --json/--csv file could not be written. *)
let cli_exit_code ?strict ~write_failed fs =
  let severity = exit_code ?strict fs in
  if write_failed then max severity 1 else severity

let pp ppf f =
  let loc =
    match (f.block, f.addr) with
    | Some b, Some a -> Format.asprintf " [block %d at %a]" b Wp_isa.Addr.pp a
    | Some b, None -> Printf.sprintf " [block %d]" b
    | None, Some a -> Format.asprintf " [%a]" Wp_isa.Addr.pp a
    | None, None -> ""
  in
  Format.fprintf ppf "%s %s%s: %s"
    (severity_name f.severity)
    f.code loc f.message
