(** Lint findings: one diagnosed defect of a laid-out binary.

    Every finding carries a {e stable} code (tests and CI grep for
    them), a severity, an optional location (block and/or address) and
    a human-readable message.  The full code vocabulary lives in
    {!registry} so documentation, tests and the CLI can enumerate it
    without chasing emission sites. *)

type severity = Info | Warning | Error

type t = {
  code : string;  (** stable finding code, e.g. ["WF003"] *)
  severity : severity;
  block : Wp_cfg.Basic_block.id option;
  addr : Wp_isa.Addr.t option;
  message : string;
}

val v :
  code:string ->
  ?block:Wp_cfg.Basic_block.id ->
  ?addr:Wp_isa.Addr.t ->
  string ->
  t
(** Build a finding; the severity is looked up in {!registry}.
    @raise Invalid_argument on an unregistered code. *)

val severity_name : severity -> string
val severity_rank : severity -> int
(** [Info] 0, [Warning] 1, [Error] 2. *)

val compare : t -> t -> int
(** Most severe first; ties by code, then block, then address. *)

val errors : t list -> t list
val warnings : t list -> t list
val max_severity : t list -> severity option

val exit_code : ?strict:bool -> t list -> int
(** Severity-based process exit code for the [lint] subcommand:
    [3] when any error-severity finding is present, else [2] when
    [strict] (default false) and a warning is present, else [0].
    Info findings never affect the exit code. *)

val cli_exit_code : ?strict:bool -> write_failed:bool -> t list -> int
(** {!exit_code} combined with a report-write outcome: a failed
    [--json]/[--csv] write exits at least [1] but never masks a worse
    severity code (a write failure on top of errors still exits [3]). *)

val registry : (string * severity * string) list
(** Every finding code with its severity and one-line description —
    the single source of truth for README's code table. *)

val describe : string -> string option
(** Description of a registered code. *)

val pp : Format.formatter -> t -> unit
