module Icfg = Wp_cfg.Icfg
module Basic_block = Wp_cfg.Basic_block
module Addr = Wp_isa.Addr
module Layout = Wp_layout.Binary_layout
module Geometry = Wp_cache.Geometry
module Config = Wp_sim.Config
module Probe = Wp_obs.Probe

type counts = {
  fetches : int;
  elided : int;
  accesses : int;
  must_hit_accesses : int;
  must_miss_accesses : int;
  unknown_accesses : int;
  hits : int;
  misses : int;
}

type result = {
  violations : string list;
  counts : counts;
  analysis : Abstract_icache.t;
}

let max_reported = 20

let coverage c =
  if c.accesses = 0 then 0.0
  else
    float_of_int (c.must_hit_accesses + c.must_miss_accesses)
    /. float_of_int c.accesses

let check ?geometry ?(elision = true) ~program ~layout ~trace () =
  let geometry =
    match geometry with
    | Some g -> g
    | None -> (Config.xscale Config.Baseline).icache
  in
  let graph = program.Wp_workloads.Codegen.graph in
  let analysis = Abstract_icache.analyze ~elision ~graph ~layout ~geometry () in
  let config =
    Config.xscale Config.Baseline |> fun c ->
    Config.with_icache c geometry |> fun c ->
    Config.with_replacement c Wp_cache.Replacement.Lru |> fun c ->
    Config.with_same_line_elision c elision
  in
  let sizes =
    Array.map Basic_block.size_instrs (Icfg.blocks graph)
  in
  let blocks = trace.Wp_workloads.Tracer.blocks in
  let ntrace = Array.length blocks in
  let violations = ref [] in
  let dropped = ref 0 in
  let violate fmt =
    Format.kasprintf
      (fun msg ->
        if List.length !violations < max_reported then
          violations := msg :: !violations
        else incr dropped)
      fmt
  in
  let k = ref 0 and i = ref 0 in
  let prev_addr = ref (-1) in
  let fetches = ref 0
  and elided_n = ref 0
  and accesses = ref 0
  and mh = ref 0
  and mm = ref 0
  and unk = ref 0
  and hits = ref 0
  and misses = ref 0 in
  (* Access awaiting its [Icache_access] event: block, instr, addr. *)
  let pending = ref None in
  let probe (event : Probe.event) =
    match event with
    | Fetch kind -> (
        if !pending <> None then begin
          violate "fetch before the previous access resolved";
          pending := None
        end;
        if !k < ntrace && !i >= sizes.(blocks.(!k)) then begin
          incr k;
          i := 0
        end;
        if !k >= ntrace then
          violate "more fetches than the trace holds"
        else begin
          let b = blocks.(!k) in
          let addr = Layout.block_start layout b + (!i * Wp_isa.Instr.size_bytes) in
          incr fetches;
          let expect_elide =
            elision && !prev_addr >= 0
            && Geometry.same_line geometry addr !prev_addr
          in
          (match kind with
          | Probe.Same_line ->
              incr elided_n;
              if not expect_elide then
                violate
                  "B%d/%d at %a: engine elided a fetch the analysis did not \
                   predict"
                  b !i Addr.pp addr
          | Probe.Full ->
              if expect_elide then
                violate
                  "B%d/%d at %a: engine accessed the cache on a predicted \
                   same-line fetch"
                  b !i Addr.pp addr;
              pending := Some (b, !i, addr)
          | Probe.Way_placed | Probe.Link_follow ->
              violate "B%d/%d: %s fetch in a baseline run" b !i
                (Probe.fetch_kind_name kind));
          prev_addr := addr;
          incr i
        end)
    | Icache_access { hit } -> (
        match !pending with
        | None -> violate "icache access with no fetch in flight"
        | Some (b, instr, addr) ->
            pending := None;
            incr accesses;
            if hit then incr hits else incr misses;
            let cls = Abstract_icache.classify analysis ~block:b ~instr in
            (match cls with
            | Abstract_icache.Must_hit ->
                incr mh;
                if not hit then
                  violate "B%d/%d at %a: statically must-hit access missed" b
                    instr Addr.pp addr
            | Must_miss ->
                incr mm;
                if hit then
                  violate "B%d/%d at %a: statically must-miss access hit" b
                    instr Addr.pp addr
            | Unknown -> incr unk
            | Elided ->
                violate
                  "B%d/%d at %a: statically elided site performed a cache \
                   access"
                  b instr Addr.pp addr
            | Unreachable ->
                violate "B%d/%d at %a: statically unreachable block executed"
                  b instr Addr.pp addr))
    | _ -> ()
  in
  let stats =
    Wp_sim.Simulator.run_probed ~probe ~schedule:[] ~config ~program ~layout
      ~trace
  in
  if !pending <> None then violate "run ended with an unresolved access";
  if !fetches <> trace.Wp_workloads.Tracer.dynamic_instrs then
    violate "saw %d fetch events for %d trace instructions" !fetches
      trace.Wp_workloads.Tracer.dynamic_instrs;
  if !hits <> stats.Wp_sim.Stats.icache_hits
     || !misses <> stats.Wp_sim.Stats.icache_misses
  then
    violate "probe hits/misses %d/%d disagree with stats %d/%d" !hits !misses
      stats.Wp_sim.Stats.icache_hits stats.Wp_sim.Stats.icache_misses;
  if !dropped > 0 then
    violations := Printf.sprintf "... and %d more violations" !dropped
                  :: !violations;
  {
    violations = List.rev !violations;
    counts =
      {
        fetches = !fetches;
        elided = !elided_n;
        accesses = !accesses;
        must_hit_accesses = !mh;
        must_miss_accesses = !mm;
        unknown_accesses = !unk;
        hits = !hits;
        misses = !misses;
      };
    analysis;
  }
