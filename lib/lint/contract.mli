(** Placement-contract checker (codes [CT001]–[CT007]).

    Verifies the way-placement pass's contract for one target geometry:
    the OS maps the first [area_bytes] of the text section (a positive
    page multiple) with the per-page WP TLB bit set; inside that area
    every cache line's designated way is the low tag bits of its
    address, so a line must not span the area boundary, hot blocks
    should not straddle it, and no two area lines should compete for
    the same (set, way) slot — a statically predictable conflict the
    paper's greedy chain packing is meant to avoid. *)

type params = {
  geometry : Wp_cache.Geometry.t;
  page_bytes : int;
  area_bytes : int;  (** way-placement area size, from the text base *)
  code_base : Wp_isa.Addr.t;  (** where the machine maps the text section *)
}

val check :
  Wp_cfg.Icfg.t -> Wp_layout.Binary_layout.t -> params -> Finding.t list
(** Findings sorted most severe first. *)

val check_reserved :
  Wp_cfg.Icfg.t ->
  Wp_layout.Binary_layout.t ->
  kernel_base:Wp_isa.Addr.t ->
  kernel_area_bytes:int ->
  role:[ `User | `Kernel ] ->
  Finding.t list
(** The multiprogramming kernel's reserved placement area: with
    [role:`User], every block overlapping
    [\[kernel_base, kernel_base + kernel_area_bytes)] is flagged
    [CT008]; with [role:`Kernel], every block escaping it is flagged
    [CT009].  Findings sorted most severe first.
    @raise Invalid_argument if [kernel_area_bytes] is not positive. *)
