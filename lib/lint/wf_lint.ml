module Icfg = Wp_cfg.Icfg
module Basic_block = Wp_cfg.Basic_block
module Addr = Wp_isa.Addr
module Layout = Wp_layout.Binary_layout
module Image = Wp_layout.Binary_image

type entry = { block : Basic_block.id; start : Addr.t; size_bytes : int }

let table_of_layout graph layout =
  Array.map
    (fun id ->
      {
        block = id;
        start = Layout.block_start layout id;
        size_bytes = Basic_block.size_bytes (Icfg.block graph id);
      })
    (Layout.order layout)

let check_table ~base ~code_size table =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  let cursor = ref base in
  Array.iter
    (fun { block; start; size_bytes } ->
      if start land (Wp_isa.Instr.size_bytes - 1) <> 0 then
        add
          (Finding.v ~code:"WF002" ~block ~addr:start
             (Format.asprintf "block %d placed at unaligned %a" block Addr.pp
                start));
      if start < !cursor then
        add
          (Finding.v ~code:"WF003" ~block ~addr:start
             (Format.asprintf
                "block %d at %a overlaps the previous block (ends at %a)"
                block Addr.pp start Addr.pp !cursor))
      else if start > !cursor then
        add
          (Finding.v ~code:"WF004" ~block ~addr:start
             (Format.asprintf "%d-byte gap before block %d at %a"
                (start - !cursor) block Addr.pp start));
      cursor := start + size_bytes)
    table;
  let packed = !cursor - base in
  if packed <> code_size then
    add
      (Finding.v ~code:"WF009" ~addr:base
         (Printf.sprintf "placed blocks span %d B but the layout claims %d B"
            packed code_size));
  List.rev !findings

let check_fallthrough graph table =
  let ends = Hashtbl.create (Array.length table) in
  Array.iter
    (fun { block; start; size_bytes } ->
      Hashtbl.replace ends block (start, start + size_bytes))
    table;
  let findings = ref [] in
  Array.iter
    (fun (b : Basic_block.t) ->
      match Icfg.fallthrough_succ graph b.id with
      | None -> ()
      | Some dst -> (
          match (Hashtbl.find_opt ends b.id, Hashtbl.find_opt ends dst) with
          | Some (_, src_end), Some (dst_start, _) when dst_start <> src_end ->
              findings :=
                Finding.v ~code:"WF005" ~block:b.id ~addr:src_end
                  (Format.asprintf
                     "fallthrough %d->%d: successor placed at %a, not at the \
                      source's end %a"
                     b.id dst Addr.pp dst_start Addr.pp src_end)
                :: !findings
          | _ -> ()))
    (Icfg.blocks graph);
  List.rev !findings

let check_graph graph =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  let flow = Flow.compute graph in
  let reach = Flow.reachable flow in
  Array.iter
    (fun (b : Basic_block.t) ->
      if not reach.(b.id) then
        add
          (Finding.v ~code:"WF006" ~block:b.id
             (Printf.sprintf "block %d is unreachable from the entry" b.id)))
    (Icfg.blocks graph);
  Array.iter
    (fun (b : Basic_block.t) ->
      if Basic_block.terminator b = Wp_isa.Opcode.Call then begin
        let target = Icfg.call_target graph b.id in
        let cont = Icfg.fallthrough_succ graph b.id in
        if target = None || cont = None then
          add
            (Finding.v ~code:"WF007" ~block:b.id
               (Printf.sprintf "call in block %d lacks a %s" b.id
                  (if target = None then "callee target"
                   else "continuation block")))
      end;
      List.iter
        (fun (e : Wp_cfg.Edge.t) ->
          match e.kind with
          | Fallthrough | Taken ->
              if (Icfg.block graph e.dst).func <> b.func then
                add
                  (Finding.v ~code:"WF012" ~block:b.id
                     (Printf.sprintf "%s edge %d->%d crosses functions %d->%d"
                        (Wp_cfg.Edge.kind_to_string e.kind)
                        b.id e.dst b.func (Icfg.block graph e.dst).func))
          | Call_to -> ())
        (Icfg.successors graph b.id))
    (Icfg.blocks graph);
  (* Called functions must be able to return, or their continuations
     are dead and the call site never completes. *)
  let called = Hashtbl.create 8 in
  Array.iter
    (fun (f : Wp_cfg.Func.t) ->
      Array.iter
        (fun (b : Basic_block.t) ->
          match Icfg.call_target graph b.id with
          | Some target when target = f.entry -> Hashtbl.replace called f.id b.id
          | _ -> ())
        (Icfg.blocks graph))
    (Icfg.funcs graph);
  Array.iter
    (fun (f : Wp_cfg.Func.t) ->
      match Hashtbl.find_opt called f.id with
      | None -> ()
      | Some _ ->
          let returns =
            List.exists
              (fun id ->
                Basic_block.terminator (Icfg.block graph id)
                = Wp_isa.Opcode.Return)
              f.blocks
          in
          if not returns then
            add
              (Finding.v ~code:"WF008" ~block:f.entry
                 (Printf.sprintf "called function %d (%s) has no return block"
                    f.id f.name)))
    (Icfg.funcs graph);
  List.rev !findings

let check_image graph layout image =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  let base = Layout.base layout in
  let code_size = Layout.code_size_bytes layout in
  if Bytes.length image <> code_size then
    add
      (Finding.v ~code:"WF009" ~addr:base
         (Printf.sprintf "image is %d B but the layout emits %d B"
            (Bytes.length image) code_size));
  Array.iter
    (fun (b : Basic_block.t) ->
      let n = Basic_block.size_instrs b in
      let expected_target =
        match Basic_block.terminator b with
        | Branch | Jump ->
            Option.map (Layout.block_start layout) (Icfg.taken_succ graph b.id)
        | Call ->
            Option.map (Layout.block_start layout) (Icfg.call_target graph b.id)
        | _ -> None
      in
      for i = 0 to n - 1 do
        let addr = Layout.instr_addr layout b.id i in
        if addr >= base && addr + Wp_isa.Instr.size_bytes <= base + Bytes.length image
        then
          match Image.decode_at graph layout image addr with
          | Error msg ->
              add
                (Finding.v ~code:"WF011" ~block:b.id ~addr
                   (Format.asprintf "word at %a does not decode: %s" Addr.pp
                      addr msg))
          | Ok (instr, target) ->
              if not (Wp_isa.Instr.equal instr b.instrs.(i)) then
                add
                  (Finding.v ~code:"WF013" ~block:b.id ~addr
                     (Format.asprintf
                        "decoded %a at %a but the CFG holds %a" Wp_isa.Instr.pp
                        instr Addr.pp addr Wp_isa.Instr.pp b.instrs.(i)));
              if i = n - 1 then (
                match target with
                | Some t when t < base || t >= base + code_size ->
                    add
                      (Finding.v ~code:"WF001" ~block:b.id ~addr
                         (Format.asprintf
                            "transfer at %a targets %a, outside the text \
                             section [%a, %a)"
                            Addr.pp addr Addr.pp t Addr.pp base Addr.pp
                            (base + code_size)))
                | Some t when t land (Wp_isa.Instr.size_bytes - 1) <> 0 ->
                    add
                      (Finding.v ~code:"WF002" ~block:b.id ~addr
                         (Format.asprintf "transfer at %a targets unaligned %a"
                            Addr.pp addr Addr.pp t))
                | target ->
                    if target <> expected_target then
                      add
                        (Finding.v ~code:"WF010" ~block:b.id ~addr
                           (Format.asprintf
                              "link field at %a holds %s but the successor is \
                               placed at %s"
                              Addr.pp addr
                              (match target with
                              | Some t -> Format.asprintf "%a" Addr.pp t
                              | None -> "no target")
                              (match expected_target with
                              | Some t -> Format.asprintf "%a" Addr.pp t
                              | None -> "no target"))))
      done)
    (Icfg.blocks graph);
  List.rev !findings

let check ?image graph layout =
  let image =
    match image with Some i -> i | None -> Image.emit graph layout
  in
  let table = table_of_layout graph layout in
  List.stable_sort Finding.compare
    (check_graph graph
    @ check_table ~base:(Layout.base layout)
        ~code_size:(Layout.code_size_bytes layout)
        table
    @ check_fallthrough graph table
    @ check_image graph layout image)
