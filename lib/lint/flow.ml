module Icfg = Wp_cfg.Icfg
module Basic_block = Wp_cfg.Basic_block
module Opcode = Wp_isa.Opcode

type kind = Fallthrough | Taken | Call | Return | Restart

type succ = { dst : Basic_block.id; kind : kind }

type t = {
  succs : succ list array;
  preds : (Basic_block.id * kind) list array;
  entry : Basic_block.id;
}

let kind_to_string = function
  | Fallthrough -> "fallthrough"
  | Taken -> "taken"
  | Call -> "call"
  | Return -> "return"
  | Restart -> "restart"

let compute graph =
  let n = Icfg.num_blocks graph in
  let entry = Icfg.entry graph in
  let succs = Array.make n [] in
  (* Function owning each entry block, and per-function call-site
     continuations, for the synthetic return edges. *)
  let entry_func = Hashtbl.create 16 in
  Array.iter
    (fun (f : Wp_cfg.Func.t) -> Hashtbl.replace entry_func f.entry f.id)
    (Icfg.funcs graph);
  let conts : (int, Basic_block.id list) Hashtbl.t = Hashtbl.create 16 in
  let entry_function = (Icfg.block graph entry).func in
  (* A fallthrough or taken edge crossing functions breaks the call
     stack discipline the walker assumes; fall back to fully
     conservative return/restart edges in that case. *)
  let irregular = ref false in
  Array.iter
    (fun (b : Basic_block.t) ->
      List.iter
        (fun (e : Wp_cfg.Edge.t) ->
          match e.kind with
          | Fallthrough | Taken ->
              if (Icfg.block graph e.dst).func <> b.func then irregular := true
          | Call_to -> ())
        (Icfg.successors graph b.id))
    (Icfg.blocks graph);
  Array.iter
    (fun (b : Basic_block.t) ->
      let id = b.id in
      let ft = Icfg.fallthrough_succ graph id in
      let taken = Icfg.taken_succ graph id in
      let restart = { dst = entry; kind = Restart } in
      let out =
        match Basic_block.terminator b with
        | Branch -> (
            match (taken, ft) with
            | Some t, Some f ->
                [ { dst = t; kind = Taken }; { dst = f; kind = Fallthrough } ]
            | Some t, None -> [ { dst = t; kind = Taken }; restart ]
            | None, Some f -> [ { dst = f; kind = Fallthrough }; restart ]
            | None, None -> [ restart ])
        | Jump -> (
            match taken with
            | Some t -> [ { dst = t; kind = Taken } ]
            | None -> [ restart ])
        | Call -> (
            match (Icfg.call_target graph id, ft) with
            | Some callee, Some cont ->
                (match Hashtbl.find_opt entry_func callee with
                | Some f ->
                    Hashtbl.replace conts f
                      (cont
                      :: Option.value ~default:[] (Hashtbl.find_opt conts f))
                | None -> irregular := true);
                [ { dst = callee; kind = Call } ]
            | _ ->
                (* The walker cannot continue: the program restarts. *)
                [ restart ])
        | Return -> [] (* filled below, once all call sites are known *)
        | _ -> (
            match ft with
            | Some f -> [ { dst = f; kind = Fallthrough } ]
            | None -> [ restart ])
      in
      succs.(id) <- out)
    (Icfg.blocks graph);
  Array.iter
    (fun (b : Basic_block.t) ->
      if Basic_block.terminator b = Opcode.Return then begin
        let f = b.func in
        let continuations =
          if !irregular then
            Hashtbl.fold (fun _ cs acc -> cs @ acc) conts []
          else Option.value ~default:[] (Hashtbl.find_opt conts f)
        in
        let rets =
          List.map (fun c -> { dst = c; kind = Return }) continuations
        in
        let out =
          if f = entry_function || !irregular then
            { dst = entry; kind = Restart } :: rets
          else rets
        in
        succs.(b.id) <- out
      end)
    (Icfg.blocks graph);
  let preds = Array.make n [] in
  Array.iteri
    (fun src out ->
      List.iter (fun { dst; kind } -> preds.(dst) <- (src, kind) :: preds.(dst)) out)
    succs;
  { succs; preds; entry }

let successors t id = t.succs.(id)
let predecessors t id = t.preds.(id)

let reachable t =
  let n = Array.length t.succs in
  let seen = Array.make n false in
  let q = Queue.create () in
  seen.(t.entry) <- true;
  Queue.add t.entry q;
  while not (Queue.is_empty q) do
    let b = Queue.pop q in
    List.iter
      (fun { dst; _ } ->
        if not seen.(dst) then begin
          seen.(dst) <- true;
          Queue.add dst q
        end)
      t.succs.(b)
  done;
  seen
