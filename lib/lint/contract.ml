module Icfg = Wp_cfg.Icfg
module Basic_block = Wp_cfg.Basic_block
module Addr = Wp_isa.Addr
module Layout = Wp_layout.Binary_layout
module Geometry = Wp_cache.Geometry

type params = {
  geometry : Geometry.t;
  page_bytes : int;
  area_bytes : int;
  code_base : Wp_isa.Addr.t;
}

let check graph layout { geometry; page_bytes; area_bytes; code_base } =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  let base = Layout.base layout in
  let code_size = Layout.code_size_bytes layout in
  let line = geometry.line_bytes in
  if base <> code_base then
    add
      (Finding.v ~code:"CT006" ~addr:base
         (Format.asprintf "layout base %a but the machine maps code at %a"
            Addr.pp base Addr.pp code_base));
  if page_bytes <= 0 || not (Addr.is_power_of_two page_bytes) then
    add
      (Finding.v ~code:"CT007"
         (Printf.sprintf "page size %d B is not a positive power of two"
            page_bytes))
  else if base mod page_bytes <> 0 then
    add
      (Finding.v ~code:"CT007" ~addr:base
         (Format.asprintf "text base %a is not %d B page-aligned" Addr.pp base
            page_bytes));
  if area_bytes <= 0 || (page_bytes > 0 && area_bytes mod page_bytes <> 0) then
    add
      (Finding.v ~code:"CT001"
         (Printf.sprintf
            "way-placement area of %d B is not a positive multiple of the %d \
             B page"
            area_bytes page_bytes));
  let boundary = base + area_bytes in
  let boundary_in_text = boundary > base && boundary < base + code_size in
  (* The WP TLB bit flips at [boundary]; a cache line holding addresses
     on both sides sees an inconsistent bit. *)
  if boundary_in_text && boundary mod line <> 0 then
    add
      (Finding.v ~code:"CT002"
         ~addr:(Geometry.line_base geometry boundary)
         (Format.asprintf
            "line at %a spans the WP area boundary %a: its page WP bits \
             disagree"
            Addr.pp
            (Geometry.line_base geometry boundary)
            Addr.pp boundary));
  let span = Geometry.way_span_bytes geometry in
  Array.iter
    (fun (b : Basic_block.t) ->
      let start = Layout.block_start layout b.id in
      let size = Basic_block.size_bytes b in
      if boundary_in_text && start < boundary && start + size > boundary then
        add
          (Finding.v ~code:"CT003" ~block:b.id ~addr:start
             (Format.asprintf
                "block %d [%a, %a) straddles the WP area boundary %a" b.id
                Addr.pp start Addr.pp (start + size) Addr.pp boundary));
      if
        start >= base
        && start + size <= boundary
        && start / span <> (start + size - 1) / span
      then
        add
          (Finding.v ~code:"CT004" ~block:b.id ~addr:start
             (Printf.sprintf
                "block %d spans designated ways %d..%d inside the WP area"
                b.id
                (Geometry.way_of_addr geometry start)
                (Geometry.way_of_addr geometry (start + size - 1)))))
    (Icfg.blocks graph);
  (* Two area lines designated to the same (set, way) evict each other
     on every alternation — a conflict the placer is meant to avoid. *)
  let slots = Hashtbl.create 64 in
  let limit = min boundary (base + code_size) in
  let a = ref (Geometry.line_base geometry base) in
  while !a < limit do
    let key = (Geometry.set_index geometry !a, Geometry.way_of_addr geometry !a) in
    Hashtbl.replace slots key
      (!a :: Option.value ~default:[] (Hashtbl.find_opt slots key));
    a := !a + line
  done;
  Hashtbl.iter
    (fun (set, way) lines ->
      match List.rev lines with
      | first :: _ :: _ ->
          add
            (Finding.v ~code:"CT005" ~addr:first
               (Format.asprintf
                  "%d WP-area lines compete for set %d way %d (first at %a)"
                  (List.length lines) set way Addr.pp first))
      | _ -> ())
    slots;
  List.stable_sort Finding.compare !findings

(* The PR 8 multiprogramming kernel owns [kernel_base, kernel_base +
   kernel_area_bytes): user code inside it would be torn by the kernel's
   reserved placement-area mapping, and kernel code outside it escapes
   the area its pass placed it for. *)
let check_reserved graph layout ~kernel_base ~kernel_area_bytes ~role =
  if kernel_area_bytes <= 0 then
    invalid_arg
      (Printf.sprintf
         "Contract.check_reserved: reserved area of %d B is not positive"
         kernel_area_bytes);
  let reserved_end = kernel_base + kernel_area_bytes in
  let findings = ref [] in
  Array.iter
    (fun (b : Basic_block.t) ->
      let start = Layout.block_start layout b.id in
      let stop = start + Basic_block.size_bytes b in
      let overlaps = start < reserved_end && stop > kernel_base in
      match role with
      | `User ->
          if overlaps then
            findings :=
              Finding.v ~code:"CT008" ~block:b.id ~addr:start
                (Format.asprintf
                   "user block %d [%a, %a) overlaps the reserved kernel area \
                    [%a, %a)"
                   b.id Addr.pp start Addr.pp stop Addr.pp kernel_base Addr.pp
                   reserved_end)
              :: !findings
      | `Kernel ->
          if not (start >= kernel_base && stop <= reserved_end) then
            findings :=
              Finding.v ~code:"CT009" ~block:b.id ~addr:start
                (Format.asprintf
                   "kernel block %d [%a, %a) escapes the reserved kernel \
                    area [%a, %a)"
                   b.id Addr.pp start Addr.pp stop Addr.pp kernel_base Addr.pp
                   reserved_end)
              :: !findings)
    (Icfg.blocks graph);
  List.stable_sort Finding.compare !findings
