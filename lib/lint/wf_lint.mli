(** Well-formedness lint over an ICFG, a placed layout and the emitted
    binary image (codes [WF001]–[WF013], see {!Finding.registry}).

    The checks are split so tests can feed hand-crafted {e invalid}
    inputs that the constructive APIs ({!Wp_layout.Binary_layout.of_order},
    {!Wp_cfg.Icfg.Builder.finish}) would refuse to build: a placement
    {!entry} table stands in for a layout, and a patched [bytes] image
    stands in for {!Wp_layout.Binary_image.emit} output. *)

type entry = {
  block : Wp_cfg.Basic_block.id;
  start : Wp_isa.Addr.t;
  size_bytes : int;
}
(** One placed block, in placement order. *)

val table_of_layout :
  Wp_cfg.Icfg.t -> Wp_layout.Binary_layout.t -> entry array

val check_table :
  base:Wp_isa.Addr.t -> code_size:int -> entry array -> Finding.t list
(** Packing invariants: alignment ([WF002]), overlap ([WF003]), gaps
    ([WF004]), total size ([WF009]). *)

val check_fallthrough : Wp_cfg.Icfg.t -> entry array -> Finding.t list
(** Every fallthrough edge's destination starts exactly where its
    source ends ([WF005]). *)

val check_graph : Wp_cfg.Icfg.t -> Finding.t list
(** Graph-only checks: unreachable blocks ([WF006]), calls without a
    target or continuation ([WF007]), called functions that never
    return ([WF008]), cross-function fallthrough/taken edges
    ([WF012]). *)

val check_image :
  Wp_cfg.Icfg.t -> Wp_layout.Binary_layout.t -> bytes -> Finding.t list
(** Decode every instruction word of [image] and compare against the
    CFG: undecodable words ([WF011]), instruction mismatches ([WF013]),
    out-of-range transfer targets ([WF001]), targets disagreeing with
    the successor's placed start — i.e. a stale link field ([WF010]),
    image length vs. layout code size ([WF009]). *)

val check :
  ?image:bytes ->
  Wp_cfg.Icfg.t ->
  Wp_layout.Binary_layout.t ->
  Finding.t list
(** All of the above; [image] defaults to
    [Wp_layout.Binary_image.emit graph layout].  Findings are sorted
    most severe first. *)
