(* Command-line front end: run one benchmark under one configuration,
   sweep a benchmark x configuration grid on a domain pool, inspect a
   benchmark's layout, dump profiles and block orders, or list the
   suite.

     dune exec bin/wayplace_cli.exe -- run -b crc -s wayplace -a 16
     dune exec bin/wayplace_cli.exe -- sweep -b crc,susan_c -s wayplace,waymemo -j 4
     dune exec bin/wayplace_cli.exe -- sweep --sizes 8,16,32 --ways-list 8,16,32 --csv grid.csv
     dune exec bin/wayplace_cli.exe -- timeline -b crc -s wayplace --window 5000 --chrome crc.trace.json
     dune exec bin/wayplace_cli.exe -- layout -b ispell
     dune exec bin/wayplace_cli.exe -- profile -b crc -o crc.profile
     dune exec bin/wayplace_cli.exe -- layout -b crc --profile crc.profile
     dune exec bin/wayplace_cli.exe -- serve --socket /tmp/wp.sock --store /tmp/wp-store
     dune exec bin/wayplace_cli.exe -- loadtest --socket /tmp/wp.sock -n 2000 -c 8
     dune exec bin/wayplace_cli.exe -- list *)

open Cmdliner

let benchmark_arg =
  let doc = "Benchmark name (see the list subcommand)." in
  Arg.(value & opt string "crc" & info [ "b"; "benchmark" ] ~docv:"NAME" ~doc)

let scheme_arg =
  let doc = "Scheme: baseline, wayplace, waymemo, waypred or filter." in
  Arg.(value & opt string "wayplace" & info [ "s"; "scheme" ] ~docv:"SCHEME" ~doc)

let area_arg =
  let doc = "Way-placement area size in KB." in
  Arg.(value & opt int 16 & info [ "a"; "area" ] ~docv:"KB" ~doc)

let size_arg =
  let doc = "Instruction cache size in KB." in
  Arg.(value & opt int 32 & info [ "size" ] ~docv:"KB" ~doc)

let ways_arg =
  let doc = "Instruction cache associativity." in
  Arg.(value & opt int 32 & info [ "ways" ] ~docv:"N" ~doc)

let line_arg =
  let doc = "Cache line size in bytes." in
  Arg.(value & opt int 32 & info [ "line" ] ~docv:"B" ~doc)

let find_spec name =
  match Wayplace.Workloads.Mibench.find name with
  | spec -> Ok spec
  | exception Not_found ->
      Error
        (Printf.sprintf "unknown benchmark %S; try the list subcommand" name)

let parse_scheme scheme area_kb =
  match scheme with
  | "baseline" -> Ok Wayplace.Sim.Config.Baseline
  | "wayplace" | "way-placement" ->
      Ok (Wayplace.Sim.Config.Way_placement { area_bytes = area_kb * 1024 })
  | "waymemo" | "way-memoization" -> Ok Wayplace.Sim.Config.Way_memoization
  | "waypred" | "way-prediction" -> Ok Wayplace.Sim.Config.Way_prediction
  | "filter" | "filter-cache" ->
      Ok (Wayplace.Sim.Config.Filter_cache { l0_bytes = 512 })
  | other -> Error (Printf.sprintf "unknown scheme %S" other)

let config_of ~scheme ~size_kb ~ways ~line =
  match
    Wayplace.Cache.Geometry.make ~size_bytes:(size_kb * 1024) ~assoc:ways
      ~line_bytes:line
  with
  | geometry ->
      Ok (Wayplace.Sim.Config.with_icache (Wayplace.Sim.Config.xscale scheme) geometry)
  | exception Invalid_argument msg -> Error msg

let no_fastforward_arg =
  let doc =
    "Disable the steady-state loop fast-forward for this invocation \
     (results are bit-identical either way; the flag exists for timing \
     comparisons and debugging)."
  in
  Arg.(value & flag & info [ "no-fastforward" ] ~doc)

let ff_stats_arg =
  let doc =
    "Print steady-state fast-forward statistics for the scheme run \
     (periodic regions attempted, converged, iterations and instructions \
     skipped)."
  in
  Arg.(value & flag & info [ "ff-stats" ] ~doc)

let check_ff_arg =
  let doc =
    "Self-check: replay the scheme run with fast-forward on, with it off, \
     and through the per-instruction reference loop, and fail unless all \
     three produce bit-identical statistics."
  in
  Arg.(value & flag & info [ "check-fastforward" ] ~doc)

let run_cmd benchmark scheme area size ways line no_fastforward ff_stats
    check_ff =
  let ( let* ) = Result.bind in
  if no_fastforward then Wayplace.Sim.Simulator.set_fastforward_default false;
  let result =
    let* spec = find_spec benchmark in
    let* scheme = parse_scheme scheme area in
    let* config = config_of ~scheme ~size_kb:size ~ways ~line in
    let prep = Wayplace.Sim.Runner.prepare spec in
    let comparison = Wayplace.Sim.Runner.compare_to_baseline prep config in
    Format.printf "benchmark: %s@." spec.Wayplace.Workloads.Spec.name;
    Format.printf "%a@.@." Wayplace.Sim.Config.pp config;
    Format.printf "--- scheme run ---@.%a@.@." Wayplace.Sim.Stats.pp
      comparison.Wayplace.Sim.Runner.scheme;
    Format.printf "--- baseline run ---@.%a@.@." Wayplace.Sim.Stats.pp
      comparison.Wayplace.Sim.Runner.baseline;
    Format.printf
      "normalised i-cache energy: %.3f@.normalised ED product: %.3f@.normalised cycles: %.4f@."
      comparison.Wayplace.Sim.Runner.norm_icache_energy
      comparison.Wayplace.Sim.Runner.norm_ed
      comparison.Wayplace.Sim.Runner.norm_cycles;
    (if ff_stats then begin
       let report = Wayplace.Sim.Steady_state.create_report () in
       let cache = Wayplace.Sim.Snapshot_cache.create () in
       ignore
         (Wayplace.Sim.Runner.run_scheme ~fastforward:(not no_fastforward)
            ~ff_report:report ~snapshot_cache:cache prep config);
       Format.printf
         "--- fast-forward ---@.regions %d, recorded iterations %d, \
          converged %d, skipped %d iterations (%d instrs)@."
         report.Wayplace.Sim.Steady_state.regions
         report.Wayplace.Sim.Steady_state.recorded_iterations
         report.Wayplace.Sim.Steady_state.converged
         report.Wayplace.Sim.Steady_state.skipped_iterations
         report.Wayplace.Sim.Steady_state.skipped_instrs;
       Format.printf
         "bail-outs: gate-rejected %d, vetoed %d, cost-gated %d, \
          budget-exhausted %d@.snapshot cache: %d hit%s, %d insert%s@."
         report.Wayplace.Sim.Steady_state.gate_rejected
         report.Wayplace.Sim.Steady_state.vetoed
         report.Wayplace.Sim.Steady_state.cost_gated
         report.Wayplace.Sim.Steady_state.budget_exhausted
         report.Wayplace.Sim.Steady_state.cache_hits
         (if report.Wayplace.Sim.Steady_state.cache_hits = 1 then "" else "s")
         report.Wayplace.Sim.Steady_state.cache_inserts
         (if report.Wayplace.Sim.Steady_state.cache_inserts = 1 then ""
          else "s")
     end);
    if not check_ff then Ok ()
    else begin
      let module Stats = Wayplace.Sim.Stats in
      let ff_on =
        Wayplace.Sim.Runner.run_scheme ~fastforward:true prep config
      in
      let ff_off =
        Wayplace.Sim.Runner.run_scheme ~fastforward:false prep config
      in
      let reference =
        Wayplace.Sim.Simulator.run_compiled ~reference_only:true ~config
          ~trace:prep.Wayplace.Sim.Runner.trace_large
          (Wayplace.Sim.Runner.compiled_for prep config)
      in
      if not (Stats.equal ff_on ff_off) then
        Error
          (Format.asprintf "fast-forward diverges from plain fast path:@ %a"
             Stats.pp_diff (ff_on, ff_off))
      else if not (Stats.equal ff_on reference) then
        Error
          (Format.asprintf "fast path diverges from reference:@ %a"
             Stats.pp_diff (ff_on, reference))
      else begin
        Format.printf
          "fast-forward self-check passed: on/off/reference bit-identical@.";
        Ok ()
      end
    end
  in
  match result with
  | Ok () -> 0
  | Error msg ->
      Format.eprintf "error: %s@." msg;
      1

(* --- sweep: a benchmark x configuration grid on the domain pool --- *)

module Sweep = Wayplace.Sim.Sweep
module Sim_stats = Wayplace.Sim.Stats
module Report = Wayplace.Sim.Report

let quiet_arg =
  let doc =
    "Suppress progress lines on stderr.  Progress is also suppressed \
     automatically when stderr is not a terminal (e.g. under CI or when \
     piped), so logs stay clean without the flag."
  in
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc)

(* Progress chatter is interactive feedback: off when asked, off when
   nobody is watching (stderr redirected to a file or pipe). *)
let progress_enabled ~quiet = (not quiet) && Unix.isatty Unix.stderr

let comma_list = String.split_on_char ','

let parse_int_list ~what s =
  let parts = comma_list s in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> begin
        match int_of_string_opt (String.trim p) with
        | Some n when n > 0 -> go (n :: acc) rest
        | Some _ | None -> Error (Printf.sprintf "bad %s %S" what p)
      end
  in
  go [] parts

let sweep_benchmarks_arg =
  let doc = "Comma-separated benchmark names, or $(b,all) for the whole suite." in
  Arg.(value & opt string "all" & info [ "b"; "benchmarks" ] ~docv:"NAMES" ~doc)

let sweep_schemes_arg =
  let doc =
    "Comma-separated schemes (baseline, wayplace, waymemo, waypred, filter)."
  in
  Arg.(value & opt string "wayplace,waymemo" & info [ "s"; "schemes" ] ~docv:"SCHEMES" ~doc)

let sweep_areas_arg =
  let doc = "Comma-separated way-placement area sizes in KB (one job per area)." in
  Arg.(value & opt string "16" & info [ "a"; "areas" ] ~docv:"KBS" ~doc)

let sweep_sizes_arg =
  let doc = "Comma-separated I-cache sizes in KB." in
  Arg.(value & opt string "32" & info [ "sizes" ] ~docv:"KBS" ~doc)

let sweep_ways_arg =
  let doc = "Comma-separated I-cache associativities." in
  Arg.(value & opt string "32" & info [ "ways-list" ] ~docv:"NS" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the sweep (default: all cores; 1 = sequential)."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let csv_arg =
  let doc = "Also write the sweep results to this CSV file." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let json_arg =
  let doc = "Also write the sweep results to this JSON file." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let sweep_row engine benchmark (config : Wayplace.Sim.Config.t) =
  let baseline_config =
    Wayplace.Sim.Config.with_scheme config Wayplace.Sim.Config.Baseline
  in
  let b = Sweep.stats engine { Sweep.benchmark; config = baseline_config } in
  let s = Sweep.stats engine { Sweep.benchmark; config } in
  let energy =
    Wayplace.Energy.Ed.normalised
      ~scheme:(Sim_stats.icache_energy_pj s)
      ~baseline:(Sim_stats.icache_energy_pj b)
  in
  let ed =
    Wayplace.Energy.Ed.normalised_ed
      ~scheme_energy_pj:(Sim_stats.total_energy_pj s)
      ~scheme_cycles:s.Sim_stats.cycles
      ~baseline_energy_pj:(Sim_stats.total_energy_pj b)
      ~baseline_cycles:b.Sim_stats.cycles
  in
  let cycles =
    float_of_int s.Sim_stats.cycles /. float_of_int b.Sim_stats.cycles
  in
  (energy, ed, cycles)

let sweep_json rows =
  Report.Jobj
    [
      ( "rows",
        Report.Jlist
          (List.map
             (fun (benchmark, (config : Wayplace.Sim.Config.t), energy, ed, cycles)
                ->
               Report.Jobj
                 [
                   ("benchmark", Report.Jstring benchmark);
                   ( "icache",
                     Report.Jstring
                       (Wayplace.Cache.Geometry.to_string
                          config.Wayplace.Sim.Config.icache) );
                   ( "scheme",
                     Report.Jstring
                       (Wayplace.Sim.Config.scheme_name
                          config.Wayplace.Sim.Config.scheme) );
                   ("energy", Report.Jfloat energy);
                   ("ed", Report.Jfloat ed);
                   ("cycles", Report.Jfloat cycles);
                 ])
             rows) );
    ]

let sweep_cmd benchmarks schemes areas sizes ways line jobs csv_out json_out
    quiet no_fastforward =
  let ( let* ) = Result.bind in
  if no_fastforward then Wayplace.Sim.Simulator.set_fastforward_default false;
  let result =
    let* benchmarks =
      match benchmarks with
      | "all" -> Ok Wayplace.Workloads.Mibench.names
      | names ->
          List.fold_left
            (fun acc name ->
              let* acc = acc in
              let name = String.trim name in
              let* _spec = find_spec name in
              Ok (name :: acc))
            (Ok []) (comma_list names)
          |> Result.map List.rev
    in
    let* areas = parse_int_list ~what:"area" areas in
    let* sizes = parse_int_list ~what:"cache size" sizes in
    let* ways = parse_int_list ~what:"associativity" ways in
    let* schemes =
      (* way-placement expands to one scheme per requested area *)
      List.fold_left
        (fun acc s ->
          let* acc = acc in
          let s = String.trim s in
          let variants =
            match s with
            | "wayplace" | "way-placement" -> areas
            | _ -> [ 16 ]
          in
          List.fold_left
            (fun acc area ->
              let* acc = acc in
              let* p = parse_scheme s area in
              Ok (p :: acc))
            (Ok acc) variants)
        (Ok []) (comma_list schemes)
      |> Result.map List.rev
    in
    let* configs =
      List.fold_left
        (fun acc size_kb ->
          List.fold_left
            (fun acc ways ->
              List.fold_left
                (fun acc scheme ->
                  let* acc = acc in
                  let* c = config_of ~scheme ~size_kb ~ways ~line in
                  Ok (c :: acc))
                acc schemes)
            acc ways)
        (Ok []) sizes
      |> Result.map List.rev
    in
    let verbose = progress_enabled ~quiet in
    let progress =
      if verbose then
        Some
          (fun job ~seconds ~completed ~total ->
            Printf.eprintf "[sweep %3d/%d] %-48s %6.2fs\n%!" completed total
              (Sweep.job_label job) seconds)
      else None
    in
    let engine = Sweep.create ?workers:jobs ?progress () in
    let scheme_jobs =
      List.concat_map
        (fun config ->
          List.map (fun benchmark -> { Sweep.benchmark; config }) benchmarks)
        configs
    in
    if verbose then
      Printf.eprintf "[sweep] %d unique jobs on %d worker%s\n%!"
        (List.length (Sweep.dedup (Sweep.with_baselines scheme_jobs)))
        (Sweep.workers engine)
        (if Sweep.workers engine = 1 then "" else "s");
    let t0 = Unix.gettimeofday () in
    ignore (Sweep.run_batch engine (Sweep.with_baselines scheme_jobs));
    let elapsed = Unix.gettimeofday () -. t0 in
    Printf.printf "%-12s %-16s %-20s %9s %8s %9s\n" "benchmark" "icache"
      "scheme" "energy" "ED" "cycles";
    let rows =
      List.map
        (fun { Sweep.benchmark; config } ->
          let energy, ed, cycles = sweep_row engine benchmark config in
          (benchmark, config, energy, ed, cycles))
        scheme_jobs
    in
    List.iter
      (fun (benchmark, (config : Wayplace.Sim.Config.t), energy, ed, cycles) ->
        Printf.printf "%-12s %-16s %-20s %8.1f%% %8.3f %9.4f\n" benchmark
          (Wayplace.Cache.Geometry.to_string config.Wayplace.Sim.Config.icache)
          (Wayplace.Sim.Config.scheme_name config.Wayplace.Sim.Config.scheme)
          (100.0 *. energy) ed cycles)
      rows;
    Printf.printf "[sweep] %d rows in %.1fs\n%!" (List.length rows) elapsed;
    let* () =
      match csv_out with
      | None -> Ok ()
      | Some path ->
          let csv_rows =
            List.map
              (fun ( benchmark,
                     (config : Wayplace.Sim.Config.t),
                     energy,
                     ed,
                     cycles ) ->
                [
                  benchmark;
                  Wayplace.Cache.Geometry.to_string
                    config.Wayplace.Sim.Config.icache;
                  Wayplace.Sim.Config.scheme_name
                    config.Wayplace.Sim.Config.scheme;
                  Printf.sprintf "%.4f" energy;
                  Printf.sprintf "%.4f" ed;
                  Printf.sprintf "%.4f" cycles;
                ])
              rows
          in
          let* () =
            Report.write_csv ~path
              ~header:
                [ "benchmark"; "icache"; "scheme"; "energy"; "ed"; "cycles" ]
              ~rows:csv_rows
          in
          Printf.printf "wrote %s\n%!" path;
          Ok ()
    in
    match json_out with
    | None -> Ok ()
    | Some path ->
        let* () = Report.write_json ~path (sweep_json rows) in
        Printf.printf "wrote %s\n%!" path;
        Ok ()
  in
  match result with
  | Ok () -> 0
  | Error msg ->
      Format.eprintf "error: %s@." msg;
      1

(* --- fuzz: differential testing on the domain pool --- *)

let seed_arg =
  let doc = "First fuzz seed." in
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc)

let count_arg =
  let doc = "Number of consecutive seeds to run." in
  Arg.(value & opt int 100 & info [ "count" ] ~docv:"K" ~doc)

let fuzz_cmd seed count jobs quiet =
  if count <= 0 then begin
    Format.eprintf "error: --count must be positive@.";
    1
  end
  else begin
    let progress =
      if progress_enabled ~quiet then
        Some
          (fun seed ~seconds ~completed ~total ->
            Printf.eprintf "[fuzz %3d/%d] seed %-10d %6.2fs\n%!" completed
              total seed seconds)
      else None
    in
    let t0 = Unix.gettimeofday () in
    let reports =
      Wayplace.Check.Differ.fuzz ?workers:jobs ?progress ~seed ~count ()
    in
    let elapsed = Unix.gettimeofday () -. t0 in
    match reports with
    | [] ->
        Printf.printf "[fuzz] %d seeds (%d..%d) clean in %.1fs\n%!" count seed
          (seed + count - 1) elapsed;
        0
    | failures ->
        List.iter
          (fun r -> Format.printf "%a@." Wayplace.Check.Differ.pp_report r)
          failures;
        Printf.printf "[fuzz] %d/%d seeds FAILED in %.1fs\n%!"
          (List.length failures) count elapsed;
        1
  end

(* --- timeline: one probed run, windowed by the sampler --- *)

module Sampler = Wayplace.Obs.Sampler

let window_arg =
  let doc = "Sampler window length in cycles." in
  Arg.(value & opt int Sampler.default_window_cycles
       & info [ "window" ] ~docv:"CYCLES" ~doc)

let timeline_csv_arg =
  let doc = "Write the windowed timeline to this CSV file." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let chrome_arg =
  let doc =
    "Write a Chrome trace-event JSON file (loadable in chrome://tracing or \
     Perfetto) to this file."
  in
  Arg.(value & opt (some string) None & info [ "chrome" ] ~docv:"FILE" ~doc)

let resize_arg =
  let doc =
    "Runtime resize schedule for way-placement: comma-separated $(i,IDX:KB) \
     pairs (ascending trace block index, new area size in KB).  The caches \
     are flushed at each resize."
  in
  Arg.(value & opt string "" & info [ "resize" ] ~docv:"IDX:KB,..." ~doc)

let parse_resizes s =
  let bad p = Error (Printf.sprintf "bad resize %S (want IDX:KB)" p) in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
        match String.split_on_char ':' (String.trim p) with
        | [ idx; kb ] -> (
            match (int_of_string_opt idx, int_of_string_opt kb) with
            | Some i, Some k when i >= 0 && k > 0 ->
                go ((i, k * 1024) :: acc) rest
            | _ -> bad p)
        | _ -> bad p)
  in
  if String.trim s = "" then Ok [] else go [] (comma_list s)

let marker_to_string = function
  | Sampler.Resize { cycle; area_bytes } ->
      Printf.sprintf "resize@%d=%dB" cycle area_bytes
  | Sampler.Flush { cycle } -> Printf.sprintf "flush@%d" cycle
  | Sampler.Switch { cycle; next } -> Printf.sprintf "switch@%d=p%d" cycle next

let print_timeline windows =
  Printf.printf "%-6s %10s %10s %8s %6s %8s %8s %12s %s\n" "window" "start"
    "end" "retired" "ipc" "fetches" "misses" "total_pj" "markers";
  List.iter
    (fun (w : Sampler.window) ->
      Printf.printf "%-6d %10d %10d %8d %6.3f %8d %8d %12.1f %s\n"
        w.Sampler.index w.Sampler.start_cycle w.Sampler.end_cycle
        w.Sampler.retired (Sampler.ipc w) (Sampler.fetches w)
        (Sampler.get w Sampler.Counter.Icache_misses)
        (Array.fold_left ( +. ) 0.0 w.Sampler.energy_pj)
        (String.concat " " (List.map marker_to_string w.Sampler.markers)))
    windows

let timeline_cmd benchmark scheme area size ways line window csv_out chrome_out
    resizes =
  let ( let* ) = Result.bind in
  let result =
    let* spec = find_spec benchmark in
    let* scheme = parse_scheme scheme area in
    let* config = config_of ~scheme ~size_kb:size ~ways ~line in
    let* schedule = parse_resizes resizes in
    let* () = if window > 0 then Ok () else Error "--window must be positive" in
    let prep = Wayplace.Sim.Runner.prepare spec in
    let* stats, windows =
      match
        Wayplace.Sim.Runner.run_timeline ~schedule ~window_cycles:window prep
          config
      with
      | result -> Ok result
      | exception Invalid_argument msg -> Error msg
    in
    Format.printf "benchmark: %s@." spec.Wayplace.Workloads.Spec.name;
    Format.printf "%a@." Wayplace.Sim.Config.pp config;
    Printf.printf "%d windows of %d cycles: %d cycles, %d retired, %.1f pJ\n"
      (List.length windows) window stats.Sim_stats.cycles
      stats.Sim_stats.retired_instrs
      (Sim_stats.total_energy_pj stats);
    if csv_out = None && chrome_out = None then print_timeline windows;
    let* () =
      match csv_out with
      | None -> Ok ()
      | Some path ->
          let* () = Wayplace.Sim.Timeline.write_csv ~path windows in
          Printf.printf "wrote %s (%d windows)\n%!" path (List.length windows);
          Ok ()
    in
    match chrome_out with
    | None -> Ok ()
    | Some path ->
        let* () = Wayplace.Sim.Timeline.write_chrome ~path windows in
        Printf.printf "wrote %s (load in chrome://tracing or Perfetto)\n%!"
          path;
        Ok ()
  in
  match result with
  | Ok () -> 0
  | Error msg ->
      Format.eprintf "error: %s@." msg;
      1

(* --- lint: static verifier + abstract I-cache analysis --- *)

module Lint = Wayplace.Lint

let lint_static_arg =
  let doc =
    "Also run the abstract must/may I-cache analysis per geometry and \
     cross-check it against a baseline LRU simulation (static coverage vs. \
     measured hit rate, soundness violations)."
  in
  Arg.(value & flag & info [ "static" ] ~doc)

let strict_arg =
  let doc = "Exit 2 when warnings are present (errors always exit 3)." in
  Arg.(value & flag & info [ "strict" ] ~doc)

let lint_json_arg =
  let doc = "Write the findings and static summaries to this JSON file." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let lint_csv_arg =
  let doc = "Write the findings to this CSV file (RFC 4180)." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

(* One benchmark's lint results: geometry-independent well-formedness
   findings on both layouts, the placement contract per geometry on the
   placed layout, and (with --static) the abstract-analysis summary and
   soundness cross-check per geometry on the placed layout. *)
type lint_static_row = {
  ls_geometry : string;
  ls_summary : Lint.Abstract_icache.summary;
  ls_counts : Lint.Soundness.counts;
  ls_violations : string list;
  ls_loops : int;
  ls_loops_fit : int;
}

let lint_benchmark ~geometries ~area_kb ~static name =
  let spec = Wayplace.Workloads.Mibench.find name in
  let prep = Wayplace.Sim.Runner.prepare spec in
  let program = prep.Wayplace.Sim.Runner.program in
  let graph = program.Wayplace.Workloads.Codegen.graph in
  let original = prep.Wayplace.Sim.Runner.original_layout in
  let placed = prep.Wayplace.Sim.Runner.placed_layout in
  let findings =
    List.map (fun f -> ("original", "-", f)) (Lint.Wf_lint.check graph original)
    @ List.map (fun f -> ("placed", "-", f)) (Lint.Wf_lint.check graph placed)
    @ List.concat_map
        (fun geometry ->
          let params =
            {
              Lint.Contract.geometry;
              page_bytes = 1024;
              area_bytes = area_kb * 1024;
              code_base = Wayplace.Sim.Simulator.code_base;
            }
          in
          List.map
            (fun f ->
              ("placed", Wayplace.Cache.Geometry.to_string geometry, f))
            (Lint.Contract.check graph placed params))
        geometries
  in
  let statics =
    if not static then []
    else
      List.map
        (fun geometry ->
          let r =
            Lint.Soundness.check ~geometry ~program ~layout:placed
              ~trace:prep.Wayplace.Sim.Runner.trace_large ()
          in
          let loops = Lint.Abstract_icache.loop_pressures r.Lint.Soundness.analysis in
          {
            ls_geometry = Wayplace.Cache.Geometry.to_string geometry;
            ls_summary = Lint.Abstract_icache.summary r.Lint.Soundness.analysis;
            ls_counts = r.Lint.Soundness.counts;
            ls_violations = r.Lint.Soundness.violations;
            ls_loops = List.length loops;
            ls_loops_fit =
              List.length
                (List.filter
                   (fun l -> l.Lint.Abstract_icache.fits)
                   loops);
          })
        geometries
  in
  (findings, statics)

let lint_json results =
  Report.Jobj
    [
      ( "benchmarks",
        Report.Jlist
          (List.map
             (fun (name, findings, statics) ->
               Report.Jobj
                 [
                   ("benchmark", Report.Jstring name);
                   ( "findings",
                     Report.Jlist
                       (List.map
                          (fun (layout, geometry, (f : Lint.Finding.t)) ->
                            Report.Jobj
                              [
                                ("layout", Report.Jstring layout);
                                ("geometry", Report.Jstring geometry);
                                ( "severity",
                                  Report.Jstring
                                    (Lint.Finding.severity_name
                                       f.Lint.Finding.severity) );
                                ("code", Report.Jstring f.Lint.Finding.code);
                                ( "block",
                                  match f.Lint.Finding.block with
                                  | Some b -> Report.Jint b
                                  | None -> Report.Jnull );
                                ( "addr",
                                  match f.Lint.Finding.addr with
                                  | Some a -> Report.Jint a
                                  | None -> Report.Jnull );
                                ("message", Report.Jstring f.Lint.Finding.message);
                              ])
                          findings) );
                   ( "static",
                     Report.Jlist
                       (List.map
                          (fun r ->
                            let s = r.ls_summary in
                            let c = r.ls_counts in
                            Report.Jobj
                              [
                                ("geometry", Report.Jstring r.ls_geometry);
                                ("sites", Report.Jint s.Lint.Abstract_icache.sites);
                                ( "must_hit",
                                  Report.Jint s.Lint.Abstract_icache.must_hit );
                                ( "must_miss",
                                  Report.Jint s.Lint.Abstract_icache.must_miss );
                                ( "unknown",
                                  Report.Jint s.Lint.Abstract_icache.unknown );
                                ( "accesses",
                                  Report.Jint c.Lint.Soundness.accesses );
                                ("hits", Report.Jint c.Lint.Soundness.hits);
                                ("misses", Report.Jint c.Lint.Soundness.misses);
                                ( "coverage",
                                  Report.Jfloat (Lint.Soundness.coverage c) );
                                ("loops", Report.Jint r.ls_loops);
                                ("loops_fit", Report.Jint r.ls_loops_fit);
                                ( "violations",
                                  Report.Jlist
                                    (List.map
                                       (fun v -> Report.Jstring v)
                                       r.ls_violations) );
                              ])
                          statics) );
                 ])
             results) );
    ]

let lint_cmd benchmarks sizes ways line area static json_out csv_out strict =
  let ( let* ) = Result.bind in
  let result =
    let* benchmarks =
      match benchmarks with
      | "all" -> Ok Wayplace.Workloads.Mibench.names
      | names ->
          List.fold_left
            (fun acc name ->
              let* acc = acc in
              let name = String.trim name in
              let* _spec = find_spec name in
              Ok (name :: acc))
            (Ok []) (comma_list names)
          |> Result.map List.rev
    in
    let* sizes = parse_int_list ~what:"cache size" sizes in
    let* ways = parse_int_list ~what:"associativity" ways in
    let* geometries =
      List.fold_left
        (fun acc size_kb ->
          List.fold_left
            (fun acc assoc ->
              let* acc = acc in
              match
                Wayplace.Cache.Geometry.make ~size_bytes:(size_kb * 1024)
                  ~assoc ~line_bytes:line
              with
              | g -> Ok (g :: acc)
              | exception Invalid_argument msg -> Error msg)
            acc ways)
        (Ok []) sizes
      |> Result.map List.rev
    in
    let* results =
      List.fold_left
        (fun acc name ->
          let* acc = acc in
          match lint_benchmark ~geometries ~area_kb:area ~static name with
          | findings, statics -> Ok ((name, findings, statics) :: acc)
          | exception Invalid_argument msg ->
              Error (Printf.sprintf "%s: %s" name msg))
        (Ok []) benchmarks
      |> Result.map List.rev
    in
    let all_findings =
      List.concat_map (fun (_, fs, _) -> List.map (fun (_, _, f) -> f) fs)
        results
    in
    let soundness_violations =
      List.concat_map
        (fun (name, _, statics) ->
          List.concat_map
            (fun r ->
              List.map
                (fun v -> Printf.sprintf "%s @ %s: %s" name r.ls_geometry v)
                r.ls_violations)
            statics)
        results
    in
    List.iter
      (fun (name, findings, statics) ->
        let fs = List.map (fun (_, _, f) -> f) findings in
        Printf.printf "%s: %d error(s), %d warning(s), %d finding(s)\n" name
          (List.length (Lint.Finding.errors fs))
          (List.length (Lint.Finding.warnings fs))
          (List.length fs);
        List.iter
          (fun (layout, geometry, f) ->
            Format.printf "  [%s%s] %a@." layout
              (if geometry = "-" then "" else " @ " ^ geometry)
              Lint.Finding.pp f)
          findings;
        List.iter
          (fun r ->
            let s = r.ls_summary in
            let c = r.ls_counts in
            Printf.printf
              "  static @ %s: %d sites: %d must-hit, %d must-miss, %d \
               unknown; %d/%d loops fit\n"
              r.ls_geometry s.Lint.Abstract_icache.sites
              s.Lint.Abstract_icache.must_hit s.Lint.Abstract_icache.must_miss
              s.Lint.Abstract_icache.unknown r.ls_loops_fit r.ls_loops;
            Printf.printf
              "  dynamic @ %s: %d accesses, hit rate %.2f%%, static coverage \
               %.2f%%, soundness %s\n"
              r.ls_geometry c.Lint.Soundness.accesses
              (if c.Lint.Soundness.accesses = 0 then 0.0
               else
                 100.0
                 *. float_of_int c.Lint.Soundness.hits
                 /. float_of_int c.Lint.Soundness.accesses)
              (100.0 *. Lint.Soundness.coverage c)
              (if r.ls_violations = [] then "OK"
               else Printf.sprintf "%d VIOLATION(S)" (List.length r.ls_violations));
            List.iter (fun v -> Printf.printf "    ! %s\n" v) r.ls_violations)
          statics)
      results;
    (* Findings decide the exit code even when a report file cannot be
       written: a failed write must not mask severity 2/3 behind a
       generic 1 (CI keys on the code).  Report the write error, keep
       the severity, and only *raise* the code to 1 for clean runs. *)
    let attempt_write what path = function
      | Ok () ->
          Printf.printf "wrote %s\n%!" path;
          false
      | Error msg ->
          Format.eprintf "error: writing %s %s: %s@." what path msg;
          true
    in
    let csv_failed =
      match csv_out with
      | None -> false
      | Some path ->
          let rows =
            List.concat_map
              (fun (name, findings, _) ->
                List.map
                  (fun (layout, geometry, (f : Lint.Finding.t)) ->
                    [
                      name;
                      layout;
                      geometry;
                      Lint.Finding.severity_name f.Lint.Finding.severity;
                      f.Lint.Finding.code;
                      (match f.Lint.Finding.block with
                      | Some b -> string_of_int b
                      | None -> "");
                      (match f.Lint.Finding.addr with
                      | Some a -> Printf.sprintf "0x%x" a
                      | None -> "");
                      f.Lint.Finding.message;
                    ])
                  findings)
              results
          in
          attempt_write "CSV" path
            (Report.write_csv ~path
               ~header:
                 [
                   "benchmark"; "layout"; "geometry"; "severity"; "code";
                   "block"; "addr"; "message";
                 ]
               ~rows)
    in
    let json_failed =
      match json_out with
      | None -> false
      | Some path ->
          attempt_write "JSON" path (Report.write_json ~path (lint_json results))
    in
    let code =
      Lint.Finding.cli_exit_code ~strict
        ~write_failed:(csv_failed || json_failed)
        all_findings
    in
    let code = if soundness_violations <> [] then 3 else code in
    if code = 0 then
      Printf.printf "lint: clean (%d benchmark(s), %d geometr%s)\n"
        (List.length benchmarks)
        (List.length geometries)
        (if List.length geometries = 1 then "y" else "ies");
    Ok code
  in
  match result with
  | Ok code -> code
  | Error msg ->
      Format.eprintf "error: %s@." msg;
      1

(* --- advise: the static placement advisor --- *)

module Advise = Wayplace.Advise

let advise_page_arg =
  let doc = "Way-placement page size in bytes (power of two)." in
  Arg.(value & opt int 1024 & info [ "page" ] ~docv:"BYTES" ~doc)

let advise_min_run_arg =
  let doc =
    "Hysteresis: schedule runs shorter than this many trace blocks are \
     merged into their neighbour taking the larger area."
  in
  Arg.(value & opt int 32 & info [ "min-run" ] ~docv:"N" ~doc)

let advise_json_arg =
  let doc = "Write the full advisor report to this JSON file." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let advise_csv_arg =
  let doc = "Write the per-region table to this CSV file (RFC 4180)." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let advise_schedule_arg =
  let doc =
    "Write the oracle resize schedule to this JSON file, in the \
     [(trace_block_index, area_bytes)] form $(b,timeline --resize) and \
     [run_with_resizes] consume."
  in
  Arg.(value & opt (some string) None & info [ "schedule" ] ~docv:"FILE" ~doc)

let advise_apply_arg =
  let doc =
    "Re-lay the binary out with the conflict-graph improved order and \
     report the measured energy/ED delta against the placed layout."
  in
  Arg.(value & flag & info [ "apply" ] ~doc)

let advise_measured_arg =
  let doc =
    "Sweep power-of-two way allocations and report the measured minimal \
     ways (smallest allocation matching the full-area miss count) next \
     to the static bound."
  in
  Arg.(value & flag & info [ "measured" ] ~doc)

let advise_cmd benchmark size_kb ways line area_kb page min_run json_out
    csv_out schedule_out apply measured strict =
  let ( let* ) = Result.bind in
  let result =
    let* spec = find_spec benchmark in
    let* geometry =
      match
        Wayplace.Cache.Geometry.make ~size_bytes:(size_kb * 1024) ~assoc:ways
          ~line_bytes:line
      with
      | g -> Ok g
      | exception Invalid_argument msg -> Error msg
    in
    let prep = Wayplace.Sim.Runner.prepare spec in
    let program = prep.Wayplace.Sim.Runner.program in
    let graph = program.Wayplace.Workloads.Codegen.graph in
    let profile = prep.Wayplace.Sim.Runner.profile_small in
    let trace = prep.Wayplace.Sim.Runner.trace_large in
    let layout = prep.Wayplace.Sim.Runner.placed_layout in
    let energy =
      (Wayplace.Sim.Config.xscale Wayplace.Sim.Config.Baseline)
        .Wayplace.Sim.Config.energy
    in
    let* report =
      match
        Advise.Advisor.analyze ~min_run ~benchmark ~graph ~profile ~trace
          ~layout ~geometry ~page_bytes:page ~area_bytes:(area_kb * 1024)
          ~energy ()
      with
      | r -> Ok r
      | exception Invalid_argument msg -> Error msg
    in
    Format.printf "%a@." Advise.Advisor.pp report;
    let wp_config area_bytes =
      let c =
        Wayplace.Sim.Config.with_icache
          (Wayplace.Sim.Config.xscale
             (Wayplace.Sim.Config.Way_placement { area_bytes }))
          geometry
      in
      { c with Wayplace.Sim.Config.page_bytes = page }
    in
    if measured then begin
      let full_area =
        Advise.Oracle.area_for ~geometry ~page_bytes:page ~ways
      in
      let run_area area_bytes =
        Wayplace.Sim.Simulator.run ~config:(wp_config area_bytes) ~program
          ~layout ~trace
      in
      let full = run_area full_area in
      let module Stats = Wayplace.Sim.Stats in
      Format.printf "--- measured minimal ways (full area: %d misses) ---@."
        full.Stats.icache_misses;
      let rec candidates k = if k >= ways then [ ways ] else k :: candidates (2 * k) in
      let rows =
        List.map
          (fun k ->
            let area = Advise.Oracle.area_for ~geometry ~page_bytes:page ~ways:k in
            let s = run_area area in
            (k, area, s))
          (candidates 1)
      in
      List.iter
        (fun (k, area, (s : Wayplace.Sim.Stats.t)) ->
          Format.printf
            "  ways %2d (area %5d B): %d misses, I-cache %.1f pJ@." k area
            s.Wayplace.Sim.Stats.icache_misses
            (Wayplace.Sim.Stats.icache_energy_pj s))
        rows;
      let measured_min =
        match
          List.find_opt
            (fun (_, _, (s : Wayplace.Sim.Stats.t)) ->
              s.Wayplace.Sim.Stats.icache_misses
              <= full.Wayplace.Sim.Stats.icache_misses)
            rows
        with
        | Some (k, _, _) -> k
        | None -> ways
      in
      Format.printf "measured minimal ways %d, static bound %d (%s)@."
        measured_min report.Advise.Advisor.static_min_ways
        (if report.Advise.Advisor.static_min_ways >= measured_min then
           "static bound covers miss-parity"
         else
           "miss-parity needs more ways: cross-region transition misses, \
            which the steady-state bound does not claim to cover")
    end;
    if apply then begin
      match report.Advise.Advisor.improvement with
      | None ->
          Format.printf
            "apply: the placed order is already conflict-minimal under the \
             greedy search; nothing to re-lay out@."
      | Some imp ->
          let improved =
            Wayplace.Layout.Binary_layout.of_order graph
              ~base:Wayplace.Sim.Simulator.code_base
              imp.Advise.Advisor.order
          in
          let config = wp_config (area_kb * 1024) in
          let before =
            Wayplace.Sim.Simulator.run ~config ~program ~layout ~trace
          in
          let after =
            Wayplace.Sim.Simulator.run ~config ~program ~layout:improved ~trace
          in
          let module Stats = Wayplace.Sim.Stats in
          let e_before = Stats.icache_energy_pj before in
          let e_after = Stats.icache_energy_pj after in
          let ed =
            Wayplace.Energy.Ed.normalised_ed
              ~scheme_energy_pj:(Stats.total_energy_pj after)
              ~scheme_cycles:after.Stats.cycles
              ~baseline_energy_pj:(Stats.total_energy_pj before)
              ~baseline_cycles:before.Stats.cycles
          in
          Format.printf
            "--- apply (conflict-graph order) ---@.misses %d -> %d, I-cache \
             %.1f -> %.1f pJ (measured delta %.1f, predicted upper bound \
             %.1f), ED ratio %.4f@."
            before.Stats.icache_misses after.Stats.icache_misses e_before
            e_after (e_before -. e_after)
            imp.Advise.Advisor.predicted_delta_pj ed
    end;
    let attempt_write what path = function
      | Ok () ->
          Printf.printf "wrote %s\n%!" path;
          false
      | Error msg ->
          Format.eprintf "error: writing %s %s: %s@." what path msg;
          true
    in
    let write_failed = ref false in
    let record failed = if failed then write_failed := true in
    (match json_out with
    | None -> ()
    | Some path ->
        record
          (attempt_write "JSON" path
             (Report.write_json ~path (Advise.Advisor.to_json report))));
    (match csv_out with
    | None -> ()
    | Some path ->
        record
          (attempt_write "CSV" path
             (Report.write_csv ~path ~header:Advise.Advisor.csv_header
                ~rows:(Advise.Advisor.csv_rows report))));
    (match schedule_out with
    | None -> ()
    | Some path ->
        record
          (attempt_write "schedule JSON" path
             (Report.write_json ~path
                (Advise.Advisor.schedule_to_json
                   report.Advise.Advisor.schedule))));
    let code = Advise.Advisor.exit_code ~strict report in
    Ok (if !write_failed then max code 1 else code)
  in
  match result with
  | Ok code -> code
  | Error msg ->
      Format.eprintf "error: %s@." msg;
      1

(* --- mp: multiprogrammed runs --- *)

module Mp = Wayplace.Mp

let mp_mix_arg =
  let doc =
    "Process mix: comma-separated benchmark names, or $(b,random:SEED) for \
     a generated mix (deterministic in the seed)."
  in
  Arg.(value & opt string "crc,sha,bitcount" & info [ "mix" ] ~docv:"MIX" ~doc)

let mp_coverage_arg =
  let doc =
    "Placement coverage: $(b,all), $(b,half) (every second process), \
     $(b,none), or $(b,mix) (keep the mix's own flags)."
  in
  Arg.(value & opt string "all" & info [ "coverage" ] ~docv:"COV" ~doc)

let mp_quantum_arg =
  let doc = "Scheduler quantum in cycles; 0 = infinite (run to completion)." in
  Arg.(value & opt int 50_000 & info [ "q"; "quantum" ] ~docv:"CYCLES" ~doc)

let mp_no_kernel_arg =
  let doc = "Skip the interrupt-handler kernel at context switches." in
  Arg.(value & flag & info [ "no-kernel" ] ~doc)

let mp_btb_arg =
  let doc = "BTB policy at switches: $(b,shared) or $(b,flush)." in
  Arg.(value & opt string "shared" & info [ "btb" ] ~docv:"POLICY" ~doc)

let mp_drowsy_arg =
  let doc =
    "Drowsy policy at switches: $(b,shared) (timestamps rebased onto the \
     incoming process's clock) or $(b,flush) (every line dropped drowsy)."
  in
  Arg.(value & opt string "shared" & info [ "drowsy-policy" ] ~docv:"POLICY" ~doc)

let mp_sched_arg =
  let doc = "Scheduler: $(b,rr) (round-robin) or $(b,priority)." in
  Arg.(value & opt string "rr" & info [ "sched" ] ~docv:"POLICY" ~doc)

let mp_verify_arg =
  let doc =
    "Self-check (exit 1 on any mismatch): run each process alone under an \
     infinite quantum without the kernel and assert bit-identity against \
     the single-process simulator, then replay the whole mix through the \
     per-instruction reference loop and assert the fast path matches it, \
     per process and in aggregate."
  in
  Arg.(value & flag & info [ "verify" ] ~doc)

let mp_json_arg =
  let doc = "Write the mp result (aggregate + per-process attribution) to this JSON file." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let mp_csv_arg =
  let doc = "Write the per-process attribution table to this CSV file." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let parse_mix ~mix ~coverage =
  let ( let* ) = Result.bind in
  let* base =
    let prefix = "random:" in
    let plen = String.length prefix in
    if String.length mix > plen && String.sub mix 0 plen = prefix then
      match
        int_of_string_opt (String.sub mix plen (String.length mix - plen))
      with
      | Some seed -> Ok (Wayplace.Check.Progen.mix_of_seed seed)
      | None ->
          Error
            (Printf.sprintf "bad mix %S: random: needs an integer seed" mix)
    else
      Mp.Mix.of_names
        (comma_list mix |> List.map String.trim
        |> List.filter (fun s -> s <> ""))
  in
  match coverage with
  | "mix" -> Ok base
  | c ->
      let* c = Mp.Mix.coverage_of_string c in
      Ok (Mp.Mix.apply_coverage c base)

let parse_mp_options ~quantum ~no_kernel ~btb ~drowsy ~sched =
  let ( let* ) = Result.bind in
  let* btb_policy =
    match btb with
    | "shared" -> Ok Mp.Machine.Btb_shared
    | "flush" -> Ok Mp.Machine.Btb_flush
    | s -> Error (Printf.sprintf "unknown BTB policy %S (shared|flush)" s)
  in
  let* drowsy_policy =
    match drowsy with
    | "shared" -> Ok Mp.Machine.Drowsy_shared
    | "flush" -> Ok Mp.Machine.Drowsy_flush
    | s -> Error (Printf.sprintf "unknown drowsy policy %S (shared|flush)" s)
  in
  let* sched =
    match sched with
    | "rr" | "round-robin" -> Ok Mp.Machine.Round_robin
    | "priority" -> Ok Mp.Machine.Priority
    | s -> Error (Printf.sprintf "unknown scheduler %S (rr|priority)" s)
  in
  Ok
    {
      Mp.Machine.quantum_cycles = quantum;
      kernel = not no_kernel;
      btb_policy;
      drowsy_policy;
      sched;
    }

let mp_conservation (r : Mp.Machine.result) =
  let agg = Sim_stats.snapshot_ints r.Mp.Machine.aggregate in
  let sum = Array.make (Array.length agg) 0 in
  let add s =
    Array.iteri (fun i v -> sum.(i) <- sum.(i) + v) (Sim_stats.snapshot_ints s)
  in
  List.iter
    (fun (p : Mp.Machine.process_result) -> add p.Mp.Machine.pr_stats)
    r.Mp.Machine.processes;
  add r.Mp.Machine.system;
  if sum = agg then Ok ()
  else Error "per-process + system counters do not sum to the aggregate"

let mp_verify_run ~config ~options mix (fast : Mp.Machine.result) =
  let ( let* ) = Result.bind in
  let* () =
    List.fold_left
      (fun acc (p : Mp.Mix.proc) ->
        let* () = acc in
        let prep = Wayplace.Sim.Runner.prepare p.Mp.Mix.spec in
        let cell = Wayplace.Sim.Runner.run_scheme prep config in
        let solo =
          Mp.Machine.run ~config ~options:Mp.Machine.oracle_options
            [ { p with Mp.Mix.placed = true } ]
        in
        if Sim_stats.equal solo.Mp.Machine.aggregate cell then Ok ()
        else
          Error
            (Format.asprintf
               "identity oracle failed for %s: mp diverges from \
                Simulator.run:@ %a"
               p.Mp.Mix.pname Sim_stats.pp_diff
               (solo.Mp.Machine.aggregate, cell)))
      (Ok ()) mix
  in
  let refr = Mp.Machine.run ~reference_only:true ~config ~options mix in
  if not (Sim_stats.equal fast.Mp.Machine.aggregate refr.Mp.Machine.aggregate)
  then
    Error
      (Format.asprintf "mp fast path diverges from the reference loop:@ %a"
         Sim_stats.pp_diff
         (fast.Mp.Machine.aggregate, refr.Mp.Machine.aggregate))
  else if
    not
      (List.for_all2
         (fun (a : Mp.Machine.process_result) (b : Mp.Machine.process_result) ->
           Sim_stats.equal a.Mp.Machine.pr_stats b.Mp.Machine.pr_stats)
         fast.Mp.Machine.processes refr.Mp.Machine.processes)
  then Error "mp fast path diverges from the reference loop on a per-process account"
  else Ok ()

let mp_process_row (p : Mp.Machine.process_result) =
  ( p.Mp.Machine.pr_name,
    p.Mp.Machine.pr_placed,
    p.Mp.Machine.pr_dispatches,
    p.Mp.Machine.pr_stats )

let mp_result_json mix options (r : Mp.Machine.result) =
  let stats_fields (s : Sim_stats.t) =
    [
      ("cycles", Report.Jint s.Sim_stats.cycles);
      ("retired", Report.Jint s.Sim_stats.retired_instrs);
      ("fetches", Report.Jint s.Sim_stats.fetches);
      ("icache_energy_pj", Report.Jfloat (Sim_stats.icache_energy_pj s));
      ("total_energy_pj", Report.Jfloat (Sim_stats.total_energy_pj s));
    ]
  in
  Report.Jobj
    [
      ("processes", Report.Jint (List.length mix));
      ("quantum_cycles", Report.Jint options.Mp.Machine.quantum_cycles);
      ("switches", Report.Jint r.Mp.Machine.switches);
      ("kernel_runs", Report.Jint r.Mp.Machine.kernel_runs);
      ("timer_fires", Report.Jint r.Mp.Machine.timer_fires);
      ( "switches_per_million",
        Report.Jfloat (Mp.Machine.switches_per_million r) );
      ("aggregate", Report.Jobj (stats_fields r.Mp.Machine.aggregate));
      ("system", Report.Jobj (stats_fields r.Mp.Machine.system));
      ( "per_process",
        Report.Jlist
          (List.map
             (fun p ->
               let name, placed, dispatches, s = mp_process_row p in
               Report.Jobj
                 ([
                    ("name", Report.Jstring name);
                    ("placed", Report.Jbool placed);
                    ("dispatches", Report.Jint dispatches);
                  ]
                 @ stats_fields s))
             r.Mp.Machine.processes) );
    ]

let mp_result_csv (r : Mp.Machine.result) =
  let b = Buffer.create 512 in
  Buffer.add_string b
    "process,placed,dispatches,retired,cycles,icache_energy_pj,total_energy_pj\n";
  let row name placed dispatches (s : Sim_stats.t) =
    Buffer.add_string b
      (Printf.sprintf "%s,%b,%d,%d,%d,%.6f,%.6f\n" name placed dispatches
         s.Sim_stats.retired_instrs s.Sim_stats.cycles
         (Sim_stats.icache_energy_pj s)
         (Sim_stats.total_energy_pj s))
  in
  List.iter
    (fun p ->
      let name, placed, dispatches, s = mp_process_row p in
      row name placed dispatches s)
    r.Mp.Machine.processes;
  row "system" false r.Mp.Machine.kernel_runs r.Mp.Machine.system;
  row "aggregate" false 0 r.Mp.Machine.aggregate;
  Buffer.contents b

let mp_cmd mix_s coverage quantum no_kernel btb drowsy sched scheme area size
    ways line window json_out csv_out chrome_out verify =
  let ( let* ) = Result.bind in
  let result =
    let* scheme = parse_scheme scheme area in
    let* config = config_of ~scheme ~size_kb:size ~ways ~line in
    let* mix = parse_mix ~mix:mix_s ~coverage in
    let* options = parse_mp_options ~quantum ~no_kernel ~btb ~drowsy ~sched in
    let* r =
      match Mp.Machine.run ~config ~options mix with
      | r -> Ok r
      | exception Invalid_argument msg -> Error msg
    in
    let* () = mp_conservation r in
    let* () = if verify then mp_verify_run ~config ~options mix r else Ok () in
    Format.printf "mix: %a@." Mp.Mix.pp mix;
    Format.printf "%a@." Wayplace.Sim.Config.pp config;
    Printf.printf
      "quantum %s, kernel %s | %d switches (%.1f / M instrs), %d kernel runs, \
       %d timer fires\n"
      (if options.Mp.Machine.quantum_cycles <= 0 then "infinite"
       else string_of_int options.Mp.Machine.quantum_cycles ^ " cycles")
      (if options.Mp.Machine.kernel then "on" else "off")
      r.Mp.Machine.switches
      (Mp.Machine.switches_per_million r)
      r.Mp.Machine.kernel_runs r.Mp.Machine.timer_fires;
    Printf.printf "%-12s %-6s %10s %10s %12s %14s %14s\n" "process" "placed"
      "dispatch" "retired" "cycles" "icache_pj" "total_pj";
    let row name placed dispatches (s : Sim_stats.t) =
      Printf.printf "%-12s %-6b %10d %10d %12d %14.1f %14.1f\n" name placed
        dispatches s.Sim_stats.retired_instrs s.Sim_stats.cycles
        (Sim_stats.icache_energy_pj s)
        (Sim_stats.total_energy_pj s)
    in
    List.iter
      (fun p ->
        let name, placed, dispatches, s = mp_process_row p in
        row name placed dispatches s)
      r.Mp.Machine.processes;
    row "system" false r.Mp.Machine.kernel_runs r.Mp.Machine.system;
    row "aggregate" false 0 r.Mp.Machine.aggregate;
    if verify then
      Printf.printf
        "verify: identity oracle, fast=reference and conservation all OK\n";
    let* () =
      match json_out with
      | None -> Ok ()
      | Some path ->
          let* () = Report.write_json ~path (mp_result_json mix options r) in
          Printf.printf "wrote %s\n%!" path;
          Ok ()
    in
    let* () =
      match csv_out with
      | None -> Ok ()
      | Some path -> (
          match
            Out_channel.with_open_text path (fun oc ->
                Out_channel.output_string oc (mp_result_csv r))
          with
          | () ->
              Printf.printf "wrote %s\n%!" path;
              Ok ()
          | exception Sys_error msg -> Error msg)
    in
    match chrome_out with
    | None -> Ok ()
    | Some path ->
        let* () = if window > 0 then Ok () else Error "--window must be positive" in
        let sampler = Sampler.create ~window_cycles:window () in
        ignore (Mp.Machine.run ~probe:(Sampler.probe sampler) ~config ~options mix);
        let windows = Sampler.finish sampler in
        let* () = Wayplace.Sim.Timeline.write_chrome ~path windows in
        Printf.printf
          "wrote %s (%d windows, context switches as instant events)\n%!" path
          (List.length windows);
        Ok ()
  in
  match result with
  | Ok () -> 0
  | Error msg ->
      Format.eprintf "error: %s@." msg;
      1

(* --- serve / loadtest: the placement service --- *)

module Serve = Wayplace.Serve

let socket_arg =
  let doc = "Listen on (serve) or connect to (loadtest) this Unix socket." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let port_arg =
  let doc = "Listen on (serve) or connect to (loadtest) this TCP port." in
  Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc)

let host_arg =
  let doc = "TCP host to bind / connect (with --port)." in
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)

let endpoint_of ~socket ~port ~host =
  match (socket, port) with
  | Some _, Some _ -> Error "use --socket or --port, not both"
  | Some path, None -> Ok (Serve.Protocol.Unix_socket path)
  | None, Some port -> Ok (Serve.Protocol.Tcp (host, port))
  | None, None -> Ok (Serve.Protocol.Unix_socket "wayplace.sock")

let store_arg =
  let doc =
    "Persist computed results in this directory (content-addressed; entries \
     survive restarts and are recomputed if corrupt)."
  in
  Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)

let serve_cmd socket port host store jobs quiet =
  let ( let* ) = Result.bind in
  let result =
    let* endpoint = endpoint_of ~socket ~port ~host in
    let* daemon = Serve.Daemon.create ?workers:jobs ?store_dir:store ~endpoint () in
    let stop _ = Serve.Daemon.stop daemon in
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    if not quiet then
      Printf.eprintf "[serve] listening on %s%s\n%!"
        (Serve.Protocol.endpoint_to_string (Serve.Daemon.endpoint daemon))
        (match store with
        | Some d -> Printf.sprintf ", store %s" d
        | None -> ", memory-only store");
    Serve.Daemon.run daemon;
    let s = Serve.Daemon.server_stats daemon in
    if not quiet then
      Printf.eprintf
        "[serve] stopped after %.1fs: %d requests, %d computations, %d memory \
         hits, %d disk hits, %d coalesced, %d errors\n%!"
        s.Serve.Protocol.uptime_s s.Serve.Protocol.requests
        s.Serve.Protocol.computations s.Serve.Protocol.hits_memory
        s.Serve.Protocol.hits_disk s.Serve.Protocol.coalesced
        s.Serve.Protocol.errors;
    Ok ()
  in
  match result with
  | Ok () -> 0
  | Error msg ->
      Format.eprintf "error: %s@." msg;
      1

let loadtest_total_arg =
  let doc = "Total number of simulation requests to fire." in
  Arg.(value & opt int 1000 & info [ "n"; "requests" ] ~docv:"N" ~doc)

let loadtest_conns_arg =
  let doc = "Number of client connections." in
  Arg.(value & opt int 8 & info [ "c"; "connections" ] ~docv:"N" ~doc)

let loadtest_depth_arg =
  let doc = "Pipelined requests kept in flight per connection." in
  Arg.(value & opt int 16 & info [ "depth" ] ~docv:"N" ~doc)

let loadtest_verify_arg =
  let doc =
    "Set the verify flag on every request (computations are replayed \
     through the reference loop server-side)."
  in
  Arg.(value & flag & info [ "verify" ] ~doc)

let expect_hit_arg =
  let doc =
    "Fail (exit 1) unless the measured store hit ratio is at least this \
     value — the CI warm-pass assertion."
  in
  Arg.(value & opt (some float) None & info [ "expect-hit-ratio" ] ~docv:"R" ~doc)

let shutdown_after_arg =
  let doc = "Send a graceful shutdown request to the daemon afterwards." in
  Arg.(value & flag & info [ "shutdown-after" ] ~doc)

let loadtest_mix ~benchmarks ~schemes ~area ~verify ~grid ~mp_mixes =
  let ( let* ) = Result.bind in
  let* benchmarks =
    match benchmarks with
    | "all" -> Ok Wayplace.Workloads.Mibench.names
    | names ->
        List.fold_left
          (fun acc name ->
            let* acc = acc in
            let name = String.trim name in
            let* _spec = find_spec name in
            Ok (name :: acc))
          (Ok []) (comma_list names)
        |> Result.map List.rev
  in
  let* schemes =
    List.fold_left
      (fun acc s ->
        let* acc = acc in
        let* p = parse_scheme (String.trim s) area in
        Ok (p :: acc))
      (Ok []) (comma_list schemes)
    |> Result.map List.rev
  in
  let sims =
    (* --grid ships the whole cross product as one batched request:
       the daemon expands it server-side, streams per-cell replies and
       content-addresses each cell exactly like a standalone sim *)
    if grid then
      [
        Serve.Protocol.Grid
          (Serve.Protocol.grid_request ~benchmarks ~schemes ());
      ]
    else
      List.concat_map
        (fun benchmark ->
          List.map
            (fun scheme ->
              Serve.Protocol.Sim
                (Serve.Protocol.sim_request ~verify ~benchmark ~scheme ()))
            schemes)
        benchmarks
  in
  (* each --mp MIX becomes one multiprogrammed request per scheme — a
     heavier request class in the same round-robin *)
  let mps =
    List.concat_map
      (fun mix ->
        List.map
          (fun scheme ->
            Serve.Protocol.Mp (Serve.Protocol.mp_request ~verify ~mix ~scheme ()))
          schemes)
      mp_mixes
  in
  Ok (Array.of_list (sims @ mps))

let loadtest_benchmarks_arg =
  let doc =
    "Comma-separated benchmark names for the request mix, or $(b,all)."
  in
  Arg.(value & opt string "crc,sha" & info [ "b"; "benchmarks" ] ~docv:"NAMES" ~doc)

let loadtest_schemes_arg =
  let doc = "Comma-separated schemes for the request mix." in
  Arg.(
    value
    & opt string "baseline,wayplace,waymemo"
    & info [ "s"; "schemes" ] ~docv:"SCHEMES" ~doc)

let loadtest_mp_arg =
  let doc =
    "Add a multiprogrammed request for this process mix (comma-separated \
     benchmark names or $(b,random:SEED)) to the round-robin, one per \
     scheme.  Repeatable."
  in
  Arg.(value & opt_all string [] & info [ "mp" ] ~docv:"MIX" ~doc)

let loadtest_grid_arg =
  let doc =
    "Ship the benchmark x scheme cross product as grid-batch requests (one \
     request per grid; the daemon streams one reply per cell plus a \
     summary) instead of individual sim requests.  Each cell is tallied as \
     its own response, so the hit ratio still measures per-cell reuse."
  in
  Arg.(value & flag & info [ "grid" ] ~doc)

let loadtest_cmd socket port host total connections depth benchmarks schemes
    area verify grid mp_mixes json_out expect_hit shutdown_after quiet =
  let ( let* ) = Result.bind in
  let result =
    let* endpoint = endpoint_of ~socket ~port ~host in
    let* mix =
      loadtest_mix ~benchmarks ~schemes ~area ~verify ~grid ~mp_mixes
    in
    let spec = { Serve.Loadtest.endpoint; connections; depth; total; mix } in
    let* r = Serve.Loadtest.run spec in
    if not quiet then Format.printf "%a@." Serve.Loadtest.pp r;
    let* () =
      match json_out with
      | None -> Ok ()
      | Some path ->
          let* () = Report.write_json ~path (Serve.Loadtest.to_json r) in
          if not quiet then Printf.printf "wrote %s\n%!" path;
          Ok ()
    in
    let* () =
      if not shutdown_after then Ok ()
      else
        let* client = Serve.Client.connect endpoint in
        let r = Serve.Client.shutdown client in
        Serve.Client.close client;
        r
    in
    match expect_hit with
    | Some want when r.Serve.Loadtest.hit_ratio < want ->
        Error
          (Printf.sprintf "hit ratio %.3f below expected %.3f"
             r.Serve.Loadtest.hit_ratio want)
    | _ -> Ok ()
  in
  match result with
  | Ok () -> 0
  | Error msg ->
      Format.eprintf "error: %s@." msg;
      1

let profile_arg =
  let doc = "Load the training profile from this file instead of rerunning." in
  Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"FILE" ~doc)

let output_arg =
  let doc = "Write the artifact to this file." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let input_arg =
  let doc = "Training input: small or large." in
  Arg.(value & opt string "small" & info [ "input" ] ~docv:"INPUT" ~doc)

let parse_input = function
  | "small" -> Ok Wayplace.Workloads.Tracer.Small
  | "large" -> Ok Wayplace.Workloads.Tracer.Large
  | s -> Error (Printf.sprintf "unknown input %S (small|large)" s)

let profile_cmd benchmark input output =
  let ( let* ) = Result.bind in
  let result =
    let* spec = find_spec benchmark in
    let* input = parse_input input in
    let program = Wayplace.Workloads.Codegen.generate spec in
    let profile = Wayplace.Workloads.Tracer.profile program input in
    let serialised = Wayplace.Serial.profile_to_string profile in
    (match output with
    | Some path ->
        Wayplace.Serial.save ~path serialised;
        Format.printf "wrote %s (%d blocks profiled)@." path
          (Wayplace.Cfg.Profile.num_blocks profile)
    | None -> print_string serialised);
    Ok ()
  in
  match result with
  | Ok () -> 0
  | Error msg ->
      Format.eprintf "error: %s@." msg;
      1

let load_profile path ~num_blocks =
  let ( let* ) = Result.bind in
  let* contents = Wayplace.Serial.load ~path in
  let* profile = Wayplace.Serial.profile_of_string contents in
  if Wayplace.Cfg.Profile.num_blocks profile <> num_blocks then
    Error
      (Printf.sprintf "profile has %d blocks, the program has %d"
         (Wayplace.Cfg.Profile.num_blocks profile)
         num_blocks)
  else Ok profile

let layout_report program profile order_output =
      let compiled = Wayplace.compile program.Wayplace.Workloads.Codegen.graph profile in
      let graph = program.Wayplace.Workloads.Codegen.graph in
      (match order_output with
      | Some path ->
          Wayplace.Serial.save ~path
            (Wayplace.Serial.order_to_string
               (Wayplace.Layout.Binary_layout.order compiled.Wayplace.layout));
          Format.printf "wrote block order to %s@." path
      | None -> ());
      Format.printf "%a@." Wayplace.Cfg.Icfg.pp_summary graph;
      Format.printf "%a@." Wayplace.Layout.Binary_layout.pp
        compiled.Wayplace.layout;
      Format.printf "chains: %d (longest %d blocks)@."
        (List.length compiled.Wayplace.chains)
        (List.fold_left
           (fun acc c -> max acc (Wayplace.Layout.Chain.length c))
           0 compiled.Wayplace.chains);
      let page_bytes = 1024 in
      List.iter
        (fun kb ->
          let area = Wayplace.Area.of_kilobytes ~page_bytes kb in
          Format.printf "  %a covers %.1f%% of profiled instructions@."
            Wayplace.Area.pp area
            (100.0
            *. Wayplace.Area.coverage area ~graph ~profile
                 ~layout:compiled.Wayplace.layout))
        [ 1; 2; 4; 8; 16 ];
      (* Loop structure of the three hottest functions. *)
      let hottest = Wayplace.Cfg.Profile.hottest_first profile in
      let seen = Hashtbl.create 4 in
      Array.iter
        (fun id ->
          if Hashtbl.length seen < 3 then begin
            let f = (Wayplace.Cfg.Icfg.block graph id).Wayplace.Cfg.Basic_block.func in
            if not (Hashtbl.mem seen f) then begin
              Hashtbl.add seen f ();
              Format.printf "  hot %s@."
                (Wayplace.Cfg.Analysis.function_summary graph
                   (Wayplace.Cfg.Icfg.func graph f))
            end
          end)
        hottest;
      0

let layout_cmd benchmark profile_path order_output =
  match find_spec benchmark with
  | Error msg ->
      Format.eprintf "error: %s@." msg;
      1
  | Ok spec -> begin
      let program = Wayplace.Workloads.Codegen.generate spec in
      let profile_result =
        match profile_path with
        | None ->
            Ok
              (Wayplace.Workloads.Tracer.profile program
                 Wayplace.Workloads.Tracer.Small)
        | Some path ->
            load_profile path
              ~num_blocks:
                (Wayplace.Cfg.Icfg.num_blocks
                   program.Wayplace.Workloads.Codegen.graph)
      in
      match profile_result with
      | Error msg ->
          Format.eprintf "error: %s@." msg;
          1
      | Ok profile -> layout_report program profile order_output
    end

let limit_arg =
  let doc = "Maximum number of blocks to print." in
  Arg.(value & opt int 24 & info [ "limit" ] ~docv:"N" ~doc)

let disasm_cmd benchmark limit =
  match find_spec benchmark with
  | Error msg ->
      Format.eprintf "error: %s@." msg;
      1
  | Ok spec ->
      let program = Wayplace.Workloads.Codegen.generate spec in
      let graph = program.Wayplace.Workloads.Codegen.graph in
      let profile =
        Wayplace.Workloads.Tracer.profile program Wayplace.Workloads.Tracer.Small
      in
      let compiled = Wayplace.compile graph profile in
      Wayplace.Layout.Listing.pp ~limit_blocks:limit Format.std_formatter
        ~graph ~layout:compiled.Wayplace.layout;
      0

let list_cmd () =
  List.iter print_endline Wayplace.Workloads.Mibench.names;
  0

let run_term =
  Term.(
    const run_cmd $ benchmark_arg $ scheme_arg $ area_arg $ size_arg $ ways_arg
    $ line_arg $ no_fastforward_arg $ ff_stats_arg $ check_ff_arg)

let cmds =
  [
    Cmd.v (Cmd.info "run" ~doc:"Simulate one benchmark under one configuration")
      run_term;
    Cmd.v
      (Cmd.info "sweep"
         ~doc:
           "Sweep a benchmark x configuration grid on a parallel domain pool")
      Term.(
        const sweep_cmd $ sweep_benchmarks_arg $ sweep_schemes_arg
        $ sweep_areas_arg $ sweep_sizes_arg $ sweep_ways_arg $ line_arg
        $ jobs_arg $ csv_arg $ json_arg $ quiet_arg $ no_fastforward_arg);
    Cmd.v
      (Cmd.info "timeline"
         ~doc:
           "Simulate one benchmark with the windowed sampler attached and \
            export the timeline (stdout table, CSV, or Chrome trace-event \
            JSON)")
      Term.(
        const timeline_cmd $ benchmark_arg $ scheme_arg $ area_arg $ size_arg
        $ ways_arg $ line_arg $ window_arg $ timeline_csv_arg $ chrome_arg
        $ resize_arg);
    Cmd.v
      (Cmd.info "fuzz"
         ~doc:
           "Differentially test the simulator on generated programs (oracle \
            cache, conservation laws, metamorphic scheme equalities)")
      Term.(const fuzz_cmd $ seed_arg $ count_arg $ jobs_arg $ quiet_arg);
    Cmd.v
      (Cmd.info "mp"
         ~doc:
           "Time-slice a mix of processes on one simulated core (shared \
            caches, I-TLB shootdowns, interrupt kernel) and report \
            per-process + aggregate energy attribution; $(b,--verify) \
            asserts the identity oracle and fast=reference bit-identity.")
      Term.(
        const mp_cmd $ mp_mix_arg $ mp_coverage_arg $ mp_quantum_arg
        $ mp_no_kernel_arg $ mp_btb_arg $ mp_drowsy_arg $ mp_sched_arg
        $ scheme_arg $ area_arg $ size_arg $ ways_arg $ line_arg $ window_arg
        $ mp_json_arg $ mp_csv_arg $ chrome_arg $ mp_verify_arg);
    Cmd.v
      (Cmd.info "lint"
         ~doc:
           "Statically verify laid-out binaries: well-formedness (WF codes), \
            the way-placement contract per geometry (CT codes), and with \
            $(b,--static) the abstract must/may I-cache classification \
            cross-checked against the simulator.  Exits 3 on errors, 2 on \
            warnings under --strict, 0 otherwise.")
      Term.(
        const lint_cmd $ sweep_benchmarks_arg $ sweep_sizes_arg
        $ sweep_ways_arg $ line_arg $ area_arg $ lint_static_arg
        $ lint_json_arg $ lint_csv_arg $ strict_arg);
    Cmd.v
      (Cmd.info "advise"
         ~doc:
           "Run the static placement advisor: interprocedural loop-nest \
            regions with way-pressure bounds, the offline minimal-ways \
            resize schedule (consumable by $(b,run_with_resizes)), a \
            line-conflict verification of the placed layout (PL codes), \
            and the static energy envelope.  $(b,--apply) measures the \
            conflict-graph improved order; $(b,--measured) cross-checks \
            the static minimal-ways bound against simulation.  Exits like \
            $(b,lint): 3 on errors, 2 on warnings under $(b,--strict).")
      Term.(
        const advise_cmd $ benchmark_arg $ size_arg $ ways_arg $ line_arg
        $ area_arg $ advise_page_arg $ advise_min_run_arg $ advise_json_arg
        $ advise_csv_arg $ advise_schedule_arg $ advise_apply_arg
        $ advise_measured_arg $ strict_arg);
    Cmd.v
      (Cmd.info "layout" ~doc:"Show the way-placement layout of a benchmark")
      Term.(const layout_cmd $ benchmark_arg $ profile_arg $ output_arg);
    Cmd.v
      (Cmd.info "profile"
         ~doc:"Profile a benchmark and dump the result (stdout or -o FILE)")
      Term.(const profile_cmd $ benchmark_arg $ input_arg $ output_arg);
    Cmd.v
      (Cmd.info "disasm" ~doc:"Print the laid-out binary as a listing")
      Term.(const disasm_cmd $ benchmark_arg $ limit_arg);
    Cmd.v
      (Cmd.info "serve"
         ~doc:
           "Run the placement service: a daemon answering simulation \
            requests over a Unix or TCP socket from a content-addressed \
            result store, computing misses on a domain pool.  SIGINT/SIGTERM \
            or a client shutdown request stop it gracefully (accepted work \
            is drained).")
      Term.(
        const serve_cmd $ socket_arg $ port_arg $ host_arg $ store_arg
        $ jobs_arg $ quiet_arg);
    Cmd.v
      (Cmd.info "loadtest"
         ~doc:
           "Fire a concurrent mixed-request burst at a running placement \
            daemon and report latency percentiles, throughput and the store \
            hit ratio.")
      Term.(
        const loadtest_cmd $ socket_arg $ port_arg $ host_arg
        $ loadtest_total_arg $ loadtest_conns_arg $ loadtest_depth_arg
        $ loadtest_benchmarks_arg $ loadtest_schemes_arg $ area_arg
        $ loadtest_verify_arg $ loadtest_grid_arg $ loadtest_mp_arg $ json_arg
        $ expect_hit_arg $ shutdown_after_arg $ quiet_arg);
    Cmd.v (Cmd.info "list" ~doc:"List the benchmark suite")
      Term.(const list_cmd $ const ());
  ]

let () =
  let info =
    Cmd.info "wayplace_cli" ~version:Wayplace.version
      ~doc:"Compiler way-placement for instruction-cache energy (DATE 2008)"
  in
  exit (Cmd.eval' (Cmd.group info cmds))
