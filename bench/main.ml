(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section 6), plus the ablations listed in
   DESIGN.md Section 5 and a bechamel micro-benchmark of the core data
   structures.

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- fig4a fig6b  # selected experiments
     dune exec bench/main.exe -- list         # available ids

   Absolute numbers are not expected to match the paper (the substrate
   is a simulator, not the authors' testbed); the shapes — who wins, by
   roughly what factor, where the anomalies sit — are the reproduction
   target.  EXPERIMENTS.md records paper-vs-measured for every id.

   Every experiment declares its (benchmark x config) job grid up
   front; the driver fans the union of the requested grids out on a
   Sweep domain pool (-j N, default all cores; -j 1 is the sequential
   fallback), then the printing functions replay against the warm
   cache.  Results are bit-identical either way. *)

module Config = Wayplace.Sim.Config
module Stats = Wayplace.Sim.Stats
module Runner = Wayplace.Sim.Runner
module Simulator = Wayplace.Sim.Simulator
module Geometry = Wayplace.Cache.Geometry
module Mibench = Wayplace.Workloads.Mibench
module Tracer = Wayplace.Workloads.Tracer
module Ed = Wayplace.Energy.Ed
module Sweep = Wayplace.Sim.Sweep

let kb n = n * 1024
let wp n = Config.Way_placement { area_bytes = kb n }
let geometry ~size_kb ~ways = Geometry.make ~size_bytes:(kb size_kb) ~assoc:ways ~line_bytes:32

(* ------------------------------------------------------------------ *)
(* One sweep engine for the whole process: figures share baselines, so *)
(* every (benchmark, config) pair is prepared and simulated once, and  *)
(* the driver warms the cache in parallel before printing.             *)

let requested_workers = ref None

let progress job ~seconds ~completed ~total =
  Printf.eprintf "[sweep %3d/%d] %-48s %6.2fs\n%!" completed total
    (Sweep.job_label job) seconds

let sweep =
  lazy (Sweep.create ?workers:!requested_workers ~progress ())

let prep name = Sweep.prepared (Lazy.force sweep) name
let job benchmark config = { Sweep.benchmark; config }
let run name config = Sweep.stats (Lazy.force sweep) (job name config)

(* Job grids: [grid] is the raw benchmark x config product, [cmp] adds
   the baseline partner every normalised metric divides by. *)
let grid benchmarks configs =
  List.concat_map (fun c -> List.map (fun b -> job b c) benchmarks) configs

let cmp benchmarks configs = Sweep.with_baselines (grid benchmarks configs)
let no_jobs () = []

let norm_energy name config =
  let baseline = run name (Config.with_scheme config Config.Baseline) in
  let scheme = run name config in
  Ed.normalised
    ~scheme:(Stats.icache_energy_pj scheme)
    ~baseline:(Stats.icache_energy_pj baseline)

let norm_ed name config =
  let baseline = run name (Config.with_scheme config Config.Baseline) in
  let scheme = run name config in
  Ed.normalised_ed
    ~scheme_energy_pj:(Stats.total_energy_pj scheme)
    ~scheme_cycles:scheme.Stats.cycles
    ~baseline_energy_pj:(Stats.total_energy_pj baseline)
    ~baseline_cycles:baseline.Stats.cycles

let suite = Mibench.names
let mean = Runner.arithmetic_mean
let suite_mean f = mean (List.map f suite)
let pct x = 100.0 *. x

let header title =
  Printf.printf "\n==================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==================================================================\n%!"

(* ------------------------------------------------------------------ *)
(* tab1: echo of the simulated machine (paper Table 1).                *)

let tab1 () =
  header "Table 1 - baseline system configuration";
  Format.printf "%a@." Config.pp (Config.xscale Config.Baseline);
  Printf.printf
    "pipeline: in-order single issue, 1 ALU + 1 MAC + 1 load/store\n\
     btb: 128 entries, 4-cycle mispredict penalty\n\
     data buffers: modelled through the 50-cycle refill path\n%!"

(* ------------------------------------------------------------------ *)
(* fig1: the worked example (12 vs 3 tag comparisons).                 *)

let fig1 () =
  header "Figure 1 - way-placement example (2 sets x 4 ways)";
  let module Cam = Wayplace.Cache.Cam_cache in
  let g = Geometry.make ~size_bytes:64 ~assoc:4 ~line_bytes:8 in
  let addrs = [ ("add", 0x14); ("br", 0x28); ("mul", 0x88) ] in
  let normal = Cam.create g ~replacement:Wayplace.Cache.Replacement.Round_robin in
  let placed = Cam.create g ~replacement:Wayplace.Cache.Replacement.Round_robin in
  List.iter
    (fun (_, a) ->
      ignore (Cam.fill normal a Cam.Victim_by_policy);
      ignore (Cam.fill placed a (Cam.Forced_way (Geometry.way_of_addr g a))))
    addrs;
  let count cache probe =
    List.fold_left
      (fun acc (_, a) -> acc + (probe cache a).Cam.tag_comparisons)
      0 addrs
  in
  let normal_cmp = count normal Cam.lookup_full in
  let placed_cmp =
    count placed (fun c a -> Cam.lookup_way c a ~way:(Geometry.way_of_addr g a))
  in
  List.iter
    (fun (name, a) ->
      Printf.printf "  %-3s @0x%02x  set %d  tag %2d  designated way %d\n" name a
        (Geometry.set_index g a) (Geometry.tag_of g a) (Geometry.way_of_addr g a))
    addrs;
  Printf.printf "  normal access:        %2d tag comparisons   (paper: 12)\n" normal_cmp;
  Printf.printf "  way-placement access: %2d tag comparisons   (paper: 3)\n%!" placed_cmp

(* ------------------------------------------------------------------ *)
(* fig4: per-benchmark energy and ED at 32KB/32-way, 16KB area.        *)

let fig4_config scheme = Config.xscale scheme

let fig4_jobs () =
  cmp suite [ fig4_config Config.Way_memoization; fig4_config (wp 16) ]

let fig4a () =
  header
    "Figure 4(a) - normalised i-cache energy per benchmark\n\
     (32KB 32-way i-cache, 16KB way-placement area; % of baseline)";
  Printf.printf "%-12s %14s %14s\n" "benchmark" "way-memo" "way-placement";
  List.iter
    (fun name ->
      Printf.printf "%-12s %13.1f%% %13.1f%%\n" name
        (pct (norm_energy name (fig4_config Config.Way_memoization)))
        (pct (norm_energy name (fig4_config (wp 16)))))
    suite;
  Printf.printf "%-12s %13.1f%% %13.1f%%\n" "average"
    (pct (suite_mean (fun n -> norm_energy n (fig4_config Config.Way_memoization))))
    (pct (suite_mean (fun n -> norm_energy n (fig4_config (wp 16)))));
  Printf.printf
    "paper [recon]: way-memoization ~68%%, way-placement ~52%% on average\n%!"

let fig4b () =
  header
    "Figure 4(b) - ED product per benchmark\n\
     (32KB 32-way i-cache, 16KB way-placement area; baseline = 1.0)";
  Printf.printf "%-12s %14s %14s\n" "benchmark" "way-memo" "way-placement";
  List.iter
    (fun name ->
      Printf.printf "%-12s %14.3f %14.3f\n" name
        (norm_ed name (fig4_config Config.Way_memoization))
        (norm_ed name (fig4_config (wp 16))))
    suite;
  Printf.printf "%-12s %14.3f %14.3f\n" "average"
    (suite_mean (fun n -> norm_ed n (fig4_config Config.Way_memoization)))
    (suite_mean (fun n -> norm_ed n (fig4_config (wp 16))));
  Printf.printf "paper: way-placement average ED ~0.93, at least two benchmarks below 0.90\n%!"

(* ------------------------------------------------------------------ *)
(* fig5: way-placement area sweep at 32KB/32-way.                      *)

let fig5_areas = [ 16; 8; 4; 2; 1 ]

let fig5_jobs () =
  cmp suite
    (fig4_config Config.Way_memoization
    :: List.map (fun a -> fig4_config (wp a)) fig5_areas)

let fig5a () =
  header
    "Figure 5(a) - normalised i-cache energy vs way-placement area\n\
     (32KB 32-way i-cache, suite average; % of baseline)";
  Printf.printf "%-18s %10s\n" "scheme" "energy";
  Printf.printf "%-18s %9.1f%%\n" "way-memoization"
    (pct (suite_mean (fun n -> norm_energy n (fig4_config Config.Way_memoization))));
  List.iter
    (fun a ->
      Printf.printf "%-18s %9.1f%%\n"
        (Printf.sprintf "area %2dKB" a)
        (pct (suite_mean (fun n -> norm_energy n (fig4_config (wp a))))))
    fig5_areas;
  Printf.printf
    "paper [recon]: 52%% at 16KB degrading to ~56%% at 1KB; way-memoization 68%%\n%!"

let fig5b () =
  header "Figure 5(b) - ED product vs way-placement area (suite average)";
  Printf.printf "%-18s %10s\n" "scheme" "ED";
  Printf.printf "%-18s %10.3f\n" "way-memoization"
    (suite_mean (fun n -> norm_ed n (fig4_config Config.Way_memoization)));
  List.iter
    (fun a ->
      Printf.printf "%-18s %10.3f\n"
        (Printf.sprintf "area %2dKB" a)
        (suite_mean (fun n -> norm_ed n (fig4_config (wp a)))))
    fig5_areas;
  Printf.printf "paper: ED stays below way-memoization at every size (0.93..0.94)\n%!"

(* ------------------------------------------------------------------ *)
(* fig6: cache size x associativity grid with two area sizes.          *)

let fig6_sizes = [ 8; 16; 32 ]
let fig6_ways = [ 8; 16; 32 ]

let fig6_jobs () =
  cmp suite
    (List.concat_map
       (fun size_kb ->
         List.concat_map
           (fun ways ->
             let g = geometry ~size_kb ~ways in
             List.map
               (fun s -> Config.with_icache (Config.xscale s) g)
               [ Config.Way_memoization; wp 16; wp 8 ])
           fig6_ways)
       fig6_sizes)

let fig6_row metric size_kb ways =
  let g = geometry ~size_kb ~ways in
  let mk scheme = Config.with_icache (Config.xscale scheme) g in
  ( suite_mean (fun n -> metric n (mk Config.Way_memoization)),
    suite_mean (fun n -> metric n (mk (wp 16))),
    suite_mean (fun n -> metric n (mk (wp 8))) )

let fig6 metric ~title ~fmt ~paper =
  header title;
  Printf.printf "%-12s %12s %12s %12s\n" "config" "way-memo" "wp(16KB)" "wp(8KB)";
  List.iter
    (fun size_kb ->
      List.iter
        (fun ways ->
          let wm, a16, a8 = fig6_row metric size_kb ways in
          Printf.printf "%-12s %12s %12s %12s\n"
            (Printf.sprintf "%2dKB/%2dway" size_kb ways)
            (fmt wm) (fmt a16) (fmt a8))
        fig6_ways)
    fig6_sizes;
  Printf.printf "%s\n%!" paper

let fig6a () =
  fig6 norm_energy
    ~title:
      "Figure 6(a) - normalised i-cache energy across cache geometries\n\
       (suite average; % of baseline)"
    ~fmt:(fun v -> Printf.sprintf "%.1f%%" (pct v))
    ~paper:
      "paper [recon]: >=59% saving for every area at the best 32-way config;\n\
       way-memoization INCREASES energy at the low-associativity corner\n\
       while way-placement still saves (paper quotes ~82% there)"

let fig6b () =
  fig6 norm_ed
    ~title:"Figure 6(b) - ED product across cache geometries (suite average)"
    ~fmt:(fun v -> Printf.sprintf "%.3f" v)
    ~paper:
      "paper [recon]: best ED ~0.80 at the 16KB 32-way config (16KB/8KB areas);\n\
       worst way-placement ED ~0.98, still below baseline and way-memoization"

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md Section 5).                                    *)

let ablation_suite = [ "crc"; "susan_c"; "rijndael_e"; "tiff2bw"; "ispell" ]

let ablate_sameline_jobs () =
  cmp ablation_suite
    [
      Config.xscale (wp 16);
      Config.with_same_line_elision (Config.xscale (wp 16)) false;
    ]

let ablate_sameline () =
  header
    "Ablation - same-line tag-check elision off\n\
     (both schemes and the baseline lose sequential elision)";
  Printf.printf "%-12s %16s %16s\n" "benchmark" "wp (elision on)" "wp (elision off)";
  List.iter
    (fun name ->
      let on = norm_energy name (Config.xscale (wp 16)) in
      let off =
        norm_energy name (Config.with_same_line_elision (Config.xscale (wp 16)) false)
      in
      Printf.printf "%-12s %15.1f%% %15.1f%%\n" name (pct on) (pct off))
    ablation_suite;
  Printf.printf
    "Without elision the baseline pays full tag energy on every fetch, so\n\
     way-placement's relative saving grows - the elision is conservative.\n%!"

let ablate_replacement_jobs () =
  cmp ablation_suite
    [
      Config.xscale (wp 16);
      Config.with_replacement (Config.xscale (wp 16)) Wayplace.Cache.Replacement.Lru;
    ]

let ablate_replacement () =
  header "Ablation - round-robin (XScale) vs LRU replacement";
  Printf.printf "%-12s %16s %16s\n" "benchmark" "wp rr" "wp lru";
  List.iter
    (fun name ->
      let rr = norm_energy name (Config.xscale (wp 16)) in
      let lru =
        norm_energy name
          (Config.with_replacement (Config.xscale (wp 16)) Wayplace.Cache.Replacement.Lru)
      in
      Printf.printf "%-12s %15.1f%% %15.1f%%\n" name (pct rr) (pct lru))
    ablation_suite;
  Printf.printf "%!"

let ablate_invalidation_jobs () =
  let base =
    Config.with_icache (Config.xscale Config.Way_memoization)
      (geometry ~size_kb:8 ~ways:32)
  in
  cmp ablation_suite
    [ base; Config.with_memo_invalidation base Wayplace.Cache.Way_memo.Precise ]

let ablate_invalidation () =
  header
    "Ablation - way-memoization link invalidation: flash-clear vs precise\n\
     (precise needs per-line reverse pointers; an idealised upper bound)";
  let g = geometry ~size_kb:8 ~ways:32 in
  Printf.printf "%-12s %16s %16s  (8KB 32-way)\n" "benchmark" "flash-clear" "precise";
  List.iter
    (fun name ->
      let base = Config.with_icache (Config.xscale Config.Way_memoization) g in
      let flash = norm_energy name base in
      let precise =
        norm_energy name
          (Config.with_memo_invalidation base Wayplace.Cache.Way_memo.Precise)
      in
      Printf.printf "%-12s %15.1f%% %15.1f%%\n" name (pct flash) (pct precise))
    ablation_suite;
  Printf.printf "%!"

let ablate_hint_jobs () = grid ablation_suite [ Config.xscale (wp 16) ]

let ablate_hint () =
  header
    "Ablation - the way-hint bit (paper Section 4.1)\n\
     accuracy, re-access penalties, and energy left on the table";
  Printf.printf "%-12s %10s %12s %14s\n" "benchmark" "accuracy" "re-accesses"
    "missed savings";
  List.iter
    (fun name ->
      let stats = run name (Config.xscale (wp 16)) in
      Printf.printf "%-12s %9.2f%% %12d %14d\n" name
        (pct (Stats.hint_accuracy stats))
        stats.Stats.hint_reaccess stats.Stats.hint_missed_saving)
    ablation_suite;
  Printf.printf
    "The hint is right whenever execution stays inside or outside the area,\n\
     which the chain layout makes the common case (paper: \"very accurate\").\n%!"

(* The self-profiled run is a bespoke Simulator.run (oracle layout),
   outside the sweep grid; only the standard runs prefetch. *)
let ablate_profile_jobs () = cmp ablation_suite [ Config.xscale (wp 16) ]

let ablate_profile () =
  header
    "Ablation - profile fidelity: train on small input vs self-profiled\n\
     (way-placement layout built from the evaluation input itself)";
  Printf.printf "%-12s %16s %16s\n" "benchmark" "small profile" "self profile";
  List.iter
    (fun name ->
      let p = prep name in
      let program = p.Runner.program in
      let standard = norm_energy name (Config.xscale (wp 16)) in
      let oracle_profile = Tracer.profile program Tracer.Large in
      let compiled = Wayplace.compile program.Wayplace.Workloads.Codegen.graph oracle_profile in
      let config = Config.xscale (wp 16) in
      let scheme =
        Simulator.run ~config ~program ~layout:compiled.Wayplace.layout
          ~trace:p.Runner.trace_large
      in
      let baseline = run name (Config.xscale Config.Baseline) in
      let self =
        Ed.normalised
          ~scheme:(Stats.icache_energy_pj scheme)
          ~baseline:(Stats.icache_energy_pj baseline)
      in
      Printf.printf "%-12s %15.1f%% %15.1f%%\n" name (pct standard) (pct self))
    ablation_suite;
  Printf.printf "%!"

(* ------------------------------------------------------------------ *)
(* Extensions beyond the paper's evaluation (Section 7 related work). *)

let ext_schemes =
  [
    ("way-placement 16KB", wp 16);
    ("way-memoization", Config.Way_memoization);
    ("way-prediction", Config.Way_prediction);
    ("filter-cache 512B", Config.Filter_cache { l0_bytes = 512 });
  ]

let ext_comparators_jobs () =
  cmp suite (List.map (fun (_, s) -> Config.xscale s) ext_schemes)

let ext_comparators () =
  header
    "Extension - all comparator schemes at 32KB/32-way
     (way prediction: Inoue et al. [6]; filter cache: Kin et al. [11])";
  let schemes = ext_schemes in
  Printf.printf "%-20s %10s %10s %12s
" "scheme" "energy" "ED" "cycles";
  List.iter
    (fun (label, scheme) ->
      let config = Config.xscale scheme in
      let e = suite_mean (fun n -> norm_energy n config) in
      let ed = suite_mean (fun n -> norm_ed n config) in
      let cyc =
        suite_mean (fun n ->
            let b = run n (Config.with_scheme config Config.Baseline) in
            let s = run n config in
            float_of_int s.Stats.cycles /. float_of_int b.Stats.cycles)
      in
      Printf.printf "%-20s %9.1f%% %10.3f %12.4f
" label (pct e) ed cyc)
    schemes;
  Printf.printf
    "Way prediction pays recovery cycles on mispredicts; the filter cache
     pays a cycle on every L0 miss.  Way-placement is the only scheme with
     no ISA change, no extra storage and no performance risk.
%!"

let ext_drowsy_rows =
  let with_leak config = Config.with_leakage config true in
  let drowsy config = Config.with_drowsy (with_leak config) (Some 2000) in
  [
    ("baseline + leakage", with_leak (Config.xscale Config.Baseline));
    ("wp 16KB + leakage", with_leak (Config.xscale (wp 16)));
    ("baseline + drowsy", drowsy (Config.xscale Config.Baseline));
    ("wp 16KB + drowsy", drowsy (Config.xscale (wp 16)));
  ]

let ext_drowsy_jobs () = grid ablation_suite (List.map snd ext_drowsy_rows)

let ext_drowsy () =
  header
    "Extension - combining way-placement with drowsy lines
     (leakage accounting on; Section 7: the schemes are orthogonal)";
  let rows = ext_drowsy_rows in
  let base_cfg = List.assoc "baseline + leakage" rows in
  let subset = ablation_suite in
  Printf.printf "%-20s %14s %10s
" "configuration" "icache energy" "wakes";
  List.iter
    (fun (label, config) ->
      let e =
        mean
          (List.map
             (fun n ->
               let b = run n base_cfg in
               let s = run n config in
               Ed.normalised
                 ~scheme:(Stats.icache_energy_pj s)
                 ~baseline:(Stats.icache_energy_pj b))
             subset)
      in
      let wakes =
        mean (List.map (fun n -> float_of_int (run n config).Stats.drowsy_wakes) subset)
      in
      Printf.printf "%-20s %13.1f%% %10.0f
" label (pct e) wakes)
    rows;
  Printf.printf
    "Drowsy mode removes most leakage (cold lines sleep); way-placement
     removes dynamic tag energy; together they stack, as Section 7 argues.
%!"

(* ------------------------------------------------------------------ *)
(* mp: multiprogramming quantum sweep (ROADMAP item 4).                *)
(* Energy and ED as a function of quantum length x mix composition x   *)
(* placement coverage; the headline question is how many context       *)
(* switches per million instructions the way-placement win survives.   *)
(* A multiprogrammed run is not a (benchmark x config) Sweep job, so   *)
(* the cells are memoised locally and computed at print time.          *)

module Mp = Wayplace.Mp

let mp_mixes =
  [
    ("crc+sha+bitcount", [ "crc"; "sha"; "bitcount" ]);
    ("susan+cjpeg+patricia", [ "susan_c"; "cjpeg"; "patricia" ]);
    ("tiff+ispell+rijndael", [ "tiff2bw"; "ispell"; "rijndael_e" ]);
  ]

let mp_quanta = [ 2_000; 20_000; 200_000; 0 ]

let mp_cache : (string * string * string * int, Mp.Machine.result) Hashtbl.t =
  Hashtbl.create 64

let mp_run ~label ~names ~coverage ~scheme ~quantum =
  let key =
    (label, Mp.Mix.coverage_name coverage, Config.scheme_name scheme, quantum)
  in
  match Hashtbl.find_opt mp_cache key with
  | Some r -> r
  | None ->
      let mix =
        match Mp.Mix.of_names ~coverage names with
        | Ok m -> m
        | Error msg -> failwith msg
      in
      let config = Config.xscale scheme in
      let options =
        { Mp.Machine.default_options with quantum_cycles = quantum }
      in
      let r = Mp.Machine.run ~config ~options mix in
      (* The attribution law the differ also enforces: per-process +
         system counters sum to the aggregate, integer by integer. *)
      let agg = Stats.snapshot_ints r.Mp.Machine.aggregate in
      let sum = Array.make (Array.length agg) 0 in
      let add s =
        Array.iteri (fun i v -> sum.(i) <- sum.(i) + v) (Stats.snapshot_ints s)
      in
      List.iter (fun p -> add p.Mp.Machine.pr_stats) r.Mp.Machine.processes;
      add r.Mp.Machine.system;
      if sum <> agg then
        failwith (label ^ ": per-process attribution does not sum to aggregate");
      Hashtbl.replace mp_cache key r;
      r

(* Normalised against the baseline scheme on the SAME mix at the SAME
   quantum, so the kernel and switch costs cancel and the number
   isolates what placement still buys under contention. *)
let mp_cell ~label ~names ~coverage ~quantum =
  let base =
    mp_run ~label ~names ~coverage:Mp.Mix.All_placed ~scheme:Config.Baseline
      ~quantum
  in
  let r = mp_run ~label ~names ~coverage ~scheme:(wp 16) ~quantum in
  let e =
    Ed.normalised
      ~scheme:(Stats.icache_energy_pj r.Mp.Machine.aggregate)
      ~baseline:(Stats.icache_energy_pj base.Mp.Machine.aggregate)
  in
  let ed =
    Ed.normalised_ed
      ~scheme_energy_pj:(Stats.total_energy_pj r.Mp.Machine.aggregate)
      ~scheme_cycles:r.Mp.Machine.aggregate.Stats.cycles
      ~baseline_energy_pj:(Stats.total_energy_pj base.Mp.Machine.aggregate)
      ~baseline_cycles:base.Mp.Machine.aggregate.Stats.cycles
  in
  (e, ed, r)

let mp_quantum_sweep () =
  header
    "Multiprogramming - energy/ED vs quantum x mix x placement coverage\n\
     (3 processes per mix, interrupt kernel on, shared BTB, round-robin;\n\
     normalised to the baseline scheme on the same mix at the same\n\
     quantum, so switch costs cancel)";
  Printf.printf "%-22s %8s %9s %8s %8s %8s %8s %8s %8s\n" "mix" "quantum"
    "sw/Minst" "E(all)" "E(half)" "E(none)" "ED(all)" "ED(half)" "ED(none)";
  List.iter
    (fun (label, names) ->
      List.iter
        (fun quantum ->
          let e_all, ed_all, r_all =
            mp_cell ~label ~names ~coverage:Mp.Mix.All_placed ~quantum
          in
          let e_half, ed_half, _ =
            mp_cell ~label ~names ~coverage:Mp.Mix.Half_placed ~quantum
          in
          let e_none, ed_none, _ =
            mp_cell ~label ~names ~coverage:Mp.Mix.None_placed ~quantum
          in
          Printf.printf
            "%-22s %8s %9.1f %7.1f%% %7.1f%% %7.1f%% %8.3f %8.3f %8.3f\n"
            label
            (if quantum <= 0 then "inf" else string_of_int quantum)
            (Mp.Machine.switches_per_million r_all)
            (pct e_all) (pct e_half) (pct e_none) ed_all ed_half ed_none)
        mp_quanta)
    mp_mixes;
  (* The erosion headline: saving with everything placed, undisturbed
     vs at the highest switch rate measured. *)
  List.iter
    (fun (label, names) ->
      let e_inf, _, _ =
        mp_cell ~label ~names ~coverage:Mp.Mix.All_placed ~quantum:0
      in
      let e_hot, _, r_hot =
        mp_cell ~label ~names ~coverage:Mp.Mix.All_placed ~quantum:2_000
      in
      Printf.printf
        "%-22s saving %4.1f%% undisturbed -> %4.1f%% at %.0f switches/M instrs\n"
        label
        (pct (1.0 -. e_inf))
        (pct (1.0 -. e_hot))
        (Mp.Machine.switches_per_million r_hot))
    mp_mixes;
  Printf.printf "%!"

(* ------------------------------------------------------------------ *)
(* advise: the static oracle vs measured minimal ways (ROADMAP item 3).*)
(* The advisor's interprocedural bound says how many ways the layout   *)
(* provably needs; the measured column sweeps power-of-two areas and   *)
(* reports the smallest that misses no more than the full cache. The   *)
(* candidate areas are ordinary sweep jobs, so they warm in parallel   *)
(* and are shared with fig5.                                           *)

module Advise = Wayplace.Advise

let advise_candidate_ways = [ 1; 2; 4; 8; 16; 32 ]

let advise_jobs () =
  grid suite (List.map (fun k -> Config.xscale (wp k)) advise_candidate_ways)

let advise_table () =
  header
    "Static placement advisor - static minimal-ways bound vs measured\n\
     (32KB 32-way i-cache, 1KB pages; measured = smallest power-of-two\n\
     area whose misses match the full 32-way area)";
  let g = geometry ~size_kb:32 ~ways:32 in
  let energy = (Config.xscale Config.Baseline).Config.energy in
  Printf.printf "%-12s %7s %10s %9s %9s %9s  %s\n" "benchmark" "static"
    "area KB" "measured" "findings" "conflicts" "verdict";
  List.iter
    (fun name ->
      let p = prep name in
      let report =
        Advise.Advisor.analyze ~benchmark:name
          ~graph:p.Runner.program.Wayplace.Workloads.Codegen.graph
          ~profile:p.Runner.profile_small ~trace:p.Runner.trace_large
          ~layout:p.Runner.placed_layout ~geometry:g ~page_bytes:1024
          ~area_bytes:(kb 16) ~energy ()
      in
      let s = report.Advise.Advisor.static_min_ways in
      let full = (run name (Config.xscale (wp 32))).Stats.icache_misses in
      let measured =
        List.find_opt
          (fun k ->
            (run name (Config.xscale (wp k))).Stats.icache_misses <= full)
          advise_candidate_ways
      in
      let replay = report.Advise.Advisor.replay in
      let conflicts =
        replay.Advise.Oracle.area_misses
        - replay.Advise.Oracle.area_distinct_lines
      in
      let measured_s, verdict =
        match measured with
        | None -> ("-", "no candidate matches the full cache")
        | Some m ->
            ( string_of_int m,
              if s >= m then "bound covers miss-parity"
              else "transition misses above the bound" )
      in
      Printf.printf "%-12s %7d %10d %9s %9d %9d  %s\n" name s
        (Advise.Oracle.area_for ~geometry:g ~page_bytes:1024 ~ways:s / 1024)
        measured_s
        (List.length report.Advise.Advisor.findings)
        conflicts verdict)
    suite;
  Printf.printf
    "The static bound certifies steady-state no-thrash (the windowed\n\
     pressure law the fuzzer enforces); miss-parity with the full cache is\n\
     a stricter target, so a larger measured column means cross-region\n\
     transition misses, not an unsound bound.\n%!"

(* ------------------------------------------------------------------ *)
(* CSV export: the three figure datasets, one file per figure, for     *)
(* external plotting.                                                  *)

let csv_jobs () = fig4_jobs () @ fig5_jobs () @ fig6_jobs ()

let csv () =
  header "CSV export (bench_csv/fig{4,5,6}.csv)";
  let dir = "bench_csv" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let write path header rows =
    let oc = open_out (Filename.concat dir path) in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (header ^ "\n");
        List.iter (fun row -> output_string oc (row ^ "\n")) rows);
    Printf.printf "  wrote %s/%s
%!" dir path
  in
  write "fig4.csv" "benchmark,waymemo_energy,wayplace_energy,waymemo_ed,wayplace_ed"
    (List.map
       (fun name ->
         Printf.sprintf "%s,%.4f,%.4f,%.4f,%.4f" name
           (norm_energy name (fig4_config Config.Way_memoization))
           (norm_energy name (fig4_config (wp 16)))
           (norm_ed name (fig4_config Config.Way_memoization))
           (norm_ed name (fig4_config (wp 16))))
       suite);
  write "fig5.csv" "area_kb,energy,ed"
    (List.map
       (fun a ->
         Printf.sprintf "%d,%.4f,%.4f" a
           (suite_mean (fun n -> norm_energy n (fig4_config (wp a))))
           (suite_mean (fun n -> norm_ed n (fig4_config (wp a)))))
       fig5_areas);
  write "fig6.csv"
    "size_kb,ways,waymemo_energy,wp16_energy,wp8_energy,waymemo_ed,wp16_ed,wp8_ed"
    (List.concat_map
       (fun size_kb ->
         List.map
           (fun ways ->
             let wm_e, a16_e, a8_e = fig6_row norm_energy size_kb ways in
             let wm_d, a16_d, a8_d = fig6_row norm_ed size_kb ways in
             Printf.sprintf "%d,%d,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f" size_kb ways
               wm_e a16_e a8_e wm_d a16_d a8_d)
           fig6_ways)
       fig6_sizes)

(* ------------------------------------------------------------------ *)
(* perf: simulator throughput per workload x scheme, with optional     *)
(* machine-readable JSON (BENCH_sim.json) so the trajectory is         *)
(* tracked PR-over-PR.  Runs are timed sequentially on one domain for  *)
(* stable numbers; --repeat N reports the median of N runs.            *)
(*                                                                     *)
(* Three timed paths per cell: "fast" (block-batched replay with       *)
(* steady-state fast-forward off — comparable with the committed       *)
(* baselines, which predate fast-forward), "fastforward" (the          *)
(* default production path), and optionally "reference".  The          *)
(* loop-dominated Mibench variants ride along so the fast-forward      *)
(* speedup is tracked where it matters.                                *)

let perf_json = ref None
let perf_repeat = ref 3
let perf_benchmarks = ref None
let perf_reference = ref false

let perf_schemes =
  [
    Config.Baseline;
    wp 16;
    Config.Way_memoization;
    Config.Way_prediction;
    Config.Filter_cache { l0_bytes = 512 };
  ]

let median xs =
  match List.sort compare xs with
  | [] -> invalid_arg "median: empty"
  | sorted ->
      let n = List.length sorted in
      let nth i = List.nth sorted i in
      if n mod 2 = 1 then nth (n / 2)
      else (nth ((n / 2) - 1) +. nth (n / 2)) /. 2.0

type perf_row = {
  pr_benchmark : string;
  pr_scheme : string;
  pr_path : string;  (** "fast", "fastforward" or "reference" *)
  pr_instrs : int;
  pr_wall_s : float;
  pr_wall_min_s : float;
      (** fastest of the repeats — a noise-robust floor estimate *)
  pr_pair_ratio_min : float;
      (** fast-forward rows: minimum over the interleaved sample pairs
          of (fastforward wall / fast wall).  On a shared 1-core host,
          steal-time bursts dwarf a few-percent systematic difference
          even in per-path minima; pairing cancels the drift (both
          samples of a pair run back-to-back) and the minimum keeps
          one clean pair sufficient to prove the absence of overhead —
          a real slowdown shows in {e every} pair.  1.0 on other rows *)
  pr_ff_skipped_frac : float;
      (** dynamic instructions fast-forwarded / retired; 0 on the
          non-fast-forward paths *)
  pr_cache_hits : int;  (** snapshot-cache hits (fastforward path only) *)
  pr_cache_inserts : int;
}

let pr_ips r = float_of_int r.pr_instrs /. r.pr_wall_s

let time_run f =
  let t0 = Unix.gettimeofday () in
  let stats = f () in
  (Unix.gettimeofday () -. t0, stats)

let perf_rows () =
  let benchmarks =
    match !perf_benchmarks with
    | None -> suite @ Mibench.loop_names
    | Some names -> names
  in
  let repeat = max 1 !perf_repeat in
  List.concat_map
    (fun name ->
      let prepared = Runner.prepare (Mibench.find name) in
      List.concat_map
        (fun scheme ->
          let config = Config.xscale scheme in
          let one pr_path run =
            let samples = List.init repeat (fun _ -> time_run run) in
            let _, stats = List.hd samples in
            {
              pr_benchmark = name;
              pr_scheme = Config.scheme_name scheme;
              pr_path;
              pr_instrs = stats.Stats.retired_instrs;
              pr_wall_s = median (List.map fst samples);
              pr_wall_min_s =
                List.fold_left min infinity (List.map fst samples);
              pr_pair_ratio_min = 1.0;
              pr_ff_skipped_frac = 0.0;
              pr_cache_hits = 0;
              pr_cache_inserts = 0;
            }
          in
          (* The fast and fast-forward samples are interleaved
             (fast, ff, fast, ff, ...) so that host load drifting over
             the measurement window lands on both paths symmetrically —
             back-to-back blocks of one path would hand whichever ran
             during the quieter seconds a fake advantage.  Each ff
             sample gets a fresh report and snapshot cache, so the
             engagement columns describe one run (cross-region reuse
             within it), not an accumulation across repeats. *)
          let pairs =
            List.init repeat (fun _ ->
                let fast_sample =
                  time_run (fun () ->
                      Runner.run_scheme ~fastforward:false prepared config)
                in
                let report = Wayplace.Sim.Steady_state.create_report () in
                let cache = Wayplace.Sim.Snapshot_cache.create () in
                let wall, stats =
                  time_run (fun () ->
                      Runner.run_scheme ~fastforward:true ~ff_report:report
                        ~snapshot_cache:cache prepared config)
                in
                (fast_sample, (wall, stats, report)))
          in
          let fast =
            let samples = List.map fst pairs in
            let _, stats = List.hd samples in
            {
              pr_benchmark = name;
              pr_scheme = Config.scheme_name scheme;
              pr_path = "fast";
              pr_instrs = stats.Stats.retired_instrs;
              pr_wall_s = median (List.map fst samples);
              pr_wall_min_s =
                List.fold_left min infinity (List.map fst samples);
              pr_pair_ratio_min = 1.0;
              pr_ff_skipped_frac = 0.0;
              pr_cache_hits = 0;
              pr_cache_inserts = 0;
            }
          in
          let fastforward =
            let samples = List.map snd pairs in
            let _, stats, report = List.hd samples in
            let retired = stats.Stats.retired_instrs in
            {
              pr_benchmark = name;
              pr_scheme = Config.scheme_name scheme;
              pr_path = "fastforward";
              pr_instrs = retired;
              pr_wall_s = median (List.map (fun (w, _, _) -> w) samples);
              pr_wall_min_s =
                List.fold_left min infinity
                  (List.map (fun (w, _, _) -> w) samples);
              pr_pair_ratio_min =
                List.fold_left min infinity
                  (List.map
                     (fun ((fw, _), (w, _, _)) ->
                       if fw > 0.0 then w /. fw else 1.0)
                     pairs);
              pr_ff_skipped_frac =
                (if retired > 0 then
                   float_of_int
                     report.Wayplace.Sim.Steady_state.skipped_instrs
                   /. float_of_int retired
                 else 0.0);
              pr_cache_hits = report.Wayplace.Sim.Steady_state.cache_hits;
              pr_cache_inserts =
                report.Wayplace.Sim.Steady_state.cache_inserts;
            }
          in
          let rows = [ fast; fastforward ] in
          if not !perf_reference then rows
          else
            rows
            @ [
                one "reference" (fun () ->
                    Simulator.run_reference ~config
                      ~program:prepared.Runner.program
                      ~layout:(Runner.layout_for prepared config)
                      ~trace:prepared.Runner.trace_large);
              ])
        perf_schemes)
    benchmarks

let write_perf_json path rows =
  let esc = Wayplace.Sim.Report.json_escape in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "{\n";
      Printf.fprintf oc "  \"schema\": \"wayplace-bench-sim/1\",\n";
      Printf.fprintf oc "  \"generated_by\": \"bench/main.exe perf\",\n";
      Printf.fprintf oc
        "  \"host\": {\"hostname\": \"%s\", \"os\": \"%s\", \
         \"recommended_domains\": %d, \"timing_domains\": 1},\n"
        (esc (Unix.gethostname ()))
        (esc Sys.os_type)
        (Domain.recommended_domain_count ());
      Printf.fprintf oc "  \"repeat\": %d,\n" (max 1 !perf_repeat);
      Printf.fprintf oc "  \"results\": [\n";
      List.iteri
        (fun i r ->
          Printf.fprintf oc
            "    {\"benchmark\": \"%s\", \"scheme\": \"%s\", \"path\": \
             \"%s\", \"instrs\": %d, \"wall_s\": %.6f, \"instrs_per_sec\": \
             %.6g, \"ff_skipped_frac\": %.6f, \"cache_hits\": %d, \
             \"cache_inserts\": %d}%s\n"
            (esc r.pr_benchmark) (esc r.pr_scheme) (esc r.pr_path) r.pr_instrs
            r.pr_wall_s (pr_ips r) r.pr_ff_skipped_frac r.pr_cache_hits
            r.pr_cache_inserts
            (if i = List.length rows - 1 then "" else ","))
        rows;
      Printf.fprintf oc "  ]\n}\n");
  Printf.printf "  wrote %s\n%!" path

(* Hard overhead gate: on patternless (non-loop) benchmarks the
   fast-forward machinery must be within noise of the plain fast path.
   The estimator is the paired ratio: samples are interleaved
   (fast, ff) back-to-back, so each pair's ff/fast ratio cancels host
   load drift, and the minimum ratio over a scheme's pairs makes one
   clean pair sufficient — a real systematic overhead is present in
   every pair, while scheduler steal-bursts on a shared 1-core runner
   inflate only some.  Per benchmark the scheme ratios are averaged
   weighted by the fast path's minimum wall; any benchmark over the
   5% line fails the run. *)
let ff_overhead_gate rows =
  let non_loop =
    List.filter
      (fun r -> not (List.mem r.pr_benchmark Mibench.loop_names))
      rows
  in
  let benchmarks =
    List.sort_uniq compare (List.map (fun r -> r.pr_benchmark) non_loop)
  in
  let overhead_of bench =
    (* weight each scheme's pair-min ratio by its fast minimum wall *)
    let wall = Hashtbl.create 8 in
    List.iter
      (fun r ->
        if r.pr_benchmark = bench && r.pr_path = "fast" then
          Hashtbl.replace wall r.pr_scheme r.pr_wall_min_s)
      non_loop;
    let num = ref 0.0 and den = ref 0.0 in
    List.iter
      (fun r ->
        if r.pr_benchmark = bench && r.pr_path = "fastforward" then
          match Hashtbl.find_opt wall r.pr_scheme with
          | Some w when w > 0.0 ->
              num := !num +. (w *. r.pr_pair_ratio_min);
              den := !den +. w
          | Some _ | None -> ())
      non_loop;
    if !den > 0.0 then Some (!num /. !den) else None
  in
  let violations =
    List.filter_map
      (fun bench ->
        match overhead_of bench with
        | Some ratio when ratio > 1.05 -> Some (bench, ratio)
        | Some _ | None -> None)
      benchmarks
  in
  List.iter
    (fun (bench, ratio) ->
      Printf.printf
        "::error::fast-forward overhead gate: %s: fastforward %.1f%% slower \
         than the plain fast path in every interleaved pair\n"
        bench
        (100.0 *. (ratio -. 1.0)))
    violations;
  violations = []

let perf () =
  header
    (Printf.sprintf
       "Simulator throughput (sequential, median of %d run%s)"
       (max 1 !perf_repeat)
       (if max 1 !perf_repeat = 1 then "" else "s"));
  let rows = perf_rows () in
  Printf.printf "%-12s %-22s %-10s %12s %10s %14s %9s %6s %6s\n" "benchmark"
    "scheme" "path" "instrs" "wall s" "instrs/sec" "ff-skip" "c-hit" "c-ins";
  List.iter
    (fun r ->
      Printf.printf "%-12s %-22s %-10s %12d %10.4f %14.4g %9.3f %6d %6d\n"
        r.pr_benchmark r.pr_scheme r.pr_path r.pr_instrs r.pr_wall_s (pr_ips r)
        r.pr_ff_skipped_frac r.pr_cache_hits r.pr_cache_inserts)
    rows;
  let aggregate label select path =
    let sel = List.filter (fun r -> select r && r.pr_path = path) rows in
    let instrs = List.fold_left (fun acc r -> acc + r.pr_instrs) 0 sel
    and wall = List.fold_left (fun acc r -> acc +. r.pr_wall_s) 0.0 sel in
    if wall > 0.0 then begin
      Printf.printf "%-12s %-22s %-10s %12d %10.4f %14.4g\n" label "(all)"
        path instrs wall
        (float_of_int instrs /. wall);
      Some (float_of_int instrs /. wall)
    end
    else None
  in
  let is_loop r = List.mem r.pr_benchmark Mibench.loop_names in
  ignore (aggregate "suite" (fun r -> not (is_loop r)) "fast");
  ignore (aggregate "suite" (fun r -> not (is_loop r)) "fastforward");
  let loops_off = aggregate "loops" is_loop "fast" in
  let loops_on = aggregate "loops" is_loop "fastforward" in
  (match (loops_off, loops_on) with
  | Some off, Some on when off > 0.0 ->
      Printf.printf
        "loop-dominated fast-forward speedup: %.1fx over the plain fast path\n"
        (on /. off)
  | _ -> ());
  (match !perf_json with None -> () | Some path -> write_perf_json path rows);
  let gate_ok = ff_overhead_gate rows in
  Printf.printf "%!";
  if not gate_ok then exit 1

(* Soft comparison of two perf JSON files (CI: warn, don't fail).
   [Report.parse_perf_rows] owns the line-oriented reading and never
   raises on malformed input: a stale, truncated or schema-drifted
   artifact degrades to warnings, not a red build. *)

let read_perf_file ~role path =
  match Wayplace.Sim.Report.parse_perf_rows path with
  | Error msg ->
      Printf.printf "::warning::perf-compare: cannot read %s file %s: %s\n"
        role path msg;
      []
  | Ok (rows, skipped) ->
      if skipped > 0 then
        Printf.printf
          "::warning::perf-compare: %d malformed result line%s skipped in %s\n"
          skipped
          (if skipped = 1 then "" else "s")
          path;
      if rows = [] then
        Printf.printf
          "::warning::perf-compare: no result rows recognised in %s (schema \
           change or empty file?)\n"
          path;
      rows

let perf_compare baseline_path new_path =
  let baseline = read_perf_file ~role:"baseline" baseline_path in
  let fresh = read_perf_file ~role:"new" new_path in
  let regressions = ref 0 and compared = ref 0 in
  List.iter
    (fun (key, new_ips) ->
      match List.assoc_opt key baseline with
      | None -> ()
      | Some old_ips when old_ips <= 0.0 -> ()
      | Some old_ips ->
          incr compared;
          let ratio = new_ips /. old_ips in
          let b, s, p = key in
          if ratio < 0.70 then begin
            incr regressions;
            Printf.printf
              "::warning::perf regression %s x %s (%s): %.3g -> %.3g \
               instrs/sec (%.0f%%)\n"
              b s p old_ips new_ips (100.0 *. ratio)
          end
          else
            Printf.printf "ok %s x %s (%s): %.3g -> %.3g (%.0f%%)\n" b s p
              old_ips new_ips (100.0 *. ratio))
    fresh;
  Printf.printf
    "[perf-compare] %d rows compared, %d regression%s beyond 30%% (soft: \
     never fails the build)\n%!"
    !compared !regressions
    (if !regressions = 1 then "" else "s")

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the core data structures.              *)

let micro () =
  header "Micro-benchmarks (bechamel, ns per operation)";
  let open Bechamel in
  let module Cam = Wayplace.Cache.Cam_cache in
  let module Memo = Wayplace.Cache.Way_memo in
  let g = geometry ~size_kb:32 ~ways:32 in
  let cam = Cam.create g ~replacement:Wayplace.Cache.Replacement.Round_robin in
  for i = 0 to 255 do
    ignore (Cam.fill cam (i * 32) Cam.Victim_by_policy)
  done;
  let memo = Memo.create g ~replacement:Wayplace.Cache.Replacement.Round_robin in
  (* Same cache with a (discarding) probe attached: the difference to
     the plain lookup is the whole cost of observability when enabled;
     disabled it is one branch (and Stats stay bit-identical — tested). *)
  let cam_probed =
    Cam.create ~probe:Wayplace.Obs.Probe.null g
      ~replacement:Wayplace.Cache.Replacement.Round_robin
  in
  for i = 0 to 255 do
    ignore (Cam.fill cam_probed (i * 32) Cam.Victim_by_policy)
  done;
  let tlb = Wayplace.Tlb.Tlb.create ~entries:32 ~page_bytes:1024 in
  let counter = ref 0 in
  let tests =
    Test.make_grouped ~name:"wayplace"
      [
        Test.make ~name:"cam.lookup_full"
          (Staged.stage (fun () ->
               incr counter;
               ignore (Cam.lookup_full cam ((!counter land 255) * 32))));
        Test.make ~name:"cam.lookup_full+probe"
          (Staged.stage (fun () ->
               incr counter;
               ignore (Cam.lookup_full cam_probed ((!counter land 255) * 32))));
        Test.make ~name:"cam.lookup_way"
          (Staged.stage (fun () ->
               incr counter;
               let a = (!counter land 255) * 32 in
               ignore (Cam.lookup_way cam a ~way:(Geometry.way_of_addr g a))));
        Test.make ~name:"memo.fetch"
          (Staged.stage (fun () ->
               incr counter;
               ignore (Memo.fetch memo ((!counter land 1023) * 32))));
        Test.make ~name:"tlb.lookup"
          (Staged.stage (fun () ->
               incr counter;
               ignore
                 (Wayplace.Tlb.Tlb.lookup tlb
                    ((!counter land 63) * 1024)
                    ~wp_bit_of_page:(fun _ -> false))));
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] -> Printf.printf "  %-28s %8.1f ns/op\n" name ns
      | Some _ | None -> Printf.printf "  %-28s (no estimate)\n" name)
    results;
  Printf.printf "%!"

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("tab1", no_jobs, tab1);
    ("fig1", no_jobs, fig1);
    ("fig4a", fig4_jobs, fig4a);
    ("fig4b", fig4_jobs, fig4b);
    ("fig5a", fig5_jobs, fig5a);
    ("fig5b", fig5_jobs, fig5b);
    ("fig6a", fig6_jobs, fig6a);
    ("fig6b", fig6_jobs, fig6b);
    ("ablate-sameline", ablate_sameline_jobs, ablate_sameline);
    ("ablate-replacement", ablate_replacement_jobs, ablate_replacement);
    ("ablate-invalidation", ablate_invalidation_jobs, ablate_invalidation);
    ("ablate-hint", ablate_hint_jobs, ablate_hint);
    ("ablate-profile", ablate_profile_jobs, ablate_profile);
    ("ext-comparators", ext_comparators_jobs, ext_comparators);
    ("ext-drowsy", ext_drowsy_jobs, ext_drowsy);
    ("mp-quantum", no_jobs, mp_quantum_sweep);
    ("advise", advise_jobs, advise_table);
    ("csv", csv_jobs, csv);
    ("micro", no_jobs, micro);
    ("perf", no_jobs, perf);
  ]

(* perf times fresh sequential runs, so it is opt-in rather than part
   of the default "run everything" set. *)
let default_experiments =
  List.filter (fun (id, _, _) -> id <> "perf") experiments

let usage () =
  Printf.eprintf
    "usage: main.exe [-j N] [EXPERIMENT...]\n\
     \  -j, --jobs N     simulate on N worker domains (default %d; 1 = sequential)\n\
     \  list             print the experiment ids and exit\n\
     perf options (experiment 'perf' is opt-in, excluded from the default set):\n\
     \  --json PATH      write machine-readable results (BENCH_sim.json)\n\
     \  --repeat N       median of N timed runs per cell (default 3)\n\
     \  --bench A,B,..   restrict perf to these workloads (default: full suite)\n\
     \  --ref            also time the per-instruction reference path\n\
     perf-compare OLD NEW  soft-compare two perf JSON files (warn >30%% slower)\n"
    (Sweep.default_workers ())

let () =
  let rec parse ids = function
    | [] -> List.rev ids
    | ("-j" | "--jobs") :: v :: rest -> begin
        match int_of_string_opt v with
        | Some n when n >= 1 ->
            requested_workers := Some n;
            parse ids rest
        | Some _ | None ->
            Printf.eprintf "bad worker count %S\n" v;
            usage ();
            exit 1
      end
    | [ ("-j" | "--jobs") ] ->
        Printf.eprintf "-j needs a worker count\n";
        usage ();
        exit 1
    | "--json" :: path :: rest ->
        perf_json := Some path;
        parse ids rest
    | "--repeat" :: v :: rest -> begin
        match int_of_string_opt v with
        | Some n when n >= 1 ->
            perf_repeat := n;
            parse ids rest
        | Some _ | None ->
            Printf.eprintf "bad repeat count %S\n" v;
            usage ();
            exit 1
      end
    | "--bench" :: v :: rest ->
        let names = String.split_on_char ',' v in
        let known = suite @ Mibench.loop_names in
        List.iter
          (fun n ->
            if not (List.mem n known) then begin
              Printf.eprintf "unknown benchmark %S (known: %s)\n" n
                (String.concat ", " known);
              exit 1
            end)
          names;
        perf_benchmarks := Some names;
        parse ids rest
    | "--ref" :: rest ->
        perf_reference := true;
        parse ids rest
    | [ ("--json" | "--repeat" | "--bench") as flag ] ->
        Printf.eprintf "%s needs an argument\n" flag;
        usage ();
        exit 1
    | "perf-compare" :: old_path :: new_path :: _ ->
        perf_compare old_path new_path;
        exit 0
    | "perf-compare" :: _ ->
        Printf.eprintf "perf-compare needs OLD and NEW json paths\n";
        usage ();
        exit 1
    | ("-h" | "--help") :: _ ->
        usage ();
        exit 0
    | "list" :: _ ->
        List.iter (fun (id, _, _) -> print_endline id) experiments;
        exit 0
    | id :: rest -> parse (id :: ids) rest
  in
  let requested =
    match parse [] (List.tl (Array.to_list Sys.argv)) with
    | [] -> List.map (fun (id, _, _) -> id) default_experiments
    | ids -> ids
  in
  let lookup id =
    match List.find_opt (fun (id', _, _) -> id = id') experiments with
    | Some entry -> entry
    | None ->
        Printf.eprintf "unknown experiment %S (try: list)\n" id;
        exit 1
  in
  let selected = List.map lookup requested in
  let t0 = Unix.gettimeofday () in
  (* Warm the cache in parallel: one deduped batch for all requested
     experiments, so baselines shared across figures run once. *)
  let jobs = List.concat_map (fun (_, jobs_of, _) -> jobs_of ()) selected in
  let unique = List.length (Sweep.dedup jobs) in
  if unique > 0 then begin
    let engine = Lazy.force sweep in
    Printf.eprintf "[sweep] %d unique jobs on %d worker%s\n%!" unique
      (Sweep.workers engine)
      (if Sweep.workers engine = 1 then "" else "s");
    ignore (Sweep.run_batch engine jobs)
  end;
  List.iter (fun (_, _, f) -> f ()) selected;
  Printf.printf "\n[bench] done in %.1fs\n%!" (Unix.gettimeofday () -. t0)
