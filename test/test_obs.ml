(* Tests for the observability subsystem: the windowed sampler's
   conservation law (window sums reproduce the final Stats.t), window
   boundary behaviour, marker placement, and the structural validity of
   the CSV and Chrome trace-event exports. *)

module Probe = Wayplace.Obs.Probe
module Sampler = Wayplace.Obs.Sampler
module Config = Wayplace.Sim.Config
module Stats = Wayplace.Sim.Stats
module Runner = Wayplace.Sim.Runner
module Timeline = Wayplace.Sim.Timeline
module Report = Wayplace.Sim.Report
module Account = Wayplace.Energy.Account
module Mibench = Wayplace.Workloads.Mibench

let wp16 = Config.Way_placement { area_bytes = 16 * 1024 }

let tiny_prep = lazy (Runner.prepare Mibench.tiny)

let timeline ?schedule ?(window_cycles = 2048) config =
  Runner.run_timeline ?schedule ~window_cycles (Lazy.force tiny_prep) config

(* --- sampler basics --- *)

let test_create_validation () =
  Alcotest.(check bool) "window_cycles 0 rejected" true
    (match Sampler.create ~window_cycles:0 () with
    | (_ : Sampler.t) -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "negative rejected" true
    (match Sampler.create ~window_cycles:(-5) () with
    | (_ : Sampler.t) -> false
    | exception Invalid_argument _ -> true)

let test_finish_idempotent () =
  let s = Sampler.create () in
  let p = Sampler.probe s in
  p (Probe.Retire { cycles = 7; instrs = 3 });
  let a = Sampler.finish s in
  (* Late events are discarded, and finishing again returns the same
     windows. *)
  p (Probe.Retire { cycles = 100_000; instrs = 4 });
  let b = Sampler.finish s in
  Alcotest.(check int) "one window" 1 (List.length a);
  Alcotest.(check bool) "idempotent" true (a = b)

let test_window_boundaries () =
  let stats, windows = timeline (Config.xscale Config.Baseline) in
  Alcotest.(check bool) "several windows" true (List.length windows > 3);
  let rec check_chain prev_end index = function
    | [] -> ()
    | (w : Sampler.window) :: rest ->
        Alcotest.(check int) "indices are dense" index w.Sampler.index;
        Alcotest.(check int) "contiguous with predecessor" prev_end
          w.Sampler.start_cycle;
        Alcotest.(check bool) "window advances" true
          (w.Sampler.end_cycle >= w.Sampler.start_cycle);
        check_chain w.Sampler.end_cycle (index + 1) rest
  in
  check_chain 0 0 windows;
  let last = List.nth windows (List.length windows - 1) in
  Alcotest.(check int) "spans telescope to the run's cycles"
    stats.Stats.cycles last.Sampler.end_cycle

(* --- the conservation law --- *)

(* The Stats.t field each sampler counter mirrors ([None] for cache
   internals the stats never count). *)
let counter_expected (s : Stats.t) = function
  | Sampler.Counter.Same_line_fetches -> Some s.Stats.same_line_fetches
  | Sampler.Counter.Wp_fetches -> Some s.Stats.wp_fetches
  | Sampler.Counter.Full_fetches -> Some s.Stats.full_fetches
  | Sampler.Counter.Link_follows -> Some s.Stats.link_follows
  | Sampler.Counter.Icache_hits -> Some s.Stats.icache_hits
  | Sampler.Counter.Icache_misses -> Some s.Stats.icache_misses
  | Sampler.Counter.L0_hits -> Some s.Stats.l0_hits
  | Sampler.Counter.L0_misses -> Some s.Stats.l0_misses
  | Sampler.Counter.Tag_comparisons -> Some s.Stats.tag_comparisons
  | Sampler.Counter.Hint_correct_wp -> Some s.Stats.hint_correct_wp
  | Sampler.Counter.Hint_correct_normal -> Some s.Stats.hint_correct_normal
  | Sampler.Counter.Hint_missed_saving -> Some s.Stats.hint_missed_saving
  | Sampler.Counter.Hint_reaccess -> Some s.Stats.hint_reaccess
  | Sampler.Counter.Waypred_correct -> Some s.Stats.waypred_correct
  | Sampler.Counter.Waypred_wrong -> Some s.Stats.waypred_wrong
  | Sampler.Counter.Drowsy_wakes -> Some s.Stats.drowsy_wakes
  | Sampler.Counter.Link_writes -> Some s.Stats.link_writes
  | Sampler.Counter.Links_invalidated -> Some s.Stats.links_invalidated
  | Sampler.Counter.Itlb_misses -> Some s.Stats.itlb_misses
  | Sampler.Counter.Dtlb_misses -> Some s.Stats.dtlb_misses
  | Sampler.Counter.Dcache_accesses -> Some s.Stats.dcache_accesses
  | Sampler.Counter.Dcache_misses -> Some s.Stats.dcache_misses
  | Sampler.Counter.Line_fills | Sampler.Counter.Evictions -> None

let bucket_account acct = function
  | Probe.Icache -> Account.icache_pj acct
  | Probe.Itlb -> Account.itlb_pj acct
  | Probe.Dcache -> Account.dcache_pj acct
  | Probe.Memory -> Account.memory_pj acct
  | Probe.Core -> Account.core_pj acct

let check_conservation name (stats : Stats.t) windows =
  let sums = Sampler.sum_counters windows in
  List.iter
    (fun c ->
      match counter_expected stats c with
      | None -> ()
      | Some expected ->
          Alcotest.(check int)
            (Printf.sprintf "%s: %s window sum" name (Sampler.Counter.name c))
            expected
            sums.(Sampler.Counter.index c))
    Sampler.Counter.all;
  let retired =
    List.fold_left
      (fun acc (w : Sampler.window) -> acc + w.Sampler.retired)
      0 windows
  in
  Alcotest.(check int)
    (name ^ ": retired window sum")
    stats.Stats.retired_instrs retired;
  (* Cumulative per-bucket energy mirrors the account's additions in
     order, so the final value is bit-identical... *)
  let cum = Sampler.final_cum_energy windows in
  List.iter
    (fun b ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: cumulative %s bit-identical" name
           (Probe.bucket_name b))
        true
        (Float.equal
           (bucket_account stats.Stats.account b)
           cum.(Probe.bucket_index b)))
    Probe.buckets;
  (* ...while re-summing the window-local deltas reassociates the
     additions, so that reproduction is only tolerance-exact. *)
  let deltas = Sampler.sum_energy windows in
  List.iter
    (fun b ->
      let expected = bucket_account stats.Stats.account b in
      let actual = deltas.(Probe.bucket_index b) in
      let tol = 1e-9 *. Float.max 1.0 (Float.abs expected) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: window-delta %s sum" name (Probe.bucket_name b))
        true
        (Float.abs (actual -. expected) <= tol))
    Probe.buckets

let test_conservation_baseline () =
  let stats, windows = timeline (Config.xscale Config.Baseline) in
  check_conservation "baseline" stats windows

let test_conservation_wayplace () =
  let stats, windows = timeline (Config.xscale wp16) in
  check_conservation "wayplace" stats windows

let test_conservation_drowsy () =
  let config =
    Config.with_drowsy
      (Config.with_leakage (Config.xscale Config.Baseline) true)
      (Some 2000)
  in
  let stats, windows = timeline config in
  Alcotest.(check bool) "drowsy wakes observed" true
    (stats.Stats.drowsy_wakes > 0);
  check_conservation "drowsy" stats windows

let test_probe_leaves_stats_identical () =
  let prep = Lazy.force tiny_prep in
  List.iter
    (fun scheme ->
      let config = Config.xscale scheme in
      let plain = Runner.run_scheme prep config in
      let probed, _windows = Runner.run_timeline prep config in
      Alcotest.(check bool)
        (Config.scheme_name scheme ^ ": stats bit-identical under a probe")
        true
        (Stats.equal plain probed))
    [
      Config.Baseline;
      wp16;
      Config.Way_memoization;
      Config.Way_prediction;
      Config.Filter_cache { l0_bytes = 512 };
    ]

(* --- resize markers --- *)

let test_resize_markers_in_right_windows () =
  let prep = Lazy.force tiny_prep in
  let n =
    Array.length
      prep.Runner.trace_large.Wayplace.Workloads.Tracer.blocks
  in
  let schedule = [ (n / 4, 2048); (n / 2, 8192) ] in
  let _stats, windows =
    Runner.run_timeline ~schedule ~window_cycles:2048 prep (Config.xscale wp16)
  in
  (* Every marker must lie within the cycle span of the window that
     recorded it. *)
  List.iter
    (fun (w : Sampler.window) ->
      List.iter
        (fun m ->
          let cycle = Sampler.marker_cycle m in
          Alcotest.(check bool) "marker within its window" true
            (w.Sampler.start_cycle <= cycle && cycle <= w.Sampler.end_cycle))
        w.Sampler.markers)
    windows;
  let all_markers = List.concat_map (fun w -> w.Sampler.markers) windows in
  let resizes =
    List.filter_map
      (function
        | Sampler.Resize { area_bytes; _ } -> Some area_bytes
        | Sampler.Flush _ | Sampler.Switch _ -> None)
      all_markers
  in
  Alcotest.(check (list int)) "one resize marker per schedule entry, in order"
    (List.map snd schedule) resizes;
  let flushes =
    List.length
      (List.filter
         (function
           | Sampler.Flush _ -> true
           | Sampler.Resize _ | Sampler.Switch _ -> false)
         all_markers)
  in
  Alcotest.(check int) "each resize flushes" (List.length schedule) flushes;
  (* Marker cycles are non-decreasing across the whole run. *)
  let cycles = List.map Sampler.marker_cycle all_markers in
  Alcotest.(check bool) "marker cycles ordered" true
    (List.sort compare cycles = cycles)

(* --- CSV export --- *)

let test_timeline_csv_shape () =
  let _stats, windows = timeline (Config.xscale wp16) in
  let rows = Timeline.csv_rows windows in
  Alcotest.(check int) "one row per window" (List.length windows)
    (List.length rows);
  let width = List.length Timeline.csv_header in
  List.iter
    (fun row ->
      Alcotest.(check int) "row width matches header" width (List.length row))
    rows;
  (* The window column counts up from 0. *)
  List.iteri
    (fun i row -> Alcotest.(check string) "window id" (string_of_int i) (List.hd row))
    rows

(* --- Chrome trace-event export --- *)

(* Hand-rolled scans over the rendered JSON: count key occurrences and
   collect every "ts" value in stream order. *)
let count_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let count = ref 0 in
  for i = 0 to nh - nn do
    if String.sub hay i nn = needle then incr count
  done;
  !count

let ts_values s =
  let key = "\"ts\":" in
  let klen = String.length key in
  let n = String.length s in
  let rec find i acc =
    if i + klen > n then List.rev acc
    else if String.sub s i klen = key then begin
      let j = ref (i + klen) in
      while
        !j < n && (match s.[!j] with '0' .. '9' | '-' -> true | _ -> false)
      do
        incr j
      done;
      find !j (int_of_string (String.sub s (i + klen) (!j - i - klen)) :: acc)
    end
    else find (i + 1) acc
  in
  find 0 []

let test_chrome_trace_structure () =
  let prep = Lazy.force tiny_prep in
  let n =
    Array.length prep.Runner.trace_large.Wayplace.Workloads.Tracer.blocks
  in
  let _stats, windows =
    Runner.run_timeline
      ~schedule:[ (n / 2, 2048) ]
      ~window_cycles:2048 prep (Config.xscale wp16)
  in
  let s = Report.json_to_string (Timeline.chrome_trace windows) in
  Alcotest.(check bool) "top-level traceEvents array" true
    (count_substring s "\"traceEvents\":[" = 1);
  Alcotest.(check bool) "displayTimeUnit present" true
    (count_substring s "\"displayTimeUnit\":\"ns\"" = 1);
  (* Every event carries the required ph/ts/pid triple. *)
  let events = count_substring s "\"ph\":" in
  Alcotest.(check bool) "events present" true (events > 0);
  Alcotest.(check int) "every event has a ts" events (count_substring s "\"ts\":");
  Alcotest.(check int) "every event has a pid" events
    (count_substring s "\"pid\":");
  Alcotest.(check int) "exactly one metadata event" 1
    (count_substring s "\"ph\":\"M\"");
  Alcotest.(check bool) "counter events present" true
    (count_substring s "\"ph\":\"C\"" > 0);
  Alcotest.(check bool) "instant event for the resize" true
    (count_substring s "\"ph\":\"i\"" >= 1);
  Alcotest.(check bool) "resize payload present" true
    (count_substring s "\"area_bytes\":2048" = 1);
  (* Timestamps are non-decreasing in stream order (Perfetto accepts
     unsorted input, chrome://tracing is happier sorted). *)
  let ts = ts_values s in
  Alcotest.(check int) "one ts per event" events (List.length ts);
  Alcotest.(check bool) "timestamps monotone" true
    (List.sort compare ts = ts)

let test_chrome_trace_empty () =
  let s = Report.json_to_string (Timeline.chrome_trace []) in
  (* Still a valid trace: the metadata event alone. *)
  Alcotest.(check int) "only the metadata event" 1
    (count_substring s "\"ph\":")

let () =
  Alcotest.run "obs"
    [
      ( "sampler",
        [
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "finish idempotent" `Quick test_finish_idempotent;
          Alcotest.test_case "window boundaries" `Quick test_window_boundaries;
          Alcotest.test_case "conservation: baseline" `Quick
            test_conservation_baseline;
          Alcotest.test_case "conservation: way-placement" `Quick
            test_conservation_wayplace;
          Alcotest.test_case "conservation: drowsy" `Quick
            test_conservation_drowsy;
          Alcotest.test_case "probe leaves stats identical" `Quick
            test_probe_leaves_stats_identical;
          Alcotest.test_case "resize markers" `Quick
            test_resize_markers_in_right_windows;
        ] );
      ( "export",
        [
          Alcotest.test_case "CSV shape" `Quick test_timeline_csv_shape;
          Alcotest.test_case "Chrome trace structure" `Quick
            test_chrome_trace_structure;
          Alcotest.test_case "Chrome trace of no windows" `Quick
            test_chrome_trace_empty;
        ] );
    ]
