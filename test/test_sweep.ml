(* Tests for the parallel sweep engine: job keying, dedup/baseline
   expansion, memoisation, result ordering, progress reporting, error
   propagation — and the headline guarantee, bit-identical results
   between the sequential fallback and the domain pool. *)

module Config = Wayplace.Sim.Config
module Stats = Wayplace.Sim.Stats
module Sweep = Wayplace.Sim.Sweep

let wp16 = Config.Way_placement { area_bytes = 16 * 1024 }
let job benchmark config = { Sweep.benchmark; config }

(* A small but heterogeneous grid: two benchmarks x two schemes, plus
   the shared baselines. *)
let small_grid =
  Sweep.with_baselines
    [
      job "crc" (Config.xscale wp16);
      job "susan_c" (Config.xscale wp16);
      job "crc" (Config.xscale Config.Way_memoization);
      job "susan_c" (Config.xscale Config.Way_memoization);
    ]

(* --- keys, dedup, baseline expansion (pure) --- *)

let test_job_key_stable_and_distinct () =
  let j1 = job "crc" (Config.xscale wp16) in
  let j2 = job "crc" (Config.xscale wp16) in
  Alcotest.(check string) "equal jobs, equal keys" (Sweep.job_key j1)
    (Sweep.job_key j2);
  Alcotest.(check bool) "benchmark participates" false
    (Sweep.job_key j1 = Sweep.job_key (job "susan_c" (Config.xscale wp16)));
  Alcotest.(check bool) "scheme participates" false
    (Sweep.job_key j1 = Sweep.job_key (job "crc" (Config.xscale Config.Baseline)))

(* The ad-hoc printed key this module replaced omitted several config
   fields (memory latency among them), silently merging distinct
   configs; the marshalled key must separate every field. *)
let test_config_key_covers_all_fields () =
  let base = Config.xscale Config.Baseline in
  let slower = { base with Config.memory_latency = base.Config.memory_latency + 1 } in
  Alcotest.(check bool) "memory latency participates" false
    (Sweep.config_key base = Sweep.config_key slower);
  let filter b = Config.xscale (Config.Filter_cache { l0_bytes = b }) in
  Alcotest.(check bool) "filter L0 size participates" false
    (Sweep.config_key (filter 512) = Sweep.config_key (filter 1024))

let test_dedup () =
  let a = job "crc" (Config.xscale wp16) in
  let b = job "crc" (Config.xscale Config.Baseline) in
  Alcotest.(check int) "duplicates removed" 2
    (List.length (Sweep.dedup [ a; b; a; b; a ]));
  match Sweep.dedup [ b; a; b ] with
  | [ first; second ] ->
      Alcotest.(check string) "first occurrence order kept" (Sweep.job_key b)
        (Sweep.job_key first);
      Alcotest.(check string) "second kept" (Sweep.job_key a)
        (Sweep.job_key second)
  | other -> Alcotest.failf "expected 2 jobs, got %d" (List.length other)

let test_with_baselines () =
  let scheme_job = job "crc" (Config.xscale wp16) in
  let expanded = Sweep.with_baselines [ scheme_job ] in
  Alcotest.(check int) "scheme + baseline" 2 (List.length expanded);
  let baseline_job = job "crc" (Config.xscale Config.Baseline) in
  Alcotest.(check bool) "baseline partner present" true
    (List.exists
       (fun j -> Sweep.job_key j = Sweep.job_key baseline_job)
       expanded);
  (* A baseline job's partner is itself: no duplicate appears, and the
     elision flag (etc.) of the scheme config carries over. *)
  let off = Config.with_same_line_elision (Config.xscale wp16) false in
  let expanded = Sweep.with_baselines [ job "crc" off ] in
  Alcotest.(check int) "distinct baseline per elision flag" 2
    (List.length expanded);
  Alcotest.(check bool) "partner keeps elision off" true
    (List.exists
       (fun (j : Sweep.job) -> j.Sweep.config.Config.same_line_elision = false)
       (List.filter
          (fun (j : Sweep.job) -> j.Sweep.config.Config.scheme = Config.Baseline)
          expanded))

(* --- the parallel guarantee: bit-identical stats --- *)

(* Stats.equal is exact (no float tolerance), and Stats.pp_diff names
   exactly the fields that disagree — so a failure here reads like the
   old 30-line field-by-field checker without being one. *)
let check_stats_identical label (a : Stats.t) (b : Stats.t) =
  if not (Stats.equal a b) then
    Alcotest.failf "%s: runs differ:@.%a" label Stats.pp_diff (a, b)

let test_sequential_parallel_identical () =
  let sequential = Sweep.create ~workers:1 () in
  let parallel = Sweep.create ~workers:3 () in
  let seq_stats = Sweep.run_batch sequential small_grid in
  let par_stats = Sweep.run_batch parallel small_grid in
  Alcotest.(check int) "same cardinality" (List.length seq_stats)
    (List.length par_stats);
  List.iteri
    (fun i (s, p) ->
      check_stats_identical
        (Printf.sprintf "job %d (%s)"
           i
           (Sweep.job_label (List.nth small_grid i)))
        s p)
    (List.combine seq_stats par_stats)

(* --- memoisation and ordering --- *)

let test_run_batch_order_and_memoisation () =
  let t = Sweep.create ~workers:2 () in
  let a = job "crc" (Config.xscale wp16) in
  let b = job "crc" (Config.xscale Config.Baseline) in
  match Sweep.run_batch t [ a; b; a ] with
  | [ s1; s2; s3 ] ->
      Alcotest.(check bool) "duplicate job returns the memoised value" true
        (s1 == s3);
      Alcotest.(check bool) "distinct jobs differ" true (not (s1 == s2));
      Alcotest.(check int) "two unique jobs cached" 2 (Sweep.completed t);
      (* a second batch is pure cache hits *)
      let again = Sweep.run_batch t [ a; b ] in
      Alcotest.(check bool) "cache hit returns same value" true
        (List.nth again 0 == s1);
      Alcotest.(check int) "no new jobs" 2 (Sweep.completed t)
  | other -> Alcotest.failf "expected 3 results, got %d" (List.length other)

let test_stats_memoises_prepare () =
  let t = Sweep.create ~workers:1 () in
  let p1 = Sweep.prepared t "crc" in
  let p2 = Sweep.prepared t "crc" in
  Alcotest.(check bool) "prepare memoised" true (p1 == p2)

(* --- progress reporting --- *)

let test_progress_reporting () =
  let events = ref [] in
  let progress job ~seconds ~completed ~total =
    events := (Sweep.job_key job, seconds, completed, total) :: !events
  in
  let t = Sweep.create ~workers:2 ~progress () in
  let n = List.length small_grid in
  ignore (Sweep.run_batch t small_grid);
  let seen = List.rev !events in
  Alcotest.(check int) "one event per unique job" n (List.length seen);
  List.iteri
    (fun i (_, seconds, completed, total) ->
      Alcotest.(check int) "completion order" (i + 1) completed;
      Alcotest.(check int) "total" n total;
      Alcotest.(check bool) "non-negative timing" true (seconds >= 0.0))
    seen;
  (* cached reruns emit nothing *)
  events := [];
  ignore (Sweep.run_batch t small_grid);
  Alcotest.(check int) "no events for cache hits" 0 (List.length !events)

(* --- error propagation --- *)

exception Progress_boom

let test_progress_raise_propagates () =
  (* A progress callback that raises runs on the coordinating thread;
     the pool must surface the exception to the caller instead of
     deadlocking on workers still waiting for jobs. *)
  List.iter
    (fun workers ->
      let progress _job ~seconds:_ ~completed ~total:_ =
        if completed = 2 then raise Progress_boom
      in
      let t = Sweep.create ~workers ~progress () in
      Alcotest.check_raises
        (Printf.sprintf "progress raise surfaces (workers=%d)" workers)
        Progress_boom
        (fun () -> ignore (Sweep.run_batch t small_grid)))
    [ 1; 3 ]

let test_failure_propagates () =
  List.iter
    (fun workers ->
      let t = Sweep.create ~workers () in
      let bad = job "no_such_benchmark" (Config.xscale Config.Baseline) in
      Alcotest.check_raises
        (Printf.sprintf "unknown benchmark raises (workers=%d)" workers)
        Not_found
        (fun () -> ignore (Sweep.run_batch t [ bad ])))
    [ 1; 2 ]

(* --- the pool's error paths and the persistent executor --- *)

exception Job_boom

let test_map_raising_job_no_deadlock () =
  (* the all-or-nothing contract: a raising job surfaces its exception
     (after every domain is joined — a deadlock here would hang the
     test), and completed side effects survive *)
  List.iter
    (fun workers ->
      let completed = Atomic.make 0 in
      Alcotest.check_raises
        (Printf.sprintf "job raise surfaces (workers=%d)" workers)
        Job_boom
        (fun () ->
          ignore
            (Sweep.Pool.map ~workers
               (fun i ->
                 if i = 1 then raise Job_boom
                 else begin
                   Atomic.incr completed;
                   i
                 end)
               [ 0; 1; 2; 3; 4; 5 ]));
      (* at least the pre-failure item ran and its effect is visible *)
      Alcotest.(check bool)
        (Printf.sprintf "unrelated side effects survive (workers=%d)" workers)
        true
        (Atomic.get completed >= 1))
    [ 1; 3 ]

let test_map_result_isolates_failures () =
  List.iter
    (fun workers ->
      let results =
        Sweep.Pool.map_result ~workers
          (fun i -> if i mod 2 = 0 then raise Job_boom else i * 10)
          [ 0; 1; 2; 3; 4 ]
      in
      let describe = function
        | Ok v -> Printf.sprintf "ok:%d" v
        | Error Job_boom -> "boom"
        | Error e -> Printexc.to_string e
      in
      Alcotest.(check (list string))
        (Printf.sprintf "every item answered (workers=%d)" workers)
        [ "boom"; "ok:10"; "boom"; "ok:30"; "boom" ]
        (List.map describe results))
    [ 1; 4 ]

let test_executor_drains_on_shutdown () =
  let exec = Sweep.Pool.Executor.create ~workers:2 () in
  Alcotest.(check int) "workers spawned" 2 (Sweep.Pool.Executor.workers exec);
  let count = Atomic.make 0 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "submission accepted" true
      (Sweep.Pool.Executor.submit exec (fun () -> Atomic.incr count))
  done;
  Sweep.Pool.Executor.shutdown exec;
  Alcotest.(check int) "every accepted task ran before shutdown returned" 100
    (Atomic.get count);
  Alcotest.(check bool) "submissions refused after shutdown" false
    (Sweep.Pool.Executor.submit exec (fun () -> Atomic.incr count));
  Alcotest.(check int) "refused task did not run" 100 (Atomic.get count);
  (* idempotent *)
  Sweep.Pool.Executor.shutdown exec

let test_executor_survives_raising_task () =
  let seen = Atomic.make 0 in
  let exec =
    Sweep.Pool.Executor.create ~workers:1
      ~on_error:(fun _ -> Atomic.incr seen)
      ()
  in
  let count = Atomic.make 0 in
  ignore (Sweep.Pool.Executor.submit exec (fun () -> raise Job_boom));
  for _ = 1 to 10 do
    ignore (Sweep.Pool.Executor.submit exec (fun () -> Atomic.incr count))
  done;
  ignore (Sweep.Pool.Executor.submit exec (fun () -> raise Job_boom));
  Sweep.Pool.Executor.shutdown exec;
  Alcotest.(check int) "the domain survived both raising tasks" 10
    (Atomic.get count);
  Alcotest.(check int) "error callback saw both" 2 (Atomic.get seen)

let () =
  Alcotest.run "sweep"
    [
      ( "keys",
        [
          Alcotest.test_case "job key" `Quick test_job_key_stable_and_distinct;
          Alcotest.test_case "config key completeness" `Quick
            test_config_key_covers_all_fields;
          Alcotest.test_case "dedup" `Quick test_dedup;
          Alcotest.test_case "with_baselines" `Quick test_with_baselines;
        ] );
      ( "engine",
        [
          Alcotest.test_case "sequential = parallel (bit-identical)" `Quick
            test_sequential_parallel_identical;
          Alcotest.test_case "ordering + memoisation" `Quick
            test_run_batch_order_and_memoisation;
          Alcotest.test_case "prepare memoised" `Quick test_stats_memoises_prepare;
          Alcotest.test_case "progress" `Quick test_progress_reporting;
          Alcotest.test_case "failure propagation" `Quick test_failure_propagates;
          Alcotest.test_case "raising progress callback" `Quick
            test_progress_raise_propagates;
        ] );
      ( "pool",
        [
          Alcotest.test_case "raising job: no deadlock, effects survive" `Quick
            test_map_raising_job_no_deadlock;
          Alcotest.test_case "map_result isolates failures" `Quick
            test_map_result_isolates_failures;
          Alcotest.test_case "executor drains on shutdown" `Quick
            test_executor_drains_on_shutdown;
          Alcotest.test_case "executor survives raising tasks" `Quick
            test_executor_survives_raising_task;
        ] );
    ]
