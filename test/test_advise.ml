(* Tests for the static placement advisor: interprocedural regions and
   way-pressure bounds, the offline minimal-ways schedule, the energy
   envelope, the designated-way conflict replay behind PL001, report
   serialisation round-trips, and the corpus laws on a real workload. *)

module Isa = Wayplace.Isa
module Icfg = Wayplace.Cfg.Icfg
module Edge = Wayplace.Cfg.Edge
module Profile = Wayplace.Cfg.Profile
module Binary_layout = Wayplace.Layout.Binary_layout
module Geometry = Wayplace.Cache.Geometry
module Config = Wayplace.Sim.Config
module Simulator = Wayplace.Sim.Simulator
module Stats = Wayplace.Sim.Stats
module Runner = Wayplace.Sim.Runner
module Report = Wayplace.Sim.Report
module Spec = Wayplace.Workloads.Spec
module Codegen = Wayplace.Workloads.Codegen
module Tracer = Wayplace.Workloads.Tracer
module Mibench = Wayplace.Workloads.Mibench
module Finding = Wayplace.Lint.Finding
module Region = Wayplace.Advise.Region
module Oracle = Wayplace.Advise.Oracle
module Advisor = Wayplace.Advise.Advisor
module Laws = Wayplace.Advise.Laws

let alu = Isa.Instr.alu Isa.Opcode.Add
let branch = Isa.Instr.branch
let call = Isa.Instr.call
let ret = Isa.Instr.return

let dummy_spec name : Spec.t =
  {
    name;
    seed = 1;
    num_funcs = 1;
    blocks_per_func_min = 1;
    blocks_per_func_max = 8;
    instrs_per_block_min = 1;
    instrs_per_block_max = 8;
    max_loop_depth = 1;
    avg_loop_trips = 4;
    hot_func_fraction = 1.0;
    hot_call_bias = 0.5;
    if_taken_bias = 0.5;
    mem_ratio = 0.0;
    mac_ratio = 0.0;
    data_working_set_bytes = 1024;
    trace_blocks_large = 100;
    trace_blocks_small = 50;
  }

let program_of name graph : Codegen.t =
  {
    spec = dummy_spec name;
    graph;
    taken_prob = Array.make (Icfg.num_blocks graph) 0.5;
    hot_funcs = Array.make (Icfg.num_funcs graph) true;
  }

(* --- the looped kernel: one function, one natural loop, one exit.

     a (4 alu) -ft-> b (4 alu) -ft-> d (4 alu) -ft-> e (3 alu, branch)
     e -taken-> a, e -ft-> f (ret)

   Each block is one 16 B line in the original layout. *)

let looped_kernel () =
  let bld = Icfg.Builder.create () in
  let f0 = Icfg.Builder.add_func bld ~name:"main" in
  let a = Icfg.Builder.add_block bld ~func:f0 [| alu; alu; alu; alu |] in
  let b = Icfg.Builder.add_block bld ~func:f0 [| alu; alu; alu; alu |] in
  let d = Icfg.Builder.add_block bld ~func:f0 [| alu; alu; alu; alu |] in
  let e = Icfg.Builder.add_block bld ~func:f0 [| alu; alu; alu; branch |] in
  let f = Icfg.Builder.add_block bld ~func:f0 [| ret |] in
  Icfg.Builder.add_edge bld ~src:a ~dst:b Edge.Fallthrough;
  Icfg.Builder.add_edge bld ~src:b ~dst:d Edge.Fallthrough;
  Icfg.Builder.add_edge bld ~src:d ~dst:e Edge.Fallthrough;
  Icfg.Builder.add_edge bld ~src:e ~dst:a Edge.Taken;
  Icfg.Builder.add_edge bld ~src:e ~dst:f Edge.Fallthrough;
  let graph = Icfg.Builder.finish bld in
  (graph, Wayplace.original_layout graph, (a, b, d, e, f))

let looped_trace (a, b, d, e, f) : Tracer.trace =
  {
    blocks = [| a; b; d; e; a; b; d; e; f; a; b; d; e; f |];
    dynamic_instrs = 50;
    restarts = 1;
  }

let looped_profile graph (a, b, d, e, f) =
  let p = Profile.create ~num_blocks:(Icfg.num_blocks graph) in
  List.iter (fun id -> Profile.record_block_n p id 3) [ a; b; d; e ];
  Profile.record_block_n p f 2;
  p

(* 128 B / 4-way / 16 B: two sets, a 32 B way span. *)
let four_way = Geometry.make ~size_bytes:128 ~assoc:4 ~line_bytes:16

(* --- regions --------------------------------------------------------- *)

let test_region_body_and_loop () =
  let graph, layout, ((a, b, _, _, f) as ids) = looped_kernel () in
  let profile = looped_profile graph ids in
  let analysis = Region.analyze ~graph ~profile ~layout ~geometry:four_way () in
  let regions = Region.regions analysis in
  Alcotest.(check int) "body + one loop" 2 (Array.length regions);
  let body = regions.(0) and loop = regions.(1) in
  Alcotest.(check string) "body kind" "body" (Region.kind_name body.Region.kind);
  Alcotest.(check string) "loop kind" "loop(depth 1)"
    (Region.kind_name loop.Region.kind);
  Alcotest.(check int) "loop header" a loop.Region.header;
  Alcotest.(check int) "loop owns four blocks" 4
    (List.length loop.Region.blocks);
  (* five 16 B lines over two sets: 3 in set 0, 2 in set 1 *)
  Alcotest.(check int) "body lines" 5 body.Region.distinct_lines;
  Alcotest.(check int) "body pressure" 3 body.Region.max_set_pressure;
  Alcotest.(check int) "body min ways" 3 body.Region.min_ways;
  Alcotest.(check bool) "body fits" true body.Region.fits;
  Alcotest.(check int) "loop lines" 4 loop.Region.distinct_lines;
  Alcotest.(check int) "loop pressure" 2 loop.Region.max_set_pressure;
  Alcotest.(check int) "loop min ways" 2 loop.Region.min_ways;
  (* innermost: loop blocks map to the loop, the exit to the body *)
  Alcotest.(check int) "b is innermost in the loop" loop.Region.id
    (Region.innermost analysis b).Region.id;
  Alcotest.(check int) "f is innermost in the body" body.Region.id
    (Region.innermost analysis f).Region.id;
  (* both min_ways are weighted, so the global bound is the body's *)
  Alcotest.(check int) "static bound" 3 (Region.static_min_ways analysis)

let test_region_interprocedural_closure () =
  (* main's loop calls a callee: the loop's closure (and pressure) must
     include the callee's lines. *)
  let bld = Icfg.Builder.create () in
  let f0 = Icfg.Builder.add_func bld ~name:"main" in
  let f1 = Icfg.Builder.add_func bld ~name:"callee" in
  let h = Icfg.Builder.add_block bld ~func:f0 [| alu; alu; alu; call |] in
  let t = Icfg.Builder.add_block bld ~func:f0 [| alu; alu; alu; branch |] in
  let x = Icfg.Builder.add_block bld ~func:f0 [| ret |] in
  let c0 = Icfg.Builder.add_block bld ~func:f1 [| alu; alu; alu; alu |] in
  let c1 = Icfg.Builder.add_block bld ~func:f1 [| alu; alu; alu; ret |] in
  Icfg.Builder.add_edge bld ~src:h ~dst:c0 Edge.Call_to;
  Icfg.Builder.add_edge bld ~src:h ~dst:t Edge.Fallthrough;
  Icfg.Builder.add_edge bld ~src:t ~dst:h Edge.Taken;
  Icfg.Builder.add_edge bld ~src:t ~dst:x Edge.Fallthrough;
  Icfg.Builder.add_edge bld ~src:c0 ~dst:c1 Edge.Fallthrough;
  let graph = Icfg.Builder.finish bld in
  let layout = Wayplace.original_layout graph in
  let profile = Profile.create ~num_blocks:(Icfg.num_blocks graph) in
  List.iter (fun id -> Profile.record_block_n profile id 5) [ h; t; c0; c1 ];
  let analysis = Region.analyze ~graph ~profile ~layout ~geometry:four_way () in
  let loop =
    match
      List.find_opt
        (fun (r : Region.t) -> r.Region.kind <> Region.Body)
        (Array.to_list (Region.regions analysis))
    with
    | Some r -> r
    | None -> Alcotest.fail "no loop region"
  in
  Alcotest.(check (list int)) "loop owns only main's loop blocks" [ h; t ]
    loop.Region.blocks;
  Alcotest.(check bool) "closure pulls in the callee" true
    (List.mem c0 loop.Region.closure_blocks
    && List.mem c1 loop.Region.closure_blocks);
  (* closure lines: h, t and — since c0/c1 straddle lines after the
     4 B exit block — three more, 3 of the 5 landing in set 0 *)
  Alcotest.(check int) "closure pressure counts callee lines" 3
    loop.Region.max_set_pressure;
  (* the callee's Body region closure must NOT leak back into main *)
  let callee_body =
    match
      List.find_opt
        (fun (r : Region.t) ->
          r.Region.kind = Region.Body && r.Region.func = f1)
        (Array.to_list (Region.regions analysis))
    with
    | Some r -> r
    | None -> Alcotest.fail "no callee body region"
  in
  Alcotest.(check bool) "callee closure excludes main" false
    (List.mem h callee_body.Region.closure_blocks)

let test_region_profile_mismatch () =
  let graph, layout, _ = looped_kernel () in
  let wrong = Profile.create ~num_blocks:2 in
  match Region.analyze ~graph ~profile:wrong ~layout ~geometry:four_way () with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* --- the oracle ------------------------------------------------------ *)

let test_area_for () =
  let g = Geometry.make ~size_bytes:(32 * 1024) ~assoc:32 ~line_bytes:32 in
  (* way span is 1024 B at this geometry *)
  Alcotest.(check int) "one way, one page" 1024
    (Oracle.area_for ~geometry:g ~page_bytes:1024 ~ways:1);
  Alcotest.(check int) "three ways" 3072
    (Oracle.area_for ~geometry:g ~page_bytes:1024 ~ways:3);
  Alcotest.(check int) "page rounding dominates" 4096
    (Oracle.area_for ~geometry:g ~page_bytes:4096 ~ways:1);
  (match Oracle.area_for ~geometry:g ~page_bytes:1024 ~ways:0 with
  | _ -> Alcotest.fail "ways 0 must raise"
  | exception Invalid_argument _ -> ());
  match Oracle.area_for ~geometry:g ~page_bytes:1000 ~ways:1 with
  | _ -> Alcotest.fail "non-power-of-two page must raise"
  | exception Invalid_argument _ -> ()

let check_schedule_shape ~page_bytes schedule =
  (match schedule with
  | (0, _) :: _ -> ()
  | _ -> Alcotest.fail "schedule must start at trace block 0");
  let rec go = function
    | [] | [ _ ] -> ()
    | (i1, a1) :: ((i2, a2) :: _ as rest) ->
        Alcotest.(check bool) "indices strictly ascend" true (i1 < i2);
        Alcotest.(check bool) "no consecutive equal areas" true (a1 <> a2);
        go rest
  in
  go schedule;
  List.iter
    (fun (_, area) ->
      Alcotest.(check bool) "area is a positive page multiple" true
        (area > 0 && area mod page_bytes = 0))
    schedule

let test_schedule_shape () =
  let graph, layout, ids = looped_kernel () in
  let profile = looped_profile graph ids in
  let analysis = Region.analyze ~graph ~profile ~layout ~geometry:four_way () in
  let trace = looped_trace ids in
  let schedule = Oracle.schedule ~min_run:1 ~analysis ~trace ~page_bytes:16 () in
  check_schedule_shape ~page_bytes:16 schedule;
  (* hysteresis: a huge min_run collapses everything into one entry,
     keeping the largest area seen *)
  let merged = Oracle.schedule ~min_run:1000 ~analysis ~trace ~page_bytes:16 () in
  (match merged with
  | [ (0, area) ] ->
      let max_area =
        List.fold_left (fun acc (_, a) -> max acc a) 0 schedule
      in
      Alcotest.(check int) "merged run keeps the max area" max_area area
  | _ -> Alcotest.failf "expected one merged entry, got %d" (List.length merged));
  match Oracle.schedule ~analysis ~trace:{ trace with Tracer.blocks = [||] } ~page_bytes:16 () with
  | _ -> Alcotest.fail "empty trace must raise"
  | exception Invalid_argument _ -> ()

let wp_config ~geometry ~page_bytes ~area_bytes =
  let c =
    Config.with_icache (Config.xscale (Config.Way_placement { area_bytes })) geometry
  in
  { c with Config.page_bytes }

let baseline_energy = (Config.xscale Config.Baseline).Config.energy

let test_envelope_brackets_run () =
  let graph, layout, ids = looped_kernel () in
  let program = program_of "looped" graph in
  let trace = looped_trace ids in
  let env =
    Oracle.envelope ~graph ~layout ~trace ~geometry:four_way
      ~energy:baseline_energy ()
  in
  Alcotest.(check int) "fetches are exact" 50 env.Oracle.env_fetches;
  Alcotest.(check bool) "lo <= hi" true
    (env.Oracle.env_lo_pj <= env.Oracle.env_hi_pj);
  let stats =
    Simulator.run
      ~config:(wp_config ~geometry:four_way ~page_bytes:16 ~area_bytes:64)
      ~program ~layout ~trace
  in
  let pj = Stats.icache_energy_pj stats in
  Alcotest.(check bool) "real run inside the envelope" true
    (pj >= env.Oracle.env_lo_pj -. 1e-6 && pj <= env.Oracle.env_hi_pj +. 1e-6)

let test_check_bounds_clean () =
  let graph, layout, ids = looped_kernel () in
  let profile = looped_profile graph ids in
  let analysis = Region.analyze ~graph ~profile ~layout ~geometry:four_way () in
  Alcotest.(check (list string)) "bounds hold" []
    (Oracle.check_bounds ~analysis ~graph ~layout ~trace:(looped_trace ids))

(* --- the conflict kernel: three one-line blocks on a 2-way cache with
   one set (32 B / 2-way / 16 B).  Designated ways of the lines at
   base, base+16, base+32 are 0, 1, 0: the first and third block fight
   over slot (set 0, way 0) on every loop iteration. *)

let conflict_kernel () =
  let bld = Icfg.Builder.create () in
  let f0 = Icfg.Builder.add_func bld ~name:"main" in
  let a = Icfg.Builder.add_block bld ~func:f0 [| alu; alu; alu; alu |] in
  let b = Icfg.Builder.add_block bld ~func:f0 [| alu; alu; alu; alu |] in
  let c = Icfg.Builder.add_block bld ~func:f0 [| alu; alu; alu; branch |] in
  let x = Icfg.Builder.add_block bld ~func:f0 [| ret |] in
  Icfg.Builder.add_edge bld ~src:a ~dst:b Edge.Fallthrough;
  Icfg.Builder.add_edge bld ~src:b ~dst:c Edge.Fallthrough;
  Icfg.Builder.add_edge bld ~src:c ~dst:a Edge.Taken;
  Icfg.Builder.add_edge bld ~src:c ~dst:x Edge.Fallthrough;
  let graph = Icfg.Builder.finish bld in
  (graph, Wayplace.original_layout graph, (a, b, c, x))

let conflict_geometry = Geometry.make ~size_bytes:32 ~assoc:2 ~line_bytes:16

let conflict_trace (a, b, c, x) : Tracer.trace =
  {
    blocks = [| a; b; c; a; b; c; a; b; c; x |];
    dynamic_instrs = 37;
    restarts = 0;
  }

let test_replay_area_conflict () =
  let graph, layout, ids = conflict_kernel () in
  let replay =
    Oracle.replay_area ~graph ~layout ~trace:(conflict_trace ids)
      ~geometry:conflict_geometry ~area_bytes:48 ()
  in
  Alcotest.(check int) "three distinct area lines" 3
    replay.Oracle.area_distinct_lines;
  Alcotest.(check bool) "conflict misses observed" true
    (replay.Oracle.area_misses > replay.Oracle.area_distinct_lines);
  match replay.Oracle.conflicts with
  | [ cfl ] ->
      Alcotest.(check int) "the contested slot is (0, 0)" 0 cfl.Oracle.slot_set;
      Alcotest.(check int) "way 0" 0 cfl.Oracle.slot_way;
      Alcotest.(check int) "two lines alternate" 2
        (List.length cfl.Oracle.lines);
      Alcotest.(check bool) "evictions counted" true (cfl.Oracle.evictions > 0)
  | cs -> Alcotest.failf "expected one conflicted slot, got %d" (List.length cs)

let conflict_report () =
  let graph, layout, ((a, b, c, x) as ids) = conflict_kernel () in
  let profile = Profile.create ~num_blocks:(Icfg.num_blocks graph) in
  List.iter (fun id -> Profile.record_block_n profile id 3) [ a; b; c ];
  Profile.record_block_n profile x 1;
  Advisor.analyze ~benchmark:"conflict" ~graph ~profile
    ~trace:(conflict_trace ids) ~layout ~geometry:conflict_geometry
    ~page_bytes:16 ~area_bytes:48 ~energy:baseline_energy ()

let test_pl001_fires_and_reproduces () =
  let report = conflict_report () in
  let pl001 =
    List.filter (fun (f : Finding.t) -> f.Finding.code = "PL001")
      report.Advisor.findings
  in
  Alcotest.(check int) "one PL001" 1 (List.length pl001);
  Alcotest.(check string) "PL001 is a warning" "warning"
    (Finding.severity_name (List.hd pl001).Finding.severity);
  (* the reproduction law: the real run's misses are at least the
     replay floor *)
  let graph, layout, ids = conflict_kernel () in
  let stats =
    Simulator.run
      ~config:(wp_config ~geometry:conflict_geometry ~page_bytes:16 ~area_bytes:48)
      ~program:(program_of "conflict" graph)
      ~layout ~trace:(conflict_trace ids)
  in
  let floor =
    report.Advisor.replay.Oracle.area_misses
    + report.Advisor.replay.Oracle.non_area_distinct_lines
  in
  Alcotest.(check bool) "sim misses >= replay floor" true
    (stats.Stats.icache_misses >= floor);
  (* exit codes: PL001 is a warning — nonzero only under --strict *)
  Alcotest.(check int) "lax exit" 0 (Advisor.exit_code report);
  Alcotest.(check int) "strict exit" 2 (Advisor.exit_code ~strict:true report)

let test_advisor_input_guards () =
  let graph, layout, ids = conflict_kernel () in
  let profile = Profile.create ~num_blocks:(Icfg.num_blocks graph) in
  let analyze ~page_bytes ~area_bytes =
    Advisor.analyze ~benchmark:"x" ~graph ~profile ~trace:(conflict_trace ids)
      ~layout ~geometry:conflict_geometry ~page_bytes ~area_bytes
      ~energy:baseline_energy ()
  in
  (match analyze ~page_bytes:48 ~area_bytes:48 with
  | _ -> Alcotest.fail "non-power-of-two page must raise"
  | exception Invalid_argument _ -> ());
  match analyze ~page_bytes:16 ~area_bytes:40 with
  | _ -> Alcotest.fail "area not a page multiple must raise"
  | exception Invalid_argument _ -> ()

(* --- serialisation --------------------------------------------------- *)

let json_eq = Alcotest.testable
    (fun ppf j -> Format.pp_print_string ppf (Report.json_to_string j))
    (fun a b -> Report.json_to_string a = Report.json_to_string b)

let test_report_json_roundtrip () =
  let report = conflict_report () in
  let j = Advisor.to_json report in
  match Report.parse (Report.json_to_string j) with
  | Ok j' -> Alcotest.check json_eq "parse (emit report) = report" j j'
  | Error msg -> Alcotest.failf "report JSON unparseable: %s" msg

let schedule_roundtrip_prop =
  QCheck.Test.make ~count:200 ~name:"schedule json roundtrip"
    QCheck.(list (pair (int_bound 1_000_000) (int_bound 1_000_000)))
    (fun entries ->
      let j = Advisor.schedule_to_json entries in
      match Report.parse (Report.json_to_string j) with
      | Ok j' -> Advisor.schedule_of_json j' = Ok entries
      | Error _ -> false)

let test_schedule_of_json_errors () =
  Alcotest.(check bool) "non-array rejected" true
    (Result.is_error (Advisor.schedule_of_json (Report.Jint 3)));
  Alcotest.(check bool) "bad entry rejected" true
    (Result.is_error
       (Advisor.schedule_of_json
          (Report.Jlist [ Report.Jobj [ ("at_block", Report.Jint 0) ] ])))

let test_csv_shape_and_escaping () =
  let graph, layout, ids = conflict_kernel () in
  let profile = Profile.create ~num_blocks:(Icfg.num_blocks graph) in
  let report =
    Advisor.analyze ~benchmark:"wei\"rd,name" ~graph ~profile
      ~trace:(conflict_trace ids) ~layout ~geometry:conflict_geometry
      ~page_bytes:16 ~area_bytes:48 ~energy:baseline_energy ()
  in
  let rows = Advisor.csv_rows report in
  Alcotest.(check bool) "one row per region" true
    (List.length rows = List.length report.Advisor.regions);
  List.iter
    (fun row ->
      Alcotest.(check int) "row width matches header"
        (List.length Advisor.csv_header)
        (List.length row))
    rows;
  (* RFC 4180: the quoted field doubles embedded quotes *)
  let line = Report.csv_line (List.hd rows) in
  Alcotest.(check bool) "benchmark field is escaped" true
    (String.length line >= 14 && String.sub line 0 14 = "\"wei\"\"rd,name\"")

(* --- the corpus laws on a real workload ------------------------------ *)

let test_laws_clean_on_crc () =
  let prep = Runner.prepare (Mibench.find "crc") in
  let geometry = Geometry.make ~size_bytes:1024 ~assoc:8 ~line_bytes:32 in
  Alcotest.(check (list string)) "laws hold on crc" []
    (Laws.check ~geometry ~page_bytes:1024 ~area_bytes:2048
       ~program:prep.Runner.program ~profile:prep.Runner.profile_small
       ~trace:prep.Runner.trace_large ~layout:prep.Runner.placed_layout ())

let test_laws_clean_on_conflict_kernel () =
  let graph, layout, ((a, b, c, x) as ids) = conflict_kernel () in
  let profile = Profile.create ~num_blocks:(Icfg.num_blocks graph) in
  List.iter (fun id -> Profile.record_block_n profile id 3) [ a; b; c ];
  Profile.record_block_n profile x 1;
  Alcotest.(check (list string)) "laws hold on the conflict kernel" []
    (Laws.check ~geometry:conflict_geometry ~page_bytes:16 ~area_bytes:48
       ~program:(program_of "conflict" graph)
       ~profile ~trace:(conflict_trace ids) ~layout ())

let () =
  Alcotest.run "advise"
    [
      ( "region",
        [
          Alcotest.test_case "body and loop" `Quick test_region_body_and_loop;
          Alcotest.test_case "interprocedural closure" `Quick
            test_region_interprocedural_closure;
          Alcotest.test_case "profile mismatch" `Quick
            test_region_profile_mismatch;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "area_for" `Quick test_area_for;
          Alcotest.test_case "schedule shape" `Quick test_schedule_shape;
          Alcotest.test_case "envelope brackets a run" `Quick
            test_envelope_brackets_run;
          Alcotest.test_case "bounds clean" `Quick test_check_bounds_clean;
          Alcotest.test_case "replay conflict" `Quick test_replay_area_conflict;
        ] );
      ( "advisor",
        [
          Alcotest.test_case "PL001 fires and reproduces" `Quick
            test_pl001_fires_and_reproduces;
          Alcotest.test_case "input guards" `Quick test_advisor_input_guards;
        ] );
      ( "serialisation",
        [
          Alcotest.test_case "report json roundtrip" `Quick
            test_report_json_roundtrip;
          QCheck_alcotest.to_alcotest schedule_roundtrip_prop;
          Alcotest.test_case "schedule json errors" `Quick
            test_schedule_of_json_errors;
          Alcotest.test_case "csv shape and escaping" `Quick
            test_csv_shape_and_escaping;
        ] );
      ( "laws",
        [
          Alcotest.test_case "clean on crc" `Quick test_laws_clean_on_crc;
          Alcotest.test_case "clean on the conflict kernel" `Quick
            test_laws_clean_on_conflict_kernel;
        ] );
    ]
