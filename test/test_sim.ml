(* Tests for the machine configuration, data streams, D-memory, the
   fetch engine and the simulator. *)

module Config = Wayplace.Sim.Config
module Stats = Wayplace.Sim.Stats
module Data_stream = Wayplace.Sim.Data_stream
module Dmem = Wayplace.Sim.Dmem
module Fetch_engine = Wayplace.Sim.Fetch_engine
module Simulator = Wayplace.Sim.Simulator
module Runner = Wayplace.Sim.Runner
module Geometry = Wayplace.Cache.Geometry
module Instr = Wayplace.Isa.Instr
module Mibench = Wayplace.Workloads.Mibench
module Tracer = Wayplace.Workloads.Tracer

let wp16 = Config.Way_placement { area_bytes = 16 * 1024 }

(* --- Config --- *)

let test_config_xscale_defaults () =
  let c = Config.xscale Config.Baseline in
  Alcotest.(check int) "icache size" (32 * 1024) c.Config.icache.Geometry.size_bytes;
  Alcotest.(check int) "assoc" 32 c.Config.icache.Geometry.assoc;
  Alcotest.(check int) "line" 32 c.Config.icache.Geometry.line_bytes;
  Alcotest.(check int) "itlb" 32 c.Config.itlb_entries;
  Alcotest.(check int) "page" 1024 c.Config.page_bytes;
  Alcotest.(check int) "memory" 50 c.Config.memory_latency;
  Alcotest.(check bool) "validates" true (Config.validate c = Ok ())

let test_config_validation () =
  let base = Config.xscale Config.Baseline in
  let bad area = Config.with_scheme base (Config.Way_placement { area_bytes = area }) in
  Alcotest.(check bool) "zero area" true (Result.is_error (Config.validate (bad 0)));
  Alcotest.(check bool) "unaligned area" true
    (Result.is_error (Config.validate (bad 1500)));
  Alcotest.(check bool) "page-multiple ok" true (Config.validate (bad 2048) = Ok ())

let test_config_scheme_names () =
  Alcotest.(check string) "baseline" "baseline" (Config.scheme_name Config.Baseline);
  Alcotest.(check string) "wp" "way-placement(16KB)" (Config.scheme_name wp16);
  Alcotest.(check string) "wm" "way-memoization"
    (Config.scheme_name Config.Way_memoization)

(* --- Data_stream --- *)

let test_data_stream_deterministic () =
  let a = Data_stream.create ~seed:9 and b = Data_stream.create ~seed:9 in
  for _ = 1 to 50 do
    Alcotest.(check int) "same stream"
      (Data_stream.next a (Instr.Random_within 65536))
      (Data_stream.next b (Instr.Random_within 65536))
  done

let test_data_stream_sequential () =
  let s = Data_stream.create ~seed:1 in
  let a0 = Data_stream.next s Instr.Sequential in
  let a1 = Data_stream.next s Instr.Sequential in
  Alcotest.(check int) "stride 4" 4 (a1 - a0);
  Alcotest.(check int) "starts at the data segment" Data_stream.base_address a0

let test_data_stream_aligned () =
  let s = Data_stream.create ~seed:2 in
  for _ = 1 to 100 do
    let a = Data_stream.next s (Instr.Random_within 4096) in
    Alcotest.(check int) "word aligned" 0 (a land 3)
  done

let test_data_stream_no_data () =
  let s = Data_stream.create ~seed:3 in
  Alcotest.check_raises "No_data" (Invalid_argument "Data_stream.next: No_data")
    (fun () -> ignore (Data_stream.next s Instr.No_data))

(* --- Dmem --- *)

let test_dmem_miss_then_hit () =
  let dmem = Dmem.create (Config.xscale Config.Baseline) in
  let stats = Stats.create () in
  let stall1 = Dmem.access dmem stats 0x4000_0000 ~write:false in
  Alcotest.(check bool) "cold miss stalls" true (stall1 >= 50);
  let stall2 = Dmem.access dmem stats 0x4000_0000 ~write:false in
  Alcotest.(check int) "hit has no stall" 0 stall2;
  Alcotest.(check int) "accesses" 2 stats.Stats.dcache_accesses;
  Alcotest.(check int) "one miss" 1 stats.Stats.dcache_misses;
  Alcotest.(check bool) "energy charged" true
    (Wayplace.Energy.Account.dcache_pj stats.Stats.account > 0.0)

(* --- Fetch_engine helpers --- *)

let code_base = Simulator.code_base

let engine scheme =
  Fetch_engine.create (Config.xscale scheme) ~code_base

let fetch_seq e stats addr n =
  for i = 0 to n - 1 do
    ignore (Fetch_engine.fetch e stats (addr + (4 * i)))
  done

(* --- Fetch_engine: baseline --- *)

let test_baseline_tag_comparisons () =
  let e = engine Config.Baseline in
  let stats = Stats.create () in
  (* Three fetches in distinct lines: 32 comparisons each. *)
  List.iter (fun a -> ignore (Fetch_engine.fetch e stats a))
    [ code_base; code_base + 32; code_base + 64 ];
  Alcotest.(check int) "3 x 32" 96 stats.Stats.tag_comparisons;
  Alcotest.(check int) "all misses" 3 stats.Stats.icache_misses

let test_baseline_same_line_elision () =
  (* The baseline machine also elides same-line tag checks (XScale
     sequential-access behaviour). *)
  let e = engine Config.Baseline in
  let stats = Stats.create () in
  fetch_seq e stats code_base 8;
  Alcotest.(check int) "7 of 8 fetches same-line" 7 stats.Stats.same_line_fetches;
  Alcotest.(check int) "32 comparisons total" 32 stats.Stats.tag_comparisons

let test_elision_ablation () =
  let config =
    Config.with_same_line_elision (Config.xscale Config.Baseline) false
  in
  let e = Fetch_engine.create config ~code_base in
  let stats = Stats.create () in
  fetch_seq e stats code_base 8;
  Alcotest.(check int) "no elision" 0 stats.Stats.same_line_fetches;
  Alcotest.(check int) "8 x 32" 256 stats.Stats.tag_comparisons

let test_baseline_miss_stall () =
  let e = engine Config.Baseline in
  let stats = Stats.create () in
  (* First fetch: TLB walk + cache miss. *)
  let stall = Fetch_engine.fetch e stats code_base in
  Alcotest.(check int) "walk + memory" 100 stall;
  let stall2 = Fetch_engine.fetch e stats (code_base + 32) in
  Alcotest.(check int) "same page, miss only" 50 stall2;
  let stall3 = Fetch_engine.fetch e stats code_base in
  Alcotest.(check int) "hit" 0 stall3

(* --- Fetch_engine: way-placement --- *)

let test_wp_area_predicate () =
  let e = engine wp16 in
  Alcotest.(check bool) "inside" true
    (Fetch_engine.way_placed_addr e (code_base + 1000));
  Alcotest.(check bool) "boundary" false
    (Fetch_engine.way_placed_addr e (code_base + (16 * 1024)));
  Alcotest.(check bool) "before code" false (Fetch_engine.way_placed_addr e 0);
  let b = engine Config.Baseline in
  Alcotest.(check bool) "baseline has no area" false
    (Fetch_engine.way_placed_addr b (code_base + 4))

let test_wp_hint_warmup_and_single_way () =
  let e = engine wp16 in
  let stats = Stats.create () in
  (* First fetch: hint cold (predicts normal), page is way-placed ->
     missed saving, full access. *)
  ignore (Fetch_engine.fetch e stats code_base);
  Alcotest.(check int) "missed saving once" 1 stats.Stats.hint_missed_saving;
  Alcotest.(check int) "full width" 32 stats.Stats.tag_comparisons;
  (* Next line: hint now predicts way-placed and is right: 1 compare. *)
  ignore (Fetch_engine.fetch e stats (code_base + 32));
  Alcotest.(check int) "correct wp" 1 stats.Stats.hint_correct_wp;
  Alcotest.(check int) "one more comparison" 33 stats.Stats.tag_comparisons;
  Alcotest.(check int) "wp fetch counted" 1 stats.Stats.wp_fetches

let test_wp_reaccess_penalty () =
  let e = engine wp16 in
  let stats = Stats.create () in
  (* Warm the hint inside the area... *)
  ignore (Fetch_engine.fetch e stats code_base);
  ignore (Fetch_engine.fetch e stats (code_base + 32));
  (* ...then jump outside the area: hint says way-placed, page is not:
     wasted probe + full access + 1 cycle. *)
  let outside = code_base + (20 * 1024) in
  let stall = Fetch_engine.fetch e stats outside in
  Alcotest.(check int) "re-access recorded" 1 stats.Stats.hint_reaccess;
  (* Stall = 1 (re-access) + TLB walk (50) + miss (50). *)
  Alcotest.(check int) "penalty cycle included" 101 stall

let test_wp_lines_land_in_designated_way () =
  let config = Config.xscale wp16 in
  let e = Fetch_engine.create config ~code_base in
  let stats = Stats.create () in
  (* Fetch several way-placed lines, then re-fetch: every re-fetch must
     hit through the single-way probe, proving the fill went to the
     designated way. *)
  let addrs = List.init 8 (fun i -> code_base + (i * 1024 * 2)) in
  List.iter (fun a -> ignore (Fetch_engine.fetch e stats a)) addrs;
  let before = stats.Stats.icache_misses in
  List.iter (fun a -> ignore (Fetch_engine.fetch e stats a)) addrs;
  Alcotest.(check int) "all re-fetches hit" before stats.Stats.icache_misses

let test_wp_flush () =
  let e = engine wp16 in
  let stats = Stats.create () in
  ignore (Fetch_engine.fetch e stats code_base);
  Fetch_engine.flush e;
  let stall = Fetch_engine.fetch e stats code_base in
  Alcotest.(check bool) "cold after flush" true (stall > 0)

(* --- Fetch_engine: way-memoization --- *)

let test_wm_links_and_counters () =
  let e = engine Config.Way_memoization in
  let stats = Stats.create () in
  (* Two line-crossing fetch pairs; second pass follows links. *)
  ignore (Fetch_engine.fetch e stats (code_base + 28));
  ignore (Fetch_engine.fetch e stats (code_base + 32));
  Alcotest.(check int) "link written" 1 stats.Stats.link_writes;
  Fetch_engine.reset_stream e;
  ignore (Fetch_engine.fetch e stats (code_base + 28));
  ignore (Fetch_engine.fetch e stats (code_base + 32));
  Alcotest.(check int) "link followed" 1 stats.Stats.link_follows

let test_wm_same_line_uses_memo_factor () =
  let e = engine Config.Way_memoization in
  let stats = Stats.create () in
  fetch_seq e stats code_base 8;
  let memo_icache = Wayplace.Energy.Account.icache_pj stats.Stats.account in
  let b = engine Config.Baseline in
  let bstats = Stats.create () in
  fetch_seq b bstats code_base 8;
  let base_icache = Wayplace.Energy.Account.icache_pj bstats.Stats.account in
  Alcotest.(check bool) "memo pays the 21% data overhead" true
    (memo_icache > base_icache)

(* A same-line sequential fetch on the filter-cache machine streams
   from the L0, so it must be charged the L0's (much smaller) data-word
   energy, not the 32KB L1's. *)
let test_filter_same_line_charges_l0 () =
  let e = engine (Config.Filter_cache { l0_bytes = 512 }) in
  let stats = Stats.create () in
  ignore (Fetch_engine.fetch e stats code_base);
  let before = Wayplace.Energy.Account.icache_pj stats.Stats.account in
  ignore (Fetch_engine.fetch e stats (code_base + 4));
  let delta = Wayplace.Energy.Account.icache_pj stats.Stats.account -. before in
  let params = Wayplace.Energy.Params.default in
  let l0_energies =
    Wayplace.Energy.Cam_energy.of_geometry params
      (Geometry.make ~size_bytes:512 ~assoc:1 ~line_bytes:32)
  in
  let l1_energies =
    Wayplace.Energy.Cam_energy.of_geometry params
      (Config.xscale Config.Baseline).Config.icache
  in
  Alcotest.(check (float 1e-9)) "elided fetch pays the L0 data word"
    l0_energies.Wayplace.Energy.Cam_energy.data_word_pj delta;
  Alcotest.(check bool) "L0 word strictly cheaper than L1 word" true
    (l0_energies.Wayplace.Energy.Cam_energy.data_word_pj
    < l1_energies.Wayplace.Energy.Cam_energy.data_word_pj)

(* --- Fetch_engine: way prediction --- *)

let test_waypred_counters () =
  let e = engine Config.Way_prediction in
  let stats = Stats.create () in
  ignore (Fetch_engine.fetch e stats code_base);
  Alcotest.(check int) "cold set counted wrong" 1 stats.Stats.waypred_wrong;
  Fetch_engine.reset_stream e;
  ignore (Fetch_engine.fetch e stats code_base);
  Alcotest.(check int) "retrained prediction" 1 stats.Stats.waypred_correct;
  Alcotest.(check int) "single comparison on correct" 33 stats.Stats.tag_comparisons

let test_waypred_penalty_cycle () =
  let e = engine Config.Way_prediction in
  let stats = Stats.create () in
  (* Warm the line and TLB first. *)
  ignore (Fetch_engine.fetch e stats code_base);
  Fetch_engine.reset_stream e;
  let stall = Fetch_engine.fetch e stats code_base in
  Alcotest.(check int) "correct prediction has no stall" 0 stall

(* --- Fetch_engine: filter cache --- *)

let filter_scheme = Config.Filter_cache { l0_bytes = 512 }

let test_filter_counters () =
  let e = engine filter_scheme in
  let stats = Stats.create () in
  ignore (Fetch_engine.fetch e stats code_base);
  Alcotest.(check int) "first access misses L0" 1 stats.Stats.l0_misses;
  Fetch_engine.reset_stream e;
  ignore (Fetch_engine.fetch e stats code_base);
  Alcotest.(check int) "second access hits L0" 1 stats.Stats.l0_hits

let test_filter_l0_validation () =
  let bad = Config.with_scheme (Config.xscale Config.Baseline)
      (Config.Filter_cache { l0_bytes = 48 }) in
  Alcotest.(check bool) "non power of two L0" true
    (Result.is_error (Config.validate bad))

(* --- leakage and drowsy --- *)

let leak_cfg scheme = Config.with_leakage (Config.xscale scheme) true

let crc_prep = lazy (Runner.prepare (Mibench.find "crc"))
let run_crc config = Runner.run_scheme (Lazy.force crc_prep) config

let test_leakage_validation () =
  let no_leak =
    Config.with_drowsy (Config.xscale Config.Baseline) (Some 100)
  in
  Alcotest.(check bool) "drowsy without leakage rejected" true
    (Result.is_error (Config.validate no_leak));
  let wm_drowsy =
    Config.with_drowsy (leak_cfg Config.Way_memoization) (Some 100)
  in
  Alcotest.(check bool) "drowsy unsupported for way-memoization" true
    (Result.is_error (Config.validate wm_drowsy));
  Alcotest.(check bool) "baseline drowsy fine" true
    (Config.validate (Config.with_drowsy (leak_cfg Config.Baseline) (Some 100))
    = Ok ())

let test_leakage_charged () =
  let off = run_crc (Config.xscale Config.Baseline) in
  let on = run_crc (leak_cfg Config.Baseline) in
  Alcotest.(check bool) "leakage adds i-cache energy" true
    (Stats.icache_energy_pj on > Stats.icache_energy_pj off);
  Alcotest.(check int) "cycles unaffected" off.Stats.cycles on.Stats.cycles

let test_drowsy_reduces_leakage () =
  let awake = run_crc (leak_cfg Config.Baseline) in
  let drowsy =
    run_crc (Config.with_drowsy (leak_cfg Config.Baseline) (Some 2000))
  in
  Alcotest.(check bool) "drowsy saves leakage" true
    (Stats.icache_energy_pj drowsy < Stats.icache_energy_pj awake);
  Alcotest.(check bool) "wakes recorded" true (drowsy.Stats.drowsy_wakes > 0);
  Alcotest.(check bool) "wake cycles charged" true
    (drowsy.Stats.cycles >= awake.Stats.cycles)

(* --- runtime area resizing --- *)

let test_resize_validation () =
  let e = engine Config.Baseline in
  Alcotest.(check bool) "baseline cannot resize" true
    (match Fetch_engine.resize_area e ~area_bytes:1024 with
    | () -> false
    | exception Invalid_argument _ -> true);
  let e = engine wp16 in
  Alcotest.(check bool) "bad size rejected" true
    (match Fetch_engine.resize_area e ~area_bytes:0 with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_resize_changes_area () =
  let e = engine wp16 in
  let far = code_base + (20 * 1024) in
  Alcotest.(check bool) "outside 16KB area" false (Fetch_engine.way_placed_addr e far);
  Fetch_engine.resize_area e ~area_bytes:(32 * 1024);
  Alcotest.(check bool) "inside 32KB area" true (Fetch_engine.way_placed_addr e far)

let test_resize_flushes () =
  let e = engine wp16 in
  let stats = Stats.create () in
  ignore (Fetch_engine.fetch e stats code_base);
  Fetch_engine.resize_area e ~area_bytes:(8 * 1024);
  let stall = Fetch_engine.fetch e stats code_base in
  Alcotest.(check bool) "cold after resize" true (stall > 0)

let test_resize_schedule_validation () =
  let prep = Runner.prepare Mibench.tiny in
  let config = Config.xscale wp16 in
  Alcotest.(check bool) "descending schedule rejected" true
    (match
       Simulator.run_with_resizes
         ~schedule:[ (10, 1024); (5, 2048) ]
         ~config ~program:prep.Runner.program ~layout:prep.Runner.placed_layout
         ~trace:prep.Runner.trace_large
     with
    | (_ : Stats.t) -> false
    | exception Invalid_argument _ -> true)

let test_resize_schedule_runs () =
  let prep = Runner.prepare Mibench.tiny in
  let config = Config.xscale wp16 in
  let n = Array.length prep.Runner.trace_large.Tracer.blocks in
  let stats =
    Simulator.run_with_resizes
      ~schedule:[ (n / 2, 1024) ]
      ~config ~program:prep.Runner.program ~layout:prep.Runner.placed_layout
      ~trace:prep.Runner.trace_large
  in
  let static = Runner.run_scheme prep config in
  Alcotest.(check int) "same fetches" static.Stats.fetches stats.Stats.fetches;
  Alcotest.(check bool) "flush caused extra misses" true
    (stats.Stats.icache_misses >= static.Stats.icache_misses)

let run_tiny_with_resizes prep ~schedule =
  Simulator.run_with_resizes ~schedule
    ~config:(Config.xscale wp16)
    ~program:prep.Runner.program ~layout:prep.Runner.placed_layout
    ~trace:prep.Runner.trace_large

let test_resize_schedule_empty () =
  let prep = Runner.prepare Mibench.tiny in
  let plain = Runner.run_scheme prep (Config.xscale wp16) in
  let resized = run_tiny_with_resizes prep ~schedule:[] in
  Alcotest.(check bool) "empty schedule is bit-identical to run" true
    (Stats.equal plain resized)

let test_resize_schedule_at_index_zero () =
  (* A resize before the first block is the same machine as one built
     with that area from the start: the flush hits cold caches. *)
  let prep = Runner.prepare Mibench.tiny in
  let resized = run_tiny_with_resizes prep ~schedule:[ (0, 2048) ] in
  let static =
    Simulator.run
      ~config:(Config.xscale (Config.Way_placement { area_bytes = 2048 }))
      ~program:prep.Runner.program ~layout:prep.Runner.placed_layout
      ~trace:prep.Runner.trace_large
  in
  Alcotest.(check bool) "equals a machine born with the new area" true
    (Stats.equal resized static)

let test_resize_schedule_beyond_trace () =
  let prep = Runner.prepare Mibench.tiny in
  let n = Array.length prep.Runner.trace_large.Tracer.blocks in
  let plain = Runner.run_scheme prep (Config.xscale wp16) in
  let resized = run_tiny_with_resizes prep ~schedule:[ (n + 100, 1024) ] in
  Alcotest.(check bool) "never-reached resize is bit-identical" true
    (Stats.equal plain resized)

let test_resize_schedule_duplicate_index () =
  let prep = Runner.prepare Mibench.tiny in
  Alcotest.(check bool) "back-to-back resizes at one index rejected" true
    (match run_tiny_with_resizes prep ~schedule:[ (5, 1024); (5, 2048) ] with
    | (_ : Stats.t) -> false
    | exception Invalid_argument _ -> true)

(* --- Simulator --- *)

let prepare name = Runner.prepare (Mibench.find name)

let test_simulator_retires_all_instrs () =
  let prep = prepare "crc" in
  let stats = Runner.run_scheme prep (Config.xscale Config.Baseline) in
  Alcotest.(check int) "fetches = trace instrs"
    prep.Runner.trace_large.Tracer.dynamic_instrs
    stats.Stats.fetches;
  Alcotest.(check int) "retired = fetched" stats.Stats.fetches
    stats.Stats.retired_instrs

let test_simulator_deterministic () =
  let prep = prepare "crc" in
  let a = Runner.run_scheme prep (Config.xscale wp16) in
  let b = Runner.run_scheme prep (Config.xscale wp16) in
  Alcotest.(check int) "same cycles" a.Stats.cycles b.Stats.cycles;
  Alcotest.(check (float 1e-6)) "same energy"
    (Stats.total_energy_pj a) (Stats.total_energy_pj b)

let test_simulator_counters_consistent () =
  let prep = prepare "rawcaudio" in
  let stats = Runner.run_scheme prep (Config.xscale wp16) in
  Alcotest.(check int) "fetch breakdown sums" stats.Stats.fetches
    (stats.Stats.same_line_fetches + stats.Stats.wp_fetches
    + stats.Stats.full_fetches);
  Alcotest.(check int) "hits + misses = non-same-line fetches"
    (stats.Stats.fetches - stats.Stats.same_line_fetches)
    (stats.Stats.icache_hits + stats.Stats.icache_misses);
  Alcotest.(check bool) "cycles >= instrs" true
    (stats.Stats.cycles >= stats.Stats.retired_instrs)

let test_simulator_dside_identical_across_schemes () =
  let prep = prepare "rawdaudio" in
  let a = Runner.run_scheme prep (Config.xscale Config.Baseline) in
  let b = Runner.run_scheme prep (Config.xscale Config.Way_memoization) in
  Alcotest.(check int) "same d-accesses" a.Stats.dcache_accesses b.Stats.dcache_accesses;
  Alcotest.(check int) "same d-misses" a.Stats.dcache_misses b.Stats.dcache_misses

let test_runner_baseline_self_comparison () =
  let prep = prepare "crc" in
  let c = Runner.compare_to_baseline prep (Config.xscale Config.Baseline) in
  Alcotest.(check (float 1e-9)) "energy ratio 1" 1.0 c.Runner.norm_icache_energy;
  Alcotest.(check (float 1e-9)) "ED ratio 1" 1.0 c.Runner.norm_ed

let test_runner_means () =
  Alcotest.(check (float 1e-9)) "arithmetic" 2.0 (Runner.arithmetic_mean [ 1.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "geometric" 2.0 (Runner.geometric_mean [ 1.0; 4.0 ]);
  Alcotest.(check bool) "empty rejected" true
    (match Runner.arithmetic_mean [] with
    | (_ : float) -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "non-positive rejected" true
    (match Runner.geometric_mean [ 0.0 ] with
    | (_ : float) -> false
    | exception Invalid_argument _ -> true)

let test_runner_layout_selection () =
  (* Way-placement runs the placed layout; baseline the original. *)
  let prep = prepare "blowfish_e" in
  Alcotest.(check bool) "layouts differ" true
    (Wayplace.Layout.Binary_layout.order prep.Runner.original_layout
    <> Wayplace.Layout.Binary_layout.order prep.Runner.placed_layout)

let () =
  Alcotest.run "sim"
    [
      ( "config",
        [
          Alcotest.test_case "xscale defaults" `Quick test_config_xscale_defaults;
          Alcotest.test_case "validation" `Quick test_config_validation;
          Alcotest.test_case "scheme names" `Quick test_config_scheme_names;
        ] );
      ( "data_stream",
        [
          Alcotest.test_case "deterministic" `Quick test_data_stream_deterministic;
          Alcotest.test_case "sequential" `Quick test_data_stream_sequential;
          Alcotest.test_case "alignment" `Quick test_data_stream_aligned;
          Alcotest.test_case "no_data" `Quick test_data_stream_no_data;
        ] );
      ("dmem", [ Alcotest.test_case "miss then hit" `Quick test_dmem_miss_then_hit ]);
      ( "fetch_engine",
        [
          Alcotest.test_case "baseline comparisons" `Quick test_baseline_tag_comparisons;
          Alcotest.test_case "baseline same-line elision" `Quick test_baseline_same_line_elision;
          Alcotest.test_case "elision ablation" `Quick test_elision_ablation;
          Alcotest.test_case "baseline stalls" `Quick test_baseline_miss_stall;
          Alcotest.test_case "area predicate" `Quick test_wp_area_predicate;
          Alcotest.test_case "hint warm-up" `Quick test_wp_hint_warmup_and_single_way;
          Alcotest.test_case "re-access penalty" `Quick test_wp_reaccess_penalty;
          Alcotest.test_case "designated-way fills" `Quick test_wp_lines_land_in_designated_way;
          Alcotest.test_case "flush" `Quick test_wp_flush;
          Alcotest.test_case "memo links" `Quick test_wm_links_and_counters;
          Alcotest.test_case "way-prediction counters" `Quick test_waypred_counters;
          Alcotest.test_case "way-prediction penalty" `Quick test_waypred_penalty_cycle;
          Alcotest.test_case "filter counters" `Quick test_filter_counters;
          Alcotest.test_case "filter L0 validation" `Quick test_filter_l0_validation;
          Alcotest.test_case "leakage validation" `Quick test_leakage_validation;
          Alcotest.test_case "leakage charged" `Quick test_leakage_charged;
          Alcotest.test_case "drowsy saves leakage" `Quick test_drowsy_reduces_leakage;
          Alcotest.test_case "resize validation" `Quick test_resize_validation;
          Alcotest.test_case "resize area predicate" `Quick test_resize_changes_area;
          Alcotest.test_case "resize flushes" `Quick test_resize_flushes;
          Alcotest.test_case "resize schedule validation" `Quick test_resize_schedule_validation;
          Alcotest.test_case "resize schedule runs" `Quick test_resize_schedule_runs;
          Alcotest.test_case "resize schedule: empty" `Quick test_resize_schedule_empty;
          Alcotest.test_case "resize schedule: index 0" `Quick test_resize_schedule_at_index_zero;
          Alcotest.test_case "resize schedule: beyond trace" `Quick test_resize_schedule_beyond_trace;
          Alcotest.test_case "resize schedule: duplicate index" `Quick test_resize_schedule_duplicate_index;
          Alcotest.test_case "memo data overhead" `Quick test_wm_same_line_uses_memo_factor;
          Alcotest.test_case "filter same-line uses L0 energy" `Quick
            test_filter_same_line_charges_l0;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "retires everything" `Quick test_simulator_retires_all_instrs;
          Alcotest.test_case "deterministic" `Quick test_simulator_deterministic;
          Alcotest.test_case "counter consistency" `Quick test_simulator_counters_consistent;
          Alcotest.test_case "d-side scheme-invariant" `Quick test_simulator_dside_identical_across_schemes;
          Alcotest.test_case "baseline self-comparison" `Quick test_runner_baseline_self_comparison;
          Alcotest.test_case "means" `Quick test_runner_means;
          Alcotest.test_case "layout selection" `Quick test_runner_layout_selection;
        ] );
    ]
