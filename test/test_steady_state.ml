(* Steady-state fast-forward: the detector/replay engine in isolation
   (synthetic contexts over hand-built traces) plus its integration
   into the simulator (bit-identity with fast-forward on, off, and the
   per-instruction reference loop; skip accounting; bail-outs). *)

module Config = Wayplace.Sim.Config
module Stats = Wayplace.Sim.Stats
module Simulator = Wayplace.Sim.Simulator
module Runner = Wayplace.Sim.Runner
module Steady_state = Wayplace.Sim.Steady_state
module Geometry = Wayplace.Cache.Geometry
module Replacement = Wayplace.Cache.Replacement
module Cam_cache = Wayplace.Cache.Cam_cache
module Drowsy = Wayplace.Cache.Drowsy
module Mibench = Wayplace.Workloads.Mibench
module Spec = Wayplace.Workloads.Spec

(* --- synthetic harness ------------------------------------------- *)

(* A fake machine over a block trace: executing block id [i] costs
   [i + 1] instructions and cycles, and machine "state" is a single
   counter that converges to a fixed point per distinct block (so two
   iterations of any loop leave it equal — every periodic region
   converges on the first recorded iteration).  The executed-position
   log lets tests assert exactly which trace positions ran. *)
type fake = {
  trace : int array;
  mutable state : int;
  executed : int list ref;
  cycles : int ref;
  instrs : int ref;
  stats : Stats.t;
}

let fake_ctx ?(policy = Steady_state.default_policy)
    ?(variant = fun ~start:_ ~period:_ -> true) ?(state_converges = true)
    ?cache ?(scope = "fake") ?headroom trace =
  let f =
    {
      trace;
      state = 0;
      executed = ref [];
      cycles = ref 0;
      instrs = ref 0;
      stats = Stats.create ();
    }
  in
  let report = Steady_state.create_report () in
  let ctx =
    {
      Steady_state.policy;
      report;
      stats = f.stats;
      blocks = trace;
      n_ids = 64;
      n_instrs_of = (fun id -> id + 1);
      stream_invariant = variant;
      fingerprint =
        (fun ~start:_ ~period:_ ~add ->
          add f.state;
          add 42);
      exec =
        (fun k ->
          let id = trace.(k) in
          f.executed := k :: !(f.executed);
          (* Converging: state snaps to a per-block fixed point.
             Diverging: state strictly increases, so no two boundary
             fingerprints are ever equal. *)
          if state_converges then f.state <- id * 7
          else f.state <- f.state + 1;
          f.stats.Stats.fetches <- f.stats.Stats.fetches + id + 1;
          f.cycles := !(f.cycles) + id + 1;
          f.instrs := !(f.instrs) + id + 1);
      set_awake_recorder = (fun _ -> ());
      drowsy_advance = (fun ~since:_ ~delta:_ -> ());
      drowsy_replay = (fun _ ~len:_ ~iters:_ -> ());
      cycles = f.cycles;
      instrs = f.instrs;
      cache;
      cache_scope = scope;
      cycle_headroom = headroom;
    }
  in
  (f, ctx, report)

let trace_sum trace = Array.fold_left (fun a id -> a + id + 1) 0 trace

(* Policy with a tiny skip threshold so short synthetic loops qualify. *)
let eager = { Steady_state.default_policy with min_skip_instrs = 4 }

let check_totals name f =
  (* Whatever was skipped must have been accounted exactly: the
     instruction and cycle totals equal a plain full replay's. *)
  let expect = trace_sum f.trace in
  Alcotest.(check int) (name ^ ": instrs") expect !(f.instrs);
  Alcotest.(check int) (name ^ ": cycles") expect !(f.cycles);
  Alcotest.(check int) (name ^ ": fetches") expect f.stats.Stats.fetches

(* A loop body [3; 5] repeated [iters] times, with distinct entry and
   exit stretches. *)
let looped iters =
  Array.concat
    [
      [| 9; 8 |];
      Array.concat (List.init iters (fun _ -> [| 3; 5 |]));
      [| 7; 6 |];
    ]

let test_convergent_loop () =
  let trace = looped 50 in
  let f, ctx, report = fake_ctx ~policy:eager trace in
  Steady_state.run ctx;
  check_totals "loop" f;
  Alcotest.(check bool) "converged" true (report.Steady_state.converged > 0);
  Alcotest.(check bool)
    "skipped most iterations" true
    (report.Steady_state.skipped_iterations > 40);
  Alcotest.(check int) "skip accounting"
    (report.Steady_state.skipped_iterations * 10)
    report.Steady_state.skipped_instrs;
  (* The executed positions must be exactly the non-skipped ones, in
     order and without duplicates. *)
  let ran = List.rev !(f.executed) in
  let sorted = List.sort_uniq compare ran in
  Alcotest.(check bool) "no duplicate positions" true (ran = sorted);
  Alcotest.(check int) "positions executed"
    (Array.length trace - (report.Steady_state.skipped_iterations * 2))
    (List.length ran)

(* Trip counts 0, 1 and 2: below any detectable periodicity, the
   engine must degrade to a plain replay with zero skips. *)
let test_tiny_trip_counts () =
  List.iter
    (fun iters ->
      let trace = looped iters in
      let f, ctx, report = fake_ctx ~policy:eager trace in
      Steady_state.run ctx;
      check_totals (Printf.sprintf "trips=%d" iters) f;
      if iters <= 2 then
        (* One or two occurrences of the body: nothing worth skipping
           remains once two boundary snapshots are needed. *)
        Alcotest.(check int)
          (Printf.sprintf "trips=%d skips nothing" iters)
          0 report.Steady_state.skipped_iterations)
    [ 0; 1; 2; 3 ]

let test_never_converges () =
  (* Strictly-advancing state (an RNG counter): fingerprints never
     match, so everything replays and the attempt budget bounds the
     recording. *)
  let trace = looped 50 in
  let f, ctx, report = fake_ctx ~policy:eager ~state_converges:false trace in
  Steady_state.run ctx;
  check_totals "divergent" f;
  Alcotest.(check int) "nothing skipped" 0
    report.Steady_state.skipped_iterations;
  Alcotest.(check int) "nothing converged" 0 report.Steady_state.converged;
  Alcotest.(check int) "all positions ran" (Array.length trace)
    (List.length !(f.executed))

let test_stream_variant_veto () =
  let trace = looped 50 in
  let f, ctx, report =
    fake_ctx ~policy:eager ~variant:(fun ~start:_ ~period:_ -> false) trace
  in
  Steady_state.run ctx;
  check_totals "vetoed" f;
  Alcotest.(check int) "no attempts" 0 report.Steady_state.regions;
  Alcotest.(check int) "nothing skipped" 0
    report.Steady_state.skipped_iterations

let test_min_skip_threshold () =
  (* The loop is periodic but too small to be worth an attempt under
     the default 2000-instruction threshold. *)
  let trace = looped 20 in
  let _, ctx, report = fake_ctx trace in
  Steady_state.run ctx;
  Alcotest.(check int) "below threshold: no attempts" 0
    report.Steady_state.regions

let test_non_periodic () =
  (* A square-free ternary word (morphism 0->012, 1->02, 2->1): block
     ids repeat constantly, so candidate periods arise everywhere, but
     no factor XX exists — every segment comparison must fail, no
     attempt may fire, and the replay must be exact. *)
  let rec grow w =
    if List.length w >= 200 then w
    else
      grow
        (List.concat_map
           (function 0 -> [ 0; 1; 2 ] | 1 -> [ 0; 2 ] | _ -> [ 1 ])
           w)
  in
  let trace = Array.of_list (grow [ 0 ]) in
  let f, ctx, report = fake_ctx ~policy:eager trace in
  Steady_state.run ctx;
  check_totals "square-free" f;
  Alcotest.(check int) "no attempts" 0 report.Steady_state.regions;
  Alcotest.(check int) "nothing skipped" 0
    report.Steady_state.skipped_iterations

let test_snapshot_budget () =
  (* A budget of zero shuts detection off entirely. *)
  let trace = looped 50 in
  let f, ctx, report =
    fake_ctx ~policy:{ eager with Steady_state.snapshot_budget = 0 } trace
  in
  Steady_state.run ctx;
  check_totals "no budget" f;
  Alcotest.(check int) "no attempts" 0 report.Steady_state.regions

(* --- snapshot cache: bounded reuse across regions and runs -------- *)

module Snapshot_cache = Wayplace.Sim.Snapshot_cache

let dummy_entry fp =
  {
    Snapshot_cache.e_fp = Array.copy fp;
    e_ints = [| 1; 2 |];
    e_charges = [| [| 1.0 |] |];
    e_lens = [| 1 |];
    e_awake = [||];
    e_fetches = 1;
    e_cycles = 10;
    e_instrs = 10;
  }

let test_cache_eviction () =
  let c = Snapshot_cache.create ~capacity:2 () in
  let fp = [| 7; 42 |] in
  let key i =
    Snapshot_cache.key ~scope:(string_of_int i) ~period:2 ~ids:[| 3; 5 |] ~fp
      ~fp_len:2
  in
  Snapshot_cache.add c ~key:(key 0) (dummy_entry fp);
  Snapshot_cache.add c ~key:(key 1) (dummy_entry fp);
  (* touch key 0 so key 1 is the LRU victim of the next insert *)
  Alcotest.(check bool)
    "key 0 resident" true
    (Snapshot_cache.find c ~key:(key 0) ~fp ~fp_len:2 <> None);
  Snapshot_cache.add c ~key:(key 2) (dummy_entry fp);
  let k = Snapshot_cache.counters c in
  Alcotest.(check int) "size stays at capacity" 2 k.Snapshot_cache.entries;
  Alcotest.(check int) "one eviction" 1 k.Snapshot_cache.evictions;
  Alcotest.(check bool)
    "LRU key 1 evicted" true
    (Snapshot_cache.find c ~key:(key 1) ~fp ~fp_len:2 = None);
  Alcotest.(check bool)
    "recently used key 0 survives" true
    (Snapshot_cache.find c ~key:(key 0) ~fp ~fp_len:2 <> None);
  Alcotest.(check bool)
    "fresh key 2 resident" true
    (Snapshot_cache.find c ~key:(key 2) ~fp ~fp_len:2 <> None)

let test_cache_fp_word_check () =
  (* Same key, different live fingerprint words: the word-for-word
     re-verification must refuse the hit even though the digest
     matched at insert time. *)
  let c = Snapshot_cache.create () in
  let fp = [| 7; 42 |] in
  let key =
    Snapshot_cache.key ~scope:"s" ~period:2 ~ids:[| 3; 5 |] ~fp ~fp_len:2
  in
  Snapshot_cache.add c ~key (dummy_entry fp);
  Alcotest.(check bool)
    "exact words hit" true
    (Snapshot_cache.find c ~key ~fp ~fp_len:2 <> None);
  Alcotest.(check bool)
    "altered words miss" true
    (Snapshot_cache.find c ~key ~fp:[| 7; 43 |] ~fp_len:2 = None)

(* Two disjoint dynamic regions of the same loop: the second region's
   first boundary must hit the entry the first region converged,
   skipping its recording phase entirely.  The body has period 1 so
   the phase at which the delta gate fires (which depends on the
   preceding stretch) cannot change the canonical pattern slice or
   the boundary state — reuse is only keyed on what the machine can
   observe. *)
let two_regions iters =
  Array.concat
    [
      [| 9; 8 |];
      Array.make iters 4;
      [| 7; 6 |];
      Array.make iters 4;
      [| 1; 2 |];
    ]

let test_cache_cross_region () =
  let trace = two_regions 40 in
  let cache = Snapshot_cache.create () in
  let f, ctx, report = fake_ctx ~policy:eager ~cache trace in
  Steady_state.run ctx;
  check_totals "cross-region" f;
  Alcotest.(check bool)
    "first region inserts" true
    (report.Steady_state.cache_inserts >= 1);
  Alcotest.(check bool)
    "second region hits" true
    (report.Steady_state.cache_hits >= 1);
  (* A second run over the same trace with the warm cache must hit in
     both regions and never insert again, with identical totals. *)
  let f2, ctx2, report2 = fake_ctx ~policy:eager ~cache trace in
  Steady_state.run ctx2;
  check_totals "warm re-run" f2;
  Alcotest.(check int) "warm run inserts nothing" 0
    report2.Steady_state.cache_inserts;
  Alcotest.(check bool)
    "warm run hits everywhere" true
    (report2.Steady_state.cache_hits >= 2)

let test_cache_scope_isolation () =
  (* The same pattern under a different scope (different compiled
     trace or config) must never reuse the entry: reuse is only legal
     where the fingerprints provably coincide, and the scope pins
     that. *)
  let trace = looped 40 in
  let cache = Snapshot_cache.create () in
  let _, ctx_a, report_a = fake_ctx ~policy:eager ~cache ~scope:"conf-A" trace in
  Steady_state.run ctx_a;
  Alcotest.(check bool)
    "scope A inserts" true
    (report_a.Steady_state.cache_inserts >= 1);
  let f_b, ctx_b, report_b =
    fake_ctx ~policy:eager ~cache ~scope:"conf-B" trace
  in
  Steady_state.run ctx_b;
  check_totals "scope B" f_b;
  Alcotest.(check int) "scope B sees no A entries" 0
    report_b.Steady_state.cache_hits;
  Alcotest.(check bool)
    "scope B inserts its own" true
    (report_b.Steady_state.cache_inserts >= 1);
  (* Re-entering scope A reuses A's entry, untouched by B's. *)
  let f_a2, ctx_a2, report_a2 =
    fake_ctx ~policy:eager ~cache ~scope:"conf-A" trace
  in
  Steady_state.run ctx_a2;
  check_totals "scope A re-entry" f_a2;
  Alcotest.(check bool)
    "scope A re-entry hits" true
    (report_a2.Steady_state.cache_hits >= 1)

(* The reuse law, fuzzed: over random concatenations of loopy and
   patternless stretches, a run with a cold cache, a run with a warm
   cache, and a run with no cache at all account for exactly the same
   instruction / cycle / fetch totals as a plain replay. *)
let prop_cached_reuse_equiv =
  QCheck.Test.make ~name:"cached reuse = plain fast-forward" ~count:60
    QCheck.(
      pair (int_range 0 5)
        (small_list (pair (int_range 0 20) (int_range 1 6))))
    (fun (salt, segments) ->
      let trace =
        Array.concat
          (List.concat_map
             (fun (iters, body_len) ->
               let body =
                 Array.init body_len (fun i -> 1 + ((salt + i) mod 7))
               in
               [| salt mod 11; (salt + 5) mod 11 |]
               :: List.init iters (fun _ -> body))
             segments)
      in
      let expect = trace_sum trace in
      let totals f = (!(f.instrs), !(f.cycles), f.stats.Stats.fetches) in
      let run ?cache () =
        let f, ctx, _ = fake_ctx ~policy:eager ?cache trace in
        Steady_state.run ctx;
        totals f
      in
      let plain = run () in
      let cache = Snapshot_cache.create () in
      let cold = run ~cache () in
      let warm = run ~cache () in
      plain = (expect, expect, expect) && cold = plain && warm = plain)

(* --- fingerprint collision resistance ---------------------------- *)

let geo = Geometry.make ~size_bytes:1024 ~assoc:4 ~line_bytes:32

let fp_of f =
  let b = Buffer.create 256 in
  f ~add:(fun x -> Buffer.add_string b (string_of_int x ^ ","));
  Buffer.contents b

let test_cam_fingerprint_distinct () =
  (* Two caches differing only in which lines are resident must not
     fingerprint equal (fast-forwarding across that difference would
     replay the wrong hit/miss sequence). *)
  let c1 = Cam_cache.create geo ~replacement:Replacement.Round_robin in
  let c2 = Cam_cache.create geo ~replacement:Replacement.Round_robin in
  ignore (Cam_cache.fill c1 0x1000 Cam_cache.Victim_by_policy);
  ignore (Cam_cache.fill c2 0x2000 Cam_cache.Victim_by_policy);
  Alcotest.(check bool) "different residency -> different fp" false
    (String.equal
       (fp_of (Cam_cache.fingerprint c1))
       (fp_of (Cam_cache.fingerprint c2)));
  (* Identical fill histories: equal fingerprints. *)
  let c3 = Cam_cache.create geo ~replacement:Replacement.Round_robin in
  let c4 = Cam_cache.create geo ~replacement:Replacement.Round_robin in
  List.iter
    (fun c ->
      ignore (Cam_cache.fill c 0x1000 Cam_cache.Victim_by_policy);
      ignore (Cam_cache.fill c 0x2000 Cam_cache.Victim_by_policy))
    [ c3; c4 ];
  Alcotest.(check string) "same state -> same fp"
    (fp_of (Cam_cache.fingerprint c3))
    (fp_of (Cam_cache.fingerprint c4))

let test_lru_rank_canonical () =
  (* Raw LRU timestamps differ after different access histories, but
     what matters (and what the fingerprint must capture) is the
     ordering.  Same rank order at different absolute clocks must
     fingerprint equal; a different victim order must not. *)
  let mk accesses =
    let c = Cam_cache.create geo ~replacement:Replacement.Lru in
    List.iter
      (fun a ->
        (match Cam_cache.probe c a with
        | None -> ignore (Cam_cache.fill c a Cam_cache.Victim_by_policy)
        | Some _ -> ());
        ignore (Cam_cache.lookup_full c a))
      accesses;
    c
  in
  (* Both histories fill the three lines in the same order (same way
     assignment) and end with recency order 0x3000 > 0x2000 > 0x1000,
     but the second burns many more clock ticks getting there: the
     rank canonicalisation must erase the raw timestamps. *)
  let c1 = mk [ 0x1000; 0x2000; 0x3000 ] in
  let c2 = mk [ 0x1000; 0x2000; 0x1000; 0x2000; 0x1000; 0x2000; 0x3000 ] in
  Alcotest.(check string) "same rank order -> same fp"
    (fp_of (Cam_cache.fingerprint c1))
    (fp_of (Cam_cache.fingerprint c2));
  (* Same lines in the same ways, opposite recency: must differ (the
     next victim choice differs). *)
  let c3 = mk [ 0x1000; 0x2000; 0x3000; 0x3000; 0x2000; 0x1000 ] in
  Alcotest.(check bool) "reversed recency -> different fp" false
    (String.equal
       (fp_of (Cam_cache.fingerprint c1))
       (fp_of (Cam_cache.fingerprint c3)))

let test_drowsy_fingerprint () =
  let mk touches now =
    let d = Drowsy.create geo ~window:8 in
    List.iter (fun (t, set, way) -> ignore (Drowsy.note_access d ~now:t ~set ~way)) touches;
    fp_of (fun ~add -> Drowsy.fingerprint d ~now ~add)
  in
  (* Same gaps at different absolute times: equal. *)
  Alcotest.(check string) "gap-canonical"
    (mk [ (10, 0, 0); (12, 1, 1) ] 14)
    (mk [ (100, 0, 0); (102, 1, 1) ] 104);
  (* Awake line vs drowsy line: different. *)
  Alcotest.(check bool) "awake vs asleep -> different fp" false
    (String.equal (mk [ (10, 0, 0) ] 12) (mk [ (10, 0, 0) ] 40));
  (* Two gaps both beyond the window share one canonical value. *)
  Alcotest.(check string) "all sleep depths equal"
    (mk [ (10, 0, 0) ] 30)
    (mk [ (10, 0, 0) ] 300)

(* --- integration: the simulator with fast-forward ------------------ *)

let loop_kernel =
  {
    (Mibench.find "crc_loop") with
    Spec.name = "crc_loop_test";
    trace_blocks_large = 40_000;
    trace_blocks_small = 40_000;
  }

(* Every instruction a data access: every periodic candidate moves the
   stream cursors, so the stream-variance veto rejects them all. *)
let memheavy_kernel =
  {
    loop_kernel with
    Spec.name = "memheavy_loop";
    seed = 331;
    mem_ratio = 1.0;
    instrs_per_block_min = 3;
    instrs_per_block_max = 6;
    data_working_set_bytes = 8 * 1024;
    trace_blocks_large = 20_000;
    trace_blocks_small = 20_000;
  }

let prep_of = Hashtbl.create 4

let prepare spec =
  match Hashtbl.find_opt prep_of spec.Spec.name with
  | Some p -> p
  | None ->
      let p = Runner.prepare spec in
      Hashtbl.add prep_of spec.Spec.name p;
      p

let schemes =
  [
    Config.Baseline;
    Config.Way_placement { area_bytes = 2048 };
    Config.Way_memoization;
    Config.Way_prediction;
    Config.Filter_cache { l0_bytes = 512 };
  ]

(* The tentpole invariant, three ways: fast-forward on, fast-forward
   off, and the per-instruction reference loop all bit-identical. *)
let check_three_way spec config =
  let prep = prepare spec in
  let report = Steady_state.create_report () in
  let ff_on = Runner.run_scheme ~fastforward:true ~ff_report:report prep config in
  let ff_off = Runner.run_scheme ~fastforward:false prep config in
  let reference =
    Simulator.run_compiled ~reference_only:true ~config
      ~trace:prep.Runner.trace_large
      (Runner.compiled_for prep config)
  in
  if not (Stats.equal ff_on ff_off) then
    Alcotest.failf "%s / %s: fast-forward diverges from plain fast path:@ %a"
      spec.Spec.name
      (Config.scheme_name config.Config.scheme)
      Stats.pp_diff (ff_on, ff_off);
  if not (Stats.equal ff_on reference) then
    Alcotest.failf "%s / %s: fast-forward diverges from reference:@ %a"
      spec.Spec.name
      (Config.scheme_name config.Config.scheme)
      Stats.pp_diff (ff_on, reference);
  report

let test_loop_schemes () =
  List.iter
    (fun s ->
      let config = Config.xscale s in
      let report = check_three_way loop_kernel config in
      Alcotest.(check bool)
        (Config.scheme_name s ^ ": fast-forward engaged")
        true
        (report.Steady_state.skipped_instrs > 0))
    schemes

let test_cached_loop_schemes () =
  (* One snapshot cache shared across every scheme (the sweep / daemon
     sharing pattern): each cached run must stay bit-identical to the
     plain fast path even as entries from the other schemes accumulate
     (within-run cross-region hits are fine; a cross-scheme hit would
     break the bit-identity check), and a same-config re-run must
     hit. *)
  let prep = prepare loop_kernel in
  let cache = Snapshot_cache.create () in
  List.iter
    (fun s ->
      let config = Config.xscale s in
      let name = Config.scheme_name s in
      let report = Steady_state.create_report () in
      let cached =
        Runner.run_scheme ~fastforward:true ~ff_report:report
          ~snapshot_cache:cache prep config
      in
      let plain = Runner.run_scheme ~fastforward:false prep config in
      if not (Stats.equal cached plain) then
        Alcotest.failf "%s: cached fast-forward diverges:@ %a" name
          Stats.pp_diff (cached, plain);
      let report2 = Steady_state.create_report () in
      let warm =
        Runner.run_scheme ~fastforward:true ~ff_report:report2
          ~snapshot_cache:cache prep config
      in
      if not (Stats.equal warm plain) then
        Alcotest.failf "%s: warm cached run diverges:@ %a" name Stats.pp_diff
          (warm, plain);
      Alcotest.(check bool)
        (name ^ ": same-config re-run hits")
        true
        (report2.Steady_state.cache_hits > 0))
    schemes

let test_memheavy_vetoed () =
  let report = check_three_way memheavy_kernel (Config.xscale Config.Baseline) in
  Alcotest.(check int) "stream-variant loops skip nothing" 0
    report.Steady_state.skipped_instrs

let test_drowsy_crossing () =
  (* A window smaller than one loop iteration's fetch count forces
     lines asleep and awake across iteration boundaries — the drowsy
     replay and advance paths must still be bit-identical. *)
  List.iter
    (fun window ->
      let config =
        Config.with_drowsy
          (Config.with_leakage (Config.xscale Config.Baseline) true)
          (Some window)
      in
      let report = check_three_way loop_kernel config in
      if window >= 256 then
        Alcotest.(check bool)
          (Printf.sprintf "drowsy window %d: still fast-forwards" window)
          true
          (report.Steady_state.skipped_instrs > 0))
    [ 16; 64; 256; 4096 ]

let test_resize_schedule_bails () =
  (* Resize schedules force the reference loop, so the fast-forward
     default must be irrelevant — including a resize index landing
     exactly where a loop iteration would have been skipped. *)
  let prep = prepare loop_kernel in
  let config = Config.xscale (Config.Way_placement { area_bytes = 2048 }) in
  let schedule = [ (100, 4096); (20_000, 2048) ] in
  let run () =
    Simulator.run_with_resizes ~schedule ~config
      ~program:prep.Runner.program ~layout:prep.Runner.placed_layout
      ~trace:prep.Runner.trace_large
  in
  Simulator.set_fastforward_default false;
  let off = run () in
  Simulator.set_fastforward_default true;
  let on = run () in
  if not (Stats.equal on off) then
    Alcotest.failf "resize schedule: default toggle changed stats:@ %a"
      Stats.pp_diff (on, off)

let test_default_toggle () =
  (* run_scheme with no explicit argument follows the global default. *)
  let prep = prepare loop_kernel in
  let config = Config.xscale Config.Baseline in
  Simulator.set_fastforward_default false;
  let off = Runner.run_scheme prep config in
  Simulator.set_fastforward_default true;
  let on = Runner.run_scheme prep config in
  if not (Stats.equal on off) then
    Alcotest.failf "default toggle changed stats:@ %a" Stats.pp_diff (on, off)

let () =
  Alcotest.run "steady_state"
    [
      ( "engine",
        [
          Alcotest.test_case "convergent loop" `Quick test_convergent_loop;
          Alcotest.test_case "trip counts 0/1/2" `Quick test_tiny_trip_counts;
          Alcotest.test_case "never converges" `Quick test_never_converges;
          Alcotest.test_case "stream-variant veto" `Quick
            test_stream_variant_veto;
          Alcotest.test_case "min-skip threshold" `Quick
            test_min_skip_threshold;
          Alcotest.test_case "non-periodic trace" `Quick test_non_periodic;
          Alcotest.test_case "snapshot budget" `Quick test_snapshot_budget;
        ] );
      ( "snapshot-cache",
        [
          Alcotest.test_case "bounded LRU eviction" `Quick test_cache_eviction;
          Alcotest.test_case "fingerprint word re-check" `Quick
            test_cache_fp_word_check;
          Alcotest.test_case "cross-region reuse" `Quick
            test_cache_cross_region;
          Alcotest.test_case "scope isolation" `Quick
            test_cache_scope_isolation;
          QCheck_alcotest.to_alcotest prop_cached_reuse_equiv;
        ] );
      ( "fingerprints",
        [
          Alcotest.test_case "cam residency" `Quick
            test_cam_fingerprint_distinct;
          Alcotest.test_case "lru rank canonicalisation" `Quick
            test_lru_rank_canonical;
          Alcotest.test_case "drowsy gaps" `Quick test_drowsy_fingerprint;
        ] );
      ( "integration",
        [
          Alcotest.test_case "loop kernel, all schemes" `Quick
            test_loop_schemes;
          Alcotest.test_case "shared cache, all schemes" `Quick
            test_cached_loop_schemes;
          Alcotest.test_case "mem-heavy loop vetoed" `Quick
            test_memheavy_vetoed;
          Alcotest.test_case "drowsy crossing iterations" `Quick
            test_drowsy_crossing;
          Alcotest.test_case "resize schedule bails out" `Quick
            test_resize_schedule_bails;
          Alcotest.test_case "global default toggle" `Quick
            test_default_toggle;
        ] );
    ]
