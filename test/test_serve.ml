(* The placement service battery: protocol round-trips and decode
   errors, content-addressed store correctness (bit-identical hits,
   corruption recovery, shared directories), daemon integration over a
   Unix socket (memoisation, error isolation, persistence across
   restarts) and the concurrency stress: parallel clients against a
   sequential oracle, in-flight coalescing, graceful shutdown
   mid-burst. *)

module P = Wayplace.Serve.Protocol
module Store = Wayplace.Serve.Store
module Daemon = Wayplace.Serve.Daemon
module Client = Wayplace.Serve.Client
module Config = Wayplace.Sim.Config
module Stats = Wayplace.Sim.Stats
module Runner = Wayplace.Sim.Runner

let ok_or_fail what = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "%s: %s" what msg

(* --- protocol round-trips ------------------------------------------- *)

let nasty = "a\"b\\c\nd\te\r\x07f caf\xc3\xa9 \x00z"

let all_schemes =
  [
    Config.Baseline;
    Config.Way_placement { area_bytes = 16 * 1024 };
    Config.Way_placement { area_bytes = 2 * 1024 };
    Config.Way_memoization;
    Config.Way_prediction;
    Config.Filter_cache { l0_bytes = 512 };
    Config.Filter_cache { l0_bytes = 1024 };
  ]

let sample_requests =
  { P.id = 0; payload = P.Ping }
  :: { P.id = max_int; payload = P.Server_stats }
  :: { P.id = 7; payload = P.Shutdown }
  :: { P.id = 1; payload = P.Sim (P.sim_request ~benchmark:nasty ~scheme:Config.Baseline ()) }
  :: { P.id = 2;
       payload =
         P.Sim
           (P.sim_request ~size_kb:8 ~ways:4 ~line_bytes:16 ~no_cache:true
              ~verify:true ~benchmark:"crc"
              ~scheme:(Config.Way_placement { area_bytes = 4096 })
              ());
     }
  :: { P.id = 3;
       payload =
         P.Mp
           (P.mp_request ~mix:"crc,sha" ~coverage:"half" ~quantum:8_000
              ~kernel:false ~btb_flush:true ~drowsy_flush:true ~priority:true
              ~size_kb:16 ~ways:16 ~line_bytes:32 ~no_cache:true ~verify:true
              ~scheme:(Config.Way_placement { area_bytes = 8192 })
              ());
     }
  :: { P.id = 4;
       payload = P.Mp (P.mp_request ~mix:"random:7" ~scheme:Config.Baseline ());
     }
  :: { P.id = 5;
       payload = P.Mp (P.mp_request ~mix:nasty ~scheme:Config.Way_memoization ());
     }
  :: { P.id = 6; payload = P.Advise (P.advise_request ~benchmark:nasty ()) }
  :: { P.id = 8;
       payload =
         P.Advise
           (P.advise_request ~size_kb:8 ~ways:4 ~line_bytes:16 ~area_kb:2
              ~page_bytes:512 ~no_cache:true ~benchmark:"crc" ());
     }
  :: { P.id = 9;
       payload =
         P.Grid
           (P.grid_request ~sizes_kb:[ 8; 16 ] ~ways:[ 4; 32 ] ~line_bytes:16
              ~no_cache:true
              ~benchmarks:[ "crc"; nasty ]
              ~schemes:
                [ Config.Baseline; Config.Way_placement { area_bytes = 4096 } ]
              ());
     }
  :: { P.id = 10;
       payload =
         P.Grid
           (P.grid_request ~benchmarks:[ "sha" ]
              ~schemes:[ Config.Way_memoization ] ());
     }
  :: List.mapi
       (fun i scheme ->
         { P.id = 100 + i; payload = P.Sim (P.sim_request ~benchmark:"sha" ~scheme ()) })
       all_schemes

let sim_result_sample source =
  {
    P.key = String.make 32 'a';
    source;
    digest = String.make 32 '0';
    cycles = 123456789;
    retired = 100;
    fetches = 99;
    icache_hits = 98;
    icache_misses = 1;
    icache_energy_pj = 0.1 +. 0.2 (* deliberately non-representable *);
    total_energy_pj = 1234.5678901234567;
  }

let sample_responses =
  [
    { P.id = 0; reply = P.Pong };
    { P.id = 1; reply = P.Shutting_down };
    { P.id = 2; reply = P.Error_reply nasty };
    { P.id = 3;
      reply =
        P.Stats_reply
          {
            P.requests = 10; sim_requests = 9; computations = 3;
            hits_memory = 4; hits_disk = 1; coalesced = 1; errors = 0;
            store_entries = 3; inflight = 2; workers = 4; uptime_s = 12.25;
          };
    };
  ]
  @ List.mapi
      (fun i source -> { P.id = 10 + i; reply = P.Sim_reply (sim_result_sample source) })
      [ P.Computed; P.Memory; P.Disk; P.Coalesced ]
  @ [
      { P.id = 20;
        reply =
          P.Mp_reply
            {
              P.mpr_key = "mp-" ^ String.make 32 'b';
              mpr_source = P.Disk;
              mpr_digest = String.make 32 '1';
              mpr_cycles = 987654321;
              mpr_retired = 1000;
              mpr_processes = 3;
              (* a disk hit after a restart: machine-level facts lost *)
              mpr_switches = -1;
              mpr_kernel_runs = -1;
              mpr_icache_energy_pj = 0.1 +. 0.2;
              mpr_total_energy_pj = 9876.54321;
            };
      };
      { P.id = 21;
        reply =
          P.Advise_reply
            {
              P.adr_key = "advise-" ^ String.make 32 'c';
              adr_source = P.Coalesced;
              adr_digest = String.make 32 '2';
              adr_static_min_ways = 3;
              adr_min_area_bytes = 3072;
              adr_regions = 17;
              adr_findings = 4;
              adr_errors = 0;
              adr_warnings = 1;
              adr_schedule_points = 5;
              adr_conflict_misses = 42;
              adr_env_lo_pj = 0.1 +. 0.2;
              adr_env_hi_pj = 98765.4321;
              adr_predicted_delta_pj = 0.0;
            };
      };
      { P.id = 30;
        reply =
          P.Grid_cell_reply
            {
              P.gc_index = 0;
              gc_benchmark = "crc";
              gc_scheme = Config.Way_placement { area_bytes = 4096 };
              gc_size_kb = 8;
              gc_ways = 4;
              gc_outcome = Ok (sim_result_sample P.Computed);
            };
      };
      { P.id = 31;
        reply =
          P.Grid_cell_reply
            {
              P.gc_index = 3;
              gc_benchmark = nasty;
              gc_scheme = Config.Filter_cache { l0_bytes = 512 };
              gc_size_kb = 32;
              gc_ways = 32;
              gc_outcome = Error nasty;
            };
      };
      { P.id = 32;
        reply =
          P.Grid_done
            {
              P.gs_cells = 8;
              gs_computed = 4;
              gs_hits_memory = 2;
              gs_hits_disk = 1;
              gs_coalesced = 1;
              gs_errors = 0;
            };
      };
    ]

let test_request_roundtrip () =
  List.iter
    (fun r ->
      let line = P.request_to_line r in
      Alcotest.(check bool) "line is newline-terminated" true
        (String.length line > 0 && line.[String.length line - 1] = '\n');
      match P.request_of_line line with
      | Error msg -> Alcotest.failf "round-trip failed on %s: %s" line msg
      | Ok r' ->
          Alcotest.(check bool)
            (Printf.sprintf "request %d round-trips" r.P.id)
            true (r = r'))
    sample_requests

let test_response_roundtrip () =
  List.iter
    (fun r ->
      match P.response_of_line (P.response_to_line r) with
      | Error msg -> Alcotest.failf "round-trip failed (id %d): %s" r.P.id msg
      | Ok r' ->
          Alcotest.(check bool)
            (Printf.sprintf "response %d round-trips" r.P.id)
            true (r = r'))
    sample_responses

let expect_decode_error what line =
  match P.request_of_line line with
  | Ok _ -> Alcotest.failf "%s: accepted %S" what line
  | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: diagnostic not empty" what)
        true
        (String.length msg > 0)

let test_request_decode_errors () =
  expect_decode_error "empty line" "";
  expect_decode_error "truncated JSON" "{\"id\":1,\"op\":\"pi";
  expect_decode_error "not an object" "[1,2,3]";
  expect_decode_error "missing op" "{\"id\":1}";
  expect_decode_error "unknown op" "{\"id\":1,\"op\":\"frobnicate\"}";
  expect_decode_error "wrong id type" "{\"id\":\"one\",\"op\":\"ping\"}";
  expect_decode_error "sim without benchmark"
    "{\"id\":1,\"op\":\"sim\",\"scheme\":\"baseline\"}";
  expect_decode_error "wrong benchmark type"
    "{\"id\":1,\"op\":\"sim\",\"benchmark\":7,\"scheme\":\"baseline\"}";
  expect_decode_error "unknown scheme"
    "{\"id\":1,\"op\":\"sim\",\"benchmark\":\"crc\",\"scheme\":\"quantum\"}";
  expect_decode_error "duplicate keys"
    "{\"id\":1,\"id\":2,\"op\":\"ping\"}";
  expect_decode_error "grid without benchmarks"
    "{\"id\":1,\"op\":\"grid\",\"schemes\":[{\"scheme\":\"baseline\"}]}";
  expect_decode_error "grid with empty benchmarks"
    "{\"id\":1,\"op\":\"grid\",\"benchmarks\":[],\"schemes\":[{\"scheme\":\"baseline\"}]}";
  expect_decode_error "grid with mistyped benchmark"
    "{\"id\":1,\"op\":\"grid\",\"benchmarks\":[7],\"schemes\":[{\"scheme\":\"baseline\"}]}";
  expect_decode_error "grid with unknown scheme"
    "{\"id\":1,\"op\":\"grid\",\"benchmarks\":[\"crc\"],\"schemes\":[{\"scheme\":\"quantum\"}]}";
  (* wrong-type errors name the field *)
  (match P.request_of_line "{\"id\":1,\"op\":\"sim\",\"benchmark\":7}" with
  | Ok _ -> Alcotest.fail "wrong-type benchmark accepted"
  | Error msg ->
      let contains hay needle =
        let n = String.length hay and m = String.length needle in
        let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "field named in wrong-type error" true
        (contains msg "benchmark"));
  Alcotest.(check int) "id recovered from malformed line" 42
    (P.id_of_line "{\"id\":42,\"op\":\"sim\"}");
  Alcotest.(check int) "unrecoverable id defaults to 0" 0
    (P.id_of_line "garbage")

let test_config_of_sim () =
  let cfg =
    ok_or_fail "default geometry"
      (P.config_of_sim (P.sim_request ~benchmark:"crc" ~scheme:Config.Baseline ()))
  in
  Alcotest.(check int) "32 KB" (32 * 1024)
    cfg.Config.icache.Wayplace.Cache.Geometry.size_bytes;
  (match
     P.config_of_sim
       (P.sim_request ~size_kb:0 ~benchmark:"crc" ~scheme:Config.Baseline ())
   with
  | Ok _ -> Alcotest.fail "zero-size geometry accepted"
  | Error _ -> ());
  match
    P.config_of_sim
      (P.sim_request ~ways:3 ~benchmark:"crc" ~scheme:Config.Baseline ())
  with
  | Ok _ -> Alcotest.fail "non-power-of-two ways accepted"
  | Error _ -> ()

let test_grid_cells_order () =
  (* The canonical cell order is benchmark-major, then scheme, size,
     ways: the order clients see gc_index in, and the order any two
     runs of the same grid agree on. *)
  let gr =
    P.grid_request ~sizes_kb:[ 8; 16 ] ~ways:[ 4; 32 ]
      ~benchmarks:[ "a"; "b" ]
      ~schemes:[ Config.Baseline; Config.Way_memoization ]
      ()
  in
  let cells = P.grid_cells gr in
  Alcotest.(check int) "full cross product" 16 (List.length cells);
  Alcotest.(check bool) "first cell" true
    (List.nth cells 0 = ("a", Config.Baseline, 8, 4));
  Alcotest.(check bool) "ways varies fastest" true
    (List.nth cells 1 = ("a", Config.Baseline, 8, 32));
  Alcotest.(check bool) "then size" true
    (List.nth cells 2 = ("a", Config.Baseline, 16, 4));
  Alcotest.(check bool) "then scheme" true
    (List.nth cells 4 = ("a", Config.Way_memoization, 8, 4));
  Alcotest.(check bool) "benchmark slowest" true
    (List.nth cells 8 = ("b", Config.Baseline, 8, 4))

(* --- store ----------------------------------------------------------- *)

(* Fresh computations for the store tests: two cheap configurations of
   crc, computed once and reused. *)
let fresh_stats =
  lazy
    (let prep = Runner.prepare (Wayplace.Workloads.Mibench.find "crc") in
     List.map
       (fun scheme ->
         let sr = P.sim_request ~benchmark:"crc" ~scheme () in
         let config = ok_or_fail "config" (P.config_of_sim sr) in
         let key =
           Store.key ~program:prep.Runner.program
             ~order:
               (Wayplace.Layout.Binary_layout.order (Runner.layout_for prep config))
             ~config
         in
         (key, Runner.run_scheme prep config))
       [ Config.Baseline; Config.Way_placement { area_bytes = 16 * 1024 } ])

let temp_store_dir () = Filename.temp_dir "wp-store-test" ""

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_store_dir f =
  let dir = temp_store_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let check_stats_identical label a b =
  if not (Stats.equal a b) then
    Alcotest.failf "%s: stats differ:@.%a" label Stats.pp_diff (a, b)

let test_store_hit_bit_identical () =
  with_store_dir (fun dir ->
      let store = ok_or_fail "create" (Store.create ~dir ()) in
      List.iter
        (fun (key, stats) ->
          Store.put store key stats;
          (* memory hit *)
          (match Store.find store key with
          | Some (got, `Memory) ->
              check_stats_identical "memory hit" stats got;
              Alcotest.(check string) "digest identical" (Store.stats_digest stats)
                (Store.stats_digest got)
          | Some (_, `Disk) -> Alcotest.fail "expected memory hit"
          | None -> Alcotest.fail "stored entry not found");
          (* disk round-trip through a second store on the same dir *)
          let store2 = ok_or_fail "second store" (Store.create ~dir ()) in
          match Store.find store2 key with
          | Some (got, `Disk) ->
              check_stats_identical "disk hit" stats got;
              Alcotest.(check string) "digest identical after disk round-trip"
                (Store.stats_digest stats) (Store.stats_digest got);
              (* promoted: second lookup is a memory hit *)
              (match Store.find store2 key with
              | Some (_, `Memory) -> ()
              | _ -> Alcotest.fail "disk hit not promoted")
          | Some (_, `Memory) -> Alcotest.fail "fresh store claims memory hit"
          | None -> Alcotest.fail "persisted entry not found")
        (Lazy.force fresh_stats))

let clobber_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

let test_store_corruption_recovery () =
  let key, stats = List.hd (Lazy.force fresh_stats) in
  let corruptions =
    [
      ("zero-length", "");
      ("truncated header", "wpstor");
      ("wrong magic", "NOTMAGIC\n" ^ String.make 40 'x');
      ( "torn payload",
        (* valid magic, digest of a different payload *)
        "wpstore1\n" ^ String.make 16 'd' ^ "garbage payload" );
    ]
  in
  List.iter
    (fun (what, content) ->
      with_store_dir (fun dir ->
          let store = ok_or_fail "create" (Store.create ~dir ()) in
          Store.put store key stats;
          Alcotest.(check int) (what ^ ": persisted") 1 (Store.disk_entries store);
          clobber_file (Filename.concat dir key) content;
          (* a fresh store (no hot entry) must detect, evict, miss *)
          let cold = ok_or_fail "cold store" (Store.create ~dir ()) in
          (match Store.find cold key with
          | None -> ()
          | Some _ -> Alcotest.failf "%s: corrupt entry served" what);
          Alcotest.(check int) (what ^ ": evicted from disk") 0
            (Store.disk_entries cold);
          Alcotest.(check int) (what ^ ": eviction counted") 1
            (Store.evictions cold);
          (* recompute-and-put heals the entry *)
          Store.put cold key stats;
          match Store.find cold key with
          | Some (got, _) -> check_stats_identical (what ^ ": healed") stats got
          | None -> Alcotest.failf "%s: healed entry missing" what))
    corruptions

let test_store_shared_directory () =
  with_store_dir (fun dir ->
      let a = ok_or_fail "store a" (Store.create ~dir ()) in
      let b = ok_or_fail "store b" (Store.create ~dir ()) in
      let entries = Lazy.force fresh_stats in
      let key0, stats0 = List.nth entries 0 in
      let key1, stats1 = List.nth entries 1 in
      (* concurrent same-key writes from both stores race benignly *)
      let t1 = Thread.create (fun () -> Store.put a key0 stats0) () in
      let t2 = Thread.create (fun () -> Store.put b key0 stats0) () in
      Thread.join t1;
      Thread.join t2;
      Store.put b key1 stats1;
      Alcotest.(check int) "no write failures"
        0
        (Store.write_failures a + Store.write_failures b);
      Alcotest.(check int) "both keys on disk" 2 (Store.disk_entries a);
      (* no temporary droppings left behind *)
      let leftovers =
        Array.to_list (Sys.readdir dir)
        |> List.filter (fun e -> String.length e >= 4 && String.sub e 0 4 = ".tmp")
      in
      Alcotest.(check (list string)) "no tmp files" [] leftovers;
      (* each store still reads back an intact entry *)
      match Store.find a key0 with
      | Some (got, _) -> check_stats_identical "shared dir read" stats0 got
      | None -> Alcotest.fail "entry missing after shared writes")

let test_store_rejects_traversal_keys () =
  with_store_dir (fun dir ->
      let store = ok_or_fail "create" (Store.create ~dir ()) in
      let _, stats = List.hd (Lazy.force fresh_stats) in
      (* non-hex keys never touch the filesystem *)
      Store.put store "../../etc/evil" stats;
      Alcotest.(check int) "traversal key not persisted" 0
        (Store.disk_entries store);
      (* the lookup must not crash either *)
      ignore (Store.find store "../../etc/evil"))

let test_store_unwritable_dir () =
  match Store.create ~dir:"/nonexistent-root/deeper/store" () with
  | Ok _ -> Alcotest.fail "store created under a nonexistent root"
  | Error msg ->
      Alcotest.(check bool) "diagnostic not empty" true (String.length msg > 0)

(* --- daemon integration --------------------------------------------- *)

let with_daemon ?workers ?store_dir f =
  let sock = Filename.temp_file "wp-serve" ".sock" in
  Sys.remove sock;
  let endpoint = P.Unix_socket sock in
  let daemon =
    ok_or_fail "daemon create" (Daemon.create ?workers ?store_dir ~endpoint ())
  in
  let thread = Daemon.start daemon in
  Fun.protect
    ~finally:(fun () ->
      Daemon.stop daemon;
      Thread.join thread;
      if Sys.file_exists sock then Sys.remove sock)
    (fun () -> f daemon endpoint)

(* The sequential oracle: digests of locally computed stats, memoised
   per (benchmark, scheme). *)
let oracle_table : (string, string) Hashtbl.t = Hashtbl.create 8
let oracle_preps : (string, Runner.prepared) Hashtbl.t = Hashtbl.create 4

let oracle_digest benchmark scheme =
  let tag = benchmark ^ "/" ^ P.scheme_to_string scheme in
  match Hashtbl.find_opt oracle_table tag with
  | Some d -> d
  | None ->
      let prep =
        match Hashtbl.find_opt oracle_preps benchmark with
        | Some p -> p
        | None ->
            let p = Runner.prepare (Wayplace.Workloads.Mibench.find benchmark) in
            Hashtbl.add oracle_preps benchmark p;
            p
      in
      let config =
        ok_or_fail "oracle config"
          (P.config_of_sim (P.sim_request ~benchmark ~scheme ()))
      in
      let d = Store.stats_digest (Runner.run_scheme prep config) in
      Hashtbl.add oracle_table tag d;
      d

let test_daemon_basics () =
  with_daemon ~workers:2 (fun daemon endpoint ->
      let client = ok_or_fail "connect" (Client.connect endpoint) in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          ok_or_fail "ping" (Client.ping client);
          let sr = P.sim_request ~benchmark:"crc" ~scheme:Config.Baseline () in
          let r1 = ok_or_fail "first sim" (Client.sim client sr) in
          Alcotest.(check bool) "first request computes" true
            (r1.P.source = P.Computed);
          Alcotest.(check string) "matches the sequential oracle"
            (oracle_digest "crc" Config.Baseline)
            r1.P.digest;
          Alcotest.(check int) "one computation" 1 (Daemon.computations daemon);
          (* warm repeat: answered from memory, no simulator run *)
          let r2 = ok_or_fail "repeat sim" (Client.sim client sr) in
          Alcotest.(check bool) "repeat is a memory hit" true
            (r2.P.source = P.Memory);
          Alcotest.(check string) "bit-identical digest" r1.P.digest r2.P.digest;
          Alcotest.(check string) "same content address" r1.P.key r2.P.key;
          Alcotest.(check int) "still one computation" 1
            (Daemon.computations daemon);
          (* no_cache forces a fresh run with an identical result *)
          let r3 =
            ok_or_fail "no_cache sim"
              (Client.sim client
                 (P.sim_request ~no_cache:true ~benchmark:"crc"
                    ~scheme:Config.Baseline ()))
          in
          Alcotest.(check bool) "no_cache computes" true (r3.P.source = P.Computed);
          Alcotest.(check string) "fresh run bit-identical" r1.P.digest r3.P.digest;
          Alcotest.(check int) "second computation" 2 (Daemon.computations daemon);
          (* verify-on-compute passes *)
          let r4 =
            ok_or_fail "verified sim"
              (Client.sim client
                 (P.sim_request ~no_cache:true ~verify:true ~benchmark:"crc"
                    ~scheme:Config.Baseline ()))
          in
          Alcotest.(check string) "verified run bit-identical" r1.P.digest
            r4.P.digest;
          let stats = ok_or_fail "stats" (Client.server_stats client) in
          Alcotest.(check int) "server counts the computations" 3
            stats.P.computations;
          Alcotest.(check int) "server counts the memory hit" 1
            stats.P.hits_memory))

let test_daemon_error_isolation () =
  with_daemon ~workers:1 (fun daemon endpoint ->
      let client = ok_or_fail "connect" (Client.connect endpoint) in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          (* unknown benchmark *)
          (match
             Client.sim client
               (P.sim_request ~benchmark:"no_such_benchmark"
                  ~scheme:Config.Baseline ())
           with
          | Ok _ -> Alcotest.fail "unknown benchmark accepted"
          | Error msg ->
              Alcotest.(check bool) "benchmark named" true
                (String.length msg > 0));
          (* invalid geometry *)
          (match
             Client.sim client
               (P.sim_request ~ways:5 ~benchmark:"crc" ~scheme:Config.Baseline ())
           with
          | Ok _ -> Alcotest.fail "invalid geometry accepted"
          | Error _ -> ());
          (* a raw malformed line gets an error response, not a dropped
             connection *)
          let id = Client.send client P.Ping in
          ignore id;
          (match Client.recv client with
          | Ok { P.reply = P.Pong; _ } -> ()
          | other ->
              Alcotest.failf "expected pong, got %s"
                (match other with
                | Ok _ -> "another reply"
                | Error m -> "error: " ^ m));
          (* the connection survived all of the failures above *)
          ok_or_fail "still serving" (Client.ping client);
          let stats = ok_or_fail "stats" (Client.server_stats client) in
          Alcotest.(check int) "errors counted" 2 stats.P.errors;
          Alcotest.(check int) "nothing computed" 0 (Daemon.computations daemon)))

let test_daemon_persistence_across_restart () =
  with_store_dir (fun dir ->
      let sr = P.sim_request ~benchmark:"crc" ~scheme:Config.Way_memoization () in
      let digest = ref "" in
      with_daemon ~workers:1 ~store_dir:dir (fun daemon endpoint ->
          let client = ok_or_fail "connect" (Client.connect endpoint) in
          Fun.protect
            ~finally:(fun () -> Client.close client)
            (fun () ->
              let r = ok_or_fail "sim" (Client.sim client sr) in
              Alcotest.(check bool) "computed" true (r.P.source = P.Computed);
              digest := r.P.digest;
              Alcotest.(check int) "one computation" 1
                (Daemon.computations daemon)));
      (* a new daemon on the same store answers from disk: zero
         simulator runs, bit-identical result *)
      with_daemon ~workers:1 ~store_dir:dir (fun daemon endpoint ->
          let client = ok_or_fail "connect" (Client.connect endpoint) in
          Fun.protect
            ~finally:(fun () -> Client.close client)
            (fun () ->
              let r = ok_or_fail "sim after restart" (Client.sim client sr) in
              Alcotest.(check bool) "disk hit" true (r.P.source = P.Disk);
              Alcotest.(check string) "bit-identical across restart" !digest
                r.P.digest;
              Alcotest.(check int) "no computation" 0
                (Daemon.computations daemon);
              (* and the promoted entry now hits memory *)
              let r2 = ok_or_fail "third run" (Client.sim client sr) in
              Alcotest.(check bool) "promoted to memory" true
                (r2.P.source = P.Memory)));
      (* corrupt the persisted entry: the next daemon recomputes *)
      (match Sys.readdir dir with
      | [||] -> Alcotest.fail "store directory empty"
      | entries ->
          Array.iter
            (fun e -> clobber_file (Filename.concat dir e) "torn write")
            entries);
      with_daemon ~workers:1 ~store_dir:dir (fun daemon endpoint ->
          let client = ok_or_fail "connect" (Client.connect endpoint) in
          Fun.protect
            ~finally:(fun () -> Client.close client)
            (fun () ->
              let r = ok_or_fail "sim after corruption" (Client.sim client sr) in
              Alcotest.(check bool) "recomputed" true (r.P.source = P.Computed);
              Alcotest.(check string) "recomputation bit-identical" !digest
                r.P.digest;
              Alcotest.(check int) "one computation" 1
                (Daemon.computations daemon))))

(* --- concurrency stress ---------------------------------------------- *)

let stress_mix =
  [
    ("crc", Config.Baseline);
    ("crc", Config.Way_placement { area_bytes = 16 * 1024 });
    ("crc", Config.Way_memoization);
    ("sha", Config.Baseline);
    ("sha", Config.Way_placement { area_bytes = 16 * 1024 });
  ]

let test_daemon_concurrent_clients_vs_oracle () =
  (* compute the oracle digests before opening the daemon so the
     comparison is against an independent sequential run *)
  let oracle =
    List.map (fun (b, s) -> ((b, s), oracle_digest b s)) stress_mix
  in
  with_daemon ~workers:2 (fun daemon endpoint ->
      let per_domain = 40 in
      let n_domains = 4 in
      let run_client seed =
        let client = ok_or_fail "connect" (Client.connect endpoint) in
        Fun.protect
          ~finally:(fun () -> Client.close client)
          (fun () ->
            List.init per_domain (fun i ->
                let b, s =
                  List.nth stress_mix ((seed + i) mod List.length stress_mix)
                in
                let r =
                  ok_or_fail "stress sim"
                    (Client.sim client (P.sim_request ~benchmark:b ~scheme:s ()))
                in
                ((b, s), r.P.digest)))
      in
      let domains =
        List.init n_domains (fun d -> Domain.spawn (fun () -> run_client d))
      in
      let answers = List.concat_map Domain.join domains in
      Alcotest.(check int) "every request answered"
        (per_domain * n_domains)
        (List.length answers);
      List.iter
        (fun ((b, s), digest) ->
          let expected = List.assoc (b, s) oracle in
          if digest <> expected then
            Alcotest.failf "%s/%s diverged from the sequential oracle" b
              (P.scheme_to_string s))
        answers;
      (* dedup: at most one computation per distinct key *)
      Alcotest.(check bool)
        (Printf.sprintf "computations (%d) <= distinct keys (%d)"
           (Daemon.computations daemon)
           (List.length stress_mix))
        true
        (Daemon.computations daemon <= List.length stress_mix);
      let stats = Daemon.server_stats daemon in
      Alcotest.(check int) "hits + computations + coalesced = requests"
        (per_domain * n_domains)
        (stats.P.computations + stats.P.hits_memory + stats.P.hits_disk
       + stats.P.coalesced))

(* --- the mp request class ------------------------------------------- *)

let test_daemon_mp () =
  with_daemon ~workers:2 (fun daemon endpoint ->
      let client = ok_or_fail "connect" (Client.connect endpoint) in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          let wp16 = Config.Way_placement { area_bytes = 16 * 1024 } in
          let mr =
            P.mp_request ~mix:"crc,sha" ~coverage:"half" ~quantum:10_000
              ~scheme:wp16 ()
          in
          let r1 = ok_or_fail "first mp" (Client.mp client mr) in
          Alcotest.(check bool) "first mp computes" true
            (r1.P.mpr_source = P.Computed);
          Alcotest.(check int) "two processes" 2 r1.P.mpr_processes;
          Alcotest.(check bool) "switches observed" true (r1.P.mpr_switches > 0);
          Alcotest.(check bool) "keys live in the mp- namespace" true
            (String.length r1.P.mpr_key > 3
            && String.sub r1.P.mpr_key 0 3 = "mp-");
          (* the same run locally: the aggregate is bit-identical *)
          let mix =
            Wayplace.Mp.Mix.apply_coverage Wayplace.Mp.Mix.Half_placed
              (ok_or_fail "mix" (Wayplace.Mp.Mix.of_names [ "crc"; "sha" ]))
          in
          let config = ok_or_fail "config" (P.config_of_mp mr) in
          let options =
            {
              Wayplace.Mp.Machine.default_options with
              Wayplace.Mp.Machine.quantum_cycles = 10_000;
            }
          in
          let local = Wayplace.Mp.Machine.run ~config ~options mix in
          Alcotest.(check string) "matches the local oracle"
            (Store.stats_digest local.Wayplace.Mp.Machine.aggregate)
            r1.P.mpr_digest;
          Alcotest.(check int) "switch count matches the local oracle"
            local.Wayplace.Mp.Machine.switches r1.P.mpr_switches;
          (* warm repeat: a memory hit with the machine facts intact *)
          let r2 = ok_or_fail "repeat mp" (Client.mp client mr) in
          Alcotest.(check bool) "repeat is a memory hit" true
            (r2.P.mpr_source = P.Memory);
          Alcotest.(check string) "same content address" r1.P.mpr_key
            r2.P.mpr_key;
          Alcotest.(check string) "bit-identical digest" r1.P.mpr_digest
            r2.P.mpr_digest;
          Alcotest.(check int) "switches preserved on the hit"
            r1.P.mpr_switches r2.P.mpr_switches;
          Alcotest.(check int) "one computation" 1 (Daemon.computations daemon);
          (* verify-on-compute replays the reference loop and passes *)
          let r3 =
            ok_or_fail "verified mp"
              (Client.mp client
                 (P.mp_request ~mix:"crc,sha" ~coverage:"half" ~quantum:10_000
                    ~no_cache:true ~verify:true ~scheme:wp16 ()))
          in
          Alcotest.(check string) "verified run bit-identical" r1.P.mpr_digest
            r3.P.mpr_digest;
          (* a random: mix resolves through the fuzz generator *)
          let r4 =
            ok_or_fail "random mix"
              (Client.mp client
                 (P.mp_request ~mix:"random:3" ~scheme:Config.Baseline ()))
          in
          Alcotest.(check bool) "random mix retires instructions" true
            (r4.P.mpr_retired > 0);
          (* unknown names are an error reply, not a dead daemon *)
          (match
             Client.mp client
               (P.mp_request ~mix:"no_such,crc" ~scheme:Config.Baseline ())
           with
          | Ok _ -> Alcotest.fail "unknown mix accepted"
          | Error msg ->
              Alcotest.(check bool) "diagnostic not empty" true
                (String.length msg > 0));
          ok_or_fail "daemon still serving" (Client.ping client)))

(* --- the advise request class --------------------------------------- *)

let test_daemon_advise () =
  with_daemon ~workers:2 (fun daemon endpoint ->
      let client = ok_or_fail "connect" (Client.connect endpoint) in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          let ar =
            P.advise_request ~size_kb:1 ~ways:8 ~line_bytes:32 ~area_kb:2
              ~page_bytes:1024 ~benchmark:"crc" ()
          in
          let r1 = ok_or_fail "first advise" (Client.advise client ar) in
          Alcotest.(check bool) "first advise computes" true
            (r1.P.adr_source = P.Computed);
          Alcotest.(check bool) "keys live in the advise- namespace" true
            (String.length r1.P.adr_key > 7
            && String.sub r1.P.adr_key 0 7 = "advise-");
          Alcotest.(check bool) "regions found" true (r1.P.adr_regions > 0);
          Alcotest.(check bool) "static bound positive" true
            (r1.P.adr_static_min_ways >= 1);
          Alcotest.(check bool) "envelope ordered" true
            (r1.P.adr_env_lo_pj <= r1.P.adr_env_hi_pj);
          (* the same analysis locally: the report is bit-identical *)
          let prep = Runner.prepare (Wayplace.Workloads.Mibench.find "crc") in
          let geometry =
            Wayplace.Cache.Geometry.make ~size_bytes:1024 ~assoc:8
              ~line_bytes:32
          in
          let local =
            Wayplace.Advise.Advisor.analyze ~benchmark:"crc"
              ~graph:prep.Runner.program.Wayplace.Workloads.Codegen.graph
              ~profile:prep.Runner.profile_small ~trace:prep.Runner.trace_large
              ~layout:prep.Runner.placed_layout ~geometry ~page_bytes:1024
              ~area_bytes:2048
              ~energy:(Config.xscale Config.Baseline).Config.energy ()
          in
          Alcotest.(check string) "matches the local oracle"
            (Digest.to_hex (Digest.string (Marshal.to_string local [])))
            r1.P.adr_digest;
          (* warm repeat: a memory hit with the same content address *)
          let r2 = ok_or_fail "repeat advise" (Client.advise client ar) in
          Alcotest.(check bool) "repeat is a memory hit" true
            (r2.P.adr_source = P.Memory);
          Alcotest.(check string) "same content address" r1.P.adr_key
            r2.P.adr_key;
          Alcotest.(check string) "bit-identical digest" r1.P.adr_digest
            r2.P.adr_digest;
          (* no_cache recomputes — deterministically the same report *)
          let r3 =
            ok_or_fail "no_cache advise"
              (Client.advise client { ar with P.ad_no_cache = true })
          in
          Alcotest.(check bool) "no_cache recomputes" true
            (r3.P.adr_source = P.Computed);
          Alcotest.(check string) "recomputation bit-identical" r1.P.adr_digest
            r3.P.adr_digest;
          (* bad inputs are error replies, not a dead daemon *)
          (match
             Client.advise client (P.advise_request ~benchmark:"no_such" ())
           with
          | Ok _ -> Alcotest.fail "unknown benchmark accepted"
          | Error msg ->
              Alcotest.(check bool) "diagnostic not empty" true
                (String.length msg > 0));
          (match
             Client.advise client
               (P.advise_request ~ways:3 ~benchmark:"crc" ())
           with
          | Ok _ -> Alcotest.fail "non-power-of-two ways accepted"
          | Error msg ->
              Alcotest.(check bool) "geometry diagnostic not empty" true
                (String.length msg > 0));
          ignore daemon;
          ok_or_fail "daemon still serving" (Client.ping client)))

let test_daemon_coalesces_inflight () =
  with_daemon ~workers:1 (fun daemon endpoint ->
      let client = ok_or_fail "connect" (Client.connect endpoint) in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          (* pipeline a burst of identical fresh requests before the
             first can complete: exactly one computation, everyone
             answered identically *)
          let sr = P.sim_request ~benchmark:"sha" ~scheme:Config.Way_prediction () in
          let n = 16 in
          let ids = List.init n (fun _ -> Client.send client (P.Sim sr)) in
          let responses =
            List.map
              (fun _ ->
                match Client.recv client with
                | Ok r -> r
                | Error msg -> Alcotest.failf "recv failed: %s" msg)
              ids
          in
          Alcotest.(check int) "all answered" n (List.length responses);
          let digests =
            List.map
              (fun r ->
                match r.P.reply with
                | P.Sim_reply s -> s.P.digest
                | P.Error_reply m -> Alcotest.failf "request failed: %s" m
                | _ -> Alcotest.fail "unexpected reply")
              responses
          in
          let first = List.hd digests in
          List.iter
            (fun d -> Alcotest.(check string) "identical digest" first d)
            digests;
          Alcotest.(check int) "burst coalesced onto one computation" 1
            (Daemon.computations daemon)))

let test_daemon_grid () =
  with_daemon ~workers:2 (fun daemon endpoint ->
      let client = ok_or_fail "connect" (Client.connect endpoint) in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          let gr =
            P.grid_request ~benchmarks:[ "crc"; "sha" ]
              ~schemes:
                [
                  Config.Baseline;
                  Config.Way_placement { area_bytes = 16 * 1024 };
                ]
              ()
          in
          let streamed = ref 0 in
          let cells, summary =
            ok_or_fail "grid"
              (Client.grid ~on_cell:(fun _ -> incr streamed) client gr)
          in
          Alcotest.(check int) "full cross product served" 4
            (List.length cells);
          Alcotest.(check int) "every cell streamed" 4 !streamed;
          Alcotest.(check int) "summary counts the cells" 4 summary.P.gs_cells;
          Alcotest.(check int) "sources partition the cells" 4
            (summary.P.gs_computed + summary.P.gs_hits_memory
           + summary.P.gs_hits_disk + summary.P.gs_coalesced
           + summary.P.gs_errors);
          Alcotest.(check int) "no errors" 0 summary.P.gs_errors;
          (* cells come back in canonical grid order with their
             coordinates echoed *)
          let expected = P.grid_cells gr in
          List.iteri
            (fun i c ->
              let b, s, kb, w = List.nth expected i in
              Alcotest.(check int) "index" i c.P.gc_index;
              Alcotest.(check string) "benchmark" b c.P.gc_benchmark;
              Alcotest.(check bool) "scheme" true (s = c.P.gc_scheme);
              Alcotest.(check int) "size" kb c.P.gc_size_kb;
              Alcotest.(check int) "ways" w c.P.gc_ways)
            cells;
          (* every cell's stats match the sequential oracle *)
          List.iter
            (fun c ->
              match c.P.gc_outcome with
              | Error e ->
                  Alcotest.failf "%s cell errored: %s" c.P.gc_benchmark e
              | Ok r ->
                  Alcotest.(check string)
                    (c.P.gc_benchmark ^ " matches oracle")
                    (oracle_digest c.P.gc_benchmark c.P.gc_scheme)
                    r.P.digest)
            cells;
          (* the same grid again: every cell is a store hit, nothing
             recomputes *)
          let computed_before = Daemon.computations daemon in
          let _, warm = ok_or_fail "warm grid" (Client.grid client gr) in
          Alcotest.(check int) "warm grid: all cells memory hits" 4
            warm.P.gs_hits_memory;
          Alcotest.(check int) "warm grid computes nothing" 0
            warm.P.gs_computed;
          Alcotest.(check int) "no new computations" computed_before
            (Daemon.computations daemon);
          (* grids and standalone sims share the content address *)
          let r =
            ok_or_fail "sim after grid"
              (Client.sim client
                 (P.sim_request ~benchmark:"crc" ~scheme:Config.Baseline ()))
          in
          Alcotest.(check bool) "standalone sim hits the grid's entry" true
            (r.P.source = P.Memory);
          (* a bad cell fails alone; the rest of the grid still lands *)
          let mixed =
            P.grid_request
              ~benchmarks:[ "crc"; "no_such_benchmark" ]
              ~schemes:[ Config.Baseline ] ()
          in
          let cells2, s3 = ok_or_fail "mixed grid" (Client.grid client mixed) in
          Alcotest.(check int) "one cell errored" 1 s3.P.gs_errors;
          (match cells2 with
          | [ good; bad ] ->
              (match good.P.gc_outcome with
              | Ok _ -> ()
              | Error e -> Alcotest.failf "good cell errored: %s" e);
              (match bad.P.gc_outcome with
              | Error _ -> ()
              | Ok _ -> Alcotest.fail "unknown benchmark produced a result")
          | _ -> Alcotest.fail "expected exactly two cells");
          (* an empty cross product is a whole-request error *)
          let empty =
            {
              P.g_benchmarks = [ "crc" ];
              g_schemes = [];
              g_sizes_kb = [ 32 ];
              g_ways = [ 32 ];
              g_line_bytes = 32;
              g_no_cache = false;
            }
          in
          match Client.grid client empty with
          | Ok _ -> Alcotest.fail "empty grid accepted"
          | Error msg ->
              Alcotest.(check bool) "diagnostic not empty" true
                (String.length msg > 0)))

let test_loadtest_grid_warm () =
  (* The load tester counts each streamed cell as its own response
     with its own source, so a warm grid measures per-cell reuse: the
     hit ratio over an all-hits run must be ~1.0. *)
  with_daemon ~workers:2 (fun _daemon endpoint ->
      let gr =
        P.grid_request ~benchmarks:[ "crc" ]
          ~schemes:[ Config.Baseline; Config.Way_memoization ]
          ()
      in
      let client = ok_or_fail "connect" (Client.connect endpoint) in
      ignore (ok_or_fail "prewarm" (Client.grid client gr));
      Client.close client;
      let res =
        ok_or_fail "loadtest"
          (Wayplace.Serve.Loadtest.run
             {
               Wayplace.Serve.Loadtest.endpoint;
               connections = 2;
               depth = 2;
               total = 6;
               mix = [| P.Grid gr |];
             })
      in
      let open Wayplace.Serve.Loadtest in
      Alcotest.(check int) "six grids sent" 6 res.sent;
      Alcotest.(check int) "every cell ok" 12 res.ok;
      Alcotest.(check int) "nothing errored" 0 res.errored;
      Alcotest.(check bool)
        (Printf.sprintf "warm hit ratio %.3f >= 0.99" res.hit_ratio)
        true (res.hit_ratio >= 0.99))

let test_daemon_shutdown_mid_burst () =
  with_daemon ~workers:2 (fun daemon endpoint ->
      let client = ok_or_fail "connect" (Client.connect endpoint) in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          let n = 30 in
          let ids =
            List.init n (fun i ->
                let b, s = List.nth stress_mix (i mod List.length stress_mix) in
                Client.send client (P.Sim (P.sim_request ~benchmark:b ~scheme:s ())))
          in
          (* stop the daemon while the burst is in flight *)
          Daemon.stop daemon;
          (* every accepted request still gets a real answer *)
          let ok = ref 0 in
          List.iter
            (fun _ ->
              match Client.recv client with
              | Ok { P.reply = P.Sim_reply _; _ } -> incr ok
              | Ok { P.reply = P.Error_reply msg; _ } ->
                  Alcotest.failf "request failed during shutdown: %s" msg
              | Ok _ -> Alcotest.fail "unexpected reply"
              | Error msg -> Alcotest.failf "connection lost mid-drain: %s" msg)
            ids;
          Alcotest.(check int) "no accepted request lost" n !ok);
      (* new connections are refused once the listener is closed *)
      match Client.connect ~attempts:1 endpoint with
      | Ok c ->
          (* accepted by a race before the close: it must still be
             served or cleanly closed *)
          Client.close c
      | Error _ -> ())

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "request round-trip (all variants)" `Quick
            test_request_roundtrip;
          Alcotest.test_case "response round-trip (all variants)" `Quick
            test_response_roundtrip;
          Alcotest.test_case "malformed requests are clean errors" `Quick
            test_request_decode_errors;
          Alcotest.test_case "config_of_sim validates geometry" `Quick
            test_config_of_sim;
          Alcotest.test_case "grid cells in canonical order" `Quick
            test_grid_cells_order;
        ] );
      ( "store",
        [
          Alcotest.test_case "hit is bit-identical to fresh computation" `Quick
            test_store_hit_bit_identical;
          Alcotest.test_case "corrupt entries evicted and recomputed" `Quick
            test_store_corruption_recovery;
          Alcotest.test_case "two stores share a directory safely" `Quick
            test_store_shared_directory;
          Alcotest.test_case "traversal keys never touch the disk" `Quick
            test_store_rejects_traversal_keys;
          Alcotest.test_case "unwritable directory is a clean error" `Quick
            test_store_unwritable_dir;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "compute, memoise, verify over a socket" `Quick
            test_daemon_basics;
          Alcotest.test_case "per-request error isolation" `Quick
            test_daemon_error_isolation;
          Alcotest.test_case "mp requests memoise on the full mix" `Quick
            test_daemon_mp;
          Alcotest.test_case "advise requests memoise on their inputs" `Quick
            test_daemon_advise;
          Alcotest.test_case "store survives a restart" `Quick
            test_daemon_persistence_across_restart;
          Alcotest.test_case "grid batch: stream, share, memoise" `Quick
            test_daemon_grid;
          Alcotest.test_case "loadtest counts grid cells" `Quick
            test_loadtest_grid_warm;
        ] );
      ( "stress",
        [
          Alcotest.test_case "parallel clients match the sequential oracle"
            `Quick test_daemon_concurrent_clients_vs_oracle;
          Alcotest.test_case "identical in-flight requests coalesce" `Quick
            test_daemon_coalesces_inflight;
          Alcotest.test_case "graceful shutdown loses no accepted request"
            `Quick test_daemon_shutdown_mid_burst;
        ] );
    ]
