(* Fast-path equivalence: the block-batched replay (Compiled_trace +
   Fetch_engine.fetch_run) must produce Stats bit-identical to the
   per-instruction reference loop, on every scheme and on kernels
   crafted to stress the batching boundaries — long same-line streaks,
   blocks that straddle cache lines, and drowsy wake accounting. *)

module Config = Wayplace.Sim.Config
module Stats = Wayplace.Sim.Stats
module Simulator = Wayplace.Sim.Simulator
module Runner = Wayplace.Sim.Runner
module Geometry = Wayplace.Cache.Geometry
module Replacement = Wayplace.Cache.Replacement
module Mibench = Wayplace.Workloads.Mibench
module Spec = Wayplace.Workloads.Spec

(* --- hand-crafted kernels ---------------------------------------- *)

let kernel ~name ~seed ~instrs:(imin, imax) ?(funcs = 4) ?(blocks = (2, 5))
    ?(loop_depth = 2) ?(trips = 9) () =
  {
    Spec.name;
    seed;
    num_funcs = funcs;
    blocks_per_func_min = fst blocks;
    blocks_per_func_max = snd blocks;
    instrs_per_block_min = imin;
    instrs_per_block_max = imax;
    max_loop_depth = loop_depth;
    avg_loop_trips = trips;
    hot_func_fraction = 0.5;
    hot_call_bias = 0.8;
    if_taken_bias = 0.45;
    mem_ratio = 0.25;
    mac_ratio = 0.05;
    data_working_set_bytes = 8 * 1024;
    trace_blocks_large = 3_000;
    trace_blocks_small = 3_000;
  }

(* Long straight-line blocks: a 32 B line holds 8 instructions, so
   16-24-instruction blocks are dominated by same-line runs — the case
   the batched path collapses into single fetch_run calls. *)
let streaks = kernel ~name:"streaks" ~seed:11 ~instrs:(16, 24) ()

(* Short odd-length blocks keep block starts drifting across line
   boundaries, so most runs straddle a line edge mid-block. *)
let straddle =
  kernel ~name:"straddle" ~seed:12 ~instrs:(1, 3) ~funcs:6 ~blocks:(3, 7) ()

(* Single-instruction blocks: every batched run has length 1 — the
   degenerate case where batching must still agree on every counter. *)
let singletons = kernel ~name:"singletons" ~seed:13 ~instrs:(1, 1) ()

let prep_of = Hashtbl.create 8

let prepare spec =
  match Hashtbl.find_opt prep_of spec.Spec.name with
  | Some p -> p
  | None ->
      let p = Runner.prepare spec in
      Hashtbl.add prep_of spec.Spec.name p;
      p

(* --- the invariant ----------------------------------------------- *)

let check_equiv spec config =
  let prep = prepare spec in
  (* Fast path: Runner.run_scheme dispatches to the block-batched
     replay (no probe, no schedule). *)
  let fast = Runner.run_scheme prep config in
  let reference =
    Simulator.run_compiled ~reference_only:true ~config
      ~trace:prep.Runner.trace_large
      (Runner.compiled_for prep config)
  in
  if not (Stats.equal fast reference) then
    Alcotest.failf "%s / %s: fast path diverges from reference:@ %a"
      spec.Spec.name
      (Config.scheme_name config.Config.scheme)
      Stats.pp_diff (fast, reference)

let schemes =
  [
    Config.Baseline;
    Config.Way_placement { area_bytes = 2048 };
    Config.Way_placement { area_bytes = 16 * 1024 };
    Config.Way_memoization;
    Config.Way_prediction;
    Config.Filter_cache { l0_bytes = 512 };
  ]

let kernels = [ streaks; straddle; singletons; Mibench.tiny ]

(* --- tests ------------------------------------------------------- *)

let test_all_schemes spec () =
  List.iter (fun s -> check_equiv spec (Config.xscale s)) schemes

(* A small, low-associativity geometry makes conflict misses (and thus
   mid-run evictions and refills) frequent.  The filter cache's L0 must
   stay strictly smaller than this L1. *)
let small_geometry = Geometry.make ~size_bytes:512 ~assoc:4 ~line_bytes:16

let small_schemes =
  List.map
    (function
      | Config.Filter_cache _ -> Config.Filter_cache { l0_bytes = 128 }
      | s -> s)
    schemes

let test_small_geometry () =
  List.iter
    (fun s ->
      check_equiv straddle (Config.with_icache (Config.xscale s) small_geometry))
    small_schemes

let test_lru () =
  List.iter
    (fun s ->
      check_equiv straddle
        (Config.with_replacement
           (Config.with_icache (Config.xscale s) small_geometry)
           Replacement.Lru))
    small_schemes

let test_elision_off () =
  (* With elision disabled every instruction of a same-line run pays a
     full CAM search — the branch of fetch_run that batches whole-width
     lookups. *)
  List.iter
    (fun s ->
      check_equiv streaks
        (Config.with_same_line_elision (Config.xscale s) false))
    schemes

let drowsy_configs =
  (* Drowsy is only supported for baseline and way-placement; exercise
     a window small enough that lines fall asleep inside the trace. *)
  List.concat_map
    (fun s ->
      let leak = Config.with_leakage (Config.xscale s) true in
      [ leak; Config.with_drowsy leak (Some 64) ])
    [ Config.Baseline; Config.Way_placement { area_bytes = 2048 } ]

let test_drowsy spec () = List.iter (check_equiv spec) drowsy_configs

(* --- plan memo: concurrent first-request dedup -------------------- *)

module Compiled_trace = Wayplace.Sim.Compiled_trace

let test_plan_concurrent_dedup () =
  (* A fresh compiled trace so this test owns every first [plan]
     request.  For each line size, domains race the first request; the
     memo may let several compute, but every caller must get the one
     plan the first insert won with — physical equality, so later
     sharing (and the sweep's cross-domain reuse) is real. *)
  let prep = prepare streaks in
  let compiled =
    Compiled_trace.make ~program:prep.Runner.program
      ~layout:prep.Runner.original_layout
  in
  let n = 8 in
  List.iter
    (fun line_bytes ->
      let ready = Atomic.make 0 in
      let worker () =
        Atomic.incr ready;
        while Atomic.get ready < n do
          Domain.cpu_relax ()
        done;
        Compiled_trace.plan compiled ~line_bytes
      in
      let plans =
        List.map Domain.join (List.init n (fun _ -> Domain.spawn worker))
      in
      let first = List.hd plans in
      List.iteri
        (fun i p ->
          Alcotest.(check bool)
            (Printf.sprintf "line %d: domain %d shares the plan" line_bytes i)
            true (p == first))
        plans;
      Alcotest.(check bool)
        (Printf.sprintf "line %d: later request hits the memo" line_bytes)
        true
        (Compiled_trace.plan compiled ~line_bytes == first))
    [ 16; 32; 64; 128 ]

let test_plan_invalid_line_bytes () =
  let prep = prepare streaks in
  let compiled = prep.Runner.compiled_original in
  List.iter
    (fun lb ->
      Alcotest.check_raises
        (Printf.sprintf "line_bytes %d rejected" lb)
        (Invalid_argument
           "Compiled_trace.plan: line_bytes must be a positive power of two")
        (fun () -> ignore (Compiled_trace.plan compiled ~line_bytes:lb)))
    [ 0; -32; 48 ]

let () =
  Alcotest.run "fastpath"
    [
      ( "scheme grid",
        List.map
          (fun spec ->
            Alcotest.test_case spec.Spec.name `Quick (test_all_schemes spec))
          kernels );
      ( "geometry",
        [
          Alcotest.test_case "512B 4-way 16B lines" `Quick test_small_geometry;
          Alcotest.test_case "LRU replacement" `Quick test_lru;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "same-line elision off" `Quick test_elision_off;
        ] );
      ( "drowsy",
        [
          Alcotest.test_case "streaks: leakage, drowsy on/off" `Quick
            (test_drowsy streaks);
          Alcotest.test_case "straddle: leakage, drowsy on/off" `Quick
            (test_drowsy straddle);
        ] );
      ( "plan memo",
        [
          Alcotest.test_case "concurrent first request dedups" `Quick
            test_plan_concurrent_dedup;
          Alcotest.test_case "invalid line size rejected" `Quick
            test_plan_invalid_line_bytes;
        ] );
    ]
