(* Differential tests: the oracle cache against the production CAM
   cache under random traffic, the program generator's validity and
   determinism, the shrinker's contract, and the headline run — every
   invariant in Differ holding over hundreds of generated programs. *)

module Cache = Wayplace.Cache
module Geometry = Cache.Geometry
module Replacement = Cache.Replacement
module Cam_cache = Cache.Cam_cache
module Check = Wayplace.Check
module Oracle = Check.Oracle_cache
module Progen = Check.Progen
module Differ = Check.Differ
module Spec = Wayplace.Workloads.Spec
module Rng = Wayplace.Workloads.Rng
module Stats = Wayplace.Sim.Stats

(* --- oracle cache vs production cache, random traffic --- *)

(* Drive both implementations with the same interleaved operation
   stream and require identical observable behaviour at every step:
   outcomes, victim choices, eviction reports, and full resident
   state. *)
let random_traffic ~replacement ~geometry ~seed ~ops =
  let rng = Rng.create seed in
  let cam = Cam_cache.create geometry ~replacement in
  let oracle = Oracle.create geometry ~replacement in
  let assoc = geometry.Geometry.assoc in
  (* a handful of hot lines so hits, conflicts and evictions all occur *)
  let addr_pool =
    Array.init (4 * Geometry.lines geometry) (fun _ ->
        Rng.int rng (16 * geometry.Geometry.size_bytes))
  in
  let check_outcome step what (c : Cam_cache.outcome) (o : Oracle.outcome) =
    let ck name a b =
      Alcotest.(check int)
        (Printf.sprintf "step %d %s %s" step what name)
        a b
    in
    Alcotest.(check bool)
      (Printf.sprintf "step %d %s hit" step what)
      c.Cam_cache.hit o.Oracle.hit;
    if c.Cam_cache.hit then ck "way" c.Cam_cache.way o.Oracle.way;
    ck "tag_comparisons" c.Cam_cache.tag_comparisons o.Oracle.tag_comparisons;
    ck "ways_precharged" c.Cam_cache.ways_precharged o.Oracle.ways_precharged
  in
  for step = 1 to ops do
    let addr = addr_pool.(Rng.int rng (Array.length addr_pool)) in
    (match Rng.int rng 10 with
    | 0 | 1 | 2 | 3 ->
        (* full lookup, fill on miss (the baseline fetch path) *)
        let c = Cam_cache.lookup_full cam addr in
        let o = Oracle.lookup_full oracle addr in
        check_outcome step "lookup_full" c o;
        if not c.Cam_cache.hit then begin
          let cw, cev = Cam_cache.fill cam addr Cam_cache.Victim_by_policy in
          let ow, oev = Oracle.fill oracle addr Oracle.Victim_by_policy in
          Alcotest.(check int)
            (Printf.sprintf "step %d fill way" step)
            cw ow;
          Alcotest.(check bool)
            (Printf.sprintf "step %d eviction agrees" step)
            true
            (match (cev, oev) with
            | None, None -> true
            | Some c, Some o ->
                c.Cam_cache.set = o.Oracle.set
                && c.Cam_cache.way = o.Oracle.way
                && c.Cam_cache.tag = o.Oracle.tag
            | _ -> false)
        end
    | 4 | 5 ->
        (* single-way probe (way-placement / way-prediction path) *)
        let way = Rng.int rng assoc in
        let c = Cam_cache.lookup_way cam addr ~way in
        let o = Oracle.lookup_way oracle addr ~way in
        check_outcome step "lookup_way" c o
    | 6 ->
        (* forced-way fill (way-placement) *)
        let way = Geometry.way_of_addr geometry addr in
        let cw, _ = Cam_cache.fill cam addr (Cam_cache.Forced_way way) in
        let ow, _ = Oracle.fill oracle addr (Oracle.Forced_way way) in
        Alcotest.(check int)
          (Printf.sprintf "step %d forced fill way" step)
          cw ow
    | 7 ->
        Alcotest.(check (option int))
          (Printf.sprintf "step %d probe" step)
          (Cam_cache.probe cam addr) (Oracle.probe oracle addr)
    | 8 ->
        let set = Geometry.set_index geometry addr in
        let way = Rng.int rng assoc in
        Cam_cache.invalidate cam ~set ~way;
        Oracle.invalidate oracle ~set ~way
    | _ ->
        (* occasional flush resets both to a known state *)
        if Rng.int rng 50 = 0 then begin
          Cam_cache.flush cam;
          Oracle.flush oracle
        end);
    if step mod 97 = 0 then begin
      Alcotest.(check int)
        (Printf.sprintf "step %d valid_lines" step)
        (Cam_cache.valid_lines cam)
        (Oracle.valid_lines oracle);
      for set = 0 to Geometry.sets geometry - 1 do
        Alcotest.(check (list (pair int int)))
          (Printf.sprintf "step %d resident set %d" step set)
          (Cam_cache.resident_tags cam ~set)
          (Oracle.resident_tags oracle ~set)
      done
    end
  done

let test_oracle_equivalence () =
  List.iter
    (fun replacement ->
      List.iter
        (fun (size_bytes, assoc, line_bytes) ->
          let geometry = Geometry.make ~size_bytes ~assoc ~line_bytes in
          List.iter
            (fun seed -> random_traffic ~replacement ~geometry ~seed ~ops:2000)
            [ 11; 42; 1234 ])
        [ (256, 2, 16); (512, 4, 16); (1024, 8, 32) ])
    [ Replacement.Round_robin; Replacement.Lru ]

(* --- the program generator --- *)

let test_progen_valid_and_deterministic () =
  for seed = 0 to 99 do
    let s1 = Progen.spec_of_seed seed in
    let s2 = Progen.spec_of_seed seed in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d deterministic" seed)
      true (s1 = s2);
    match Spec.validate s1 with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "seed %d invalid: %s" seed msg
  done;
  (* adjacent seeds give different programs (the stream is live) *)
  Alcotest.(check bool) "seeds differ" true
    (Progen.spec_of_seed 0 <> Progen.spec_of_seed 1)

let test_progen_spread () =
  (* The generator must cover the interesting region: some programs
     with loops, some with many functions, some tiny. *)
  let specs = List.init 200 Progen.spec_of_seed in
  let count p = List.length (List.filter p specs) in
  Alcotest.(check bool) "some with nested loops" true
    (count (fun s -> s.Spec.max_loop_depth >= 2) > 10);
  Alcotest.(check bool) "some loop-free" true
    (count (fun s -> s.Spec.max_loop_depth = 0) > 10);
  Alcotest.(check bool) "some many-function" true
    (count (fun s -> s.Spec.num_funcs >= 10) > 10);
  Alcotest.(check bool) "some single-function" true
    (count (fun s -> s.Spec.num_funcs = 1) > 2)

let test_shrink_candidates_strictly_smaller () =
  List.iter
    (fun seed ->
      let s = Progen.spec_of_seed seed in
      List.iter
        (fun c ->
          Alcotest.(check bool) "strictly smaller" true
            (Progen.size c < Progen.size s);
          Alcotest.(check bool) "still valid" true
            (Result.is_ok (Spec.validate c)))
        (Progen.shrink_candidates s))
    [ 0; 1; 2; 3; 4; 17; 99 ]

let test_minimize_contract () =
  (* An artificial monotone failure predicate: shrinking must stop at
     the smallest spec that still satisfies it, and the result must be
     locally minimal (every further candidate passes). *)
  let failing s = s.Spec.num_funcs >= 4 in
  let start = Progen.spec_of_seed 0 in
  Alcotest.(check bool) "chosen start fails" true (failing start);
  let small = Progen.minimize ~failing start in
  Alcotest.(check bool) "result still fails" true (failing small);
  Alcotest.(check int) "boundary reached" 4 small.Spec.num_funcs;
  Alcotest.(check int) "locally minimal: no candidate still fails" 0
    (List.length (List.filter failing (Progen.shrink_candidates small)));
  (* determinism: same input, same minimum *)
  Alcotest.(check bool) "deterministic" true
    (Progen.minimize ~failing start = small);
  (* the everything-fails predicate drives the spec to a fixpoint with
     no candidates left: the floor of the shrink lattice *)
  let floor = Progen.minimize ~failing:(fun _ -> true) start in
  Alcotest.(check int) "no candidates below the floor" 0
    (List.length (Progen.shrink_candidates floor))

(* --- the differential runner --- *)

let test_run_seed_with_injected_check () =
  (* A fabricated violation exercises the whole report pipeline without
     a real simulator bug: run_seed must reproduce it, shrink the spec,
     and carry the violations of both programs. *)
  let check s =
    if s.Spec.num_funcs >= 2 then [ "too many functions" ] else []
  in
  let seed =
    (* first seed whose generated program trips the injected check *)
    let rec find seed =
      if check (Progen.spec_of_seed seed) <> [] then seed else find (seed + 1)
    in
    find 0
  in
  match Differ.run_seed ~check seed with
  | None -> Alcotest.fail "injected violation not reported"
  | Some r ->
      Alcotest.(check int) "seed recorded" seed r.Differ.seed;
      Alcotest.(check (list string)) "violations carried"
        [ "too many functions" ] r.Differ.violations;
      Alcotest.(check int) "shrunk to the boundary" 2
        r.Differ.shrunk.Spec.num_funcs;
      Alcotest.(check (list string)) "shrunk program still fails"
        [ "too many functions" ] r.Differ.shrunk_violations;
      (* the report is printable (the repro the user sees) *)
      let text = Format.asprintf "%a" Differ.pp_report r in
      Alcotest.(check bool) "report names the seed" true
        (let needle = Printf.sprintf "seed %d" seed in
         let n = String.length needle in
         let rec scan i =
           i + n <= String.length text
           && (String.sub text i n = needle || scan (i + 1))
         in
         scan 0)

let test_run_seed_clean_is_none () =
  Alcotest.(check bool) "clean seed reports nothing" true
    (Differ.run_seed ~check:(fun _ -> []) 0 = None)

let test_check_seed_deterministic () =
  List.iter
    (fun seed ->
      Alcotest.(check (list string))
        (Printf.sprintf "seed %d stable" seed)
        (Differ.check_seed seed) (Differ.check_seed seed))
    [ 0; 1; 2 ]

(* The headline: >= 200 generated programs, every scheme, every
   invariant, deterministically — and well under the 60 s budget. *)
let fuzz_count = 220

let test_fuzz_clean () =
  match Differ.fuzz ~workers:1 ~seed:0 ~count:fuzz_count () with
  | [] -> ()
  | failures ->
      List.iter
        (fun r -> Format.eprintf "%a@." Differ.pp_report r)
        failures;
      Alcotest.failf "%d/%d fuzz seeds failed" (List.length failures)
        fuzz_count

let test_fuzz_parallel_matches_sequential () =
  (* Worker count may change scheduling, never results. *)
  let seq = Differ.fuzz ~workers:1 ~seed:7 ~count:24 () in
  let par = Differ.fuzz ~workers:4 ~seed:7 ~count:24 () in
  Alcotest.(check int) "same failure count" (List.length seq)
    (List.length par);
  Alcotest.(check (list int)) "same failing seeds"
    (List.map (fun r -> r.Differ.seed) seq)
    (List.map (fun r -> r.Differ.seed) par)

(* --- Stats.equal / Stats.pp_diff (the extracted sweep helper) --- *)

let test_stats_equal_and_pp_diff () =
  let a = Stats.create () in
  let b = Stats.create () in
  Alcotest.(check bool) "fresh stats equal" true (Stats.equal a b);
  Alcotest.(check string) "no diff text" "(no differing fields)"
    (String.trim (Format.asprintf "%a" Stats.pp_diff (a, b)));
  b.Stats.icache_hits <- 3;
  Alcotest.(check bool) "one field differs" false (Stats.equal a b);
  let text = Format.asprintf "%a" Stats.pp_diff (a, b) in
  Alcotest.(check bool) "diff names the field" true
    (let needle = "icache_hits" in
     let n = String.length needle in
     let rec scan i =
       i + n <= String.length text
       && (String.sub text i n = needle || scan (i + 1))
     in
     scan 0);
  b.Stats.icache_hits <- 0;
  Alcotest.(check bool) "restored equal" true (Stats.equal a b);
  (* the energy account participates too *)
  Wayplace.Energy.Account.add_icache b.Stats.account 1.0;
  Alcotest.(check bool) "energy differs" false (Stats.equal a b)

let () =
  Alcotest.run "differential"
    [
      ( "oracle",
        [
          Alcotest.test_case "oracle = production cache (random traffic)"
            `Quick test_oracle_equivalence;
        ] );
      ( "progen",
        [
          Alcotest.test_case "valid + deterministic" `Quick
            test_progen_valid_and_deterministic;
          Alcotest.test_case "generator spread" `Quick test_progen_spread;
          Alcotest.test_case "shrink candidates smaller + valid" `Quick
            test_shrink_candidates_strictly_smaller;
          Alcotest.test_case "minimize contract" `Quick test_minimize_contract;
        ] );
      ( "differ",
        [
          Alcotest.test_case "injected failure reproduces + shrinks" `Quick
            test_run_seed_with_injected_check;
          Alcotest.test_case "clean seed is None" `Quick
            test_run_seed_clean_is_none;
          Alcotest.test_case "check_seed deterministic" `Quick
            test_check_seed_deterministic;
          Alcotest.test_case
            (Printf.sprintf "%d generated programs, all invariants" fuzz_count)
            `Quick test_fuzz_clean;
          Alcotest.test_case "parallel = sequential" `Quick
            test_fuzz_parallel_matches_sequential;
        ] );
      ( "stats",
        [
          Alcotest.test_case "Stats.equal / pp_diff" `Quick
            test_stats_equal_and_pp_diff;
        ] );
    ]
