(* Tests for cache geometry, the CAM cache and way-memoization. *)

module Geometry = Wayplace.Cache.Geometry
module Replacement = Wayplace.Cache.Replacement
module Cam = Wayplace.Cache.Cam_cache
module Memo = Wayplace.Cache.Way_memo
module Rng = Wayplace.Workloads.Rng

let xscale = Geometry.make ~size_bytes:(32 * 1024) ~assoc:32 ~line_bytes:32
let small = Geometry.make ~size_bytes:64 ~assoc:4 ~line_bytes:8

(* --- Geometry --- *)

let test_geometry_xscale () =
  Alcotest.(check int) "sets" 32 (Geometry.sets xscale);
  Alcotest.(check int) "lines" 1024 (Geometry.lines xscale);
  Alcotest.(check int) "offset bits" 5 (Geometry.offset_bits xscale);
  Alcotest.(check int) "set bits" 5 (Geometry.set_bits xscale);
  Alcotest.(check int) "tag bits" 22 (Geometry.tag_bits xscale);
  Alcotest.(check int) "way bits" 5 (Geometry.way_bits xscale);
  Alcotest.(check int) "slots" 8 (Geometry.slots_per_line xscale);
  Alcotest.(check int) "way span" 1024 (Geometry.way_span_bytes xscale)

let test_geometry_variants () =
  let g = Geometry.make ~size_bytes:(8 * 1024) ~assoc:32 ~line_bytes:32 in
  Alcotest.(check int) "8KB/32w sets" 8 (Geometry.sets g);
  Alcotest.(check int) "8KB/32w way span" 256 (Geometry.way_span_bytes g);
  let g = Geometry.make ~size_bytes:(32 * 1024) ~assoc:8 ~line_bytes:32 in
  Alcotest.(check int) "32KB/8w sets" 128 (Geometry.sets g);
  Alcotest.(check int) "32KB/8w way bits" 3 (Geometry.way_bits g)

let test_geometry_validation () =
  let invalid f = match f () with (_ : Geometry.t) -> false | exception Invalid_argument _ -> true in
  Alcotest.(check bool) "non power of two" true
    (invalid (fun () -> Geometry.make ~size_bytes:3000 ~assoc:4 ~line_bytes:32));
  Alcotest.(check bool) "line too small" true
    (invalid (fun () -> Geometry.make ~size_bytes:1024 ~assoc:4 ~line_bytes:2));
  Alcotest.(check bool) "fewer lines than ways" true
    (invalid (fun () -> Geometry.make ~size_bytes:64 ~assoc:4 ~line_bytes:32))

let test_geometry_decomposition () =
  let addr = 0x0001_2345 in
  Alcotest.(check int) "set of xscale addr" ((addr lsr 5) land 31)
    (Geometry.set_index xscale addr);
  Alcotest.(check int) "tag" (addr lsr 10) (Geometry.tag_of xscale addr);
  Alcotest.(check int) "line base" (addr land lnot 31) (Geometry.line_base xscale addr);
  Alcotest.(check int) "slot" (addr land 31 / 4) (Geometry.instr_slot xscale addr);
  Alcotest.(check bool) "same line" true (Geometry.same_line xscale addr (addr + 1));
  Alcotest.(check bool) "different line" false (Geometry.same_line xscale addr (addr + 32))

let test_way_select () =
  Alcotest.(check int) "low tag bits" 5 (Geometry.way_select xscale ~tag:(32 + 5));
  (* Consecutive way-span chunks land in consecutive ways. *)
  Alcotest.(check int) "chunk 0" 0 (Geometry.way_of_addr xscale 0x100);
  Alcotest.(check int) "chunk 1" 1 (Geometry.way_of_addr xscale (0x100 + 1024));
  Alcotest.(check int) "chunk 2" 2 (Geometry.way_of_addr xscale (0x100 + 2048));
  Alcotest.(check int) "wraps at assoc" 0
    (Geometry.way_of_addr xscale (0x100 + (32 * 1024)))

let prop_geometry_roundtrip =
  QCheck.Test.make ~name:"set/tag/offset recompose the line address" ~count:500
    QCheck.(int_bound 0x0FFF_FFFF)
    (fun addr ->
      let set = Geometry.set_index xscale addr in
      let tag = Geometry.tag_of xscale addr in
      let rebuilt = (tag lsl 10) lor (set lsl 5) in
      rebuilt = Geometry.line_base xscale addr)

(* --- Cam_cache --- *)

let test_cam_miss_then_hit () =
  let c = Cam.create small ~replacement:Replacement.Round_robin in
  let miss = Cam.lookup_full c 0x14 in
  Alcotest.(check bool) "miss" false miss.Cam.hit;
  Alcotest.(check int) "compares all ways" 4 miss.Cam.tag_comparisons;
  let way, evicted = Cam.fill c 0x14 Cam.Victim_by_policy in
  Alcotest.(check (option int)) "no eviction on cold fill" None
    (Option.map (fun (e : Cam.eviction) -> e.tag) evicted);
  let hit = Cam.lookup_full c 0x14 in
  Alcotest.(check bool) "hit" true hit.Cam.hit;
  Alcotest.(check int) "hit way" way hit.Cam.way

let test_cam_lookup_way () =
  let c = Cam.create small ~replacement:Replacement.Round_robin in
  let _ = Cam.fill c 0x14 (Cam.Forced_way 3) in
  let right = Cam.lookup_way c 0x14 ~way:3 in
  Alcotest.(check bool) "probe right way" true right.Cam.hit;
  Alcotest.(check int) "one comparison" 1 right.Cam.tag_comparisons;
  Alcotest.(check int) "one precharge" 1 right.Cam.ways_precharged;
  let wrong = Cam.lookup_way c 0x14 ~way:0 in
  Alcotest.(check bool) "probe wrong way misses" false wrong.Cam.hit;
  Alcotest.(check bool) "way out of range" true
    (match Cam.lookup_way c 0x14 ~way:9 with
    | (_ : Cam.outcome) -> false
    | exception Invalid_argument _ -> true)

let test_cam_forced_fill_range () =
  let c = Cam.create small ~replacement:Replacement.Round_robin in
  Alcotest.(check bool) "forced way out of range" true
    (match Cam.fill c 0x14 (Cam.Forced_way 4) with
    | (_ : int * Cam.eviction option) -> false
    | exception Invalid_argument _ -> true)

let test_cam_fill_idempotent () =
  let c = Cam.create small ~replacement:Replacement.Round_robin in
  let w1, _ = Cam.fill c 0x14 Cam.Victim_by_policy in
  let w2, ev = Cam.fill c 0x14 Cam.Victim_by_policy in
  Alcotest.(check int) "same way" w1 w2;
  Alcotest.(check bool) "no eviction" true (ev = None);
  Alcotest.(check int) "one line valid" 1 (Cam.valid_lines c)

let test_cam_round_robin_eviction () =
  let c = Cam.create small ~replacement:Replacement.Round_robin in
  (* Fill the 4 ways of set 0 (8B lines, 2 sets: set 0 addresses are
     multiples of 16). *)
  let addr i = i * 16 in
  for i = 0 to 3 do
    ignore (Cam.fill c (addr i) Cam.Victim_by_policy)
  done;
  Alcotest.(check int) "set full" 4 (List.length (Cam.resident_tags c ~set:0));
  (* Fifth fill evicts way 0 (round-robin from the beginning). *)
  let way, evicted = Cam.fill c (addr 4) Cam.Victim_by_policy in
  Alcotest.(check int) "evicts way 0" 0 way;
  (match evicted with
  | Some e ->
      Alcotest.(check int) "evicted set" 0 e.Cam.set;
      Alcotest.(check int) "evicted the first line" (Geometry.tag_of small (addr 0)) e.Cam.tag
  | None -> Alcotest.fail "expected an eviction");
  Alcotest.(check (option int)) "victim gone" None (Cam.probe c (addr 0))

let test_cam_lru_eviction () =
  let c = Cam.create small ~replacement:Replacement.Lru in
  let addr i = i * 16 in
  for i = 0 to 3 do
    ignore (Cam.fill c (addr i) Cam.Victim_by_policy)
  done;
  (* Touch line 0 so line 1 becomes the LRU victim. *)
  ignore (Cam.lookup_full c (addr 0));
  let _, evicted = Cam.fill c (addr 4) Cam.Victim_by_policy in
  (match evicted with
  | Some e ->
      Alcotest.(check int) "evicted LRU line" (Geometry.tag_of small (addr 1)) e.Cam.tag
  | None -> Alcotest.fail "expected an eviction")

let test_cam_probe_is_silent () =
  let c = Cam.create small ~replacement:Replacement.Lru in
  let addr i = i * 16 in
  for i = 0 to 3 do
    ignore (Cam.fill c (addr i) Cam.Victim_by_policy)
  done;
  (* Probing must not refresh recency: line 0 stays the LRU victim. *)
  ignore (Cam.probe c (addr 0));
  let _, evicted = Cam.fill c (addr 4) Cam.Victim_by_policy in
  match evicted with
  | Some e ->
      Alcotest.(check int) "probe did not touch recency"
        (Geometry.tag_of small (addr 0))
        e.Cam.tag
  | None -> Alcotest.fail "expected an eviction"

let test_cam_flush_and_invalidate () =
  let c = Cam.create small ~replacement:Replacement.Round_robin in
  let way, _ = Cam.fill c 0x14 Cam.Victim_by_policy in
  Cam.invalidate c ~set:(Geometry.set_index small 0x14) ~way;
  Alcotest.(check (option int)) "invalidate" None (Cam.probe c 0x14);
  ignore (Cam.fill c 0x14 Cam.Victim_by_policy);
  Cam.flush c;
  Alcotest.(check int) "flush" 0 (Cam.valid_lines c)

let test_cam_same_tag_different_sets () =
  let c = Cam.create small ~replacement:Replacement.Round_robin in
  (* 0x14 (set 0) and 0x1C (set 1) share tag 1 but are distinct lines. *)
  ignore (Cam.fill c 0x14 Cam.Victim_by_policy);
  ignore (Cam.fill c 0x1C Cam.Victim_by_policy);
  Alcotest.(check int) "two lines" 2 (Cam.valid_lines c);
  Alcotest.(check bool) "both resident" true
    (Cam.probe c 0x14 <> None && Cam.probe c 0x1C <> None)

(* Property: random traffic never creates duplicate tags in a set, and
   probe agrees with lookup_full. *)
let prop_cam_no_duplicates =
  QCheck.Test.make ~name:"no duplicate lines under random traffic" ~count:60
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let c = Cam.create small ~replacement:Replacement.Round_robin in
      let ok = ref true in
      for _ = 1 to 300 do
        let addr = Rng.int rng 512 * 4 in
        let hit_before = Cam.probe c addr <> None in
        let outcome = Cam.lookup_full c addr in
        if outcome.Cam.hit <> hit_before then ok := false;
        if not outcome.Cam.hit then ignore (Cam.fill c addr Cam.Victim_by_policy);
        for set = 0 to Geometry.sets small - 1 do
          let tags = List.map snd (Cam.resident_tags c ~set) in
          if List.length tags <> List.length (List.sort_uniq compare tags) then
            ok := false
        done
      done;
      !ok)

(* --- Way_memo --- *)

let test_memo_overhead_fraction () =
  Alcotest.(check int) "links per line" 9 (Memo.links_per_line xscale);
  Alcotest.(check int) "link bits" 6 (Memo.link_bits xscale);
  Alcotest.(check (float 0.001)) "21% overhead (paper Section 5)"
    (54.0 /. 256.0)
    (Memo.data_overhead_fraction xscale)

let test_memo_first_fetch_full () =
  let m = Memo.create xscale ~replacement:Replacement.Round_robin in
  let r = Memo.fetch m 0x1000 in
  Alcotest.(check bool) "miss" false r.Memo.hit;
  Alcotest.(check bool) "filled" true r.Memo.filled;
  Alcotest.(check int) "full search" 32 r.Memo.tag_comparisons;
  Alcotest.(check bool) "no link written on entry" false r.Memo.link_written

let test_memo_sequential_link () =
  let m = Memo.create xscale ~replacement:Replacement.Round_robin in
  (* Fetch the last instruction of a line, then the first of the next:
     first crossing misses the link and writes it; repeating the pair
     follows the link with zero comparisons. *)
  let a = 0x101C and b = 0x1020 in
  ignore (Memo.fetch m a);
  let first = Memo.fetch m b in
  Alcotest.(check bool) "first crossing not via link" false first.Memo.link_followed;
  Alcotest.(check bool) "link written" true first.Memo.link_written;
  Memo.reset_stream m;
  ignore (Memo.fetch m a);
  let second = Memo.fetch m b in
  Alcotest.(check bool) "second crossing follows link" true second.Memo.link_followed;
  Alcotest.(check int) "zero comparisons" 0 second.Memo.tag_comparisons;
  Alcotest.(check int) "zero precharges" 0 second.Memo.ways_precharged

let test_memo_branch_link () =
  let m = Memo.create xscale ~replacement:Replacement.Round_robin in
  (* A taken transfer from 0x1000 to 0x2000 uses the slot link. *)
  ignore (Memo.fetch m 0x1000);
  ignore (Memo.fetch m 0x2000);
  Memo.reset_stream m;
  ignore (Memo.fetch m 0x1000);
  let r = Memo.fetch m 0x2000 in
  Alcotest.(check bool) "branch link followed" true r.Memo.link_followed

let test_memo_varying_target_not_followed () =
  let m = Memo.create xscale ~replacement:Replacement.Round_robin in
  (* The same source slot transfers to two different targets (a
     return-like pattern): the second target must not follow the first
     target's link. *)
  ignore (Memo.fetch m 0x1000);
  ignore (Memo.fetch m 0x2000);
  Memo.reset_stream m;
  ignore (Memo.fetch m 0x1000);
  let r = Memo.fetch m 0x3000 in
  Alcotest.(check bool) "different target does a full search" false
    r.Memo.link_followed;
  Alcotest.(check bool) "and rewrites the link" true r.Memo.link_written

let test_memo_note_same_line () =
  let m = Memo.create xscale ~replacement:Replacement.Round_robin in
  ignore (Memo.fetch m 0x1018);
  Memo.note_same_line m 0x101C;
  (* 0x1020 is now a sequential crossing from 0x101C. *)
  let r = Memo.fetch m 0x1020 in
  Alcotest.(check bool) "crossing classified sequential, link written" true
    r.Memo.link_written;
  Alcotest.check_raises "note outside previous line"
    (Invalid_argument "Way_memo.note_same_line: address not in previous line")
    (fun () -> Memo.note_same_line m 0x9999_0000)

let test_memo_flash_clear () =
  let g = small in
  let m = Memo.create ~invalidation:Memo.Flash_clear g ~replacement:Replacement.Round_robin in
  (* Build one link, then cause an eviction; the flash clear must wipe
     every link. *)
  ignore (Memo.fetch m 0x00);
  ignore (Memo.fetch m 0x10);
  Alcotest.(check bool) "a link exists" true (Memo.valid_links m > 0);
  (* Fill set 0 beyond capacity to force an eviction. *)
  Memo.reset_stream m;
  let r = ref None in
  for i = 2 to 5 do
    Memo.reset_stream m;
    r := Some (Memo.fetch m (i * 16))
  done;
  (match !r with
  | Some last -> Alcotest.(check bool) "an eviction happened" true (last.Memo.links_invalidated >= 0)
  | None -> ());
  Alcotest.(check bool) "links cleared by eviction" true (Memo.valid_links m <= 1)

let test_memo_flush () =
  let m = Memo.create xscale ~replacement:Replacement.Round_robin in
  ignore (Memo.fetch m 0x1000);
  ignore (Memo.fetch m 0x2000);
  Memo.flush m;
  Alcotest.(check int) "no links" 0 (Memo.valid_links m);
  let r = Memo.fetch m 0x1000 in
  Alcotest.(check bool) "cold after flush" false r.Memo.hit

(* Precise invalidation must clear links into an evicted line (no
   stale blind follow) while links rebuilt afterwards follow cleanly —
   the residence invariant the fetch path checks on every follow. *)
let test_memo_precise_invalidated_link_then_follow () =
  let g = Geometry.make ~size_bytes:128 ~assoc:2 ~line_bytes:32 in
  let m = Memo.create ~invalidation:Memo.Precise g ~replacement:Replacement.Round_robin in
  let a = 0x00 and b = 0x20 and c = 0x60 and d = 0xA0 in
  (* a sits in set 0; b, c, d contend for the two ways of set 1. *)
  ignore (Memo.fetch m a);
  ignore (Memo.fetch m b);
  ignore (Memo.fetch m a);
  let r = Memo.fetch m b in
  Alcotest.(check bool) "a->b link follows before eviction" true
    r.Memo.link_followed;
  (* Fill c then d into set 1: round-robin evicts b (the refill of b
     below, [filled = true], confirms it was gone). *)
  Memo.reset_stream m;
  ignore (Memo.fetch m c);
  ignore (Memo.fetch m d);
  Memo.reset_stream m;
  ignore (Memo.fetch m a);
  let r = Memo.fetch m b in
  Alcotest.(check bool) "stale a->b link was invalidated" false
    r.Memo.link_followed;
  Alcotest.(check bool) "b refilled through the full path" true r.Memo.filled;
  ignore (Memo.fetch m a);
  let r = Memo.fetch m b in
  Alcotest.(check bool) "rebuilt link follows with residence intact" true
    r.Memo.link_followed

(* Property: under random traffic, a followed link always lands on a
   resident line (the module asserts residence internally) and the
   fetch sequence never raises. *)
let prop_memo_random_traffic =
  QCheck.Test.make ~name:"way-memo invariants under random traffic" ~count:40
    QCheck.(pair (int_bound 10_000) bool)
    (fun (seed, precise) ->
      let invalidation = if precise then Memo.Precise else Memo.Flash_clear in
      let g = Geometry.make ~size_bytes:1024 ~assoc:8 ~line_bytes:32 in
      let m = Memo.create ~invalidation g ~replacement:Replacement.Round_robin in
      let rng = Rng.create seed in
      let addr = ref 0 in
      for _ = 1 to 500 do
        (* Mostly sequential with occasional jumps, like real fetch. *)
        if Rng.bool rng ~p:0.2 then addr := Rng.int rng 1024 * 4
        else addr := !addr + 4;
        if Rng.bool rng ~p:0.02 then Memo.reset_stream m;
        ignore (Memo.fetch m !addr)
      done;
      true)

(* Oracle equivalence: an independent reference model of a round-robin
   set-associative cache must agree with Cam_cache on every hit/miss
   and on the full contents, under arbitrary traffic. *)
module Oracle = struct
  type t = {
    assoc : int;
    sets : (int option array * int ref) array;  (** tags per way, rr cursor *)
  }

  let create g =
    {
      assoc = g.Geometry.assoc;
      sets =
        Array.init (Geometry.sets g) (fun _ ->
            (Array.make g.Geometry.assoc None, ref 0));
    }

  let lookup t ~set ~tag =
    let ways, _ = t.sets.(set) in
    let rec go w =
      if w >= t.assoc then None
      else if ways.(w) = Some tag then Some w
      else go (w + 1)
    in
    go 0

  let fill t ~set ~tag =
    match lookup t ~set ~tag with
    | Some w -> w
    | None ->
        let ways, cursor = t.sets.(set) in
        let rec invalid w =
          if w >= t.assoc then None
          else if ways.(w) = None then Some w
          else invalid (w + 1)
        in
        let w =
          match invalid 0 with
          | Some w -> w
          | None ->
              let w = !cursor in
              cursor := (w + 1) mod t.assoc;
              w
        in
        ways.(w) <- Some tag;
        w
end

let prop_cam_matches_oracle =
  QCheck.Test.make ~name:"Cam_cache agrees with a reference model" ~count:60
    QCheck.(pair (int_bound 100_000) (int_range 100 600))
    (fun (seed, steps) ->
      let g = Geometry.make ~size_bytes:512 ~assoc:4 ~line_bytes:16 in
      let cam = Cam.create g ~replacement:Replacement.Round_robin in
      let oracle = Oracle.create g in
      let rng = Rng.create seed in
      let ok = ref true in
      for _ = 1 to steps do
        let addr = Rng.int rng 4096 * 4 in
        let set = Geometry.set_index g addr and tag = Geometry.tag_of g addr in
        let cam_hit = (Cam.lookup_full cam addr).Cam.hit in
        let oracle_hit = Oracle.lookup oracle ~set ~tag <> None in
        if cam_hit <> oracle_hit then ok := false;
        let cam_way, _ = Cam.fill cam addr Cam.Victim_by_policy in
        let oracle_way = Oracle.fill oracle ~set ~tag in
        if cam_way <> oracle_way then ok := false
      done;
      (* Final contents agree exactly. *)
      for set = 0 to Geometry.sets g - 1 do
        let ways, _ = oracle.Oracle.sets.(set) in
        let cam_tags = Cam.resident_tags cam ~set in
        Array.iteri
          (fun w tag ->
            let cam_tag = List.assoc_opt w cam_tags in
            if tag <> cam_tag then ok := false)
          ways
      done;
      !ok)

(* --- Way_predict --- *)

module Pred = Wayplace.Cache.Way_predict

let test_pred_cold_set () =
  let p = Pred.create small ~replacement:Replacement.Round_robin in
  let r = Pred.access p 0x14 in
  Alcotest.(check bool) "cold miss" false r.Pred.hit;
  Alcotest.(check bool) "not predicted" false r.Pred.predicted_correctly;
  Alcotest.(check int) "full search" 4 r.Pred.tag_comparisons;
  Alcotest.(check int) "penalty" 1 r.Pred.penalty_cycles;
  Alcotest.(check bool) "filled" true r.Pred.filled

let test_pred_mru_hit () =
  let p = Pred.create small ~replacement:Replacement.Round_robin in
  ignore (Pred.access p 0x14);
  let r = Pred.access p 0x14 in
  Alcotest.(check bool) "hit" true r.Pred.hit;
  Alcotest.(check bool) "predicted" true r.Pred.predicted_correctly;
  Alcotest.(check int) "one comparison" 1 r.Pred.tag_comparisons;
  Alcotest.(check int) "no penalty" 0 r.Pred.penalty_cycles

let test_pred_mispredict () =
  let p = Pred.create small ~replacement:Replacement.Round_robin in
  (* Two lines in the same set: alternating accesses mispredict. *)
  ignore (Pred.access p 0x14);
  ignore (Pred.access p 0x34);
  let r = Pred.access p 0x14 in
  Alcotest.(check bool) "hit after mispredict" true r.Pred.hit;
  Alcotest.(check bool) "mispredicted" false r.Pred.predicted_correctly;
  Alcotest.(check int) "1 + remaining ways" 4 r.Pred.tag_comparisons;
  Alcotest.(check int) "penalty cycle" 1 r.Pred.penalty_cycles;
  (* The MRU prediction now tracks 0x14 again: the next access to it
     is predicted correctly. *)
  let again = Pred.access p 0x14 in
  Alcotest.(check bool) "mru retrained" true again.Pred.predicted_correctly

let test_pred_flush () =
  let p = Pred.create small ~replacement:Replacement.Round_robin in
  ignore (Pred.access p 0x14);
  Pred.flush p;
  Alcotest.(check (option int)) "prediction cleared" None (Pred.mru_way p ~set:0);
  let r = Pred.access p 0x14 in
  Alcotest.(check bool) "cold again" false r.Pred.hit

(* --- Filter_cache --- *)

module Filter = Wayplace.Cache.Filter_cache

let test_filter_requires_direct_mapped () =
  Alcotest.(check bool) "assoc > 1 rejected" true
    (match Filter.create ~l0:small () with
    | (_ : Filter.t) -> false
    | exception Invalid_argument _ -> true)

let test_filter_hit_miss () =
  let l0 = Geometry.make ~size_bytes:64 ~assoc:1 ~line_bytes:8 in
  let f = Filter.create ~l0 () in
  let miss = Filter.access f 0x14 in
  Alcotest.(check bool) "cold miss" false miss.Filter.l0_hit;
  Alcotest.(check int) "miss penalty" 1 miss.Filter.penalty_cycles;
  let hit = Filter.access f 0x14 in
  Alcotest.(check bool) "refilled" true hit.Filter.l0_hit;
  Alcotest.(check int) "no penalty" 0 hit.Filter.penalty_cycles;
  Alcotest.(check int) "direct-mapped comparison" 1 hit.Filter.l0_tag_comparisons

let test_filter_conflict () =
  let l0 = Geometry.make ~size_bytes:64 ~assoc:1 ~line_bytes:8 in
  let f = Filter.create ~l0 () in
  ignore (Filter.access f 0x00);
  (* 0x40 maps to the same direct-mapped slot and evicts 0x00. *)
  ignore (Filter.access f 0x40);
  let r = Filter.access f 0x00 in
  Alcotest.(check bool) "conflict miss" false r.Filter.l0_hit

let test_filter_flush () =
  let l0 = Geometry.make ~size_bytes:64 ~assoc:1 ~line_bytes:8 in
  let f = Filter.create ~l0 () in
  ignore (Filter.access f 0x14);
  Filter.flush f;
  let r = Filter.access f 0x14 in
  Alcotest.(check bool) "cold after flush" false r.Filter.l0_hit

(* --- Drowsy --- *)

module Drowsy = Wayplace.Cache.Drowsy

let test_drowsy_validation () =
  Alcotest.(check bool) "zero window" true
    (match Drowsy.create small ~window:0 with
    | (_ : Drowsy.t) -> false
    | exception Invalid_argument _ -> true)

let test_drowsy_wake_semantics () =
  let d = Drowsy.create small ~window:10 in
  Alcotest.(check bool) "first touch wakes" true
    (Drowsy.note_access d ~now:0 ~set:0 ~way:0);
  Alcotest.(check bool) "touch within window stays awake" false
    (Drowsy.note_access d ~now:5 ~set:0 ~way:0);
  Alcotest.(check bool) "touch after window wakes" true
    (Drowsy.note_access d ~now:100 ~set:0 ~way:0)

let test_drowsy_accounting () =
  let d = Drowsy.create small ~window:10 in
  (* Touch line (0,0) at t=0 and t=5; at t=100 it has been awake for
     gap 5 plus the 10-tick tail after t=5. *)
  ignore (Drowsy.note_access d ~now:0 ~set:0 ~way:0);
  ignore (Drowsy.note_access d ~now:5 ~set:0 ~way:0);
  Alcotest.(check (float 1e-9)) "awake ticks" 15.0
    (Drowsy.awake_line_ticks d ~now:100);
  Alcotest.(check (float 1e-9)) "total ticks"
    (float_of_int (Geometry.lines small * 100))
    (Drowsy.total_line_ticks d ~now:100)

let test_drowsy_reset () =
  let d = Drowsy.create small ~window:10 in
  ignore (Drowsy.note_access d ~now:0 ~set:0 ~way:0);
  Drowsy.reset d;
  Alcotest.(check (float 1e-9)) "cleared" 0.0 (Drowsy.awake_line_ticks d ~now:50)

let () =
  Alcotest.run "cache"
    [
      ( "geometry",
        [
          Alcotest.test_case "xscale split" `Quick test_geometry_xscale;
          Alcotest.test_case "variant geometries" `Quick test_geometry_variants;
          Alcotest.test_case "validation" `Quick test_geometry_validation;
          Alcotest.test_case "address decomposition" `Quick test_geometry_decomposition;
          Alcotest.test_case "way selection" `Quick test_way_select;
          QCheck_alcotest.to_alcotest prop_geometry_roundtrip;
        ] );
      ( "cam_cache",
        [
          Alcotest.test_case "miss then hit" `Quick test_cam_miss_then_hit;
          Alcotest.test_case "single-way probe" `Quick test_cam_lookup_way;
          Alcotest.test_case "forced-way range" `Quick test_cam_forced_fill_range;
          Alcotest.test_case "fill idempotent" `Quick test_cam_fill_idempotent;
          Alcotest.test_case "round-robin eviction" `Quick test_cam_round_robin_eviction;
          Alcotest.test_case "lru eviction" `Quick test_cam_lru_eviction;
          Alcotest.test_case "probe is silent" `Quick test_cam_probe_is_silent;
          Alcotest.test_case "flush and invalidate" `Quick test_cam_flush_and_invalidate;
          Alcotest.test_case "same tag different sets" `Quick test_cam_same_tag_different_sets;
          QCheck_alcotest.to_alcotest prop_cam_no_duplicates;
          QCheck_alcotest.to_alcotest prop_cam_matches_oracle;
        ] );
      ( "way_predict",
        [
          Alcotest.test_case "cold set" `Quick test_pred_cold_set;
          Alcotest.test_case "mru hit" `Quick test_pred_mru_hit;
          Alcotest.test_case "mispredict" `Quick test_pred_mispredict;
          Alcotest.test_case "flush" `Quick test_pred_flush;
        ] );
      ( "filter_cache",
        [
          Alcotest.test_case "direct-mapped only" `Quick test_filter_requires_direct_mapped;
          Alcotest.test_case "hit/miss" `Quick test_filter_hit_miss;
          Alcotest.test_case "conflict" `Quick test_filter_conflict;
          Alcotest.test_case "flush" `Quick test_filter_flush;
        ] );
      ( "drowsy",
        [
          Alcotest.test_case "validation" `Quick test_drowsy_validation;
          Alcotest.test_case "wake semantics" `Quick test_drowsy_wake_semantics;
          Alcotest.test_case "accounting" `Quick test_drowsy_accounting;
          Alcotest.test_case "reset" `Quick test_drowsy_reset;
        ] );
      ( "way_memo",
        [
          Alcotest.test_case "21% overhead" `Quick test_memo_overhead_fraction;
          Alcotest.test_case "first fetch" `Quick test_memo_first_fetch_full;
          Alcotest.test_case "sequential link" `Quick test_memo_sequential_link;
          Alcotest.test_case "branch link" `Quick test_memo_branch_link;
          Alcotest.test_case "varying target" `Quick test_memo_varying_target_not_followed;
          Alcotest.test_case "note_same_line" `Quick test_memo_note_same_line;
          Alcotest.test_case "flash clear" `Quick test_memo_flash_clear;
          Alcotest.test_case "precise invalidation then follow" `Quick
            test_memo_precise_invalidated_link_then_follow;
          Alcotest.test_case "flush" `Quick test_memo_flush;
          QCheck_alcotest.to_alcotest prop_memo_random_traffic;
        ] );
    ]
